
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/app/bulk_download.cpp" "src/CMakeFiles/emptcp.dir/app/bulk_download.cpp.o" "gcc" "src/CMakeFiles/emptcp.dir/app/bulk_download.cpp.o.d"
  "/root/repo/src/app/onoff_udp.cpp" "src/CMakeFiles/emptcp.dir/app/onoff_udp.cpp.o" "gcc" "src/CMakeFiles/emptcp.dir/app/onoff_udp.cpp.o.d"
  "/root/repo/src/app/scenario.cpp" "src/CMakeFiles/emptcp.dir/app/scenario.cpp.o" "gcc" "src/CMakeFiles/emptcp.dir/app/scenario.cpp.o.d"
  "/root/repo/src/app/streaming.cpp" "src/CMakeFiles/emptcp.dir/app/streaming.cpp.o" "gcc" "src/CMakeFiles/emptcp.dir/app/streaming.cpp.o.d"
  "/root/repo/src/app/web_browser.cpp" "src/CMakeFiles/emptcp.dir/app/web_browser.cpp.o" "gcc" "src/CMakeFiles/emptcp.dir/app/web_browser.cpp.o.d"
  "/root/repo/src/baselines/mdp_scheduler.cpp" "src/CMakeFiles/emptcp.dir/baselines/mdp_scheduler.cpp.o" "gcc" "src/CMakeFiles/emptcp.dir/baselines/mdp_scheduler.cpp.o.d"
  "/root/repo/src/baselines/wifi_first.cpp" "src/CMakeFiles/emptcp.dir/baselines/wifi_first.cpp.o" "gcc" "src/CMakeFiles/emptcp.dir/baselines/wifi_first.cpp.o.d"
  "/root/repo/src/core/bandwidth_predictor.cpp" "src/CMakeFiles/emptcp.dir/core/bandwidth_predictor.cpp.o" "gcc" "src/CMakeFiles/emptcp.dir/core/bandwidth_predictor.cpp.o.d"
  "/root/repo/src/core/delayed_subflow.cpp" "src/CMakeFiles/emptcp.dir/core/delayed_subflow.cpp.o" "gcc" "src/CMakeFiles/emptcp.dir/core/delayed_subflow.cpp.o.d"
  "/root/repo/src/core/emptcp_connection.cpp" "src/CMakeFiles/emptcp.dir/core/emptcp_connection.cpp.o" "gcc" "src/CMakeFiles/emptcp.dir/core/emptcp_connection.cpp.o.d"
  "/root/repo/src/core/energy_info_base.cpp" "src/CMakeFiles/emptcp.dir/core/energy_info_base.cpp.o" "gcc" "src/CMakeFiles/emptcp.dir/core/energy_info_base.cpp.o.d"
  "/root/repo/src/core/holt_winters.cpp" "src/CMakeFiles/emptcp.dir/core/holt_winters.cpp.o" "gcc" "src/CMakeFiles/emptcp.dir/core/holt_winters.cpp.o.d"
  "/root/repo/src/core/path_usage_controller.cpp" "src/CMakeFiles/emptcp.dir/core/path_usage_controller.cpp.o" "gcc" "src/CMakeFiles/emptcp.dir/core/path_usage_controller.cpp.o.d"
  "/root/repo/src/energy/device_profile.cpp" "src/CMakeFiles/emptcp.dir/energy/device_profile.cpp.o" "gcc" "src/CMakeFiles/emptcp.dir/energy/device_profile.cpp.o.d"
  "/root/repo/src/energy/energy_tracker.cpp" "src/CMakeFiles/emptcp.dir/energy/energy_tracker.cpp.o" "gcc" "src/CMakeFiles/emptcp.dir/energy/energy_tracker.cpp.o.d"
  "/root/repo/src/energy/model_calc.cpp" "src/CMakeFiles/emptcp.dir/energy/model_calc.cpp.o" "gcc" "src/CMakeFiles/emptcp.dir/energy/model_calc.cpp.o.d"
  "/root/repo/src/energy/power_model.cpp" "src/CMakeFiles/emptcp.dir/energy/power_model.cpp.o" "gcc" "src/CMakeFiles/emptcp.dir/energy/power_model.cpp.o.d"
  "/root/repo/src/energy/radio.cpp" "src/CMakeFiles/emptcp.dir/energy/radio.cpp.o" "gcc" "src/CMakeFiles/emptcp.dir/energy/radio.cpp.o.d"
  "/root/repo/src/mptcp/coupled_cc.cpp" "src/CMakeFiles/emptcp.dir/mptcp/coupled_cc.cpp.o" "gcc" "src/CMakeFiles/emptcp.dir/mptcp/coupled_cc.cpp.o.d"
  "/root/repo/src/mptcp/meta_socket.cpp" "src/CMakeFiles/emptcp.dir/mptcp/meta_socket.cpp.o" "gcc" "src/CMakeFiles/emptcp.dir/mptcp/meta_socket.cpp.o.d"
  "/root/repo/src/mptcp/scheduler.cpp" "src/CMakeFiles/emptcp.dir/mptcp/scheduler.cpp.o" "gcc" "src/CMakeFiles/emptcp.dir/mptcp/scheduler.cpp.o.d"
  "/root/repo/src/mptcp/subflow.cpp" "src/CMakeFiles/emptcp.dir/mptcp/subflow.cpp.o" "gcc" "src/CMakeFiles/emptcp.dir/mptcp/subflow.cpp.o.d"
  "/root/repo/src/net/channel/mobility.cpp" "src/CMakeFiles/emptcp.dir/net/channel/mobility.cpp.o" "gcc" "src/CMakeFiles/emptcp.dir/net/channel/mobility.cpp.o.d"
  "/root/repo/src/net/channel/onoff_bandwidth.cpp" "src/CMakeFiles/emptcp.dir/net/channel/onoff_bandwidth.cpp.o" "gcc" "src/CMakeFiles/emptcp.dir/net/channel/onoff_bandwidth.cpp.o.d"
  "/root/repo/src/net/channel/wifi_channel.cpp" "src/CMakeFiles/emptcp.dir/net/channel/wifi_channel.cpp.o" "gcc" "src/CMakeFiles/emptcp.dir/net/channel/wifi_channel.cpp.o.d"
  "/root/repo/src/net/interface.cpp" "src/CMakeFiles/emptcp.dir/net/interface.cpp.o" "gcc" "src/CMakeFiles/emptcp.dir/net/interface.cpp.o.d"
  "/root/repo/src/net/link.cpp" "src/CMakeFiles/emptcp.dir/net/link.cpp.o" "gcc" "src/CMakeFiles/emptcp.dir/net/link.cpp.o.d"
  "/root/repo/src/net/node.cpp" "src/CMakeFiles/emptcp.dir/net/node.cpp.o" "gcc" "src/CMakeFiles/emptcp.dir/net/node.cpp.o.d"
  "/root/repo/src/net/packet.cpp" "src/CMakeFiles/emptcp.dir/net/packet.cpp.o" "gcc" "src/CMakeFiles/emptcp.dir/net/packet.cpp.o.d"
  "/root/repo/src/sim/event.cpp" "src/CMakeFiles/emptcp.dir/sim/event.cpp.o" "gcc" "src/CMakeFiles/emptcp.dir/sim/event.cpp.o.d"
  "/root/repo/src/sim/logging.cpp" "src/CMakeFiles/emptcp.dir/sim/logging.cpp.o" "gcc" "src/CMakeFiles/emptcp.dir/sim/logging.cpp.o.d"
  "/root/repo/src/sim/random.cpp" "src/CMakeFiles/emptcp.dir/sim/random.cpp.o" "gcc" "src/CMakeFiles/emptcp.dir/sim/random.cpp.o.d"
  "/root/repo/src/sim/simulation.cpp" "src/CMakeFiles/emptcp.dir/sim/simulation.cpp.o" "gcc" "src/CMakeFiles/emptcp.dir/sim/simulation.cpp.o.d"
  "/root/repo/src/sim/timer.cpp" "src/CMakeFiles/emptcp.dir/sim/timer.cpp.o" "gcc" "src/CMakeFiles/emptcp.dir/sim/timer.cpp.o.d"
  "/root/repo/src/stats/csv.cpp" "src/CMakeFiles/emptcp.dir/stats/csv.cpp.o" "gcc" "src/CMakeFiles/emptcp.dir/stats/csv.cpp.o.d"
  "/root/repo/src/stats/summary.cpp" "src/CMakeFiles/emptcp.dir/stats/summary.cpp.o" "gcc" "src/CMakeFiles/emptcp.dir/stats/summary.cpp.o.d"
  "/root/repo/src/stats/table.cpp" "src/CMakeFiles/emptcp.dir/stats/table.cpp.o" "gcc" "src/CMakeFiles/emptcp.dir/stats/table.cpp.o.d"
  "/root/repo/src/stats/timeseries.cpp" "src/CMakeFiles/emptcp.dir/stats/timeseries.cpp.o" "gcc" "src/CMakeFiles/emptcp.dir/stats/timeseries.cpp.o.d"
  "/root/repo/src/tcp/buffers.cpp" "src/CMakeFiles/emptcp.dir/tcp/buffers.cpp.o" "gcc" "src/CMakeFiles/emptcp.dir/tcp/buffers.cpp.o.d"
  "/root/repo/src/tcp/cc.cpp" "src/CMakeFiles/emptcp.dir/tcp/cc.cpp.o" "gcc" "src/CMakeFiles/emptcp.dir/tcp/cc.cpp.o.d"
  "/root/repo/src/tcp/rtt.cpp" "src/CMakeFiles/emptcp.dir/tcp/rtt.cpp.o" "gcc" "src/CMakeFiles/emptcp.dir/tcp/rtt.cpp.o.d"
  "/root/repo/src/tcp/tcp_socket.cpp" "src/CMakeFiles/emptcp.dir/tcp/tcp_socket.cpp.o" "gcc" "src/CMakeFiles/emptcp.dir/tcp/tcp_socket.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
