# Empty compiler generated dependencies file for emptcp.
# This may be replaced when dependencies are built.
