file(REMOVE_RECURSE
  "libemptcp.a"
)
