# Empty compiler generated dependencies file for bench_fig12_mobility_trace.
# This may be replaced when dependencies are built.
