file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_streaming.dir/bench_ext_streaming.cpp.o"
  "CMakeFiles/bench_ext_streaming.dir/bench_ext_streaming.cpp.o.d"
  "bench_ext_streaming"
  "bench_ext_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
