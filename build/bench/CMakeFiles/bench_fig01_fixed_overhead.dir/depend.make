# Empty dependencies file for bench_fig01_fixed_overhead.
# This may be replaced when dependencies are built.
