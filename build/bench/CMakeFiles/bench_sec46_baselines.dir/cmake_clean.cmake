file(REMOVE_RECURSE
  "CMakeFiles/bench_sec46_baselines.dir/bench_sec46_baselines.cpp.o"
  "CMakeFiles/bench_sec46_baselines.dir/bench_sec46_baselines.cpp.o.d"
  "bench_sec46_baselines"
  "bench_sec46_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec46_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
