file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_kappa_tau.dir/bench_ablation_kappa_tau.cpp.o"
  "CMakeFiles/bench_ablation_kappa_tau.dir/bench_ablation_kappa_tau.cpp.o.d"
  "bench_ablation_kappa_tau"
  "bench_ablation_kappa_tau.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_kappa_tau.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
