# Empty compiler generated dependencies file for bench_ablation_resume_tweaks.
# This may be replaced when dependencies are built.
