file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_resume_tweaks.dir/bench_ablation_resume_tweaks.cpp.o"
  "CMakeFiles/bench_ablation_resume_tweaks.dir/bench_ablation_resume_tweaks.cpp.o.d"
  "bench_ablation_resume_tweaks"
  "bench_ablation_resume_tweaks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_resume_tweaks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
