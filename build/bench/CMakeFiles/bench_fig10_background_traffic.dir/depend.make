# Empty dependencies file for bench_fig10_background_traffic.
# This may be replaced when dependencies are built.
