file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_background_traffic.dir/bench_fig10_background_traffic.cpp.o"
  "CMakeFiles/bench_fig10_background_traffic.dir/bench_fig10_background_traffic.cpp.o.d"
  "bench_fig10_background_traffic"
  "bench_fig10_background_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_background_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
