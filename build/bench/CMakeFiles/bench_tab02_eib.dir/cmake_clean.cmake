file(REMOVE_RECURSE
  "CMakeFiles/bench_tab02_eib.dir/bench_tab02_eib.cpp.o"
  "CMakeFiles/bench_tab02_eib.dir/bench_tab02_eib.cpp.o.d"
  "bench_tab02_eib"
  "bench_tab02_eib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab02_eib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
