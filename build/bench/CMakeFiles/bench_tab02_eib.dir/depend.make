# Empty dependencies file for bench_tab02_eib.
# This may be replaced when dependencies are built.
