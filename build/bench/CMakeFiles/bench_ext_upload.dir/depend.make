# Empty dependencies file for bench_ext_upload.
# This may be replaced when dependencies are built.
