file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_upload.dir/bench_ext_upload.cpp.o"
  "CMakeFiles/bench_ext_upload.dir/bench_ext_upload.cpp.o.d"
  "bench_ext_upload"
  "bench_ext_upload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_upload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
