# Empty compiler generated dependencies file for bench_ext_devices.
# This may be replaced when dependencies are built.
