file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_devices.dir/bench_ext_devices.cpp.o"
  "CMakeFiles/bench_ext_devices.dir/bench_ext_devices.cpp.o.d"
  "bench_ext_devices"
  "bench_ext_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
