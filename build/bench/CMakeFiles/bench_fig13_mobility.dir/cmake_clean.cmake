file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_mobility.dir/bench_fig13_mobility.cpp.o"
  "CMakeFiles/bench_fig13_mobility.dir/bench_fig13_mobility.cpp.o.d"
  "bench_fig13_mobility"
  "bench_fig13_mobility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
