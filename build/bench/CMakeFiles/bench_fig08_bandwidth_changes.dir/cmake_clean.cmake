file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_bandwidth_changes.dir/bench_fig08_bandwidth_changes.cpp.o"
  "CMakeFiles/bench_fig08_bandwidth_changes.dir/bench_fig08_bandwidth_changes.cpp.o.d"
  "bench_fig08_bandwidth_changes"
  "bench_fig08_bandwidth_changes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_bandwidth_changes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
