# Empty compiler generated dependencies file for bench_fig08_bandwidth_changes.
# This may be replaced when dependencies are built.
