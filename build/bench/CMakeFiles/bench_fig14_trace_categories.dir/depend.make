# Empty dependencies file for bench_fig14_trace_categories.
# This may be replaced when dependencies are built.
