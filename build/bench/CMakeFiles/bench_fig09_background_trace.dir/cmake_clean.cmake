file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_background_trace.dir/bench_fig09_background_trace.cpp.o"
  "CMakeFiles/bench_fig09_background_trace.dir/bench_fig09_background_trace.cpp.o.d"
  "bench_fig09_background_trace"
  "bench_fig09_background_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_background_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
