# Empty dependencies file for bench_fig09_background_trace.
# This may be replaced when dependencies are built.
