# Empty compiler generated dependencies file for bench_fig05_static_good_wifi.
# This may be replaced when dependencies are built.
