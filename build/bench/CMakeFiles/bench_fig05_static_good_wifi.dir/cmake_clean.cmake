file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_static_good_wifi.dir/bench_fig05_static_good_wifi.cpp.o"
  "CMakeFiles/bench_fig05_static_good_wifi.dir/bench_fig05_static_good_wifi.cpp.o.d"
  "bench_fig05_static_good_wifi"
  "bench_fig05_static_good_wifi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_static_good_wifi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
