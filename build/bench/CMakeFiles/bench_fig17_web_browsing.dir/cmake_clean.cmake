file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_web_browsing.dir/bench_fig17_web_browsing.cpp.o"
  "CMakeFiles/bench_fig17_web_browsing.dir/bench_fig17_web_browsing.cpp.o.d"
  "bench_fig17_web_browsing"
  "bench_fig17_web_browsing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_web_browsing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
