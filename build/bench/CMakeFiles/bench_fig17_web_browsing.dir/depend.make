# Empty dependencies file for bench_fig17_web_browsing.
# This may be replaced when dependencies are built.
