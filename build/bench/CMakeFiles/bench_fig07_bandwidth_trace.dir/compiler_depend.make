# Empty compiler generated dependencies file for bench_fig07_bandwidth_trace.
# This may be replaced when dependencies are built.
