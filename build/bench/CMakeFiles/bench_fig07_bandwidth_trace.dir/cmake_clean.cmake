file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_bandwidth_trace.dir/bench_fig07_bandwidth_trace.cpp.o"
  "CMakeFiles/bench_fig07_bandwidth_trace.dir/bench_fig07_bandwidth_trace.cpp.o.d"
  "bench_fig07_bandwidth_trace"
  "bench_fig07_bandwidth_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_bandwidth_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
