file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_static_bad_wifi.dir/bench_fig06_static_bad_wifi.cpp.o"
  "CMakeFiles/bench_fig06_static_bad_wifi.dir/bench_fig06_static_bad_wifi.cpp.o.d"
  "bench_fig06_static_bad_wifi"
  "bench_fig06_static_bad_wifi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_static_bad_wifi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
