# Empty dependencies file for bench_fig06_static_bad_wifi.
# This may be replaced when dependencies are built.
