file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_hysteresis.dir/bench_ablation_hysteresis.cpp.o"
  "CMakeFiles/bench_ablation_hysteresis.dir/bench_ablation_hysteresis.cpp.o.d"
  "bench_ablation_hysteresis"
  "bench_ablation_hysteresis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_hysteresis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
