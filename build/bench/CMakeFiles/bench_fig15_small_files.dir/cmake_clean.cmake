file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_small_files.dir/bench_fig15_small_files.cpp.o"
  "CMakeFiles/bench_fig15_small_files.dir/bench_fig15_small_files.cpp.o.d"
  "bench_fig15_small_files"
  "bench_fig15_small_files.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_small_files.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
