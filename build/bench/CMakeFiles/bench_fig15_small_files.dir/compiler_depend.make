# Empty compiler generated dependencies file for bench_fig15_small_files.
# This may be replaced when dependencies are built.
