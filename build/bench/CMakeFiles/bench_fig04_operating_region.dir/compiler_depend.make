# Empty compiler generated dependencies file for bench_fig04_operating_region.
# This may be replaced when dependencies are built.
