file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_operating_region.dir/bench_fig04_operating_region.cpp.o"
  "CMakeFiles/bench_fig04_operating_region.dir/bench_fig04_operating_region.cpp.o.d"
  "bench_fig04_operating_region"
  "bench_fig04_operating_region.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_operating_region.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
