# Empty dependencies file for bench_fig16_large_files.
# This may be replaced when dependencies are built.
