# Empty compiler generated dependencies file for energy_model_explorer.
# This may be replaced when dependencies are built.
