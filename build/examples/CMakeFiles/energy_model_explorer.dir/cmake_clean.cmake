file(REMOVE_RECURSE
  "CMakeFiles/energy_model_explorer.dir/energy_model_explorer.cpp.o"
  "CMakeFiles/energy_model_explorer.dir/energy_model_explorer.cpp.o.d"
  "energy_model_explorer"
  "energy_model_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_model_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
