# Empty compiler generated dependencies file for mobility_walk.
# This may be replaced when dependencies are built.
