file(REMOVE_RECURSE
  "CMakeFiles/mobility_walk.dir/mobility_walk.cpp.o"
  "CMakeFiles/mobility_walk.dir/mobility_walk.cpp.o.d"
  "mobility_walk"
  "mobility_walk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobility_walk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
