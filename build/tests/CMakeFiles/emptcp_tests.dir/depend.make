# Empty dependencies file for emptcp_tests.
# This may be replaced when dependencies are built.
