# Empty compiler generated dependencies file for emptcp_tests.
# This may be replaced when dependencies are built.
