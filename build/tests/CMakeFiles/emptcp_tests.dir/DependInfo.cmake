
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/app/bulk_download_test.cpp" "tests/CMakeFiles/emptcp_tests.dir/app/bulk_download_test.cpp.o" "gcc" "tests/CMakeFiles/emptcp_tests.dir/app/bulk_download_test.cpp.o.d"
  "/root/repo/tests/app/onoff_udp_test.cpp" "tests/CMakeFiles/emptcp_tests.dir/app/onoff_udp_test.cpp.o" "gcc" "tests/CMakeFiles/emptcp_tests.dir/app/onoff_udp_test.cpp.o.d"
  "/root/repo/tests/app/scenario_test.cpp" "tests/CMakeFiles/emptcp_tests.dir/app/scenario_test.cpp.o" "gcc" "tests/CMakeFiles/emptcp_tests.dir/app/scenario_test.cpp.o.d"
  "/root/repo/tests/app/streaming_test.cpp" "tests/CMakeFiles/emptcp_tests.dir/app/streaming_test.cpp.o" "gcc" "tests/CMakeFiles/emptcp_tests.dir/app/streaming_test.cpp.o.d"
  "/root/repo/tests/app/upload_test.cpp" "tests/CMakeFiles/emptcp_tests.dir/app/upload_test.cpp.o" "gcc" "tests/CMakeFiles/emptcp_tests.dir/app/upload_test.cpp.o.d"
  "/root/repo/tests/app/web_browser_test.cpp" "tests/CMakeFiles/emptcp_tests.dir/app/web_browser_test.cpp.o" "gcc" "tests/CMakeFiles/emptcp_tests.dir/app/web_browser_test.cpp.o.d"
  "/root/repo/tests/baselines/mdp_scheduler_test.cpp" "tests/CMakeFiles/emptcp_tests.dir/baselines/mdp_scheduler_test.cpp.o" "gcc" "tests/CMakeFiles/emptcp_tests.dir/baselines/mdp_scheduler_test.cpp.o.d"
  "/root/repo/tests/baselines/wifi_first_test.cpp" "tests/CMakeFiles/emptcp_tests.dir/baselines/wifi_first_test.cpp.o" "gcc" "tests/CMakeFiles/emptcp_tests.dir/baselines/wifi_first_test.cpp.o.d"
  "/root/repo/tests/core/bandwidth_predictor_test.cpp" "tests/CMakeFiles/emptcp_tests.dir/core/bandwidth_predictor_test.cpp.o" "gcc" "tests/CMakeFiles/emptcp_tests.dir/core/bandwidth_predictor_test.cpp.o.d"
  "/root/repo/tests/core/delayed_subflow_test.cpp" "tests/CMakeFiles/emptcp_tests.dir/core/delayed_subflow_test.cpp.o" "gcc" "tests/CMakeFiles/emptcp_tests.dir/core/delayed_subflow_test.cpp.o.d"
  "/root/repo/tests/core/emptcp_connection_test.cpp" "tests/CMakeFiles/emptcp_tests.dir/core/emptcp_connection_test.cpp.o" "gcc" "tests/CMakeFiles/emptcp_tests.dir/core/emptcp_connection_test.cpp.o.d"
  "/root/repo/tests/core/energy_info_base_test.cpp" "tests/CMakeFiles/emptcp_tests.dir/core/energy_info_base_test.cpp.o" "gcc" "tests/CMakeFiles/emptcp_tests.dir/core/energy_info_base_test.cpp.o.d"
  "/root/repo/tests/core/holt_winters_test.cpp" "tests/CMakeFiles/emptcp_tests.dir/core/holt_winters_test.cpp.o" "gcc" "tests/CMakeFiles/emptcp_tests.dir/core/holt_winters_test.cpp.o.d"
  "/root/repo/tests/core/path_usage_controller_test.cpp" "tests/CMakeFiles/emptcp_tests.dir/core/path_usage_controller_test.cpp.o" "gcc" "tests/CMakeFiles/emptcp_tests.dir/core/path_usage_controller_test.cpp.o.d"
  "/root/repo/tests/energy/model_calc_test.cpp" "tests/CMakeFiles/emptcp_tests.dir/energy/model_calc_test.cpp.o" "gcc" "tests/CMakeFiles/emptcp_tests.dir/energy/model_calc_test.cpp.o.d"
  "/root/repo/tests/energy/power_model_test.cpp" "tests/CMakeFiles/emptcp_tests.dir/energy/power_model_test.cpp.o" "gcc" "tests/CMakeFiles/emptcp_tests.dir/energy/power_model_test.cpp.o.d"
  "/root/repo/tests/energy/radio_test.cpp" "tests/CMakeFiles/emptcp_tests.dir/energy/radio_test.cpp.o" "gcc" "tests/CMakeFiles/emptcp_tests.dir/energy/radio_test.cpp.o.d"
  "/root/repo/tests/energy/tracker_test.cpp" "tests/CMakeFiles/emptcp_tests.dir/energy/tracker_test.cpp.o" "gcc" "tests/CMakeFiles/emptcp_tests.dir/energy/tracker_test.cpp.o.d"
  "/root/repo/tests/integration/download_test.cpp" "tests/CMakeFiles/emptcp_tests.dir/integration/download_test.cpp.o" "gcc" "tests/CMakeFiles/emptcp_tests.dir/integration/download_test.cpp.o.d"
  "/root/repo/tests/integration/emptcp_behaviour_test.cpp" "tests/CMakeFiles/emptcp_tests.dir/integration/emptcp_behaviour_test.cpp.o" "gcc" "tests/CMakeFiles/emptcp_tests.dir/integration/emptcp_behaviour_test.cpp.o.d"
  "/root/repo/tests/integration/property_sweeps_test.cpp" "tests/CMakeFiles/emptcp_tests.dir/integration/property_sweeps_test.cpp.o" "gcc" "tests/CMakeFiles/emptcp_tests.dir/integration/property_sweeps_test.cpp.o.d"
  "/root/repo/tests/integration/workload_matrix_test.cpp" "tests/CMakeFiles/emptcp_tests.dir/integration/workload_matrix_test.cpp.o" "gcc" "tests/CMakeFiles/emptcp_tests.dir/integration/workload_matrix_test.cpp.o.d"
  "/root/repo/tests/mptcp/coupled_cc_test.cpp" "tests/CMakeFiles/emptcp_tests.dir/mptcp/coupled_cc_test.cpp.o" "gcc" "tests/CMakeFiles/emptcp_tests.dir/mptcp/coupled_cc_test.cpp.o.d"
  "/root/repo/tests/mptcp/meta_socket_test.cpp" "tests/CMakeFiles/emptcp_tests.dir/mptcp/meta_socket_test.cpp.o" "gcc" "tests/CMakeFiles/emptcp_tests.dir/mptcp/meta_socket_test.cpp.o.d"
  "/root/repo/tests/mptcp/scheduler_test.cpp" "tests/CMakeFiles/emptcp_tests.dir/mptcp/scheduler_test.cpp.o" "gcc" "tests/CMakeFiles/emptcp_tests.dir/mptcp/scheduler_test.cpp.o.d"
  "/root/repo/tests/net/channel_test.cpp" "tests/CMakeFiles/emptcp_tests.dir/net/channel_test.cpp.o" "gcc" "tests/CMakeFiles/emptcp_tests.dir/net/channel_test.cpp.o.d"
  "/root/repo/tests/net/link_test.cpp" "tests/CMakeFiles/emptcp_tests.dir/net/link_test.cpp.o" "gcc" "tests/CMakeFiles/emptcp_tests.dir/net/link_test.cpp.o.d"
  "/root/repo/tests/net/node_test.cpp" "tests/CMakeFiles/emptcp_tests.dir/net/node_test.cpp.o" "gcc" "tests/CMakeFiles/emptcp_tests.dir/net/node_test.cpp.o.d"
  "/root/repo/tests/net/packet_test.cpp" "tests/CMakeFiles/emptcp_tests.dir/net/packet_test.cpp.o" "gcc" "tests/CMakeFiles/emptcp_tests.dir/net/packet_test.cpp.o.d"
  "/root/repo/tests/sim/event_test.cpp" "tests/CMakeFiles/emptcp_tests.dir/sim/event_test.cpp.o" "gcc" "tests/CMakeFiles/emptcp_tests.dir/sim/event_test.cpp.o.d"
  "/root/repo/tests/sim/logging_test.cpp" "tests/CMakeFiles/emptcp_tests.dir/sim/logging_test.cpp.o" "gcc" "tests/CMakeFiles/emptcp_tests.dir/sim/logging_test.cpp.o.d"
  "/root/repo/tests/sim/random_test.cpp" "tests/CMakeFiles/emptcp_tests.dir/sim/random_test.cpp.o" "gcc" "tests/CMakeFiles/emptcp_tests.dir/sim/random_test.cpp.o.d"
  "/root/repo/tests/sim/timer_test.cpp" "tests/CMakeFiles/emptcp_tests.dir/sim/timer_test.cpp.o" "gcc" "tests/CMakeFiles/emptcp_tests.dir/sim/timer_test.cpp.o.d"
  "/root/repo/tests/stats/csv_test.cpp" "tests/CMakeFiles/emptcp_tests.dir/stats/csv_test.cpp.o" "gcc" "tests/CMakeFiles/emptcp_tests.dir/stats/csv_test.cpp.o.d"
  "/root/repo/tests/stats/summary_test.cpp" "tests/CMakeFiles/emptcp_tests.dir/stats/summary_test.cpp.o" "gcc" "tests/CMakeFiles/emptcp_tests.dir/stats/summary_test.cpp.o.d"
  "/root/repo/tests/stats/table_test.cpp" "tests/CMakeFiles/emptcp_tests.dir/stats/table_test.cpp.o" "gcc" "tests/CMakeFiles/emptcp_tests.dir/stats/table_test.cpp.o.d"
  "/root/repo/tests/stats/timeseries_test.cpp" "tests/CMakeFiles/emptcp_tests.dir/stats/timeseries_test.cpp.o" "gcc" "tests/CMakeFiles/emptcp_tests.dir/stats/timeseries_test.cpp.o.d"
  "/root/repo/tests/tcp/buffers_test.cpp" "tests/CMakeFiles/emptcp_tests.dir/tcp/buffers_test.cpp.o" "gcc" "tests/CMakeFiles/emptcp_tests.dir/tcp/buffers_test.cpp.o.d"
  "/root/repo/tests/tcp/cc_test.cpp" "tests/CMakeFiles/emptcp_tests.dir/tcp/cc_test.cpp.o" "gcc" "tests/CMakeFiles/emptcp_tests.dir/tcp/cc_test.cpp.o.d"
  "/root/repo/tests/tcp/rtt_test.cpp" "tests/CMakeFiles/emptcp_tests.dir/tcp/rtt_test.cpp.o" "gcc" "tests/CMakeFiles/emptcp_tests.dir/tcp/rtt_test.cpp.o.d"
  "/root/repo/tests/tcp/tcp_recovery_test.cpp" "tests/CMakeFiles/emptcp_tests.dir/tcp/tcp_recovery_test.cpp.o" "gcc" "tests/CMakeFiles/emptcp_tests.dir/tcp/tcp_recovery_test.cpp.o.d"
  "/root/repo/tests/tcp/tcp_socket_test.cpp" "tests/CMakeFiles/emptcp_tests.dir/tcp/tcp_socket_test.cpp.o" "gcc" "tests/CMakeFiles/emptcp_tests.dir/tcp/tcp_socket_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/emptcp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
