// Example: the §5.4 Web-browsing case study as an application.
//
// Fetches a CNN-home-page-like document (107 objects) over six parallel
// persistent connections for each protocol and prints the Fig. 17
// comparison. Shows eMPTCP's delayed subflow establishment doing its job:
// no object is large enough to justify waking the LTE radio.
//
//   $ ./web_browsing [objects] [parallel]
#include <cstdio>
#include <cstdlib>

#include "app/scenario.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  using namespace emptcp;

  const std::size_t objects =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 107;
  const std::size_t parallel =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 6;

  const app::WebPage page = app::WebPage::cnn_like(911, objects);
  std::printf("web browsing: %zu objects, %.2f MB total, %zu parallel "
              "persistent connections\n\n",
              page.object_sizes.size(),
              static_cast<double>(page.total_bytes()) / 1e6, parallel);

  app::ScenarioConfig cfg;
  cfg.wifi.down_mbps = 15.0;  // Good WiFi & Good LTE, like the paper
  cfg.cell.down_mbps = 12.0;

  app::Scenario scenario(cfg);
  stats::Table table({"protocol", "page latency (s)", "energy (J)",
                      "LTE used", "LTE activations"});
  for (app::Protocol p : {app::Protocol::kMptcp, app::Protocol::kEmptcp,
                          app::Protocol::kTcpWifi}) {
    const app::RunMetrics m = scenario.run_web_page(p, page, parallel, 3);
    table.add_row({app::to_string(p),
                   stats::Table::num(m.download_time_s, 2),
                   stats::Table::num(m.energy_j, 1),
                   m.cellular_used ? "yes" : "no",
                   std::to_string(m.cellular_activations)});
    if (!m.completed) std::printf("warning: %s did not finish\n",
                                  app::to_string(p));
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Paper Fig. 17: MPTCP burns ~60%% more energy than eMPTCP "
              "and TCP/WiFi at the same latency, because all %zu objects "
              "are small and the LTE subflows never pay off.\n",
              page.object_sizes.size());
  return 0;
}
