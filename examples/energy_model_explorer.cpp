// Example: interactive-style exploration of the energy model and the EIB —
// the offline machinery behind eMPTCP's decisions (§3.3, Figs. 3/4,
// Table 2).
//
//   $ ./energy_model_explorer [wifi_mbps] [lte_mbps] [size_mb]
//
// Prints, for the given operating point: per-byte efficiency of each
// interface choice, the EIB row, the steady-state and finite-transfer
// optimal choices, and what eMPTCP would therefore do.
#include <cstdio>
#include <cstdlib>

#include "core/energy_info_base.hpp"
#include "energy/device_profile.hpp"
#include "energy/model_calc.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  using namespace emptcp;

  const double wifi = argc > 1 ? std::atof(argv[1]) : 2.0;
  const double lte = argc > 2 ? std::atof(argv[2]) : 8.0;
  const double size_mb = argc > 3 ? std::atof(argv[3]) : 16.0;
  const double bytes = size_mb * 1024 * 1024;

  const energy::DeviceProfile dev = energy::DeviceProfile::galaxy_s3();
  const energy::EnergyModel m = dev.model();

  std::printf("device: %s   operating point: WiFi %.2f Mbps, LTE %.2f "
              "Mbps, transfer %.1f MB\n\n",
              dev.name.c_str(), wifi, lte, size_mb);

  stats::Table power({"interface", "idle (mW)", "P(x) (mW)",
                      "fixed overhead (J)"});
  power.add_row({"wifi", stats::Table::num(dev.wifi.idle_mw, 1),
                 stats::Table::num(dev.wifi.active_power_mw(wifi), 0),
                 stats::Table::num(dev.wifi.fixed_overhead_j(), 2)});
  power.add_row({"lte", stats::Table::num(dev.lte.idle_mw, 1),
                 stats::Table::num(dev.lte.active_power_mw(lte), 0),
                 stats::Table::num(dev.lte.fixed_overhead_j(), 2)});
  std::printf("%s\n", power.render().c_str());

  stats::Table eff({"choice", "energy/Mb (mJ)", "whole transfer (J)"});
  eff.add_row({"wifi-only", stats::Table::num(m.per_mbit_wifi(wifi), 0),
               stats::Table::num(
                   energy::finite_transfer_j(
                       m, energy::PathChoice::kWifiOnly, bytes, wifi, lte),
                   1)});
  eff.add_row({"lte-only", stats::Table::num(m.per_mbit_cell(lte), 0),
               stats::Table::num(
                   energy::finite_transfer_j(
                       m, energy::PathChoice::kCellOnly, bytes, wifi, lte),
                   1)});
  eff.add_row({"both", stats::Table::num(m.per_mbit_both(wifi, lte), 0),
               stats::Table::num(
                   energy::finite_transfer_j(m, energy::PathChoice::kBoth,
                                             bytes, wifi, lte),
                   1)});
  std::printf("%s\n", eff.render().c_str());

  const core::EnergyInfoBase eib = core::EnergyInfoBase::generate(m);
  const energy::WifiThresholds t = eib.thresholds_at(lte);
  std::printf("EIB row @ LTE %.2f Mbps: LTE-only below %.3f, WiFi-only at/"
              "above %.3f (Table 2 format)\n",
              lte, t.cell_only_below, t.wifi_only_at_least);
  std::printf("steady-state optimum:   %s\n",
              energy::to_string(energy::best_choice_steady(m, wifi, lte)));
  std::printf("finite-transfer optimum (%.1f MB, incl. promotion+tail): "
              "%s\n\n",
              size_mb,
              energy::to_string(
                  energy::best_choice_finite(m, bytes, wifi, lte)));

  std::printf("what eMPTCP does here: ");
  if (wifi >= t.wifi_only_at_least) {
    std::printf("keeps the LTE subflow suspended (or never establishes it) "
                "— WiFi alone is the per-byte optimum.\n");
  } else if (wifi < t.cell_only_below) {
    std::printf("uses both subflows (LTE-only would be marginally better "
                "per byte, but §3.4 notes the gain over `both` is small, so "
                "eMPTCP does not switch to cellular-only).\n");
  } else {
    std::printf("uses both subflows — this operating point is inside the "
                "Fig. 3 'V' region.\n");
  }
  return 0;
}
