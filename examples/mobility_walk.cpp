// Example: the paper's §4.5 mobile scenario as an application.
//
// Walks the 250-second route from Fig. 11 while streaming an unbounded
// download, then prints the throughput/energy traces and a Fig. 13 style
// summary.
//
//   $ ./mobility_walk [protocol]   protocol: emptcp|mptcp|tcp (default emptcp)
#include <cstdio>
#include <cstring>

#include "app/scenario.hpp"
#include "stats/table.hpp"
#include "stats/timeseries.hpp"

int main(int argc, char** argv) {
  using namespace emptcp;

  app::Protocol proto = app::Protocol::kEmptcp;
  if (argc > 1) {
    if (std::strcmp(argv[1], "mptcp") == 0) proto = app::Protocol::kMptcp;
    if (std::strcmp(argv[1], "tcp") == 0) proto = app::Protocol::kTcpWifi;
  }

  app::ScenarioConfig cfg;
  cfg.wifi.down_mbps = 18.0;
  cfg.cell.down_mbps = 9.0;
  cfg.mobility = true;
  cfg.record_series = true;

  std::printf("mobility walk (paper §4.5): 250 s route, protocol %s, "
              "device %s\n\n",
              app::to_string(proto), cfg.device.name.c_str());

  app::Scenario scenario(cfg);
  const app::RunMetrics m = scenario.run_timed(proto, sim::seconds(250), 42);

  std::printf("wifi throughput along the walk (Mbps):\n%s\n",
              stats::ascii_chart(m.wifi_rate_series, 72, 8).c_str());
  std::printf("lte throughput (Mbps):\n%s\n",
              stats::ascii_chart(m.cell_rate_series, 72, 8).c_str());
  std::printf("accumulated energy (J):\n%s\n",
              stats::ascii_chart(m.energy_series, 72, 8).c_str());

  stats::Table table({"metric", "value"});
  table.add_row({"downloaded",
                 stats::Table::num(
                     static_cast<double>(m.bytes_received) / 1e6, 1) +
                     " MB"});
  table.add_row({"energy", stats::Table::num(m.energy_j, 1) + " J"});
  table.add_row({"energy per MB",
                 stats::Table::num(m.energy_per_mb(), 2) + " J/MB"});
  table.add_row({"wifi / lte energy",
                 stats::Table::num(m.wifi_j, 1) + " / " +
                     stats::Table::num(m.cell_j, 1) + " J"});
  table.add_row({"LTE activations", std::to_string(m.cellular_activations)});
  table.add_row({"controller switches",
                 std::to_string(m.controller_switches)});
  std::printf("%s\n", table.render().c_str());
  std::printf("Try './mobility_walk mptcp' and './mobility_walk tcp' to see "
              "the Fig. 13 comparison.\n");
  return 0;
}
