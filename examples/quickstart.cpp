// Quickstart: download one 16 MB file over each protocol and compare
// energy and completion time — the core comparison the paper makes.
//
//   $ ./quickstart [wifi_mbps] [lte_mbps]
//
// Defaults model a mediocre WiFi link (3 Mbps) and a good LTE link
// (9 Mbps): the regime where eMPTCP's decisions are interesting.
#include <cstdio>
#include <cstdlib>

#include "app/scenario.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  using namespace emptcp;

  app::ScenarioConfig cfg;
  cfg.wifi.down_mbps = argc > 1 ? std::atof(argv[1]) : 3.0;
  cfg.cell.down_mbps = argc > 2 ? std::atof(argv[2]) : 9.0;

  std::printf("eMPTCP quickstart: 16 MB download, WiFi %.1f Mbps / LTE %.1f "
              "Mbps, device %s\n\n",
              cfg.wifi.down_mbps, cfg.cell.down_mbps,
              cfg.device.name.c_str());

  app::Scenario scenario(cfg);
  stats::Table table({"protocol", "time (s)", "energy (J)", "wifi (J)",
                      "lte (J)", "LTE used", "J/MB"});

  const app::Protocol protocols[] = {
      app::Protocol::kTcpWifi, app::Protocol::kTcpLte, app::Protocol::kMptcp,
      app::Protocol::kEmptcp, app::Protocol::kWifiFirst};

  for (app::Protocol p : protocols) {
    const app::RunMetrics m =
        scenario.run_download(p, 16ull * 1024 * 1024, /*seed=*/7);
    table.add_row({app::to_string(p), stats::Table::num(m.download_time_s, 1),
                   stats::Table::num(m.energy_j, 1),
                   stats::Table::num(m.wifi_j, 1),
                   stats::Table::num(m.cell_j, 1),
                   m.cellular_used ? "yes" : "no",
                   stats::Table::num(m.energy_per_mb(), 2)});
    if (!m.completed) std::printf("warning: %s did not complete\n",
                                  app::to_string(p));
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("Expected shape (paper Figs. 5/6/16): eMPTCP tracks the most\n"
              "energy-efficient choice; MPTCP is fastest but burns the LTE\n"
              "radio; TCP/WiFi is slowest when WiFi is weak.\n");
  return 0;
}
