// Paper Fig. 7: example time series of accumulated energy while the WiFi
// AP's bandwidth follows a two-state on-off process (>=10 / <=1 Mbps,
// 40 s mean sojourns), 256 MB download. The lower panel of the paper plots
// the WiFi throughput trace; we render both as ASCII charts.
#include "bench_util.hpp"

int main() {
  using namespace emptcp;
  using namespace emptcp::bench;

  header("Figure 7",
         "Accumulated energy under random WiFi bandwidth changes (single "
         "run, 256 MB)");

  app::ScenarioConfig cfg = lab_config(12.0, 9.0, /*record_series=*/true);
  cfg.wifi_onoff = true;
  cfg.onoff.high_mbps = 12.0;
  cfg.onoff.low_mbps = 0.8;
  cfg.onoff.mean_high_s = 40.0;
  cfg.onoff.mean_low_s = 40.0;
  app::Scenario s(cfg);

  const app::Protocol protocols[] = {app::Protocol::kMptcp,
                                     app::Protocol::kEmptcp,
                                     app::Protocol::kTcpWifi};
  for (app::Protocol p : protocols) {
    const app::RunMetrics m = s.run_download(p, 256 * kMB, 7);
    std::printf("%s: done at %.0f s, total %.0f J%s\n", app::to_string(p),
                m.download_time_s, m.energy_j,
                m.completed ? "" : " (DID NOT COMPLETE)");
    std::printf("accumulated energy (J):\n%s",
                stats::ascii_chart(m.energy_series, 72, 8).c_str());
    std::printf("wifi throughput (Mbps): %s\n",
                stats::sparkline(m.wifi_rate_series, 72).c_str());
    std::printf("lte  throughput (Mbps): %s\n\n",
                stats::sparkline(m.cell_rate_series, 72).c_str());
    maybe_dump_csv(std::string("fig07_") + app::to_string(p),
                   {{"energy_j", &m.energy_series},
                    {"wifi_mbps", &m.wifi_rate_series},
                    {"lte_mbps", &m.cell_rate_series}});
  }
  note("eMPTCP's energy slope flattens during high-WiFi periods (LTE "
       "suspended) while MPTCP's stays steep; TCP/WiFi stalls flat through "
       "every low-bandwidth period and finishes last (paper: eMPTCP "
       "finishes ~50% sooner than TCP/WiFi with ~15% less energy).");
  return 0;
}
