// Paper Fig. 10: energy and download time under random WiFi background
// traffic, as a percentage of standard MPTCP, for
// (λoff, n) in {(0.025, 2), (0.025, 3), (0.05, 3)}; 256 MB, 5 runs (§4.4).
#include "bench_util.hpp"

int main() {
  using namespace emptcp;
  using namespace emptcp::bench;

  header("Figure 10",
         "Energy & time relative to MPTCP under WiFi background traffic "
         "(256 MB, 5 runs)");

  struct Setting {
    double lambda_off;
    int n;
  };
  const Setting settings[] = {{0.025, 2}, {0.025, 3}, {0.05, 3}};

  const app::Protocol protocols[] = {app::Protocol::kMptcp,
                                     app::Protocol::kEmptcp,
                                     app::Protocol::kTcpWifi};

  // Flatten (setting, protocol) into one spec list so every replication
  // across all three settings runs concurrently; the matrix comes back in
  // submission order, so aggregation matches the sequential nesting.
  std::vector<RunSpec> specs;
  for (const Setting& set : settings) {
    app::ScenarioConfig cfg = lab_config(15.0, 9.0);
    cfg.interferers = set.n;
    cfg.lambda_on = 0.05;
    cfg.lambda_off = set.lambda_off;
    for (const app::Protocol p : protocols) {
      specs.push_back(download_spec("fig10-n" + std::to_string(set.n), cfg, p,
                                    256 * kMB));
    }
  }
  const auto matrix = run_specs(specs, runtime::seed_range(60, 5));

  stats::Table table({"(λoff, n)", "protocol", "energy vs MPTCP",
                      "time vs MPTCP"});
  for (std::size_t si = 0; si < std::size(settings); ++si) {
    const Setting& set = settings[si];
    double e[3] = {0, 0, 0};
    double t[3] = {0, 0, 0};
    for (int i = 0; i < 3; ++i) {
      for (const app::RunMetrics& m : matrix[si * 3 + i]) {
        e[i] += m.energy_j;
        t[i] += m.download_time_s;
      }
    }
    const std::string label = "(" + stats::Table::num(set.lambda_off, 3) +
                              ", " + std::to_string(set.n) + ")";
    for (int i = 1; i < 3; ++i) {
      table.add_row({label, app::to_string(protocols[i]),
                     stats::Table::num(100.0 * e[i] / e[0], 0) + "%",
                     stats::Table::num(100.0 * t[i] / t[0], 0) + "%"});
    }
  }
  std::printf("%s\n", table.render().c_str());
  note("paper: eMPTCP 89-91% of MPTCP's energy at 120-140% of its time; "
       "TCP/WiFi up to ~500% of MPTCP's time. eMPTCP's energy advantage "
       "shrinks as contention (n, λoff) grows.");
  return 0;
}
