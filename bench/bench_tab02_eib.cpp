// Paper Table 2: the Energy Information Base — per-LTE-rate WiFi
// thresholds where the optimal interface set flips between LTE-only,
// both, and WiFi-only. Generated offline from the device energy model,
// exactly as §3.3 generates the paper's EIBs, and compared row-by-row
// against the paper's published example values.
#include "bench_util.hpp"
#include "core/energy_info_base.hpp"
#include "energy/device_profile.hpp"

int main() {
  using namespace emptcp;
  using namespace emptcp::bench;

  header("Table 2", "Energy Information Base (Samsung Galaxy S3, LTE)");

  const core::EnergyInfoBase eib = core::EnergyInfoBase::generate(
      energy::DeviceProfile::galaxy_s3().model(), 10.0, 0.5);

  struct PaperRow {
    double lte, lo, hi;
  };
  const PaperRow paper[] = {{0.5, 0.043, 0.234},
                            {1.0, 0.134, 0.502},
                            {1.5, 0.209, 0.803},
                            {2.0, 0.304, 1.070}};

  stats::Table table({"LTE Mbps", "LTE-only below (ours)", "(paper)",
                      "WiFi-only at/above (ours)", "(paper)"});
  for (const PaperRow& r : paper) {
    const energy::WifiThresholds t = eib.thresholds_at(r.lte);
    table.add_row({stats::Table::num(r.lte, 1),
                   stats::Table::num(t.cell_only_below, 3),
                   stats::Table::num(r.lo, 3),
                   stats::Table::num(t.wifi_only_at_least, 3),
                   stats::Table::num(r.hi, 3)});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("full generated table (every second row):\n");
  stats::Table full({"LTE Mbps", "LTE-only below", "WiFi-only at/above"});
  for (std::size_t i = 0; i < eib.rows().size(); i += 2) {
    const auto& row = eib.rows()[i];
    full.add_row({stats::Table::num(row.cell_mbps, 2),
                  stats::Table::num(row.cell_only_below, 3),
                  stats::Table::num(row.wifi_only_at_least, 3)});
  }
  std::printf("%s\n", full.render().c_str());
  note("both thresholds increase monotonically with LTE throughput and "
       "track the paper's example rows (same order of magnitude, same "
       "ordering).");
  return 0;
}
