// Ablation (DESIGN.md #4): the §3.6 resumed-subflow treatment — disabling
// the RFC 2861 cwnd reset and zeroing the RTT so the scheduler probes a
// resumed subflow immediately. Measured on a workload that suspends and
// resumes the LTE subflow repeatedly (on-off WiFi): with the tweaks off, a
// resumed subflow restarts from the initial window after every idle
// period and ramps slowly.
#include "bench_util.hpp"

int main() {
  using namespace emptcp;
  using namespace emptcp::bench;

  header("Ablation: resumed-subflow tweaks (§3.6)",
         "cwnd-validation off + RTT reset, vs standard behaviour");

  stats::Table table({"resume tweaks", "time (s)", "energy (J)",
                      "bytes over LTE (MB)"});
  for (const bool tweaks : {true, false}) {
    // Short bad-WiFi phases over a high-BDP cellular path (20 Mbps at
    // ~250 ms RTT): the resumed subflow's ramp takes whole seconds, so
    // each resume either starts from the retained window (tweaks on) or
    // crawls through slow-start (off).
    app::ScenarioConfig cfg = lab_config(12.0, 20.0);
    cfg.cell.rtt = sim::milliseconds(250);
    cfg.cell.queue_bytes = 1 << 20;
    cfg.wifi_onoff = true;
    cfg.onoff.high_mbps = 12.0;
    cfg.onoff.low_mbps = 0.6;
    cfg.onoff.mean_high_s = 12.0;
    cfg.onoff.mean_low_s = 8.0;
    cfg.emptcp.mptcp.resume_tweaks = tweaks;
    app::Scenario s(cfg);

    std::vector<double> time;
    std::vector<double> energy;
    std::vector<double> lte_mb;
    for (int run = 0; run < 3; ++run) {
      const app::RunMetrics m =
          s.run_download(app::Protocol::kEmptcp, 96 * kMB, 700 + run);
      time.push_back(m.download_time_s);
      energy.push_back(m.energy_j);
      lte_mb.push_back(m.mean_cell_mbps * m.download_time_s / 8.0);
    }
    table.add_row({tweaks ? "on (paper)" : "off", mean_sem(time, 0),
                   mean_sem(energy, 0), mean_sem(lte_mb, 0)});
  }
  std::printf("%s\n", table.render().c_str());
  note("with the tweaks on, a resumed LTE subflow contributes throughput "
       "immediately, so downloads finish sooner at similar or lower "
       "energy; with them off the subflow crawls through slow-start after "
       "every resume.");
  return 0;
}
