// Paper Fig. 1: fixed energy cost (promotion + tail) of waking each
// interface, for both devices.
//
// Reproduced two ways: (a) closed-form from the device profiles, and
// (b) dynamically, by waking each radio once in the simulator and
// integrating the measured power until it idles — the two must agree,
// which is the calibration check for the whole energy subsystem.
#include "bench_util.hpp"
#include "energy/device_profile.hpp"
#include "energy/energy_tracker.hpp"
#include "net/node.hpp"

namespace {

using namespace emptcp;

/// Wakes a radio of the given params once and integrates energy to idle.
double measured_overhead_j(const energy::InterfacePowerParams& params,
                           net::InterfaceType type) {
  sim::Simulation sim(1);
  net::Node node(sim, "dev");
  auto& ifc = node.add_interface({type, 1, "radio"});
  net::Link link(sim, net::Link::Config{});
  ifc.set_default_route(link);

  energy::RadioModel radio(params);
  energy::EnergyTracker tracker(sim, {sim::milliseconds(10), 0.0, false, 1});
  tracker.track(ifc, radio);
  tracker.start();

  sim.in(sim::milliseconds(50), [&] {
    net::Packet p;
    p.src = 1;
    p.dst = 2;
    p.payload = 60;  // one tiny datagram: almost pure fixed cost
    ifc.send(p);
  });
  sim.run_until(sim::seconds(20));
  // Subtract the idle floor over the 20 s window.
  return tracker.iface_j(type) - params.idle_mw * 20.0 / 1000.0;
}

}  // namespace

int main() {
  using namespace emptcp;
  using namespace emptcp::bench;

  header("Figure 1", "Fixed energy cost: WiFi and cellular (promotion + tail)");
  std::printf("paper bars: S3 WiFi 0.15 J, 3G ~7 J, LTE ~12 J; "
              "N5 WiFi 0.06 J, cellular ~15%% lower\n\n");

  stats::Table table({"device", "interface", "model (J)", "measured (J)"});
  for (const energy::DeviceProfile& dev :
       {energy::DeviceProfile::galaxy_s3(), energy::DeviceProfile::nexus5()}) {
    struct Row {
      const energy::InterfacePowerParams* p;
      net::InterfaceType t;
    };
    const Row rows[] = {{&dev.wifi, net::InterfaceType::kWifi},
                        {&dev.threeg, net::InterfaceType::kThreeG},
                        {&dev.lte, net::InterfaceType::kLte}};
    for (const Row& r : rows) {
      table.add_row({dev.name, r.p->name,
                     stats::Table::num(r.p->fixed_overhead_j(), 2),
                     stats::Table::num(measured_overhead_j(*r.p, r.t), 2)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  note("LTE >> 3G >> WiFi per device; Nexus 5 below Galaxy S3; "
       "measured ~= closed-form.");
  return 0;
}
