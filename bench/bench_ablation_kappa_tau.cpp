// Ablation (DESIGN.md #3): the delayed-subflow parameters κ and τ (§3.5,
// §4.1). Sweeps κ on small-vs-large downloads over good WiFi (where the
// join should never happen) and bad WiFi (where the join is needed), and
// sweeps τ on bad WiFi where κ is never reached in time.
#include "bench_util.hpp"

int main() {
  using namespace emptcp;
  using namespace emptcp::bench;

  header("Ablation: kappa & tau",
         "delayed-subflow thresholds vs energy and time");

  // kappa matters when WiFi is slow enough that the EIB would use both
  // (2 Mbps here) but the transfer is small: a small kappa wakes LTE for
  // a file that WiFi would have finished before tau anyway.
  std::printf("kappa sweep, 512 KB download over slow WiFi (2 Mbps) with "
              "good LTE (9 Mbps), tau = 3 s:\n");
  stats::Table ktable({"kappa", "LTE used", "energy (J)", "time (s)"});
  for (const std::uint64_t kappa :
       {std::uint64_t{64} * kKB, std::uint64_t{256} * kKB,
        std::uint64_t{1} * kMB, std::uint64_t{4} * kMB}) {
    app::ScenarioConfig cfg = lab_config(2.0, 9.0);
    cfg.emptcp.delayed.kappa_bytes = kappa;
    app::Scenario s(cfg);
    const app::RunMetrics m =
        s.run_download(app::Protocol::kEmptcp, 512 * kKB, 600);
    ktable.add_row({std::to_string(kappa / kKB) + " KB",
                    m.cellular_used ? "yes" : "no",
                    stats::Table::num(m.energy_j, 1),
                    stats::Table::num(m.download_time_s, 1)});
  }
  std::printf("%s\n", ktable.render().c_str());

  std::printf("tau sweep, 16 MB download over bad WiFi (0.8 Mbps) with good "
              "LTE (9 Mbps) — kappa (1 MB) takes ~10 s on this WiFi, so tau "
              "controls the join:\n");
  stats::Table ttable({"tau (s)", "time (s)", "energy (J)"});
  for (const double tau : {1.0, 3.0, 6.0, 10.0}) {
    app::ScenarioConfig cfg = lab_config(0.8, 9.0);
    cfg.emptcp.delayed.tau_s = tau;
    app::Scenario s(cfg);
    const app::RunMetrics m =
        s.run_download(app::Protocol::kEmptcp, 16 * kMB, 601);
    ttable.add_row({stats::Table::num(tau, 0),
                    stats::Table::num(m.download_time_s, 1),
                    stats::Table::num(m.energy_j, 1)});
  }
  std::printf("%s\n", ttable.render().c_str());

  std::printf("Eq. 1 guidance (minimum tau to collect phi=10 samples):\n");
  stats::Table etable({"wifi Mbps", "rtt (ms)", "min tau (s)"});
  for (const auto& [bw, rtt] : std::vector<std::pair<double, double>>{
           {2.0, 30.0}, {10.0, 30.0}, {10.0, 190.0}, {20.0, 250.0}}) {
    etable.add_row(
        {stats::Table::num(bw, 0), stats::Table::num(rtt, 0),
         stats::Table::num(core::DelayedSubflowManager::minimum_tau_s(
                               bw, rtt / 1000.0, 10 * 1448.0, 10),
                           2)});
  }
  std::printf("%s\n", etable.render().c_str());
  note("small kappa wakes LTE for a transfer that finishes on WiFi before "
       "tau anyway (energy jumps by the ~12.6 J fixed cost); large tau "
       "delays rescue on bad WiFi (time grows ~linearly with tau). The "
       "paper's kappa=1MB / tau=3s sit at the joint knee.");
  return 0;
}
