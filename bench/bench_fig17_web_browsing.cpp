// Paper Fig. 17 / §5.4: Web browsing case study — a CNN-home-page-like
// document of 107 objects fetched over six parallel persistent
// connections, in the paper's Good WiFi & Good LTE setting, averaged over
// ten runs.
#include "bench_util.hpp"
#include "sim/random.hpp"

int main() {
  using namespace emptcp;
  using namespace emptcp::bench;

  header("Figure 17",
         "Web browsing (107 objects, 6 parallel persistent connections, "
         "10 runs)");

  const app::WebPage page = app::WebPage::cnn_like(2014'09'11 % 100000);
  std::printf("page: %zu objects, %.2f MB total, largest %.0f KB\n\n",
              page.object_sizes.size(),
              static_cast<double>(page.total_bytes()) / 1e6,
              static_cast<double>(*std::max_element(
                  page.object_sizes.begin(), page.object_sizes.end())) /
                  1024.0);

  const app::Protocol protocols[] = {app::Protocol::kMptcp,
                                     app::Protocol::kEmptcp,
                                     app::Protocol::kTcpWifi};
  std::vector<double> energy[3];
  std::vector<double> latency[3];
  bool lte_used[3] = {false, false, false};
  for (int run = 0; run < 10; ++run) {
    // Good WiFi & Good LTE, with run-to-run environmental jitter.
    sim::Rng jitter(1700 + static_cast<std::uint64_t>(run));
    app::ScenarioConfig cfg = lab_config(15.0 * jitter.uniform(0.9, 1.1),
                                         12.0 * jitter.uniform(0.9, 1.1));
    cfg.wifi.rtt = site_rtt(ServerSite::kWdc);
    cfg.cell.rtt = site_rtt(ServerSite::kWdc) + sim::milliseconds(30);
    app::Scenario s(cfg);
    for (int i = 0; i < 3; ++i) {
      const app::RunMetrics m =
          s.run_web_page(protocols[i], page, 6, 170 + run);
      energy[i].push_back(m.energy_j);
      latency[i].push_back(m.download_time_s);
      lte_used[i] |= m.cellular_used;
    }
  }

  stats::Table table({"protocol", "energy (J)", "page latency (s)",
                      "LTE used"});
  for (int i = 0; i < 3; ++i) {
    table.add_row({app::to_string(protocols[i]), mean_sem(energy[i], 2),
                   mean_sem(latency[i], 2), lte_used[i] ? "yes" : "no"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("MPTCP energy overhead vs eMPTCP: +%.0f%%\n\n",
              100.0 * (stats::mean(energy[0]) / stats::mean(energy[1]) -
                       1.0));
  note("paper: MPTCP consumes ~60% more energy (~10 J extra) than eMPTCP "
       "and TCP/WiFi at essentially the same latency — every object is "
       "small, so eMPTCP never wakes the LTE radio while MPTCP opens six "
       "LTE subflows for nothing.");
  return 0;
}
