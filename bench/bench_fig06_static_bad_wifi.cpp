// Paper Fig. 6: static bad WiFi (<1 Mbps), 256 MB download, energy and
// download-time bars for MPTCP / eMPTCP / TCP-over-WiFi (§4.2).
#include "bench_util.hpp"
#include "sim/random.hpp"

namespace {
constexpr double kBaseWifiMbps = 0.8;
}  // namespace

int main() {
  using namespace emptcp;
  using namespace emptcp::bench;

  header("Figure 6", "Static bad WiFi (<1 Mbps), 256 MB download, 5 runs");

  const app::Protocol protocols[] = {app::Protocol::kMptcp,
                                     app::Protocol::kEmptcp,
                                     app::Protocol::kTcpWifi};

  stats::Table table({"protocol", "energy (J)", "time (s)", "LTE used"});
  for (app::Protocol p : protocols) {
    std::vector<double> energy;
    std::vector<double> time;
    bool lte = false;
    for (int run = 0; run < 5; ++run) {
      // Small per-run environmental jitter, standing in for the run-to-run
      // variation of the paper's physical testbed.
      sim::Rng jitter(2000 + static_cast<std::uint64_t>(run));
      app::Scenario s(lab_config(kBaseWifiMbps * jitter.uniform(0.92, 1.08),
                                 9.0 * jitter.uniform(0.92, 1.08)));
      const app::RunMetrics m = s.run_download(p, 256 * kMB, 20 + run);
      energy.push_back(m.energy_j);
      time.push_back(m.download_time_s);
      lte |= m.cellular_used;
    }
    table.add_row({app::to_string(p), mean_sem(energy), mean_sem(time),
                   lte ? "yes" : "no"});
  }
  std::printf("%s\n", table.render().c_str());
  note("eMPTCP joins LTE after the kappa/tau startup delay and then "
       "performs like MPTCP; TCP over the 0.8 Mbps WiFi takes an order of "
       "magnitude longer (paper: ~2500 s vs ~250 s class).");
  return 0;
}
