// Shared machinery for the "in the wild" benches (paper §5).
//
// The paper collects traces at three client locations (campus building,
// long-reach-Ethernet student housing, cable-backed residence) against
// servers in WDC / AMS / SNG, ten iterations each, then buckets every
// trace into four categories by measured WiFi/LTE quality with an 8 Mbps
// Good/Bad threshold (§5.1). We reproduce the methodology: per-run link
// capacities are drawn from location-dependent distributions, the
// scenario runs all three protocols on identical conditions (the paper
// randomises ordering within a set; a fresh simulation per protocol with
// the same seed is the simulator equivalent), and runs are categorised by
// the drawn capacities.
#pragma once

#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "sim/random.hpp"

namespace emptcp::bench {

struct WildDraw {
  double wifi_mbps = 0.0;
  double cell_mbps = 0.0;
  ServerSite site = ServerSite::kWdc;
  std::uint64_t seed = 0;
};

enum class Category { kBadBad, kBadGood, kGoodBad, kGoodGood };

inline const char* to_string(Category c) {
  switch (c) {
    case Category::kBadBad: return "Bad WiFi & Bad LTE";
    case Category::kBadGood: return "Bad WiFi & Good LTE";
    case Category::kGoodBad: return "Good WiFi & Bad LTE";
    case Category::kGoodGood: return "Good WiFi & Good LTE";
  }
  return "?";
}

inline constexpr double kGoodThresholdMbps = 8.0;  // paper §5.1

inline Category categorize(double wifi_mbps, double cell_mbps) {
  const bool wifi_good = wifi_mbps >= kGoodThresholdMbps;
  const bool cell_good = cell_mbps >= kGoodThresholdMbps;
  if (wifi_good && cell_good) return Category::kGoodGood;
  if (wifi_good) return Category::kGoodBad;
  if (cell_good) return Category::kBadGood;
  return Category::kBadBad;
}

/// Draws the wild sample set: three client locations x three servers x
/// `iters` iterations. Location biases WiFi quality (campus good, LRE
/// middling, cable variable); LTE varies with coverage independent of
/// location.
inline std::vector<WildDraw> wild_draws(int iters, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<WildDraw> draws;
  const double wifi_lo[] = {6.0, 1.0, 0.5};   // campus, LRE, cable
  const double wifi_hi[] = {22.0, 9.0, 18.0};
  const ServerSite sites[] = {ServerSite::kWdc, ServerSite::kAms,
                              ServerSite::kSng};
  std::uint64_t run_seed = seed * 1000;
  for (int loc = 0; loc < 3; ++loc) {
    for (ServerSite site : sites) {
      for (int it = 0; it < iters; ++it) {
        WildDraw d;
        d.wifi_mbps = rng.uniform(wifi_lo[loc], wifi_hi[loc]);
        d.cell_mbps = rng.uniform(0.8, 20.0);
        d.site = site;
        d.seed = ++run_seed;
        draws.push_back(d);
      }
    }
  }
  return draws;
}

inline app::ScenarioConfig wild_config(const WildDraw& d) {
  app::ScenarioConfig cfg = lab_config(d.wifi_mbps, d.cell_mbps);
  cfg.wifi.rtt = site_rtt(d.site);
  cfg.cell.rtt = site_rtt(d.site) + sim::milliseconds(30);
  return cfg;
}

}  // namespace emptcp::bench
