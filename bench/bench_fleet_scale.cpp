// Sharded-fleet scaling sweep -> BENCH_fleet_scale.json.
//
// Measures the conservative parallel engine's wall-clock scaling on one
// decomposable workload: a closed-loop eMPTCP fleet partitioned into
// cells, swept over fleet size {256, 1k, 10k, 100k} x worker shards
// {1, 2, 4, 8}. Every combination executes the same fixed virtual window,
// so the event count per fleet size is deterministic and identical across
// shard counts (verified here, loudly) — only the wall clock may differ.
//
// The JSON layout mirrors BENCH_core.json: deterministic counts plus
// machine-dependent rates, diffable via `emptcp-report --diff`
// (events_per_sec under the factor-5 rate tolerance, speedups under the
// min-factor speedup tolerance, raw seconds informational).
//
// EMPTCP_BENCH_QUICK=1 shrinks the virtual windows ~5x and caps the sweep
// at 10k clients so a laptop smoke run finishes in minutes; the committed
// baseline should come from a full run. On a single-core machine the
// speedups hover around 1.0 — the curve is only meaningful on >= 4 cores.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "analysis/perf_report.hpp"
#include "runtime/telemetry.hpp"
#include "sim/shard_engine.hpp"
#include "stats/csv.hpp"
#include "workload/sharded_fleet.hpp"

namespace {

using namespace emptcp;
using Clock = std::chrono::steady_clock;

bool bench_quick() { return std::getenv("EMPTCP_BENCH_QUICK") != nullptr; }

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct SweepPoint {
  std::size_t clients;
  std::size_t clients_per_cell;
  double warm_s;    ///< virtual warm-up (connection churn, slab growth)
  double window_s;  ///< measured virtual window
};

struct ShardRun {
  std::size_t shards = 0;
  std::uint64_t events = 0;
  double seconds = 0.0;
  sim::ShardEnginePerf perf;  ///< always-on epoch aggregates
};

/// EMPTCP_PERF_DIR, or nullptr when unset/empty.
const char* perf_dir() {
  const char* dir = std::getenv("EMPTCP_PERF_DIR");
  return dir != nullptr && *dir != '\0' ? dir : nullptr;
}

workload::FleetConfig sweep_config(const SweepPoint& pt, std::size_t shards) {
  workload::FleetConfig cfg;
  cfg.scenario.wifi.down_mbps = 90.0;
  cfg.scenario.cell.down_mbps = 40.0;
  cfg.scenario.record_series = false;
  cfg.protocol = app::Protocol::kEmptcp;
  cfg.mode = workload::FleetConfig::Mode::kClosed;
  cfg.clients = pt.clients;
  cfg.flows_per_client = 0;  // endless: pure steady-state multiplexing
  cfg.flow_size.kind = workload::SizeDist::Kind::kFixed;
  cfg.flow_size.mean_bytes = 64ull * 1024 * 1024;
  cfg.sharding.clients_per_cell = pt.clients_per_cell;
  cfg.sharding.shards = shards;
  return cfg;
}

/// One (fleet size, shard count) measurement: build, warm up, then run the
/// fixed virtual window on the wall clock.
ShardRun measure(const SweepPoint& pt, std::size_t shards) {
  // One measurement per span/counter window: with telemetry on, the
  // buffers are cleared so each exported trace covers exactly this run.
  if (runtime::Telemetry::enabled()) runtime::Telemetry::instance().clear();
  workload::ShardedFleet fleet(sweep_config(pt, shards));
  fleet.start(1);
  fleet.run_until(pt.warm_s);
  const std::uint64_t before = fleet.engine().events_executed();
  const auto start = Clock::now();
  fleet.run_until(pt.warm_s + pt.window_s);
  ShardRun r;
  r.shards = shards;
  r.seconds = seconds_since(start);
  r.events = fleet.engine().events_executed() - before;
  r.perf = fleet.engine().perf();

  if (const char* dir = perf_dir()) {
    const std::string base = std::string(dir) + "/fleet_" +
                             std::to_string(pt.clients) + "_" +
                             std::to_string(shards) + "shards";
    analysis::PerfDoc doc = analysis::make_perf_doc(r.perf);
    doc.label = "fleet_" + std::to_string(pt.clients) + " shards=" +
                std::to_string(shards);
    analysis::fill_spans(doc);
    if (!stats::write_file(base + ".perf.json",
                           analysis::perf_doc_to_json(doc))) {
      std::fprintf(stderr, "bench_fleet_scale: cannot write %s.perf.json\n",
                   base.c_str());
    }
    if (!stats::write_file(
            base + ".trace.json",
            runtime::Telemetry::instance().to_chrome_json())) {
      std::fprintf(stderr, "bench_fleet_scale: cannot write %s.trace.json\n",
                   base.c_str());
    }
  }
  return r;
}

}  // namespace

int main() {
  // EMPTCP_PERF_DIR opts into the span profiler; per-measurement Chrome
  // traces and perf docs land there. BENCH_fleet_scale.json itself never
  // contains wall-clock telemetry beyond the existing rate keys.
  if (const char* dir = perf_dir()) {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
      std::fprintf(stderr, "bench_fleet_scale: cannot create %s: %s\n", dir,
                   ec.message().c_str());
      return 1;
    }
    runtime::Telemetry::instance().enable(true);
    std::printf("bench_fleet_scale: telemetry on -> %s\n", dir);
  }

  const bool quick = bench_quick();
  const double scale = quick ? 0.2 : 1.0;
  std::vector<SweepPoint> sweep = {
      {256, 32, 0.5 * scale, 2.0 * scale},
      {1'000, 125, 0.5 * scale, 2.0 * scale},
      {10'000, 625, 0.25 * scale, 1.0 * scale},
      {100'000, 1'000, 0.1 * scale, 0.25 * scale},
  };
  if (quick) sweep.pop_back();  // 100k stays a full-run measurement
  const std::vector<std::size_t> shard_counts = {1, 2, 4, 8};

  const char* path = std::getenv("EMPTCP_BENCH_JSON");
  if (path == nullptr) path = "BENCH_fleet_scale.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_fleet_scale: cannot write %s\n", path);
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"emptcp-bench-fleet-scale-v1\",\n");
  std::fprintf(f, "  \"machine_cores\": %u",
               std::thread::hardware_concurrency());

  for (const SweepPoint& pt : sweep) {
    std::vector<ShardRun> runs;
    for (const std::size_t shards : shard_counts) {
      runs.push_back(measure(pt, shards));
      std::printf(
          "fleet %zu x shards %zu: %.3fs wall, %.2fM events/s\n", pt.clients,
          shards, runs.back().seconds,
          static_cast<double>(runs.back().events) / runs.back().seconds / 1e6);
      std::fflush(stdout);
      // The determinism contract, enforced where a violation would
      // otherwise masquerade as a scaling result: every shard count must
      // execute exactly the same events over the same virtual window.
      if (runs.back().events != runs.front().events ||
          runs.back().perf.epochs != runs.front().perf.epochs) {
        std::fprintf(stderr,
                     "bench_fleet_scale: NON-DETERMINISTIC event count at "
                     "fleet %zu: shards=1 ran %llu events, shards=%zu ran "
                     "%llu\n",
                     pt.clients,
                     static_cast<unsigned long long>(runs.front().events),
                     shards,
                     static_cast<unsigned long long>(runs.back().events));
        std::fclose(f);
        return 1;
      }
    }
    const std::size_t cells =
        (pt.clients + pt.clients_per_cell - 1) / pt.clients_per_cell;
    std::fprintf(f, ",\n  \"fleet_%zu\": {\n", pt.clients);
    std::fprintf(f, "    \"clients\": %zu,\n", pt.clients);
    std::fprintf(f, "    \"cells\": %zu,\n", cells);
    std::fprintf(f, "    \"window_s\": %.3f,\n", pt.window_s);
    std::fprintf(f, "    \"events\": %llu",
                 static_cast<unsigned long long>(runs.front().events));
    // Epoch aggregates are virtual-state: pure functions of (config,
    // seed), identical for every shard count (checked below like the
    // event count). Committed so regressions in epoch batching show up
    // in the diff.
    const sim::ShardEnginePerf& ep = runs.front().perf;
    std::fprintf(f, ",\n    \"epochs\": %llu",
                 static_cast<unsigned long long>(ep.epochs));
    std::fprintf(f, ",\n    \"events_per_epoch_mean\": %.4f",
                 ep.events_per_epoch.mean());
    std::fprintf(f, ",\n    \"imbalance_pct_p90\": %llu",
                 static_cast<unsigned long long>(
                     ep.imbalance_pct.quantile_upper(0.90)));
    for (const ShardRun& r : runs) {
      std::fprintf(f, ",\n    \"seconds_%zushard\": %.6f", r.shards,
                   r.seconds);
      std::fprintf(f, ",\n    \"events_per_sec_%zushard\": %.0f", r.shards,
                   static_cast<double>(r.events) / r.seconds);
    }
    for (const ShardRun& r : runs) {
      if (r.shards == 1) continue;
      std::fprintf(f, ",\n    \"speedup_%zushards\": %.4f", r.shards,
                   runs.front().seconds / r.seconds);
    }
    std::fprintf(f, "\n  }");
  }
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  std::printf("bench_fleet_scale: wrote %s\n", path);
  return 0;
}
