// Paper Fig. 3: heat map of MPTCP's per-byte energy over (WiFi, LTE)
// throughput, normalised by the best single interface (Samsung Galaxy S3).
// Values < 1 (darker in the paper) mean using both interfaces is the most
// energy-efficient; the dark "V" band is the region eMPTCP's EIB encodes.
#include "bench_util.hpp"
#include "energy/device_profile.hpp"
#include "energy/model_calc.hpp"

int main() {
  using namespace emptcp;
  using namespace emptcp::bench;

  header("Figure 3",
         "Energy efficiency per downloaded byte, both interfaces vs best "
         "single (Galaxy S3)");

  const energy::EnergyModel m = energy::DeviceProfile::galaxy_s3().model();

  std::printf("rows: LTE Mbps (top=10), cols: WiFi 0.25..10 Mbps; cell = "
              "both/best-single\n");
  std::printf("glyphs: '#' <0.95 (MPTCP wins)  '+' 0.95-1.05  '.' 1.05-1.4"
              "  ' ' >1.4\n\n");

  std::printf("        WiFi->");
  for (double xw = 0.5; xw <= 10.0; xw += 0.5) {
    std::printf("%s", static_cast<int>(xw * 2) % 4 == 0 ? "|" : " ");
  }
  std::printf("\n");
  for (double xl = 10.0; xl >= 0.5; xl -= 0.5) {
    std::printf("LTE %5.1f     ", xl);
    for (double xw = 0.5; xw <= 10.0; xw += 0.5) {
      const double v = energy::normalized_both_efficiency(m, xw, xl);
      const char c = v < 0.95 ? '#' : v < 1.05 ? '+' : v < 1.4 ? '.' : ' ';
      std::printf("%c", c);
    }
    std::printf("\n");
  }
  std::printf("\nnumeric slice at LTE = 1, 4, 8 Mbps:\n");
  stats::Table table({"wifi Mbps", "ratio @LTE=1", "ratio @LTE=4",
                      "ratio @LTE=8"});
  for (double xw : {0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    table.add_row(
        {stats::Table::num(xw, 2),
         stats::Table::num(energy::normalized_both_efficiency(m, xw, 1.0), 3),
         stats::Table::num(energy::normalized_both_efficiency(m, xw, 4.0), 3),
         stats::Table::num(energy::normalized_both_efficiency(m, xw, 8.0),
                           3)});
  }
  std::printf("%s\n", table.render().c_str());
  note("a '#' V-band exists at low-to-moderate WiFi rates, widening with "
       "LTE throughput; WiFi-rich right side is > 1 (single path wins), as "
       "in the paper's grey-scale map (0.8-1.8 value range).");
  return 0;
}
