// Micro-benchmarks and machine-readable perf harness.
//
// Two parts share this binary:
//  1. A google-benchmark suite guarding the hot paths of the simulator and
//     the eMPTCP components (run first, honours --benchmark_* flags).
//  2. A direct harness that measures the core envelope — scheduler
//     events/sec (steady state), packet-path packets/sec, heap
//     allocations/event and an end-to-end wall-clock figure — and writes
//     them to BENCH_core.json (path overridable via EMPTCP_BENCH_JSON) so
//     CI and later PRs can diff performance without parsing logs.
//
// The binary replaces global operator new/delete with counting versions;
// all figures below are deltas around the measured region, so the
// allocations/event figure is exact for this process.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>

#include "analysis/profile.hpp"
#include "runtime/telemetry.hpp"
#include "app/fast_path.hpp"
#include "app/scenario.hpp"
#include "app/world.hpp"
#include "core/energy_info_base.hpp"
#include "core/holt_winters.hpp"
#include "energy/device_profile.hpp"
#include "net/link.hpp"
#include "sim/simulation.hpp"
#include "tcp/buffers.hpp"
#include "trace/trace.hpp"
#include "workload/fleet.hpp"
#include "workload/sharded_fleet.hpp"

// ---------------------------------------------------------------------------
// Allocation counting: replace the global allocator for this binary only.
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace emptcp;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// EMPTCP_BENCH_QUICK shrinks the direct harness ~10x: deterministic
/// per-op figures (allocs, counts) are unaffected, rate figures get
/// noisier but stay well inside the diff gate's factor-5 tolerance. Used
/// by the tier-1 diff-gate test so it runs in seconds.
bool bench_quick() { return std::getenv("EMPTCP_BENCH_QUICK") != nullptr; }

// ---------------------------------------------------------------------------
// google-benchmark suite
// ---------------------------------------------------------------------------

// Cold shape: a fresh scheduler per iteration, so slab/heap growth is part
// of the measurement. Kept for continuity with earlier baselines.
void BM_SchedulerScheduleAndRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler sched;
    for (int i = 0; i < 1000; ++i) {
      sched.schedule_at(i, [] {});
    }
    benchmark::DoNotOptimize(sched.run());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SchedulerScheduleAndRun);

// Steady state: one scheduler reused across iterations, the shape of a real
// run (a figure reproduction executes millions of events in one scheduler).
// Slab and heap capacity are warm, so this is the pure schedule+fire cost.
void BM_SchedulerSteadyState(benchmark::State& state) {
  sim::Scheduler sched;
  for (auto _ : state) {
    const sim::Time base = sched.now();
    for (int i = 0; i < 1000; ++i) {
      sched.schedule_at(base + i, [] {});
    }
    benchmark::DoNotOptimize(sched.run());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SchedulerSteadyState);

// Packet forwarding through a two-hop link chain (access -> WAN), the
// per-packet path every simulated byte crosses.
void BM_LinkChainForward(benchmark::State& state) {
  sim::Simulation sim;
  net::Link::Config fast;
  fast.rate_mbps = 100000.0;
  fast.prop_delay = sim::microseconds(10);
  fast.queue_limit_bytes = 64 * 1024 * 1024;
  net::Link acc(sim, fast);
  net::Link wan(sim, fast);
  acc.chain_to(wan);
  std::uint64_t received = 0;
  wan.set_receiver([&received](const net::Packet&) { ++received; });
  net::Packet pkt;
  pkt.payload = 1448;
  for (auto _ : state) {
    for (int i = 0; i < 256; ++i) acc.send(pkt);
    sim.run();
  }
  benchmark::DoNotOptimize(received);
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_LinkChainForward);

void BM_HoltWintersAddForecast(benchmark::State& state) {
  core::HoltWinters hw;
  double x = 1.0;
  for (auto _ : state) {
    hw.add(x);
    benchmark::DoNotOptimize(hw.forecast());
    x = x * 1.01 + 0.1;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HoltWintersAddForecast);

void BM_ReassemblyInOrder(benchmark::State& state) {
  for (auto _ : state) {
    tcp::IntervalReassembly r(0);
    for (std::uint64_t i = 0; i < 1000; ++i) {
      benchmark::DoNotOptimize(r.insert(i * 1448, 1448));
    }
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ReassemblyInOrder);

void BM_ReassemblyReversed(benchmark::State& state) {
  for (auto _ : state) {
    tcp::IntervalReassembly r(0);
    for (std::uint64_t i = 1000; i-- > 0;) {
      benchmark::DoNotOptimize(r.insert(i * 1448, 1448));
    }
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ReassemblyReversed);

void BM_EibGenerate(benchmark::State& state) {
  const energy::EnergyModel m = energy::DeviceProfile::galaxy_s3().model();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::EnergyInfoBase::generate(m));
  }
}
BENCHMARK(BM_EibGenerate);

void BM_EibLookup(benchmark::State& state) {
  const core::EnergyInfoBase eib = core::EnergyInfoBase::generate(
      energy::DeviceProfile::galaxy_s3().model());
  double x = 0.1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(eib.lookup(x, 10.0 - x));
    x += 0.37;
    if (x > 9.5) x = 0.1;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EibLookup);

// The fully-disabled trace gate, as every instrumentation site pays it: a
// load of the sink's cached bool plus a branch. Must stay allocation-free.
void BM_TraceGateDisabled(benchmark::State& state) {
  sim::Simulation sim;
  sim.trace().flight_enable(false);
  std::uint64_t i = 0;
  for (auto _ : state) {
    EMPTCP_TRACE(sim, cwnd(sim.now(), 1, i, i / 2));
    benchmark::DoNotOptimize(i++);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceGateDisabled);

// The default production state: retention off, flight-recorder ring on.
// Each site pays the gate plus a POD copy into the preallocated ring.
void BM_TraceGateFlightOn(benchmark::State& state) {
  sim::Simulation sim;
  std::uint64_t i = 0;
  for (auto _ : state) {
    EMPTCP_TRACE(sim, cwnd(sim.now(), 1, i, i / 2));
    benchmark::DoNotOptimize(i++);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceGateFlightOn);

void BM_EndToEndDownload1MB(benchmark::State& state) {
  app::ScenarioConfig cfg;
  cfg.record_series = false;
  app::Scenario s(cfg);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const app::RunMetrics m =
        s.run_download(app::Protocol::kMptcp, 1024 * 1024, seed++);
    benchmark::DoNotOptimize(m.energy_j);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1024 * 1024);
}
BENCHMARK(BM_EndToEndDownload1MB)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Direct harness -> BENCH_core.json
// ---------------------------------------------------------------------------

struct CoreResult {
  // Scheduler, steady state.
  std::uint64_t sched_events = 0;
  double sched_seconds = 0.0;
  double sched_allocs_per_event = 0.0;
  // Packet path (two-hop link chain).
  std::uint64_t pkt_packets = 0;
  double pkt_seconds = 0.0;
  double pkt_allocs_per_packet = 0.0;
  // End-to-end download, with the simulator's self-profile of the run.
  std::uint64_t e2e_bytes = 0;
  double e2e_wall_sec = 0.0;
  app::SimProfile e2e_profile;
  // Fully-disabled gate cost at an instrumentation site (retention off,
  // flight recorder off): a cached-bool load and branch.
  std::uint64_t trace_gate_ops = 0;
  double trace_gate_seconds = 0.0;
  double trace_gate_allocs_per_op = 0.0;
  // Default production state: retention off, flight-recorder ring on.
  std::uint64_t flight_gate_ops = 0;
  double flight_gate_seconds = 0.0;
  double flight_gate_allocs_per_op = 0.0;
  // Disabled EMPTCP_SPAN cost: the span profiler's cached-gate (one
  // relaxed atomic load + branch), paid at every span site when telemetry
  // is off. Must stay allocation-free and in the same cost class as the
  // disabled trace gate.
  std::uint64_t span_gate_ops = 0;
  double span_gate_seconds = 0.0;
  double span_gate_allocs_per_op = 0.0;
  // 256-client fleet steady state: event rate and allocations/event with
  // hundreds of concurrent connections multiplexed on one node.
  std::uint64_t fleet_clients = 0;
  std::uint64_t fleet_events = 0;
  double fleet_seconds = 0.0;
  double fleet_allocs_per_event = 0.0;
  // The same 256-client fleet under hybrid fidelity over the same virtual
  // window: steady-state flows advance in 100ms macro-steps instead of
  // per-packet events. speedup_vs_packet (wall clock for the same virtual
  // window) is the headline and is diff-gated >= 3x.
  std::uint64_t hybrid_events = 0;
  double hybrid_seconds = 0.0;
  std::uint64_t hybrid_fluid_bytes = 0;
  std::uint64_t hybrid_fluid_entries = 0;
  // Sharded 10k-client fleet (16 cells on the conservative parallel
  // engine) over a fixed virtual window: the event count is deterministic
  // and identical at 1 and 4 shards; only the wall clock may differ. The
  // speedup is ~1.0 on a single-core machine and only meaningful on >= 4
  // cores.
  std::uint64_t sharded_clients = 0;
  std::uint64_t sharded_cells = 0;
  std::uint64_t sharded_events = 0;
  double sharded_seconds_1shard = 0.0;
  double sharded_seconds_4shards = 0.0;
  // 100k-client sharded fleet: the scale target. Completing the fixed
  // window at all is the headline; the rate is the trend to watch.
  std::uint64_t huge_clients = 0;
  std::uint64_t huge_cells = 0;
  std::uint64_t huge_events = 0;
  double huge_seconds = 0.0;
  // Wall-time per harness section (self-profiling of the bench itself).
  analysis::Profiler harness;
};

void measure_scheduler(CoreResult& out) {
  const auto timer = out.harness.time("scheduler");
  sim::Scheduler sched;
  constexpr int kBatch = 10'000;
  constexpr int kWarmupRounds = 10;
  const int kRounds = bench_quick() ? 50 : 500;
  auto run_round = [&sched] {
    const sim::Time base = sched.now();
    for (int i = 0; i < kBatch; ++i) {
      sched.schedule_at(base + i, [] {});
    }
    sched.run();
  };
  for (int r = 0; r < kWarmupRounds; ++r) run_round();
  const std::uint64_t allocs_before =
      g_alloc_count.load(std::memory_order_relaxed);
  const auto start = Clock::now();
  for (int r = 0; r < kRounds; ++r) run_round();
  out.sched_seconds = seconds_since(start);
  const std::uint64_t allocs =
      g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
  out.sched_events =
      static_cast<std::uint64_t>(kRounds) * static_cast<std::uint64_t>(kBatch);
  out.sched_allocs_per_event =
      static_cast<double>(allocs) / static_cast<double>(out.sched_events);
}

void measure_packet_path(CoreResult& out) {
  const auto timer = out.harness.time("packet_path");
  sim::Simulation sim;
  net::Link::Config fast;
  fast.rate_mbps = 100000.0;
  fast.prop_delay = sim::microseconds(10);
  fast.queue_limit_bytes = 64 * 1024 * 1024;
  net::Link acc(sim, fast);
  net::Link wan(sim, fast);
  acc.chain_to(wan);
  std::uint64_t received = 0;
  wan.set_receiver([&received](const net::Packet&) { ++received; });
  net::Packet pkt;
  pkt.payload = 1448;
  constexpr int kBatch = 1'000;
  constexpr int kWarmupRounds = 10;
  const int kRounds = bench_quick() ? 50 : 500;
  auto run_round = [&] {
    for (int i = 0; i < kBatch; ++i) acc.send(pkt);
    sim.run();
  };
  for (int r = 0; r < kWarmupRounds; ++r) run_round();
  const std::uint64_t recv_before = received;
  const std::uint64_t allocs_before =
      g_alloc_count.load(std::memory_order_relaxed);
  const auto start = Clock::now();
  for (int r = 0; r < kRounds; ++r) run_round();
  out.pkt_seconds = seconds_since(start);
  const std::uint64_t allocs =
      g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
  out.pkt_packets = received - recv_before;
  out.pkt_allocs_per_packet =
      static_cast<double>(allocs) / static_cast<double>(out.pkt_packets);
}

void measure_end_to_end(CoreResult& out) {
  const auto timer = out.harness.time("end_to_end");
  app::ScenarioConfig cfg;
  cfg.record_series = false;
  app::Scenario s(cfg);
  const std::uint64_t kBytes =
      (bench_quick() ? 4ull : 16ull) * 1024 * 1024;
  const auto start = Clock::now();
  const app::RunMetrics m = s.run_download(app::Protocol::kMptcp, kBytes, 1);
  out.e2e_wall_sec = seconds_since(start);
  out.e2e_bytes = kBytes;
  out.e2e_profile = m.profile;
  benchmark::DoNotOptimize(m.energy_j);
}

/// Measures one instrumentation-site gate configuration; `flight` selects
/// the default production state (ring on) vs fully off.
void measure_gate(bool flight, std::uint64_t& ops_out, double& seconds_out,
                  double& allocs_out) {
  sim::Simulation sim;  // retention is off by default
  sim.trace().flight_enable(flight);
  const std::uint64_t kOps = bench_quick() ? 5'000'000 : 50'000'000;
  std::uint64_t x = 0;
  // Warm up (and fault in) before counting.
  for (std::uint64_t i = 0; i < 1'000; ++i) {
    EMPTCP_TRACE(sim, cwnd(sim.now(), 1, i, x));
    benchmark::DoNotOptimize(x += i);
  }
  const std::uint64_t allocs_before =
      g_alloc_count.load(std::memory_order_relaxed);
  const auto start = Clock::now();
  for (std::uint64_t i = 0; i < kOps; ++i) {
    EMPTCP_TRACE(sim, cwnd(sim.now(), 1, i, x));
    benchmark::DoNotOptimize(x += i);
  }
  seconds_out = seconds_since(start);
  const std::uint64_t allocs =
      g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
  ops_out = kOps;
  allocs_out = static_cast<double>(allocs) / static_cast<double>(kOps);
}

// 256 concurrent eMPTCP clients in one simulation, closed loop on flow
// sizes far larger than the measured window can serve — so the window is
// pure steady-state multiplexing (no connection churn) and the
// allocations/event figure isolates the per-event hot path at fleet scale.
void measure_fleet(CoreResult& out) {
  const auto timer = out.harness.time("fleet");
  workload::FleetConfig cfg;
  cfg.scenario.wifi.down_mbps = 90.0;
  cfg.scenario.cell.down_mbps = 40.0;
  cfg.scenario.record_series = false;
  cfg.protocol = app::Protocol::kEmptcp;
  cfg.mode = workload::FleetConfig::Mode::kClosed;
  cfg.clients = 256;
  cfg.flows_per_client = 0;  // endless: nothing completes mid-measurement
  cfg.flow_size.kind = workload::SizeDist::Kind::kFixed;
  cfg.flow_size.mean_bytes = 64ull * 1024 * 1024;
  workload::ClientFleet fleet(cfg);
  fleet.start(1);
  // Warm up: connection establishment plus slab/pool/ring/spare-node
  // growth to their high-water marks.
  const double warm_s = bench_quick() ? 1.0 : 4.0;
  fleet.run_until(warm_s);
  sim::Simulation& sim = fleet.world().sim;
  const std::uint64_t events_before = sim.scheduler().events_executed();
  const std::uint64_t allocs_before =
      g_alloc_count.load(std::memory_order_relaxed);
  const auto start = Clock::now();
  fleet.run_until(warm_s + (bench_quick() ? 1.0 : 2.0));
  out.fleet_seconds = seconds_since(start);
  const std::uint64_t allocs =
      g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
  out.fleet_clients = cfg.clients;
  out.fleet_events = sim.scheduler().events_executed() - events_before;
  out.fleet_allocs_per_event =
      static_cast<double>(allocs) / static_cast<double>(out.fleet_events);
}

// The identical fleet and virtual window as measure_fleet, at hybrid
// fidelity: endless congestion-avoidance transfers are the macro-step
// fast path's home turf, so the wall-clock ratio against the packet run
// is the honest speedup figure (same workload, same virtual time).
void measure_fleet_hybrid(CoreResult& out) {
  const auto timer = out.harness.time("fleet_256_hybrid");
  workload::FleetConfig cfg;
  cfg.scenario.wifi.down_mbps = 90.0;
  cfg.scenario.cell.down_mbps = 40.0;
  cfg.scenario.record_series = false;
  cfg.scenario.fidelity = sim::Fidelity::kHybrid;
  cfg.protocol = app::Protocol::kEmptcp;
  cfg.mode = workload::FleetConfig::Mode::kClosed;
  cfg.clients = 256;
  cfg.flows_per_client = 0;
  cfg.flow_size.kind = workload::SizeDist::Kind::kFixed;
  cfg.flow_size.mean_bytes = 64ull * 1024 * 1024;
  workload::ClientFleet fleet(cfg);
  fleet.start(1);
  // The warmup is longer than the packet fleet's quick warmup on purpose:
  // the governor needs a few 100ms quanta per flow (measure, stabilize,
  // drain) before the fleet is mostly fluid, and warming up in hybrid
  // mode is nearly free in wall clock. The measured window length still
  // matches the packet run's, so the wall-clock ratio is apples-to-apples
  // steady state against steady state.
  const double warm_s = bench_quick() ? 3.0 : 4.0;
  fleet.run_until(warm_s);
  sim::Simulation& sim = fleet.world().sim;
  const app::FastPath& fp = *fleet.world().fast_path;
  const std::uint64_t events_before = sim.scheduler().events_executed();
  const std::uint64_t fluid_before = fp.fluid_bytes();
  const auto start = Clock::now();
  fleet.run_until(warm_s + (bench_quick() ? 1.0 : 2.0));
  out.hybrid_seconds = seconds_since(start);
  out.hybrid_events = sim.scheduler().events_executed() - events_before;
  out.hybrid_fluid_bytes = fp.fluid_bytes() - fluid_before;
  out.hybrid_fluid_entries = fp.fluid_entries();
}

/// One sharded-fleet run over a fixed virtual window; returns the wall
/// seconds and reports the events executed inside the window.
double run_sharded_window(std::size_t clients, std::size_t per_cell,
                          std::size_t shards, double warm_s, double window_s,
                          std::uint64_t& events_out) {
  workload::FleetConfig cfg;
  cfg.scenario.wifi.down_mbps = 90.0;
  cfg.scenario.cell.down_mbps = 40.0;
  cfg.scenario.record_series = false;
  cfg.protocol = app::Protocol::kEmptcp;
  cfg.mode = workload::FleetConfig::Mode::kClosed;
  cfg.clients = clients;
  cfg.flows_per_client = 0;  // endless: nothing completes mid-measurement
  cfg.flow_size.kind = workload::SizeDist::Kind::kFixed;
  cfg.flow_size.mean_bytes = 64ull * 1024 * 1024;
  cfg.sharding.clients_per_cell = per_cell;
  cfg.sharding.shards = shards;
  workload::ShardedFleet fleet(cfg);
  fleet.start(1);
  fleet.run_until(warm_s);
  const std::uint64_t before = fleet.engine().events_executed();
  const auto start = Clock::now();
  fleet.run_until(warm_s + window_s);
  const double seconds = seconds_since(start);
  events_out = fleet.engine().events_executed() - before;
  return seconds;
}

// 10k clients in 16 shard-engine cells, measured at 1 and 4 worker
// shards over the same virtual window. Identical event counts are a hard
// requirement — a mismatch is a determinism bug, not noise.
void measure_sharded_fleet(CoreResult& out) {
  const auto timer = out.harness.time("fleet_10k");
  const double warm_s = bench_quick() ? 0.1 : 0.25;
  const double window_s = bench_quick() ? 0.2 : 1.0;
  out.sharded_clients = 10'000;
  out.sharded_cells = 16;
  std::uint64_t events1 = 0;
  std::uint64_t events4 = 0;
  out.sharded_seconds_1shard =
      run_sharded_window(10'000, 625, 1, warm_s, window_s, events1);
  out.sharded_seconds_4shards =
      run_sharded_window(10'000, 625, 4, warm_s, window_s, events4);
  if (events1 != events4) {
    std::fprintf(stderr,
                 "bench_micro: NON-DETERMINISTIC sharded fleet: %llu events "
                 "at 1 shard vs %llu at 4\n",
                 static_cast<unsigned long long>(events1),
                 static_cast<unsigned long long>(events4));
    std::exit(1);
  }
  out.sharded_events = events1;
}

// 100k clients in 100 cells: the scale target from the roadmap. One shard
// count (jobs-derived would hide machine variation; pin 4) over a short
// fixed window — completing it at all is the point.
void measure_fleet_100k(CoreResult& out) {
  const auto timer = out.harness.time("fleet_100k");
  const double warm_s = bench_quick() ? 0.02 : 0.1;
  const double window_s = bench_quick() ? 0.05 : 0.25;
  out.huge_clients = 100'000;
  out.huge_cells = 100;
  out.huge_seconds = run_sharded_window(100'000, 1'000, 4, warm_s, window_s,
                                        out.huge_events);
}

/// Disabled span-profiler gate at an instrumentation site. Telemetry must
/// be off (the default): each EMPTCP_SPAN then costs one relaxed atomic
/// load, a branch, and a trivially-destructed empty guard.
void measure_span_gate(CoreResult& out) {
  const std::uint64_t kOps = bench_quick() ? 5'000'000 : 50'000'000;
  std::uint64_t x = 0;
  for (std::uint64_t i = 0; i < 1'000; ++i) {
    EMPTCP_SPAN("bench.gate");
    benchmark::DoNotOptimize(x += i);
  }
  const std::uint64_t allocs_before =
      g_alloc_count.load(std::memory_order_relaxed);
  const auto start = Clock::now();
  for (std::uint64_t i = 0; i < kOps; ++i) {
    EMPTCP_SPAN("bench.gate");
    benchmark::DoNotOptimize(x += i);
  }
  out.span_gate_seconds = seconds_since(start);
  const std::uint64_t allocs =
      g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
  out.span_gate_ops = kOps;
  out.span_gate_allocs_per_op =
      static_cast<double>(allocs) / static_cast<double>(kOps);
}

void measure_trace_gates(CoreResult& out) {
  const auto timer = out.harness.time("trace_gates");
  measure_gate(false, out.trace_gate_ops, out.trace_gate_seconds,
               out.trace_gate_allocs_per_op);
  measure_gate(true, out.flight_gate_ops, out.flight_gate_seconds,
               out.flight_gate_allocs_per_op);
  measure_span_gate(out);
}

void write_json(const CoreResult& r) {
  const char* path = std::getenv("EMPTCP_BENCH_JSON");
  if (path == nullptr) path = "BENCH_core.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_micro: cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"emptcp-bench-core-v1\",\n");
  std::fprintf(f, "  \"scheduler\": {\n");
  std::fprintf(f, "    \"events\": %llu,\n",
               static_cast<unsigned long long>(r.sched_events));
  std::fprintf(f, "    \"seconds\": %.6f,\n", r.sched_seconds);
  std::fprintf(f, "    \"events_per_sec\": %.0f,\n",
               static_cast<double>(r.sched_events) / r.sched_seconds);
  std::fprintf(f, "    \"allocs_per_event\": %.6f\n",
               r.sched_allocs_per_event);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"packet_path\": {\n");
  std::fprintf(f, "    \"packets\": %llu,\n",
               static_cast<unsigned long long>(r.pkt_packets));
  std::fprintf(f, "    \"seconds\": %.6f,\n", r.pkt_seconds);
  std::fprintf(f, "    \"packets_per_sec\": %.0f,\n",
               static_cast<double>(r.pkt_packets) / r.pkt_seconds);
  std::fprintf(f, "    \"allocs_per_packet\": %.6f\n",
               r.pkt_allocs_per_packet);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"end_to_end\": {\n");
  std::fprintf(f, "    \"bytes\": %llu,\n",
               static_cast<unsigned long long>(r.e2e_bytes));
  std::fprintf(f, "    \"wall_clock_sec\": %.6f,\n", r.e2e_wall_sec);
  std::fprintf(f, "    \"mbytes_per_sec\": %.2f\n",
               static_cast<double>(r.e2e_bytes) / (1024.0 * 1024.0) /
                   r.e2e_wall_sec);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"trace_disabled\": {\n");
  std::fprintf(f, "    \"ops\": %llu,\n",
               static_cast<unsigned long long>(r.trace_gate_ops));
  std::fprintf(f, "    \"seconds\": %.6f,\n", r.trace_gate_seconds);
  std::fprintf(f, "    \"ns_per_op\": %.4f,\n",
               r.trace_gate_seconds * 1e9 /
                   static_cast<double>(r.trace_gate_ops));
  std::fprintf(f, "    \"allocs_per_op\": %.6f\n",
               r.trace_gate_allocs_per_op);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"trace_flight_on\": {\n");
  std::fprintf(f, "    \"ops\": %llu,\n",
               static_cast<unsigned long long>(r.flight_gate_ops));
  std::fprintf(f, "    \"seconds\": %.6f,\n", r.flight_gate_seconds);
  std::fprintf(f, "    \"ns_per_op\": %.4f,\n",
               r.flight_gate_seconds * 1e9 /
                   static_cast<double>(r.flight_gate_ops));
  std::fprintf(f, "    \"allocs_per_op\": %.6f\n",
               r.flight_gate_allocs_per_op);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"span_disabled\": {\n");
  std::fprintf(f, "    \"ops\": %llu,\n",
               static_cast<unsigned long long>(r.span_gate_ops));
  std::fprintf(f, "    \"seconds\": %.6f,\n", r.span_gate_seconds);
  std::fprintf(f, "    \"ns_per_op\": %.4f,\n",
               r.span_gate_seconds * 1e9 /
                   static_cast<double>(r.span_gate_ops));
  std::fprintf(f, "    \"allocs_per_op\": %.6f\n",
               r.span_gate_allocs_per_op);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"fleet_256\": {\n");
  std::fprintf(f, "    \"clients\": %llu,\n",
               static_cast<unsigned long long>(r.fleet_clients));
  std::fprintf(f, "    \"events\": %llu,\n",
               static_cast<unsigned long long>(r.fleet_events));
  std::fprintf(f, "    \"seconds\": %.6f,\n", r.fleet_seconds);
  std::fprintf(f, "    \"events_per_sec\": %.0f,\n",
               static_cast<double>(r.fleet_events) / r.fleet_seconds);
  std::fprintf(f, "    \"allocs_per_event\": %.6f\n",
               r.fleet_allocs_per_event);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"fleet_256_hybrid\": {\n");
  std::fprintf(f, "    \"clients\": %llu,\n",
               static_cast<unsigned long long>(r.fleet_clients));
  std::fprintf(f, "    \"events\": %llu,\n",
               static_cast<unsigned long long>(r.hybrid_events));
  std::fprintf(f, "    \"seconds\": %.6f,\n", r.hybrid_seconds);
  std::fprintf(f, "    \"events_per_sec\": %.0f,\n",
               static_cast<double>(r.hybrid_events) / r.hybrid_seconds);
  std::fprintf(f, "    \"fluid_bytes\": %llu,\n",
               static_cast<unsigned long long>(r.hybrid_fluid_bytes));
  std::fprintf(f, "    \"fluid_entries\": %llu,\n",
               static_cast<unsigned long long>(r.hybrid_fluid_entries));
  std::fprintf(f, "    \"event_reduction_vs_packet\": %.4f,\n",
               static_cast<double>(r.fleet_events) /
                   static_cast<double>(r.hybrid_events));
  std::fprintf(f, "    \"speedup_vs_packet\": %.4f\n",
               r.fleet_seconds / r.hybrid_seconds);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"fleet_10k\": {\n");
  std::fprintf(f, "    \"clients\": %llu,\n",
               static_cast<unsigned long long>(r.sharded_clients));
  std::fprintf(f, "    \"cells\": %llu,\n",
               static_cast<unsigned long long>(r.sharded_cells));
  std::fprintf(f, "    \"events\": %llu,\n",
               static_cast<unsigned long long>(r.sharded_events));
  std::fprintf(f, "    \"seconds_1shard\": %.6f,\n",
               r.sharded_seconds_1shard);
  std::fprintf(f, "    \"seconds_4shards\": %.6f,\n",
               r.sharded_seconds_4shards);
  std::fprintf(f, "    \"events_per_sec_1shard\": %.0f,\n",
               static_cast<double>(r.sharded_events) /
                   r.sharded_seconds_1shard);
  std::fprintf(f, "    \"events_per_sec_4shards\": %.0f,\n",
               static_cast<double>(r.sharded_events) /
                   r.sharded_seconds_4shards);
  std::fprintf(f, "    \"speedup_4shards\": %.4f\n",
               r.sharded_seconds_1shard / r.sharded_seconds_4shards);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"fleet_100k\": {\n");
  std::fprintf(f, "    \"clients\": %llu,\n",
               static_cast<unsigned long long>(r.huge_clients));
  std::fprintf(f, "    \"cells\": %llu,\n",
               static_cast<unsigned long long>(r.huge_cells));
  std::fprintf(f, "    \"events\": %llu,\n",
               static_cast<unsigned long long>(r.huge_events));
  std::fprintf(f, "    \"seconds\": %.6f,\n", r.huge_seconds);
  std::fprintf(f, "    \"events_per_sec\": %.0f,\n",
               static_cast<double>(r.huge_events) / r.huge_seconds);
  std::fprintf(f, "    \"completed\": 1\n");
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"self_profile\": {\n");
  std::fprintf(f, "    \"e2e_events_executed\": %llu,\n",
               static_cast<unsigned long long>(
                   r.e2e_profile.events_executed));
  std::fprintf(f, "    \"e2e_events_per_sec\": %.0f,\n",
               static_cast<double>(r.e2e_profile.events_executed) /
                   r.e2e_wall_sec);
  std::fprintf(f, "    \"e2e_sched_slab_slots\": %llu,\n",
               static_cast<unsigned long long>(
                   r.e2e_profile.sched_slab_slots));
  std::fprintf(f, "    \"e2e_packet_pool_slots\": %llu,\n",
               static_cast<unsigned long long>(
                   r.e2e_profile.packet_pool_slots));
  std::fprintf(f, "    \"harness\": %s\n", r.harness.to_json(4).c_str());
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("bench_micro: wrote %s\n", path);
}

void run_core_harness() {
  CoreResult r;
  measure_scheduler(r);
  measure_packet_path(r);
  measure_end_to_end(r);
  measure_fleet(r);
  measure_fleet_hybrid(r);
  measure_sharded_fleet(r);
  measure_fleet_100k(r);
  measure_trace_gates(r);
  std::printf(
      "fleet: %llu clients, %.2fM events/s, %.6f allocs/event\n",
      static_cast<unsigned long long>(r.fleet_clients),
      static_cast<double>(r.fleet_events) / r.fleet_seconds / 1e6,
      r.fleet_allocs_per_event);
  std::printf(
      "fleet hybrid: %.3fs vs %.3fs packet for the same virtual window "
      "(speedup %.2fx, %.1fx fewer events, %llu MB fluid, %llu entries)\n",
      r.hybrid_seconds, r.fleet_seconds, r.fleet_seconds / r.hybrid_seconds,
      static_cast<double>(r.fleet_events) /
          static_cast<double>(r.hybrid_events),
      static_cast<unsigned long long>(r.hybrid_fluid_bytes >> 20),
      static_cast<unsigned long long>(r.hybrid_fluid_entries));
  std::printf(
      "fleet_10k (sharded, 16 cells): %.3fs @1 shard, %.3fs @4 shards "
      "(speedup %.2fx); fleet_100k (100 cells): %.3fs, %.2fM events/s\n",
      r.sharded_seconds_1shard, r.sharded_seconds_4shards,
      r.sharded_seconds_1shard / r.sharded_seconds_4shards, r.huge_seconds,
      static_cast<double>(r.huge_events) / r.huge_seconds / 1e6);
  std::printf(
      "core: scheduler %.2fM events/s (%.4f allocs/event), "
      "packet path %.2fM packets/s (%.4f allocs/packet), "
      "%lluMB download in %.3fs wall (%.2fM sim events/s, slab %llu, "
      "pool %llu), "
      "trace gate off %.2f ns/op / flight-on %.2f ns/op "
      "(%.6f / %.6f allocs/op), span gate off %.2f ns/op\n",
      static_cast<double>(r.sched_events) / r.sched_seconds / 1e6,
      r.sched_allocs_per_event,
      static_cast<double>(r.pkt_packets) / r.pkt_seconds / 1e6,
      r.pkt_allocs_per_packet,
      static_cast<unsigned long long>(r.e2e_bytes / (1024 * 1024)),
      r.e2e_wall_sec,
      static_cast<double>(r.e2e_profile.events_executed) / r.e2e_wall_sec /
          1e6,
      static_cast<unsigned long long>(r.e2e_profile.sched_slab_slots),
      static_cast<unsigned long long>(r.e2e_profile.packet_pool_slots),
      r.trace_gate_seconds * 1e9 / static_cast<double>(r.trace_gate_ops),
      r.flight_gate_seconds * 1e9 / static_cast<double>(r.flight_gate_ops),
      r.trace_gate_allocs_per_op, r.flight_gate_allocs_per_op,
      r.span_gate_seconds * 1e9 / static_cast<double>(r.span_gate_ops));
  write_json(r);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  run_core_harness();
  return 0;
}
