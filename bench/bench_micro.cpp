// Micro-benchmarks (google-benchmark): the hot paths of the simulator and
// the eMPTCP components. These guard the performance envelope that keeps
// the 256 MB figure reproductions fast.
#include <benchmark/benchmark.h>

#include "app/scenario.hpp"
#include "core/energy_info_base.hpp"
#include "core/holt_winters.hpp"
#include "energy/device_profile.hpp"
#include "sim/simulation.hpp"
#include "tcp/buffers.hpp"

namespace {

using namespace emptcp;

void BM_SchedulerScheduleAndRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler sched;
    for (int i = 0; i < 1000; ++i) {
      sched.schedule_at(i, [] {});
    }
    benchmark::DoNotOptimize(sched.run());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SchedulerScheduleAndRun);

void BM_HoltWintersAddForecast(benchmark::State& state) {
  core::HoltWinters hw;
  double x = 1.0;
  for (auto _ : state) {
    hw.add(x);
    benchmark::DoNotOptimize(hw.forecast());
    x = x * 1.01 + 0.1;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HoltWintersAddForecast);

void BM_ReassemblyInOrder(benchmark::State& state) {
  for (auto _ : state) {
    tcp::IntervalReassembly r(0);
    for (std::uint64_t i = 0; i < 1000; ++i) {
      benchmark::DoNotOptimize(r.insert(i * 1448, 1448));
    }
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ReassemblyInOrder);

void BM_ReassemblyReversed(benchmark::State& state) {
  for (auto _ : state) {
    tcp::IntervalReassembly r(0);
    for (std::uint64_t i = 1000; i-- > 0;) {
      benchmark::DoNotOptimize(r.insert(i * 1448, 1448));
    }
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ReassemblyReversed);

void BM_EibGenerate(benchmark::State& state) {
  const energy::EnergyModel m = energy::DeviceProfile::galaxy_s3().model();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::EnergyInfoBase::generate(m));
  }
}
BENCHMARK(BM_EibGenerate);

void BM_EibLookup(benchmark::State& state) {
  const core::EnergyInfoBase eib = core::EnergyInfoBase::generate(
      energy::DeviceProfile::galaxy_s3().model());
  double x = 0.1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(eib.lookup(x, 10.0 - x));
    x += 0.37;
    if (x > 9.5) x = 0.1;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EibLookup);

void BM_EndToEndDownload1MB(benchmark::State& state) {
  app::ScenarioConfig cfg;
  cfg.record_series = false;
  app::Scenario s(cfg);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const app::RunMetrics m =
        s.run_download(app::Protocol::kMptcp, 1024 * 1024, seed++);
    benchmark::DoNotOptimize(m.energy_j);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1024 * 1024);
}
BENCHMARK(BM_EndToEndDownload1MB)->Unit(benchmark::kMillisecond);

}  // namespace
