// Ablation (DESIGN.md #1): the path-usage controller's 10 % safety factor.
// §3.4 adds the margin "to prevent oscillations"; this bench sweeps the
// factor under on-off WiFi and reports switch counts, energy and time.
// Too little hysteresis thrashes (each resume pays an LTE promotion+tail);
// too much reacts sluggishly.
#include "bench_util.hpp"

int main() {
  using namespace emptcp;
  using namespace emptcp::bench;

  header("Ablation: hysteresis safety factor",
         "switch count / energy / time vs safety factor (WiFi flapping "
         "across the threshold, 64 MB, 3 runs)");

  // WiFi oscillates ACROSS the decision threshold (~3.7 Mbps at 9 Mbps
  // LTE): without hysteresis every flip switches state and pays an LTE
  // reactivation; with too much, the controller stops reacting at all.
  stats::Table table({"safety factor", "controller switches",
                      "LTE activations", "energy (J)", "time (s)"});
  for (const double factor : {0.0, 0.05, 0.10, 0.25, 0.50}) {
    app::ScenarioConfig cfg = lab_config(4.6, 9.0);
    cfg.wifi_onoff = true;
    cfg.onoff.high_mbps = 4.6;  // just above the threshold
    cfg.onoff.low_mbps = 3.0;   // just below it
    cfg.onoff.mean_high_s = 6.0;
    cfg.onoff.mean_low_s = 6.0;
    cfg.emptcp.controller.safety_factor = factor;
    app::Scenario s(cfg);

    std::vector<double> switches;
    std::vector<double> acts;
    std::vector<double> energy;
    std::vector<double> time;
    for (int run = 0; run < 3; ++run) {
      const app::RunMetrics m =
          s.run_download(app::Protocol::kEmptcp, 64 * kMB, 500 + run);
      switches.push_back(static_cast<double>(m.controller_switches));
      acts.push_back(static_cast<double>(m.cellular_activations));
      energy.push_back(m.energy_j);
      time.push_back(m.download_time_s);
    }
    table.add_row({stats::Table::num(factor, 2), mean_sem(switches, 1),
                   mean_sem(acts, 1), mean_sem(energy, 0),
                   mean_sem(time, 0)});
  }
  std::printf("%s\n", table.render().c_str());
  note("switches (and cellular reactivations) fall as the factor grows; "
       "the paper's 10% sits near the energy knee.");
  return 0;
}
