// Paper Fig. 9: example per-interface throughput traces of MPTCP and
// eMPTCP with two interfering WiFi stations (λon = 0.05, λoff = 0.025),
// 256 MB download (§4.4). eMPTCP should suspend the LTE subflow whenever
// contention eases and WiFi runs fast.
#include "bench_util.hpp"

int main() {
  using namespace emptcp;
  using namespace emptcp::bench;

  header("Figure 9",
         "Throughput traces with random WiFi background traffic (n=2, "
         "λon=0.05, λoff=0.025)");

  app::ScenarioConfig cfg = lab_config(15.0, 9.0, /*record_series=*/true);
  cfg.interferers = 2;
  cfg.lambda_on = 0.05;
  cfg.lambda_off = 0.025;
  app::Scenario s(cfg);

  for (app::Protocol p : {app::Protocol::kMptcp, app::Protocol::kEmptcp}) {
    const app::RunMetrics m = s.run_download(p, 256 * kMB, 9);
    std::printf("%s: done at %.0f s, %.0f J, ~%.0f MB over LTE\n",
                app::to_string(p), m.download_time_s, m.energy_j,
                m.mean_cell_mbps * m.download_time_s / 8.0);
    std::printf("wifi Mbps: %s\n",
                stats::sparkline(m.wifi_rate_series, 72).c_str());
    std::printf("lte  Mbps: %s\n\n",
                stats::sparkline(m.cell_rate_series, 72).c_str());
    maybe_dump_csv(std::string("fig09_") + app::to_string(p),
                   {{"energy_j", &m.energy_series},
                    {"wifi_mbps", &m.wifi_rate_series},
                    {"lte_mbps", &m.cell_rate_series}});
  }
  note("MPTCP's LTE trace stays busy for the whole run; eMPTCP's LTE trace "
       "goes quiet during the uncontended (fast WiFi) stretches and "
       "re-engages when interferers crowd the channel.");
  return 0;
}
