// Paper Fig. 14: scatter of measured WiFi vs LTE throughput for the wild
// 16 MB downloads, bucketed into the four Good/Bad categories at 8 Mbps,
// with the boundary above which MPTCP beats TCP/WiFi per byte.
#include "bench_util.hpp"
#include "bench_wild_util.hpp"
#include "energy/device_profile.hpp"
#include "energy/model_calc.hpp"

int main() {
  using namespace emptcp;
  using namespace emptcp::bench;

  header("Figure 14",
         "Wild trace categorisation by WiFi/LTE quality (16 MB downloads)");

  const auto draws = wild_draws(/*iters=*/5, /*seed=*/14);

  // ASCII scatter, 0..25 Mbps both axes.
  constexpr int W = 50;
  constexpr int H = 25;
  std::vector<std::string> grid(H, std::string(W, ' '));
  int counts[4] = {0, 0, 0, 0};
  for (const WildDraw& d : draws) {
    const int x = std::min(W - 1, static_cast<int>(d.wifi_mbps / 25.0 * W));
    const int y = std::min(H - 1, static_cast<int>(d.cell_mbps / 25.0 * H));
    grid[H - 1 - y][x] = 'o';
    ++counts[static_cast<int>(categorize(d.wifi_mbps, d.cell_mbps))];
  }
  // Mark the 8 Mbps category boundaries.
  const int bx = static_cast<int>(8.0 / 25.0 * W);
  const int by = H - 1 - static_cast<int>(8.0 / 25.0 * H);
  for (int y = 0; y < H; ++y) {
    if (grid[y][bx] == ' ') grid[y][bx] = '|';
  }
  for (int x = 0; x < W; ++x) {
    if (grid[by][x] == ' ') grid[by][x] = '-';
  }
  std::printf("LTE Mbps (25 at top) vs WiFi Mbps (25 at right); '|'/'-' = "
              "the 8 Mbps category boundaries\n");
  for (const std::string& row : grid) std::printf("%s\n", row.c_str());

  std::printf("\ncategory counts (of %zu traces):\n", draws.size());
  stats::Table table({"category", "count"});
  for (int c = 0; c < 4; ++c) {
    table.add_row({to_string(static_cast<Category>(c)),
                   std::to_string(counts[c])});
  }
  std::printf("%s\n", table.render().c_str());

  // The paper's red line: where MPTCP (both) becomes more energy
  // efficient per byte than TCP over WiFi, per the energy model.
  const energy::EnergyModel m = energy::DeviceProfile::galaxy_s3().model();
  std::printf("MPTCP-beats-TCP/WiFi boundary (per-byte, steady state):\n");
  stats::Table boundary({"wifi Mbps", "needs LTE >= (Mbps)"});
  for (double xw : {1.0, 2.0, 4.0, 6.0, 8.0, 12.0}) {
    double xl = 0.1;
    while (xl < 40.0 &&
           m.per_mbit_both(xw, xl) >= m.per_mbit_wifi(xw)) {
      xl += 0.1;
    }
    boundary.add_row({stats::Table::num(xw, 0),
                      xl >= 40.0 ? "-" : stats::Table::num(xl, 1)});
  }
  std::printf("%s\n", boundary.render().c_str());
  note("all four quadrants populated; the MPTCP-wins boundary rises with "
       "WiFi throughput (the paper's red line).");
  return 0;
}
