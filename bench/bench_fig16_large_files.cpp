// Paper Fig. 16: in-the-wild 16 MB downloads — whisker plots of total
// energy and download time per Good/Bad category (§5.3).
#include <array>
#include <map>

#include "bench_util.hpp"
#include "bench_wild_util.hpp"

int main() {
  using namespace emptcp;
  using namespace emptcp::bench;

  header("Figure 16",
         "Large file transfers in the wild (16 MB), whisker summaries per "
         "category");

  const auto draws = wild_draws(/*iters=*/4, /*seed=*/16);
  const app::Protocol protocols[] = {app::Protocol::kMptcp,
                                     app::Protocol::kEmptcp,
                                     app::Protocol::kTcpWifi};

  struct Bucket {
    std::array<std::vector<double>, 3> energy;
    std::array<std::vector<double>, 3> time;
  };
  std::map<Category, Bucket> buckets;

  // One spec per (trace draw, protocol); every draw carries its own seed.
  // The matrix comes back in submission order, so the per-category buckets
  // fill exactly as the sequential loop filled them.
  std::vector<RunSpec> specs;
  for (std::size_t di = 0; di < draws.size(); ++di) {
    for (int i = 0; i < 3; ++i) {
      RunSpec rs = download_spec("fig16-t" + std::to_string(di),
                                 wild_config(draws[di]), protocols[i],
                                 16 * kMB);
      rs.fixed_seed = draws[di].seed;
      specs.push_back(std::move(rs));
    }
  }
  const auto matrix = run_specs(specs, {0});
  for (std::size_t di = 0; di < draws.size(); ++di) {
    const WildDraw& d = draws[di];
    Bucket& b = buckets[categorize(d.wifi_mbps, d.cell_mbps)];
    for (int i = 0; i < 3; ++i) {
      const app::RunMetrics& m = matrix[di * 3 + static_cast<std::size_t>(i)][0];
      b.energy[i].push_back(m.energy_j);
      b.time[i].push_back(m.download_time_s);
    }
  }

  for (const auto& [cat, b] : buckets) {
    std::printf("%s (%zu traces):\n", to_string(cat), b.energy[0].size());
    stats::Table table({"protocol", "energy J (Q1/med/Q3 [range])",
                        "time s (Q1/med/Q3 [range])"});
    for (int i = 0; i < 3; ++i) {
      table.add_row({app::to_string(protocols[i]),
                     whisker_cell(b.energy[i], 1),
                     whisker_cell(b.time[i], 1)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("median eMPTCP energy vs MPTCP: %.0f%%, time vs MPTCP: "
                "%.0f%%\n\n",
                100.0 * stats::SortedSample(b.energy[1]).quantile(0.5) /
                    stats::SortedSample(b.energy[0]).quantile(0.5),
                100.0 * stats::SortedSample(b.time[1]).quantile(0.5) /
                    stats::SortedSample(b.time[0]).quantile(0.5));
  }
  note("paper shapes — BadWiFi&BadLTE: eMPTCP most efficient, TCP/WiFi "
       "~6x slower; BadWiFi&GoodLTE: eMPTCP ~ MPTCP with slightly larger "
       "times (delayed join); GoodWiFi&*: eMPTCP ~ TCP/WiFi at roughly "
       "half of MPTCP's energy, ~20% longer than MPTCP.");
  return 0;
}
