// Paper Fig. 4: the (WiFi, LTE) throughput region where MPTCP is the most
// energy-efficient way to complete an *entire* transfer of a given size —
// promotion and tail included — for 1, 4 and 16 MB downloads. This is the
// calculation behind the choice κ = 1 MB (§4.1): the 1 MB region is
// (nearly) empty, so transfers below ~1 MB should never wake the radio.
#include "bench_util.hpp"
#include "energy/device_profile.hpp"
#include "energy/model_calc.hpp"

int main() {
  using namespace emptcp;
  using namespace emptcp::bench;

  header("Figure 4",
         "Operating region where MPTCP completes a whole transfer with the "
         "least energy (Galaxy S3)");

  const energy::EnergyModel m = energy::DeviceProfile::galaxy_s3().model();

  for (const double size_mb : {1.0, 4.0, 16.0}) {
    std::printf("download size %.0f MB — WiFi interval (per LTE rate) where "
                "BOTH is optimal:\n", size_mb);
    stats::Table table({"LTE Mbps", "WiFi from", "WiFi to", "width"});
    bool any = false;
    for (double xl = 1.0; xl <= 12.0; xl += 1.0) {
      const auto region =
          energy::finite_both_region(m, size_mb * 1024 * 1024, xl, 12.0);
      if (region) {
        any = true;
        table.add_row({stats::Table::num(xl, 0),
                       stats::Table::num(region->lo, 2),
                       stats::Table::num(region->hi, 2),
                       stats::Table::num(region->hi - region->lo, 2)});
      } else {
        table.add_row({stats::Table::num(xl, 0), "-", "-", "0"});
      }
    }
    std::printf("%s", table.render().c_str());
    if (!any) {
      std::printf("(empty: the cellular fixed overhead of %.1f J can never "
                  "pay off at this size)\n",
                  m.cell.fixed_overhead_j());
    }
    std::printf("\n");
  }
  note("the region grows with download size: (near-)empty at 1 MB, small "
       "at 4 MB, widest at 16 MB — the paper's nested curves, and the "
       "rationale for kappa = 1 MB.");
  return 0;
}
