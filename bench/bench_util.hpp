// Shared helpers for the figure/table reproduction benches.
//
// Every bench binary prints:
//   * a header naming the paper figure/table it regenerates,
//   * the workload parameters,
//   * the reproduced rows/series as ASCII tables or charts,
//   * a "paper shape" note stating what relationship should hold.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "analysis/manifest.hpp"
#include "app/scenario.hpp"
#include "runtime/replication.hpp"
#include "stats/csv.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"
#include "stats/timeseries.hpp"
#include "stats/trace_export.hpp"

namespace emptcp::bench {

inline constexpr std::uint64_t kKB = 1024;
inline constexpr std::uint64_t kMB = 1024 * 1024;

inline void header(const std::string& figure, const std::string& what) {
  std::printf("==============================================================="
              "=================\n");
  std::printf("%s — %s\n", figure.c_str(), what.c_str());
  std::printf("==============================================================="
              "=================\n");
}

inline void note(const std::string& text) {
  std::printf("shape check: %s\n\n", text.c_str());
}

/// When EMPTCP_CSV_DIR is set, dumps the named trace columns there as a
/// CSV (for external plotting of the time-series figures).
inline void maybe_dump_csv(
    const std::string& name,
    const std::vector<std::pair<std::string, const stats::Series*>>& cols) {
  const char* dir = std::getenv("EMPTCP_CSV_DIR");
  if (dir == nullptr) return;
  std::string file = name;
  for (char& c : file) {
    if (c == '/' || c == ' ') c = '-';
  }
  const std::string path = std::string(dir) + "/" + file + ".csv";
  if (stats::write_file(path, stats::series_table_to_csv(cols))) {
    std::printf("(wrote %s)\n", path.c_str());
  }
}

/// True when EMPTCP_TRACE_DIR is set: benches should run with
/// ScenarioConfig::trace enabled and dump each run via maybe_dump_trace.
inline bool trace_requested() {
  return std::getenv("EMPTCP_TRACE_DIR") != nullptr;
}

/// When EMPTCP_TRACE_DIR is set, writes one run's structured trace there
/// as JSONL (deterministic, diffable with trace::diff_trace_text).
inline void maybe_dump_trace(const std::string& name,
                             const app::RunMetrics& m) {
  const char* dir = std::getenv("EMPTCP_TRACE_DIR");
  if (dir == nullptr) return;
  std::string file = name;
  for (char& c : file) {
    if (c == '/' || c == ' ') c = '-';
  }
  const std::string path = std::string(dir) + "/" + file + ".jsonl";
  if (stats::write_file(path,
                        stats::trace_to_jsonl(m.trace_events,
                                              m.trace_metrics))) {
    std::printf("(wrote %s)\n", path.c_str());
  }
}

/// When EMPTCP_TRACE_DIR is set, writes one run's trace as JSONL *plus* a
/// run manifest next to it (`<name>.manifest.json`): grouping key,
/// protocol, seed, workload, scenario + build parameters and an FNV-1a
/// digest of the trace bytes. The pair is the self-describing artifact
/// `emptcp-report` consumes.
inline void maybe_dump_run(const std::string& group,
                           const app::ScenarioConfig& cfg, app::Protocol p,
                           std::uint64_t seed, const std::string& workload,
                           const app::RunMetrics& m) {
  const char* dir = std::getenv("EMPTCP_TRACE_DIR");
  if (dir == nullptr) return;
  std::string file = group + "-" + app::to_string(p) + "-s" +
                     std::to_string(seed);
  for (char& c : file) {
    if (c == '/' || c == ' ') c = '-';
  }
  const std::string jsonl =
      stats::trace_to_jsonl(m.trace_events, m.trace_metrics);
  const std::string trace_path = std::string(dir) + "/" + file + ".jsonl";
  if (!stats::write_file(trace_path, jsonl)) return;

  analysis::RunManifest manifest;
  manifest.group = group;
  manifest.protocol = app::to_string(p);
  manifest.seed = seed;
  manifest.workload = workload;
  manifest.trace_file = file + ".jsonl";
  manifest.trace_events = m.trace_events.size();
  manifest.trace_digest = analysis::fnv1a64_hex(jsonl);
  manifest.params = analysis::describe_scenario(cfg);
  for (auto& kv : analysis::describe_build()) {
    manifest.params.push_back(std::move(kv));
  }
  const std::string manifest_path =
      std::string(dir) + "/" + file + ".manifest.json";
  if (stats::write_file(manifest_path, analysis::manifest_to_json(manifest))) {
    std::printf("(wrote %s + manifest)\n", trace_path.c_str());
  }
}

/// One cell of a figure's replication grid: which scenario to build, which
/// protocol to drive, and what workload to run. `run_specs` fans a list of
/// these out on the replication pool — the shared loop every comparison
/// bench used to hand-roll — and dumps each run's trace + manifest pair
/// under EMPTCP_TRACE_DIR.
struct RunSpec {
  std::string group;  ///< manifest group / artifact basename prefix
  app::ScenarioConfig cfg;
  app::Protocol protocol = app::Protocol::kEmptcp;
  /// Per-seed config override (environmental jitter between repeat runs,
  /// Fig. 13 style); when set it replaces `cfg` for that seed.
  std::function<app::ScenarioConfig(std::uint64_t seed)> cfg_for;
  /// When set, this run ignores the shared seed list and always uses this
  /// seed (the in-the-wild benches give every trace draw its own seed).
  std::optional<std::uint64_t> fixed_seed;

  enum class Kind : std::uint8_t { kDownload, kTimed };
  Kind kind = Kind::kDownload;
  std::uint64_t bytes = 0;       ///< kDownload payload
  sim::Duration duration = 0;    ///< kTimed horizon
  std::string workload;          ///< manifest workload tag
};

/// "256MB" / "256KB" / "1500B" — the manifest workload size tag.
inline std::string size_tag(std::uint64_t bytes) {
  if (bytes != 0 && bytes % kMB == 0) return std::to_string(bytes / kMB) + "MB";
  if (bytes != 0 && bytes % kKB == 0) return std::to_string(bytes / kKB) + "KB";
  return std::to_string(bytes) + "B";
}

inline RunSpec download_spec(std::string group, app::ScenarioConfig cfg,
                             app::Protocol p, std::uint64_t bytes) {
  RunSpec rs;
  rs.group = std::move(group);
  rs.cfg = std::move(cfg);
  rs.protocol = p;
  rs.kind = RunSpec::Kind::kDownload;
  rs.bytes = bytes;
  rs.workload = "download-" + size_tag(bytes);
  return rs;
}

inline RunSpec timed_spec(std::string group, app::ScenarioConfig cfg,
                          app::Protocol p, sim::Duration d) {
  RunSpec rs;
  rs.group = std::move(group);
  rs.cfg = std::move(cfg);
  rs.protocol = p;
  rs.kind = RunSpec::Kind::kTimed;
  rs.duration = d;
  rs.workload = "timed-" + std::to_string(d / sim::seconds(1)) + "s";
  return rs;
}

/// Runs every (spec, seed) replication on the pool and returns the
/// [spec][seed] metrics matrix in submission order — aggregation stays
/// identical to the sequential nesting. Tracing follows EMPTCP_TRACE_DIR:
/// when set, each run records its structured trace and dumps the
/// trace + manifest artifact pair there.
inline std::vector<std::vector<app::RunMetrics>> run_specs(
    const std::vector<RunSpec>& specs,
    const std::vector<std::uint64_t>& seeds) {
  return runtime::run_replications(
      specs, seeds, [](const RunSpec& rs, std::uint64_t pool_seed) {
        const std::uint64_t seed = rs.fixed_seed.value_or(pool_seed);
        app::ScenarioConfig cfg = rs.cfg_for ? rs.cfg_for(seed) : rs.cfg;
        cfg.trace = trace_requested();
        app::Scenario s(cfg);
        app::RunMetrics m = rs.kind == RunSpec::Kind::kTimed
                                ? s.run_timed(rs.protocol, rs.duration, seed)
                                : s.run_download(rs.protocol, rs.bytes, seed);
        maybe_dump_run(rs.group, cfg, rs.protocol, seed, rs.workload, m);
        return m;
      });
}

/// "mean ± SEM" cell, the paper's Figs. 8/10/13 presentation (Eq. 2).
inline std::string mean_sem(const std::vector<double>& xs, int precision = 1) {
  return stats::Table::num(stats::mean(xs), precision) + " ± " +
         stats::Table::num(stats::sem(xs), precision);
}

/// Whisker-summary cell for the in-the-wild figures (Q1/median/Q3, range,
/// outlier count).
inline std::string whisker_cell(const std::vector<double>& xs,
                                int precision = 1) {
  const stats::Whisker w = stats::whisker(xs);
  std::string s = stats::Table::num(w.q1, precision) + "/" +
                  stats::Table::num(w.median, precision) + "/" +
                  stats::Table::num(w.q3, precision);
  s += " [" + stats::Table::num(w.lo_whisker, precision) + ".." +
       stats::Table::num(w.hi_whisker, precision) + "]";
  if (!w.outliers.empty()) {
    s += " +" + std::to_string(w.outliers.size()) + " outl";
  }
  return s;
}

/// The controlled-lab setup of §4.1 (campus server, 802.11g AP, AT&T LTE),
/// with WiFi/LTE rates supplied per experiment.
inline app::ScenarioConfig lab_config(double wifi_mbps, double cell_mbps,
                                      bool record_series = false) {
  app::ScenarioConfig cfg;
  cfg.wifi.down_mbps = wifi_mbps;
  cfg.cell.down_mbps = cell_mbps;
  cfg.wifi.rtt = sim::milliseconds(30);
  cfg.cell.rtt = sim::milliseconds(60);
  cfg.record_series = record_series;
  return cfg;
}

/// One of the §5 wild environments: server location sets the RTT.
enum class ServerSite { kWdc, kAms, kSng };

inline const char* to_string(ServerSite s) {
  switch (s) {
    case ServerSite::kWdc: return "WDC";
    case ServerSite::kAms: return "AMS";
    case ServerSite::kSng: return "SNG";
  }
  return "?";
}

inline sim::Duration site_rtt(ServerSite s) {
  switch (s) {
    case ServerSite::kWdc: return sim::milliseconds(25);
    case ServerSite::kAms: return sim::milliseconds(95);
    case ServerSite::kSng: return sim::milliseconds(250);
  }
  return sim::milliseconds(25);
}

}  // namespace emptcp::bench
