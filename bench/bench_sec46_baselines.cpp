// Paper §4.6: comparison with the existing approaches —
//   * "MPTCP with WiFi First" (Raiciu et al. [28]): cellular in backup
//     mode, used only when WiFi explicitly breaks; and
//   * the MDP path scheduler (Pluntke et al. [24]): offline value
//     iteration over discretised bandwidth states, applied at 1 s epochs.
// The paper's findings to reproduce: WiFi-First degenerates into
// TCP/WiFi while associated (and pays a needless cellular activation),
// and the MDP policy chooses WiFi-only in every usable state, inheriting
// TCP/WiFi's behaviour and limitations.
#include "bench_util.hpp"
#include "baselines/mdp_scheduler.hpp"
#include "energy/device_profile.hpp"

int main() {
  using namespace emptcp;
  using namespace emptcp::bench;

  header("Section 4.6", "Comparison with WiFi-First and the MDP scheduler");

  // Part 1: the MDP policy itself.
  {
    baseline::MdpScheduler mdp(energy::DeviceProfile::galaxy_s3().model(),
                               baseline::MdpScheduler::Config{});
    std::vector<std::pair<double, double>> trace;
    for (int i = 0; i < 600; ++i) {
      trace.emplace_back(i % 80 < 40 ? 12.0 : 0.8, 9.0);  // on-off WiFi
    }
    mdp.fit(trace);
    const int sweeps = mdp.solve();
    std::printf("MDP solved in %d value-iteration sweeps; policy by state:\n",
                sweeps);
    stats::Table table({"wifi bin (Mbps)", "@cell 0", "@cell ~0.5",
                        "@cell ~2.5", "@cell ~6", "@cell 8+"});
    const double wifi_reps[] = {0.0, 0.5, 2.5, 6.0, 9.0};
    const double cell_reps[] = {0.0, 0.5, 2.5, 6.0, 9.0};
    const char* bins[] = {"0 (dead)", "0.1-1", "1-4", "4-8", "8+"};
    for (int wb = 0; wb < 5; ++wb) {
      std::vector<std::string> row{bins[wb]};
      for (double cr : cell_reps) {
        row.push_back(baseline::MdpScheduler::to_string(
            mdp.action_for(wifi_reps[wb], cr)));
      }
      table.add_row(row);
    }
    std::printf("%s\n", table.render().c_str());
  }

  // Part 2: end-to-end comparison in the mobility scenario (the setting
  // §4.6 discusses), plus a degraded-WiFi static case.
  {
    std::printf("mobility scenario (250 s walk), all protocols:\n");
    app::ScenarioConfig cfg = lab_config(18.0, 9.0);
    cfg.mobility = true;
    const std::vector<app::Protocol> protocols = {
        app::Protocol::kMptcp, app::Protocol::kEmptcp,
        app::Protocol::kTcpWifi, app::Protocol::kWifiFirst,
        app::Protocol::kMdp};
    std::vector<RunSpec> specs;
    for (const app::Protocol p : protocols) {
      specs.push_back(timed_spec("sec46-mobility", cfg, p,
                                 sim::seconds(250)));
    }
    const auto matrix = run_specs(specs, {46});
    stats::Table table({"protocol", "energy (J)", "downloaded (MB)",
                        "J/MB", "LTE activations"});
    for (std::size_t i = 0; i < protocols.size(); ++i) {
      const app::RunMetrics& m = matrix[i][0];
      table.add_row({app::to_string(protocols[i]),
                     stats::Table::num(m.energy_j, 0),
                     stats::Table::num(
                         static_cast<double>(m.bytes_received) / 1e6, 0),
                     stats::Table::num(m.energy_per_mb(), 2),
                     std::to_string(m.cellular_activations)});
    }
    std::printf("%s\n", table.render().c_str());
  }
  {
    std::printf("degraded-but-associated WiFi (0.5 Mbps), 16 MB download:\n");
    app::ScenarioConfig cfg = lab_config(0.5, 9.0);
    const std::vector<app::Protocol> protocols = {app::Protocol::kEmptcp,
                                                  app::Protocol::kWifiFirst,
                                                  app::Protocol::kTcpWifi};
    std::vector<RunSpec> specs;
    for (const app::Protocol p : protocols) {
      specs.push_back(download_spec("sec46-degraded", cfg, p, 16 * kMB));
    }
    const auto matrix = run_specs(specs, {46});
    stats::Table table({"protocol", "energy (J)", "time (s)", "LTE bytes"});
    for (std::size_t i = 0; i < protocols.size(); ++i) {
      const app::RunMetrics& m = matrix[i][0];
      table.add_row({app::to_string(protocols[i]),
                     stats::Table::num(m.energy_j, 0),
                     stats::Table::num(m.download_time_s, 0),
                     m.cellular_used ? "yes" : "~0"});
    }
    std::printf("%s\n", table.render().c_str());
  }
  note("MDP policy = wifi-only wherever WiFi is usable (paper's finding); "
       "WiFi-First tracks TCP/WiFi's download amount/time while still "
       "paying cellular activation energy, and cannot exploit LTE when "
       "WiFi degrades without disassociating — unlike eMPTCP.");
  return 0;
}
