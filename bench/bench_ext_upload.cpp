// Extension (paper §7 future work): upload scenarios. The device is the
// data sender, so every eMPTCP mechanism runs off transmit progress —
// kappa counts acknowledged bytes, the predictor measures ack-clocked tx
// throughput, and MP_PRIO steers the device's own scheduler directly.
#include "bench_util.hpp"

int main() {
  using namespace emptcp;
  using namespace emptcp::bench;

  header("Extension: uploads (§7 future work)",
         "small and large uploads across protocols");

  struct Case {
    const char* name;
    double wifi, cell;
    std::uint64_t bytes;
  };
  const Case cases[] = {
      {"good WiFi, 16 MB up", 15.0, 9.0, 16 * kMB},
      {"bad WiFi, 16 MB up", 0.8, 9.0, 16 * kMB},
      {"good WiFi, 256 KB up", 15.0, 9.0, 256 * kKB},
  };

  for (const Case& c : cases) {
    std::printf("%s:\n", c.name);
    app::ScenarioConfig cfg = lab_config(c.wifi, c.cell);
    cfg.wifi.up_mbps = c.wifi;  // symmetric access for upload workloads
    cfg.cell.up_mbps = c.cell;
    app::Scenario s(cfg);
    stats::Table table({"protocol", "time (s)", "energy (J)", "LTE used"});
    for (app::Protocol p : {app::Protocol::kMptcp, app::Protocol::kEmptcp,
                            app::Protocol::kTcpWifi}) {
      const app::RunMetrics m = s.run_upload(p, c.bytes, 11);
      table.add_row({app::to_string(p),
                     stats::Table::num(m.download_time_s, 1),
                     stats::Table::num(m.energy_j, 1),
                     m.cellular_used ? "yes" : "no"});
    }
    std::printf("%s\n", table.render().c_str());
  }
  note("same shapes as the download experiments, mirrored: eMPTCP ~ "
       "TCP/WiFi when WiFi is good (and for small uploads), ~ MPTCP when "
       "WiFi is bad.");
  return 0;
}
