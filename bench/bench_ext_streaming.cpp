// Extension (paper §7 future work): video streaming. A 2 Mbps chunked
// stream with a 12 s buffer — bursty traffic with idle gaps, the case
// eMPTCP's idle-connection postponement (§3.5) targets.
#include "bench_util.hpp"

int main() {
  using namespace emptcp;
  using namespace emptcp::bench;

  header("Extension: video streaming (§7 future work)",
         "2 Mbps / 120 s chunked stream, quality and energy per protocol");

  app::VideoStreamClient::Config stream;
  stream.bitrate_mbps = 2.0;
  stream.chunk_bytes = 1 * kMB;
  stream.buffer_target_s = 12.0;
  stream.startup_s = 4.0;
  stream.media_duration_s = 120.0;

  struct Case {
    const char* name;
    double wifi, cell;
  };
  const Case cases[] = {{"WiFi sustains the bitrate (10 Mbps)", 10.0, 9.0},
                        {"WiFi below the bitrate (1.2 Mbps)", 1.2, 9.0}};

  for (const Case& c : cases) {
    std::printf("%s:\n", c.name);
    app::Scenario s(lab_config(c.wifi, c.cell));
    stats::Table table({"protocol", "startup (s)", "rebuffers",
                        "stall (s)", "energy (J)", "LTE used"});
    for (app::Protocol p : {app::Protocol::kMptcp, app::Protocol::kEmptcp,
                            app::Protocol::kTcpWifi}) {
      const app::RunMetrics m = s.run_stream(p, stream, 13);
      table.add_row({app::to_string(p),
                     stats::Table::num(m.startup_delay_s, 1),
                     std::to_string(m.rebuffer_events),
                     stats::Table::num(m.stall_time_s, 1),
                     stats::Table::num(m.energy_j, 1),
                     m.cellular_used ? "yes" : "no"});
    }
    std::printf("%s\n", table.render().c_str());
  }
  note("with sufficient WiFi, eMPTCP streams at TCP/WiFi's energy while "
       "MPTCP burns the LTE radio through every chunk; with weak WiFi, "
       "eMPTCP matches MPTCP's smooth playback where TCP/WiFi rebuffers "
       "throughout.");
  return 0;
}
