// Paper Fig. 8: energy and download time under random WiFi bandwidth
// changes, mean +- SEM over ten 256 MB runs (§4.3).
#include "bench_util.hpp"

int main() {
  using namespace emptcp;
  using namespace emptcp::bench;

  header("Figure 8",
         "Random WiFi bandwidth changes, 256 MB download, 10 runs, "
         "mean ± SEM");

  app::ScenarioConfig cfg = lab_config(12.0, 9.0);
  cfg.wifi_onoff = true;
  cfg.onoff.high_mbps = 12.0;
  cfg.onoff.low_mbps = 0.8;
  cfg.onoff.mean_high_s = 40.0;
  cfg.onoff.mean_low_s = 40.0;

  struct Result {
    std::vector<double> energy, time;
  };
  const std::vector<app::Protocol> protocols = {app::Protocol::kMptcp,
                                                app::Protocol::kEmptcp,
                                                app::Protocol::kTcpWifi};
  // Each (protocol, seed) replication is an independent simulation; the
  // [protocol][seed] matrix keeps aggregation identical to the sequential
  // loop.
  std::vector<RunSpec> specs;
  for (const app::Protocol p : protocols) {
    specs.push_back(download_spec("fig08", cfg, p, 256 * kMB));
  }
  const auto matrix = run_specs(specs, runtime::seed_range(40, 10));
  Result results[3];
  for (int i = 0; i < 3; ++i) {
    for (const app::RunMetrics& m : matrix[i]) {
      results[i].energy.push_back(m.energy_j);
      results[i].time.push_back(m.download_time_s);
    }
  }

  stats::Table table({"protocol", "energy (J)", "time (s)"});
  for (int i = 0; i < 3; ++i) {
    table.add_row({app::to_string(protocols[i]), mean_sem(results[i].energy),
                   mean_sem(results[i].time)});
  }
  std::printf("%s\n", table.render().c_str());

  const double e_ratio_mptcp =
      stats::mean(results[1].energy) / stats::mean(results[0].energy);
  const double e_ratio_wifi =
      stats::mean(results[1].energy) / stats::mean(results[2].energy);
  const double t_ratio_mptcp =
      stats::mean(results[1].time) / stats::mean(results[0].time);
  const double t_ratio_wifi =
      stats::mean(results[1].time) / stats::mean(results[2].time);
  std::printf("eMPTCP vs MPTCP:    energy %.0f%%, time %.0f%%\n",
              100 * e_ratio_mptcp, 100 * t_ratio_mptcp);
  std::printf("eMPTCP vs TCP/WiFi: energy %.0f%%, time %.0f%%\n\n",
              100 * e_ratio_wifi, 100 * t_ratio_wifi);
  note("paper: eMPTCP uses ~8% less energy than MPTCP and ~6% less than "
       "TCP/WiFi, is ~22% slower than MPTCP and ~2x faster than TCP/WiFi "
       "— expect the same orderings here.");
  return 0;
}
