// Paper Fig. 5: static good WiFi (>10 Mbps), 256 MB download, energy and
// download-time bars for MPTCP / eMPTCP / TCP-over-WiFi, averaged over
// five runs (§4.2).
#include "bench_util.hpp"
#include "sim/random.hpp"

namespace {
constexpr double kBaseWifiMbps = 12.0;
}  // namespace

int main() {
  using namespace emptcp;
  using namespace emptcp::bench;

  header("Figure 5", "Static good WiFi (>10 Mbps), 256 MB download, 5 runs");

  const app::Protocol protocols[] = {app::Protocol::kMptcp,
                                     app::Protocol::kEmptcp,
                                     app::Protocol::kTcpWifi};

  stats::Table table({"protocol", "energy (J)", "time (s)", "LTE used"});
  double e_mptcp = 0;
  double e_emptcp = 0;
  for (app::Protocol p : protocols) {
    std::vector<double> energy;
    std::vector<double> time;
    bool lte = false;
    for (int run = 0; run < 5; ++run) {
      // Small per-run environmental jitter, standing in for the run-to-run
      // variation of the paper's physical testbed.
      sim::Rng jitter(1000 + static_cast<std::uint64_t>(run));
      app::Scenario s(lab_config(kBaseWifiMbps * jitter.uniform(0.92, 1.08),
                                 9.0 * jitter.uniform(0.92, 1.08)));
      const app::RunMetrics m = s.run_download(p, 256 * kMB, 10 + run);
      energy.push_back(m.energy_j);
      time.push_back(m.download_time_s);
      lte |= m.cellular_used;
    }
    if (p == app::Protocol::kMptcp) e_mptcp = stats::mean(energy);
    if (p == app::Protocol::kEmptcp) e_emptcp = stats::mean(energy);
    table.add_row({app::to_string(p), mean_sem(energy), mean_sem(time),
                   lte ? "yes" : "no"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("eMPTCP energy vs MPTCP: %.0f%%\n\n",
              100.0 * e_emptcp / e_mptcp);
  note("eMPTCP chooses WiFi-only and matches TCP/WiFi's bars; MPTCP pays "
       "the LTE radio for a modest speedup (paper: eMPTCP ~ TCP/WiFi << "
       "MPTCP in energy).");
  return 0;
}
