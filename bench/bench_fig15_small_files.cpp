// Paper Fig. 15: in-the-wild 256 KB downloads — whisker plots of total
// energy and download time per Good/Bad category for MPTCP, eMPTCP and
// TCP over WiFi (§5.2).
#include <array>
#include <map>

#include "bench_util.hpp"
#include "bench_wild_util.hpp"

int main() {
  using namespace emptcp;
  using namespace emptcp::bench;

  header("Figure 15",
         "Small file transfers in the wild (256 KB), whisker summaries per "
         "category");

  const auto draws = wild_draws(/*iters=*/4, /*seed=*/15);
  const app::Protocol protocols[] = {app::Protocol::kMptcp,
                                     app::Protocol::kEmptcp,
                                     app::Protocol::kTcpWifi};

  struct Bucket {
    std::array<std::vector<double>, 3> energy;
    std::array<std::vector<double>, 3> time;
    int emptcp_lte_used = 0;
  };
  std::map<Category, Bucket> buckets;

  // One spec per (trace draw, protocol); every draw carries its own seed.
  // The matrix comes back in submission order, so the per-category buckets
  // fill exactly as the sequential loop filled them.
  std::vector<RunSpec> specs;
  for (std::size_t di = 0; di < draws.size(); ++di) {
    for (int i = 0; i < 3; ++i) {
      RunSpec rs = download_spec("fig15-t" + std::to_string(di),
                                 wild_config(draws[di]), protocols[i],
                                 256 * kKB);
      rs.fixed_seed = draws[di].seed;
      specs.push_back(std::move(rs));
    }
  }
  const auto matrix = run_specs(specs, {0});
  for (std::size_t di = 0; di < draws.size(); ++di) {
    const WildDraw& d = draws[di];
    Bucket& b = buckets[categorize(d.wifi_mbps, d.cell_mbps)];
    for (int i = 0; i < 3; ++i) {
      const app::RunMetrics& m = matrix[di * 3 + static_cast<std::size_t>(i)][0];
      b.energy[i].push_back(m.energy_j);
      b.time[i].push_back(m.download_time_s);
      if (protocols[i] == app::Protocol::kEmptcp && m.cellular_used) {
        ++b.emptcp_lte_used;
      }
    }
  }

  for (const auto& [cat, b] : buckets) {
    std::printf("%s (%zu traces; eMPTCP used LTE in %d):\n", to_string(cat),
                b.energy[0].size(), b.emptcp_lte_used);
    stats::Table table({"protocol", "energy J (Q1/med/Q3 [range])",
                        "time s (Q1/med/Q3 [range])"});
    for (int i = 0; i < 3; ++i) {
      table.add_row({app::to_string(protocols[i]),
                     whisker_cell(b.energy[i], 2),
                     whisker_cell(b.time[i], 2)});
    }
    std::printf("%s\n", table.render().c_str());
    const double saving = 1.0 - stats::SortedSample(b.energy[1]).quantile(0.5) /
                                    stats::SortedSample(b.energy[0]).quantile(0.5);
    std::printf("median eMPTCP energy saving vs MPTCP: %.0f%%\n\n",
                100.0 * saving);
  }
  note("paper: eMPTCP behaves like TCP/WiFi in every category, saving "
       "75-90% of MPTCP's energy at statistically similar download times; "
       "only rare outliers (timer-triggered LTE joins on terrible WiFi) "
       "approach MPTCP's numbers.");
  return 0;
}
