// Paper Fig. 13: mobile scenario comparison — energy per byte and total
// download amount over the 250 s walk, mean ± SEM over five runs (§4.5).
#include "bench_util.hpp"
#include "sim/random.hpp"

int main() {
  using namespace emptcp;
  using namespace emptcp::bench;

  header("Figure 13",
         "Mobile scenario: energy/byte and download amount (250 s, 5 runs)");

  const app::Protocol protocols[] = {app::Protocol::kMptcp,
                                     app::Protocol::kEmptcp,
                                     app::Protocol::kTcpWifi};
  std::vector<double> jpm[3];
  std::vector<double> mb[3];
  for (int run = 0; run < 5; ++run) {
    // Per-run environmental jitter: the paper repeats the same walk on
    // different days, with varying radio conditions.
    sim::Rng jitter(800 + static_cast<std::uint64_t>(run));
    app::ScenarioConfig cfg = lab_config(18.0 * jitter.uniform(0.9, 1.1),
                                         9.0 * jitter.uniform(0.9, 1.1));
    cfg.mobility = true;
    app::Scenario s(cfg);
    for (int i = 0; i < 3; ++i) {
      const app::RunMetrics m =
          s.run_timed(protocols[i], sim::seconds(250), 80 + run);
      jpm[i].push_back(m.energy_per_mb());
      mb[i].push_back(static_cast<double>(m.bytes_received) / 1e6);
    }
  }

  stats::Table table({"protocol", "energy (J/MB)", "downloaded (MB)"});
  for (int i = 0; i < 3; ++i) {
    table.add_row({app::to_string(protocols[i]), mean_sem(jpm[i], 2),
                   mean_sem(mb[i], 0)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("eMPTCP J/B vs MPTCP: %.0f%%;  vs TCP/WiFi: %.0f%%\n",
              100.0 * stats::mean(jpm[1]) / stats::mean(jpm[0]),
              100.0 * stats::mean(jpm[1]) / stats::mean(jpm[2]));
  std::printf("eMPTCP bytes vs MPTCP: %.0f%%;  vs TCP/WiFi: %.0f%%\n\n",
              100.0 * stats::mean(mb[1]) / stats::mean(mb[0]),
              100.0 * stats::mean(mb[1]) / stats::mean(mb[2]));
  note("paper: eMPTCP's per-byte energy ~22% below MPTCP and ~15% above "
       "TCP/WiFi; downloads ~25% less than MPTCP and ~28% more than "
       "TCP/WiFi. Expect the same orderings.");
  return 0;
}
