// Paper Fig. 13: mobile scenario comparison — energy per byte and total
// download amount over the 250 s walk, mean ± SEM over five runs (§4.5).
#include "bench_util.hpp"
#include "sim/random.hpp"

int main() {
  using namespace emptcp;
  using namespace emptcp::bench;

  header("Figure 13",
         "Mobile scenario: energy/byte and download amount (250 s, 5 runs)");

  const std::vector<app::Protocol> protocols = {app::Protocol::kMptcp,
                                                app::Protocol::kEmptcp,
                                                app::Protocol::kTcpWifi};
  std::vector<RunSpec> specs;
  for (const app::Protocol p : protocols) {
    RunSpec rs = timed_spec("fig13", {}, p, sim::seconds(250));
    // Per-run environmental jitter: the paper repeats the same walk on
    // different days, with varying radio conditions. The jitter RNG is
    // seeded from the run index, so every protocol sees the same
    // conditions for a given run — exactly as the sequential loop did.
    rs.cfg_for = [](std::uint64_t seed) {
      const std::uint64_t run = seed - 80;
      sim::Rng jitter(800 + run);
      app::ScenarioConfig cfg = lab_config(18.0 * jitter.uniform(0.9, 1.1),
                                           9.0 * jitter.uniform(0.9, 1.1));
      cfg.mobility = true;
      return cfg;
    };
    specs.push_back(std::move(rs));
  }
  const auto matrix = run_specs(specs, runtime::seed_range(80, 5));
  std::vector<double> jpm[3];
  std::vector<double> mb[3];
  for (int i = 0; i < 3; ++i) {
    for (const app::RunMetrics& m : matrix[i]) {
      jpm[i].push_back(m.energy_per_mb());
      mb[i].push_back(static_cast<double>(m.bytes_received) / 1e6);
    }
  }

  stats::Table table({"protocol", "energy (J/MB)", "downloaded (MB)"});
  for (int i = 0; i < 3; ++i) {
    table.add_row({app::to_string(protocols[i]), mean_sem(jpm[i], 2),
                   mean_sem(mb[i], 0)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("eMPTCP J/B vs MPTCP: %.0f%%;  vs TCP/WiFi: %.0f%%\n",
              100.0 * stats::mean(jpm[1]) / stats::mean(jpm[0]),
              100.0 * stats::mean(jpm[1]) / stats::mean(jpm[2]));
  std::printf("eMPTCP bytes vs MPTCP: %.0f%%;  vs TCP/WiFi: %.0f%%\n\n",
              100.0 * stats::mean(mb[1]) / stats::mean(mb[0]),
              100.0 * stats::mean(mb[1]) / stats::mean(mb[2]));
  note("paper: eMPTCP's per-byte energy ~22% below MPTCP and ~15% above "
       "TCP/WiFi; downloads ~25% less than MPTCP and ~28% more than "
       "TCP/WiFi. Expect the same orderings.");
  return 0;
}
