// Paper Figs. 11+12: the walking route (Fig. 11) and an example
// accumulated-energy trace along it (Fig. 12). The device starts next to
// the AP, walks out of usable range around 25-45 s, passes the AP again,
// and exits coverage near the end of the 250 s route.
#include "bench_util.hpp"
#include "net/channel/mobility.hpp"

int main() {
  using namespace emptcp;
  using namespace emptcp::bench;

  header("Figures 11 & 12",
         "Mobile route and accumulated energy example (250 s walk)");

  // Fig. 11: print the route's distance/rate profile.
  {
    sim::Simulation sim(1);
    net::WifiChannel ch(sim, {18.0, 0.0});
    net::MobilityModel mob(sim, ch,
                           net::MobilityModel::umass_corridor_route());
    std::printf("route profile (Fig. 11): distance to AP and achievable "
                "WiFi rate\n");
    stats::Table table({"t (s)", "distance (m)", "wifi rate (Mbps)"});
    for (double t = 0.0; t <= 250.0; t += 25.0) {
      table.add_row({stats::Table::num(t, 0),
                     stats::Table::num(mob.distance_at(t), 1),
                     stats::Table::num(mob.rate_at(t), 1)});
    }
    std::printf("%s\n", table.render().c_str());
  }

  // Fig. 12: accumulated energy traces.
  app::ScenarioConfig cfg = lab_config(18.0, 9.0, /*record_series=*/true);
  cfg.mobility = true;
  app::Scenario s(cfg);
  for (app::Protocol p : {app::Protocol::kMptcp, app::Protocol::kEmptcp,
                          app::Protocol::kTcpWifi}) {
    const app::RunMetrics m = s.run_timed(p, sim::seconds(250), 12);
    std::printf("%s: %.0f J total, %.0f MB downloaded\n", app::to_string(p),
                m.energy_j, static_cast<double>(m.bytes_received) / 1e6);
    std::printf("accumulated energy (J):\n%s",
                stats::ascii_chart(m.energy_series, 72, 8).c_str());
    std::printf("wifi Mbps: %s\n\n",
                stats::sparkline(m.wifi_rate_series, 72).c_str());
    maybe_dump_csv(std::string("fig12_") + app::to_string(p),
                   {{"energy_j", &m.energy_series},
                    {"wifi_mbps", &m.wifi_rate_series},
                    {"lte_mbps", &m.cell_rate_series}});
  }
  note("eMPTCP's energy slope sits between TCP/WiFi's and MPTCP's: it only "
       "pays for LTE during the coverage dips (paper §4.5).");
  return 0;
}
