// Extension: device and cellular-technology sweep (paper Table 1 / Fig. 1
// context). The paper implements on both a Galaxy S3 and a Nexus 5 and
// measures 3G as well as LTE; this bench runs the same 16 MB comparison
// for each (device, cell technology) pair.
#include "bench_util.hpp"
#include "energy/device_profile.hpp"

int main() {
  using namespace emptcp;
  using namespace emptcp::bench;

  header("Extension: devices & cellular technologies",
         "16 MB download at WiFi 2 / cell 8 Mbps, per device and tech");

  stats::Table table({"device", "cell tech", "protocol", "time (s)",
                      "energy (J)", "LTE/3G used"});
  for (const energy::DeviceProfile& dev :
       {energy::DeviceProfile::galaxy_s3(), energy::DeviceProfile::nexus5()}) {
    for (const energy::CellTech tech :
         {energy::CellTech::kLte, energy::CellTech::kThreeG}) {
      app::ScenarioConfig cfg = lab_config(2.0, 8.0);
      cfg.device = dev;
      cfg.cell_tech = tech;
      app::Scenario s(cfg);
      for (app::Protocol p : {app::Protocol::kMptcp, app::Protocol::kEmptcp,
                              app::Protocol::kTcpWifi}) {
        const app::RunMetrics m = s.run_download(p, 16 * kMB, 17);
        table.add_row({dev.name,
                       tech == energy::CellTech::kLte ? "LTE" : "3G",
                       app::to_string(p),
                       stats::Table::num(m.download_time_s, 1),
                       stats::Table::num(m.energy_j, 1),
                       m.cellular_used ? "yes" : "no"});
      }
    }
  }
  std::printf("%s\n", table.render().c_str());
  note("Nexus 5 rows sit below Galaxy S3 rows in energy (newer silicon); "
       "3G rows cost less fixed overhead but similar transfer power. Note "
       "that each (device, tech) pair generates its own EIB, so eMPTCP's "
       "choice at a borderline operating point can legitimately differ "
       "between techs — the decision tracks the model it was given.");
  return 0;
}
