// emptcp-fuzz: deterministic scenario fuzzer under the invariant oracle.
//
//   emptcp-fuzz [--seeds N] [--base-seed S] [--jobs N] [--recheck N]
//               [--mutate NAME] [--out DIR] [--digest-out FILE]
//   emptcp-fuzz --replay FILE
//
// Each seed expands (via check::generate_scenario) into a randomized fleet
// scenario executed under the protocol-invariant oracle; differential
// seeds run the identical workload under eMPTCP and plain MPTCP and
// cross-check byte streams and energy. The batch digest is a pure
// function of (base seed, seed count) — independent of --jobs /
// EMPTCP_JOBS — so two invocations can be diffed byte-for-byte.
//
// Violating seeds dump self-contained repro files into --out (default
// fuzz-out); `--replay FILE` re-runs exactly that scenario (including any
// injected mutation) and exits 1 while the violation reproduces. --mutate
// injects a known protocol bug (see check/mutation.hpp) to prove the
// oracle catches it; mutated batches force --jobs 1 because the mutation
// switch is process-global.
//
// Exit status: 0 clean, 1 violations or determinism mismatch, 2 usage.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "check/fuzzer.hpp"
#include "check/mutation.hpp"

namespace {

using namespace emptcp;

constexpr const char kUsage[] =
    "usage: emptcp-fuzz [--seeds N] [--base-seed S] [--jobs N]\n"
    "                   [--recheck N] [--mutate NAME] [--out DIR]\n"
    "                   [--digest-out FILE] [--fidelity-diff]\n"
    "       emptcp-fuzz --replay FILE\n"
    "       emptcp-fuzz --help\n"
    "\n"
    "Runs N seed-derived scenarios under the protocol-invariant oracle\n"
    "(differential eMPTCP-vs-MPTCP checking included). Violating seeds\n"
    "write replayable repro files into DIR (default: fuzz-out). The batch\n"
    "digest depends only on (--base-seed, --seeds), never on --jobs.\n"
    "--recheck N re-runs the first N seeds and demands identical digests.\n"
    "--mutate injects a known bug (reassembly-dup-deliver,\n"
    "scheduler-ignore-backup) to demonstrate detection; implies --jobs 1.\n"
    "--fidelity-diff additionally re-runs every seed's primary protocol at\n"
    "hybrid fidelity under the oracle and cross-checks per-flow bytes\n"
    "(exact), FCT and energy against the packet run (DESIGN.md §13).\n"
    "Exit: 0 clean, 1 violation or determinism mismatch, 2 usage.\n";

int usage_error(const std::string& complaint) {
  if (!complaint.empty()) {
    std::fprintf(stderr, "emptcp-fuzz: %s\n", complaint.c_str());
  }
  std::fputs(kUsage, stderr);
  return 2;
}

bool parse_count(const std::string& s, std::uint64_t& out) {
  char* end = nullptr;
  out = std::strtoull(s.c_str(), &end, 10);
  return end != s.c_str() && end != nullptr && *end == '\0';
}

int replay(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return usage_error("cannot read replay file: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  check::ReproHeader hdr;
  std::string err;
  if (!check::parse_repro(buf.str(), hdr, err)) {
    return usage_error(path + ": " + err);
  }

  const check::ScopedMutation guard(hdr.mutation);
  const check::FuzzScenario sc = check::generate_scenario(hdr.seed);
  std::fprintf(stderr, "emptcp-fuzz: replaying seed %llu (mutation %s)\n",
               static_cast<unsigned long long>(hdr.seed),
               check::to_string(hdr.mutation));
  std::fprintf(stderr, "emptcp-fuzz: scenario: %s\n", sc.summary.c_str());
  const check::SeedResult r = check::run_seed(hdr.seed, hdr.fidelity_diff);
  std::fprintf(stderr,
               "emptcp-fuzz: %llu checks, %zu violation(s), digest %llu\n",
               static_cast<unsigned long long>(r.checks),
               r.violations.size(),
               static_cast<unsigned long long>(r.digest));
  for (const check::Violation& v : r.violations) {
    std::fprintf(stderr, "  t=%.6f %s: %s\n", v.t_s, v.invariant.c_str(),
                 v.detail.c_str());
  }
  return r.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  for (const std::string& a : args) {
    if (a == "--help" || a == "-h") {
      std::fputs(kUsage, stdout);
      return 0;
    }
  }

  check::FuzzBatchConfig cfg;
  cfg.seeds = 16;
  cfg.base_seed = 1;
  check::Mutation mutation = check::Mutation::kNone;
  std::string out_dir = "fuzz-out";
  std::string digest_out;
  std::string replay_path;
  bool jobs_given = false;

  for (std::size_t i = 0; i < args.size(); ++i) {
    auto value = [&](const char* what) -> const std::string* {
      if (i + 1 >= args.size()) return nullptr;
      (void)what;
      return &args[++i];
    };
    std::uint64_t n = 0;
    if (args[i] == "--seeds") {
      const std::string* v = value("--seeds");
      if (v == nullptr || !parse_count(*v, n) || n == 0) {
        return usage_error("--seeds needs a positive count");
      }
      cfg.seeds = static_cast<std::size_t>(n);
    } else if (args[i] == "--base-seed") {
      const std::string* v = value("--base-seed");
      if (v == nullptr || !parse_count(*v, n)) {
        return usage_error("--base-seed needs a number");
      }
      cfg.base_seed = n;
    } else if (args[i] == "--jobs") {
      const std::string* v = value("--jobs");
      if (v == nullptr || !parse_count(*v, n) || n == 0) {
        return usage_error("--jobs needs a positive count");
      }
      cfg.workers = static_cast<std::size_t>(n);
      jobs_given = true;
    } else if (args[i] == "--recheck") {
      const std::string* v = value("--recheck");
      if (v == nullptr || !parse_count(*v, n)) {
        return usage_error("--recheck needs a count");
      }
      cfg.recheck = static_cast<std::size_t>(n);
    } else if (args[i] == "--mutate") {
      const std::string* v = value("--mutate");
      if (v == nullptr || !check::mutation_from_string(*v, mutation)) {
        return usage_error("unknown --mutate name" +
                           (v != nullptr ? ": " + *v : std::string()));
      }
    } else if (args[i] == "--out") {
      const std::string* v = value("--out");
      if (v == nullptr) return usage_error("--out needs a directory");
      out_dir = *v;
    } else if (args[i] == "--digest-out") {
      const std::string* v = value("--digest-out");
      if (v == nullptr) return usage_error("--digest-out needs a file");
      digest_out = *v;
    } else if (args[i] == "--replay") {
      const std::string* v = value("--replay");
      if (v == nullptr) return usage_error("--replay needs a file");
      replay_path = *v;
    } else if (args[i] == "--fidelity-diff") {
      cfg.fidelity_diff = true;
    } else {
      return usage_error("unknown option: " + args[i]);
    }
  }

  if (!replay_path.empty()) return replay(replay_path);

  if (mutation != check::Mutation::kNone) {
    if (jobs_given && cfg.workers != 1) {
      return usage_error("--mutate is process-global; use --jobs 1");
    }
    cfg.workers = 1;
  }

  const check::ScopedMutation guard(mutation);
  std::fprintf(stderr,
               "emptcp-fuzz: %zu seed(s) from %llu, recheck %zu, "
               "mutation %s\n",
               cfg.seeds, static_cast<unsigned long long>(cfg.base_seed),
               cfg.recheck, check::to_string(mutation));
  const check::FuzzBatchResult batch = check::run_batch(cfg);

  if (batch.violating_seeds > 0) {
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    if (ec) {
      std::fprintf(stderr, "emptcp-fuzz: cannot create %s: %s\n",
                   out_dir.c_str(), ec.message().c_str());
      return 2;
    }
  }

  for (const check::SeedResult& r : batch.results) {
    if (r.ok()) continue;
    const check::FuzzScenario sc = check::generate_scenario(r.seed);
    const std::filesystem::path repro =
        std::filesystem::path(out_dir) /
        ("repro-" + std::to_string(r.seed) + ".txt");
    std::ofstream out(repro);
    out << check::format_repro(sc, mutation, r, cfg.fidelity_diff);
    std::fprintf(stderr, "emptcp-fuzz: seed %llu: %zu violation(s) -> %s\n",
                 static_cast<unsigned long long>(r.seed),
                 r.violations.size(), repro.string().c_str());
    std::size_t shown = 0;
    for (const check::Violation& v : r.violations) {
      if (shown++ == 4) {
        std::fprintf(stderr, "    ...\n");
        break;
      }
      std::fprintf(stderr, "    t=%.6f %s: %s\n", v.t_s,
                   v.invariant.c_str(), v.detail.c_str());
    }
  }

  char digest_hex[32];
  std::snprintf(digest_hex, sizeof digest_hex, "fnv1a64:%016llx",
                static_cast<unsigned long long>(batch.batch_digest));
  const std::string digest = digest_hex;
  std::fprintf(stderr,
               "emptcp-fuzz: %zu seed(s), %llu checks, %zu violating, "
               "%zu recheck mismatch(es)\n",
               batch.results.size(),
               static_cast<unsigned long long>(batch.total_checks),
               batch.violating_seeds, batch.recheck_mismatches);
  std::fprintf(stdout, "%s\n", digest.c_str());
  if (!digest_out.empty()) {
    std::ofstream out(digest_out);
    out << digest << "\n";
  }
  return batch.violating_seeds > 0 || batch.recheck_mismatches > 0 ? 1 : 0;
}
