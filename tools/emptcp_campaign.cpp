// emptcp-campaign: declarative multi-flow campaign runner.
//
//   emptcp-campaign [--out DIR] [--jobs N] [--no-report] SPEC
//
// Parses a campaign spec (JSON or key=value, see src/campaign/spec.hpp),
// runs the protocol × fleet-size × seed grid on the replication thread
// pool, and writes one `<label>.jsonl` + `<label>.manifest.json` artifact
// pair per cell into the output directory — exactly the format
// emptcp-report consumes. After the grid completes, the paper-style report
// over every cell is rendered to stdout (suppress with --no-report).
//
// Campaigns are resumable: a `campaign.ledger` in the output directory
// records each completed cell's trace digest. Re-invoking the same spec on
// the same directory verifies the ledger against the artifacts and re-runs
// only missing or corrupt cells; the final artifacts are byte-identical to
// an uninterrupted run, regardless of worker count (--jobs / EMPTCP_JOBS).
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/report.hpp"
#include "analysis/report_io.hpp"
#include "campaign/runner.hpp"
#include "campaign/spec.hpp"
#include "runtime/telemetry.hpp"

namespace {

using namespace emptcp;

constexpr const char kUsage[] =
    "usage: emptcp-campaign [--out DIR] [--jobs N] [--shards N]\n"
    "                       [--heartbeat SECS] [--no-report] SPEC\n"
    "       emptcp-campaign --help\n"
    "\n"
    "Runs the protocol x fleet-size x seed grid described by SPEC (JSON\n"
    "or key=value lines) and writes per-cell trace + manifest artifacts\n"
    "into DIR (default: campaign-out). Completed cells are recorded in\n"
    "DIR/campaign.ledger; re-running the same spec resumes, re-running\n"
    "only missing or corrupt cells. Unless --no-report is given, the\n"
    "emptcp-report rendering over all cells is printed to stdout.\n"
    "\n"
    "--shards N overrides the spec's sharding.shards worker count for\n"
    "sharded fleets (sharding.clients_per_cell > 0); 0 derives it from\n"
    "EMPTCP_JOBS / the core count. Artifacts are byte-identical for any\n"
    "value — the override only changes wall-clock time.\n"
    "\n"
    "--heartbeat SECS appends a live status line (cells done/running,\n"
    "events/s, ETA) to DIR/heartbeat.jsonl every SECS seconds, plus one\n"
    "final line when the grid completes.\n"
    "\n"
    "With EMPTCP_PERF_DIR set, the runtime span profiler is enabled and\n"
    "per-cell `<label>.perf.json` plus campaign-level `.trace.json`\n"
    "(Chrome trace-event JSON, loadable in Perfetto) and `.perf.json`\n"
    "files are written there — never into DIR, whose contents stay a pure\n"
    "function of (spec, seeds). Render them with `emptcp-report perf`.\n";

int usage_error(const std::string& complaint) {
  if (!complaint.empty()) {
    std::fprintf(stderr, "emptcp-campaign: %s\n", complaint.c_str());
  }
  std::fputs(kUsage, stderr);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage_error("");
  for (const std::string& a : args) {
    if (a == "--help" || a == "-h") {
      std::fputs(kUsage, stdout);
      return 0;
    }
  }

  std::string out_dir = "campaign-out";
  std::string spec_path;
  std::size_t jobs = 0;  // 0 = pool default (cores, capped by EMPTCP_JOBS)
  bool report = true;
  bool shards_given = false;
  std::size_t shards = 0;
  double heartbeat_s = 0.0;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--out") {
      if (i + 1 >= args.size()) return usage_error("--out needs a directory");
      out_dir = args[++i];
    } else if (args[i] == "--jobs") {
      if (i + 1 >= args.size()) return usage_error("--jobs needs a count");
      char* end = nullptr;
      const unsigned long v = std::strtoul(args[++i].c_str(), &end, 10);
      if (end == args[i].c_str() || *end != '\0' || v == 0) {
        return usage_error("bad --jobs value: " + args[i]);
      }
      jobs = static_cast<std::size_t>(v);
    } else if (args[i] == "--shards") {
      if (i + 1 >= args.size()) return usage_error("--shards needs a count");
      char* end = nullptr;
      const unsigned long v = std::strtoul(args[++i].c_str(), &end, 10);
      if (end == args[i].c_str() || *end != '\0') {
        return usage_error("bad --shards value: " + args[i]);
      }
      shards_given = true;
      shards = static_cast<std::size_t>(v);  // 0 = jobs-derived
    } else if (args[i] == "--heartbeat") {
      if (i + 1 >= args.size()) {
        return usage_error("--heartbeat needs a seconds value");
      }
      char* end = nullptr;
      const double v = std::strtod(args[++i].c_str(), &end);
      if (end == args[i].c_str() || *end != '\0' || !(v > 0.0)) {
        return usage_error("bad --heartbeat value: " + args[i]);
      }
      heartbeat_s = v;
    } else if (args[i] == "--no-report") {
      report = false;
    } else if (!args[i].empty() && args[i][0] == '-') {
      return usage_error("unknown option: " + args[i]);
    } else if (spec_path.empty()) {
      spec_path = args[i];
    } else {
      return usage_error("more than one SPEC given: " + args[i]);
    }
  }
  if (spec_path.empty()) return usage_error("no SPEC file given");

  campaign::CampaignSpec spec;
  std::string err;
  if (!campaign::load_campaign_spec(spec_path, spec, err)) {
    return usage_error(err);  // err already names the spec path
  }
  if (shards_given) {
    if (spec.workload.sharding.clients_per_cell == 0) {
      return usage_error("--shards given but the spec is not sharded (set "
                         "sharding.clients_per_cell)");
    }
    spec.workload.sharding.shards = shards;
  }

  std::fprintf(stderr,
               "emptcp-campaign: %s: %zu protocol(s) x %zu fleet size(s) x "
               "%zu seed(s) = %zu cell(s) -> %s\n",
               spec.name.c_str(), spec.protocols.size(),
               spec.fleet_sizes.size(), spec.seeds.size(), spec.cell_count(),
               out_dir.c_str());
  if (spec.workload.sharding.clients_per_cell != 0) {
    std::fprintf(stderr,
                 "emptcp-campaign: sharded fleets: %zu clients/cell, "
                 "shards=%zu (0 = jobs-derived)\n",
                 spec.workload.sharding.clients_per_cell,
                 spec.workload.sharding.shards);
  }

  // EMPTCP_PERF_DIR opts into the span profiler: telemetry artifacts land
  // there, keeping the campaign directory byte-identical to a run with
  // profiling off (the determinism gates compare it whole).
  if (const char* perf_dir = std::getenv("EMPTCP_PERF_DIR");
      perf_dir != nullptr && *perf_dir != '\0') {
    std::error_code ec;
    std::filesystem::create_directories(perf_dir, ec);
    if (ec) {
      std::fprintf(stderr, "emptcp-campaign: cannot create %s: %s\n",
                   perf_dir, ec.message().c_str());
      return 2;
    }
    runtime::Telemetry::instance().enable(true);
    std::fprintf(stderr, "emptcp-campaign: telemetry on -> %s\n", perf_dir);
  }

  campaign::CampaignRunner runner(std::move(spec), out_dir);
  runner.set_heartbeat(heartbeat_s);
  campaign::CampaignResult result;
  try {
    result = runner.run(jobs);
  } catch (const std::invalid_argument& e) {
    // A degenerate grid (e.g. an empty seed list) is a spec-authoring
    // mistake: fail loudly with usage, not with a silent empty campaign.
    return usage_error(e.what());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "emptcp-campaign: %s\n", e.what());
    return 2;
  }

  for (const campaign::CellOutcome& o : result.cells) {
    std::fprintf(stderr, "  %-7s %s\n",
                 o.kind == campaign::CellOutcome::Kind::kResumed ? "resumed"
                                                                 : "ran",
                 o.cell.label.c_str());
  }
  std::fprintf(stderr, "emptcp-campaign: %zu ran, %zu resumed\n", result.ran,
               result.resumed);

  if (report) {
    std::vector<analysis::AnalyzedRun> runs;
    if (!analysis::load_analyzed_runs({out_dir}, runs, err)) {
      std::fprintf(stderr, "emptcp-campaign: %s\n", err.c_str());
      return 2;
    }
    const std::string rendered = analysis::render_report(std::move(runs));
    std::fwrite(rendered.data(), 1, rendered.size(), stdout);
  }
  return 0;
}
