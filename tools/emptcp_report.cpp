// emptcp-report: offline analysis CLI over trace + manifest artifacts.
//
// Report mode:
//   emptcp-report DIR [DIR...]
// scans each directory for `*.manifest.json` (written by the benches under
// EMPTCP_TRACE_DIR), loads the JSONL trace next to each manifest, verifies
// its digest, and renders the paper-style report (per-run rollups,
// mean±SEM aggregates, energy-per-bit table, quantiles/CDFs) to stdout.
// Output is deterministic: same artifacts -> byte-identical report.
//
// Diff mode (the CI gate):
//   emptcp-report --diff BASELINE.json CURRENT.json [--tol PAT=MODE:TOL...]
// compares two flat JSON metric files (e.g. BENCH_core.json) under
// per-metric tolerance rules. Exit code 1 when any metric is out of
// tolerance, 2 on usage/IO errors, 0 otherwise. User --tol rules are
// prepended to the defaults, so they win on overlap. MODE is one of
// ignore | exact | abs | factor | min (see analysis/report.hpp).
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/report.hpp"

namespace {

namespace fs = std::filesystem;
using namespace emptcp;

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

int usage() {
  std::fprintf(stderr,
               "usage: emptcp-report DIR [DIR...]\n"
               "       emptcp-report --diff BASELINE.json CURRENT.json"
               " [--tol PATTERN=MODE:TOL ...]\n");
  return 2;
}

/// Streams one JSONL trace through the rollup builder chunk-by-chunk:
/// digest and per-line fold in a single pass, O(chunk + one line) memory
/// regardless of trace size (mobility traces run to hundreds of MB).
bool stream_trace(const std::string& path, analysis::RollupBuilder& builder,
                  std::string& digest_hex, std::string& err) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    err = "cannot open";
    return false;
  }
  analysis::Fnv1a64Stream digest;
  std::string chunk(1 << 20, '\0');
  std::string carry;  // partial line from the previous chunk
  std::size_t line_no = 0;
  auto fold_line = [&](std::string_view line) {
    ++line_no;
    if (line.empty()) return true;
    std::string perr;
    const auto doc = analysis::parse_json_flat(line, &perr);
    if (!doc) {
      err = "line " + std::to_string(line_no) + ": " + perr;
      return false;
    }
    builder.add_line(*doc);
    return true;
  };
  while (in) {
    in.read(chunk.data(), static_cast<std::streamsize>(chunk.size()));
    const std::size_t got = static_cast<std::size_t>(in.gcount());
    if (got == 0) break;
    const std::string_view data(chunk.data(), got);
    digest.update(data);
    std::size_t pos = 0;
    for (;;) {
      const std::size_t nl = data.find('\n', pos);
      if (nl == std::string_view::npos) {
        carry.append(data.substr(pos));
        break;
      }
      if (carry.empty()) {
        if (!fold_line(data.substr(pos, nl - pos))) return false;
      } else {
        carry.append(data.substr(pos, nl - pos));
        if (!fold_line(carry)) return false;
        carry.clear();
      }
      pos = nl + 1;
    }
  }
  if (!carry.empty() && !fold_line(carry)) return false;
  digest_hex = digest.hex();
  return true;
}

int run_report(const std::vector<std::string>& dirs) {
  std::vector<std::string> manifest_paths;
  for (const std::string& dir : dirs) {
    std::error_code ec;
    fs::directory_iterator it(dir, ec);
    if (ec) {
      std::fprintf(stderr, "emptcp-report: cannot read %s: %s\n", dir.c_str(),
                   ec.message().c_str());
      return 2;
    }
    for (const fs::directory_entry& e : it) {
      const std::string name = e.path().filename().string();
      if (name.size() > 14 &&
          name.compare(name.size() - 14, 14, ".manifest.json") == 0) {
        manifest_paths.push_back(e.path().string());
      }
    }
  }
  // Directory iteration order is unspecified; sort for determinism.
  std::sort(manifest_paths.begin(), manifest_paths.end());
  if (manifest_paths.empty()) {
    std::fprintf(stderr, "emptcp-report: no *.manifest.json found\n");
    return 2;
  }

  std::vector<analysis::AnalyzedRun> runs;
  for (const std::string& path : manifest_paths) {
    std::string text;
    if (!read_file(path, text)) {
      std::fprintf(stderr, "emptcp-report: cannot read %s\n", path.c_str());
      return 2;
    }
    std::string err;
    const auto doc = analysis::parse_json_flat(text, &err);
    if (!doc) {
      std::fprintf(stderr, "emptcp-report: %s: %s\n", path.c_str(),
                   err.c_str());
      return 2;
    }
    analysis::RunManifest manifest;
    if (!analysis::manifest_from_json(*doc, manifest)) {
      std::fprintf(stderr, "emptcp-report: %s: not a run manifest\n",
                   path.c_str());
      return 2;
    }
    const std::string trace_path =
        (fs::path(path).parent_path() / manifest.trace_file).string();
    analysis::RollupBuilder builder(manifest);
    std::string digest_hex;
    if (!stream_trace(trace_path, builder, digest_hex, err)) {
      std::fprintf(stderr, "emptcp-report: %s: %s\n", trace_path.c_str(),
                   err.c_str());
      return 2;
    }
    analysis::AnalyzedRun run;
    run.rollup = builder.finish();
    run.power_windows = builder.power().windows();
    run.digest_ok = digest_hex == manifest.trace_digest;
    run.source = path;
    runs.push_back(std::move(run));
  }
  const std::string report = analysis::render_report(std::move(runs));
  std::fwrite(report.data(), 1, report.size(), stdout);
  return 0;
}

int run_diff(const std::vector<std::string>& args) {
  std::vector<std::string> files;
  std::vector<analysis::ToleranceRule> rules;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--tol") {
      if (i + 1 >= args.size()) return usage();
      analysis::ToleranceRule rule;
      if (!analysis::parse_tolerance(args[++i], rule)) {
        std::fprintf(stderr, "emptcp-report: bad --tol spec: %s\n",
                     args[i].c_str());
        return 2;
      }
      rules.push_back(std::move(rule));
    } else {
      files.push_back(args[i]);
    }
  }
  if (files.size() != 2) return usage();
  for (auto& rule : analysis::default_bench_tolerances()) {
    rules.push_back(std::move(rule));
  }

  analysis::FlatJson docs[2];
  for (int i = 0; i < 2; ++i) {
    std::string text;
    if (!read_file(files[static_cast<std::size_t>(i)], text)) {
      std::fprintf(stderr, "emptcp-report: cannot read %s\n",
                   files[static_cast<std::size_t>(i)].c_str());
      return 2;
    }
    std::string err;
    auto doc = analysis::parse_json_flat(text, &err);
    if (!doc) {
      std::fprintf(stderr, "emptcp-report: %s: %s\n",
                   files[static_cast<std::size_t>(i)].c_str(), err.c_str());
      return 2;
    }
    docs[i] = std::move(*doc);
  }
  const analysis::DiffResult diff =
      analysis::diff_metrics(docs[0], docs[1], rules);
  const std::string rendered = diff.render();
  std::fwrite(rendered.data(), 1, rendered.size(), stdout);
  return diff.violations > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage();
  if (args[0] == "--diff") {
    return run_diff({args.begin() + 1, args.end()});
  }
  for (const std::string& a : args) {
    if (a.rfind("--", 0) == 0) return usage();
  }
  return run_report(args);
}
