// emptcp-report: offline analysis CLI over trace + manifest artifacts.
//
// Report mode:
//   emptcp-report DIR [DIR...]
// scans each directory for `*.manifest.json` (written by the benches under
// EMPTCP_TRACE_DIR and by emptcp-campaign), loads the JSONL trace next to
// each manifest, verifies its digest, and renders the paper-style report
// (per-run rollups, mean±SEM aggregates, energy-per-bit table,
// quantiles/CDFs) to stdout. Output is deterministic: same artifacts ->
// byte-identical report.
//
// Diff mode (the CI gate):
//   emptcp-report --diff BASELINE.json CURRENT.json [--tol PAT=MODE:TOL...]
// compares two flat JSON metric files (e.g. BENCH_core.json) under
// per-metric tolerance rules. Exit code 1 when any metric is out of
// tolerance, 2 on usage/IO errors, 0 otherwise. User --tol rules are
// prepended to the defaults, so they win on overlap. MODE is one of
// ignore | exact | abs | factor | min (see analysis/report.hpp).
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/perf_report.hpp"
#include "analysis/report.hpp"
#include "analysis/report_io.hpp"

namespace {

using namespace emptcp;

constexpr const char kUsage[] =
    "usage: emptcp-report DIR [DIR...] [--rollup-json FILE]\n"
    "       emptcp-report --diff BASELINE.json CURRENT.json"
    " [--tol PATTERN=MODE:TOL ...]\n"
    "       emptcp-report perf DIR [DIR...] [--trace-json FILE]\n"
    "       emptcp-report --help\n"
    "\n"
    "Report mode renders the paper-style report over every\n"
    "*.manifest.json (+ JSONL trace) found in the given directories;\n"
    "--rollup-json additionally writes the runs' rollups as one flat\n"
    "JSON document (per-run headline fields plus per-flow triples)\n"
    "suitable for diff mode — the hybrid-fidelity gate diffs two such\n"
    "exports.\n"
    "Diff mode compares two flat JSON metric files under per-metric\n"
    "tolerance rules (MODE: ignore|exact|abs|factor|min); exit 1 when\n"
    "out of tolerance.\n"
    "Perf mode renders the runtime-telemetry tables (per-shard epoch and\n"
    "utilization stats, barrier accounting, top spans) over every\n"
    "*.perf.json found in the given directories — the files\n"
    "emptcp-campaign and the benches write under EMPTCP_PERF_DIR.\n"
    "--trace-json additionally validates a Chrome trace-event export\n"
    "(the Perfetto-loadable `*.trace.json`) structurally.\n";

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

int usage_error(const char* complaint) {
  if (complaint != nullptr) {
    std::fprintf(stderr, "emptcp-report: %s\n", complaint);
  }
  std::fputs(kUsage, stderr);
  return 2;
}

int run_report(const std::vector<std::string>& args) {
  std::vector<std::string> dirs;
  std::string rollup_json;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--rollup-json") {
      if (i + 1 >= args.size()) {
        return usage_error("--rollup-json needs a file");
      }
      rollup_json = args[++i];
    } else if (!args[i].empty() && args[i][0] == '-') {
      return usage_error(("unknown option: " + args[i]).c_str());
    } else {
      dirs.push_back(args[i]);
    }
  }
  if (dirs.empty()) return usage_error(nullptr);
  std::vector<analysis::AnalyzedRun> runs;
  std::string err;
  if (!analysis::load_analyzed_runs(dirs, runs, err)) {
    std::fprintf(stderr, "emptcp-report: %s\n", err.c_str());
    return 2;
  }
  if (runs.empty()) {
    std::fprintf(stderr, "emptcp-report: no *.manifest.json found\n");
    return 2;
  }
  if (!rollup_json.empty()) {
    const std::string flat = analysis::rollup_flat_json(runs);
    std::ofstream out(rollup_json, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "emptcp-report: cannot write %s\n",
                   rollup_json.c_str());
      return 2;
    }
    out << flat;
  }
  const std::string report = analysis::render_report(std::move(runs));
  std::fwrite(report.data(), 1, report.size(), stdout);
  return 0;
}

int run_diff(const std::vector<std::string>& args) {
  std::vector<std::string> files;
  std::vector<analysis::ToleranceRule> rules;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--tol") {
      if (i + 1 >= args.size()) {
        return usage_error("--tol needs a PATTERN=MODE:TOL argument");
      }
      analysis::ToleranceRule rule;
      if (!analysis::parse_tolerance(args[++i], rule)) {
        std::fprintf(stderr, "emptcp-report: bad --tol spec: %s\n",
                     args[i].c_str());
        return 2;
      }
      rules.push_back(std::move(rule));
    } else if (!args[i].empty() && args[i][0] == '-') {
      return usage_error(("unknown option: " + args[i]).c_str());
    } else {
      files.push_back(args[i]);
    }
  }
  if (files.size() != 2) {
    return usage_error("--diff needs exactly BASELINE.json and CURRENT.json");
  }
  for (auto& rule : analysis::default_bench_tolerances()) {
    rules.push_back(std::move(rule));
  }

  analysis::FlatJson docs[2];
  for (int i = 0; i < 2; ++i) {
    std::string text;
    if (!read_file(files[static_cast<std::size_t>(i)], text)) {
      std::fprintf(stderr, "emptcp-report: cannot read %s\n",
                   files[static_cast<std::size_t>(i)].c_str());
      return 2;
    }
    std::string err;
    auto doc = analysis::parse_json_flat(text, &err);
    if (!doc) {
      std::fprintf(stderr, "emptcp-report: %s: %s\n",
                   files[static_cast<std::size_t>(i)].c_str(), err.c_str());
      return 2;
    }
    docs[i] = std::move(*doc);
  }
  const analysis::DiffResult diff =
      analysis::diff_metrics(docs[0], docs[1], rules);
  const std::string rendered = diff.render();
  std::fwrite(rendered.data(), 1, rendered.size(), stdout);
  return diff.violations > 0 ? 1 : 0;
}

int run_perf(const std::vector<std::string>& args) {
  std::vector<std::string> dirs;
  std::string trace_json;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--trace-json") {
      if (i + 1 >= args.size()) {
        return usage_error("--trace-json needs a file");
      }
      trace_json = args[++i];
    } else if (!args[i].empty() && args[i][0] == '-') {
      return usage_error(("unknown option: " + args[i]).c_str());
    } else {
      dirs.push_back(args[i]);
    }
  }
  if (dirs.empty() && trace_json.empty()) {
    return usage_error("perf needs at least one DIR or --trace-json FILE");
  }

  // Filename-sorted scan per directory: deterministic table order.
  std::vector<std::string> files;
  for (const std::string& dir : dirs) {
    std::error_code ec;
    std::vector<std::string> found;
    for (const auto& entry :
         std::filesystem::directory_iterator(dir, ec)) {
      const std::string name = entry.path().filename().string();
      if (name.size() > 10 &&
          name.compare(name.size() - 10, 10, ".perf.json") == 0) {
        found.push_back(entry.path().string());
      }
    }
    if (ec) {
      std::fprintf(stderr, "emptcp-report: cannot scan %s: %s\n",
                   dir.c_str(), ec.message().c_str());
      return 2;
    }
    std::sort(found.begin(), found.end());
    files.insert(files.end(), found.begin(), found.end());
  }
  if (files.empty() && !dirs.empty()) {
    std::fprintf(stderr, "emptcp-report: no *.perf.json found\n");
    return 2;
  }

  std::vector<analysis::PerfDoc> docs;
  for (const std::string& path : files) {
    std::string text;
    if (!read_file(path, text)) {
      std::fprintf(stderr, "emptcp-report: cannot read %s\n", path.c_str());
      return 2;
    }
    std::string err;
    const auto flat = analysis::parse_json_flat(text, &err);
    if (!flat) {
      std::fprintf(stderr, "emptcp-report: %s: %s\n", path.c_str(),
                   err.c_str());
      return 2;
    }
    analysis::PerfDoc doc;
    if (!analysis::perf_doc_from_flat(*flat, doc, &err)) {
      std::fprintf(stderr, "emptcp-report: %s: %s\n", path.c_str(),
                   err.c_str());
      return 2;
    }
    docs.push_back(std::move(doc));
  }
  if (!docs.empty()) {
    const std::string rendered = analysis::render_perf_report(docs);
    std::fwrite(rendered.data(), 1, rendered.size(), stdout);
  }

  if (!trace_json.empty()) {
    std::string text;
    if (!read_file(trace_json, text)) {
      std::fprintf(stderr, "emptcp-report: cannot read %s\n",
                   trace_json.c_str());
      return 2;
    }
    std::size_t events = 0;
    std::string err;
    if (!analysis::validate_chrome_trace(text, events, err)) {
      std::fprintf(stderr, "emptcp-report: %s: %s\n", trace_json.c_str(),
                   err.c_str());
      return 1;
    }
    std::fprintf(stdout, "chrome trace OK: %s (%zu events)\n",
                 trace_json.c_str(), events);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage_error(nullptr);
  for (const std::string& a : args) {
    if (a == "--help" || a == "-h") {
      std::fputs(kUsage, stdout);
      return 0;
    }
  }
  if (args[0] == "--diff") {
    return run_diff({args.begin() + 1, args.end()});
  }
  if (args[0] == "perf") {
    return run_perf({args.begin() + 1, args.end()});
  }
  return run_report(args);
}
