// The protocol-invariant oracle: ~15 machine-checked invariants evaluated
// against a live simulation.
//
// Two feeds converge here:
//   * every trace event, via trace::EventObserver (cwnd bounds, TCP
//     state-machine legality, mode-change legality, energy-sample sanity,
//     per-sink time monotonicity, warnings-as-violations), and
//   * direct hooks from protocol code through check::Hub (sequence-space
//     sanity on every new ACK, exactly-once delivery identity on every
//     payload, DSS assignment contiguity/no-overlap, scheduler eligibility
//     of the picked subflow, the RFC 6356 LIA aggressiveness bound).
//
// The oracle draws no random numbers and schedules no events, so attaching
// it cannot perturb a deterministic run; serialized traces are byte-equal
// with and without it. Detach (or destroy) the oracle before its
// simulation is destroyed.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "check/invariants.hpp"
#include "sim/time.hpp"
#include "trace/sink.hpp"

namespace emptcp::sim {
class Simulation;
}

namespace emptcp::check {

struct Violation {
  double t_s = 0.0;
  std::string invariant;
  std::string detail;
};

class Oracle : public trace::EventObserver {
 public:
  struct Config {
    std::uint32_t mss = 1448;  ///< net::kMss; plain literal keeps this light
    std::uint64_t max_cwnd = 16ull * 1024 * 1024;
    bool allow_cell_only = false;
    /// Detailed Violation records retained; the count keeps growing past
    /// this so a violation storm cannot exhaust memory.
    std::size_t max_violations = 64;
  };

  Oracle() = default;
  explicit Oracle(Config cfg) : cfg_(cfg) {}
  ~Oracle() override;

  Oracle(const Oracle&) = delete;
  Oracle& operator=(const Oracle&) = delete;

  /// Installs this oracle as the simulation's hub oracle and trace
  /// observer (saving whatever was there, restored on detach).
  void attach(sim::Simulation& sim);
  void detach();

  // --- trace::EventObserver --------------------------------------------
  void on_trace_event(const trace::Event& e) override;

  // --- direct hooks (called through check::Hub) -------------------------
  struct TcpAckView {
    std::uint64_t snd_una = 0;
    std::uint64_t snd_nxt = 0;
    std::uint64_t in_flight = 0;  ///< snd_nxt - snd_una
    std::uint64_t sacked = 0;
    std::uint64_t lost = 0;
    std::uint64_t cwnd = 0;
    std::uint32_t local_port = 0;
  };
  void on_tcp_ack(const TcpAckView& v);

  /// After every payload insert: `received` application bytes must equal
  /// the reassembly cumulative point minus its initial value (1).
  void on_tcp_rx(std::uint64_t received, std::uint64_t rcv_cumulative,
                 std::uint32_t local_port);

  struct DssAssign {
    const void* conn = nullptr;  ///< identifies the data-sequence space
    std::uint64_t data_seq = 0;
    std::uint32_t len = 0;
    bool fresh = false;  ///< newly striped (else reinjected)
    bool sf_usable = false;
    bool sf_backup = false;
    bool other_regular_usable = false;
    std::size_t subflow_id = 0;
  };
  void on_dss_assign(const DssAssign& a);

  /// Hybrid fidelity: the fast path advanced `len` bytes of `conn`'s
  /// data-sequence space analytically, starting at `data_seq`. Must be
  /// contiguous with the fresh-assignment frontier (a gap or overlap means
  /// the macro-step and packet-level striping disagree about what has been
  /// sent); advances the frontier so post-fluid packet-level assignment is
  /// still held to dss.fresh_contiguous.
  void on_macro_advance(const void* conn, std::uint64_t data_seq,
                        std::uint64_t len);

  void on_lia_increase(const LiaSample& s);

  /// Harness-level check: the fuzzer funnels world-teardown and
  /// differential assertions through the same violation machinery.
  void expect(bool ok, const char* invariant, std::string detail);

  // --- results ----------------------------------------------------------
  [[nodiscard]] bool ok() const { return violation_count_ == 0; }
  [[nodiscard]] std::uint64_t violation_count() const {
    return violation_count_;
  }
  [[nodiscard]] const std::vector<Violation>& violations() const {
    return violations_;
  }
  [[nodiscard]] std::uint64_t checks_run() const { return checks_; }
  /// One line per retained violation, suitable for repro files.
  [[nodiscard]] std::string report() const;

 private:
  void fail(const char* invariant, std::string detail);
  [[nodiscard]] double now_s() const;

  Config cfg_;
  sim::Simulation* sim_ = nullptr;
  trace::EventObserver* prev_observer_ = nullptr;
  Oracle* prev_hub_oracle_ = nullptr;
  sim::Time last_event_t_ = 0;
  /// Per-connection fresh-assignment frontier of the data-sequence space.
  std::map<const void*, std::uint64_t> dss_frontier_;
  std::vector<Violation> violations_;
  std::uint64_t violation_count_ = 0;
  std::uint64_t checks_ = 0;
};

}  // namespace emptcp::check
