// Pure invariant predicates shared by the oracle and the unit tests.
//
// Each predicate states one machine-checkable protocol property as a
// function of plain values, with no simulator dependencies, so the oracle
// (checking live runs) and the property tests (checking randomized vectors)
// evaluate literally the same definition. See DESIGN.md §10 for the
// catalog.
#pragma once

#include <cstdint>

namespace emptcp::check {

/// One LIA congestion-avoidance increase as observed inside the coupled
/// controller (mptcp::LiaCoupledCc::ca_increase).
struct LiaSample {
  std::uint64_t acked_bytes = 0;
  std::uint32_t mss = 0;
  std::uint64_t own_cwnd = 0;    ///< this subflow's cwnd (bytes)
  std::uint64_t total_cwnd = 0;  ///< sum over coupled subflows (bytes)
  double alpha = 0.0;            ///< RFC 6356 §4 aggressiveness factor
  std::uint64_t increase = 0;    ///< bytes actually added to cwnd
};

/// RFC 6356 §3: the coupled increase never exceeds what an uncoupled
/// NewReno flow would add on the same path (acked*mss/cwnd_i), modulo the
/// one-byte floor the implementation applies so tiny windows still grow.
[[nodiscard]] bool lia_increase_within_bound(const LiaSample& s);

/// Congestion-window sanity: cwnd stays within [mss, max_cwnd] and
/// ssthresh never collapses below one segment.
[[nodiscard]] bool cwnd_bounds_ok(std::uint64_t cwnd, std::uint64_t ssthresh,
                                  std::uint32_t mss, std::uint64_t max_cwnd);

/// Legality of a TcpSocket state-machine transition, by the state names
/// tcp::to_string(TcpState) produces (the form trace events carry).
/// Unknown names and self-transitions are illegal.
[[nodiscard]] bool tcp_transition_ok(const char* from, const char* to);

/// Legality of a PathUsageController mode change, by the names
/// core::to_string(PathUsage) produces. The controller only announces
/// actual changes (no self-edges) and may enter "cell-only" only when the
/// configuration allows it.
[[nodiscard]] bool mode_transition_ok(const char* from, const char* to,
                                      bool allow_cell_only);

}  // namespace emptcp::check
