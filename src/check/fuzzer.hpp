// Deterministic scenario fuzzer: seed-scheduled grids of randomized fleet
// scenarios executed under the invariant oracle (check::Oracle), with an
// optional differential mode that re-runs the identical workload under
// plain MPTCP and cross-checks application byte streams and energy.
//
// Determinism contract: a scenario is a pure function of its seed (all
// generation draws come from an FNV-derived SeedStream, never from global
// rng), and a run is a pure function of (scenario, seed) — so the whole
// batch digest is reproducible across process runs and across
// EMPTCP_JOBS=1 vs parallel execution. Violations dump self-contained
// repro files (schema "emptcp-fuzz-repro-v1") that `emptcp-fuzz --replay`
// turns back into the exact failing run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "app/scenario.hpp"
#include "check/mutation.hpp"
#include "check/oracle.hpp"
#include "workload/fleet.hpp"

namespace emptcp::check {

/// Deterministic value stream for scenario generation: draw n is
/// fnv1a64("fuzz|<seed>|<n>"). No state beyond the counter, so generation
/// order is the only coupling between dimensions.
class SeedStream {
 public:
  explicit SeedStream(std::uint64_t seed) : seed_(seed) {}

  std::uint64_t next();
  /// Uniform integer in [lo, hi] (inclusive).
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi);
  /// Uniform real in [lo, hi).
  double real(double lo, double hi);
  /// True with probability ~p.
  bool chance(double p);
  /// Log-uniform integer in [lo, hi] — for flow sizes spanning decades.
  std::uint64_t log_range(std::uint64_t lo, std::uint64_t hi);

 private:
  std::uint64_t seed_;
  std::uint64_t counter_ = 0;
};

/// A scheduled total blackout of one path: the affected links' loss
/// probability is forced to 1.0 for the window, then restored to the
/// scenario's configured value.
struct LinkOutage {
  enum class Path : std::uint8_t { kWifi, kCell };
  enum class Dir : std::uint8_t { kDown, kUp, kBoth };
  Path path = Path::kWifi;
  Dir dir = Dir::kBoth;
  double at_s = 1.0;
  double duration_s = 1.0;
};

const char* to_string(LinkOutage::Path p);
const char* to_string(LinkOutage::Dir d);

/// One generated test case. `fleet.protocol` is the primary protocol; when
/// `differential` is set the same workload also runs under kMptcp and the
/// two runs are cross-checked.
struct FuzzScenario {
  std::uint64_t seed = 0;
  workload::FleetConfig fleet;
  std::vector<LinkOutage> outages;
  bool differential = false;
  std::string summary;  ///< one-line human description
};

/// Pure function of `seed`.
FuzzScenario generate_scenario(std::uint64_t seed);

/// One protocol run of a scenario under the oracle.
struct RunOutcome {
  std::uint64_t digest = 0;  ///< fnv1a64 of the serialized trace
  std::uint64_t flows_started = 0;
  std::uint64_t flows_completed = 0;
  bool all_completed = false;
  double energy_j = 0.0;
  std::uint64_t checks = 0;
  std::vector<Violation> violations;
  std::string flight_tail;  ///< flight-recorder dump; filled on violation
  std::vector<workload::FlowRecord> flows;
};

RunOutcome run_protocol(const FuzzScenario& sc, app::Protocol protocol,
                        sim::Fidelity fidelity = sim::Fidelity::kPacket);

/// Full result for one seed: primary run, plus the differential baseline
/// and cross-run checks when the scenario asks for them.
struct SeedResult {
  std::uint64_t seed = 0;
  std::uint64_t digest = 0;  ///< combined over all runs of this seed
  std::uint64_t checks = 0;
  std::vector<Violation> violations;
  std::string flight_tail;
  std::string summary;

  [[nodiscard]] bool ok() const { return violations.empty(); }
};

/// `fidelity_diff` additionally re-runs the scenario's primary protocol at
/// hybrid fidelity under the full oracle, and — on scenarios whose workload
/// is rng-independent (the same property the protocol differential needs)
/// — cross-checks per-flow completion, bytes (exact), FCT and energy
/// against the packet run within the DESIGN.md §13 tolerance contract.
SeedResult run_seed(std::uint64_t seed, bool fidelity_diff = false);

struct FuzzBatchConfig {
  std::uint64_t base_seed = 1;
  std::size_t seeds = 16;
  /// Re-run the first `recheck` seeds a second time and require identical
  /// digests (catches nondeterminism the cross-job comparison misses).
  std::size_t recheck = 0;
  std::size_t workers = 0;  ///< 0 = all cores (respects EMPTCP_JOBS)
  std::string report_progress;  ///< unused hook for CLI progress prefix
  /// Run every seed's primary protocol at hybrid fidelity too and
  /// cross-check against the packet run (see run_seed).
  bool fidelity_diff = false;
};

struct FuzzBatchResult {
  std::vector<SeedResult> results;  ///< one per seed, in seed order
  std::uint64_t batch_digest = 0;   ///< order-stable combination
  std::size_t violating_seeds = 0;
  std::size_t recheck_mismatches = 0;
  std::uint64_t total_checks = 0;
};

/// Runs seeds [base_seed, base_seed + seeds) in parallel. Deterministic:
/// the batch digest depends only on (base_seed, seeds), never on workers.
/// Must run with the global mutation at kNone OR workers == 1 — mutations
/// are process-global, so mutated batches cannot overlap clean ones.
FuzzBatchResult run_batch(const FuzzBatchConfig& cfg);

/// Self-contained repro file ("emptcp-fuzz-repro-v1"): machine-readable
/// seed + mutation (+ fidelity-diff) header, human-readable
/// violation/flight commentary.
std::string format_repro(const FuzzScenario& sc, Mutation mutation,
                         const SeedResult& r, bool fidelity_diff = false);

struct ReproHeader {
  std::uint64_t seed = 0;
  Mutation mutation = Mutation::kNone;
  bool fidelity_diff = false;
};

/// Parses a repro file's header. Returns false (with `err` set) on
/// unknown schema or missing/garbled fields.
bool parse_repro(const std::string& text, ReproHeader& out, std::string& err);

}  // namespace emptcp::check
