// The per-simulation attachment point for the invariant oracle.
//
// Instrumented protocol objects (TcpSocket, MptcpConnection, LiaCoupledCc)
// cache a pointer to their simulation's Hub at construction time; every
// hook site is then one pointer load plus a branch when no oracle is
// attached, cheap enough to leave compiled into the hot paths permanently.
// The Hub itself lives in sim::Simulation::context<T>() storage, so it is
// created lazily, owned by the simulation, and torn down after the
// scheduler — the same lifetime contract the trace sink follows.
//
// Only check/oracle.hpp defines Oracle; hook sites include this header
// (header-light) and pull the oracle declaration into their .cpp only.
#pragma once

#include "sim/simulation.hpp"

namespace emptcp::check {

class Oracle;

struct Hub {
  Oracle* oracle = nullptr;
};

inline Hub& hub(sim::Simulation& sim) { return sim.context<Hub>(); }

}  // namespace emptcp::check
