#include "check/invariants.hpp"

#include <algorithm>
#include <cstring>

namespace emptcp::check {

bool lia_increase_within_bound(const LiaSample& s) {
  if (s.increase == 0) return false;  // the floor guarantees progress
  if (s.own_cwnd == 0 || s.total_cwnd == 0) {
    // Degenerate windows take the early-return path: exactly the floor.
    return s.increase == 1;
  }
  // Recompute the uncoupled NewReno increase in the same double arithmetic
  // the controller uses; the cast truncates, so the implementation's value
  // can never exceed floor(reno) unless the one-byte floor applied.
  const double reno = static_cast<double>(s.acked_bytes) *
                      static_cast<double>(s.mss) /
                      static_cast<double>(s.own_cwnd);
  const auto bound =
      std::max<std::uint64_t>(static_cast<std::uint64_t>(reno), 1);
  return s.increase <= bound;
}

bool cwnd_bounds_ok(std::uint64_t cwnd, std::uint64_t ssthresh,
                    std::uint32_t mss, std::uint64_t max_cwnd) {
  if (mss == 0) return false;
  return cwnd >= mss && cwnd <= max_cwnd && ssthresh >= mss;
}

namespace {

/// TcpState names in tcp::to_string order; index doubles as the state id.
constexpr const char* kTcpStates[] = {
    "CLOSED",   "SYN_SENT",   "SYN_RCVD", "ESTABLISHED",
    "FIN_WAIT", "CLOSE_WAIT", "LAST_ACK", "DONE",
};
constexpr int kTcpStateCount = 8;

int tcp_state_index(const char* name) {
  if (name == nullptr) return -1;
  for (int i = 0; i < kTcpStateCount; ++i) {
    if (std::strcmp(name, kTcpStates[i]) == 0) return i;
  }
  return -1;
}

// Adjacency of the legal transitions, mirroring TcpSocket: every change
// funnels through transition(), and finish() may jump to DONE from any
// live state (failure, RST, abort).
constexpr bool kTcpLegal[kTcpStateCount][kTcpStateCount] = {
    // to: CLOSED SYN_SENT SYN_RCVD ESTAB FIN_WAIT CLOSE_WAIT LAST_ACK DONE
    {false, true, true, false, false, false, false, true},    // CLOSED
    {false, false, false, true, false, false, false, true},   // SYN_SENT
    {false, false, false, true, false, false, false, true},   // SYN_RCVD
    {false, false, false, false, true, true, false, true},    // ESTABLISHED
    {false, false, false, false, false, false, false, true},  // FIN_WAIT
    {false, false, false, false, false, false, true, true},   // CLOSE_WAIT
    {false, false, false, false, false, false, false, true},  // LAST_ACK
    {false, false, false, false, false, false, false, false}, // DONE
};

}  // namespace

bool tcp_transition_ok(const char* from, const char* to) {
  const int f = tcp_state_index(from);
  const int t = tcp_state_index(to);
  if (f < 0 || t < 0) return false;
  return kTcpLegal[f][t];
}

bool mode_transition_ok(const char* from, const char* to,
                        bool allow_cell_only) {
  const auto known = [](const char* name) {
    return name != nullptr && (std::strcmp(name, "wifi-only") == 0 ||
                               std::strcmp(name, "both") == 0 ||
                               std::strcmp(name, "cell-only") == 0);
  };
  if (!known(from) || !known(to)) return false;
  if (std::strcmp(from, to) == 0) return false;  // only changes are traced
  if (!allow_cell_only && std::strcmp(to, "cell-only") == 0) return false;
  return true;
}

}  // namespace emptcp::check
