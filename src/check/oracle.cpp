#include "check/oracle.hpp"

#include <string>

#include "check/hub.hpp"
#include "sim/simulation.hpp"

namespace emptcp::check {

namespace {
std::string u64(std::uint64_t v) { return std::to_string(v); }
std::string i64(std::int64_t v) { return std::to_string(v); }
}  // namespace

Oracle::~Oracle() { detach(); }

void Oracle::attach(sim::Simulation& sim) {
  detach();
  sim_ = &sim;
  Hub& h = hub(sim);
  prev_hub_oracle_ = h.oracle;
  h.oracle = this;
  prev_observer_ = sim.trace().set_observer(this);
  last_event_t_ = sim.now();
}

void Oracle::detach() {
  if (sim_ == nullptr) return;
  hub(*sim_).oracle = prev_hub_oracle_;
  sim_->trace().set_observer(prev_observer_);
  sim_ = nullptr;
  prev_observer_ = nullptr;
  prev_hub_oracle_ = nullptr;
}

double Oracle::now_s() const {
  return sim_ != nullptr ? sim::to_seconds(sim_->now()) : 0.0;
}

void Oracle::fail(const char* invariant, std::string detail) {
  ++violation_count_;
  if (violations_.size() < cfg_.max_violations) {
    violations_.push_back(Violation{now_s(), invariant, std::move(detail)});
  }
}

void Oracle::expect(bool ok, const char* invariant, std::string detail) {
  ++checks_;
  if (!ok) fail(invariant, std::move(detail));
}

std::string Oracle::report() const {
  std::string out;
  for (const Violation& v : violations_) {
    out += "t=" + std::to_string(v.t_s) + " " + v.invariant + ": " +
           v.detail + "\n";
  }
  if (violation_count_ > violations_.size()) {
    out += "(+" + u64(violation_count_ - violations_.size()) +
           " further violations not retained)\n";
  }
  return out;
}

void Oracle::on_trace_event(const trace::Event& e) {
  expect(e.t >= last_event_t_, "trace.time_monotonic",
         "event at t=" + i64(e.t) + " after t=" + i64(last_event_t_));
  last_event_t_ = e.t;

  switch (e.kind) {
    case trace::Kind::kCwnd:
      expect(cwnd_bounds_ok(static_cast<std::uint64_t>(e.i0),
                            static_cast<std::uint64_t>(e.i1), cfg_.mss,
                            cfg_.max_cwnd),
             "tcp.cwnd_bounds",
             "flow=" + u64(e.id) + " cwnd=" + i64(e.i0) +
                 " ssthresh=" + i64(e.i1));
      break;
    case trace::Kind::kTcpState:
      expect(tcp_transition_ok(e.label, e.label2), "tcp.state_transition",
             "flow=" + u64(e.id) + " " +
                 (e.label != nullptr ? e.label : "?") + " -> " +
                 (e.label2 != nullptr ? e.label2 : "?"));
      break;
    case trace::Kind::kSrtt:
      expect(e.i0 >= 0 && e.i1 > 0, "tcp.rtt_sane",
             "flow=" + u64(e.id) + " srtt_ns=" + i64(e.i0) +
                 " rto_ns=" + i64(e.i1));
      break;
    case trace::Kind::kSchedPick:
      expect(e.i1 > 0, "sched.pick_nonempty",
             "subflow=" + u64(e.id) + " len=" + i64(e.i1));
      break;
    case trace::Kind::kModeChange:
      expect(mode_transition_ok(e.label, e.label2, cfg_.allow_cell_only),
             "mode.transition",
             std::string(e.label != nullptr ? e.label : "?") + " -> " +
                 (e.label2 != nullptr ? e.label2 : "?"));
      break;
    case trace::Kind::kEnergySample:
      expect(e.d0 >= 0.0 && e.d1 >= 0.0, "energy.sample_nonnegative",
             std::string(e.label != nullptr ? e.label : "?") +
                 " mbps=" + std::to_string(e.d0) +
                 " power_mw=" + std::to_string(e.d1));
      break;
    case trace::Kind::kFlowStart:
      expect(e.i0 >= 0, "flow.start_bytes_nonnegative",
             "flow=" + u64(e.id) + " bytes=" + i64(e.i0));
      break;
    case trace::Kind::kFlowComplete:
      expect(e.i0 >= 0 && e.d0 >= 0.0 && e.d1 >= 0.0, "flow.complete_sane",
             "flow=" + u64(e.id) + " bytes=" + i64(e.i0) +
                 " fct_s=" + std::to_string(e.d0) +
                 " energy_j=" + std::to_string(e.d1));
      break;
    case trace::Kind::kWarning:
      expect(false, "trace.warning",
             std::string(e.label != nullptr ? e.label : "?") +
                 " v0=" + i64(e.i0) + " v1=" + i64(e.i1));
      break;
    default:
      break;
  }
}

void Oracle::on_tcp_ack(const TcpAckView& v) {
  expect(v.snd_una <= v.snd_nxt, "tcp.seq_order",
         "port=" + u64(v.local_port) + " snd_una=" + u64(v.snd_una) +
             " snd_nxt=" + u64(v.snd_nxt));
  expect(v.sacked + v.lost <= v.in_flight, "tcp.pipe_nonnegative",
         "port=" + u64(v.local_port) + " sacked=" + u64(v.sacked) +
             " lost=" + u64(v.lost) + " in_flight=" + u64(v.in_flight));
  expect(v.cwnd >= cfg_.mss, "tcp.cwnd_floor",
         "port=" + u64(v.local_port) + " cwnd=" + u64(v.cwnd));
}

void Oracle::on_tcp_rx(std::uint64_t received, std::uint64_t rcv_cumulative,
                       std::uint32_t local_port) {
  // Application data starts at sequence 1, so exactly-once in-order
  // delivery through IntervalReassembly means the delivered-byte count and
  // the cumulative point move in lockstep. Double delivery (or a skipped
  // range) breaks the identity immediately.
  expect(received == rcv_cumulative - 1, "tcp.exactly_once_delivery",
         "port=" + u64(local_port) + " received=" + u64(received) +
             " cumulative=" + u64(rcv_cumulative));
}

void Oracle::on_dss_assign(const DssAssign& a) {
  expect(a.len > 0, "dss.assign_nonempty",
         "subflow=" + u64(a.subflow_id) + " data_seq=" + u64(a.data_seq));
  expect(a.sf_usable, "sched.subflow_usable",
         "subflow=" + u64(a.subflow_id) + " picked while not usable");
  expect(!(a.sf_backup && a.other_regular_usable), "sched.backup_suppressed",
         "subflow=" + u64(a.subflow_id) +
             " is backup but a regular subflow is usable");

  // The frontier starts at the first fresh assignment seen (the oracle may
  // attach after a connection began striping); from then on fresh chunks
  // must extend it exactly and reinjections must stay below it. A
  // first-seen reinjection has no frontier to judge against.
  auto it = dss_frontier_.find(a.conn);
  if (it == dss_frontier_.end()) {
    if (a.fresh) dss_frontier_.emplace(a.conn, a.data_seq + a.len);
    return;
  }
  if (a.fresh) {
    expect(a.data_seq == it->second, "dss.fresh_contiguous",
           "data_seq=" + u64(a.data_seq) + " frontier=" + u64(it->second));
    it->second = a.data_seq + a.len;
  } else {
    expect(a.data_seq + a.len <= it->second, "dss.reinject_below_frontier",
           "data_seq=" + u64(a.data_seq) + " len=" + u64(a.len) +
               " frontier=" + u64(it->second));
  }
}

void Oracle::on_macro_advance(const void* conn, std::uint64_t data_seq,
                              std::uint64_t len) {
  expect(len > 0, "macro.advance_nonempty", "data_seq=" + u64(data_seq));
  // A macro-step is an aggregated fresh assignment: it must extend the
  // fresh frontier exactly (and advances it, so packet-level striping that
  // resumes after the fluid interval is still judged contiguous).
  auto it = dss_frontier_.find(conn);
  if (it == dss_frontier_.end()) {
    dss_frontier_.emplace(conn, data_seq + len);
    return;
  }
  expect(data_seq == it->second, "macro.fresh_contiguous",
         "data_seq=" + u64(data_seq) + " frontier=" + u64(it->second));
  it->second = data_seq + len;
}

void Oracle::on_lia_increase(const LiaSample& s) {
  expect(lia_increase_within_bound(s), "lia.increase_bound",
         "acked=" + u64(s.acked_bytes) + " mss=" + u64(s.mss) +
             " own=" + u64(s.own_cwnd) + " total=" + u64(s.total_cwnd) +
             " alpha=" + std::to_string(s.alpha) +
             " inc=" + u64(s.increase));
  expect(s.alpha >= 0.0, "lia.alpha_nonnegative",
         "alpha=" + std::to_string(s.alpha));
}

}  // namespace emptcp::check
