#include "check/fuzzer.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "analysis/manifest.hpp"
#include "app/world.hpp"
#include "net/packet_pool.hpp"
#include "runtime/replication.hpp"
#include "stats/trace_export.hpp"

namespace emptcp::check {
namespace {

constexpr const char* kReproSchema = "emptcp-fuzz-repro-v1";

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

/// Order-stable digest combination (FNV over the decimal renderings, so
/// combine(a, b) != combine(b, a)).
std::uint64_t combine_digest(std::uint64_t a, std::uint64_t b) {
  return analysis::fnv1a64(std::to_string(a) + "|" + std::to_string(b));
}

}  // namespace

std::uint64_t SeedStream::next() {
  return analysis::fnv1a64("fuzz|" + std::to_string(seed_) + "|" +
                           std::to_string(counter_++));
}

std::uint64_t SeedStream::range(std::uint64_t lo, std::uint64_t hi) {
  if (hi <= lo) return lo;
  return lo + next() % (hi - lo + 1);
}

double SeedStream::real(double lo, double hi) {
  // 53 high-entropy bits -> uniform in [0, 1).
  const double u =
      static_cast<double>(next() >> 11) / static_cast<double>(1ULL << 53);
  return lo + (hi - lo) * u;
}

bool SeedStream::chance(double p) { return real(0.0, 1.0) < p; }

std::uint64_t SeedStream::log_range(std::uint64_t lo, std::uint64_t hi) {
  if (hi <= lo) return lo;
  const double v = std::exp(real(std::log(static_cast<double>(lo)),
                                 std::log(static_cast<double>(hi))));
  return std::clamp(static_cast<std::uint64_t>(v), lo, hi);
}

const char* to_string(LinkOutage::Path p) {
  return p == LinkOutage::Path::kWifi ? "wifi" : "cell";
}

const char* to_string(LinkOutage::Dir d) {
  switch (d) {
    case LinkOutage::Dir::kDown: return "down";
    case LinkOutage::Dir::kUp: return "up";
    case LinkOutage::Dir::kBoth: return "both";
  }
  return "?";
}

FuzzScenario generate_scenario(std::uint64_t seed) {
  SeedStream s(seed);
  FuzzScenario sc;
  sc.seed = seed;

  workload::FleetConfig& f = sc.fleet;
  app::ScenarioConfig& w = f.scenario;
  w.trace = true;
  w.record_series = true;
  w.max_sim_time = sim::seconds(120);

  // Path grid spans the paper's good/bad WiFi and near/far server corners.
  w.wifi.down_mbps = s.real(2.0, 40.0);
  w.wifi.up_mbps = s.real(1.0, 10.0);
  w.wifi.rtt = sim::milliseconds(static_cast<std::int64_t>(s.range(10, 120)));
  w.wifi.loss = s.chance(0.35) ? s.real(0.0, 0.05) : 0.0;
  w.wifi.queue_bytes = (32 + 32 * s.range(0, 7)) * 1024;
  w.cell.down_mbps = s.real(1.0, 20.0);
  w.cell.up_mbps = s.real(0.5, 6.0);
  w.cell.rtt = sim::milliseconds(static_cast<std::int64_t>(s.range(30, 150)));
  w.cell.loss = s.chance(0.25) ? s.real(0.0, 0.03) : 0.0;
  w.cell.queue_bytes = (64 + 32 * s.range(0, 6)) * 1024;

  // Environment dynamics (combinable, each with its own probability).
  if (s.chance(0.25)) {
    w.wifi_onoff = true;
    w.onoff.high_mbps = w.wifi.down_mbps;
    w.onoff.low_mbps = s.real(0.0, 2.0);
    w.onoff.mean_high_s = s.real(1.0, 6.0);
    w.onoff.mean_low_s = s.real(0.5, 4.0);
    w.onoff.start_high = s.chance(0.8);
  }
  if (s.chance(0.2)) {
    w.interferers = static_cast<int>(s.range(1, 2));
    w.lambda_on = s.real(0.05, 0.5);
    w.lambda_off = s.real(0.05, 0.5);
  }
  if (s.chance(0.1)) w.mobility = true;

  f.clients = s.range(1, 4);
  f.flows_per_client = s.range(1, 3);

  sc.differential = s.chance(0.5);
  if (sc.differential) {
    // Differential runs must draw nothing workload-related from the world
    // rng, so the eMPTCP and MPTCP runs see byte-identical arrivals:
    // closed loop (no arrival draws), scheduled sizes (indexed, no draw),
    // and none/fixed think times (no draw).
    f.protocol = app::Protocol::kEmptcp;
    f.mode = workload::FleetConfig::Mode::kClosed;
    if (s.chance(0.5)) {
      f.think.kind = workload::ThinkTime::Kind::kFixed;
      f.think.mean_s = s.real(0.02, 0.3);
    }
    f.flow_size.kind = workload::SizeDist::Kind::kScheduled;
    f.flow_size.min_bytes = 1024;
    const std::size_t n = f.clients * f.flows_per_client;
    for (std::size_t i = 0; i < n; ++i) {
      f.flow_size.values.push_back(s.log_range(2'000, 1'000'000));
    }
  } else {
    constexpr app::Protocol kPool[] = {
        app::Protocol::kTcpWifi, app::Protocol::kTcpLte,
        app::Protocol::kMptcp, app::Protocol::kEmptcp,
        app::Protocol::kWifiFirst};
    f.protocol = kPool[s.range(0, 4)];
    if (s.chance(0.3)) {
      f.mode = workload::FleetConfig::Mode::kOpen;
      f.arrival.kind = s.chance(0.7)
                           ? workload::ArrivalProcess::Kind::kPoisson
                           : workload::ArrivalProcess::Kind::kDeterministic;
      f.arrival.rate_per_s = s.real(0.5, 3.0);
    } else {
      const std::uint64_t think = s.range(0, 2);
      f.think.kind = static_cast<workload::ThinkTime::Kind>(think);
      if (think != 0) f.think.mean_s = s.real(0.02, 0.3);
    }
    const std::uint64_t size_kind = s.range(0, 2);
    if (size_kind == 0) {
      f.flow_size.kind = workload::SizeDist::Kind::kFixed;
      f.flow_size.mean_bytes = s.log_range(2'000, 1'000'000);
    } else if (size_kind == 1) {
      f.flow_size.kind = workload::SizeDist::Kind::kLognormal;
      f.flow_size.log_mu = s.real(9.0, 13.0);
      f.flow_size.log_sigma = s.real(0.5, 1.5);
      f.flow_size.max_bytes = 2u << 20;
    } else {
      f.flow_size.kind = workload::SizeDist::Kind::kScheduled;
      f.flow_size.min_bytes = 1024;
      const std::size_t n = f.clients * f.flows_per_client;
      for (std::size_t i = 0; i < n; ++i) {
        f.flow_size.values.push_back(s.log_range(2'000, 1'000'000));
      }
    }
  }

  if (s.chance(0.4)) {
    const std::uint64_t n = s.range(1, 2);
    for (std::uint64_t i = 0; i < n; ++i) {
      LinkOutage o;
      o.path = s.chance(0.5) ? LinkOutage::Path::kWifi
                             : LinkOutage::Path::kCell;
      const std::uint64_t dir = s.range(0, 2);
      o.dir = static_cast<LinkOutage::Dir>(dir);
      o.at_s = s.real(0.5, 8.0);
      o.duration_s = s.real(0.2, 2.5);
      sc.outages.push_back(o);
    }
  }

  std::string sum = std::string(app::to_string(f.protocol));
  sum += f.mode == workload::FleetConfig::Mode::kClosed ? " closed" : " open";
  sum += " clients=" + std::to_string(f.clients);
  sum += " fpc=" + std::to_string(f.flows_per_client);
  sum += " wifi=" + fmt(w.wifi.down_mbps) + "/" + fmt(w.wifi.up_mbps) +
         "Mbps loss=" + fmt(w.wifi.loss);
  sum += " cell=" + fmt(w.cell.down_mbps) + "Mbps";
  if (w.wifi_onoff) sum += " onoff";
  if (w.interferers > 0) {
    sum += " interferers=" + std::to_string(w.interferers);
  }
  if (w.mobility) sum += " mobility";
  for (const LinkOutage& o : sc.outages) {
    sum += std::string(" outage[") + to_string(o.path) + "," +
           to_string(o.dir) + "]@" + fmt(o.at_s) + "s+" + fmt(o.duration_s) +
           "s";
  }
  if (sc.differential) sum += " differential";
  sc.summary = sum;
  return sc;
}

RunOutcome run_protocol(const FuzzScenario& sc, app::Protocol protocol,
                        sim::Fidelity fidelity) {
  workload::FleetConfig cfg = sc.fleet;
  cfg.protocol = protocol;
  cfg.scenario.trace = true;
  cfg.scenario.fidelity = fidelity;

  workload::ClientFleet fleet(cfg);
  // Declared after the fleet so the oracle detaches (destructor) before
  // the fleet's world — and its simulation — is torn down.
  Oracle oracle;
  fleet.start(sc.seed);
  app::World& w = fleet.world();
  oracle.attach(w.sim);

  for (const LinkOutage& o : sc.outages) {
    net::Link* down = o.path == LinkOutage::Path::kWifi
                          ? w.wifi_acc_down.get()
                          : w.cell_acc_down.get();
    net::Link* up = o.path == LinkOutage::Path::kWifi ? w.wifi_acc_up.get()
                                                      : w.cell_acc_up.get();
    const double restore = o.path == LinkOutage::Path::kWifi
                               ? cfg.scenario.wifi.loss
                               : cfg.scenario.cell.loss;
    const bool hit_down = o.dir != LinkOutage::Dir::kUp;
    const bool hit_up = o.dir != LinkOutage::Dir::kDown;
    w.sim.at(sim::from_seconds(o.at_s), [down, up, hit_down, hit_up] {
      if (hit_down) down->set_loss_prob(1.0);
      if (hit_up) up->set_loss_prob(1.0);
    });
    w.sim.at(sim::from_seconds(o.at_s + o.duration_s),
             [down, up, hit_down, hit_up, restore] {
               if (hit_down) down->set_loss_prob(restore);
               if (hit_up) up->set_loss_prob(0.0);
             });
  }

  const std::size_t budget = cfg.total_flows();
  app::advance_until(
      w,
      [&] {
        if (cfg.mode == workload::FleetConfig::Mode::kOpen) {
          return fleet.arrivals_done() &&
                 fleet.flows_completed() >= fleet.flows_started();
        }
        return budget != 0 && fleet.flows_completed() >= budget;
      },
      cfg.scenario.max_sim_time);
  workload::FleetMetrics m = fleet.finish();
  const app::RunMetrics& rm = m.run;

  // World-level teardown invariants (the oracle only sees per-event facts;
  // conservation across the whole run is checked here).
  oracle.expect(rm.energy_j >= 0.0 && rm.wifi_j >= 0.0 && rm.cell_j >= 0.0,
                "energy.non_negative",
                "total=" + fmt(rm.energy_j) + " wifi=" + fmt(rm.wifi_j) +
                    " cell=" + fmt(rm.cell_j));
  oracle.expect(rm.energy_j + 1e-6 >= rm.wifi_j + rm.cell_j,
                "energy.total_covers_interfaces",
                "total=" + fmt(rm.energy_j) + " < wifi+cell=" +
                    fmt(rm.wifi_j + rm.cell_j));
  bool monotone = true;
  double prev = -1.0;
  for (const stats::Point& p : rm.energy_series) {
    if (p.v + 1e-9 < prev) {
      monotone = false;
      break;
    }
    prev = p.v;
  }
  oracle.expect(monotone, "energy.monotone",
                "cumulative energy series decreased");
  oracle.expect(m.flows_completed <= m.flows_started,
                "fleet.completed_le_started",
                std::to_string(m.flows_completed) + " > " +
                    std::to_string(m.flows_started));
  for (const workload::FlowRecord& r : m.flows) {
    const std::string who = "flow " + std::to_string(r.id);
    if (r.completed) {
      oracle.expect(r.delivered == r.bytes, "flow.byte_conservation",
                    who + " delivered " + std::to_string(r.delivered) +
                        " of " + std::to_string(r.bytes));
      oracle.expect(r.end_s >= r.start_s, "flow.time_order",
                    who + " ends before it starts");
    } else {
      oracle.expect(r.delivered <= r.bytes, "flow.over_delivery",
                    who + " delivered " + std::to_string(r.delivered) +
                        " of " + std::to_string(r.bytes));
    }
    oracle.expect(r.energy_j_est >= 0.0, "flow.energy_non_negative",
                  who + " energy " + fmt(r.energy_j_est));
  }

  // Quiescence + pool-leak checks need every timer chain to die out, which
  // only holds for static scenarios and protocols without standing
  // controllers (eMPTCP path control / WiFi-First probing / MDP timers).
  const bool dynamic = cfg.scenario.wifi_onoff ||
                       cfg.scenario.interferers > 0 ||
                       cfg.scenario.mobility || !sc.outages.empty();
  const bool plain = protocol == app::Protocol::kTcpWifi ||
                     protocol == app::Protocol::kTcpLte ||
                     protocol == app::Protocol::kMptcp;
  if (!dynamic && plain && rm.completed) {
    // Drain the whole queue. Finite stragglers are legal (a FIN_WAIT
    // socket retries its FIN on a backed-off RTO for minutes before
    // giving up), but the queue must terminate: a periodic timer nobody
    // cancelled at teardown re-schedules forever and trips the event
    // limit instead of draining.
    try {
      w.sim.scheduler().set_event_limit(1'000'000);
      w.sim.scheduler().run();
      oracle.expect(true, "sim.quiescent", "");
    } catch (const std::exception& e) {
      oracle.expect(false, "sim.quiescent",
                    std::string("post-teardown drain never terminates: ") +
                        e.what());
    }
    const net::PacketPool& pool = w.sim.context<net::PacketPool>();
    oracle.expect(pool.idle() == pool.allocated(), "pool.leak_free",
                  std::to_string(pool.allocated() - pool.idle()) +
                      " packets never returned");
  }

  RunOutcome out;
  out.digest = analysis::fnv1a64(
      stats::trace_to_jsonl(rm.trace_events, rm.trace_metrics));
  out.flows_started = m.flows_started;
  out.flows_completed = m.flows_completed;
  out.all_completed = rm.completed;
  out.energy_j = rm.energy_j;
  out.checks = oracle.checks_run();
  out.violations = oracle.violations();
  if (!oracle.ok()) out.flight_tail = w.sim.trace().flight().dump();
  out.flows = m.flows;
  return out;
}

SeedResult run_seed(std::uint64_t seed, bool fidelity_diff) {
  const FuzzScenario sc = generate_scenario(seed);
  SeedResult r;
  r.seed = seed;
  r.summary = sc.summary;

  RunOutcome primary = run_protocol(sc, sc.fleet.protocol);
  r.checks = primary.checks;
  r.violations = primary.violations;
  r.flight_tail = primary.flight_tail;
  r.digest = primary.digest;

  if (fidelity_diff) {
    // Hybrid re-run of the identical scenario: every oracle invariant must
    // hold at reduced fidelity too, and where the workload is
    // rng-independent (sc.differential scenarios: closed loop, scheduled
    // sizes) the per-flow results must match the packet run within the
    // DESIGN.md §13 tolerance contract. Dynamics-heavy scenarios still run
    // — their flows just rarely go fluid — so the corpus also exercises
    // the transient-demotion paths.
    RunOutcome hybrid =
        run_protocol(sc, sc.fleet.protocol, sim::Fidelity::kHybrid);
    r.checks += hybrid.checks;
    for (Violation v : hybrid.violations) {
      v.detail = "[hybrid] " + v.detail;
      r.violations.push_back(std::move(v));
    }
    if (r.flight_tail.empty()) r.flight_tail = hybrid.flight_tail;
    r.digest = combine_digest(r.digest, hybrid.digest);

    auto expect = [&r](bool ok, const char* invariant, std::string detail) {
      ++r.checks;
      if (!ok) r.violations.push_back({0.0, invariant, std::move(detail)});
    };
    if (sc.differential) {
      expect(primary.flows_started == hybrid.flows_started,
             "fidelity.same_flow_count",
             "packet started " + std::to_string(primary.flows_started) +
                 ", hybrid " + std::to_string(hybrid.flows_started));
      const std::size_t n =
          std::min(primary.flows.size(), hybrid.flows.size());
      for (std::size_t i = 0; i < n; ++i) {
        const workload::FlowRecord& pf = primary.flows[i];
        const workload::FlowRecord& hf = hybrid.flows[i];
        const std::string who = "flow " + std::to_string(i);
        expect(pf.bytes == hf.bytes, "fidelity.same_workload",
               who + " sized " + std::to_string(pf.bytes) + " vs " +
                   std::to_string(hf.bytes));
        expect(pf.completed == hf.completed, "fidelity.same_completion",
               who + (pf.completed ? " completed in packet only"
                                   : " completed in hybrid only"));
        if (!pf.completed || !hf.completed) continue;
        expect(pf.delivered == hf.delivered, "fidelity.bytes_exact",
               who + " delivered " + std::to_string(hf.delivered) +
                   " hybrid vs " + std::to_string(pf.delivered) + " packet");
        // FCT tolerance: 25% relative + 250 ms absolute (§13).
        expect(std::abs(hf.fct_s() - pf.fct_s()) <=
                   0.25 * pf.fct_s() + 0.25,
               "fidelity.fct_within_tolerance",
               who + " fct " + fmt(hf.fct_s()) + " s hybrid vs " +
                   fmt(pf.fct_s()) + " s packet");
        // Per-flow energy share: 30% relative + 0.3 J absolute (§13; the
        // overlap-weighted attribution amplifies small timing shifts).
        expect(std::abs(hf.energy_j_est - pf.energy_j_est) <=
                   0.30 * pf.energy_j_est + 0.3,
               "fidelity.flow_energy_within_tolerance",
               who + " energy " + fmt(hf.energy_j_est) + " J hybrid vs " +
                   fmt(pf.energy_j_est) + " J packet");
      }
      // Run-level device energy: 25% relative + 0.5 J absolute (§13).
      expect(std::abs(hybrid.energy_j - primary.energy_j) <=
                 0.25 * primary.energy_j + 0.5,
             "fidelity.energy_within_tolerance",
             "hybrid " + fmt(hybrid.energy_j) + " J vs packet " +
                 fmt(primary.energy_j) + " J");
    }
  }

  if (!sc.differential) return r;

  RunOutcome base = run_protocol(sc, app::Protocol::kMptcp);
  r.checks += base.checks;
  for (Violation v : base.violations) {
    v.detail = "[mptcp baseline] " + v.detail;
    r.violations.push_back(std::move(v));
  }
  if (r.flight_tail.empty()) r.flight_tail = base.flight_tail;
  r.digest = combine_digest(r.digest, base.digest);

  auto expect = [&r](bool ok, const char* invariant, std::string detail) {
    ++r.checks;
    if (!ok) r.violations.push_back({0.0, invariant, std::move(detail)});
  };

  // Same scheduled workload => both protocols must serve the same flows
  // and, where both completed, deliver byte-identical application streams.
  expect(primary.flows_started == base.flows_started, "diff.same_flow_count",
         "emptcp started " + std::to_string(primary.flows_started) +
             ", mptcp " + std::to_string(base.flows_started));
  const std::size_t n =
      std::min(primary.flows.size(), base.flows.size());
  for (std::size_t i = 0; i < n; ++i) {
    const workload::FlowRecord& pf = primary.flows[i];
    const workload::FlowRecord& bf = base.flows[i];
    const std::string who = "flow " + std::to_string(i);
    expect(pf.bytes == bf.bytes, "diff.same_workload",
           who + " sized " + std::to_string(pf.bytes) + " vs " +
               std::to_string(bf.bytes));
    if (pf.completed && bf.completed) {
      expect(pf.delivered == bf.delivered && pf.delivered == pf.bytes,
             "diff.identical_byte_stream",
             who + " delivered " + std::to_string(pf.delivered) + " vs " +
                 std::to_string(bf.delivered) + " (size " +
                 std::to_string(pf.bytes) + ")");
    }
  }

  // Energy differential: eMPTCP should not burn meaningfully more energy
  // than plain MPTCP on the same workload. Only judged on clean static
  // fully-completed runs — loss, outages and dynamics make the comparison
  // legitimately noisy.
  const app::ScenarioConfig& scfg = sc.fleet.scenario;
  const bool clean = sc.outages.empty() && !scfg.wifi_onoff &&
                     scfg.interferers == 0 && !scfg.mobility &&
                     scfg.wifi.loss == 0.0 && scfg.cell.loss == 0.0;
  if (clean && primary.all_completed && base.all_completed) {
    expect(primary.energy_j <= base.energy_j * 1.4 + 1.5,
           "diff.energy_within_tolerance",
           "emptcp " + fmt(primary.energy_j) + " J vs mptcp " +
               fmt(base.energy_j) + " J");
  }
  return r;
}

FuzzBatchResult run_batch(const FuzzBatchConfig& cfg) {
  const std::vector<std::uint64_t> seeds =
      runtime::seed_range(cfg.base_seed, cfg.seeds);
  struct Unit {};
  auto run = [fd = cfg.fidelity_diff](const Unit&, std::uint64_t seed) {
    return run_seed(seed, fd);
  };

  FuzzBatchResult out;
  out.results = runtime::run_replications(Unit{}, seeds, run, cfg.workers);

  const std::size_t recheck = std::min(cfg.recheck, seeds.size());
  if (recheck > 0) {
    const std::vector<std::uint64_t> again(seeds.begin(),
                                           seeds.begin() + recheck);
    auto second = runtime::run_replications(Unit{}, again, run, cfg.workers);
    for (std::size_t i = 0; i < recheck; ++i) {
      if (second[i].digest == out.results[i].digest) continue;
      ++out.recheck_mismatches;
      out.results[i].violations.push_back(
          {0.0, "determinism.recheck_mismatch",
           "seed " + std::to_string(seeds[i]) + " digest " +
               std::to_string(out.results[i].digest) + " vs " +
               std::to_string(second[i].digest) + " on re-run"});
    }
  }

  analysis::Fnv1a64Stream stream;
  for (const SeedResult& r : out.results) {
    stream.update(std::to_string(r.seed) + ":" + std::to_string(r.digest) +
                  "\n");
    out.total_checks += r.checks;
    if (!r.ok()) ++out.violating_seeds;
  }
  out.batch_digest = stream.value();
  return out;
}

std::string format_repro(const FuzzScenario& sc, Mutation mutation,
                         const SeedResult& r, bool fidelity_diff) {
  std::string s;
  s += kReproSchema;
  s += "\n";
  s += "seed = " + std::to_string(sc.seed) + "\n";
  s += std::string("mutation = ") + to_string(mutation) + "\n";
  if (fidelity_diff) s += "fidelity-diff = true\n";
  s += "# scenario: " + sc.summary + "\n";
  s += "# checks run: " + std::to_string(r.checks) +
       ", violations: " + std::to_string(r.violations.size()) + "\n";
  std::size_t shown = 0;
  for (const Violation& v : r.violations) {
    if (shown++ == 16) {
      s += "# ... (" + std::to_string(r.violations.size() - 16) +
           " more)\n";
      break;
    }
    s += "# t=" + fmt(v.t_s) + " " + v.invariant + ": " + v.detail + "\n";
  }
  if (!r.flight_tail.empty()) {
    s += "# flight recorder tail:\n";
    std::size_t pos = 0;
    while (pos < r.flight_tail.size()) {
      std::size_t nl = r.flight_tail.find('\n', pos);
      if (nl == std::string::npos) nl = r.flight_tail.size();
      s += "#   " + r.flight_tail.substr(pos, nl - pos) + "\n";
      pos = nl + 1;
    }
  }
  s += "# replay: emptcp-fuzz --replay <this file>\n";
  return s;
}

bool parse_repro(const std::string& text, ReproHeader& out,
                 std::string& err) {
  bool schema_seen = false;
  bool seed_seen = false;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') {
      if (nl == text.size()) break;
      continue;
    }
    if (!schema_seen) {
      if (line != kReproSchema) {
        err = "unknown repro schema \"" + line + "\" (want " + kReproSchema +
              ")";
        return false;
      }
      schema_seen = true;
    } else if (line.rfind("seed = ", 0) == 0) {
      const std::string v = line.substr(7);
      char* end = nullptr;
      out.seed = std::strtoull(v.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || v.empty()) {
        err = "bad seed value \"" + v + "\"";
        return false;
      }
      seed_seen = true;
    } else if (line.rfind("mutation = ", 0) == 0) {
      const std::string v = line.substr(11);
      if (!mutation_from_string(v, out.mutation)) {
        err = "unknown mutation \"" + v + "\"";
        return false;
      }
    } else if (line == "fidelity-diff = true") {
      out.fidelity_diff = true;
    }
    if (nl == text.size()) break;
  }
  if (!schema_seen) {
    err = "empty repro file";
    return false;
  }
  if (!seed_seen) {
    err = "repro file has no seed line";
    return false;
  }
  return true;
}

}  // namespace emptcp::check
