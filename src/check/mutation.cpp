#include "check/mutation.hpp"

#include <atomic>

namespace emptcp::check {

namespace {
std::atomic<Mutation> g_mutation{Mutation::kNone};
}  // namespace

Mutation active_mutation() {
  return g_mutation.load(std::memory_order_relaxed);
}

void set_mutation(Mutation m) {
  g_mutation.store(m, std::memory_order_relaxed);
}

const char* to_string(Mutation m) {
  switch (m) {
    case Mutation::kNone: return "none";
    case Mutation::kReassemblyDupDeliver: return "reassembly-dup-deliver";
    case Mutation::kSchedulerIgnoreBackup: return "scheduler-ignore-backup";
    case Mutation::kMacroQuiescenceBlind: return "macro-quiescence-blind";
  }
  return "?";
}

bool mutation_from_string(std::string_view name, Mutation& out) {
  if (name == "none") {
    out = Mutation::kNone;
  } else if (name == "reassembly-dup-deliver") {
    out = Mutation::kReassemblyDupDeliver;
  } else if (name == "scheduler-ignore-backup") {
    out = Mutation::kSchedulerIgnoreBackup;
  } else if (name == "macro-quiescence-blind") {
    out = Mutation::kMacroQuiescenceBlind;
  } else {
    return false;
  }
  return true;
}

}  // namespace emptcp::check
