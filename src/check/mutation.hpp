// Deliberate-fault injection for mutation-testing the oracle.
//
// A mutation flips one known-correct line of protocol logic at runtime so
// the fuzz harness can prove the invariant oracle actually detects the
// class of bug it claims to (ISSUE acceptance: an injected reassembly bug
// must be caught with a replayable repro). The selector is process-global —
// mutated runs are executed with a single worker; see emptcp-fuzz.
#pragma once

#include <string_view>

namespace emptcp::check {

enum class Mutation {
  kNone,
  /// IntervalReassembly::insert reports stale duplicates (segments entirely
  /// below the cumulative point) as freshly delivered bytes, breaking
  /// exactly-once delivery the way a missing sequence comparison would.
  kReassemblyDupDeliver,
  /// SubflowScheduler::eligible stops suppressing backup subflows, so
  /// fresh data is striped onto MP_PRIO-backup paths while regular ones
  /// are usable — the bug eMPTCP's single-path mode depends on not having.
  kSchedulerIgnoreBackup,
  /// TcpSocket::can_macro_step ignores the loss/recovery terms (dupacks,
  /// SACK holes, marked losses, fast recovery), declaring a flow quiescent
  /// while a transient is pending — the class of bug the macro-step
  /// property tests must catch before the fast path freezes a retransmit.
  kMacroQuiescenceBlind,
};

[[nodiscard]] Mutation active_mutation();
void set_mutation(Mutation m);

[[nodiscard]] const char* to_string(Mutation m);
/// Parses a mutation name ("none", "reassembly-dup-deliver",
/// "scheduler-ignore-backup"); returns false on unknown names.
bool mutation_from_string(std::string_view name, Mutation& out);

/// Scoped install/restore, for tests.
class ScopedMutation {
 public:
  explicit ScopedMutation(Mutation m) : prev_(active_mutation()) {
    set_mutation(m);
  }
  ~ScopedMutation() { set_mutation(prev_); }
  ScopedMutation(const ScopedMutation&) = delete;
  ScopedMutation& operator=(const ScopedMutation&) = delete;

 private:
  Mutation prev_;
};

}  // namespace emptcp::check
