// Run manifests: the machine-readable record of *how* a run was produced.
//
// Every traced bench/scenario run writes a `<name>.manifest.json` next to
// its JSONL trace: the grouping key, protocol, seed, workload, scenario
// parameters, build flags and a digest of the serialized trace. A
// manifest plus its trace is a self-describing, integrity-checkable
// artifact — `emptcp-report` consumes directories of them and can tell a
// stale trace from a matching one by digest alone.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "analysis/json.hpp"

namespace emptcp::app {
struct ScenarioConfig;
}  // namespace emptcp::app

namespace emptcp::analysis {

inline constexpr const char* kManifestSchema = "emptcp-run-manifest-v1";

struct RunManifest {
  std::string group;     ///< aggregation key, e.g. "fig08" or "fig10-n2"
  std::string protocol;  ///< app::to_string(Protocol)
  std::uint64_t seed = 0;
  std::string workload;  ///< free-form, e.g. "download-268435456B"
  std::string trace_file;  ///< JSONL file name, relative to the manifest
  std::uint64_t trace_events = 0;
  std::string trace_digest;  ///< "fnv1a64:<16 hex digits>" of the JSONL text
  /// Scenario/build parameters as (dotted key, JSON literal) pairs, in
  /// emission order. Values are raw JSON scalars ("12.5", "true",
  /// "\"LTE\"") so the writer is trivially deterministic.
  std::vector<std::pair<std::string, std::string>> params;
};

/// FNV-1a 64-bit — tiny, dependency-free, deterministic across platforms;
/// collision resistance is irrelevant here (integrity, not security).
std::uint64_t fnv1a64(std::string_view text);
std::string fnv1a64_hex(std::string_view text);

/// Incremental form for digesting large traces chunk-by-chunk without
/// holding the bytes. Feeding a string in any chunking yields the same
/// value as fnv1a64 over the whole string.
class Fnv1a64Stream {
 public:
  void update(std::string_view chunk);
  [[nodiscard]] std::uint64_t value() const { return h_; }
  [[nodiscard]] std::string hex() const;  ///< "fnv1a64:<16 hex digits>"

 private:
  std::uint64_t h_ = 0xCBF29CE484222325ULL;
};

/// The scenario parameters worth recording: path rates/RTTs/losses,
/// dynamics, device, protocol knobs. Keys are dotted ("wifi.down_mbps").
std::vector<std::pair<std::string, std::string>> describe_scenario(
    const app::ScenarioConfig& cfg);

/// Build-flag parameters (trace compiled, NDEBUG, compiler id).
std::vector<std::pair<std::string, std::string>> describe_build();

/// Deterministic JSON rendering (field order fixed, shortest-roundtrip
/// numbers).
std::string manifest_to_json(const RunManifest& m);

/// Reconstructs a manifest from a parsed JSON document. Returns false if
/// the schema marker is missing/unknown.
bool manifest_from_json(const FlatJson& doc, RunManifest& out);

}  // namespace emptcp::analysis
