// Artifact loading shared by emptcp-report and emptcp-campaign.
//
// Streams JSONL traces through RollupBuilder chunk-by-chunk (digest and
// per-line fold in one pass, O(chunk + one line) memory regardless of
// trace size) and scans artifact directories for `*.manifest.json`,
// producing the AnalyzedRun vector render_report consumes. Scan order is
// sorted for determinism.
#pragma once

#include <string>
#include <vector>

#include "analysis/report.hpp"

namespace emptcp::analysis {

/// Streams one JSONL trace file through `builder`, computing the FNV-1a
/// digest of the raw bytes on the way. False on IO/parse errors (`err`
/// explains, including the offending line number).
bool stream_trace_file(const std::string& path, RollupBuilder& builder,
                       std::string& digest_hex, std::string& err);

/// Loads every `*.manifest.json` under `dirs` (non-recursive) plus the
/// trace next to each manifest into AnalyzedRuns, sorted by manifest path.
/// False on the first unreadable/unparsable artifact; `err` names the file
/// and the reason. An empty result is not an error.
bool load_analyzed_runs(const std::vector<std::string>& dirs,
                        std::vector<AnalyzedRun>& out, std::string& err);

}  // namespace emptcp::analysis
