#include "analysis/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace emptcp::analysis {

LogHistogram::LogHistogram(Config cfg) : cfg_(cfg) {
  if (!(cfg_.min > 0.0) || !(cfg_.max > cfg_.min) || !(cfg_.growth > 1.0)) {
    throw std::invalid_argument(
        "LogHistogram: need 0 < min < max and growth > 1");
  }
  log_growth_ = std::log(cfg_.growth);
  const double span = std::log(cfg_.max / cfg_.min) / log_growth_;
  // +1 so the last regular bucket's upper edge reaches max; under/overflow
  // are tracked as separate counters, not buckets.
  counts_.assign(static_cast<std::size_t>(std::ceil(span)) + 1, 0);
}

std::size_t LogHistogram::bucket_index(double v) const {
  const double idx = std::log(v / cfg_.min) / log_growth_;
  return std::min(static_cast<std::size_t>(idx), counts_.size() - 1);
}

double LogHistogram::bucket_lower(std::size_t idx) const {
  return cfg_.min * std::exp(log_growth_ * static_cast<double>(idx));
}

void LogHistogram::add(double v, std::uint64_t n) {
  if (n == 0) return;
  // Non-finite samples would poison sum/min/max and every quantile after
  // them; a NaN in a trace is a producer bug, not a data point.
  if (!std::isfinite(v)) return;
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  count_ += n;
  sum_ += v * static_cast<double>(n);
  if (!(v >= cfg_.min)) {  // also catches NaN
    underflow_ += n;
    return;
  }
  if (v >= cfg_.max) {
    overflow_ += n;
    return;
  }
  counts_[bucket_index(v)] += n;
}

void LogHistogram::merge(const LogHistogram& other) {
  if (cfg_.min != other.cfg_.min || cfg_.max != other.cfg_.max ||
      cfg_.growth != other.cfg_.growth) {
    throw std::invalid_argument("LogHistogram::merge: config mismatch");
  }
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
}

double LogHistogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;

  // Rank of the target sample (1-based, midpoint-free: same convention as
  // a step CDF). Walk the cumulative counts: underflow first, then the
  // buckets, then overflow.
  const double target = q * static_cast<double>(count_);
  double cum = static_cast<double>(underflow_);
  // Underflow region: every underflowed value is < cfg.min, and min_ is
  // the smallest of them — the best available point estimate.
  if (target <= cum) return min_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (target <= next && counts_[i] != 0) {
      // Geometric interpolation inside the bucket, clamped to the exact
      // observed extremes so q near 0/1 cannot leave the sample range.
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      const double lo = bucket_lower(i);
      const double v = lo * std::exp(log_growth_ * frac);
      return std::clamp(v, min_, max_);
    }
    cum = next;
  }
  return max_;  // target lands in overflow
}

std::vector<LogHistogram::CdfPoint> LogHistogram::cdf() const {
  std::vector<CdfPoint> out;
  if (count_ == 0) return out;
  const double total = static_cast<double>(count_);
  std::uint64_t cum = underflow_;
  if (underflow_ != 0) {
    out.push_back({cfg_.min, static_cast<double>(cum) / total});
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    cum += counts_[i];
    out.push_back({bucket_lower(i + 1), static_cast<double>(cum) / total});
  }
  if (overflow_ != 0) {
    cum += overflow_;
    out.push_back({max_, static_cast<double>(cum) / total});
  }
  return out;
}

}  // namespace emptcp::analysis
