// Perf artifacts: the wall-clock/telemetry side channel, kept strictly
// apart from the deterministic report pipeline.
//
// A PerfDoc captures one run's engine telemetry (epoch histograms,
// per-place utilization, per-party barrier accounting) plus the process
// span aggregate, serialized as `<label>.perf.json` under EMPTCP_PERF_DIR
// — never into a campaign/bench artifact directory, whose contents are
// byte-compared by the determinism gates. `emptcp-report perf` renders
// these files as the per-shard utilization and top-span tables;
// validate_chrome_trace() checks the companion `*.trace.json` Chrome
// trace-event export (what Perfetto loads) structurally.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/json.hpp"
#include "runtime/telemetry.hpp"

namespace emptcp::sim {
struct ShardEnginePerf;
}  // namespace emptcp::sim

namespace emptcp::analysis {

/// Summary of one runtime::LogBuckets histogram — what perf.json stores
/// (full bucket arrays would be noise at this resolution).
struct PerfDist {
  std::uint64_t count = 0;
  double mean = 0.0;
  std::uint64_t p50 = 0;
  std::uint64_t p90 = 0;
  std::uint64_t p99 = 0;
  std::uint64_t max = 0;
};

PerfDist summarize(const runtime::LogBuckets& h);

struct PerfDoc {
  std::string label;

  // Engine epoch telemetry (deterministic aggregates).
  std::uint64_t epochs = 0;
  std::uint64_t busy_epochs = 0;
  std::uint64_t cross_messages = 0;
  double min_lookahead_ns = 0.0;
  /// Mean virtual advance per epoch over the lookahead window. >= 1 by
  /// construction; values well above 1 mean idle stretches were skipped
  /// in single epochs (good), values pinned at 1 mean every window was
  /// dense.
  double lookahead_utilization = 0.0;
  PerfDist events_per_epoch;
  PerfDist advance_ns_per_epoch;
  PerfDist cross_per_epoch;
  PerfDist imbalance_pct;

  struct Place {
    std::string name;
    std::uint64_t events = 0;
    std::uint64_t busy_epochs = 0;
    std::uint64_t cross_tx = 0;  ///< packets posted outbound (0 if none)
    double work_s = 0.0;         ///< wall; 0 unless telemetry was on
  };
  std::vector<Place> places;

  struct Party {
    double busy_s = 0.0;
    double wait_s = 0.0;
  };
  std::vector<Party> parties;

  struct Span {
    std::string name;
    std::uint64_t count = 0;
    double total_s = 0.0;
    double max_ms = 0.0;
  };
  std::vector<Span> spans;
  std::uint64_t spans_dropped = 0;
};

/// Engine telemetry -> doc (label, cross_tx and spans left for callers).
PerfDoc make_perf_doc(const sim::ShardEnginePerf& perf);

/// Copies the process-wide span aggregate from runtime::Telemetry into
/// `doc` (top `max_spans` by total time). Call at a quiescent point.
void fill_spans(PerfDoc& doc, std::size_t max_spans = 32);

[[nodiscard]] std::string perf_doc_to_json(const PerfDoc& doc);

/// Parses a perf.json previously written by perf_doc_to_json. Returns
/// false (with `err` set) on schema mismatch.
bool perf_doc_from_flat(const FlatJson& flat, PerfDoc& doc,
                        std::string* err = nullptr);

/// Renders the `emptcp-report perf` tables over one or more docs:
/// per-place (shard) utilization, per-party barrier summary, epoch
/// distributions and the top-N span table. Deterministic given the docs.
[[nodiscard]] std::string render_perf_report(const std::vector<PerfDoc>& docs,
                                             std::size_t top_spans = 10);

/// Structural validation of a Chrome trace-event JSON document: a
/// {"traceEvents": [...]} object whose entries carry a known phase
/// ("X" complete events with ts/dur/name/pid/tid, "C" counters with a
/// numeric args value, "M" metadata). On success reports the number of
/// trace events through `events`.
bool validate_chrome_trace(std::string_view text, std::size_t& events,
                           std::string& err);

}  // namespace emptcp::analysis
