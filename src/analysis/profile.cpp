#include "analysis/profile.hpp"

#include "stats/csv.hpp"

namespace emptcp::analysis {

std::string Profiler::to_json(int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  const std::string inner = pad + "  ";
  std::string out = "{";
  bool first = true;
  for (const Component& c : components_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += inner + "\"" + c.name + "\": {";
    out += "\"ops\": " + std::to_string(c.ops);
    out += ", \"seconds\": " + stats::fmt_double(c.seconds);
    out += ", \"ops_per_sec\": " + stats::fmt_double(c.ops_per_sec());
    out += "}";
  }
  out += first ? "}" : "\n" + pad + "}";
  return out;
}

}  // namespace emptcp::analysis
