// Minimal JSON reader for the analysis layer.
//
// Everything this repo serializes — JSONL trace lines, run manifests,
// BENCH_core.json — is scalars inside (possibly nested) objects. This
// parser flattens that shape into ordered (dotted.path, scalar) pairs:
// {"a":{"b":1},"c":"x"} -> [("a.b", 1), ("c", "x")]. Arrays flatten with
// numeric path segments. It is a reader for our own writers, not a
// general-purpose JSON library; anything malformed fails with a position
// so the offending artifact can be inspected.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace emptcp::analysis {

struct JsonScalar {
  enum class Type { kNumber, kString, kBool, kNull };
  Type type = Type::kNull;
  double num = 0.0;
  bool boolean = false;
  std::string str;
};

/// One flattened JSON document, in serialization order.
using FlatJson = std::vector<std::pair<std::string, JsonScalar>>;

/// Parses one JSON value (object/array/scalar). Returns std::nullopt and
/// sets `err` ("offset N: message") on malformed input.
std::optional<FlatJson> parse_json_flat(std::string_view text,
                                        std::string* err = nullptr);

/// First value at `key`, or nullptr.
const JsonScalar* json_find(const FlatJson& doc, std::string_view key);

/// Numeric value at `key` (bools widen to 0/1), or `fallback`.
double json_num(const FlatJson& doc, std::string_view key, double fallback);

/// String value at `key`, or `fallback`.
std::string json_str(const FlatJson& doc, std::string_view key,
                     std::string_view fallback = "");

}  // namespace emptcp::analysis
