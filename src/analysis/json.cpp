#include "analysis/json.hpp"

#include <cstdlib>
#include <cstring>

namespace emptcp::analysis {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool parse(FlatJson& out, std::string& err) {
    skip_ws();
    if (!value("", out, err)) return false;
    skip_ws();
    if (pos_ != text_.size()) {
      err = fail("trailing characters after JSON value");
      return false;
    }
    return true;
  }

 private:
  [[nodiscard]] std::string fail(const char* msg) const {
    return "offset " + std::to_string(pos_) + ": " + msg;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  bool literal(const char* word) {
    const std::size_t n = std::strlen(word);
    if (text_.substr(pos_, n) != word) return false;
    pos_ += n;
    return true;
  }

  static std::string join(const std::string& prefix, const std::string& key) {
    return prefix.empty() ? key : prefix + "." + key;
  }

  bool value(const std::string& path, FlatJson& out, std::string& err) {
    if (eof()) {
      err = fail("unexpected end of input");
      return false;
    }
    const char c = peek();
    if (c == '{') return object(path, out, err);
    if (c == '[') return array(path, out, err);
    if (c == '"') {
      JsonScalar s;
      s.type = JsonScalar::Type::kString;
      if (!string_token(s.str, err)) return false;
      out.emplace_back(path, std::move(s));
      return true;
    }
    if (literal("true")) {
      JsonScalar s;
      s.type = JsonScalar::Type::kBool;
      s.boolean = true;
      s.num = 1.0;
      out.emplace_back(path, std::move(s));
      return true;
    }
    if (literal("false")) {
      JsonScalar s;
      s.type = JsonScalar::Type::kBool;
      out.emplace_back(path, std::move(s));
      return true;
    }
    if (literal("null")) {
      out.emplace_back(path, JsonScalar{});
      return true;
    }
    return number(path, out, err);
  }

  bool number(const std::string& path, FlatJson& out, std::string& err) {
    const char* start = text_.data() + pos_;
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    if (end == start) {
      err = fail("expected a JSON value");
      return false;
    }
    // strtod over-accepts (hex, inf); both never appear in our writers and
    // are harmless to admit here.
    pos_ += static_cast<std::size_t>(end - start);
    JsonScalar s;
    s.type = JsonScalar::Type::kNumber;
    s.num = v;
    out.emplace_back(path, std::move(s));
    return true;
  }

  bool string_token(std::string& out, std::string& err) {
    ++pos_;  // opening quote
    while (!eof()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (eof()) break;
        const char esc = text_[pos_];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 >= text_.size()) {
              err = fail("truncated \\u escape");
              return false;
            }
            unsigned code = 0;
            for (int i = 1; i <= 4; ++i) {
              const char h = text_[pos_ + static_cast<std::size_t>(i)];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                err = fail("bad \\u escape");
                return false;
              }
            }
            pos_ += 4;
            // Our writers only emit \u00xx (control bytes); encode the
            // code point as UTF-8 for completeness.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            err = fail("unknown escape");
            return false;
        }
        ++pos_;
        continue;
      }
      out += c;
      ++pos_;
    }
    err = fail("unterminated string");
    return false;
  }

  bool object(const std::string& path, FlatJson& out, std::string& err) {
    ++pos_;  // '{'
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (eof() || peek() != '"') {
        err = fail("expected object key");
        return false;
      }
      std::string key;
      if (!string_token(key, err)) return false;
      skip_ws();
      if (eof() || peek() != ':') {
        err = fail("expected ':' after key");
        return false;
      }
      ++pos_;
      skip_ws();
      if (!value(join(path, key), out, err)) return false;
      skip_ws();
      if (eof()) {
        err = fail("unterminated object");
        return false;
      }
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      err = fail("expected ',' or '}' in object");
      return false;
    }
  }

  bool array(const std::string& path, FlatJson& out, std::string& err) {
    ++pos_;  // '['
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return true;
    }
    std::size_t index = 0;
    for (;;) {
      skip_ws();
      if (!value(join(path, std::to_string(index)), out, err)) return false;
      ++index;
      skip_ws();
      if (eof()) {
        err = fail("unterminated array");
        return false;
      }
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      err = fail("expected ',' or ']' in array");
      return false;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<FlatJson> parse_json_flat(std::string_view text,
                                        std::string* err) {
  FlatJson out;
  std::string local_err;
  Parser p(text);
  if (!p.parse(out, local_err)) {
    if (err != nullptr) *err = local_err;
    return std::nullopt;
  }
  return out;
}

const JsonScalar* json_find(const FlatJson& doc, std::string_view key) {
  for (const auto& [k, v] : doc) {
    if (k == key) return &v;
  }
  return nullptr;
}

double json_num(const FlatJson& doc, std::string_view key, double fallback) {
  const JsonScalar* s = json_find(doc, key);
  if (s == nullptr) return fallback;
  if (s->type == JsonScalar::Type::kNumber) return s->num;
  if (s->type == JsonScalar::Type::kBool) return s->boolean ? 1.0 : 0.0;
  return fallback;
}

std::string json_str(const FlatJson& doc, std::string_view key,
                     std::string_view fallback) {
  const JsonScalar* s = json_find(doc, key);
  if (s != nullptr && s->type == JsonScalar::Type::kString) return s->str;
  return std::string(fallback);
}

}  // namespace emptcp::analysis
