// Report rendering and baseline diffing for `emptcp-report`.
//
// Two consumers share this layer: the CLI tool (tools/emptcp_report.cpp)
// and the golden-output tests. Everything rendered here is deterministic
// by construction — runs are sorted by (group, protocol, seed), numbers go
// through stats::fmt_double / Table::num, and no wall-clock or locale
// state is consulted — so a report over the same artifacts is
// byte-identical across runs, machines and EMPTCP_JOBS settings.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "analysis/json.hpp"
#include "analysis/manifest.hpp"
#include "analysis/rollup.hpp"

namespace emptcp::analysis {

/// One run as loaded from disk (or from in-memory artifacts in tests).
struct LoadedRun {
  RunManifest manifest;
  TraceData trace;
  bool digest_ok = true;    ///< trace bytes matched manifest.trace_digest
  std::string source;       ///< manifest path (or test label), for messages
};

/// One run reduced to its report inputs. This is the streaming-friendly
/// form: `emptcp-report` builds it line-by-line via RollupBuilder without
/// ever materializing the trace, so report memory is independent of trace
/// size.
struct AnalyzedRun {
  RunRollup rollup;
  /// 10 s mean-power windows over the run's energy_sample stream.
  std::vector<WindowedAggregator::Window> power_windows;
  bool digest_ok = true;
  std::string source;
};

/// Reduces a materialized run (tests, small traces).
AnalyzedRun analyze_run(const LoadedRun& run);

/// Renders the full paper-style report: per-run rollups, per-group
/// mean±SEM aggregates, an energy-per-bit table (Tab. 2 style),
/// histogram-backed quantiles and CDFs, and a digest-integrity section.
std::string render_report(std::vector<AnalyzedRun> runs);
std::string render_report(const std::vector<LoadedRun>& runs);

// ---------------------------------------------------------------------------
// Baseline diffing (the CI gate).

struct ToleranceRule {
  /// Glob over the flattened metric path: '*' matches any run of
  /// characters, anything else is literal. First matching rule wins.
  std::string pattern;
  enum class Mode {
    kIgnore,     ///< never a violation (counts, wall-clock totals)
    kExact,      ///< values/strings must match exactly (schema markers)
    kMaxAbs,     ///< lower-is-better: fail if current > baseline + tol
    kMaxFactor,  ///< lower-is-better: fail if current > baseline * tol
    kMinFactor,  ///< higher-is-better: fail if current < baseline / tol
    kFloor,      ///< absolute requirement: fail if current < tol,
                 ///< regardless of the baseline value
    kNear,       ///< symmetric band: fail if |current - baseline| >
                 ///< tol * |baseline| + tol_abs (the fidelity contract)
  };
  Mode mode = Mode::kIgnore;
  double tol = 0.0;
  double tol_abs = 0.0;  ///< kNear only: absolute term of the band
};

/// The default rules for BENCH_core.json-shaped baselines: allocation
/// counts are exact-ish (abs 0.01), throughput/latency rates get a
/// generous 5x factor (CI machines vary), raw counts and wall-clock
/// seconds are ignored.
std::vector<ToleranceRule> default_bench_tolerances();

/// Parses "pattern=mode:value" (mode in ignore|exact|abs|factor|min|floor|
/// near; near takes "near:REL,ABS") into a rule; returns false on
/// malformed input.
bool parse_tolerance(std::string_view spec, ToleranceRule& out);

/// '*'-glob used by rule matching; exposed for tests.
bool glob_match(std::string_view pattern, std::string_view text);

struct DiffResult {
  struct Row {
    std::string key;
    std::string baseline;  ///< rendered value ("-" when absent)
    std::string current;
    std::string verdict;   ///< "ok" | "ignored" | "new" | "FAIL ..." | ...
    bool violation = false;
  };
  std::vector<Row> rows;
  int violations = 0;

  [[nodiscard]] std::string render() const;
};

/// Compares two flattened JSON documents under the rule list. Keys present
/// in the baseline but missing from the current document violate unless
/// their rule is kIgnore; keys only in the current document are reported
/// as "new" but never violate.
DiffResult diff_metrics(const FlatJson& baseline, const FlatJson& current,
                        const std::vector<ToleranceRule>& rules);

/// Serializes the runs' rollups as one flat JSON document suitable for
/// diff_metrics / `emptcp-report --diff`: per-run headline fields plus one
/// `<run>.flow<N>.{bytes,fct_s,energy_j}` triple per completed flow. Runs
/// are keyed `<group>-<protocol>-<workload>-s<seed>` ('/' in the workload
/// sanitized to '-') and sorted, so two campaigns over the same spec
/// produce positionally comparable documents and tolerance globs can
/// target a workload slice (e.g. `*-c4-*`). This is what the
/// hybrid-fidelity gate diffs between packet and hybrid runs.
std::string rollup_flat_json(const std::vector<AnalyzedRun>& runs);

}  // namespace emptcp::analysis
