#include "analysis/windowed.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace emptcp::analysis {

WindowedAggregator::WindowedAggregator(double interval_s)
    : interval_s_(interval_s) {
  if (!(interval_s > 0.0)) {
    throw std::invalid_argument("WindowedAggregator: interval must be > 0");
  }
}

std::int64_t WindowedAggregator::window_index(double t_s) const {
  return static_cast<std::int64_t>(std::floor(t_s / interval_s_));
}

void WindowedAggregator::add(double t_s, double v) {
  const std::int64_t idx = window_index(t_s);
  if (!has_base_) {
    has_base_ = true;
    base_index_ = idx;
    windows_.push_back(Window{static_cast<double>(idx) * interval_s_, 0,
                              0.0, 0.0, 0.0});
  } else if (idx < base_index_) {
    // Prepend empty windows; rare (trace streams are time-ordered).
    const std::size_t grow = static_cast<std::size_t>(base_index_ - idx);
    std::vector<Window> fresh(grow);
    for (std::size_t i = 0; i < grow; ++i) {
      fresh[i].start_s =
          static_cast<double>(idx + static_cast<std::int64_t>(i)) *
          interval_s_;
    }
    windows_.insert(windows_.begin(), fresh.begin(), fresh.end());
    base_index_ = idx;
  }
  const std::size_t slot = static_cast<std::size_t>(idx - base_index_);
  while (windows_.size() <= slot) {
    windows_.push_back(
        Window{static_cast<double>(base_index_ + static_cast<std::int64_t>(
                                                     windows_.size())) *
                   interval_s_,
               0, 0.0, 0.0, 0.0});
  }
  Window& w = windows_[slot];
  if (w.count == 0) {
    w.min = v;
    w.max = v;
  } else {
    w.min = std::min(w.min, v);
    w.max = std::max(w.max, v);
  }
  ++w.count;
  w.sum += v;
  ++count_;
}

}  // namespace emptcp::analysis
