// Per-connection/run rollups computed from serialized traces.
//
// The rollup consumes the PR-2 JSONL trace stream (events + metric
// snapshot) and reduces it to the aggregate view the paper reports:
// energy-per-bit, per-subflow byte shares, suspend/resume counts,
// retransmission ratios, mode switches. It deliberately works on the
// *serialized* form — the same bytes `emptcp-report` reads from disk —
// so in-process tests and the offline CLI exercise one code path, and a
// trace plus manifest is sufficient to reproduce every reported number
// without re-running the simulation.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "analysis/histogram.hpp"
#include "analysis/json.hpp"
#include "analysis/manifest.hpp"
#include "analysis/windowed.hpp"

namespace emptcp::analysis {

/// A parsed JSONL trace: one FlatJson per event line, plus the metric
/// snapshot lines ({"metric": name, "value": v}) in registration order.
struct TraceData {
  std::vector<FlatJson> events;
  std::vector<std::pair<std::string, double>> metrics;

  [[nodiscard]] double metric(std::string_view name, double fallback) const;
};

/// Parses JSONL trace text. Malformed lines abort with false and `err`.
bool parse_trace_jsonl(std::string_view text, TraceData& out,
                       std::string* err = nullptr);

/// The per-run aggregate view.
struct RunRollup {
  // Identity (copied from the manifest).
  std::string group;
  std::string protocol;
  std::string workload;  ///< free-form, e.g. "fleet/closed/c4"
  std::uint64_t seed = 0;

  // Headline numbers (from the run.* gauges the scenario records into the
  // trace's metric snapshot).
  bool completed = false;
  double time_s = 0.0;
  double energy_j = 0.0;
  double wifi_j = 0.0;
  double cell_j = 0.0;
  std::uint64_t bytes = 0;

  /// Independent cross-check: trapezoid-free integration of the per-window
  /// energy_sample events (power * window). Should track energy_j closely;
  /// a large gap means the trace is stale or truncated.
  double integrated_energy_j = 0.0;

  // Scheduler / subflow activity.
  std::uint64_t sched_picks = 0;
  std::vector<std::pair<std::string, std::uint64_t>> sched_bytes_by_iface;
  std::uint64_t suspends = 0;       ///< MP_PRIO backup=true transitions
  std::uint64_t resumes = 0;        ///< MP_PRIO backup=false transitions
  std::uint64_t mode_changes = 0;   ///< eMPTCP path-usage decisions
  std::uint64_t radio_transitions = 0;
  std::uint64_t warnings = 0;
  std::uint64_t events = 0;         ///< total trace events

  // TCP loss-recovery counters (from the metric snapshot).
  std::uint64_t retransmits = 0;
  std::uint64_t rtos = 0;
  std::uint64_t fast_recoveries = 0;
  std::uint64_t reinjections = 0;

  // Per-flow workload view (fleet runs; zero/empty for single-flow runs).
  std::uint64_t flows_started = 0;
  std::uint64_t flows_completed = 0;
  LogHistogram flow_fct_s;    ///< completed-flow completion time (seconds)
  LogHistogram flow_epb_uj;   ///< completed-flow energy per bit (µJ/bit)

  /// One completed flow, verbatim from its flow_complete trace event.
  /// Retained in completion order; O(flows) memory, which the workloads
  /// that feed reports keep comfortably bounded. The fidelity gate diffs
  /// these field-by-field between packet and hybrid runs.
  struct FlowRollup {
    std::uint64_t flow = 0;
    double bytes = 0.0;
    double fct_s = 0.0;
    double energy_j = 0.0;
  };
  std::vector<FlowRollup> flows;

  [[nodiscard]] double energy_per_bit_uj() const {
    return bytes == 0 ? 0.0
                      : energy_j * 1e6 / (static_cast<double>(bytes) * 8.0);
  }
  /// Retransmitted segments per megabyte received.
  [[nodiscard]] double retx_per_mb() const {
    return bytes == 0 ? 0.0
                      : static_cast<double>(retransmits) /
                            (static_cast<double>(bytes) / 1e6);
  }
  /// Fraction of scheduler-assigned bytes that went to `iface`.
  [[nodiscard]] double iface_share(std::string_view iface) const;
};

RunRollup rollup_run(const RunManifest& manifest, const TraceData& trace);

/// Streaming rollup: fold one parsed trace line at a time, never retaining
/// events. This is what `emptcp-report` runs over multi-hundred-MB traces
/// — memory stays O(interfaces + covered-time/window), independent of
/// event count. `rollup_run` above is a convenience wrapper over this for
/// already-materialized TraceData.
class RollupBuilder {
 public:
  explicit RollupBuilder(const RunManifest& manifest);

  /// Folds one parsed JSONL line — event or metric line, auto-detected.
  void add_line(const FlatJson& doc);
  void add_event(const FlatJson& event);
  void add_metric(const std::string& name, double value);

  /// The finished rollup (metric-derived fields resolved on each call).
  [[nodiscard]] RunRollup finish() const;

  /// 10 s mean-power windows over every energy_sample seen — the report's
  /// power-timeline view, built in the same single pass.
  [[nodiscard]] const WindowedAggregator& power() const { return power_; }

 private:
  RunRollup r_;  ///< event-derived counters accumulate here
  std::vector<std::pair<std::string, double>> metrics_;
  /// Per-interface integrator state. Sharded fleets emit one co-timed
  /// sample per cell per window under the same interface name, so each
  /// sample integrates over the current timestep (cached in `step` for
  /// the co-timed followers) rather than the gap to the previous event.
  struct SampleStep {
    double t = 0.0;     ///< latest distinct sample time seen
    double step = 0.0;  ///< width of the window ending at `t`
  };
  std::vector<std::pair<std::string, SampleStep>> prev_sample_t_;
  WindowedAggregator power_{10.0};
};

}  // namespace emptcp::analysis
