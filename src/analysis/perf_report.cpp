#include "analysis/perf_report.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "sim/shard_engine.hpp"
#include "stats/csv.hpp"

namespace emptcp::analysis {

namespace {

std::string fmt(double v) { return stats::fmt_double(v); }

void appendf(std::string& out, const char* f, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, f);
  std::vsnprintf(buf, sizeof(buf), f, ap);
  va_end(ap);
  out += buf;
}

std::string dist_json(const PerfDist& d) {
  std::string out = "{";
  out += "\"count\": " + std::to_string(d.count);
  out += ", \"mean\": " + fmt(d.mean);
  out += ", \"p50\": " + std::to_string(d.p50);
  out += ", \"p90\": " + std::to_string(d.p90);
  out += ", \"p99\": " + std::to_string(d.p99);
  out += ", \"max\": " + std::to_string(d.max);
  out += "}";
  return out;
}

PerfDist dist_from_flat(const FlatJson& flat, const std::string& prefix) {
  PerfDist d;
  d.count = static_cast<std::uint64_t>(json_num(flat, prefix + ".count", 0));
  d.mean = json_num(flat, prefix + ".mean", 0);
  d.p50 = static_cast<std::uint64_t>(json_num(flat, prefix + ".p50", 0));
  d.p90 = static_cast<std::uint64_t>(json_num(flat, prefix + ".p90", 0));
  d.p99 = static_cast<std::uint64_t>(json_num(flat, prefix + ".p99", 0));
  d.max = static_cast<std::uint64_t>(json_num(flat, prefix + ".max", 0));
  return d;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

PerfDist summarize(const runtime::LogBuckets& h) {
  PerfDist d;
  d.count = h.count();
  d.mean = h.mean();
  d.p50 = h.quantile_upper(0.50);
  d.p90 = h.quantile_upper(0.90);
  d.p99 = h.quantile_upper(0.99);
  d.max = h.max();
  return d;
}

PerfDoc make_perf_doc(const sim::ShardEnginePerf& perf) {
  PerfDoc doc;
  doc.epochs = perf.epochs;
  doc.busy_epochs = perf.busy_epochs;
  doc.cross_messages = perf.cross_messages;
  doc.min_lookahead_ns = static_cast<double>(perf.min_lookahead);
  doc.events_per_epoch = summarize(perf.events_per_epoch);
  doc.advance_ns_per_epoch = summarize(perf.advance_ns_per_epoch);
  doc.cross_per_epoch = summarize(perf.cross_per_epoch);
  doc.imbalance_pct = summarize(perf.imbalance_pct);
  if (doc.min_lookahead_ns > 0.0) {
    doc.lookahead_utilization =
        doc.advance_ns_per_epoch.mean / doc.min_lookahead_ns;
  }
  doc.places.reserve(perf.places.size());
  for (const sim::ShardEnginePerf::Place& p : perf.places) {
    PerfDoc::Place out;
    out.name = p.name;
    out.events = p.events;
    out.busy_epochs = p.busy_epochs;
    out.work_s = p.work_s;
    doc.places.push_back(std::move(out));
  }
  doc.parties.reserve(perf.parties.size());
  for (const sim::ShardEnginePerf::Party& p : perf.parties) {
    doc.parties.push_back(PerfDoc::Party{p.busy_s, p.wait_s});
  }
  return doc;
}

void fill_spans(PerfDoc& doc, std::size_t max_spans) {
  runtime::Telemetry& t = runtime::Telemetry::instance();
  doc.spans.clear();
  for (const runtime::Telemetry::SpanTotal& s : t.aggregate()) {
    if (doc.spans.size() >= max_spans) break;
    PerfDoc::Span out;
    out.name = s.name;
    out.count = s.count;
    out.total_s = static_cast<double>(s.total_ns) / 1e9;
    out.max_ms = static_cast<double>(s.max_ns) / 1e6;
    doc.spans.push_back(std::move(out));
  }
  doc.spans_dropped = t.spans_dropped();
}

std::string perf_doc_to_json(const PerfDoc& doc) {
  std::string out = "{\n";
  out += "  \"schema\": \"emptcp-perf-v1\",\n";
  out += "  \"label\": \"" + json_escape(doc.label) + "\",\n";
  out += "  \"engine\": {";
  out += "\"epochs\": " + std::to_string(doc.epochs);
  out += ", \"busy_epochs\": " + std::to_string(doc.busy_epochs);
  out += ", \"cross_messages\": " + std::to_string(doc.cross_messages);
  out += ", \"min_lookahead_ns\": " + fmt(doc.min_lookahead_ns);
  out += ", \"lookahead_utilization\": " + fmt(doc.lookahead_utilization);
  out += "},\n";
  out += "  \"events_per_epoch\": " + dist_json(doc.events_per_epoch) + ",\n";
  out += "  \"advance_ns_per_epoch\": " + dist_json(doc.advance_ns_per_epoch) +
         ",\n";
  out += "  \"cross_per_epoch\": " + dist_json(doc.cross_per_epoch) + ",\n";
  out += "  \"imbalance_pct\": " + dist_json(doc.imbalance_pct) + ",\n";
  out += "  \"places\": [";
  for (std::size_t i = 0; i < doc.places.size(); ++i) {
    const PerfDoc::Place& p = doc.places[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": \"" + json_escape(p.name) + "\"";
    out += ", \"events\": " + std::to_string(p.events);
    out += ", \"busy_epochs\": " + std::to_string(p.busy_epochs);
    out += ", \"cross_tx\": " + std::to_string(p.cross_tx);
    out += ", \"work_s\": " + fmt(p.work_s);
    out += "}";
  }
  out += doc.places.empty() ? "],\n" : "\n  ],\n";
  out += "  \"parties\": [";
  for (std::size_t i = 0; i < doc.parties.size(); ++i) {
    const PerfDoc::Party& p = doc.parties[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"busy_s\": " + fmt(p.busy_s) +
           ", \"wait_s\": " + fmt(p.wait_s) + "}";
  }
  out += doc.parties.empty() ? "],\n" : "\n  ],\n";
  out += "  \"spans\": [";
  for (std::size_t i = 0; i < doc.spans.size(); ++i) {
    const PerfDoc::Span& s = doc.spans[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": \"" + json_escape(s.name) + "\"";
    out += ", \"count\": " + std::to_string(s.count);
    out += ", \"total_s\": " + fmt(s.total_s);
    out += ", \"max_ms\": " + fmt(s.max_ms);
    out += "}";
  }
  out += doc.spans.empty() ? "],\n" : "\n  ],\n";
  out += "  \"spans_dropped\": " + std::to_string(doc.spans_dropped) + "\n";
  out += "}\n";
  return out;
}

bool perf_doc_from_flat(const FlatJson& flat, PerfDoc& doc,
                        std::string* err) {
  if (json_str(flat, "schema") != "emptcp-perf-v1") {
    if (err != nullptr) *err = "not an emptcp-perf-v1 document";
    return false;
  }
  doc = PerfDoc();
  doc.label = json_str(flat, "label", "?");
  doc.epochs =
      static_cast<std::uint64_t>(json_num(flat, "engine.epochs", 0));
  doc.busy_epochs =
      static_cast<std::uint64_t>(json_num(flat, "engine.busy_epochs", 0));
  doc.cross_messages =
      static_cast<std::uint64_t>(json_num(flat, "engine.cross_messages", 0));
  doc.min_lookahead_ns = json_num(flat, "engine.min_lookahead_ns", 0);
  doc.lookahead_utilization =
      json_num(flat, "engine.lookahead_utilization", 0);
  doc.events_per_epoch = dist_from_flat(flat, "events_per_epoch");
  doc.advance_ns_per_epoch = dist_from_flat(flat, "advance_ns_per_epoch");
  doc.cross_per_epoch = dist_from_flat(flat, "cross_per_epoch");
  doc.imbalance_pct = dist_from_flat(flat, "imbalance_pct");
  for (std::size_t i = 0;; ++i) {
    const std::string prefix = "places." + std::to_string(i) + ".";
    const JsonScalar* name = json_find(flat, prefix + "name");
    if (name == nullptr) break;
    PerfDoc::Place p;
    p.name = name->str;
    p.events =
        static_cast<std::uint64_t>(json_num(flat, prefix + "events", 0));
    p.busy_epochs =
        static_cast<std::uint64_t>(json_num(flat, prefix + "busy_epochs", 0));
    p.cross_tx =
        static_cast<std::uint64_t>(json_num(flat, prefix + "cross_tx", 0));
    p.work_s = json_num(flat, prefix + "work_s", 0);
    doc.places.push_back(std::move(p));
  }
  for (std::size_t i = 0;; ++i) {
    const std::string prefix = "parties." + std::to_string(i) + ".";
    const JsonScalar* busy = json_find(flat, prefix + "busy_s");
    if (busy == nullptr) break;
    PerfDoc::Party p;
    p.busy_s = busy->num;
    p.wait_s = json_num(flat, prefix + "wait_s", 0);
    doc.parties.push_back(p);
  }
  for (std::size_t i = 0;; ++i) {
    const std::string prefix = "spans." + std::to_string(i) + ".";
    const JsonScalar* name = json_find(flat, prefix + "name");
    if (name == nullptr) break;
    PerfDoc::Span s;
    s.name = name->str;
    s.count = static_cast<std::uint64_t>(json_num(flat, prefix + "count", 0));
    s.total_s = json_num(flat, prefix + "total_s", 0);
    s.max_ms = json_num(flat, prefix + "max_ms", 0);
    doc.spans.push_back(std::move(s));
  }
  doc.spans_dropped =
      static_cast<std::uint64_t>(json_num(flat, "spans_dropped", 0));
  return true;
}

std::string render_perf_report(const std::vector<PerfDoc>& docs,
                               std::size_t top_spans) {
  std::string out;
  for (const PerfDoc& doc : docs) {
    appendf(out, "== perf: %s ==\n", doc.label.c_str());
    appendf(out,
            "engine: %llu epochs (%llu busy), %llu cross messages, "
            "lookahead %.3f ms, utilization %.2f\n",
            static_cast<unsigned long long>(doc.epochs),
            static_cast<unsigned long long>(doc.busy_epochs),
            static_cast<unsigned long long>(doc.cross_messages),
            doc.min_lookahead_ns / 1e6, doc.lookahead_utilization);
    auto dist_row = [&](const char* name, const PerfDist& d) {
      appendf(out,
              "  %-18s mean %10.1f  p50<=%-10llu p90<=%-10llu "
              "p99<=%-10llu max %llu\n",
              name, d.mean, static_cast<unsigned long long>(d.p50),
              static_cast<unsigned long long>(d.p90),
              static_cast<unsigned long long>(d.p99),
              static_cast<unsigned long long>(d.max));
    };
    out += "epoch distributions (log-bucket upper bounds):\n";
    dist_row("events/epoch", doc.events_per_epoch);
    dist_row("advance ns/epoch", doc.advance_ns_per_epoch);
    dist_row("cross msgs/epoch", doc.cross_per_epoch);
    dist_row("imbalance pct", doc.imbalance_pct);

    if (!doc.places.empty()) {
      double total_work = 0.0;
      std::uint64_t total_events = 0;
      for (const PerfDoc::Place& p : doc.places) {
        total_work += p.work_s;
        total_events += p.events;
      }
      out += "per-place utilization:\n";
      out +=
          "  place            events   share%   busy_ep     work_s   work%"
          "   cross_tx\n";
      for (const PerfDoc::Place& p : doc.places) {
        const double share =
            total_events == 0
                ? 0.0
                : 100.0 * static_cast<double>(p.events) /
                      static_cast<double>(total_events);
        const double workpct =
            total_work <= 0.0 ? 0.0 : 100.0 * p.work_s / total_work;
        appendf(out, "  %-14s %9llu %8.2f %9llu %10.4f %7.2f %10llu\n",
                p.name.c_str(), static_cast<unsigned long long>(p.events),
                share, static_cast<unsigned long long>(p.busy_epochs),
                p.work_s, workpct,
                static_cast<unsigned long long>(p.cross_tx));
      }
    }

    if (!doc.parties.empty()) {
      out += "parties (shard workers):\n";
      out += "  party     busy_s     wait_s    busy%\n";
      for (std::size_t i = 0; i < doc.parties.size(); ++i) {
        const PerfDoc::Party& p = doc.parties[i];
        const double total = p.busy_s + p.wait_s;
        appendf(out, "  %5zu %10.4f %10.4f %8.2f\n", i, p.busy_s, p.wait_s,
                total <= 0.0 ? 0.0 : 100.0 * p.busy_s / total);
      }
    }

    if (!doc.spans.empty()) {
      appendf(out, "top spans (by total time, max %zu):\n", top_spans);
      out += "  name                        count    total_s    mean_us"
             "     max_ms\n";
      std::size_t shown = 0;
      for (const PerfDoc::Span& s : doc.spans) {
        if (shown++ >= top_spans) break;
        const double mean_us =
            s.count == 0 ? 0.0
                         : s.total_s * 1e6 / static_cast<double>(s.count);
        appendf(out, "  %-26s %6llu %10.4f %10.2f %10.3f\n", s.name.c_str(),
                static_cast<unsigned long long>(s.count), s.total_s, mean_us,
                s.max_ms);
      }
    }
    appendf(out, "spans dropped: %llu\n\n",
            static_cast<unsigned long long>(doc.spans_dropped));
  }
  return out;
}

bool validate_chrome_trace(std::string_view text, std::size_t& events,
                           std::string& err) {
  events = 0;
  std::string parse_err;
  const auto flat = parse_json_flat(text, &parse_err);
  if (!flat) {
    err = "chrome trace: " + parse_err;
    return false;
  }
  // Single pass over the flattened pairs: entries of one array element are
  // contiguous (serialization order), so a tiny per-event state machine
  // validates each record as its fields stream by.
  constexpr std::string_view kPrefix = "traceEvents.";
  long current = -1;
  std::string ph;
  bool has_ts = false, has_dur = false, has_name = false, has_pid = false,
       has_tid = false, has_value = false;
  auto finish_event = [&]() -> bool {
    if (current < 0) return true;
    ++events;
    if (ph == "X") {
      if (!(has_ts && has_dur && has_name && has_pid && has_tid)) {
        err = "chrome trace: event " + std::to_string(current) +
              ": X record missing ts/dur/name/pid/tid";
        return false;
      }
    } else if (ph == "C") {
      if (!(has_ts && has_name && has_value)) {
        err = "chrome trace: event " + std::to_string(current) +
              ": C record missing ts/name/args value";
        return false;
      }
    } else if (ph == "M") {
      if (!has_name) {
        err = "chrome trace: event " + std::to_string(current) +
              ": M record missing name";
        return false;
      }
    } else {
      err = "chrome trace: event " + std::to_string(current) +
            ": unknown phase \"" + ph + "\"";
      return false;
    }
    return true;
  };
  for (const auto& [path, scalar] : *flat) {
    if (path.size() <= kPrefix.size() ||
        path.compare(0, kPrefix.size(), kPrefix) != 0) {
      continue;
    }
    const std::size_t dot = path.find('.', kPrefix.size());
    if (dot == std::string::npos) continue;
    const long index = std::strtol(path.c_str() + kPrefix.size(), nullptr, 10);
    const std::string_view field = std::string_view(path).substr(dot + 1);
    if (index != current) {
      if (!finish_event()) return false;
      current = index;
      ph.clear();
      has_ts = has_dur = has_name = has_pid = has_tid = has_value = false;
    }
    if (field == "ph" && scalar.type == JsonScalar::Type::kString) {
      ph = scalar.str;
    } else if (field == "ts") {
      has_ts = scalar.type == JsonScalar::Type::kNumber;
    } else if (field == "dur") {
      has_dur = scalar.type == JsonScalar::Type::kNumber;
    } else if (field == "name") {
      has_name = scalar.type == JsonScalar::Type::kString;
    } else if (field == "pid") {
      has_pid = scalar.type == JsonScalar::Type::kNumber;
    } else if (field == "tid") {
      has_tid = scalar.type == JsonScalar::Type::kNumber;
    } else if (field == "args.value" || field == "args.name") {
      has_value = true;
    }
  }
  if (!finish_event()) return false;
  if (events == 0) {
    err = "chrome trace: no traceEvents";
    return false;
  }
  return true;
}

}  // namespace emptcp::analysis
