// Windowed time-series aggregation: fixed-interval rollups of a streaming
// (t, value) sequence — count / mean / min / max / rate per window —
// without retaining the samples. This is how the analysis layer turns
// per-event trace streams (cwnd updates, power samples, channel rates)
// into the per-interval series the paper's time-series figures plot,
// with memory proportional to the covered time span, not the event count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace emptcp::analysis {

class WindowedAggregator {
 public:
  struct Window {
    double start_s = 0.0;  ///< window covers [start_s, start_s + interval)
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;

    [[nodiscard]] double mean() const {
      return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
  };

  /// `interval_s` is the window width in seconds (> 0).
  explicit WindowedAggregator(double interval_s);

  /// Folds one sample into its window. Times may arrive in any order;
  /// windows are laid out densely from the earliest time seen.
  void add(double t_s, double v);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double interval_s() const { return interval_s_; }

  /// All windows from the earliest to the latest sample, in time order;
  /// gaps appear as zero-count windows. Empty if nothing was added.
  [[nodiscard]] const std::vector<Window>& windows() const {
    return windows_;
  }

  /// Events per second landing in `w` — the "rate" view (e.g. trace
  /// events/s, retransmits/s).
  [[nodiscard]] double rate(const Window& w) const {
    return static_cast<double>(w.count) / interval_s_;
  }

 private:
  [[nodiscard]] std::int64_t window_index(double t_s) const;

  double interval_s_;
  std::uint64_t count_ = 0;
  bool has_base_ = false;
  std::int64_t base_index_ = 0;  ///< window index of windows_[0]
  std::vector<Window> windows_;
};

}  // namespace emptcp::analysis
