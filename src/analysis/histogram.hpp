// Log-bucketed fixed-memory histogram.
//
// The paper's evaluation is distributional — download-time and energy CDFs
// (Figs. 8, 10, 13, 15-17) and quantile whiskers — but exact quantiles
// need every sample retained. This histogram trades a bounded relative
// error for O(buckets) memory independent of sample count: bucket edges
// grow geometrically by `growth` per bucket, so any recorded value is off
// by at most one bucket width, i.e. a relative error <= growth - 1
// (default 2%). Counts are streamed in (`add`), quantiles and CDF points
// are computed on demand; nothing per-sample is ever stored.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace emptcp::analysis {

class LogHistogram {
 public:
  struct Config {
    double min = 1e-9;     ///< lower edge of the first bucket
    double max = 1e12;     ///< values at/above overflow into the last bucket
    double growth = 1.02;  ///< per-bucket geometric growth (> 1)
  };

  LogHistogram() : LogHistogram(Config{}) {}
  explicit LogHistogram(Config cfg);

  /// Records `n` occurrences of value `v`. Values below `min` (including
  /// zero and negatives) land in the underflow bucket, values >= `max` in
  /// the overflow bucket; both still count toward quantiles, pinned to the
  /// range edges. Non-finite values are dropped.
  void add(double v, std::uint64_t n = 1);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  /// Exact extremes and sum (tracked outside the buckets, so min/max/mean
  /// carry no bucketing error).
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

  /// Quantile estimate, q in [0,1]: locates the bucket holding the q-th
  /// sample and interpolates geometrically inside it. Relative error is
  /// bounded by the bucket growth factor. Returns 0 for an empty
  /// histogram; q == 0 / q == 1 return the exact min/max.
  [[nodiscard]] double quantile(double q) const;

  /// Folds another histogram's counts into this one. Both histograms must
  /// share an identical Config (bucket edges align one-to-one); throws
  /// std::invalid_argument otherwise.
  void merge(const LogHistogram& other);

  struct CdfPoint {
    double upper = 0.0;     ///< bucket upper edge
    double fraction = 0.0;  ///< P(X <= upper)
  };
  /// CDF over the non-empty buckets, in ascending order — the export the
  /// paper-style CDF figures plot. O(buckets) regardless of sample count.
  [[nodiscard]] std::vector<CdfPoint> cdf() const;

  /// Number of allocated buckets (fixed at construction). The histogram's
  /// only growth-proportional storage — memory is O(bucket_count()).
  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }

  [[nodiscard]] const Config& config() const { return cfg_; }

 private:
  [[nodiscard]] std::size_t bucket_index(double v) const;
  [[nodiscard]] double bucket_lower(std::size_t idx) const;

  Config cfg_;
  double log_growth_ = 0.0;  ///< precomputed std::log(cfg.growth)
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

}  // namespace emptcp::analysis
