#include "analysis/report_io.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace emptcp::analysis {
namespace {

namespace fs = std::filesystem;

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

}  // namespace

bool stream_trace_file(const std::string& path, RollupBuilder& builder,
                       std::string& digest_hex, std::string& err) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    err = "cannot open";
    return false;
  }
  Fnv1a64Stream digest;
  std::string chunk(1 << 20, '\0');
  std::string carry;  // partial line from the previous chunk
  std::size_t line_no = 0;
  auto fold_line = [&](std::string_view line) {
    ++line_no;
    if (line.empty()) return true;
    std::string perr;
    const auto doc = parse_json_flat(line, &perr);
    if (!doc) {
      err = "line " + std::to_string(line_no) + ": " + perr;
      return false;
    }
    builder.add_line(*doc);
    return true;
  };
  while (in) {
    in.read(chunk.data(), static_cast<std::streamsize>(chunk.size()));
    const std::size_t got = static_cast<std::size_t>(in.gcount());
    if (got == 0) break;
    const std::string_view data(chunk.data(), got);
    digest.update(data);
    std::size_t pos = 0;
    for (;;) {
      const std::size_t nl = data.find('\n', pos);
      if (nl == std::string_view::npos) {
        carry.append(data.substr(pos));
        break;
      }
      if (carry.empty()) {
        if (!fold_line(data.substr(pos, nl - pos))) return false;
      } else {
        carry.append(data.substr(pos, nl - pos));
        if (!fold_line(carry)) return false;
        carry.clear();
      }
      pos = nl + 1;
    }
  }
  if (!carry.empty() && !fold_line(carry)) return false;
  digest_hex = digest.hex();
  return true;
}

bool load_analyzed_runs(const std::vector<std::string>& dirs,
                        std::vector<AnalyzedRun>& out, std::string& err) {
  std::vector<std::string> manifest_paths;
  for (const std::string& dir : dirs) {
    std::error_code ec;
    fs::directory_iterator it(dir, ec);
    if (ec) {
      err = "cannot read " + dir + ": " + ec.message();
      return false;
    }
    for (const fs::directory_entry& e : it) {
      const std::string name = e.path().filename().string();
      if (name.size() > 14 &&
          name.compare(name.size() - 14, 14, ".manifest.json") == 0) {
        manifest_paths.push_back(e.path().string());
      }
    }
  }
  // Directory iteration order is unspecified; sort for determinism.
  std::sort(manifest_paths.begin(), manifest_paths.end());

  for (const std::string& path : manifest_paths) {
    std::string text;
    if (!read_file(path, text)) {
      err = "cannot read " + path;
      return false;
    }
    std::string perr;
    const auto doc = parse_json_flat(text, &perr);
    if (!doc) {
      err = path + ": " + perr;
      return false;
    }
    RunManifest manifest;
    if (!manifest_from_json(*doc, manifest)) {
      err = path + ": not a run manifest";
      return false;
    }
    const std::string trace_path =
        (fs::path(path).parent_path() / manifest.trace_file).string();
    RollupBuilder builder(manifest);
    std::string digest_hex;
    if (!stream_trace_file(trace_path, builder, digest_hex, perr)) {
      err = trace_path + ": " + perr;
      return false;
    }
    AnalyzedRun run;
    run.rollup = builder.finish();
    run.power_windows = builder.power().windows();
    run.digest_ok = digest_hex == manifest.trace_digest;
    run.source = path;
    out.push_back(std::move(run));
  }
  return true;
}

}  // namespace emptcp::analysis
