// Simulator self-profiling: named op counters and accumulated wall-time
// per component, rendered as a BENCH_core.json section.
//
// This is bench-harness instrumentation, not simulation state: it uses the
// wall clock and therefore must never feed back into simulated behavior or
// any deterministic artifact (traces, manifests, reports). The bench
// binary aggregates per-component timings here and serializes them with
// the other BENCH sections; the CI diff gate then ignores the timing
// fields and gates only on the deterministic ones.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

#include "runtime/telemetry.hpp"

namespace emptcp::analysis {

class Profiler {
 public:
  struct Component {
    std::string name;
    std::uint64_t ops = 0;
    double seconds = 0.0;

    [[nodiscard]] double ops_per_sec() const {
      return seconds > 0.0 ? static_cast<double>(ops) / seconds : 0.0;
    }
  };

  /// Find-or-create; references stay valid for the profiler's lifetime
  /// (deque storage, same idiom as the metrics registry). Lookup is a
  /// hash-map hit — component() sits on instrumentation paths that fire
  /// per measurement loop, where the old linear name scan grew with the
  /// number of registered components.
  Component& component(std::string_view name) {
    const auto it = index_.find(name);
    if (it != index_.end()) return components_[it->second];
    components_.emplace_back();
    components_.back().name = std::string(name);
    // Key views into the deque-owned name: stable for the profiler's
    // lifetime, so no second string allocation per component.
    index_.emplace(std::string_view(components_.back().name),
                   components_.size() - 1);
    return components_.back();
  }

  /// RAII wall-time accumulator: adds elapsed seconds and `ops` to the
  /// component on destruction. Also opens a runtime::ScopedSpan under the
  /// component's name, folding the flat counters into the span layer:
  /// when telemetry is enabled every Profiler::time site appears in the
  /// exported Chrome trace for free (and costs one gate check otherwise).
  class ScopedTimer {
   public:
    explicit ScopedTimer(Component& c, std::uint64_t ops = 1)
        : c_(c),
          ops_(ops),
          span_(c.name.c_str()),
          start_(std::chrono::steady_clock::now()) {}
    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;
    ~ScopedTimer() {
      c_.seconds += std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
      c_.ops += ops_;
    }

    /// For loops where the op count is only known afterwards.
    void set_ops(std::uint64_t ops) { ops_ = ops; }

   private:
    Component& c_;
    std::uint64_t ops_;
    runtime::ScopedSpan span_;  ///< closes after the accumulate above
    std::chrono::steady_clock::time_point start_;
  };

  [[nodiscard]] ScopedTimer time(std::string_view name,
                                 std::uint64_t ops = 1) {
    return ScopedTimer(component(name), ops);
  }

  [[nodiscard]] const std::deque<Component>& components() const {
    return components_;
  }

  /// Renders a JSON object: {"<name>": {"ops": N, "seconds": S,
  /// "ops_per_sec": R}, ...} indented by `indent` spaces, in registration
  /// order.
  [[nodiscard]] std::string to_json(int indent) const;

 private:
  std::deque<Component> components_;
  std::unordered_map<std::string_view, std::size_t> index_;
};

}  // namespace emptcp::analysis
