// Simulator self-profiling: named op counters and accumulated wall-time
// per component, rendered as a BENCH_core.json section.
//
// This is bench-harness instrumentation, not simulation state: it uses the
// wall clock and therefore must never feed back into simulated behavior or
// any deterministic artifact (traces, manifests, reports). The bench
// binary aggregates per-component timings here and serializes them with
// the other BENCH sections; the CI diff gate then ignores the timing
// fields and gates only on the deterministic ones.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>

namespace emptcp::analysis {

class Profiler {
 public:
  struct Component {
    std::string name;
    std::uint64_t ops = 0;
    double seconds = 0.0;

    [[nodiscard]] double ops_per_sec() const {
      return seconds > 0.0 ? static_cast<double>(ops) / seconds : 0.0;
    }
  };

  /// Find-or-create; references stay valid for the profiler's lifetime
  /// (deque storage, same idiom as the metrics registry).
  Component& component(std::string_view name) {
    for (Component& c : components_) {
      if (c.name == name) return c;
    }
    components_.emplace_back();
    components_.back().name = std::string(name);
    return components_.back();
  }

  /// RAII wall-time accumulator: adds elapsed seconds and `ops` to the
  /// component on destruction.
  class ScopedTimer {
   public:
    explicit ScopedTimer(Component& c, std::uint64_t ops = 1)
        : c_(c), ops_(ops), start_(std::chrono::steady_clock::now()) {}
    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;
    ~ScopedTimer() {
      c_.seconds += std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
      c_.ops += ops_;
    }

    /// For loops where the op count is only known afterwards.
    void set_ops(std::uint64_t ops) { ops_ = ops; }

   private:
    Component& c_;
    std::uint64_t ops_;
    std::chrono::steady_clock::time_point start_;
  };

  [[nodiscard]] ScopedTimer time(std::string_view name,
                                 std::uint64_t ops = 1) {
    return ScopedTimer(component(name), ops);
  }

  [[nodiscard]] const std::deque<Component>& components() const {
    return components_;
  }

  /// Renders a JSON object: {"<name>": {"ops": N, "seconds": S,
  /// "ops_per_sec": R}, ...} indented by `indent` spaces, in registration
  /// order.
  [[nodiscard]] std::string to_json(int indent) const;

 private:
  std::deque<Component> components_;
};

}  // namespace emptcp::analysis
