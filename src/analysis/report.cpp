#include "analysis/report.hpp"

#include <algorithm>
#include <cmath>
#include <tuple>

#include "analysis/histogram.hpp"
#include "analysis/windowed.hpp"
#include "stats/csv.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"

namespace emptcp::analysis {
namespace {

using stats::Table;

std::string pct(double fraction) { return Table::num(fraction * 100.0, 1); }

/// One (group, protocol) cell of the aggregate view.
struct GroupStats {
  std::string group;
  std::string protocol;
  std::vector<double> time_s;
  std::vector<double> energy_j;
  std::vector<double> uj_per_bit;
  double bytes = 0.0;
  double wifi_j = 0.0;
  double cell_j = 0.0;
  std::uint64_t flows_started = 0;
  std::uint64_t flows_completed = 0;
  LogHistogram flow_fct_s;
  LogHistogram flow_epb_uj;
};

std::string quantile_row_value(const LogHistogram& h, double q) {
  return h.count() == 0 ? "-" : Table::num(h.quantile(q), 3);
}

}  // namespace

AnalyzedRun analyze_run(const LoadedRun& run) {
  RollupBuilder b(run.manifest);
  for (const FlatJson& e : run.trace.events) b.add_event(e);
  for (const auto& [name, value] : run.trace.metrics) {
    b.add_metric(name, value);
  }
  AnalyzedRun out;
  out.rollup = b.finish();
  out.power_windows = b.power().windows();
  out.digest_ok = run.digest_ok;
  out.source = run.source;
  return out;
}

std::string render_report(const std::vector<LoadedRun>& runs) {
  std::vector<AnalyzedRun> analyzed;
  analyzed.reserve(runs.size());
  for (const LoadedRun& r : runs) analyzed.push_back(analyze_run(r));
  return render_report(std::move(analyzed));
}

std::string render_report(std::vector<AnalyzedRun> runs) {
  std::sort(runs.begin(), runs.end(),
            [](const AnalyzedRun& a, const AnalyzedRun& b) {
              return std::tie(a.rollup.group, a.rollup.protocol,
                              a.rollup.seed) <
                     std::tie(b.rollup.group, b.rollup.protocol,
                              b.rollup.seed);
            });

  std::string out;
  out += "emptcp-report (";
  out += kManifestSchema;
  out += ")\nruns: " + std::to_string(runs.size()) + "\n\n";

  // -- per-run rollups ------------------------------------------------------
  out += "== runs ==\n";
  {
    Table t({"group", "protocol", "seed", "ok", "time_s", "energy_J",
             "uJ/bit", "wifi%", "retx", "susp", "res", "modes", "events"});
    for (const AnalyzedRun& a : runs) {
      const RunRollup& r = a.rollup;
      t.add_row({r.group, r.protocol, std::to_string(r.seed),
                 r.completed ? "y" : "n", Table::num(r.time_s, 3),
                 Table::num(r.energy_j, 3),
                 Table::num(r.energy_per_bit_uj(), 4),
                 pct(r.iface_share("wifi")), std::to_string(r.retransmits),
                 std::to_string(r.suspends), std::to_string(r.resumes),
                 std::to_string(r.mode_changes), std::to_string(r.events)});
    }
    out += t.render();
  }

  // -- per-group aggregates -------------------------------------------------
  std::vector<GroupStats> groups;
  for (const AnalyzedRun& a : runs) {
    const RunRollup& r = a.rollup;
    GroupStats* g = nullptr;
    for (GroupStats& cand : groups) {
      if (cand.group == r.group && cand.protocol == r.protocol) {
        g = &cand;
        break;
      }
    }
    if (g == nullptr) {
      groups.push_back(GroupStats{});
      g = &groups.back();
      g->group = r.group;
      g->protocol = r.protocol;
    }
    g->time_s.push_back(r.time_s);
    g->energy_j.push_back(r.energy_j);
    g->uj_per_bit.push_back(r.energy_per_bit_uj());
    g->bytes += static_cast<double>(r.bytes);
    g->wifi_j += r.wifi_j;
    g->cell_j += r.cell_j;
    g->flows_started += r.flows_started;
    g->flows_completed += r.flows_completed;
    g->flow_fct_s.merge(r.flow_fct_s);
    g->flow_epb_uj.merge(r.flow_epb_uj);
  }

  out += "\n== aggregates (mean +/- SEM over seeds) ==\n";
  {
    Table t({"group", "protocol", "n", "time_s", "sem", "median", "energy_J",
             "sem", "median"});
    for (const GroupStats& g : groups) {
      const stats::SortedSample time_sorted(g.time_s);
      const stats::SortedSample energy_sorted(g.energy_j);
      t.add_row({g.group, g.protocol, std::to_string(g.time_s.size()),
                 Table::num(stats::mean(g.time_s), 3),
                 Table::num(stats::sem(g.time_s), 3),
                 Table::num(time_sorted.quantile(0.5), 3),
                 Table::num(stats::mean(g.energy_j), 3),
                 Table::num(stats::sem(g.energy_j), 3),
                 Table::num(energy_sorted.quantile(0.5), 3)});
    }
    out += t.render();
  }

  // -- energy per bit (the paper's Table 2 shape) ---------------------------
  out += "\n== energy per bit ==\n";
  {
    Table t({"group", "protocol", "MB", "energy_J", "uJ/bit", "wifi_J%",
             "cell_J%"});
    for (const GroupStats& g : groups) {
      const double energy = g.wifi_j + g.cell_j;
      const double bits = g.bytes * 8.0;
      t.add_row({g.group, g.protocol, Table::num(g.bytes / 1e6, 2),
                 Table::num(energy, 3),
                 bits > 0.0 ? Table::num(energy * 1e6 / bits, 4) : "-",
                 energy > 0.0 ? pct(g.wifi_j / energy) : "-",
                 energy > 0.0 ? pct(g.cell_j / energy) : "-"});
    }
    out += t.render();
  }

  // -- histogram-backed quantiles over all runs of each group ---------------
  out += "\n== quantiles (log-bucketed, 2% buckets) ==\n";
  {
    Table t({"metric", "group", "protocol", "n", "p50", "p90", "p95", "p99"});
    for (const GroupStats& g : groups) {
      LogHistogram time_h{};
      LogHistogram energy_h{};
      for (const double v : g.time_s) time_h.add(v);
      for (const double v : g.energy_j) energy_h.add(v);
      t.add_row({"time_s", g.group, g.protocol,
                 std::to_string(time_h.count()),
                 quantile_row_value(time_h, 0.50),
                 quantile_row_value(time_h, 0.90),
                 quantile_row_value(time_h, 0.95),
                 quantile_row_value(time_h, 0.99)});
      t.add_row({"energy_J", g.group, g.protocol,
                 std::to_string(energy_h.count()),
                 quantile_row_value(energy_h, 0.50),
                 quantile_row_value(energy_h, 0.90),
                 quantile_row_value(energy_h, 0.95),
                 quantile_row_value(energy_h, 0.99)});
    }
    out += t.render();
  }

  // -- per-flow distributions (fleet workloads only) ------------------------
  // Rendered only when some run carried flow-level events, so single-flow
  // scenario reports stay byte-identical to their goldens.
  bool any_flows = false;
  for (const GroupStats& g : groups) any_flows |= g.flows_started != 0;
  if (any_flows) {
    out += "\n== flows (per-flow FCT and energy/bit over all seeds) ==\n";
    Table t({"group", "protocol", "started", "done", "fct_p50", "fct_p95",
             "fct_p99", "uJ/bit_p50", "uJ/bit_p95"});
    for (const GroupStats& g : groups) {
      if (g.flows_started == 0) continue;
      t.add_row({g.group, g.protocol, std::to_string(g.flows_started),
                 std::to_string(g.flows_completed),
                 quantile_row_value(g.flow_fct_s, 0.50),
                 quantile_row_value(g.flow_fct_s, 0.95),
                 quantile_row_value(g.flow_fct_s, 0.99),
                 quantile_row_value(g.flow_epb_uj, 0.50),
                 quantile_row_value(g.flow_epb_uj, 0.95)});
    }
    out += t.render();
    out += "\n== cdf: flow_fct_s ==\n";
    for (const GroupStats& g : groups) {
      if (g.flow_fct_s.count() == 0) continue;
      out += g.group + "/" + g.protocol + ":";
      for (const LogHistogram::CdfPoint& p : g.flow_fct_s.cdf()) {
        out += " " + Table::num(p.upper, 3) + ":" + Table::num(p.fraction, 3);
      }
      out += "\n";
    }
  }

  // -- CDF export (download time per group/protocol) ------------------------
  out += "\n== cdf: time_s ==\n";
  for (const GroupStats& g : groups) {
    LogHistogram h{};
    for (const double v : g.time_s) h.add(v);
    out += g.group + "/" + g.protocol + ":";
    for (const LogHistogram::CdfPoint& p : h.cdf()) {
      out += " " + Table::num(p.upper, 3) + ":" + Table::num(p.fraction, 3);
    }
    out += "\n";
  }

  // -- windowed power timeline (first run of each group/protocol) -----------
  out += "\n== power timeline (first seed, 10 s windows, mean mW) ==\n";
  for (const GroupStats& g : groups) {
    const AnalyzedRun* first = nullptr;
    for (const AnalyzedRun& a : runs) {
      if (a.rollup.group == g.group && a.rollup.protocol == g.protocol) {
        first = &a;
        break;
      }
    }
    if (first == nullptr) continue;
    out += g.group + "/" + g.protocol + " seed " +
           std::to_string(first->rollup.seed) + ":";
    // Mean over the per-interface tracker samples inside each window.
    for (const WindowedAggregator::Window& w : first->power_windows) {
      out += " " + Table::num(w.mean(), 1);
    }
    out += "\n";
  }

  // -- energy-accounting cross-check + integrity ----------------------------
  out += "\n== integrity ==\n";
  bool clean = true;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    if (!runs[i].digest_ok) {
      out += "DIGEST MISMATCH: " + runs[i].source + "\n";
      clean = false;
    }
    const RunRollup& r = runs[i].rollup;
    // The trace-integrated energy must agree with the tracker's own total
    // to within one sampling window of max power; flag anything worse.
    if (r.energy_j > 0.0 &&
        std::fabs(r.integrated_energy_j - r.energy_j) > 0.05 * r.energy_j) {
      out += "ENERGY DRIFT: " + runs[i].source + " tracker=" +
             stats::fmt_double(r.energy_j) + " trace=" +
             stats::fmt_double(r.integrated_energy_j) + "\n";
      clean = false;
    }
  }
  if (clean) out += "all digests and energy cross-checks ok\n";
  return out;
}

// ---------------------------------------------------------------------------
// Diffing.

bool glob_match(std::string_view pattern, std::string_view text) {
  // Iterative '*' glob with backtracking to the most recent star.
  std::size_t p = 0;
  std::size_t t = 0;
  std::size_t star = std::string_view::npos;
  std::size_t star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_t = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

std::vector<ToleranceRule> default_bench_tolerances() {
  using Mode = ToleranceRule::Mode;
  return {
      // Schema/version markers must match exactly.
      {"schema", Mode::kExact, 0.0},
      {"*version*", Mode::kExact, 0.0},
      // Per-op allocation counts are deterministic: any increase beyond
      // rounding noise is a real hot-path regression.
      {"*alloc*", Mode::kMaxAbs, 0.01},
      // High-water marks (scheduler slab, packet pool) are deterministic
      // per workload; allow modest growth, catch structural blowups.
      {"*high_water*", Mode::kMaxFactor, 1.5},
      {"*slots*", Mode::kMaxFactor, 1.5},
      // Throughput / latency: CI machines and neighbors vary wildly, so
      // only a ~5x regression in the slower direction fails the gate.
      {"*per_sec*", Mode::kMinFactor, 5.0},
      {"*ns_per*", Mode::kMaxFactor, 5.0},
      // The hybrid fast path's acceptance bar: the macro-stepped fleet
      // must execute at least 3x fewer scheduler events than the packet
      // run over the same virtual window (deterministic on a given
      // build), and the wall-clock ratio — measured within one process on
      // one machine, so robust to CI noise — must show a real speedup.
      // Absolute floors, not baseline-relative: quick and full bench
      // modes sit at very different absolute speedups.
      {"fleet_256_hybrid.event_reduction_vs_packet", Mode::kFloor, 3.0},
      {"fleet_256_hybrid.speedup_vs_packet", Mode::kFloor, 2.0},
      // Parallel-shard speedups depend on the core count of the machine
      // that measured them (a 1-core baseline sits at ~1.0); only a large
      // collapse in the slower direction is a regression signal.
      {"*speedup*", Mode::kMinFactor, 5.0},
      // Everything else (raw counts, wall-clock seconds, metadata) is
      // informational only.
      {"*", Mode::kIgnore, 0.0},
  };
}

bool parse_tolerance(std::string_view spec, ToleranceRule& out) {
  const std::size_t eq = spec.find('=');
  if (eq == std::string_view::npos || eq == 0) return false;
  out.pattern = std::string(spec.substr(0, eq));
  std::string_view rest = spec.substr(eq + 1);
  const std::size_t colon = rest.find(':');
  const std::string_view mode =
      colon == std::string_view::npos ? rest : rest.substr(0, colon);
  using Mode = ToleranceRule::Mode;
  if (mode == "ignore") {
    out.mode = Mode::kIgnore;
  } else if (mode == "exact") {
    out.mode = Mode::kExact;
  } else if (mode == "abs") {
    out.mode = Mode::kMaxAbs;
  } else if (mode == "factor") {
    out.mode = Mode::kMaxFactor;
  } else if (mode == "min") {
    out.mode = Mode::kMinFactor;
  } else if (mode == "floor") {
    out.mode = Mode::kFloor;
  } else if (mode == "near") {
    out.mode = Mode::kNear;
  } else {
    return false;
  }
  out.tol = 0.0;
  out.tol_abs = 0.0;
  if (out.mode == Mode::kNear) {
    // near:REL,ABS — the symmetric |c-b| <= REL*|b| + ABS band.
    if (colon == std::string_view::npos) return false;
    const std::string band(rest.substr(colon + 1));
    const std::size_t comma = band.find(',');
    if (comma == std::string::npos) return false;
    const std::string rel_str = band.substr(0, comma);
    const std::string abs_str = band.substr(comma + 1);
    char* end = nullptr;
    out.tol = std::strtod(rel_str.c_str(), &end);
    if (end == rel_str.c_str() || *end != '\0') return false;
    out.tol_abs = std::strtod(abs_str.c_str(), &end);
    if (end == abs_str.c_str() || *end != '\0') return false;
    if (out.tol < 0.0 || out.tol_abs < 0.0) return false;
  } else if (out.mode == Mode::kMaxAbs || out.mode == Mode::kMaxFactor ||
             out.mode == Mode::kMinFactor || out.mode == Mode::kFloor) {
    if (colon == std::string_view::npos) return false;
    char* end = nullptr;
    const std::string tol_str(rest.substr(colon + 1));
    out.tol = std::strtod(tol_str.c_str(), &end);
    if (end == tol_str.c_str() || *end != '\0') return false;
    if (out.tol < 0.0) return false;
    if ((out.mode == Mode::kMaxFactor || out.mode == Mode::kMinFactor) &&
        out.tol < 1.0) {
      return false;  // a factor below 1 would reject identical values
    }
  }
  return true;
}

namespace {

std::string render_scalar(const JsonScalar& s) {
  switch (s.type) {
    case JsonScalar::Type::kNumber: return stats::fmt_double(s.num);
    case JsonScalar::Type::kString: return s.str;
    case JsonScalar::Type::kBool: return s.boolean ? "true" : "false";
    case JsonScalar::Type::kNull: return "null";
  }
  return "?";
}

const ToleranceRule* rule_for(const std::vector<ToleranceRule>& rules,
                              std::string_view key) {
  for (const ToleranceRule& r : rules) {
    if (glob_match(r.pattern, key)) return &r;
  }
  return nullptr;
}

}  // namespace

DiffResult diff_metrics(const FlatJson& baseline, const FlatJson& current,
                        const std::vector<ToleranceRule>& rules) {
  using Mode = ToleranceRule::Mode;
  DiffResult out;
  for (const auto& [key, base] : baseline) {
    DiffResult::Row row;
    row.key = key;
    row.baseline = render_scalar(base);
    const ToleranceRule* rule = rule_for(rules, key);
    const Mode mode = rule == nullptr ? Mode::kIgnore : rule->mode;
    const JsonScalar* cur = json_find(current, key);
    if (cur == nullptr) {
      row.current = "-";
      row.violation = mode != Mode::kIgnore;
      row.verdict = row.violation ? "FAIL missing" : "ignored (missing)";
    } else {
      row.current = render_scalar(*cur);
      if (mode == Mode::kIgnore) {
        row.verdict = "ignored";
      } else if (mode == Mode::kExact) {
        row.violation = render_scalar(base) != render_scalar(*cur);
        row.verdict = row.violation ? "FAIL not equal" : "ok";
      } else if (base.type != JsonScalar::Type::kNumber ||
                 cur->type != JsonScalar::Type::kNumber) {
        row.violation = true;
        row.verdict = "FAIL non-numeric under numeric rule";
      } else {
        const double b = base.num;
        const double c = cur->num;
        switch (mode) {
          case Mode::kMaxAbs:
            row.violation = c > b + rule->tol;
            break;
          case Mode::kMaxFactor:
            row.violation = c > b * rule->tol;
            break;
          case Mode::kMinFactor:
            row.violation = c < b / rule->tol;
            break;
          case Mode::kFloor:
            row.violation = c < rule->tol;
            break;
          case Mode::kNear:
            row.violation =
                std::abs(c - b) > rule->tol * std::abs(b) + rule->tol_abs;
            break;
          default:
            break;
        }
        row.verdict = row.violation ? "FAIL out of tolerance" : "ok";
      }
    }
    if (row.violation) ++out.violations;
    out.rows.push_back(std::move(row));
  }
  for (const auto& [key, cur] : current) {
    if (json_find(baseline, key) != nullptr) continue;
    DiffResult::Row row;
    row.key = key;
    row.baseline = "-";
    row.current = render_scalar(cur);
    row.verdict = "new";
    out.rows.push_back(std::move(row));
  }
  return out;
}

std::string DiffResult::render() const {
  Table t({"metric", "baseline", "current", "verdict"});
  for (const Row& r : rows) {
    t.add_row({r.key, r.baseline, r.current, r.verdict});
  }
  std::string out = t.render();
  out += violations == 0
             ? "diff: OK\n"
             : "diff: " + std::to_string(violations) + " violation(s)\n";
  return out;
}

std::string rollup_flat_json(const std::vector<AnalyzedRun>& runs) {
  std::vector<const RunRollup*> sorted;
  sorted.reserve(runs.size());
  for (const AnalyzedRun& r : runs) sorted.push_back(&r.rollup);
  std::sort(sorted.begin(), sorted.end(),
            [](const RunRollup* a, const RunRollup* b) {
              return std::tie(a->group, a->protocol, a->workload, a->seed) <
                     std::tie(b->group, b->protocol, b->workload, b->seed);
            });
  std::string out = "{\n  \"schema\": \"emptcp-rollup-flat-v1\"";
  auto field = [&out](const std::string& key, const std::string& value) {
    out += ",\n  \"" + key + "\": " + value;
  };
  for (const RunRollup* r : sorted) {
    // The workload string (e.g. "fleet/closed/c4") is part of the key:
    // a campaign with several fleet sizes has runs that agree on
    // (group, protocol, seed), and tolerance rules want to glob on the
    // client count ("*-c4-*") anyway. Slashes become dashes so the keys
    // stay glob- and shell-friendly.
    std::string workload = r->workload;
    std::replace(workload.begin(), workload.end(), '/', '-');
    std::string run = r->group + "-" + r->protocol;
    if (!workload.empty()) run += "-" + workload;
    run += "-s" + std::to_string(r->seed);
    field(run + ".completed", r->completed ? "1" : "0");
    field(run + ".time_s", stats::fmt_double(r->time_s));
    field(run + ".bytes", std::to_string(r->bytes));
    field(run + ".energy_j", stats::fmt_double(r->energy_j));
    field(run + ".flows_started", std::to_string(r->flows_started));
    field(run + ".flows_completed", std::to_string(r->flows_completed));
    // Keyed by flow id, not completion order: the two fidelities complete
    // flows in different orders, and the gate must compare a flow with
    // itself.
    std::vector<const RunRollup::FlowRollup*> flows;
    flows.reserve(r->flows.size());
    for (const auto& f : r->flows) flows.push_back(&f);
    std::sort(flows.begin(), flows.end(),
              [](const RunRollup::FlowRollup* a,
                 const RunRollup::FlowRollup* b) { return a->flow < b->flow; });
    for (const auto* f : flows) {
      const std::string key = run + ".flow" + std::to_string(f->flow);
      field(key + ".bytes", stats::fmt_double(f->bytes));
      field(key + ".fct_s", stats::fmt_double(f->fct_s));
      field(key + ".energy_j", stats::fmt_double(f->energy_j));
    }
  }
  out += "\n}\n";
  return out;
}

}  // namespace emptcp::analysis
