#include "analysis/rollup.hpp"

#include <algorithm>
#include <cstdint>

namespace emptcp::analysis {

double TraceData::metric(std::string_view name, double fallback) const {
  for (const auto& [k, v] : metrics) {
    if (k == name) return v;
  }
  return fallback;
}

bool parse_trace_jsonl(std::string_view text, TraceData& out,
                       std::string* err) {
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string_view::npos) nl = text.size();
    const std::string_view line = text.substr(pos, nl - pos);
    pos = nl + 1;
    ++line_no;
    if (line.empty()) continue;
    std::string perr;
    std::optional<FlatJson> doc = parse_json_flat(line, &perr);
    if (!doc) {
      if (err != nullptr) {
        *err = "line " + std::to_string(line_no) + ": " + perr;
      }
      return false;
    }
    const JsonScalar* metric = json_find(*doc, "metric");
    if (metric != nullptr && metric->type == JsonScalar::Type::kString) {
      out.metrics.emplace_back(metric->str, json_num(*doc, "value", 0.0));
    } else {
      out.events.push_back(std::move(*doc));
    }
  }
  return true;
}

namespace {

/// Tiny ordered map keyed by interface name; traces have at most a
/// handful of interfaces, so linear scans beat a real map here.
template <typename V>
V& slot_for(std::vector<std::pair<std::string, V>>& items,
            const std::string& key) {
  for (auto& [k, v] : items) {
    if (k == key) return v;
  }
  items.emplace_back(key, V{});
  return items.back().second;
}

}  // namespace

RollupBuilder::RollupBuilder(const RunManifest& manifest) {
  r_.group = manifest.group;
  r_.protocol = manifest.protocol;
  r_.workload = manifest.workload;
  r_.seed = manifest.seed;
}

void RollupBuilder::add_line(const FlatJson& doc) {
  const JsonScalar* metric = json_find(doc, "metric");
  if (metric != nullptr && metric->type == JsonScalar::Type::kString) {
    add_metric(metric->str, json_num(doc, "value", 0.0));
  } else {
    add_event(doc);
  }
}

void RollupBuilder::add_metric(const std::string& name, double value) {
  metrics_.emplace_back(name, value);
}

void RollupBuilder::add_event(const FlatJson& e) {
  ++r_.events;
  const std::string kind = json_str(e, "kind");
  if (kind == "sched_pick") {
    ++r_.sched_picks;
    const std::string iface = json_str(e, "iface");
    slot_for(r_.sched_bytes_by_iface, iface) +=
        static_cast<std::uint64_t>(json_num(e, "len", 0.0));
  } else if (kind == "mp_prio") {
    if (json_num(e, "backup", 0.0) != 0.0) {
      ++r_.suspends;
    } else {
      ++r_.resumes;
    }
  } else if (kind == "mode_change") {
    ++r_.mode_changes;
  } else if (kind == "radio_state") {
    ++r_.radio_transitions;
  } else if (kind == "energy_sample") {
    // Per-interface integrator: every EnergyTracker samples on a fixed
    // cadence from t=0, each sample reporting the mean power over the
    // window that *ends* at the sample time. A sharded fleet merges one
    // co-timed sample per cell per window under the same interface name;
    // each integrates over the shared timestep, so the co-timed powers
    // sum instead of the followers collapsing into zero-width gaps.
    const std::string iface = json_str(e, "iface");
    const double t_s = json_num(e, "t_ns", 0.0) * 1e-9;
    SampleStep& prev = slot_for(prev_sample_t_, iface);
    if (t_s > prev.t) {
      prev.step = t_s - prev.t;
      prev.t = t_s;
    }
    const double power_mw = json_num(e, "power_mw", 0.0);
    if (prev.step > 0.0) {
      r_.integrated_energy_j += power_mw * 1e-3 * prev.step;
    }
    power_.add(t_s, power_mw);
  } else if (kind == "flow_start") {
    ++r_.flows_started;
  } else if (kind == "flow_complete") {
    ++r_.flows_completed;
    const double fct = json_num(e, "fct_s", 0.0);
    if (fct > 0.0) r_.flow_fct_s.add(fct);
    const double bytes = json_num(e, "bytes", 0.0);
    const double energy = json_num(e, "energy_j", 0.0);
    if (bytes > 0.0) r_.flow_epb_uj.add(energy * 1e6 / (bytes * 8.0));
    r_.flows.push_back({static_cast<std::uint64_t>(json_num(e, "flow", 0.0)),
                        bytes, fct, energy});
  } else if (kind == "warning") {
    ++r_.warnings;
  }
}

RunRollup RollupBuilder::finish() const {
  RunRollup r = r_;
  const TraceData view{{}, metrics_};
  r.completed = view.metric("run.completed", 0.0) != 0.0;
  r.time_s = view.metric("run.download_time_s", 0.0);
  r.energy_j = view.metric("run.energy_j", 0.0);
  r.wifi_j = view.metric("run.wifi_j", 0.0);
  r.cell_j = view.metric("run.cell_j", 0.0);
  r.bytes = static_cast<std::uint64_t>(view.metric("run.bytes_received", 0.0));
  r.retransmits =
      static_cast<std::uint64_t>(view.metric("tcp.retransmits", 0.0));
  r.rtos = static_cast<std::uint64_t>(view.metric("tcp.rtos", 0.0));
  r.fast_recoveries =
      static_cast<std::uint64_t>(view.metric("tcp.fast_recoveries", 0.0));
  r.reinjections =
      static_cast<std::uint64_t>(view.metric("mptcp.reinjected_chunks", 0.0));
  std::sort(r.sched_bytes_by_iface.begin(), r.sched_bytes_by_iface.end());
  return r;
}

RunRollup rollup_run(const RunManifest& manifest, const TraceData& trace) {
  RollupBuilder b(manifest);
  for (const FlatJson& e : trace.events) b.add_event(e);
  for (const auto& [name, value] : trace.metrics) b.add_metric(name, value);
  return b.finish();
}

double RunRollup::iface_share(std::string_view iface) const {
  std::uint64_t total = 0;
  std::uint64_t mine = 0;
  for (const auto& [k, v] : sched_bytes_by_iface) {
    total += v;
    if (k == iface) mine = v;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(mine) / static_cast<double>(total);
}

}  // namespace emptcp::analysis
