#include "analysis/manifest.hpp"

#include <cstdio>

#include "app/scenario.hpp"
#include "stats/csv.hpp"
#include "trace/trace.hpp"

namespace emptcp::analysis {
namespace {

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
}

std::string quoted(std::string_view s) {
  std::string out;
  append_json_string(out, s);
  return out;
}

std::string num(double v) { return stats::fmt_double(v); }

}  // namespace

void Fnv1a64Stream::update(std::string_view chunk) {
  std::uint64_t h = h_;
  for (const char c : chunk) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  h_ = h;
}

std::string Fnv1a64Stream::hex() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "fnv1a64:%016llx",
                static_cast<unsigned long long>(h_));
  return buf;
}

std::uint64_t fnv1a64(std::string_view text) {
  Fnv1a64Stream s;
  s.update(text);
  return s.value();
}

std::string fnv1a64_hex(std::string_view text) {
  Fnv1a64Stream s;
  s.update(text);
  return s.hex();
}

std::vector<std::pair<std::string, std::string>> describe_scenario(
    const app::ScenarioConfig& cfg) {
  std::vector<std::pair<std::string, std::string>> p;
  auto path = [&p](const char* name, const app::PathParams& pp) {
    const std::string pre = std::string(name) + ".";
    p.emplace_back(pre + "down_mbps", num(pp.down_mbps));
    p.emplace_back(pre + "up_mbps", num(pp.up_mbps));
    p.emplace_back(pre + "rtt_ms", num(sim::to_seconds(pp.rtt) * 1e3));
    p.emplace_back(pre + "loss", num(pp.loss));
    p.emplace_back(pre + "queue_bytes",
                   num(static_cast<double>(pp.queue_bytes)));
  };
  path("wifi", cfg.wifi);
  path("cell", cfg.cell);
  p.emplace_back("cell_tech",
                 cfg.cell_tech == energy::CellTech::kLte ? "\"LTE\""
                                                         : "\"3G\"");
  p.emplace_back("wifi_onoff", cfg.wifi_onoff ? "true" : "false");
  if (cfg.wifi_onoff) {
    p.emplace_back("onoff.high_mbps", num(cfg.onoff.high_mbps));
    p.emplace_back("onoff.low_mbps", num(cfg.onoff.low_mbps));
    p.emplace_back("onoff.mean_high_s", num(cfg.onoff.mean_high_s));
    p.emplace_back("onoff.mean_low_s", num(cfg.onoff.mean_low_s));
  }
  p.emplace_back("interferers", num(cfg.interferers));
  if (cfg.interferers > 0) {
    p.emplace_back("lambda_on", num(cfg.lambda_on));
    p.emplace_back("lambda_off", num(cfg.lambda_off));
  }
  p.emplace_back("mobility", cfg.mobility ? "true" : "false");
  p.emplace_back("request_bytes",
                 num(static_cast<double>(cfg.request_bytes)));
  p.emplace_back("max_sim_time_s", num(sim::to_seconds(cfg.max_sim_time)));
  p.emplace_back("max_drain_s", num(sim::to_seconds(cfg.max_drain)));
  return p;
}

std::vector<std::pair<std::string, std::string>> describe_build() {
  std::vector<std::pair<std::string, std::string>> p;
  p.emplace_back("build.trace_compiled",
                 EMPTCP_TRACE_COMPILED ? "true" : "false");
#ifdef NDEBUG
  p.emplace_back("build.ndebug", "true");
#else
  p.emplace_back("build.ndebug", "false");
#endif
#ifdef __VERSION__
  p.emplace_back("build.compiler", quoted(__VERSION__));
#endif
  return p;
}

std::string manifest_to_json(const RunManifest& m) {
  std::string out = "{\n";
  out += "  \"schema\": " + quoted(kManifestSchema) + ",\n";
  out += "  \"group\": " + quoted(m.group) + ",\n";
  out += "  \"protocol\": " + quoted(m.protocol) + ",\n";
  out += "  \"seed\": " + num(static_cast<double>(m.seed)) + ",\n";
  out += "  \"workload\": " + quoted(m.workload) + ",\n";
  out += "  \"trace_file\": " + quoted(m.trace_file) + ",\n";
  out += "  \"trace_events\": " + num(static_cast<double>(m.trace_events)) +
         ",\n";
  out += "  \"trace_digest\": " + quoted(m.trace_digest) + ",\n";
  out += "  \"params\": {";
  bool first = true;
  for (const auto& [k, v] : m.params) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    " + quoted(k) + ": " + v;
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

bool manifest_from_json(const FlatJson& doc, RunManifest& out) {
  if (json_str(doc, "schema") != kManifestSchema) return false;
  out.group = json_str(doc, "group");
  out.protocol = json_str(doc, "protocol");
  out.seed = static_cast<std::uint64_t>(json_num(doc, "seed", 0));
  out.workload = json_str(doc, "workload");
  out.trace_file = json_str(doc, "trace_file");
  out.trace_events =
      static_cast<std::uint64_t>(json_num(doc, "trace_events", 0));
  out.trace_digest = json_str(doc, "trace_digest");
  out.params.clear();
  constexpr std::string_view kPrefix = "params.";
  for (const auto& [k, v] : doc) {
    if (k.rfind(kPrefix, 0) != 0) continue;
    std::string rendered;
    switch (v.type) {
      case JsonScalar::Type::kNumber: rendered = num(v.num); break;
      case JsonScalar::Type::kBool: rendered = v.boolean ? "true" : "false";
        break;
      case JsonScalar::Type::kString: rendered = quoted(v.str); break;
      case JsonScalar::Type::kNull: rendered = "null"; break;
    }
    out.params.emplace_back(k.substr(kPrefix.size()), std::move(rendered));
  }
  return true;
}

}  // namespace emptcp::analysis
