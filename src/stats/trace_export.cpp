#include "stats/trace_export.hpp"

#include <cinttypes>
#include <cstdio>

#include "stats/csv.hpp"

namespace emptcp::stats {
namespace {

void append_json_string(std::string& out, const char* s) {
  out += '"';
  for (const char* p = s; *p != '\0'; ++p) {
    const char c = *p;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
}

void field_str(std::string& out, const char* name, const char* value) {
  out += ",\"";
  out += name;
  out += "\":";
  append_json_string(out, value == nullptr ? "" : value);
}

void field_int(std::string& out, const char* name, std::int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, value);
  out += ",\"";
  out += name;
  out += "\":";
  out += buf;
}

void field_double(std::string& out, const char* name, double value) {
  out += ",\"";
  out += name;
  out += "\":";
  out += fmt_double(value);
}

void field_bool(std::string& out, const char* name, bool value) {
  out += ",\"";
  out += name;
  out += "\":";
  out += value ? "true" : "false";
}

void append_event_jsonl(std::string& out, const trace::Event& e) {
  char head[64];
  std::snprintf(head, sizeof(head), "{\"t_ns\":%" PRId64 ",\"kind\":\"%s\"",
                static_cast<std::int64_t>(e.t), trace::to_string(e.kind));
  out += head;
  switch (e.kind) {
    case trace::Kind::kTcpState:
      field_int(out, "flow", e.id);
      field_str(out, "from", e.label);
      field_str(out, "to", e.label2);
      break;
    case trace::Kind::kCwnd:
      field_int(out, "flow", e.id);
      field_int(out, "cwnd", e.i0);
      field_int(out, "ssthresh", e.i1);
      break;
    case trace::Kind::kSrtt:
      field_int(out, "flow", e.id);
      field_int(out, "srtt_ns", e.i0);
      field_int(out, "rto_ns", e.i1);
      break;
    case trace::Kind::kSchedPick:
      field_int(out, "subflow", e.id);
      field_str(out, "iface", e.label);
      field_int(out, "data_seq", e.i0);
      field_int(out, "len", e.i1);
      break;
    case trace::Kind::kMpPrio:
      field_int(out, "subflow", e.id);
      field_str(out, "iface", e.label);
      field_bool(out, "backup", e.i0 != 0);
      field_str(out, "origin", e.label2);
      break;
    case trace::Kind::kModeChange:
      field_str(out, "from", e.label);
      field_str(out, "to", e.label2);
      field_double(out, "wifi_mbps", e.d0);
      field_double(out, "cell_mbps", e.d1);
      break;
    case trace::Kind::kRadioState:
      field_str(out, "iface", e.label);
      field_str(out, "state", e.label2);
      break;
    case trace::Kind::kEnergySample:
      field_str(out, "iface", e.label);
      field_double(out, "mbps", e.d0);
      field_double(out, "power_mw", e.d1);
      break;
    case trace::Kind::kChannelRate:
      field_str(out, "what", e.label);
      field_double(out, "mbps", e.d0);
      field_double(out, "extra", e.d1);
      break;
    case trace::Kind::kFlowStart:
      field_int(out, "flow", e.id);
      field_int(out, "bytes", e.i0);
      break;
    case trace::Kind::kFlowComplete:
      field_int(out, "flow", e.id);
      field_int(out, "bytes", e.i0);
      field_double(out, "fct_s", e.d0);
      field_double(out, "energy_j", e.d1);
      break;
    case trace::Kind::kWarning:
      field_str(out, "what", e.label);
      field_int(out, "v0", e.i0);
      field_int(out, "v1", e.i1);
      break;
  }
  out += "}\n";
}

}  // namespace

std::string trace_to_jsonl(const std::vector<trace::Event>& events,
                           const std::vector<trace::MetricSnapshot>& metrics) {
  std::string out;
  out.reserve(events.size() * 96 + metrics.size() * 48);
  for (const trace::Event& e : events) {
    append_event_jsonl(out, e);
  }
  for (const trace::MetricSnapshot& m : metrics) {
    out += "{\"metric\":";
    append_json_string(out, m.name.c_str());
    out += ",\"value\":";
    out += fmt_double(m.value);
    out += "}\n";
  }
  return out;
}

std::string trace_to_csv(const std::vector<trace::Event>& events) {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(events.size() + 1);
  rows.push_back({"t_ns", "kind", "id", "label", "label2", "i0", "i1", "d0",
                  "d1"});
  for (const trace::Event& e : events) {
    rows.push_back({std::to_string(static_cast<std::int64_t>(e.t)),
                    trace::to_string(e.kind), std::to_string(e.id),
                    e.label == nullptr ? "" : e.label,
                    e.label2 == nullptr ? "" : e.label2, std::to_string(e.i0),
                    std::to_string(e.i1), fmt_double(e.d0), fmt_double(e.d1)});
  }
  return to_csv(rows);
}

}  // namespace emptcp::stats
