// Summary statistics used by the evaluation harness.
//
// The paper reports two kinds of aggregates:
//   * mean ± standard error of the mean (its Eq. 2) for the lab figures,
//   * five-number whisker summaries with 1.5·IQR outliers for the
//     in-the-wild figures (§5.2).
#pragma once

#include <cstddef>
#include <vector>

namespace emptcp::stats {

/// Sample mean.
double mean(const std::vector<double>& xs);

/// Sample standard deviation (n-1 denominator), the paper's Eq. 2 `s`.
double stddev(const std::vector<double>& xs);

/// Standard error of the mean: s / sqrt(n).
double sem(const std::vector<double>& xs);

/// Linear-interpolation quantile over an already ascending-sorted sample,
/// q in [0,1]. Precondition: `sorted` is non-empty and sorted.
double quantile_sorted(const std::vector<double>& sorted, double q);

/// Linear-interpolation quantile, q in [0,1]. Sorts a copy of the sample
/// on every call; for repeated queries over one sample use SortedSample.
double quantile(std::vector<double> xs, double q);

/// Sort-once view of a sample for repeated quantile queries. Holds its own
/// sorted copy, so the source vector may be discarded or mutated freely.
class SortedSample {
 public:
  explicit SortedSample(std::vector<double> xs);

  [[nodiscard]] double quantile(double q) const {
    return quantile_sorted(xs_, q);
  }
  [[nodiscard]] const std::vector<double>& data() const { return xs_; }
  [[nodiscard]] std::size_t size() const { return xs_.size(); }
  [[nodiscard]] bool empty() const { return xs_.empty(); }

 private:
  std::vector<double> xs_;
};

/// Whisker-plot summary: quartiles, whiskers at the most extreme samples
/// within [Q1 - 1.5 IQR, Q3 + 1.5 IQR], and the samples outside (outliers).
struct Whisker {
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double lo_whisker = 0.0;
  double hi_whisker = 0.0;
  std::vector<double> outliers;
  std::size_t n = 0;
};

Whisker whisker(const std::vector<double>& xs);

/// Batch path: computes the whisker summary from an already-sorted sample
/// (one sort total, instead of one per quantile call).
Whisker whisker(const SortedSample& xs);

}  // namespace emptcp::stats
