// Summary statistics used by the evaluation harness.
//
// The paper reports two kinds of aggregates:
//   * mean ± standard error of the mean (its Eq. 2) for the lab figures,
//   * five-number whisker summaries with 1.5·IQR outliers for the
//     in-the-wild figures (§5.2).
#pragma once

#include <cstddef>
#include <vector>

namespace emptcp::stats {

/// Sample mean.
double mean(const std::vector<double>& xs);

/// Sample standard deviation (n-1 denominator), the paper's Eq. 2 `s`.
double stddev(const std::vector<double>& xs);

/// Standard error of the mean: s / sqrt(n).
double sem(const std::vector<double>& xs);

/// Linear-interpolation quantile, q in [0,1].
double quantile(std::vector<double> xs, double q);

/// Whisker-plot summary: quartiles, whiskers at the most extreme samples
/// within [Q1 - 1.5 IQR, Q3 + 1.5 IQR], and the samples outside (outliers).
struct Whisker {
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double lo_whisker = 0.0;
  double hi_whisker = 0.0;
  std::vector<double> outliers;
  std::size_t n = 0;
};

Whisker whisker(const std::vector<double>& xs);

}  // namespace emptcp::stats
