#include "stats/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace emptcp::stats {

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& cells) {
    std::ostringstream os;
    os << "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : "";
      os << " " << std::left << std::setw(static_cast<int>(widths[c])) << cell
         << " |";
    }
    return os.str();
  };

  std::ostringstream os;
  const std::string header = render_row(headers_);
  os << header << "\n" << std::string(header.size(), '-') << "\n";
  for (const auto& row : rows_) os << render_row(row) << "\n";
  return os.str();
}

}  // namespace emptcp::stats
