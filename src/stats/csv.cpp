#include "stats/csv.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace emptcp::stats {

std::string csv_field(const std::string& value) {
  const bool needs_quoting =
      value.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quoting) return value;
  std::string out = "\"";
  for (char c : value) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string to_csv(const std::vector<std::vector<std::string>>& rows) {
  std::ostringstream os;
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) os << ',';
      os << csv_field(row[i]);
    }
    os << '\n';
  }
  return os.str();
}

std::string series_to_csv(const Series& series,
                          const std::string& value_name,
                          const std::string& time_name) {
  std::ostringstream os;
  os << csv_field(time_name) << ',' << csv_field(value_name) << '\n';
  for (const Point& p : series) {
    os << p.t << ',' << p.v << '\n';
  }
  return os.str();
}

std::string series_table_to_csv(
    const std::vector<std::pair<std::string, const Series*>>& columns,
    std::size_t points) {
  if (columns.empty() || points == 0) return "";

  double t0 = 0.0;
  double t1 = 0.0;
  bool first = true;
  for (const auto& [name, series] : columns) {
    if (series == nullptr || series->empty()) continue;
    if (first) {
      t0 = series->front().t;
      t1 = series->back().t;
      first = false;
    } else {
      t0 = std::min(t0, series->front().t);
      t1 = std::max(t1, series->back().t);
    }
  }
  if (first || t1 <= t0) return "";

  std::ostringstream os;
  os << "t_s";
  for (const auto& [name, series] : columns) os << ',' << csv_field(name);
  os << '\n';
  for (std::size_t i = 0; i < points; ++i) {
    const double t = t0 + (t1 - t0) * static_cast<double>(i) /
                              static_cast<double>(points - 1);
    os << t;
    for (const auto& [name, series] : columns) {
      os << ',';
      if (series != nullptr && !series->empty()) os << value_at(*series, t);
    }
    os << '\n';
  }
  return os.str();
}

bool write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << text;
  return static_cast<bool>(out);
}

}  // namespace emptcp::stats
