#include "stats/csv.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace emptcp::stats {

std::string fmt_double(double v) {
  char buf[64];
  for (int prec = 6; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    double back = 0.0;
    std::sscanf(buf, "%lf", &back);
    if (back == v) break;
  }
  return buf;
}

std::string csv_field(const std::string& value) {
  // RFC 4180: a field containing a comma, quote, CR or LF must be quoted
  // (the original writer missed '\r', which silently corrupted rows).
  const bool needs_quoting =
      value.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quoting) return value;
  std::string out = "\"";
  for (char c : value) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string to_csv(const std::vector<std::vector<std::string>>& rows) {
  std::ostringstream os;
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) os << ',';
      os << csv_field(row[i]);
    }
    os << '\n';
  }
  return os.str();
}

std::vector<std::vector<std::string>> parse_csv(std::string_view text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;  // distinguishes "" (one empty field) from ""
  std::size_t i = 0;
  const std::size_t n = text.size();
  auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_row = [&] {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
  };
  while (i < n) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < n && text[i + 1] == '"') {
          field += '"';
          i += 2;
        } else {
          in_quotes = false;
          ++i;
        }
      } else {
        field += c;
        ++i;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        field_started = true;
        ++i;
        break;
      case ',':
        end_field();
        field_started = true;  // a separator implies a following field
        ++i;
        break;
      case '\r':
        if (i + 1 < n && text[i + 1] == '\n') ++i;
        [[fallthrough]];
      case '\n':
        end_row();
        ++i;
        break;
      default:
        field += c;
        field_started = true;
        ++i;
        break;
    }
  }
  // Text not ending in a newline still terminates its last row.
  if (field_started || !field.empty() || !row.empty()) end_row();
  return rows;
}

std::string series_to_csv(const Series& series,
                          const std::string& value_name,
                          const std::string& time_name) {
  std::ostringstream os;
  os << csv_field(time_name) << ',' << csv_field(value_name) << '\n';
  for (const Point& p : series) {
    os << p.t << ',' << p.v << '\n';
  }
  return os.str();
}

std::string series_table_to_csv(
    const std::vector<std::pair<std::string, const Series*>>& columns,
    std::size_t points) {
  if (columns.empty() || points == 0) return "";

  double t0 = 0.0;
  double t1 = 0.0;
  bool first = true;
  for (const auto& [name, series] : columns) {
    if (series == nullptr || series->empty()) continue;
    if (first) {
      t0 = series->front().t;
      t1 = series->back().t;
      first = false;
    } else {
      t0 = std::min(t0, series->front().t);
      t1 = std::max(t1, series->back().t);
    }
  }
  if (first || t1 <= t0) return "";

  std::ostringstream os;
  os << "t_s";
  for (const auto& [name, series] : columns) os << ',' << csv_field(name);
  os << '\n';
  if (points == 1) {
    // The grid formula below needs points >= 2; emit the single row at t0.
    os << t0;
    for (const auto& [name, series] : columns) {
      os << ',';
      if (series != nullptr && !series->empty()) os << value_at(*series, t0);
    }
    os << '\n';
    return os.str();
  }
  for (std::size_t i = 0; i < points; ++i) {
    const double t = t0 + (t1 - t0) * static_cast<double>(i) /
                              static_cast<double>(points - 1);
    os << t;
    for (const auto& [name, series] : columns) {
      os << ',';
      if (series != nullptr && !series->empty()) os << value_at(*series, t);
    }
    os << '\n';
  }
  return os.str();
}

bool write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << text;
  return static_cast<bool>(out);
}

}  // namespace emptcp::stats
