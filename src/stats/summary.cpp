#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace emptcp::stats {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) throw std::invalid_argument("mean of empty sample");
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double sem(const std::vector<double>& xs) {
  if (xs.empty()) throw std::invalid_argument("sem of empty sample");
  return stddev(xs) / std::sqrt(static_cast<double>(xs.size()));
}

double quantile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) throw std::invalid_argument("quantile of empty sample");
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double quantile(std::vector<double> xs, double q) {
  if (xs.empty()) throw std::invalid_argument("quantile of empty sample");
  std::sort(xs.begin(), xs.end());
  return quantile_sorted(xs, q);
}

SortedSample::SortedSample(std::vector<double> xs) : xs_(std::move(xs)) {
  std::sort(xs_.begin(), xs_.end());
}

Whisker whisker(const std::vector<double>& xs) {
  return whisker(SortedSample(xs));
}

Whisker whisker(const SortedSample& sample) {
  const std::vector<double>& xs = sample.data();
  Whisker w;
  w.n = xs.size();
  if (xs.empty()) return w;
  w.q1 = quantile_sorted(xs, 0.25);
  w.median = quantile_sorted(xs, 0.5);
  w.q3 = quantile_sorted(xs, 0.75);
  const double iqr = w.q3 - w.q1;
  const double lo_fence = w.q1 - 1.5 * iqr;
  const double hi_fence = w.q3 + 1.5 * iqr;

  w.lo_whisker = w.q1;
  w.hi_whisker = w.q3;
  bool found_lo = false;
  bool found_hi = false;
  for (double x : xs) {
    if (x < lo_fence || x > hi_fence) {
      w.outliers.push_back(x);
      continue;
    }
    if (!found_lo || x < w.lo_whisker) {
      w.lo_whisker = x;
      found_lo = true;
    }
    if (!found_hi || x > w.hi_whisker) {
      w.hi_whisker = x;
      found_hi = true;
    }
  }
  std::sort(w.outliers.begin(), w.outliers.end());
  return w;
}

}  // namespace emptcp::stats
