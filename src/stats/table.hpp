// Minimal ASCII table renderer: every bench binary prints its figure/table
// reproduction as rows via this, so outputs are uniform and diffable.
#pragma once

#include <string>
#include <vector>

namespace emptcp::stats {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);

  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace emptcp::stats
