// CSV export: every figure bench prints ASCII, but plotting the traces
// (Figs. 7/9/12) or the whisker data externally needs machine-readable
// output. These helpers render tables and time series as RFC-4180-style
// CSV (quoted only when needed) and write them to files.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "stats/timeseries.hpp"

namespace emptcp::stats {

/// Locale-independent shortest-roundtrip double formatting ("0.1", not
/// "0.10000000000000001"). Shared by every deterministic text artifact:
/// JSONL traces, CSV dumps, run manifests and report output.
std::string fmt_double(double v);

/// Escapes one CSV field per RFC 4180 (quotes when it contains a comma,
/// quote, CR or LF; embedded quotes are doubled).
std::string csv_field(const std::string& value);

/// Renders rows (first row = header) as CSV text.
std::string to_csv(const std::vector<std::vector<std::string>>& rows);

/// Parses RFC-4180 CSV text back into rows. Quoted fields may contain
/// commas, doubled quotes, CR and LF; rows end at an unquoted LF or CRLF.
/// The exact inverse of to_csv: parse_csv(to_csv(rows)) == rows.
std::vector<std::vector<std::string>> parse_csv(std::string_view text);

/// One (t, v) series with a named value column.
std::string series_to_csv(const Series& series,
                          const std::string& value_name = "value",
                          const std::string& time_name = "t_s");

/// Multiple series joined on a common resampled time grid (n points over
/// the union of their time ranges) — the layout the trace figures need.
std::string series_table_to_csv(
    const std::vector<std::pair<std::string, const Series*>>& columns,
    std::size_t points = 200);

/// Writes text to a file; returns false on I/O failure.
bool write_file(const std::string& path, const std::string& text);

}  // namespace emptcp::stats
