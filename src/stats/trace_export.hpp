// Trace exporters: serialize a TraceSink's event log (and optionally its
// metric snapshot) as JSONL or CSV text.
//
// The serialization is deterministic: events appear in record order, field
// order is fixed per kind, and doubles are printed with shortest-roundtrip
// precision via a locale-independent formatter. Two runs of the same
// (scenario, seed) therefore produce byte-identical text — the property
// the golden-trace tests pin down with trace::diff_trace_text.
#pragma once

#include <string>
#include <vector>

#include "trace/event.hpp"
#include "trace/sink.hpp"

namespace emptcp::stats {

/// One JSON object per line. Every line carries "t_ns" and "kind"; the
/// remaining fields are kind-specific schema names (e.g. cwnd lines carry
/// "flow", "cwnd", "ssthresh"). Metric snapshots, when given, follow the
/// events as {"metric": name, "value": v} lines in registration order.
std::string trace_to_jsonl(
    const std::vector<trace::Event>& events,
    const std::vector<trace::MetricSnapshot>& metrics = {});

/// Flat CSV with the raw record layout: one row per event, fixed columns
/// t_ns,kind,id,label,label2,i0,i1,d0,d1. Useful for spreadsheet triage;
/// the JSONL form is the one with per-kind field names.
std::string trace_to_csv(const std::vector<trace::Event>& events);

}  // namespace emptcp::stats
