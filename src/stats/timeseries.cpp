#include "stats/timeseries.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace emptcp::stats {

double value_at(const Series& s, double t) {
  if (s.empty()) return 0.0;
  if (t <= s.front().t) return s.front().v;
  auto it = std::upper_bound(
      s.begin(), s.end(), t,
      [](double x, const Point& p) { return x < p.t; });
  return std::prev(it)->v;
}

Series resample(const Series& s, double t0, double t1, std::size_t n) {
  Series out;
  if (n == 0 || t1 < t0) return out;
  if (n == 1 || t1 == t0) {
    // One point (or a zero-width range): sample the start of the range.
    // The general formula below would divide 0 by 0 and emit NaN times.
    out.push_back(Point{t0, value_at(s, t0)});
    return out;
  }
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t =
        t0 + (t1 - t0) * static_cast<double>(i) / static_cast<double>(n - 1);
    out.push_back(Point{t, value_at(s, t)});
  }
  return out;
}

namespace {
std::pair<double, double> bounds(const Series& s) {
  double lo = s.front().v;
  double hi = s.front().v;
  for (const Point& p : s) {
    lo = std::min(lo, p.v);
    hi = std::max(hi, p.v);
  }
  if (hi <= lo) hi = lo + 1.0;
  return {lo, hi};
}
}  // namespace

std::string sparkline(const Series& s, std::size_t width) {
  static const char* kLevels[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  if (s.empty()) return "";
  const Series r = resample(s, s.front().t, s.back().t, width);
  const auto [lo, hi] = bounds(r);
  std::string out;
  for (const Point& p : r) {
    const double f = (p.v - lo) / (hi - lo);
    const int idx = std::clamp(static_cast<int>(f * 7.999), 0, 7);
    out += kLevels[idx];
  }
  return out;
}

std::string ascii_chart(const Series& s, std::size_t width,
                        std::size_t height) {
  if (s.empty() || height == 0) return "";
  const Series r = resample(s, s.front().t, s.back().t, width);
  const auto [lo, hi] = bounds(r);

  std::vector<std::string> rows(height, std::string(width, ' '));
  for (std::size_t i = 0; i < r.size(); ++i) {
    const double f = (r[i].v - lo) / (hi - lo);
    const auto level = static_cast<std::size_t>(
        std::clamp(f, 0.0, 1.0) * static_cast<double>(height - 1) + 0.5);
    for (std::size_t y = 0; y <= level; ++y) {
      rows[height - 1 - y][i] = y == level ? '#' : '.';
    }
  }

  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(1);
  for (std::size_t y = 0; y < height; ++y) {
    const double label =
        hi - (hi - lo) * static_cast<double>(y) / static_cast<double>(height - 1);
    os.width(9);
    os << label << " |" << rows[y] << "\n";
  }
  os << std::string(11, ' ') << std::string(width, '-') << "\n";
  os << std::string(11, ' ') << "t=" << r.front().t << "s ... " << r.back().t
     << "s\n";
  return os.str();
}

}  // namespace emptcp::stats
