// Time-series helpers for the paper's trace figures (7, 9, 12): resampling
// onto a fixed grid and rendering compact ASCII sparklines so a bench
// binary can "plot" a trace in a terminal.
#pragma once

#include <string>
#include <vector>

namespace emptcp::stats {

struct Point {
  double t = 0.0;
  double v = 0.0;
};

using Series = std::vector<Point>;

/// Value at time `t` by step interpolation (last value at or before t;
/// the first value before the series starts).
double value_at(const Series& s, double t);

/// Resamples onto [t0, t1] with `n` evenly spaced points. Degenerate
/// inputs are well-defined: n == 0 or t1 < t0 yields an empty series;
/// n == 1 or a zero-width range yields the single sample at t0.
Series resample(const Series& s, double t0, double t1, std::size_t n);

/// Renders the series as one line of unicode block characters, scaled to
/// [min, max] over the series (or the provided bounds).
std::string sparkline(const Series& s, std::size_t width = 72);

/// Multi-row ASCII chart (height rows, '#' marks), labelled with the value
/// range; good enough to eyeball the shape of Figs. 7/9/12 in a terminal.
std::string ascii_chart(const Series& s, std::size_t width = 72,
                        std::size_t height = 10);

}  // namespace emptcp::stats
