#include "app/streaming.hpp"

#include <algorithm>
#include <cmath>

namespace emptcp::app {

VideoStreamClient::VideoStreamClient(sim::Simulation& sim, Config cfg,
                                     std::unique_ptr<ClientConnHandle> conn,
                                     std::function<void()> on_finished)
    : sim_(sim),
      cfg_(cfg),
      conn_(std::move(conn)),
      on_finished_(std::move(on_finished)),
      play_timer_(sim.scheduler(), [this] { tick(); }) {
  ClientConnHandle::Callbacks cb;
  cb.on_established = [this] { maybe_request(); };
  cb.on_data = [this](std::uint64_t newly) { on_data(newly); };
  conn_->set_callbacks(std::move(cb));
}

std::size_t VideoStreamClient::total_chunks() const {
  const double chunk_s = static_cast<double>(cfg_.chunk_bytes) * 8.0 / 1e6 /
                         cfg_.bitrate_mbps;
  return static_cast<std::size_t>(
      std::ceil(cfg_.media_duration_s / chunk_s));
}

void VideoStreamClient::start() {
  conn_->connect();
  play_timer_.arm_in(kTick);
}

void VideoStreamClient::maybe_request() {
  if (request_outstanding_) return;
  if (chunks_requested_ >= total_chunks()) return;
  if (buffered_s_ >= cfg_.buffer_target_s) return;
  request_outstanding_ = true;
  ++chunks_requested_;
  conn_->send(cfg_.request_bytes);
}

void VideoStreamClient::on_data(std::uint64_t newly) {
  stats_.bytes_fetched += newly;
  partial_chunk_ += newly;
  while (partial_chunk_ >= cfg_.chunk_bytes) {
    partial_chunk_ -= cfg_.chunk_bytes;
    ++chunks_received_;
    request_outstanding_ = false;
    buffered_s_ += static_cast<double>(cfg_.chunk_bytes) * 8.0 / 1e6 /
                   cfg_.bitrate_mbps;
    maybe_request();
  }
}

void VideoStreamClient::tick() {
  const double dt = sim::to_seconds(kTick);

  if (!playing_) {
    if (buffered_s_ >= cfg_.startup_s ||
        chunks_received_ >= total_chunks()) {
      playing_ = true;
      stats_.started_at_s = sim::to_seconds(sim_.now());
    }
  } else if (played_s_ < cfg_.media_duration_s) {
    if (buffered_s_ > 0.0) {
      if (stalled_) stalled_ = false;
      const double step = std::min(dt, buffered_s_);
      buffered_s_ -= step;
      played_s_ += step;
      stats_.stall_time_s += dt - step;
    } else {
      if (!stalled_) {
        stalled_ = true;
        ++stats_.rebuffer_events;
      }
      stats_.stall_time_s += dt;
    }
  }

  maybe_request();

  if (played_s_ >= cfg_.media_duration_s && !stats_.finished) {
    stats_.finished = true;
    stats_.finished_at_s = sim::to_seconds(sim_.now());
    conn_->shutdown_write();
    if (on_finished_) on_finished_();
    return;  // stop ticking
  }
  play_timer_.arm_in(kTick);
}

}  // namespace emptcp::app
