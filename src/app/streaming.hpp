// Video-streaming workload — the paper's §7 future work ("we plan to
// examine more statistically varied application traffic such as video
// streaming").
//
// A chunked (DASH-style) client: media plays at a fixed bitrate from a
// buffer; the client requests the next chunk whenever the buffer falls
// below its target and stalls (rebuffers) when it empties. The traffic
// pattern — bursts separated by idle gaps once the buffer is full — is
// exactly the case eMPTCP's idle-connection postponement (§3.5) was
// designed for: as long as WiFi sustains the bitrate, the LTE radio never
// has a reason to wake, and the gaps must not trigger the τ timer.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "app/client_handle.hpp"
#include "sim/simulation.hpp"
#include "sim/timer.hpp"

namespace emptcp::app {

class VideoStreamClient {
 public:
  struct Config {
    double bitrate_mbps = 2.0;        ///< playback rate
    std::uint64_t chunk_bytes = 1024 * 1024;  ///< media segment size
    double buffer_target_s = 12.0;    ///< stop requesting above this
    double startup_s = 4.0;           ///< playout starts once buffered
    double media_duration_s = 120.0;  ///< total length of the stream
    std::uint64_t request_bytes = 200;
  };

  struct Stats {
    bool finished = false;      ///< media fully played out
    double started_at_s = 0.0;  ///< startup delay
    double finished_at_s = 0.0;
    int rebuffer_events = 0;
    double stall_time_s = 0.0;  ///< total time spent stalled after start
    std::uint64_t bytes_fetched = 0;
  };

  VideoStreamClient(sim::Simulation& sim, Config cfg,
                    std::unique_ptr<ClientConnHandle> conn,
                    std::function<void()> on_finished);

  void start();

  [[nodiscard]] const Stats& stats() const { return stats_; }
  /// Seconds of media currently buffered.
  [[nodiscard]] double buffered_s() const { return buffered_s_; }
  [[nodiscard]] ClientConnHandle& connection() { return *conn_; }

  /// Chunks a media description into the total chunk count.
  [[nodiscard]] std::size_t total_chunks() const;

 private:
  void maybe_request();
  void on_data(std::uint64_t newly);
  void tick();

  sim::Simulation& sim_;
  Config cfg_;
  std::unique_ptr<ClientConnHandle> conn_;
  std::function<void()> on_finished_;
  sim::Timer play_timer_;

  Stats stats_;
  double buffered_s_ = 0.0;
  double played_s_ = 0.0;
  bool playing_ = false;
  bool stalled_ = false;
  std::size_t chunks_requested_ = 0;
  std::size_t chunks_received_ = 0;
  std::uint64_t partial_chunk_ = 0;
  bool request_outstanding_ = false;

  static constexpr sim::Duration kTick = sim::milliseconds(100);
};

}  // namespace emptcp::app
