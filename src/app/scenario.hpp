// Scenario: one self-contained experiment run.
//
// Reproduces the paper's testbed (§4.1): a mobile client with WiFi and LTE
// interfaces, a wired server reachable over both paths, a device energy
// model, and the workload applications. Each run builds a fresh simulation
// from (config, protocol, seed), executes the workload, and returns the
// measurements the paper reports: total energy, download time, bytes, and
// the trace series behind the time-series figures.
//
// Scenario knobs map one-to-one onto the paper's experiments:
//   * static good/bad WiFi          -> PathParams rates (Figs. 5, 6)
//   * random on-off WiFi bandwidth  -> wifi_onoff (Figs. 7, 8)
//   * interfering stations          -> interferers + lambdas (Figs. 9, 10)
//   * walking route                 -> mobility (Figs. 12, 13)
//   * server location               -> PathParams RTTs (Figs. 14-16)
//   * web page                      -> run_web_page (Fig. 17)
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "app/streaming.hpp"
#include "app/web_browser.hpp"
#include "core/emptcp_connection.hpp"
#include "energy/device_profile.hpp"
#include "net/channel/mobility.hpp"
#include "net/channel/onoff_bandwidth.hpp"
#include "sim/fidelity.hpp"
#include "stats/timeseries.hpp"
#include "trace/sink.hpp"

namespace emptcp::app {

enum class Protocol {
  kTcpWifi,     ///< single-path TCP over WiFi (paper baseline)
  kTcpLte,      ///< single-path TCP over LTE
  kMptcp,       ///< standard MPTCP, both subflows from the start
  kEmptcp,      ///< the paper's system
  kWifiFirst,   ///< Raiciu et al. [28] (§4.6)
  kMdp,         ///< Pluntke et al. [24] MDP scheduler (§4.6)
};

const char* to_string(Protocol p);

/// Inverse of to_string, also accepting lowercase spec aliases
/// ("tcp-wifi", "emptcp", ...); nullopt for unknown names.
std::optional<Protocol> protocol_from_string(std::string_view name);

struct PathParams {
  double down_mbps = 10.0;
  double up_mbps = 6.0;
  sim::Duration rtt = sim::milliseconds(30);  ///< end-to-end propagation RTT
  double loss = 0.0;
  std::size_t queue_bytes = 192 * 1024;
};

struct ScenarioConfig {
  PathParams wifi;
  PathParams cell{.down_mbps = 9.0,
                  .up_mbps = 5.0,
                  .rtt = sim::milliseconds(60),
                  .loss = 0.0,
                  .queue_bytes = 256 * 1024};
  energy::DeviceProfile device = energy::DeviceProfile::galaxy_s3();
  energy::CellTech cell_tech = energy::CellTech::kLte;

  // Dynamics (mutually combinable, though the paper uses one at a time).
  bool wifi_onoff = false;
  net::OnOffBandwidth::Config onoff;
  int interferers = 0;
  double lambda_on = 0.05;
  double lambda_off = 0.05;
  bool mobility = false;

  // Protocol parameters.
  core::EmptcpConfig emptcp;
  std::uint64_t request_bytes = 200;

  // Run control.
  /// Simulation fidelity: kPacket is the full per-packet model; kHybrid
  /// adds the macro-step fast path (app::FastPath, DESIGN.md §13) that
  /// advances quiescent flows analytically. Metrics must agree within the
  /// documented tolerances; traces legitimately differ.
  sim::Fidelity fidelity = sim::Fidelity::kPacket;
  sim::Duration max_sim_time = sim::seconds(4 * 3600);
  sim::Duration max_drain = sim::seconds(20);
  bool record_series = true;
  /// Enable the structured trace sink for the run; the recorded events and
  /// metric snapshot come back in RunMetrics::trace_events/trace_metrics.
  bool trace = false;
};

/// Simulator-internals snapshot taken at the end of a run: how much work
/// the event core did and how large the run-scoped slabs grew. These are
/// self-profiling diagnostics (deterministic per (scenario, seed)), not
/// measurements of the modeled system.
struct SimProfile {
  std::uint64_t events_executed = 0;   ///< scheduler actions fired
  std::size_t sched_slab_slots = 0;    ///< event-slab high-water mark
  std::size_t packet_pool_slots = 0;   ///< PacketPool high-water mark
  std::size_t trace_events = 0;        ///< retained trace records
};

struct RunMetrics {
  bool completed = false;
  double download_time_s = 0.0;
  double energy_j = 0.0;
  double wifi_j = 0.0;
  double cell_j = 0.0;
  std::uint64_t bytes_received = 0;
  double mean_wifi_mbps = 0.0;  ///< rx average over the run
  double mean_cell_mbps = 0.0;
  /// Configured path capacities (ground truth for §5.1 categorisation).
  double wifi_capacity_mbps = 0.0;
  double cell_capacity_mbps = 0.0;
  bool cellular_used = false;
  std::uint64_t controller_switches = 0;
  int cellular_activations = 0;

  // Streaming-only metrics (run_stream).
  double startup_delay_s = 0.0;
  double stall_time_s = 0.0;
  int rebuffer_events = 0;

  stats::Series energy_series;     ///< cumulative joules vs seconds
  stats::Series wifi_rate_series;  ///< Mbps vs seconds
  stats::Series cell_rate_series;

  // Populated when ScenarioConfig::trace is set (serialize with
  // stats::trace_to_jsonl / trace_to_csv). The metric snapshot includes
  // the run.* summary gauges, so a serialized trace alone is sufficient to
  // reproduce the headline numbers (see analysis/rollup.hpp).
  std::vector<trace::Event> trace_events;
  std::vector<trace::MetricSnapshot> trace_metrics;

  SimProfile profile;

  [[nodiscard]] double energy_per_mb() const {
    return bytes_received > 0
               ? energy_j / (static_cast<double>(bytes_received) / 1e6)
               : 0.0;
  }
};

class Scenario {
 public:
  explicit Scenario(ScenarioConfig cfg) : cfg_(std::move(cfg)) {}

  /// Download `bytes` once; measures completion time and energy including
  /// the post-download radio tail (as the paper's measurements do).
  RunMetrics run_download(Protocol p, std::uint64_t bytes,
                          std::uint64_t seed);

  /// Mobility-style run: download an effectively unbounded file for a fixed
  /// wall-clock duration; reports bytes moved and energy in that window.
  RunMetrics run_timed(Protocol p, sim::Duration duration,
                       std::uint64_t seed);

  /// Upload `bytes` from the device to the server (the paper's §7 "upload
  /// scenarios" future work). Completion is the device's write side fully
  /// acknowledged and closed; energy includes the radio tails.
  RunMetrics run_upload(Protocol p, std::uint64_t bytes, std::uint64_t seed);

  /// Fetch a whole page over `parallel` persistent connections (§5.4).
  RunMetrics run_web_page(Protocol p, const WebPage& page,
                          std::size_t parallel, std::uint64_t seed);

  /// Play a chunked video stream to completion (§7 future work). Reports
  /// startup delay, rebuffering and energy.
  RunMetrics run_stream(Protocol p, VideoStreamClient::Config stream,
                        std::uint64_t seed);

  [[nodiscard]] const ScenarioConfig& config() const { return cfg_; }

 private:
  ScenarioConfig cfg_;
};

}  // namespace emptcp::app
