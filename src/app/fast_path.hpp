// FastPath: the hybrid-fidelity coordinator (DESIGN.md §13).
//
// Watches every MptcpConnection in a world through the FastPathHub and,
// when a flow proves quiescent — congestion avoidance on every subflow,
// nothing in flight, no loss state, stable measured throughput — advances
// it analytically in whole scheduler quanta instead of packet by packet:
// data-level and subflow sequence spaces, congestion windows, interface
// byte counters and radio activity all move in one step per quantum.
//
// Any transient (loss signal observed at entry, link rate/loss change,
// MP_PRIO, subflow set change, app write/close) drops the flow back to
// packet level; the quiescence predicates are re-proven before analytic
// advancement resumes. Per-flow state machine:
//
//   kMeasure --(pending bytes + stable rate + CA on all senders)--> pause tx
//   kDraining --(both endpoints macro-quiescent)--> kFluid
//   kFluid --(transient | tail reached | timeout)--> unpause, kMeasure
//
// The fast path always leaves a packet-level tail (cfg.tail_bytes) so the
// close handshake, DATA_FIN and radio tail run at full fidelity.
#pragma once

#include <cstdint>
#include <vector>

#include "mptcp/fastpath_hub.hpp"
#include "mptcp/meta_socket.hpp"

namespace emptcp::app {

struct World;

class FastPath final : public mptcp::FastPathListener {
 public:
  struct Config {
    /// Governor period; also the analytic advancement quantum. Offset by
    /// half a period from the EnergyTracker's sampling chain so the two
    /// never race on the same instant.
    sim::Duration quantum = sim::milliseconds(100);
    /// Unassigned sender backlog below which fluid mode is not worth the
    /// drain round-trip.
    std::uint64_t min_fluid_bytes = 300 * 1024;
    /// Backlog left to packet level so teardown runs at full fidelity.
    std::uint64_t tail_bytes = 64 * 1024;
    /// Consecutive in-band rate measurements required before entry.
    int stable_ticks = 3;
    /// Relative spread tolerated between consecutive rate measurements.
    double stability_spread = 0.25;
    /// Governor ticks to wait for in-flight data to drain before giving up.
    int max_drain_ticks = 15;
    /// Consecutive ticks with no flow activity (no received bytes, every
    /// flow in kMeasure) before the governor parks itself. Keeps the
    /// scheduler quiescent for idle fleets; any transient re-arms it.
    int idle_park_ticks = 2;
  };

  FastPath(World& w, Config cfg);
  explicit FastPath(World& w) : FastPath(w, Config{}) {}
  ~FastPath() override;

  FastPath(const FastPath&) = delete;
  FastPath& operator=(const FastPath&) = delete;

  // FastPathListener.
  void on_conn_established(mptcp::MptcpConnection& conn) override;
  void on_conn_destroyed(mptcp::MptcpConnection& conn) override;
  void on_conn_transient(mptcp::MptcpConnection& conn) override;

  /// A path property changed (link rate or loss): every fluid flow drops
  /// back to packet level and re-measures against the new path.
  void kick_all();

  /// Bytes advanced analytically so far (tests; also a run.* gauge).
  [[nodiscard]] std::uint64_t fluid_bytes() const { return fluid_bytes_; }
  /// Number of measure->fluid entries (tests).
  [[nodiscard]] std::uint64_t fluid_entries() const { return fluid_entries_; }

 private:
  enum class State { kMeasure, kDraining, kFluid };
  /// Client-side interfaces a flow can ride: [0]=wifi, [1]=cellular.
  static constexpr int kIfaces = 2;

  struct Flow {
    mptcp::MptcpConnection* client = nullptr;
    mptcp::MptcpConnection* server = nullptr;
    /// Direction chosen at measurement time: whichever side holds the
    /// unassigned backlog sends; the other receives.
    mptcp::MptcpConnection* sender = nullptr;
    mptcp::MptcpConnection* receiver = nullptr;
    State state = State::kMeasure;
    double rate_bps[kIfaces] = {0.0, 0.0};    ///< payload bytes/s, frozen at entry
    std::uint64_t last_rx[kIfaces] = {0, 0};  ///< receiver subflow counters
    double carry[kIfaces] = {0.0, 0.0};       ///< sub-byte fluid remainder
    double last_total = 0.0;                  ///< previous tick's total rate
    int stable = 0;
    int drain = 0;
    bool dead = false;  ///< destroyed mid-tick; swept after the loop
    /// Whether the flow moved or held data last tick. A busy<->idle edge
    /// on any flow is a load change for every peer sharing the links
    /// (closed-loop completions and think-time gaps never destroy the
    /// connection, so membership callbacks alone would miss them).
    bool busy = false;
  };

  void arm();
  void disarm();
  void tick(std::uint64_t epoch);
  /// Returns true when bytes moved (or direction flipped) this tick.
  bool measure(Flow& f, double dt);
  void try_enter(Flow& f);
  /// Per-tick aggregates of the wire traffic fluid flows would have put on
  /// the network: total per client interface (energy metering) and split
  /// by direction (link background load).
  struct WireLoad {
    double total[kIfaces] = {0.0, 0.0};  ///< bytes/s, both directions
    double down[kIfaces] = {0.0, 0.0};   ///< bytes/s toward the client
    double up[kIfaces] = {0.0, 0.0};     ///< bytes/s toward the server
  };

  /// Advances one fluid flow by `rate[i] * dt` payload bytes per carrying
  /// interface. `rate` is the flow's equalized, capacity-clamped share
  /// computed by tick() — not its raw frozen measurement.
  void fluid_step(Flow& f, double dt, const double rate[kIfaces],
                  WireLoad& load);
  /// Applies (or clears, when zero) the fluid share to the energy tracker
  /// and to every access/WAN link in both directions.
  void apply_wire_load(const WireLoad& load);
  void drop_to_measure(Flow& f, const char* why);
  [[nodiscard]] Flow* find(const mptcp::MptcpConnection& conn);

  World& w_;
  Config cfg_;
  std::vector<Flow> flows_;
  std::vector<mptcp::MptcpConnection*> pending_;  ///< established, unpaired
  bool armed_ = false;
  bool in_tick_ = false;
  int idle_ticks_ = 0;  ///< consecutive all-quiet ticks (parks the governor)
  std::uint64_t epoch_ = 0;  ///< retires stale scheduled ticks on disarm
  sim::Time last_tick_ = 0;
  std::uint64_t fluid_bytes_ = 0;
  std::uint64_t fluid_entries_ = 0;
};

}  // namespace emptcp::app
