// World: the per-run testbed every experiment builds on.
//
// Reproduces the paper's §4.1 setup as a reusable object: a mobile client
// with WiFi and LTE interfaces, a wired server reachable over both paths,
// the access/WAN link chains, the contended WiFi channel, the device
// radios and the energy tracker. Scenario (single-connection figure runs)
// and workload::ClientFleet (multi-flow populations) both instantiate one
// World per (config, seed) and drive their own applications inside it.
//
// The client-connection factory lives here too: make_client() returns the
// protocol-appropriate ClientConnHandle (plain TCP, MPTCP, eMPTCP,
// WiFi-First, MDP) wired into the world's shared eMPTCP state (EIB +
// device-wide bandwidth predictor).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "app/client_handle.hpp"
#include "app/onoff_udp.hpp"
#include "app/scenario.hpp"
#include "core/bandwidth_predictor.hpp"
#include "core/energy_info_base.hpp"
#include "energy/energy_tracker.hpp"
#include "energy/radio.hpp"
#include "net/channel/mobility.hpp"
#include "net/channel/onoff_bandwidth.hpp"
#include "net/channel/wifi_channel.hpp"
#include "net/link.hpp"
#include "net/node.hpp"
#include "sim/simulation.hpp"

namespace emptcp::app {

class FastPath;

/// Fixed addressing of the testbed (the paper's single-server topology).
inline constexpr net::Addr kWifiAddr = 1;
inline constexpr net::Addr kCellAddr = 2;
inline constexpr net::Addr kServerAddr = 10;
inline constexpr net::Port kPort = 80;

/// Address-space stride between cells of a sharded fleet: cell i owns
/// [i*kAddrStride, (i+1)*kAddrStride), with the classic offsets (wifi +1,
/// cell +2, server +10) inside each block. Cell 0 is therefore exactly the
/// legacy single-cell layout, and classify_client_addr reduces to a modulo.
inline constexpr net::Addr kAddrStride = 16;

/// The addresses one World instance uses; defaults to the legacy layout.
struct Addressing {
  net::Addr wifi = kWifiAddr;
  net::Addr cell = kCellAddr;
  net::Addr server = kServerAddr;
};

/// Addressing of the i-th cell of a sharded fleet.
[[nodiscard]] inline Addressing cell_addressing(std::size_t cell) {
  const auto base = static_cast<net::Addr>(cell) * kAddrStride;
  return Addressing{base + kWifiAddr, base + kCellAddr, base + kServerAddr};
}

/// Maps a client address to the interface type it belongs to; used as the
/// MPTCP peer classifier on both ends. Works for any cell's address block.
net::InterfaceType classify_client_addr(net::Addr a);

/// The scenario's MPTCP knobs with the coupling flag and peer classifier
/// applied — what every connection (client or server side) is built from.
mptcp::MptcpConnection::Config make_mptcp_cfg(const ScenarioConfig& cfg,
                                              bool coupled);

/// The per-run world: fresh simulation, topology, radios and tracker.
struct World {
  World(const ScenarioConfig& cfg, std::uint64_t seed, Addressing addr = {});
  ~World();  // out of line: FastPath is incomplete here

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// Starts the configured environment dynamics (on-off WiFi, interfering
  /// stations, the walking route). Call once, after construction.
  void start_dynamics();

  /// Shared eMPTCP state: the EIB (lazily generated, or adopted via
  /// share_eib) and the device-wide predictor.
  const core::EnergyInfoBase& eib();
  core::BandwidthPredictor& predictor();

  /// Adopts an externally generated EIB instead of generating one —
  /// generation is the expensive part and lookups are const, so a sharded
  /// fleet builds it once and shares it across every cell. Must be called
  /// before the first eib() use; `shared` must outlive the world.
  void share_eib(const core::EnergyInfoBase& shared) { shared_eib_ = &shared; }

  const ScenarioConfig& scfg;
  const Addressing addrs;
  sim::Simulation sim;
  net::Node client;
  net::Node server;
  net::NetworkInterface* wifi_if = nullptr;
  net::NetworkInterface* cell_if = nullptr;
  net::NetworkInterface* srv_if = nullptr;
  std::unique_ptr<net::Link> wifi_acc_up, wifi_wan_up, wifi_wan_down,
      wifi_acc_down;
  std::unique_ptr<net::Link> cell_acc_up, cell_wan_up, cell_wan_down,
      cell_acc_down;
  net::WifiChannel channel;
  energy::RadioModel wifi_radio;
  energy::RadioModel cell_radio;
  energy::EnergyTracker tracker;
  std::optional<net::OnOffBandwidth> onoff;
  std::vector<std::unique_ptr<OnOffUdpSource>> interferers;
  std::optional<net::MobilityModel> mobility;
  /// Hybrid-fidelity coordinator; non-null iff scfg.fidelity == kHybrid.
  /// Declared after the links and tracker it references so it is destroyed
  /// first (its destructor detaches from the hub and clears fluid rates).
  std::unique_ptr<FastPath> fast_path;

 private:
  std::optional<core::EnergyInfoBase> eib_;
  const core::EnergyInfoBase* shared_eib_ = nullptr;
  std::unique_ptr<core::BandwidthPredictor> predictor_;
};

/// Builds the protocol-appropriate client connection inside `w`, targeting
/// the world's own server.
std::unique_ptr<ClientConnHandle> make_client(World& w, Protocol p);

/// Same, but targeting `server` — another cell's file server in a sharded
/// fleet, reached over the cross-shard backbone.
std::unique_ptr<ClientConnHandle> make_client(World& w, Protocol p,
                                              net::Addr server);

/// Shared run collection: everything derivable from the world plus the
/// caller-supplied completion state and byte count (multi-connection runs
/// have no single ClientConnHandle, so those arrive as parameters).
RunMetrics collect_core(World& w, bool completed, double download_time_s,
                        std::uint64_t bytes_received,
                        std::uint64_t controller_switches);

RunMetrics collect(World& w, const ClientConnHandle& client, bool completed,
                   double download_time_s);

/// Advances the simulation in 200 ms slices until `done()` or `deadline`.
void advance_until(World& w, const std::function<bool()>& done,
                   sim::Time deadline);

/// Runs until every tracked radio has fallen back to idle (the paper's
/// post-download tail energy), bounded by `max_drain`.
void drain_tails(World& w, sim::Duration max_drain);

}  // namespace emptcp::app
