#include "app/world.hpp"

#include <cmath>

#include "app/fast_path.hpp"
#include "baselines/mdp_scheduler.hpp"
#include "baselines/wifi_first.hpp"
#include "net/packet_pool.hpp"

namespace emptcp::app {
namespace {

constexpr sim::Duration kWifiAccessDelay = sim::milliseconds(2);
constexpr sim::Duration kCellAccessDelay = sim::milliseconds(15);

sim::Duration wan_delay(sim::Duration rtt, sim::Duration access) {
  const sim::Duration one_way = rtt / 2;
  return one_way > access ? one_way - access : sim::microseconds(100);
}

}  // namespace

net::InterfaceType classify_client_addr(net::Addr a) {
  switch (a % kAddrStride) {
    case kWifiAddr:
      return net::InterfaceType::kWifi;
    case kCellAddr:
      return net::InterfaceType::kLte;
    default:
      return net::InterfaceType::kEthernet;
  }
}

mptcp::MptcpConnection::Config make_mptcp_cfg(const ScenarioConfig& cfg,
                                              bool coupled) {
  mptcp::MptcpConnection::Config c = cfg.emptcp.mptcp;
  c.coupled_cc = coupled;
  c.classify_peer = classify_client_addr;
  return c;
}

World::World(const ScenarioConfig& cfg, std::uint64_t seed, Addressing addr)
    : scfg(cfg),
      addrs(addr),
      sim(seed),
      client(sim, "client"),
      server(sim, "server"),
      channel(sim, net::WifiChannel::Config{cfg.wifi.down_mbps, 0.008}),
      wifi_radio(cfg.device.wifi),
      cell_radio(cfg.cell_tech == energy::CellTech::kLte
                     ? cfg.device.lte
                     : cfg.device.threeg),
      tracker(sim, energy::EnergyTracker::Config{
                       sim::milliseconds(100), cfg.device.platform_mw,
                       cfg.record_series, 1}) {
  // Enable tracing before any instrumented object exists so construction
  // -time events (handshakes scheduled at t=0) are captured too.
  if (cfg.trace) sim.trace().enable();
  wifi_if = &client.add_interface(
      {net::InterfaceType::kWifi, addrs.wifi, "client-wifi"});
  // The cellular interface is typed kLte regardless of cell_tech: the
  // eMPTCP components key their cellular lookups on kLte, and the tech
  // only changes the energy parameters (cell_radio above).
  cell_if = &client.add_interface(
      {net::InterfaceType::kLte, addrs.cell, "client-cell"});
  srv_if = &server.add_interface(
      {net::InterfaceType::kEthernet, addrs.server, "server-eth"});

  auto mk = [this](double mbps, sim::Duration delay, double loss,
                   std::size_t queue, const char* name) {
    net::Link::Config lc;
    lc.rate_mbps = mbps;
    lc.prop_delay = delay;
    lc.loss_prob = loss;
    lc.queue_limit_bytes = queue;
    lc.name = name;
    return std::make_unique<net::Link>(sim, lc);
  };

  // WiFi path: client <-> AP (access) <-> Internet (wan) <-> server.
  wifi_acc_up = mk(cfg.wifi.up_mbps, kWifiAccessDelay, 0.0,
                   cfg.wifi.queue_bytes, "wifi-acc-up");
  wifi_wan_up = mk(1000.0, wan_delay(cfg.wifi.rtt, kWifiAccessDelay), 0.0,
                   1 << 20, "wifi-wan-up");
  wifi_wan_down = mk(1000.0, wan_delay(cfg.wifi.rtt, kWifiAccessDelay),
                     0.0, 1 << 20, "wifi-wan-down");
  wifi_acc_down = mk(cfg.wifi.down_mbps, kWifiAccessDelay, cfg.wifi.loss,
                     cfg.wifi.queue_bytes, "wifi-acc-down");

  // Cellular path.
  cell_acc_up = mk(cfg.cell.up_mbps, kCellAccessDelay, 0.0,
                   cfg.cell.queue_bytes, "cell-acc-up");
  cell_wan_up = mk(1000.0, wan_delay(cfg.cell.rtt, kCellAccessDelay), 0.0,
                   1 << 20, "cell-wan-up");
  cell_wan_down = mk(1000.0, wan_delay(cfg.cell.rtt, kCellAccessDelay),
                     0.0, 1 << 20, "cell-wan-down");
  cell_acc_down = mk(cfg.cell.down_mbps, kCellAccessDelay, cfg.cell.loss,
                     cfg.cell.queue_bytes, "cell-acc-down");

  // Wire the chains. Intermediate hops forward the pooled buffer with
  // chain_to (no per-hop copy); only the endpoints deliver by reference.
  wifi_if->set_default_route(*wifi_acc_up);
  wifi_acc_up->chain_to(*wifi_wan_up);
  wifi_wan_up->set_receiver(
      [this](const net::Packet& p) { srv_if->deliver(p); });
  cell_if->set_default_route(*cell_acc_up);
  cell_acc_up->chain_to(*cell_wan_up);
  cell_wan_up->set_receiver(
      [this](const net::Packet& p) { srv_if->deliver(p); });

  srv_if->add_route(addrs.wifi, *wifi_wan_down);
  srv_if->add_route(addrs.cell, *cell_wan_down);
  wifi_wan_down->chain_to(*wifi_acc_down);
  wifi_acc_down->set_receiver(
      [this](const net::Packet& p) { wifi_if->deliver(p); });
  cell_wan_down->chain_to(*cell_acc_down);
  cell_acc_down->set_receiver(
      [this](const net::Packet& p) { cell_if->deliver(p); });

  // The WiFi downlink is the contended medium the channel governs.
  channel.govern(*wifi_acc_down);

  tracker.track(*wifi_if, wifi_radio);
  tracker.track(*cell_if, cell_radio);

  if (cfg.fidelity == sim::Fidelity::kHybrid) {
    fast_path = std::make_unique<FastPath>(*this);
    // Any path-property change anywhere in the topology is a transient:
    // flows advancing analytically must drop back to packet level and
    // re-measure against the new path.
    const auto kick = [this] { fast_path->kick_all(); };
    for (net::Link* l :
         {wifi_acc_up.get(), wifi_wan_up.get(), wifi_wan_down.get(),
          wifi_acc_down.get(), cell_acc_up.get(), cell_wan_up.get(),
          cell_wan_down.get(), cell_acc_down.get()}) {
      l->set_transient_listener(kick);
    }
  }
}

World::~World() = default;

void World::start_dynamics() {
  if (scfg.wifi_onoff) {
    onoff.emplace(sim, *wifi_acc_down, scfg.onoff);
    onoff->also_govern(*wifi_acc_up);
    onoff->start();
  }
  for (int i = 0; i < scfg.interferers; ++i) {
    OnOffUdpSource::Config icfg;
    icfg.lambda_on = scfg.lambda_on;
    icfg.lambda_off = scfg.lambda_off;
    interferers.push_back(
        std::make_unique<OnOffUdpSource>(sim, channel, icfg));
    interferers.back()->start();
  }
  if (scfg.mobility) {
    mobility.emplace(sim, channel,
                     net::MobilityModel::umass_corridor_route());
    mobility->start();
  }
}

const core::EnergyInfoBase& World::eib() {
  if (shared_eib_) return *shared_eib_;
  if (!eib_) {
    eib_ = core::EnergyInfoBase::generate(
        scfg.device.model(scfg.cell_tech));
  }
  return *eib_;
}

core::BandwidthPredictor& World::predictor() {
  if (!predictor_) {
    predictor_ = std::make_unique<core::BandwidthPredictor>(
        sim, scfg.emptcp.predictor);
  }
  return *predictor_;
}

namespace {

/// Synthesises the 1-second (wifi, cell) bandwidth trace the MDP scheduler
/// learns its transition matrix from — the paper's "finite state machine of
/// throughput changes" — by replaying the scenario's configured dynamics.
std::vector<std::pair<double, double>> bandwidth_trace(
    const ScenarioConfig& cfg, std::uint64_t seed, int seconds = 900) {
  sim::Rng rng(seed ^ 0x9E3779B97F4A7C15ULL);
  std::vector<std::pair<double, double>> trace;
  trace.reserve(static_cast<std::size_t>(seconds));

  bool onoff_high = cfg.onoff.start_high;
  double onoff_next = 0.0;
  std::vector<bool> station_on(static_cast<std::size_t>(cfg.interferers),
                               false);
  std::vector<double> station_next(
      static_cast<std::size_t>(cfg.interferers), 0.0);

  net::MobilityModel::Config mob = net::MobilityModel::umass_corridor_route();

  for (int t = 0; t < seconds; ++t) {
    double wifi = cfg.wifi.down_mbps;
    if (cfg.wifi_onoff) {
      if (static_cast<double>(t) >= onoff_next) {
        onoff_high = !onoff_high;
        onoff_next = static_cast<double>(t) +
                     rng.exponential(onoff_high ? cfg.onoff.mean_high_s
                                                : cfg.onoff.mean_low_s);
      }
      wifi = onoff_high ? cfg.onoff.high_mbps : cfg.onoff.low_mbps;
    }
    int active = 0;
    for (std::size_t i = 0; i < station_on.size(); ++i) {
      if (static_cast<double>(t) >= station_next[i]) {
        station_on[i] = !station_on[i];
        const double rate = station_on[i] ? cfg.lambda_on : cfg.lambda_off;
        station_next[i] =
            static_cast<double>(t) + rng.exponential(1.0 / rate);
      }
      if (station_on[i]) ++active;
    }
    if (active > 0) wifi /= static_cast<double>(active + 1);
    if (cfg.mobility) {
      // Rate along the walking route, looped over the trace length.
      const double route_t =
          std::fmod(static_cast<double>(t), mob.route.back().t_s);
      const double d = [&] {
        net::Waypoint prev = mob.route.front();
        for (const net::Waypoint& w : mob.route) {
          if (route_t <= w.t_s) {
            const double span = w.t_s - prev.t_s;
            const double f = span > 0 ? (route_t - prev.t_s) / span : 0.0;
            const double x = prev.x + f * (w.x - prev.x);
            const double y = prev.y + f * (w.y - prev.y);
            return std::hypot(x - mob.ap_x, y - mob.ap_y);
          }
          prev = w;
        }
        return std::hypot(mob.route.back().x - mob.ap_x,
                          mob.route.back().y - mob.ap_y);
      }();
      if (d >= mob.usable_range_m) {
        wifi = mob.floor_mbps;
      } else {
        const double frac = d / mob.usable_range_m;
        wifi = std::max(mob.max_rate_mbps * (1.0 - frac * frac),
                        mob.floor_mbps);
      }
    }
    trace.emplace_back(wifi, cfg.cell.down_mbps);
  }
  return trace;
}

/// Standard MPTCP / single-path TCP / MDP client.
class MetaHandle final : public ClientConnHandle {
 public:
  MetaHandle(World& w, Protocol p, net::Addr server)
      : w_(w), proto_(p), server_(server) {
    const bool coupled = p == Protocol::kMptcp || p == Protocol::kMdp;
    meta_ = std::make_unique<mptcp::MptcpConnection>(
        w.sim, w.client, make_mptcp_cfg(w.scfg, coupled));

    if (p == Protocol::kMdp) {
      baseline::MdpScheduler::Config mcfg;
      mdp_.emplace(w.scfg.device.model(w.scfg.cell_tech), mcfg);
      mdp_->fit(bandwidth_trace(w.scfg, 12345));
      mdp_->solve();
      runner_ = std::make_unique<baseline::MdpRunner>(
          w.sim, *mdp_, *meta_, *w.wifi_if, *w.cell_if);
    }

    mptcp::MptcpConnection::Callbacks mcb;
    mcb.on_established = [this] {
      if (proto_ == Protocol::kMptcp || proto_ == Protocol::kMdp) {
        meta_->add_subflow(w_.addrs.cell);
      }
      if (cb_.on_established) cb_.on_established();
    };
    mcb.on_subflow_established = [this](mptcp::Subflow& sf) {
      if (runner_ && sf.iface() != net::InterfaceType::kWifi) {
        runner_->start();
      }
    };
    mcb.on_data = [this](std::uint64_t n) {
      if (cb_.on_data) cb_.on_data(n);
    };
    mcb.on_eof = [this] {
      if (cb_.on_eof) cb_.on_eof();
    };
    mcb.on_closed = [this] {
      if (runner_) runner_->stop();
      if (cb_.on_closed) cb_.on_closed();
    };
    meta_->set_callbacks(std::move(mcb));
  }

  void set_callbacks(Callbacks cb) override { cb_ = std::move(cb); }
  void set_app_tag(std::uint32_t tag) override { meta_->set_app_tag(tag); }
  void connect() override {
    const net::Addr local =
        proto_ == Protocol::kTcpLte ? w_.addrs.cell : w_.addrs.wifi;
    meta_->connect(local, server_, kPort);
  }
  void send(std::uint64_t bytes) override { meta_->send(bytes); }
  void shutdown_write() override { meta_->shutdown_write(); }
  [[nodiscard]] std::uint64_t bytes_received() const override {
    return meta_->data_bytes_received();
  }

 private:
  World& w_;
  Protocol proto_;
  net::Addr server_;
  Callbacks cb_;
  std::unique_ptr<mptcp::MptcpConnection> meta_;
  std::optional<baseline::MdpScheduler> mdp_;
  std::unique_ptr<baseline::MdpRunner> runner_;
};

class EmptcpHandle final : public ClientConnHandle {
 public:
  EmptcpHandle(World& w, net::Addr server) : w_(w), server_(server) {
    core::EmptcpConfig cfg = w.scfg.emptcp;
    cfg.mptcp = make_mptcp_cfg(w.scfg, /*coupled=*/true);
    conn_ = std::make_unique<core::EmptcpConnection>(
        w.sim, w.client, std::move(cfg), w.eib(), &w.predictor());
  }

  void set_callbacks(Callbacks cb) override {
    core::EmptcpConnection::Callbacks ecb;
    ecb.on_established = std::move(cb.on_established);
    ecb.on_data = std::move(cb.on_data);
    ecb.on_eof = std::move(cb.on_eof);
    ecb.on_closed = std::move(cb.on_closed);
    conn_->set_callbacks(std::move(ecb));
  }
  void set_app_tag(std::uint32_t tag) override {
    conn_->mptcp().set_app_tag(tag);
  }
  void connect() override {
    conn_->connect(w_.addrs.wifi, w_.addrs.cell, server_, kPort);
  }
  void send(std::uint64_t bytes) override { conn_->send(bytes); }
  void shutdown_write() override { conn_->shutdown_write(); }
  [[nodiscard]] std::uint64_t bytes_received() const override {
    return conn_->data_bytes_received();
  }
  [[nodiscard]] std::uint64_t controller_switches() const override {
    return conn_->controller().switch_count();
  }

 private:
  World& w_;
  net::Addr server_;
  std::unique_ptr<core::EmptcpConnection> conn_;
};

class WifiFirstHandle final : public ClientConnHandle {
 public:
  WifiFirstHandle(World& w, net::Addr server) : w_(w), server_(server) {
    conn_ = std::make_unique<baseline::WifiFirstConnection>(
        w.sim, w.client, make_mptcp_cfg(w.scfg, /*coupled=*/true));
  }

  void set_callbacks(Callbacks cb) override {
    mptcp::MptcpConnection::Callbacks mcb;
    mcb.on_established = std::move(cb.on_established);
    mcb.on_data = std::move(cb.on_data);
    mcb.on_eof = std::move(cb.on_eof);
    mcb.on_closed = std::move(cb.on_closed);
    conn_->set_callbacks(std::move(mcb));
  }
  void set_app_tag(std::uint32_t tag) override {
    conn_->mptcp().set_app_tag(tag);
  }
  void connect() override {
    conn_->connect(w_.addrs.wifi, w_.addrs.cell, server_, kPort);
  }
  void send(std::uint64_t bytes) override { conn_->send(bytes); }
  void shutdown_write() override { conn_->shutdown_write(); }
  [[nodiscard]] std::uint64_t bytes_received() const override {
    return conn_->mptcp().data_bytes_received();
  }

 private:
  World& w_;
  net::Addr server_;
  std::unique_ptr<baseline::WifiFirstConnection> conn_;
};

stats::Series to_series(
    const std::vector<energy::EnergyTracker::SeriesPoint>& pts) {
  stats::Series s;
  s.reserve(pts.size());
  for (const auto& p : pts) s.push_back(stats::Point{p.t_s, p.cumulative_j});
  return s;
}

stats::Series to_series(
    const std::vector<energy::EnergyTracker::RatePoint>& pts) {
  stats::Series s;
  s.reserve(pts.size());
  for (const auto& p : pts) s.push_back(stats::Point{p.t_s, p.mbps});
  return s;
}

}  // namespace

std::unique_ptr<ClientConnHandle> make_client(World& w, Protocol p) {
  return make_client(w, p, w.addrs.server);
}

std::unique_ptr<ClientConnHandle> make_client(World& w, Protocol p,
                                              net::Addr server) {
  switch (p) {
    case Protocol::kEmptcp:
      return std::make_unique<EmptcpHandle>(w, server);
    case Protocol::kWifiFirst:
      return std::make_unique<WifiFirstHandle>(w, server);
    default:
      return std::make_unique<MetaHandle>(w, p, server);
  }
}

RunMetrics collect_core(World& w, bool completed, double download_time_s,
                        std::uint64_t bytes_received,
                        std::uint64_t controller_switches) {
  RunMetrics m;
  m.completed = completed;
  m.download_time_s = download_time_s;
  m.energy_j = w.tracker.total_j();
  m.wifi_j = w.tracker.iface_j(w.wifi_if->type());
  m.cell_j = w.tracker.iface_j(w.cell_if->type());
  m.bytes_received = bytes_received;
  m.cellular_used = w.cell_if->rx_bytes() > 5000;
  m.cellular_activations = w.cell_radio.activations();
  m.controller_switches = controller_switches;
  m.wifi_capacity_mbps = w.scfg.wifi.down_mbps;
  m.cell_capacity_mbps = w.scfg.cell.down_mbps;
  if (download_time_s > 0.0) {
    m.mean_wifi_mbps = static_cast<double>(w.wifi_if->rx_bytes()) * 8.0 /
                       1e6 / download_time_s;
    m.mean_cell_mbps = static_cast<double>(w.cell_if->rx_bytes()) * 8.0 /
                       1e6 / download_time_s;
  }
  m.profile.events_executed = w.sim.scheduler().events_executed();
  m.profile.sched_slab_slots = w.sim.scheduler().slab_size();
  m.profile.packet_pool_slots = w.sim.context<net::PacketPool>().allocated();
  if (w.scfg.record_series) {
    m.energy_series = to_series(w.tracker.energy_series());
    m.wifi_rate_series = to_series(w.tracker.rate_series(w.wifi_if->type()));
    m.cell_rate_series = to_series(w.tracker.rate_series(w.cell_if->type()));
  }
  if (w.scfg.trace) {
    // Record the headline results as run.* gauges before snapshotting, so
    // the serialized trace carries them and the analysis layer can rebuild
    // every reported number from the trace alone.
    trace::Metrics& reg = w.sim.trace().metrics();
    reg.gauge("run.completed").set(completed ? 1.0 : 0.0);
    reg.gauge("run.download_time_s").set(download_time_s);
    reg.gauge("run.energy_j").set(m.energy_j);
    reg.gauge("run.wifi_j").set(m.wifi_j);
    reg.gauge("run.cell_j").set(m.cell_j);
    reg.gauge("run.bytes_received")
        .set(static_cast<double>(bytes_received));
    reg.gauge("sim.events_executed")
        .set(static_cast<double>(m.profile.events_executed));
    if (w.fast_path != nullptr) {
      reg.gauge("run.fluid_bytes")
          .set(static_cast<double>(w.fast_path->fluid_bytes()));
      reg.gauge("run.fluid_entries")
          .set(static_cast<double>(w.fast_path->fluid_entries()));
    }
    m.trace_events = w.sim.trace().events();
    m.trace_metrics = reg.snapshot();
    m.profile.trace_events = m.trace_events.size();
  }
  return m;
}

RunMetrics collect(World& w, const ClientConnHandle& client,
                   bool completed, double download_time_s) {
  return collect_core(w, completed, download_time_s, client.bytes_received(),
                      client.controller_switches());
}

void advance_until(World& w, const std::function<bool()>& done,
                   sim::Time deadline) {
  while (!done() && w.sim.now() < deadline) {
    w.sim.run_until(w.sim.now() + sim::milliseconds(200));
  }
}

void drain_tails(World& w, sim::Duration max_drain) {
  const sim::Time end = w.sim.now() + max_drain;
  advance_until(
      w, [&] { return w.tracker.all_idle(); }, end);
}

}  // namespace emptcp::app
