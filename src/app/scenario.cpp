#include "app/scenario.hpp"

#include <cstring>
#include <memory>

#include "app/bulk_download.hpp"
#include "app/world.hpp"

namespace emptcp::app {

const char* to_string(Protocol p) {
  switch (p) {
    case Protocol::kTcpWifi: return "TCP/WiFi";
    case Protocol::kTcpLte: return "TCP/LTE";
    case Protocol::kMptcp: return "MPTCP";
    case Protocol::kEmptcp: return "eMPTCP";
    case Protocol::kWifiFirst: return "WiFi-First";
    case Protocol::kMdp: return "MDP";
  }
  return "?";
}

std::optional<Protocol> protocol_from_string(std::string_view name) {
  // Accepts both the display names above and spec-friendly lowercase
  // aliases (no slashes), so campaign files read naturally.
  constexpr std::pair<std::string_view, Protocol> kNames[] = {
      {"TCP/WiFi", Protocol::kTcpWifi}, {"tcp-wifi", Protocol::kTcpWifi},
      {"TCP/LTE", Protocol::kTcpLte},   {"tcp-lte", Protocol::kTcpLte},
      {"MPTCP", Protocol::kMptcp},      {"mptcp", Protocol::kMptcp},
      {"eMPTCP", Protocol::kEmptcp},    {"emptcp", Protocol::kEmptcp},
      {"WiFi-First", Protocol::kWifiFirst},
      {"wifi-first", Protocol::kWifiFirst},
      {"MDP", Protocol::kMdp},          {"mdp", Protocol::kMdp},
  };
  for (const auto& [n, p] : kNames) {
    if (name == n) return p;
  }
  return std::nullopt;
}

RunMetrics Scenario::run_download(Protocol p, std::uint64_t bytes,
                                  std::uint64_t seed) {
  World w(cfg_, seed);

  FileServer::Config scfg;
  scfg.port = kPort;
  scfg.request_bytes = cfg_.request_bytes;
  scfg.close_after_response = true;
  scfg.resolver = [bytes](std::size_t, std::size_t req) {
    return req == 0 ? bytes : 0;
  };
  scfg.mptcp = make_mptcp_cfg(cfg_, true);
  FileServer server(w.sim, w.server, std::move(scfg));

  auto client = make_client(w, p);
  bool eof = false;
  double eof_at = 0.0;
  ClientConnHandle::Callbacks cb;
  cb.on_established = [&] { client->send(cfg_.request_bytes); };
  cb.on_eof = [&] {
    eof = true;
    eof_at = sim::to_seconds(w.sim.now());
    client->shutdown_write();
  };
  client->set_callbacks(std::move(cb));

  w.tracker.start();
  w.start_dynamics();
  client->connect();

  advance_until(w, [&] { return eof; }, cfg_.max_sim_time);
  const bool completed = eof;
  if (completed) drain_tails(w, cfg_.max_drain);
  w.tracker.stop();
  return collect(w, *client, completed,
                 completed ? eof_at : sim::to_seconds(w.sim.now()));
}

RunMetrics Scenario::run_upload(Protocol p, std::uint64_t bytes,
                                std::uint64_t seed) {
  World w(cfg_, seed);

  // The server is a pure sink: it never responds, and half-closes its own
  // write side once the client finishes uploading.
  FileServer::Config scfg;
  scfg.port = kPort;
  scfg.request_bytes = cfg_.request_bytes;
  scfg.close_after_response = false;
  scfg.resolver = [](std::size_t, std::size_t) { return 0; };
  scfg.mptcp = make_mptcp_cfg(cfg_, true);
  FileServer server(w.sim, w.server, std::move(scfg));

  auto client = make_client(w, p);
  bool done = false;
  double done_at = 0.0;
  ClientConnHandle::Callbacks cb;
  cb.on_established = [&] {
    client->send(bytes);
    client->shutdown_write();
  };
  cb.on_closed = [&] {
    done = true;
    done_at = sim::to_seconds(w.sim.now());
  };
  client->set_callbacks(std::move(cb));

  w.tracker.start();
  w.start_dynamics();
  client->connect();

  advance_until(w, [&] { return done; }, cfg_.max_sim_time);
  const bool completed = done;
  if (completed) drain_tails(w, cfg_.max_drain);
  w.tracker.stop();

  RunMetrics m = collect(w, *client, completed,
                         completed ? done_at : sim::to_seconds(w.sim.now()));
  // For uploads the interesting byte count is what the device pushed out.
  m.bytes_received = completed ? bytes : 0;
  if (m.download_time_s > 0.0) {
    m.mean_wifi_mbps = static_cast<double>(w.wifi_if->tx_bytes()) * 8.0 /
                       1e6 / m.download_time_s;
    m.mean_cell_mbps = static_cast<double>(w.cell_if->tx_bytes()) * 8.0 /
                       1e6 / m.download_time_s;
  }
  return m;
}

RunMetrics Scenario::run_timed(Protocol p, sim::Duration duration,
                               std::uint64_t seed) {
  World w(cfg_, seed);

  FileServer::Config scfg;
  scfg.port = kPort;
  scfg.request_bytes = cfg_.request_bytes;
  scfg.close_after_response = false;  // endless stream
  scfg.resolver = [](std::size_t, std::size_t req) {
    return req == 0 ? std::uint64_t{1} << 40 : 0;  // effectively unbounded
  };
  scfg.mptcp = make_mptcp_cfg(cfg_, true);
  FileServer server(w.sim, w.server, std::move(scfg));

  auto client = make_client(w, p);
  ClientConnHandle::Callbacks cb;
  cb.on_established = [&] { client->send(cfg_.request_bytes); };
  client->set_callbacks(std::move(cb));

  w.tracker.start();
  w.start_dynamics();
  client->connect();

  w.sim.run_until(duration);
  w.tracker.stop();
  return collect(w, *client, true, sim::to_seconds(duration));
}

RunMetrics Scenario::run_stream(Protocol p,
                                VideoStreamClient::Config stream,
                                std::uint64_t seed) {
  World w(cfg_, seed);

  // The server answers every request with one media chunk.
  FileServer::Config scfg;
  scfg.port = kPort;
  scfg.request_bytes = stream.request_bytes;
  scfg.close_after_response = false;
  scfg.resolver = [chunk = stream.chunk_bytes](std::size_t, std::size_t) {
    return chunk;
  };
  scfg.mptcp = make_mptcp_cfg(cfg_, true);
  FileServer server(w.sim, w.server, std::move(scfg));

  bool finished = false;
  VideoStreamClient player(w.sim, stream, make_client(w, p),
                           [&] { finished = true; });

  w.tracker.start();
  w.start_dynamics();
  player.start();

  advance_until(w, [&] { return finished; }, cfg_.max_sim_time);
  const bool completed = finished;
  if (completed) drain_tails(w, cfg_.max_drain);
  w.tracker.stop();

  RunMetrics m = collect(w, player.connection(), completed,
                         completed ? player.stats().finished_at_s
                                   : sim::to_seconds(w.sim.now()));
  m.startup_delay_s = player.stats().started_at_s;
  m.stall_time_s = player.stats().stall_time_s;
  m.rebuffer_events = player.stats().rebuffer_events;
  return m;
}

RunMetrics Scenario::run_web_page(Protocol p, const WebPage& page,
                                  std::size_t parallel, std::uint64_t seed) {
  World w(cfg_, seed);

  FileServer::Config scfg;
  scfg.port = kPort;
  scfg.request_bytes = cfg_.request_bytes;
  scfg.close_after_response = false;  // persistent connections
  scfg.resolver = [&page, parallel](std::size_t conn, std::size_t req) {
    return page.object_for(conn, req, parallel);
  };
  scfg.mptcp = make_mptcp_cfg(cfg_, true);
  FileServer server(w.sim, w.server, std::move(scfg));

  bool loaded = false;
  double loaded_at = 0.0;
  WebBrowserClient::Config bcfg;
  bcfg.parallel = parallel;
  bcfg.request_bytes = cfg_.request_bytes;
  WebBrowserClient browser(
      page, bcfg, [&] { return make_client(w, p); },
      [&] {
        loaded = true;
        loaded_at = sim::to_seconds(w.sim.now());
      });

  w.tracker.start();
  w.start_dynamics();
  browser.start();

  advance_until(w, [&] { return loaded; }, cfg_.max_sim_time);
  const bool completed = loaded;
  if (completed) drain_tails(w, cfg_.max_drain);
  w.tracker.stop();

  return collect_core(w, completed,
                      completed ? loaded_at : sim::to_seconds(w.sim.now()),
                      browser.bytes_received(), 0);
}

}  // namespace emptcp::app
