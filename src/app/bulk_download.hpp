// File server and request framing.
//
// All the paper's download workloads are client-initiated HTTP-style
// fetches: the client sends a fixed-size request, the server responds with
// a counted payload. FileServer accepts MPTCP (and plain-TCP) connections,
// counts request bytes, and answers each complete request with the size the
// resolver dictates:
//   * bulk downloads — resolver returns the file size for request 0, and
//     the server half-closes after the response (close_after_response);
//   * web browsing — resolver maps (connection index, request index) to an
//     object size on a persistent connection; the server half-closes only
//     when the client does.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "mptcp/meta_socket.hpp"

namespace emptcp::app {

class FileServer {
 public:
  struct Config {
    net::Port port = 80;
    std::uint64_t request_bytes = 200;  ///< request framing unit
    bool close_after_response = true;
    /// Size of the response to the `request_index`-th request on the
    /// `conn_index`-th accepted connection. Return 0 to ignore a request.
    std::function<std::uint64_t(std::size_t conn_index,
                                std::size_t request_index)>
        resolver;
    mptcp::MptcpConnection::Config mptcp;
  };

  FileServer(sim::Simulation& sim, net::Node& node, Config cfg);

  [[nodiscard]] std::size_t accepted_connections() const {
    return states_.size();
  }
  [[nodiscard]] std::uint64_t responses_sent() const { return responses_; }

 private:
  struct ConnState {
    mptcp::MptcpConnection* conn = nullptr;
    std::size_t index = 0;
    std::uint64_t pending = 0;  ///< request bytes not yet consumed
    std::size_t requests = 0;
  };

  void on_accept(mptcp::MptcpConnection& conn);
  void on_request_data(ConnState& st, std::uint64_t newly);

  Config cfg_;
  std::unique_ptr<mptcp::MptcpListener> listener_;
  std::vector<std::unique_ptr<ConnState>> states_;
  std::uint64_t responses_ = 0;
};

}  // namespace emptcp::app
