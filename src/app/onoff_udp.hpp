// Background-traffic generator (paper §4.4).
//
// "each node generates UDP traffic according to a two state Markov on-off
//  process, with rates (per second) λon and λoff."
//
// Each OnOffUdpSource models one interfering WiFi station: it holds in the
// ON state for Exp(1/λon) seconds and OFF for Exp(1/λoff) seconds. While ON
// it contends for the channel (registered with the WifiChannel, which
// shrinks the device's airtime share and raises collision loss) and can
// optionally inject real UDP datagrams into a link so queues see cross
// traffic (tests use this; the channel-level contention effect is the one
// the paper's experiments measure, since interferers are distinct stations
// whose frames do not sit in the device's AP queue).
#pragma once

#include <cstdint>

#include "net/channel/wifi_channel.hpp"
#include "net/link.hpp"
#include "sim/simulation.hpp"

namespace emptcp::app {

class OnOffUdpSource {
 public:
  struct Config {
    double lambda_on = 0.05;   ///< rate of leaving ON (mean on-time 1/λ s)
    double lambda_off = 0.05;  ///< rate of leaving OFF
    bool start_on = false;
    /// If set, real UDP datagrams are injected into this link while ON.
    net::Link* inject_into = nullptr;
    double inject_rate_mbps = 6.0;
    std::uint32_t datagram_bytes = 1200;
    net::Addr src = 900;
    net::Addr dst = 901;
  };

  OnOffUdpSource(sim::Simulation& sim, net::WifiChannel& channel, Config cfg);

  void start();

  [[nodiscard]] bool on() const { return on_; }
  [[nodiscard]] std::uint64_t datagrams_sent() const { return sent_; }

 private:
  void flip();
  void schedule_flip();
  void emit();

  sim::Simulation& sim_;
  net::WifiChannel& channel_;
  Config cfg_;
  std::size_t channel_slot_;
  bool on_ = false;
  std::uint64_t sent_ = 0;
};

}  // namespace emptcp::app
