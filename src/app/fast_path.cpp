#include "app/fast_path.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "app/world.hpp"
#include "mptcp/subflow.hpp"
#include "net/packet.hpp"

namespace emptcp::app {
namespace {

net::InterfaceType iface_type(int i) {
  return i == 0 ? net::InterfaceType::kWifi : net::InterfaceType::kLte;
}

/// EMPTCP_FASTPATH_DEBUG=1 narrates every state transition to stderr —
/// the fast track for "why does this flow never go fluid?".
bool debug_enabled() {
  static const bool on = std::getenv("EMPTCP_FASTPATH_DEBUG") != nullptr;
  return on;
}

}  // namespace

FastPath::FastPath(World& w, Config cfg) : w_(w), cfg_(cfg) {
  mptcp::fastpath_hub(w_.sim).listener = this;
}

FastPath::~FastPath() {
  mptcp::FastPathHub& hub = mptcp::fastpath_hub(w_.sim);
  if (hub.listener == this) hub.listener = nullptr;
  apply_wire_load(WireLoad{});
}

FastPath::Flow* FastPath::find(const mptcp::MptcpConnection& conn) {
  for (Flow& f : flows_) {
    if (!f.dead && (f.client == &conn || f.server == &conn)) return &f;
  }
  return nullptr;
}

void FastPath::on_conn_established(mptcp::MptcpConnection& conn) {
  // Pair client and server endpoints by token; a flow only exists once
  // both ends are up, because analytic advancement moves them in lockstep.
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    mptcp::MptcpConnection* other = *it;
    if (other->token() == conn.token() &&
        other->is_server() != conn.is_server()) {
      pending_.erase(it);
      Flow f;
      f.client = conn.is_server() ? other : &conn;
      f.server = conn.is_server() ? &conn : other;
      flows_.push_back(f);
      // A new flow shrinks every peer's fair share: frozen fluid rates are
      // stale the moment it starts competing, so everyone re-measures.
      kick_all();
      return;
    }
  }
  pending_.push_back(&conn);
}

void FastPath::on_conn_destroyed(mptcp::MptcpConnection& conn) {
  pending_.erase(std::remove(pending_.begin(), pending_.end(), &conn),
                 pending_.end());
  Flow* f = find(conn);
  if (f == nullptr) return;
  // Never leave the surviving end frozen: a paused sender would otherwise
  // sit on its backlog forever.
  if (f->sender != nullptr && f->sender != &conn && f->sender->tx_paused()) {
    f->sender->set_tx_paused(false);
  }
  f->dead = true;
  f->client = f->server = f->sender = f->receiver = nullptr;
  if (!in_tick_) {
    flows_.erase(std::remove_if(flows_.begin(), flows_.end(),
                                [](const Flow& x) { return x.dead; }),
                 flows_.end());
    if (flows_.empty()) disarm();
  }
  // The departed flow's bandwidth is up for grabs; peers frozen at their
  // old fair share would never claim it (and packet-level survivors would
  // expand past theirs), so everyone re-measures the new regime.
  kick_all();
}

void FastPath::on_conn_transient(mptcp::MptcpConnection& conn) {
  Flow* f = find(conn);
  if (f != nullptr) {
    drop_to_measure(*f, "transient");
    arm();  // a parked governor wakes on the first sign of activity
  }
}

void FastPath::kick_all() {
  for (Flow& f : flows_) {
    if (!f.dead) drop_to_measure(f, "link-change");
  }
  if (!flows_.empty()) arm();
}

void FastPath::arm() {
  if (armed_) return;
  armed_ = true;
  idle_ticks_ = 0;
  last_tick_ = w_.sim.now();
  // Half-quantum phase offset: the EnergyTracker samples on multiples of
  // its own (equal) period, and interleaving the two chains keeps a
  // macro-step from landing on the exact sampling instant.
  const std::uint64_t epoch = ++epoch_;
  w_.sim.in(cfg_.quantum / 2 + cfg_.quantum, [this, epoch] { tick(epoch); });
}

void FastPath::disarm() {
  if (!armed_) return;
  armed_ = false;
  ++epoch_;  // retire the scheduled tick
  apply_wire_load(WireLoad{});  // release energy metering and link shares
}

void FastPath::drop_to_measure(Flow& f, const char* why) {
  if (debug_enabled() && f.state != State::kMeasure) {
    std::fprintf(stderr, "fastpath t=%.3f flow=%p drop (%s)\n",
                 sim::to_seconds(w_.sim.now()), static_cast<void*>(f.client),
                 why);
  }
  if (f.sender != nullptr && f.sender->tx_paused()) {
    f.sender->set_tx_paused(false);
  }
  f.state = State::kMeasure;
  f.stable = 0;
  f.drain = 0;
  f.last_total = 0.0;
  for (int i = 0; i < kIfaces; ++i) {
    f.carry[i] = 0.0;
    // Re-baseline the receive counters: fluid mode advanced them in lumps
    // that must not pollute the next rate measurement.
    mptcp::Subflow* sf =
        f.receiver != nullptr ? f.receiver->subflow_on(iface_type(i)) : nullptr;
    f.last_rx[i] = sf != nullptr ? sf->socket().app_bytes_received() : 0;
  }
}

bool FastPath::measure(Flow& f, double dt) {
  // Direction follows the unassigned backlog: the side with data queued is
  // the sender (the server, in every download scenario).
  const std::uint64_t pc = f.client->macro_pending_bytes();
  const std::uint64_t ps = f.server->macro_pending_bytes();
  mptcp::MptcpConnection* sender = ps >= pc ? f.server : f.client;
  if (sender != f.sender) {
    f.sender = sender;
    f.receiver = sender == f.server ? f.client : f.server;
    f.stable = 0;
    f.last_total = 0.0;
    for (int i = 0; i < kIfaces; ++i) {
      mptcp::Subflow* sf = f.receiver->subflow_on(iface_type(i));
      f.last_rx[i] = sf != nullptr ? sf->socket().app_bytes_received() : 0;
    }
    return true;  // first measurement starts next tick
  }
  // EWMA-smoothed per-interface rates: at fleet scale a flow's fair share
  // is a handful of packets per quantum, so the instantaneous tick-to-tick
  // rate swings with pure arrival quantization. The smoothed rate is what
  // fluid mode freezes; stability compares the instantaneous rate against
  // it with both a relative spread and an absolute few-MSS floor.
  constexpr double kAlpha = 0.4;
  const bool first = f.last_total <= 0.0;
  double inst_total = 0.0;
  double ewma_total = 0.0;
  for (int i = 0; i < kIfaces; ++i) {
    mptcp::Subflow* sf = f.receiver->subflow_on(iface_type(i));
    const std::uint64_t cur =
        sf != nullptr ? sf->socket().app_bytes_received() : 0;
    const std::uint64_t delta = cur >= f.last_rx[i] ? cur - f.last_rx[i] : 0;
    f.last_rx[i] = cur;
    const double inst = static_cast<double>(delta) / dt;
    f.rate_bps[i] = first ? inst : (1.0 - kAlpha) * f.rate_bps[i] + kAlpha * inst;
    inst_total += inst;
    ewma_total += f.rate_bps[i];
  }
  const double slack = cfg_.stability_spread * ewma_total +
                       3.0 * static_cast<double>(net::kMss) / dt;
  if (inst_total > 0.0 && !first &&
      std::abs(inst_total - ewma_total) <= slack) {
    ++f.stable;
  } else {
    f.stable = 0;
  }
  f.last_total = ewma_total;
  return inst_total > 0.0;
}

void FastPath::try_enter(Flow& f) {
  if (f.sender == nullptr || f.receiver == nullptr) return;
  if (f.sender->macro_pending_bytes() < cfg_.min_fluid_bytes) return;
  if (f.stable < cfg_.stable_ticks) return;
  const double quantum_s = sim::to_seconds(cfg_.quantum);
  bool any = false;
  for (int i = 0; i < kIfaces; ++i) {
    if (f.rate_bps[i] * quantum_s < 1.0) continue;  // iface carries nothing
    mptcp::Subflow* snd = f.sender->subflow_on(iface_type(i));
    mptcp::Subflow* rcv = f.receiver->subflow_on(iface_type(i));
    if (snd == nullptr || rcv == nullptr || !snd->usable()) return;
    // Slow start is a transient by definition: the window doubles per RTT
    // and the analytic model assumes the CA sawtooth. Checked per carrying
    // interface only — a suspended backup subflow idles in slow start
    // forever and must not veto the others.
    if (snd->socket().congestion_control().in_slow_start()) return;
    net::NetworkInterface* ci = i == 0 ? w_.wifi_if : w_.cell_if;
    if (!ci->is_up()) return;
    any = true;
  }
  if (!any) return;
  if (debug_enabled()) {
    std::fprintf(stderr,
                 "fastpath t=%.3f flow=%p drain (pending=%llu wifi=%.0fB/s "
                 "cell=%.0fB/s)\n",
                 sim::to_seconds(w_.sim.now()), static_cast<void*>(f.client),
                 static_cast<unsigned long long>(f.sender->macro_pending_bytes()),
                 f.rate_bps[0], f.rate_bps[1]);
  }
  f.sender->set_tx_paused(true);
  f.state = State::kDraining;
  f.drain = 0;
}

void FastPath::fluid_step(Flow& f, double dt, const double rate[kIfaces],
                          WireLoad& load) {
  if (!f.sender->can_macro_step_send() || !f.receiver->can_macro_step_recv()) {
    drop_to_measure(f, "not-quiescent");
    return;
  }
  std::uint64_t remaining = f.sender->macro_pending_bytes();
  if (remaining <= cfg_.tail_bytes) {
    drop_to_measure(f, "tail");  // finish at packet level
    return;
  }
  std::uint64_t avail = remaining - cfg_.tail_bytes;
  for (int i = 0; i < kIfaces && avail > 0; ++i) {
    const double want = rate[i] * dt + f.carry[i];
    auto bytes = static_cast<std::uint64_t>(want);
    f.carry[i] = want - static_cast<double>(bytes);
    bytes = std::min(bytes, avail);
    if (bytes == 0) continue;
    const net::InterfaceType type = iface_type(i);
    mptcp::Subflow* snd = f.sender->subflow_on(type);
    net::NetworkInterface* ci = i == 0 ? w_.wifi_if : w_.cell_if;
    if (snd == nullptr || !ci->is_up()) {
      drop_to_measure(f, "iface-down");
      return;
    }
    avail -= bytes;
    // Cap the analytic window at the measured BDP plus headroom: this
    // drives the CA sawtooth (CongestionControl::macro_advance) and bounds
    // the burst released when the flow drops back to packet level.
    const double srtt_s = sim::to_seconds(snd->socket().srtt());
    const std::uint64_t cap =
        static_cast<std::uint64_t>(rate[i] * srtt_s * 1.5) + 3ull * net::kMss;
    f.sender->macro_advance_send(type, bytes, cap);
    f.receiver->macro_advance_recv(type, bytes);
    // A data/data-acked callback may have queued more data or closed the
    // write side; the transient notification then reset this flow.
    if (f.dead || f.state != State::kFluid) return;
    // Wire-byte accounting the packets would have produced: MSS-sized
    // data segments one way, one pure ACK per segment the other.
    const std::uint64_t segs = (bytes + net::kMss - 1) / net::kMss;
    const std::uint64_t data_wire = bytes + segs * net::Packet::kHeaderBytes;
    const std::uint64_t ack_wire = segs * net::Packet::kHeaderBytes;
    const bool down = f.receiver == f.client;  // server -> client transfer
    ci->macro_account(down ? ack_wire : data_wire,
                      down ? data_wire : ack_wire);
    w_.srv_if->macro_account(down ? data_wire : ack_wire,
                             down ? ack_wire : data_wire);
    load.total[i] += static_cast<double>(data_wire + ack_wire) / dt;
    load.down[i] += static_cast<double>(down ? data_wire : ack_wire) / dt;
    load.up[i] += static_cast<double>(down ? ack_wire : data_wire) / dt;
    fluid_bytes_ += bytes;
  }
}

void FastPath::apply_wire_load(const WireLoad& load) {
  for (int i = 0; i < kIfaces; ++i) {
    net::NetworkInterface* ci = i == 0 ? w_.wifi_if : w_.cell_if;
    if (load.total[i] > 0.0) {
      w_.tracker.set_fluid_rate(*ci, load.total[i]);
    } else {
      w_.tracker.clear_fluid_rate(*ci);
    }
    // Fluid traffic must keep occupying the path it bypasses: without
    // this, packet-level peers expand into the vacated bandwidth and the
    // aggregate throughput exceeds the physical line.
    net::Link* down[2] = {i == 0 ? w_.wifi_wan_down.get() : w_.cell_wan_down.get(),
                          i == 0 ? w_.wifi_acc_down.get() : w_.cell_acc_down.get()};
    net::Link* up[2] = {i == 0 ? w_.wifi_acc_up.get() : w_.cell_acc_up.get(),
                        i == 0 ? w_.wifi_wan_up.get() : w_.cell_wan_up.get()};
    for (net::Link* l : down) l->set_background_bps(load.down[i] * 8.0);
    for (net::Link* l : up) l->set_background_bps(load.up[i] * 8.0);
  }
}

void FastPath::tick(std::uint64_t epoch) {
  if (!armed_ || epoch != epoch_) return;
  const sim::Time now = w_.sim.now();
  const double dt = sim::to_seconds(now - last_tick_);
  last_tick_ = now;
  in_tick_ = true;
  bool any_active = false;
  if (dt > 0.0) {
    // Phase 1: advance per-flow state machines (measurement, entry,
    // drain promotion). Track busy<->idle edges: a flow finishing its
    // transfer or going quiet for think time frees (or reclaims) link
    // share, and fluid peers frozen at the old allocation must
    // re-measure — connection-membership callbacks never see this
    // because closed-loop fleets keep connections alive across flows.
    bool load_changed = false;
    for (Flow& f : flows_) {
      if (f.dead) continue;
      bool busy = true;
      switch (f.state) {
        case State::kMeasure: {
          const bool moved = measure(f, dt);
          if (moved) any_active = true;
          try_enter(f);
          if (f.state != State::kMeasure) any_active = true;
          const std::uint64_t pending =
              std::max(f.client->macro_pending_bytes(),
                       f.server->macro_pending_bytes());
          busy = moved || pending > 0 || f.state != State::kMeasure;
          break;
        }
        case State::kDraining:
          any_active = true;
          if (f.sender->can_macro_step_send() &&
              f.receiver->can_macro_step_recv()) {
            f.state = State::kFluid;
            ++fluid_entries_;
            for (double& c : f.carry) c = 0.0;
            if (debug_enabled()) {
              std::fprintf(stderr, "fastpath t=%.3f flow=%p fluid\n",
                           sim::to_seconds(now),
                           static_cast<void*>(f.client));
            }
          } else if (++f.drain > cfg_.max_drain_ticks) {
            drop_to_measure(f, "drain-timeout");  // never went quiescent
          }
          break;
        case State::kFluid:
          any_active = true;
          break;
      }
      if (busy != f.busy) {
        f.busy = busy;
        load_changed = true;
      }
    }
    if (load_changed) {
      for (Flow& f : flows_) {
        if (!f.dead && f.state != State::kMeasure) {
          drop_to_measure(f, "load-change");
        }
      }
    }
    // Phase 2: aggregate-and-equalize. Each flow's frozen measurement
    // captured whatever point of the AIMD sawtooth it happened to be on;
    // packet-level AIMD keeps re-equalizing same-bottleneck flows, so
    // freezing the individual rates locks a transient imbalance in for
    // the whole fluid residence. Splitting the *aggregate* measured rate
    // evenly across the fluid flows carrying an interface (per
    // direction) matches the packet model's converged allocation while
    // conserving the total, and the sum is additionally clamped to the
    // access link's capacity in case the measurements predate a peer
    // going fluid.
    const double quantum_s = sim::to_seconds(cfg_.quantum);
    double demand[kIfaces][2] = {{0.0, 0.0}, {0.0, 0.0}};  // [iface][down?]
    int carriers[kIfaces][2] = {{0, 0}, {0, 0}};
    for (const Flow& f : flows_) {
      if (f.dead || f.state != State::kFluid) continue;
      const int down = f.receiver == f.client ? 1 : 0;
      for (int i = 0; i < kIfaces; ++i) {
        if (f.rate_bps[i] * quantum_s < 1.0) continue;
        demand[i][down] += f.rate_bps[i];
        ++carriers[i][down];
      }
    }
    const double cap_bps[kIfaces][2] = {
        {w_.wifi_acc_up->rate_mbps() * 1e6 / 8.0,
         w_.wifi_acc_down->rate_mbps() * 1e6 / 8.0},
        {w_.cell_acc_up->rate_mbps() * 1e6 / 8.0,
         w_.cell_acc_down->rate_mbps() * 1e6 / 8.0}};
    // Phase 3: advance fluid flows at their equalized share, then publish
    // the aggregate wire rate to the energy tracker (window metering) and
    // to the links (background occupancy seen by the remaining packet
    // flows).
    WireLoad load;
    for (Flow& f : flows_) {
      if (f.dead || f.state != State::kFluid) continue;
      const int down = f.receiver == f.client ? 1 : 0;
      double rate[kIfaces];
      for (int i = 0; i < kIfaces; ++i) {
        if (f.rate_bps[i] * quantum_s < 1.0 || carriers[i][down] == 0) {
          rate[i] = 0.0;
          continue;
        }
        const double total = std::min(demand[i][down], cap_bps[i][down]);
        rate[i] = total / carriers[i][down];
      }
      fluid_step(f, dt, rate, load);
    }
    apply_wire_load(load);
  }
  in_tick_ = false;
  flows_.erase(std::remove_if(flows_.begin(), flows_.end(),
                              [](const Flow& x) { return x.dead; }),
               flows_.end());
  if (flows_.empty()) {
    disarm();
    return;
  }
  // Park when every flow has been quiet for a while: an armed governor is
  // a self-perpetuating event chain, and an idle fleet (think time, a
  // finished timed run with live connections) must let the scheduler go
  // quiescent. Any transient — an app write, a link change — re-arms.
  if (dt > 0.0) {
    if (any_active) {
      idle_ticks_ = 0;
    } else if (++idle_ticks_ >= cfg_.idle_park_ticks) {
      disarm();
      return;
    }
  }
  w_.sim.in(cfg_.quantum, [this, epoch] { tick(epoch); });
}

}  // namespace emptcp::app
