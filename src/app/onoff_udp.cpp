#include "app/onoff_udp.hpp"

namespace emptcp::app {

OnOffUdpSource::OnOffUdpSource(sim::Simulation& sim,
                               net::WifiChannel& channel, Config cfg)
    : sim_(sim),
      channel_(channel),
      cfg_(cfg),
      channel_slot_(channel.register_interferer()),
      on_(cfg.start_on) {}

void OnOffUdpSource::start() {
  channel_.set_interferer_active(channel_slot_, on_);
  if (on_ && cfg_.inject_into != nullptr) emit();
  schedule_flip();
}

void OnOffUdpSource::schedule_flip() {
  const double rate = on_ ? cfg_.lambda_on : cfg_.lambda_off;
  const double mean_s = 1.0 / rate;
  sim_.in(sim::from_seconds(sim_.rng().exponential(mean_s)),
          [this] { flip(); });
}

void OnOffUdpSource::flip() {
  on_ = !on_;
  channel_.set_interferer_active(channel_slot_, on_);
  if (on_ && cfg_.inject_into != nullptr) emit();
  schedule_flip();
}

void OnOffUdpSource::emit() {
  if (!on_ || cfg_.inject_into == nullptr) return;
  net::Packet pkt;
  pkt.udp = true;
  pkt.src = cfg_.src;
  pkt.dst = cfg_.dst;
  pkt.payload = cfg_.datagram_bytes;
  cfg_.inject_into->send(pkt);
  ++sent_;
  const double bits = static_cast<double>(pkt.wire_bytes()) * 8.0;
  const sim::Duration gap =
      sim::from_seconds(bits / (cfg_.inject_rate_mbps * 1e6));
  sim_.in(gap, [this] { emit(); });
}

}  // namespace emptcp::app
