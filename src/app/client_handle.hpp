// Type-erased client connection.
//
// The evaluation harness runs the same applications over every protocol
// variant (TCP over WiFi, TCP over LTE, standard MPTCP, eMPTCP, WiFi-First,
// MDP-scheduled MPTCP). ClientConnHandle is the minimal app-facing surface
// they all share — mirroring the paper's point that MPTCP variants hide
// behind a standard socket, so applications need no changes.
#pragma once

#include <cstdint>
#include <functional>

namespace emptcp::app {

class ClientConnHandle {
 public:
  struct Callbacks {
    std::function<void()> on_established;
    std::function<void(std::uint64_t newly)> on_data;
    std::function<void()> on_eof;
    std::function<void()> on_closed;
  };

  virtual ~ClientConnHandle() = default;

  virtual void set_callbacks(Callbacks cb) = 0;
  /// Tags the connection before connect() (see Packet::app_tag). Default:
  /// untagged.
  virtual void set_app_tag(std::uint32_t) {}
  /// Opens the connection (local/remote addressing is fixed at creation).
  virtual void connect() = 0;
  virtual void send(std::uint64_t bytes) = 0;
  virtual void shutdown_write() = 0;
  [[nodiscard]] virtual std::uint64_t bytes_received() const = 0;
  /// Path-usage switches made by the protocol's controller (0 for
  /// protocols without one).
  [[nodiscard]] virtual std::uint64_t controller_switches() const {
    return 0;
  }
};

}  // namespace emptcp::app
