// Web-browsing workload (paper §5.4).
//
// "we deploy a copy of CNN's home page (as of 9/11/2014), which consists of
//  107 Web objects ... the Android web browser establishes six parallel
//  (MP)TCP connections to the server, with HTTP persistent connections."
//
// WebPage synthesises an object-size distribution shaped like that page
// (many small objects — "almost all objects in the Web page are small
// (<256 KB)" — a few tens of KB of images, one large-ish document).
// WebBrowserClient fetches a page over `parallel` persistent connections;
// objects are assigned round-robin (object k goes to connection k mod P, in
// order), which both ends compute identically, standing in for HTTP's
// explicit framing. Page-load latency is the time until every object has
// fully arrived.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "app/client_handle.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace emptcp::app {

struct WebPage {
  std::vector<std::uint64_t> object_sizes;

  [[nodiscard]] std::uint64_t total_bytes() const;

  /// CNN-home-page-like composition: `objects` items, log-normal body with
  /// a heavy-ish tail, clamped below 256 KB.
  static WebPage cnn_like(std::uint64_t seed, std::size_t objects = 107);

  /// The object fetched as the `request_index`-th request of connection
  /// `conn_index` under round-robin assignment; returns 0 size when that
  /// connection has no more objects.
  [[nodiscard]] std::uint64_t object_for(std::size_t conn_index,
                                         std::size_t request_index,
                                         std::size_t parallel) const;
};

class WebBrowserClient {
 public:
  struct Config {
    std::size_t parallel = 6;
    std::uint64_t request_bytes = 200;
  };

  using ConnFactory = std::function<std::unique_ptr<ClientConnHandle>()>;
  using OnPageLoaded = std::function<void()>;

  WebBrowserClient(const WebPage& page, Config cfg, ConnFactory factory,
                   OnPageLoaded on_loaded);

  /// Opens all connections and starts fetching.
  void start();

  [[nodiscard]] bool page_loaded() const { return remaining_objects_ == 0; }
  [[nodiscard]] std::uint64_t bytes_received() const;

 private:
  struct Conn {
    std::unique_ptr<ClientConnHandle> handle;
    std::size_t index = 0;
    std::size_t next_request = 0;
    std::uint64_t expected = 0;  ///< bytes of the in-flight object left
    bool done = false;
  };

  void request_next(Conn& c);
  void on_conn_data(Conn& c, std::uint64_t newly);

  const WebPage& page_;
  Config cfg_;
  ConnFactory factory_;
  OnPageLoaded on_loaded_;
  std::vector<std::unique_ptr<Conn>> conns_;
  std::size_t remaining_objects_;
};

}  // namespace emptcp::app
