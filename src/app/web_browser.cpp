#include "app/web_browser.hpp"

#include <algorithm>

namespace emptcp::app {

std::uint64_t WebPage::total_bytes() const {
  std::uint64_t total = 0;
  for (std::uint64_t s : object_sizes) total += s;
  return total;
}

WebPage WebPage::cnn_like(std::uint64_t seed, std::size_t objects) {
  sim::Rng rng(seed);
  WebPage page;
  page.object_sizes.reserve(objects);
  // First object: the HTML document (~100 KB).
  page.object_sizes.push_back(100 * 1024);
  for (std::size_t i = 1; i < objects; ++i) {
    // Log-normal around ~6 KB with a moderate tail: scripts, styles,
    // thumbnails. Clamp to [300 B, 250 KB] — the paper notes almost all
    // objects are below 256 KB.
    const double raw = rng.lognormal(std::log(6.0 * 1024.0), 1.1);
    const auto size = static_cast<std::uint64_t>(
        std::clamp(raw, 300.0, 250.0 * 1024.0));
    page.object_sizes.push_back(size);
  }
  return page;
}

std::uint64_t WebPage::object_for(std::size_t conn_index,
                                  std::size_t request_index,
                                  std::size_t parallel) const {
  const std::size_t id = request_index * parallel + conn_index;
  return id < object_sizes.size() ? object_sizes[id] : 0;
}

WebBrowserClient::WebBrowserClient(const WebPage& page, Config cfg,
                                   ConnFactory factory,
                                   OnPageLoaded on_loaded)
    : page_(page),
      cfg_(cfg),
      factory_(std::move(factory)),
      on_loaded_(std::move(on_loaded)),
      remaining_objects_(page.object_sizes.size()) {}

void WebBrowserClient::start() {
  for (std::size_t i = 0; i < cfg_.parallel; ++i) {
    auto conn = std::make_unique<Conn>();
    conn->handle = factory_();
    conn->index = i;
    // Tag 1-based so "untagged" stays distinguishable server-side.
    conn->handle->set_app_tag(static_cast<std::uint32_t>(i) + 1);
    Conn* raw = conn.get();
    conns_.push_back(std::move(conn));

    ClientConnHandle::Callbacks cb;
    cb.on_established = [this, raw] { request_next(*raw); };
    cb.on_data = [this, raw](std::uint64_t newly) {
      on_conn_data(*raw, newly);
    };
    raw->handle->set_callbacks(std::move(cb));
    raw->handle->connect();
  }
}

void WebBrowserClient::request_next(Conn& c) {
  const std::uint64_t size =
      page_.object_for(c.index, c.next_request, cfg_.parallel);
  if (size == 0) {
    c.done = true;
    c.handle->shutdown_write();
    return;
  }
  ++c.next_request;
  c.expected = size;
  c.handle->send(cfg_.request_bytes);
}

void WebBrowserClient::on_conn_data(Conn& c, std::uint64_t newly) {
  while (newly > 0 && c.expected > 0) {
    const std::uint64_t used = std::min(newly, c.expected);
    c.expected -= used;
    newly -= used;
    if (c.expected == 0) {
      --remaining_objects_;
      if (remaining_objects_ == 0 && on_loaded_) on_loaded_();
      request_next(c);
    }
  }
}

std::uint64_t WebBrowserClient::bytes_received() const {
  std::uint64_t total = 0;
  for (const auto& c : conns_) total += c->handle->bytes_received();
  return total;
}

}  // namespace emptcp::app
