#include "app/bulk_download.hpp"

namespace emptcp::app {

FileServer::FileServer(sim::Simulation& sim, net::Node& node, Config cfg)
    : cfg_(std::move(cfg)) {
  listener_ = std::make_unique<mptcp::MptcpListener>(
      sim, node, cfg_.port, cfg_.mptcp,
      [this](mptcp::MptcpConnection& conn) { on_accept(conn); });
}

void FileServer::on_accept(mptcp::MptcpConnection& conn) {
  auto st = std::make_unique<ConnState>();
  st->conn = &conn;
  // Connections identify themselves via the app tag (the web workload's
  // stand-in for request URLs); untagged connections fall back to accept
  // order, which is fine for single-connection workloads.
  st->index = conn.app_tag() != 0 ? conn.app_tag() - 1 : states_.size();
  ConnState* raw = st.get();
  states_.push_back(std::move(st));

  mptcp::MptcpConnection::Callbacks cb;
  cb.on_data = [this, raw](std::uint64_t newly) {
    on_request_data(*raw, newly);
  };
  cb.on_eof = [raw] {
    // Client closed its write side: finish our side once responses drain.
    raw->conn->shutdown_write();
  };
  conn.set_callbacks(std::move(cb));
}

void FileServer::on_request_data(ConnState& st, std::uint64_t newly) {
  st.pending += newly;
  while (st.pending >= cfg_.request_bytes) {
    st.pending -= cfg_.request_bytes;
    const std::uint64_t size =
        cfg_.resolver ? cfg_.resolver(st.index, st.requests) : 0;
    ++st.requests;
    if (size == 0) continue;
    ++responses_;
    st.conn->send(size);
    if (cfg_.close_after_response) st.conn->shutdown_write();
  }
}

}  // namespace emptcp::app
