// EMPTCP_TRACE: the instrumentation gate.
//
// Usage at a decision point (simref is anything with a .trace() accessor
// returning trace::TraceSink&, i.e. the owning Simulation):
//
//   EMPTCP_TRACE(sim, cwnd(sim.now(), id, cwnd_, ssthresh_));
//
// Compile-time gate: building with -DEMPTCP_TRACE_COMPILED=0 removes every
// site entirely (the CMake option EMPTCP_TRACE controls this, default ON).
// Runtime gate: when compiled in, each site is a load of the sink's cached
// bool and a predictable branch — no allocation, no virtual call. The
// arguments are not evaluated unless the sink is recording, so sites may
// pass expressions that would be wasteful to compute on the disabled path.
// "Recording" covers both full event retention (sink.enable) and the
// always-on bounded flight recorder; sites that fire record into whichever
// of the two is active.
#pragma once

#include "trace/sink.hpp"

#ifndef EMPTCP_TRACE_COMPILED
#define EMPTCP_TRACE_COMPILED 1
#endif

#if EMPTCP_TRACE_COMPILED
#define EMPTCP_TRACE(simref, call)                            \
  do {                                                        \
    ::emptcp::trace::TraceSink& emptcp_ts_ = (simref).trace(); \
    if (emptcp_ts_.recording()) {                             \
      emptcp_ts_.call;                                        \
    }                                                         \
  } while (0)
#else
#define EMPTCP_TRACE(simref, call) \
  do {                             \
  } while (0)
#endif
