#include "trace/sink.hpp"

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

namespace emptcp::trace {
namespace {
thread_local TraceSink* t_current_sink = nullptr;

/// Per-process ordinal of the calling thread, assigned on first use —
/// cheap worker identity for dump paths (thread::id has no stable text).
std::uint32_t thread_ordinal() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

/// Keeps [A-Za-z0-9_-], maps everything else (slashes, dots, spaces,
/// gtest's '/' parameterized-test separators) to '-'.
std::string sanitize(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    out += ok ? c : '-';
  }
  if (out.empty()) out = "dump";
  return out;
}

}  // namespace

std::string dump_flight_to_file(const FlightRecorder& fr,
                                std::string_view context,
                                std::string_view why) {
  const char* dir = std::getenv("EMPTCP_FLIGHT_DIR");
  if (dir == nullptr || *dir == '\0' || fr.total() == 0) return "";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // best effort; open decides
  static std::atomic<std::uint64_t> seq{0};
#ifdef _WIN32
  const auto pid = static_cast<unsigned long>(_getpid());
#else
  const auto pid = static_cast<unsigned long>(::getpid());
#endif
  const std::string path =
      std::string(dir) + "/" + sanitize(context) + "-p" +
      std::to_string(pid) + "-w" + std::to_string(thread_ordinal()) + "-" +
      std::to_string(seq.fetch_add(1, std::memory_order_relaxed)) +
      ".flight.txt";
  std::ofstream out(path, std::ios::binary);
  if (!out) return "";
  out << why << "\n" << fr.dump();
  out.flush();
  return out ? path : "";
}

TraceSink* current_sink() { return t_current_sink; }

namespace detail {
TraceSink* set_current_sink(TraceSink* s) {
  TraceSink* prev = t_current_sink;
  t_current_sink = s;
  return prev;
}
}  // namespace detail

std::vector<Event> FlightRecorder::tail() const {
  std::vector<Event> out;
  const std::size_t n = size();
  out.reserve(n);
  const std::uint64_t first = total_ - n;
  for (std::uint64_t i = first; i < total_; ++i) {
    out.push_back(ring_[i % kCapacity]);
  }
  return out;
}

std::string FlightRecorder::dump() const {
  // Raw record layout, self-contained (no dependency on the stats
  // exporters): forensic output for panic paths and test failures.
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "flight recorder: %" PRIu64 " events recorded, last %zu:\n",
                total_, size());
  out += buf;
  for (const Event& e : tail()) {
    std::snprintf(buf, sizeof(buf),
                  "  t=%" PRId64 " kind=%s id=%" PRIu32
                  " label=%s label2=%s i0=%" PRId64 " i1=%" PRId64
                  " d0=%g d1=%g\n",
                  static_cast<std::int64_t>(e.t), to_string(e.kind), e.id,
                  e.label == nullptr ? "-" : e.label,
                  e.label2 == nullptr ? "-" : e.label2, e.i0, e.i1, e.d0,
                  e.d1);
    out += buf;
  }
  return out;
}

const char* to_string(Kind k) {
  switch (k) {
    case Kind::kTcpState: return "tcp_state";
    case Kind::kCwnd: return "cwnd";
    case Kind::kSrtt: return "srtt";
    case Kind::kSchedPick: return "sched_pick";
    case Kind::kMpPrio: return "mp_prio";
    case Kind::kModeChange: return "mode_change";
    case Kind::kRadioState: return "radio_state";
    case Kind::kEnergySample: return "energy_sample";
    case Kind::kChannelRate: return "channel_rate";
    case Kind::kFlowStart: return "flow_start";
    case Kind::kFlowComplete: return "flow_complete";
    case Kind::kWarning: return "warning";
  }
  return "?";
}

Counter& Metrics::counter(std::string_view name) {
  for (Counter& c : counters_) {
    if (c.name_ == name) return c;
  }
  counters_.push_back(Counter(std::string(name)));
  return counters_.back();
}

Gauge& Metrics::gauge(std::string_view name) {
  for (Gauge& g : gauges_) {
    if (g.name_ == name) return g;
  }
  gauges_.push_back(Gauge(std::string(name)));
  return gauges_.back();
}

std::vector<MetricSnapshot> Metrics::snapshot() const {
  std::vector<MetricSnapshot> out;
  out.reserve(counters_.size() + gauges_.size());
  for (const Counter& c : counters_) {
    out.push_back({c.name(), static_cast<double>(c.value())});
  }
  for (const Gauge& g : gauges_) {
    out.push_back({g.name(), g.value()});
  }
  return out;
}

}  // namespace emptcp::trace
