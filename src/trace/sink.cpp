#include "trace/sink.hpp"

namespace emptcp::trace {

const char* to_string(Kind k) {
  switch (k) {
    case Kind::kTcpState: return "tcp_state";
    case Kind::kCwnd: return "cwnd";
    case Kind::kSrtt: return "srtt";
    case Kind::kSchedPick: return "sched_pick";
    case Kind::kMpPrio: return "mp_prio";
    case Kind::kModeChange: return "mode_change";
    case Kind::kRadioState: return "radio_state";
    case Kind::kEnergySample: return "energy_sample";
    case Kind::kChannelRate: return "channel_rate";
    case Kind::kWarning: return "warning";
  }
  return "?";
}

Counter& Metrics::counter(std::string_view name) {
  for (Counter& c : counters_) {
    if (c.name_ == name) return c;
  }
  counters_.push_back(Counter(std::string(name)));
  return counters_.back();
}

Gauge& Metrics::gauge(std::string_view name) {
  for (Gauge& g : gauges_) {
    if (g.name_ == name) return g;
  }
  gauges_.push_back(Gauge(std::string(name)));
  return gauges_.back();
}

std::vector<MetricSnapshot> Metrics::snapshot() const {
  std::vector<MetricSnapshot> out;
  out.reserve(counters_.size() + gauges_.size());
  for (const Counter& c : counters_) {
    out.push_back({c.name(), static_cast<double>(c.value())});
  }
  for (const Gauge& g : gauges_) {
    out.push_back({g.name(), g.value()});
  }
  return out;
}

}  // namespace emptcp::trace
