// Typed trace event records (the observability layer's wire format).
//
// One Event is a fixed-size POD: recording never allocates beyond the
// amortised growth of the sink's event vector, and the record order is the
// deterministic event-core execution order, so a serialized trace is a
// reproducible artifact of (scenario, seed) — byte-identical whether the
// replication ran sequentially or on a pool worker.
//
// Fields are kind-specific; the exporters (stats/trace_export.hpp) give
// them schema names. String fields must point at static storage (state
// names, interface names): the sink stores the pointer, never a copy.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace emptcp::trace {

enum class Kind : std::uint8_t {
  kTcpState,      ///< TCP state-machine transition
  kCwnd,          ///< congestion window / ssthresh update
  kSrtt,          ///< smoothed RTT / RTO update
  kSchedPick,     ///< scheduler assigned fresh data to a subflow
  kMpPrio,        ///< subflow priority (MP_PRIO backup flag) changed
  kModeChange,    ///< eMPTCP path-usage decision changed
  kRadioState,    ///< radio power-state transition (idle/promo/active/tail)
  kEnergySample,  ///< one EnergyTracker sampling window for one interface
  kChannelRate,   ///< channel/link rate change (on-off, contention, walk)
  kFlowStart,     ///< workload flow issued its request (fleet runs)
  kFlowComplete,  ///< workload flow fully delivered; carries FCT + energy
  kWarning,       ///< anomaly worth surfacing (e.g. counter went backwards)
};

const char* to_string(Kind k);

struct Event {
  sim::Time t = 0;
  Kind kind = Kind::kWarning;
  std::uint32_t id = 0;          ///< flow port / subflow id / iface code
  const char* label = nullptr;   ///< kind-specific name (static storage)
  const char* label2 = nullptr;  ///< second name (static storage)
  std::int64_t i0 = 0;
  std::int64_t i1 = 0;
  double d0 = 0.0;
  double d1 = 0.0;
};

}  // namespace emptcp::trace
