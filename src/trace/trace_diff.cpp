#include "trace/trace_diff.hpp"

namespace emptcp::trace {
namespace {

/// Pull the next line out of `text` starting at `pos`. Returns false when
/// exhausted. Handles a missing trailing newline.
bool next_line(std::string_view text, std::size_t& pos,
               std::string_view& line) {
  if (pos >= text.size()) return false;
  const std::size_t nl = text.find('\n', pos);
  if (nl == std::string_view::npos) {
    line = text.substr(pos);
    pos = text.size();
  } else {
    line = text.substr(pos, nl - pos);
    pos = nl + 1;
  }
  return true;
}

}  // namespace

std::string TraceDiff::describe() const {
  if (identical) return "traces identical";
  std::string out = "traces diverge at line " + std::to_string(line);
  out += "\n  a: ";
  out += a_line;
  out += "\n  b: ";
  out += b_line;
  return out;
}

TraceDiff diff_trace_text(std::string_view a, std::string_view b) {
  TraceDiff d;
  std::size_t pa = 0;
  std::size_t pb = 0;
  std::size_t lineno = 0;
  for (;;) {
    std::string_view la;
    std::string_view lb;
    const bool ha = next_line(a, pa, la);
    const bool hb = next_line(b, pb, lb);
    if (!ha && !hb) return d;
    ++lineno;
    if (!ha || !hb || la != lb) {
      d.identical = false;
      d.line = lineno;
      d.a_line = ha ? std::string(la) : "<missing>";
      d.b_line = hb ? std::string(lb) : "<missing>";
      return d;
    }
  }
}

}  // namespace emptcp::trace
