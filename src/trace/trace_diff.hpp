// Line-oriented diff for serialized traces.
//
// Traces are deterministic, so two runs of the same (scenario, seed) must
// serialize byte-identically; when they don't, the first divergent line is
// the debugging entry point. Used by the golden-trace tier-1 tests and
// available to humans via the exporters' JSONL output.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace emptcp::trace {

struct TraceDiff {
  bool identical = true;
  std::size_t line = 0;  ///< 1-based first divergent line (0 if identical)
  std::string a_line;    ///< line from trace A ("<missing>" if absent)
  std::string b_line;    ///< line from trace B ("<missing>" if absent)

  /// Human-readable one-paragraph description for test failure messages.
  [[nodiscard]] std::string describe() const;
};

/// Compare two serialized traces (JSONL or CSV text) line by line.
TraceDiff diff_trace_text(std::string_view a, std::string_view b);

}  // namespace emptcp::trace
