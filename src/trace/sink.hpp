// TraceSink: per-Simulation structured tracing and metrics.
//
// Design goals, in order:
//   1. Near-zero cost when disabled. Every instrumentation site compiles to
//      a load of one cached bool plus a branch (see trace/trace.hpp); no
//      stream, no string, no allocation. bench_micro measures this path and
//      records allocs/op in BENCH_core.json so regressions are visible.
//   2. Determinism. The sink belongs to one Simulation and is filled from
//      the single-threaded event core, so the recorded sequence is a pure
//      function of (scenario, seed). Serialized traces are byte-identical
//      across sequential and parallel replication runs — which is what lets
//      golden-trace diffs double as a regression harness.
//   3. Typed records. Each instrumented decision point calls a dedicated
//      record method; exporters in stats/ give the fields schema names.
//
// The metrics registry rides along: named monotonic counters and
// last-value gauges. Registration (find-or-create) allocates and belongs
// in constructors; handles are stable pointers, so hot-path increments are
// a single add through a cached pointer, enabled or not.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "trace/event.hpp"

namespace emptcp::trace {

class Metrics;

/// Monotonic counter. Obtain via Metrics::counter(); pointer-stable.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_; }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  friend class Metrics;
  explicit Counter(std::string name) : name_(std::move(name)) {}
  std::string name_;
  std::uint64_t value_ = 0;
};

/// Last-value gauge. Obtain via Metrics::gauge(); pointer-stable.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  [[nodiscard]] double value() const { return value_; }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  friend class Metrics;
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  std::string name_;
  double value_ = 0.0;
};

/// One exported metric value (counters widen to double losslessly for the
/// magnitudes this simulator produces).
struct MetricSnapshot {
  std::string name;
  double value = 0.0;
};

class Metrics {
 public:
  /// Find-or-create by name. Allocates on first use of a name — call from
  /// constructors, cache the returned pointer for the hot path.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);

  /// Registration-order snapshot (counters first, then gauges), the order
  /// exporters serialize — deterministic because registration order is.
  [[nodiscard]] std::vector<MetricSnapshot> snapshot() const;

  [[nodiscard]] const std::deque<Counter>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::deque<Gauge>& gauges() const { return gauges_; }

 private:
  // deque: handles must stay valid as the registry grows.
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
};

/// Bounded last-N ring of trace events — the simulator's flight recorder.
/// Always on (capacity is fixed at compile time, writes are an index mask
/// and a POD copy), so the most recent instrumented activity is available
/// for post-mortem dumps even when full event retention is disabled.
class FlightRecorder {
 public:
  static constexpr std::size_t kCapacity = 256;

  void record(const Event& e) {
    ring_[total_ % kCapacity] = e;
    ++total_;
  }
  void clear() { total_ = 0; }

  /// Events ever recorded (retained tail is min(total, kCapacity)).
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::size_t size() const {
    return total_ < kCapacity ? static_cast<std::size_t>(total_) : kCapacity;
  }

  /// Retained tail, oldest first.
  [[nodiscard]] std::vector<Event> tail() const;

  /// Human-readable dump of the tail (raw record layout, one line per
  /// event) for invariant-violation and test-failure forensics.
  [[nodiscard]] std::string dump() const;

 private:
  std::array<Event, kCapacity> ring_{};
  std::uint64_t total_ = 0;
};

/// Out-of-band consumer of every recorded event, invoked synchronously
/// from push(). The invariant oracle (check::Oracle) attaches through
/// this to watch live runs without perturbing retention or determinism.
class EventObserver {
 public:
  virtual ~EventObserver() = default;
  virtual void on_trace_event(const Event& e) = 0;
};

class TraceSink {
 public:
  /// The one hot-path query; instrumentation macros branch on it. True when
  /// anything wants the record: full event retention (enabled), the
  /// always-on flight recorder, or an attached observer.
  [[nodiscard]] bool recording() const { return recording_; }

  /// Full event retention (the exported trace stream).
  [[nodiscard]] bool enabled() const { return enabled_; }
  void enable(bool on = true) {
    enabled_ = on;
    recompute_recording();
  }

  /// The bounded flight-recorder ring; on by default. Turning it off (with
  /// retention also off and no observer) reduces every instrumentation
  /// site to a cached bool load and branch.
  void flight_enable(bool on = true) {
    flight_on_ = on;
    recompute_recording();
  }
  [[nodiscard]] bool flight_enabled() const { return flight_on_; }
  [[nodiscard]] const FlightRecorder& flight() const { return flight_; }
  FlightRecorder& flight() { return flight_; }

  // Typed record methods. Call only when recording() — the EMPTCP_TRACE
  // macro enforces the gate so fully-disabled runs never reach these.
  void tcp_state(sim::Time t, std::uint32_t flow, const char* from,
                 const char* to) {
    push({t, Kind::kTcpState, flow, from, to, 0, 0, 0.0, 0.0});
  }
  void cwnd(sim::Time t, std::uint32_t flow, std::uint64_t cwnd_bytes,
            std::uint64_t ssthresh_bytes) {
    push({t, Kind::kCwnd, flow, nullptr, nullptr,
          static_cast<std::int64_t>(cwnd_bytes),
          static_cast<std::int64_t>(ssthresh_bytes), 0.0, 0.0});
  }
  void srtt(sim::Time t, std::uint32_t flow, sim::Duration srtt_ns,
            sim::Duration rto_ns) {
    push({t, Kind::kSrtt, flow, nullptr, nullptr, srtt_ns, rto_ns, 0.0, 0.0});
  }
  void sched_pick(sim::Time t, std::uint32_t subflow, const char* iface,
                  std::uint64_t data_seq, std::uint32_t len) {
    push({t, Kind::kSchedPick, subflow, iface, nullptr,
          static_cast<std::int64_t>(data_seq), len, 0.0, 0.0});
  }
  void mp_prio(sim::Time t, std::uint32_t subflow, const char* iface,
               bool backup, const char* origin) {
    push({t, Kind::kMpPrio, subflow, iface, origin, backup ? 1 : 0, 0, 0.0,
          0.0});
  }
  void mode_change(sim::Time t, const char* from, const char* to,
                   double wifi_mbps, double cell_mbps) {
    push({t, Kind::kModeChange, 0, from, to, 0, 0, wifi_mbps, cell_mbps});
  }
  void radio_state(sim::Time t, std::uint32_t iface_code, const char* iface,
                   const char* state) {
    push({t, Kind::kRadioState, iface_code, iface, state, 0, 0, 0.0, 0.0});
  }
  void energy_sample(sim::Time t, std::uint32_t iface_code, const char* iface,
                     double mbps, double power_mw) {
    push({t, Kind::kEnergySample, iface_code, iface, nullptr, 0, 0, mbps,
          power_mw});
  }
  void channel_rate(sim::Time t, const char* what, double mbps,
                    double extra = 0.0) {
    push({t, Kind::kChannelRate, 0, what, nullptr, 0, 0, mbps, extra});
  }
  void flow_start(sim::Time t, std::uint32_t flow, std::uint64_t bytes) {
    push({t, Kind::kFlowStart, flow, nullptr, nullptr,
          static_cast<std::int64_t>(bytes), 0, 0.0, 0.0});
  }
  void flow_complete(sim::Time t, std::uint32_t flow, std::uint64_t bytes,
                     double fct_s, double energy_j_est) {
    push({t, Kind::kFlowComplete, flow, nullptr, nullptr,
          static_cast<std::int64_t>(bytes), 0, fct_s, energy_j_est});
  }
  void warning(sim::Time t, const char* what, std::int64_t v0 = 0,
               std::int64_t v1 = 0) {
    push({t, Kind::kWarning, 0, what, nullptr, v0, v1, 0.0, 0.0});
  }

  [[nodiscard]] const std::vector<Event>& events() const { return events_; }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  void clear() { events_.clear(); }

  /// Installs an event observer; returns the previous one so callers can
  /// save/restore LIFO-style. Pass nullptr to remove.
  EventObserver* set_observer(EventObserver* obs) {
    EventObserver* prev = observer_;
    observer_ = obs;
    recompute_recording();
    return prev;
  }
  [[nodiscard]] EventObserver* observer() const { return observer_; }

  Metrics& metrics() { return metrics_; }
  [[nodiscard]] const Metrics& metrics() const { return metrics_; }

 private:
  void push(const Event& e) {
    if (enabled_) events_.push_back(e);
    if (flight_on_) flight_.record(e);
    if (observer_ != nullptr) observer_->on_trace_event(e);
  }

  void recompute_recording() {
    recording_ = enabled_ || flight_on_ || observer_ != nullptr;
  }

  bool enabled_ = false;
  bool flight_on_ = true;
  bool recording_ = true;  ///< any consumer active, cached for the gate
  EventObserver* observer_ = nullptr;
  std::vector<Event> events_;
  FlightRecorder flight_;
  Metrics metrics_;
};

/// When EMPTCP_FLIGHT_DIR is set, writes `why` + the recorder's dump()
/// into that directory (created if missing) and returns the path written;
/// returns "" when the variable is unset, the recorder is empty, or the
/// write failed. The file name embeds the sanitized `context` (test or
/// cell name), the process id, a per-process thread ordinal and an atomic
/// sequence number — collision-free by construction when tests or
/// campaign cells run concurrently under EMPTCP_JOBS > 1, where a
/// name-only scheme would interleave or overwrite dumps.
std::string dump_flight_to_file(const FlightRecorder& fr,
                                std::string_view context,
                                std::string_view why);

/// Thread-local "most recently constructed, still alive" sink, maintained
/// by sim::Simulation. Lets out-of-band observers — the gtest failure
/// listener, signal-style panic paths — find the flight recorder of the
/// simulation under test without threading a reference through every call.
/// Returns nullptr when no Simulation is alive on this thread.
[[nodiscard]] TraceSink* current_sink();

namespace detail {
/// Pushes `s` as the thread's current sink; returns the previous one so
/// the caller (Simulation's destructor) can restore it LIFO-style.
TraceSink* set_current_sink(TraceSink* s);
}  // namespace detail

}  // namespace emptcp::trace
