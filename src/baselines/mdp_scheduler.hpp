// Markov-Decision-Process path scheduler of Pluntke et al. [24]
// (paper §4.6 / related work).
//
// Their design: discretise the (WiFi, cellular) bandwidth pair into states,
// learn a state-transition matrix from observed throughput traces, and
// solve (offline — they offload this to the cloud) for the policy
// minimising expected discounted *power* with unit time 1 s. The policy
// maps each bandwidth state to one of {WiFi-only, cellular-only, both}.
//
// The paper reproduces their scheduler in simulation and observes: with an
// energy model in which LTE power per second never drops below WiFi's, the
// MDP policy chooses WiFi-only in every state, so it inherits exactly the
// performance (and limitations) of TCP over WiFi. The value-iteration
// solver below, fed our device models, reproduces that conclusion
// (bench_sec46_baselines prints the full policy).
//
// MdpRunner applies a solved policy to a live MptcpConnection at 1-second
// epochs, the way the paper "simulates their behaviors given our
// experimental scenarios and energy model".
#pragma once

#include <cstdint>
#include <vector>

#include "energy/power_model.hpp"
#include "mptcp/meta_socket.hpp"
#include "sim/simulation.hpp"
#include "sim/timer.hpp"

namespace emptcp::baseline {

class MdpScheduler {
 public:
  enum class Action { kWifiOnly, kCellOnly, kBoth };
  static const char* to_string(Action a);

  struct Config {
    /// Bin upper edges in Mbps; a throughput x falls in the first bin whose
    /// edge exceeds it (the last bin is open-ended). Bin "0" means the
    /// interface is effectively unusable. The defaults stay inside the
    /// paper's operating envelope (<~10 Mbps): with the Huang et al. [14]
    /// constants, WiFi's per-Mbps power term overtakes LTE's base above
    /// ~13.6 Mbps, where an MDP would (correctly, for that model) stop
    /// preferring WiFi — a regime the paper's experiments never enter.
    std::vector<double> wifi_edges{0.1, 1.0, 4.0, 8.0};
    std::vector<double> cell_edges{0.1, 1.0, 4.0, 8.0};
    double discount = 0.95;
    /// Cost charged for choosing a path whose bandwidth bin is 0 (the
    /// transfer stalls); large enough to dominate any power cost.
    double unusable_cost_mw = 1e7;
  };

  MdpScheduler(energy::EnergyModel model, Config cfg);

  [[nodiscard]] std::size_t state_count() const {
    return wifi_bins_ * cell_bins_;
  }
  [[nodiscard]] std::size_t state_of(double wifi_mbps,
                                     double cell_mbps) const;

  /// Learns the transition matrix from a throughput trace sampled at the
  /// epoch length (1 s), as Pluntke et al. learn their finite state machine
  /// of throughput changes. Unvisited states self-loop.
  void fit(const std::vector<std::pair<double, double>>& trace);

  /// Value iteration; returns the number of sweeps performed.
  int solve(int max_sweeps = 1000, double tolerance = 1e-6);

  [[nodiscard]] Action policy(std::size_t state) const;
  [[nodiscard]] Action action_for(double wifi_mbps, double cell_mbps) const;

  /// Immediate cost (expected power in mW over one epoch) of taking `a` in
  /// `state`; exposed for tests and the bench printout.
  [[nodiscard]] double cost(std::size_t state, Action a) const;

 private:
  [[nodiscard]] std::size_t wifi_bin(double mbps) const;
  [[nodiscard]] std::size_t cell_bin(double mbps) const;
  [[nodiscard]] double bin_center(const std::vector<double>& edges,
                                  std::size_t bin) const;

  energy::EnergyModel model_;
  Config cfg_;
  std::size_t wifi_bins_;
  std::size_t cell_bins_;
  std::vector<std::vector<double>> transitions_;  ///< row-stochastic
  std::vector<double> value_;
  std::vector<Action> policy_;
  bool solved_ = false;
};

/// Applies a solved MDP policy to a live connection at 1-second epochs.
class MdpRunner {
 public:
  MdpRunner(sim::Simulation& sim, const MdpScheduler& scheduler,
            mptcp::MptcpConnection& conn, net::NetworkInterface& wifi,
            net::NetworkInterface& cell);

  void start();
  void stop() { timer_.cancel(); }

  [[nodiscard]] MdpScheduler::Action last_action() const {
    return last_action_;
  }

 private:
  void epoch();
  void apply(MdpScheduler::Action a);

  sim::Simulation& sim_;
  const MdpScheduler& scheduler_;
  mptcp::MptcpConnection& conn_;
  net::NetworkInterface& wifi_;
  net::NetworkInterface& cell_;
  sim::Timer timer_;
  std::uint64_t last_wifi_rx_ = 0;
  std::uint64_t last_cell_rx_ = 0;
  MdpScheduler::Action last_action_ = MdpScheduler::Action::kBoth;
};

}  // namespace emptcp::baseline
