#include "baselines/wifi_first.hpp"

namespace emptcp::baseline {

WifiFirstConnection::WifiFirstConnection(sim::Simulation& sim,
                                         net::Node& node,
                                         mptcp::MptcpConnection::Config cfg) {
  cfg.mode = mptcp::Mode::kBackup;  // non-WiFi subflows start as backup
  meta_ = std::make_unique<mptcp::MptcpConnection>(sim, node, std::move(cfg));

  // Install the join-on-establish hook once; user callbacks are forwarded
  // through the captured user_cb_ so set_callbacks can be called any time.
  mptcp::MptcpConnection::Callbacks wrapped;
  wrapped.on_established = [this] {
    if (user_cb_.on_established) user_cb_.on_established();
  };
  wrapped.on_data = [this](std::uint64_t n) {
    if (user_cb_.on_data) user_cb_.on_data(n);
  };
  wrapped.on_data_acked = [this](std::uint64_t n) {
    if (user_cb_.on_data_acked) user_cb_.on_data_acked(n);
  };
  wrapped.on_eof = [this] {
    if (user_cb_.on_eof) user_cb_.on_eof();
  };
  wrapped.on_closed = [this] {
    if (user_cb_.on_closed) user_cb_.on_closed();
  };
  wrapped.on_subflow_priority = [this](mptcp::Subflow& sf, bool backup) {
    if (user_cb_.on_subflow_priority) user_cb_.on_subflow_priority(sf, backup);
  };
  wrapped.on_subflow_established = [this](mptcp::Subflow& sf) {
    if (sf.iface() == net::InterfaceType::kWifi && !joined_) {
      joined_ = true;
      meta_->add_subflow(cell_local_, /*backup=*/true);
    }
    if (user_cb_.on_subflow_established) user_cb_.on_subflow_established(sf);
  };
  meta_->set_callbacks(std::move(wrapped));
}

void WifiFirstConnection::set_callbacks(
    mptcp::MptcpConnection::Callbacks cb) {
  user_cb_ = std::move(cb);
}

void WifiFirstConnection::connect(net::Addr wifi_local, net::Addr cell_local,
                                  net::Addr remote, net::Port remote_port) {
  cell_local_ = cell_local;
  meta_->connect(wifi_local, remote, remote_port);
}

}  // namespace emptcp::baseline
