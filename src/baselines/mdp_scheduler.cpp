#include "baselines/mdp_scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace emptcp::baseline {

const char* MdpScheduler::to_string(Action a) {
  switch (a) {
    case Action::kWifiOnly: return "wifi-only";
    case Action::kCellOnly: return "cell-only";
    case Action::kBoth: return "both";
  }
  return "?";
}

MdpScheduler::MdpScheduler(energy::EnergyModel model, Config cfg)
    : model_(std::move(model)),
      cfg_(std::move(cfg)),
      wifi_bins_(cfg_.wifi_edges.size() + 1),
      cell_bins_(cfg_.cell_edges.size() + 1) {
  const std::size_t n = state_count();
  transitions_.assign(n, std::vector<double>(n, 0.0));
  for (std::size_t s = 0; s < n; ++s) transitions_[s][s] = 1.0;
  value_.assign(n, 0.0);
  policy_.assign(n, Action::kWifiOnly);
}

std::size_t MdpScheduler::wifi_bin(double mbps) const {
  const auto it = std::upper_bound(cfg_.wifi_edges.begin(),
                                   cfg_.wifi_edges.end(), mbps);
  return static_cast<std::size_t>(it - cfg_.wifi_edges.begin());
}

std::size_t MdpScheduler::cell_bin(double mbps) const {
  const auto it = std::upper_bound(cfg_.cell_edges.begin(),
                                   cfg_.cell_edges.end(), mbps);
  return static_cast<std::size_t>(it - cfg_.cell_edges.begin());
}

std::size_t MdpScheduler::state_of(double wifi_mbps, double cell_mbps) const {
  return wifi_bin(wifi_mbps) * cell_bins_ + cell_bin(cell_mbps);
}

double MdpScheduler::bin_center(const std::vector<double>& edges,
                                std::size_t bin) const {
  if (bin == 0) return 0.0;
  const double lo = edges[bin - 1];
  // The open-ended top bin is represented by its lower edge: a
  // conservative stand-in that keeps the representative rate inside the
  // measured envelope.
  const double hi = bin < edges.size() ? edges[bin] : lo;
  return (lo + hi) / 2.0;
}

void MdpScheduler::fit(const std::vector<std::pair<double, double>>& trace) {
  const std::size_t n = state_count();
  std::vector<std::vector<double>> counts(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 1; i < trace.size(); ++i) {
    const std::size_t from = state_of(trace[i - 1].first, trace[i - 1].second);
    const std::size_t to = state_of(trace[i].first, trace[i].second);
    counts[from][to] += 1.0;
  }
  for (std::size_t s = 0; s < n; ++s) {
    double total = 0.0;
    for (double c : counts[s]) total += c;
    if (total <= 0.0) {
      // Unvisited state: self-loop (no information).
      std::fill(transitions_[s].begin(), transitions_[s].end(), 0.0);
      transitions_[s][s] = 1.0;
      continue;
    }
    for (std::size_t t = 0; t < n; ++t) {
      transitions_[s][t] = counts[s][t] / total;
    }
  }
  solved_ = false;
}

double MdpScheduler::cost(std::size_t state, Action a) const {
  const std::size_t wb = state / cell_bins_;
  const std::size_t cb = state % cell_bins_;
  const double xw = bin_center(cfg_.wifi_edges, wb);
  const double xl = bin_center(cfg_.cell_edges, cb);

  switch (a) {
    case Action::kWifiOnly:
      if (wb == 0) return cfg_.unusable_cost_mw;
      return model_.platform_mw + model_.wifi.active_power_mw(xw);
    case Action::kCellOnly:
      if (cb == 0) return cfg_.unusable_cost_mw;
      return model_.platform_mw + model_.cell.active_power_mw(xl);
    case Action::kBoth:
      if (wb == 0 && cb == 0) return cfg_.unusable_cost_mw;
      return model_.platform_mw + model_.wifi.active_power_mw(xw) +
             model_.cell.active_power_mw(xl);
  }
  return cfg_.unusable_cost_mw;
}

int MdpScheduler::solve(int max_sweeps, double tolerance) {
  const std::size_t n = state_count();
  constexpr Action kActions[] = {Action::kWifiOnly, Action::kCellOnly,
                                 Action::kBoth};
  int sweep = 0;
  for (; sweep < max_sweeps; ++sweep) {
    double delta = 0.0;
    for (std::size_t s = 0; s < n; ++s) {
      double future = 0.0;
      for (std::size_t t = 0; t < n; ++t) {
        if (transitions_[s][t] > 0.0) future += transitions_[s][t] * value_[t];
      }
      double best = 0.0;
      Action best_a = Action::kWifiOnly;
      bool first = true;
      for (Action a : kActions) {
        // Transitions are action-independent (bandwidth evolves with the
        // environment, not with the schedule), as in Pluntke et al.
        const double q = cost(s, a) + cfg_.discount * future;
        if (first || q < best) {
          best = q;
          best_a = a;
          first = false;
        }
      }
      delta = std::max(delta, std::abs(best - value_[s]));
      value_[s] = best;
      policy_[s] = best_a;
    }
    if (delta < tolerance) {
      ++sweep;
      break;
    }
  }
  solved_ = true;
  return sweep;
}

MdpScheduler::Action MdpScheduler::policy(std::size_t state) const {
  if (!solved_) throw std::logic_error("MdpScheduler::policy before solve()");
  return policy_.at(state);
}

MdpScheduler::Action MdpScheduler::action_for(double wifi_mbps,
                                              double cell_mbps) const {
  return policy(state_of(wifi_mbps, cell_mbps));
}

MdpRunner::MdpRunner(sim::Simulation& sim, const MdpScheduler& scheduler,
                     mptcp::MptcpConnection& conn,
                     net::NetworkInterface& wifi,
                     net::NetworkInterface& cell)
    : sim_(sim),
      scheduler_(scheduler),
      conn_(conn),
      wifi_(wifi),
      cell_(cell),
      timer_(sim.scheduler(), [this] { epoch(); }) {}

void MdpRunner::start() {
  last_wifi_rx_ = wifi_.rx_bytes();
  last_cell_rx_ = cell_.rx_bytes();
  timer_.arm_in(sim::seconds(1));
}

void MdpRunner::epoch() {
  const std::uint64_t wrx = wifi_.rx_bytes();
  const std::uint64_t crx = cell_.rx_bytes();
  const double wifi_mbps =
      static_cast<double>(wrx - last_wifi_rx_) * 8.0 / 1e6;
  const double cell_mbps =
      static_cast<double>(crx - last_cell_rx_) * 8.0 / 1e6;
  last_wifi_rx_ = wrx;
  last_cell_rx_ = crx;

  apply(scheduler_.action_for(wifi_mbps, cell_mbps));
  timer_.arm_in(sim::seconds(1));
}

void MdpRunner::apply(MdpScheduler::Action a) {
  last_action_ = a;
  mptcp::Subflow* wsf = conn_.subflow_on(net::InterfaceType::kWifi);
  mptcp::Subflow* csf = conn_.subflow_on(net::InterfaceType::kLte);
  if (wsf == nullptr || csf == nullptr) return;
  switch (a) {
    case MdpScheduler::Action::kWifiOnly:
      conn_.request_priority(*csf, true);
      conn_.request_priority(*wsf, false);
      break;
    case MdpScheduler::Action::kCellOnly:
      conn_.request_priority(*wsf, true);
      conn_.request_priority(*csf, false);
      break;
    case MdpScheduler::Action::kBoth:
      conn_.request_priority(*wsf, false);
      conn_.request_priority(*csf, false);
      break;
  }
}

}  // namespace emptcp::baseline
