// "MPTCP with WiFi First" baseline (Raiciu et al. [28], paper §4.6).
//
// The strategy: open subflows on all interfaces, but place the cellular one
// in backup mode, so it carries data only when WiFi explicitly breaks (AP
// disassociation / subflow failure). The paper's two critiques — both of
// which this implementation exhibits — are:
//   * the cellular radio is activated at connection establishment anyway
//     (the MP_JOIN handshake wakes it and pays promotion + tail), and
//   * a degraded-but-associated WiFi link never triggers the backup, so
//     the strategy degenerates into TCP-over-WiFi exactly when WiFi is at
//     its least efficient.
#pragma once

#include <memory>

#include "mptcp/meta_socket.hpp"

namespace emptcp::baseline {

class WifiFirstConnection {
 public:
  WifiFirstConnection(sim::Simulation& sim, net::Node& node,
                      mptcp::MptcpConnection::Config cfg);

  void set_callbacks(mptcp::MptcpConnection::Callbacks cb);

  /// Opens the WiFi subflow, then immediately joins over cellular in
  /// backup mode (the needless activation the paper points out).
  void connect(net::Addr wifi_local, net::Addr cell_local, net::Addr remote,
               net::Port remote_port);

  void send(std::uint64_t bytes) { meta_->send(bytes); }
  void shutdown_write() { meta_->shutdown_write(); }

  [[nodiscard]] mptcp::MptcpConnection& mptcp() { return *meta_; }

 private:
  std::unique_ptr<mptcp::MptcpConnection> meta_;
  mptcp::MptcpConnection::Callbacks user_cb_;
  net::Addr cell_local_ = net::kAddrInvalid;
  bool joined_ = false;
};

}  // namespace emptcp::baseline
