// Event scheduler: the heart of the discrete-event simulator.
//
// The scheduler owns a priority queue of (time, sequence, slot) entries.
// Ties on time are broken by insertion sequence so execution order is fully
// deterministic. Events can be cancelled; cancellation is O(1) (the slot's
// generation is bumped and the queue entry is skipped when popped).
//
// Hot-path layout: event actions live in a freelist-backed slab of slots,
// each holding a small-buffer-optimised callable, and queue entries are
// 24-byte PODs — so scheduling, firing and heap sifting allocate nothing
// in steady state (only slab/queue growth, which is amortised and then
// reused for the rest of the run). An EventId is an (index, generation)
// handle into the slab: stale handles (fired or cancelled events, reused
// slots) are detected by generation mismatch, keeping cancel-after-fire
// safe without per-event shared_ptr control blocks.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/small_function.hpp"
#include "sim/time.hpp"

namespace emptcp::sim {

class Scheduler;

/// Handle to a scheduled event, usable to cancel it. Default-constructed
/// handles refer to no event and are safe to cancel (no-op). A handle must
/// not outlive the Scheduler that issued it.
class EventId {
 public:
  EventId() = default;

  /// True if this handle refers to an event that has neither fired nor been
  /// cancelled yet.
  [[nodiscard]] bool pending() const;

 private:
  friend class Scheduler;
  EventId(Scheduler* sched, std::uint32_t slot, std::uint32_t gen)
      : sched_(sched), slot_(slot), gen_(gen) {}

  Scheduler* sched_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

class Scheduler {
 public:
  using Action = SmallFunction;

  /// Current simulated time. Monotonically non-decreasing.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedules `action` to run at absolute time `t`. Scheduling in the past
  /// is a programming error and throws.
  EventId schedule_at(Time t, Action action);

  /// Schedules `action` to run `dt` from now (dt >= 0).
  EventId schedule_in(Duration dt, Action action) {
    return schedule_at(now_ + dt, std::move(action));
  }

  /// Cancels an event if it is still pending. Safe on empty/fired/stale
  /// handles.
  static void cancel(EventId& id);

  /// Runs events until the queue is empty or `stop_at` is reached. Events
  /// scheduled exactly at `stop_at` do run. Returns the number of events
  /// executed.
  std::size_t run_until(Time stop_at);

  /// Runs until the event queue drains completely.
  std::size_t run() { return run_until(kTimeNever); }

  /// Number of entries still queued (cancelled entries count until they
  /// are popped and discarded).
  [[nodiscard]] std::size_t pending_events() const { return live_count_; }

  /// Timestamp of the earliest queued entry, kTimeNever when the queue is
  /// empty. A cancelled entry still at the top reports its (stale) time —
  /// a conservative lower bound, which is all the shard engine's epoch
  /// planner needs.
  [[nodiscard]] Time next_event_time() const {
    return queue_.empty() ? kTimeNever : queue_.top().t;
  }

  /// Hard cap on executed events per run_until call, as a runaway guard.
  void set_event_limit(std::size_t limit) { event_limit_ = limit; }

  /// Slab capacity (allocated slots), for diagnostics and slab-reuse tests.
  /// Slots are never freed, so this doubles as the high-water mark of
  /// concurrently pending events — a self-profiling figure.
  [[nodiscard]] std::size_t slab_size() const { return slab_size_; }

  /// Total events executed over the scheduler's lifetime (across every
  /// run_until call), for self-profiling and events/s accounting.
  [[nodiscard]] std::uint64_t events_executed() const {
    return executed_total_;
  }

 private:
  friend class EventId;

  /// Slot in the event slab. `gen` increments every time the slot's event
  /// leaves the pending state (fire or cancel), invalidating outstanding
  /// handles; `next_free` threads the freelist.
  struct Slot {
    Action action;
    std::uint32_t gen = 0;
    std::uint32_t next_free = kNoFreeSlot;
  };
  struct Entry {
    Time t = 0;
    std::uint64_t seq = 0;
    std::uint32_t slot = 0;
    std::uint32_t gen = 0;
  };

  /// Min-heap of 24-byte POD entries, 4-ary: half the levels of a binary
  /// heap and children on adjacent cache lines, which is where the pop-
  /// heavy event loop spends its time. Order is strict (t, seq) — seq is
  /// unique — so execution order is identical for any heap arity.
  class EventHeap {
   public:
    [[nodiscard]] bool empty() const { return v_.empty(); }
    [[nodiscard]] const Entry& top() const { return v_.front(); }

    void push(const Entry& e) {
      std::size_t i = v_.size();
      v_.push_back(e);
      while (i != 0) {
        const std::size_t parent = (i - 1) >> 2;
        if (!before(e, v_[parent])) break;
        v_[i] = v_[parent];
        i = parent;
      }
      v_[i] = e;
    }

    void pop() {
      const Entry last = v_.back();
      v_.pop_back();
      if (v_.empty()) return;
      std::size_t i = 0;
      const std::size_t n = v_.size();
      for (;;) {
        const std::size_t first_child = i * 4 + 1;
        if (first_child >= n) break;
        std::size_t best = first_child;
        const std::size_t end =
            first_child + 4 < n ? first_child + 4 : n;
        for (std::size_t c = first_child + 1; c < end; ++c) {
          if (before(v_[c], v_[best])) best = c;
        }
        if (!before(v_[best], last)) break;
        v_[i] = v_[best];
        i = best;
      }
      v_[i] = last;
    }

   private:
    static bool before(const Entry& a, const Entry& b) {
      return a.t != b.t ? a.t < b.t : a.seq < b.seq;
    }
    std::vector<Entry> v_;
  };

  static constexpr std::uint32_t kNoFreeSlot = 0xFFFFFFFFu;
  // Slots live in fixed-size chunks so growth never moves a Slot: actions
  // can be invoked in place and Slot references stay valid while an action
  // runs (even if it schedules more events).
  static constexpr std::size_t kChunkShift = 8;
  static constexpr std::size_t kChunkSize = 1u << kChunkShift;

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t idx);
  [[nodiscard]] Slot& slot(std::uint32_t idx) {
    return chunks_[idx >> kChunkShift][idx & (kChunkSize - 1)];
  }
  [[nodiscard]] const Slot& slot(std::uint32_t idx) const {
    return chunks_[idx >> kChunkShift][idx & (kChunkSize - 1)];
  }
  [[nodiscard]] bool is_pending(std::uint32_t idx, std::uint32_t gen) const {
    return idx < slab_size_ && slot(idx).gen == gen;
  }

  EventHeap queue_;
  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::size_t slab_size_ = 0;
  std::uint32_t free_head_ = kNoFreeSlot;
  Time now_ = kTimeZero;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_total_ = 0;
  std::size_t live_count_ = 0;
  std::size_t event_limit_ = 500'000'000;
};

}  // namespace emptcp::sim
