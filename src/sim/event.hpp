// Event scheduler: the heart of the discrete-event simulator.
//
// The scheduler owns a priority queue of (time, sequence, action) entries.
// Ties on time are broken by insertion sequence so execution order is fully
// deterministic. Events can be cancelled; cancellation is O(1) (the entry is
// marked dead and skipped when popped).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace emptcp::sim {

/// Handle to a scheduled event, usable to cancel it. Default-constructed
/// handles refer to no event and are safe to cancel (no-op).
class EventId {
 public:
  EventId() = default;

  /// True if this handle refers to an event that has neither fired nor been
  /// cancelled yet.
  [[nodiscard]] bool pending() const;

 private:
  friend class Scheduler;
  struct State {
    bool cancelled = false;
    bool fired = false;
  };
  explicit EventId(std::shared_ptr<State> s) : state_(std::move(s)) {}
  std::shared_ptr<State> state_;
};

class Scheduler {
 public:
  using Action = std::function<void()>;

  /// Current simulated time. Monotonically non-decreasing.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedules `action` to run at absolute time `t`. Scheduling in the past
  /// is a programming error and throws.
  EventId schedule_at(Time t, Action action);

  /// Schedules `action` to run `dt` from now (dt >= 0).
  EventId schedule_in(Duration dt, Action action) {
    return schedule_at(now_ + dt, std::move(action));
  }

  /// Cancels an event if it is still pending. Safe on empty/fired handles.
  static void cancel(EventId& id);

  /// Runs events until the queue is empty or `stop_at` is reached. Events
  /// scheduled exactly at `stop_at` do run. Returns the number of events
  /// executed.
  std::size_t run_until(Time stop_at);

  /// Runs until the event queue drains completely.
  std::size_t run() { return run_until(kTimeNever); }

  /// Number of entries still queued (cancelled entries count until they
  /// are popped and discarded).
  [[nodiscard]] std::size_t pending_events() const { return live_count_; }

  /// Hard cap on executed events per run_until call, as a runaway guard.
  void set_event_limit(std::size_t limit) { event_limit_ = limit; }

 private:
  struct Entry {
    Time t = 0;
    std::uint64_t seq = 0;
    Action action;
    std::shared_ptr<EventId::State> state;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  Time now_ = kTimeZero;
  std::uint64_t next_seq_ = 0;
  std::size_t live_count_ = 0;
  std::size_t event_limit_ = 500'000'000;
};

}  // namespace emptcp::sim
