// ShardEngine: conservative parallel execution of partitioned simulations.
//
// One engine owns P "places" (independent sim::Simulation instances — each
// a sequential event region with its own scheduler, RNG and trace sink)
// coupled only through declared Partition edges. Execution is the classic
// barrier-synchronous conservative scheme bounded by lookahead:
//
//   window  = min edge lookahead (Partition::min_lookahead)
//   epoch   = all places concurrently run events in [T, B), B = E + window
//             where E is the earliest pending event anywhere (>= T, so an
//             idle stretch is skipped in one epoch instead of busy-waiting
//             through empty windows)
//   barrier = cross-place messages posted during the epoch are drained
//             into their destination schedulers, then T = B - 1
//
// Correctness: a message sent at local time s >= T over an edge with
// lookahead L carries timestamp t = s + (link latency) >= T + L >= B, so
// it can never land inside the window any place is still executing —
// timestamp order holds without rollback and without null messages (the
// barrier plays their role).
//
// Determinism: the epoch schedule (E, B, drain times) is a pure function
// of virtual state, and drained messages are inserted in (timestamp,
// edge id, per-edge sequence) order, so every place's execution — and
// therefore every trace, rollup and oracle verdict — is byte-identical
// for any shard count and any EMPTCP_JOBS. Shards only decide which OS
// thread runs which place.
//
// Threading contract: between run_until calls the caller owns all places;
// inside an epoch each place is touched only by its assigned party, and
// the EpochGroup barrier provides the happens-before edges between phases.
// post() may only be called from the posting edge's source place (i.e.
// from within its event execution).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "runtime/telemetry.hpp"
#include "runtime/thread_pool.hpp"
#include "sim/partition.hpp"
#include "sim/simulation.hpp"

namespace emptcp::sim {

/// Epoch/shard telemetry snapshot, taken between run_until calls.
///
/// Two strictly separated kinds of data live here:
///   * virtual-state aggregates (epochs, events/epoch, advance/epoch,
///     cross messages/epoch, imbalance, per-place event totals) — pure
///     functions of (config, seed), identical for any shard count, always
///     maintained (integer arithmetic riding the existing per-epoch scan);
///   * wall-clock figures (per-place work_s, per-party busy/wait) —
///     populated only while runtime::Telemetry is enabled, and never
///     allowed to feed any deterministic artifact.
struct ShardEnginePerf {
  std::uint64_t epochs = 0;
  std::uint64_t busy_epochs = 0;  ///< epochs that executed >= 1 event
  Duration min_lookahead = 0;     ///< current window bound
  std::uint64_t cross_messages = 0;
  runtime::LogBuckets events_per_epoch;     ///< summed over places
  runtime::LogBuckets advance_ns_per_epoch; ///< virtual ns per epoch
  runtime::LogBuckets cross_per_epoch;      ///< messages posted per epoch
  /// Busiest place's share per busy epoch, as percent of the per-place
  /// mean (100 = perfectly balanced; places x 100 = one place did it all).
  runtime::LogBuckets imbalance_pct;

  struct Place {
    std::string name;
    std::uint64_t events = 0;       ///< executed since the run started
    std::uint64_t busy_epochs = 0;  ///< epochs with >= 1 event here
    double work_s = 0.0;            ///< wall; 0 unless telemetry enabled
  };
  std::vector<Place> places;

  struct Party {
    double busy_s = 0.0;  ///< wall inside exec/drain phases
    double wait_s = 0.0;  ///< wall parked at the barrier
  };
  std::vector<Party> parties;  ///< empty until the first epoch ran
};

/// Destination endpoint of a cross-place edge. on_cross_message runs as a
/// scheduled event inside the destination place at exactly the message's
/// timestamp, interleaved deterministically with the place's own events.
class CrossSink {
 public:
  virtual ~CrossSink() = default;
  virtual void on_cross_message(Time t, const void* data,
                                std::size_t size) = 0;
};

namespace detail {

/// Fixed-slot stable storage for in-flight cross messages of one place.
/// Drain copies a message in and schedules a 16-byte closure {slab, slot};
/// firing delivers to the sink and recycles the slot. Chunked so slots
/// never move; single-threaded (only the place's owner touches it).
class InboxSlab {
 public:
  /// Largest payload a slot must hold; grows only before first use.
  void require_payload(std::size_t bytes);

  std::uint32_t acquire(CrossSink* sink, Time t, const void* data,
                        std::size_t size);
  /// Delivers slot's message to its sink, then frees the slot.
  void fire(std::uint32_t slot);

  [[nodiscard]] std::size_t allocated() const { return allocated_; }

 private:
  struct Header {
    CrossSink* sink = nullptr;
    Time t = 0;
    std::uint32_t size = 0;
    std::uint32_t next_free = 0xFFFFFFFFu;
  };
  static constexpr std::uint32_t kNone = 0xFFFFFFFFu;
  static constexpr std::size_t kSlotsPerChunk = 64;

  [[nodiscard]] Header* header(std::uint32_t slot);
  void grow();

  std::size_t payload_bytes_ = 0;
  std::size_t stride_ = 0;  ///< sizeof(Header) + padded payload
  std::vector<std::unique_ptr<unsigned char[]>> chunks_;
  std::size_t allocated_ = 0;
  std::uint32_t free_head_ = kNone;
};

}  // namespace detail

class ShardEngine {
 public:
  /// `shards` worker threads execute the places (0 = EMPTCP_JOBS-derived
  /// default). Results never depend on it.
  explicit ShardEngine(std::size_t shards = 1);
  ~ShardEngine();

  ShardEngine(const ShardEngine&) = delete;
  ShardEngine& operator=(const ShardEngine&) = delete;

  /// Registers a place. All places and edges must be added before the
  /// first run_until call.
  std::size_t add_place(Simulation& sim, std::string name);

  /// Registers a directed edge (validated by Partition: lookahead must be
  /// positive). Messages posted on it are delivered to `sink` inside place
  /// `dst`. `max_message_bytes` bounds a single message's payload.
  std::size_t add_edge(std::size_t src, std::size_t dst, Duration lookahead,
                       CrossSink& sink, std::size_t max_message_bytes);

  /// Posts one message on `edge` with timestamp `t`. Only the edge's
  /// source place may call this (from its executing events). Throws if the
  /// timestamp lands inside the current epoch window — that is a lookahead
  /// contract violation, not a recoverable condition.
  void post(std::size_t edge, Time t, const void* data, std::size_t size);

  /// Re-declares an edge's minimum latency (e.g. its link's propagation
  /// delay changed). Validated immediately (throws on <= 0), applied at
  /// the next barrier — the running epoch was planned under the old bound
  /// and stays correct: raising a bound mid-window is always safe, and a
  /// lowered bound only constrains messages sent after it takes effect.
  void request_lookahead_update(std::size_t edge, Duration lookahead);

  /// Advances every place to `stop` (inclusive, like Scheduler::run_until).
  /// `done_at_barrier` is evaluated on the driver thread at every epoch
  /// barrier; returning true ends the run early. Returns events executed.
  std::size_t run_until(Time stop,
                        const std::function<bool()>& done_at_barrier = {});

  /// Virtual time every place has reached (inclusive).
  [[nodiscard]] Time now() const { return now_; }

  [[nodiscard]] Partition& partition() { return partition_; }
  [[nodiscard]] const Partition& partition() const { return partition_; }
  [[nodiscard]] std::size_t place_count() const { return places_.size(); }
  [[nodiscard]] std::size_t shard_count() const { return shards_; }
  [[nodiscard]] std::uint64_t epochs() const { return epochs_; }
  /// Messages ever posted across all edges. Valid between run_until calls
  /// (summed from per-edge counters, which workers own mid-epoch).
  [[nodiscard]] std::uint64_t cross_messages() const;
  /// Events executed across all places since their creation.
  [[nodiscard]] std::uint64_t events_executed() const;

  /// Telemetry snapshot; call between run_until calls (the caller owns
  /// all places there, per the threading contract above).
  [[nodiscard]] ShardEnginePerf perf() const;

 private:
  enum class Phase : std::uint8_t { kExec, kDrain };

  struct Message {
    Time t = 0;
    std::uint64_t seq = 0;
    std::uint32_t offset = 0;
    std::uint32_t size = 0;
  };
  struct EdgeState {
    CrossSink* sink = nullptr;
    std::vector<Message> msgs;
    std::vector<unsigned char> blob;
    std::uint64_t next_seq = 0;
    Duration pending_lookahead = 0;  ///< 0 = no update requested
  };
  struct PlaceState {
    Simulation* sim = nullptr;
    detail::InboxSlab inbox;
    std::vector<std::size_t> in_edges;
    // Epoch accounting. The event fields are deterministic (virtual
    // state); work_s/span_name are wall-clock side state, touched only
    // when telemetry is enabled.
    std::uint64_t last_events = 0;  ///< events_executed at last barrier
    std::uint64_t events_total = 0;
    std::uint64_t busy_epochs = 0;
    double work_s = 0.0;
    const char* span_name = nullptr;  ///< interned "exec <place>" label
  };

  void ensure_started();
  void run_phase(std::size_t party);
  void exec_place(PlaceState& place);
  void drain_place(std::size_t place_index);
  void apply_pending_lookaheads();
  void account_epoch(Time prev_now);

  Partition partition_;
  std::vector<PlaceState> places_;
  std::vector<EdgeState> edges_;
  std::size_t shards_ = 1;
  std::unique_ptr<runtime::ThreadPool> pool_;
  std::unique_ptr<runtime::EpochGroup> group_;

  Time now_ = kTimeZero;
  Time bound_ = kTimeZero;  ///< exclusive end of the epoch in flight
  Phase phase_ = Phase::kExec;
  std::uint64_t epochs_ = 0;
  bool started_ = false;

  // Deterministic epoch aggregates (see ShardEnginePerf).
  std::uint64_t busy_epochs_ = 0;
  std::uint64_t prev_cross_ = 0;  ///< cross_messages() at last barrier
  runtime::LogBuckets ev_per_epoch_;
  runtime::LogBuckets adv_ns_per_epoch_;
  runtime::LogBuckets cross_per_epoch_;
  runtime::LogBuckets imbalance_pct_;

  /// Per-place scratch for the drain sort, index-aligned with places_.
  struct DrainItem {
    Message msg;
    std::size_t edge = 0;
  };
  std::vector<std::vector<DrainItem>> scratch_;
};

}  // namespace emptcp::sim
