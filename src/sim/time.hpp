// Simulated-time representation for the eMPTCP simulator.
//
// Simulated time is an integer count of nanoseconds since the start of the
// simulation. An integer representation keeps event ordering exact and makes
// time arithmetic associative, which matters for reproducibility: two runs
// with the same seed must schedule events in the same order.
#pragma once

#include <cstdint>
#include <string>

namespace emptcp::sim {

/// Nanoseconds since simulation start.
using Time = std::int64_t;

/// A duration, also in nanoseconds. Kept as a separate alias for readability.
using Duration = std::int64_t;

inline constexpr Time kTimeZero = 0;
/// Sentinel for "no deadline" / "never".
inline constexpr Time kTimeNever = INT64_MAX;

constexpr Duration nanoseconds(std::int64_t n) { return n; }
constexpr Duration microseconds(std::int64_t u) { return u * 1'000; }
constexpr Duration milliseconds(std::int64_t m) { return m * 1'000'000; }
constexpr Duration seconds(std::int64_t s) { return s * 1'000'000'000; }

/// Converts a floating-point number of seconds to a Duration, rounding to
/// the nearest nanosecond.
constexpr Duration from_seconds(double s) {
  return static_cast<Duration>(s * 1e9 + (s >= 0 ? 0.5 : -0.5));
}

constexpr double to_seconds(Time t) { return static_cast<double>(t) * 1e-9; }
constexpr double to_milliseconds(Time t) { return static_cast<double>(t) * 1e-6; }

/// Formats a time as "12.345s" for traces and error messages.
std::string format_time(Time t);

}  // namespace emptcp::sim
