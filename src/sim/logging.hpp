// Lightweight trace logging for the simulator.
//
// Traces are off by default (benchmarks and tests run silently); examples
// and the figure benches enable them selectively to show protocol decisions
// (subflow suspended/resumed, delayed establishment fired, radio state
// transitions) the way the paper narrates its time-series figures.
#pragma once

#include <functional>
#include <sstream>
#include <string>

#include "sim/time.hpp"

namespace emptcp::sim {

enum class LogLevel { kTrace, kDebug, kInfo, kWarn, kOff };

class Logger {
 public:
  using Sink = std::function<void(LogLevel, Time, const std::string&)>;

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }

  /// Replaces the output sink. The default sink writes to stderr.
  void set_sink(Sink sink);

  [[nodiscard]] bool enabled(LogLevel level) const { return level >= level_; }

  void log(LogLevel level, Time t, const std::string& msg);

 private:
  LogLevel level_ = LogLevel::kOff;
  Sink sink_;
};

}  // namespace emptcp::sim

/// Streams `expr` into the simulation's logger when the level is enabled.
/// `simref` must expose .logger() and .now().
#define EMPTCP_LOG(simref, level, expr)                                   \
  do {                                                                    \
    if ((simref).logger().enabled(level)) {                               \
      std::ostringstream emptcp_log_os_;                                  \
      emptcp_log_os_ << expr;                                             \
      (simref).logger().log(level, (simref).now(), emptcp_log_os_.str()); \
    }                                                                     \
  } while (0)
