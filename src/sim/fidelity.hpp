// Simulation fidelity selector.
//
// kPacket is the classic mode: every segment, ACK and timer is a discrete
// event. kHybrid arms the macro-step fast path (app::FastPath): flows that
// reach congestion-avoidance steady state are advanced analytically across
// whole 100 ms quanta and dropped back to packet level on any transient.
// The two modes must agree on final per-flow bytes exactly and on FCT and
// energy within the tolerance contract in DESIGN.md §13; the differential
// harness (tests/hybrid_gate.cmake, emptcp-fuzz --fidelity-diff) enforces
// that continuously.
#pragma once

#include <cstdlib>
#include <optional>
#include <string_view>

namespace emptcp::sim {

enum class Fidelity {
  kPacket,  ///< per-packet discrete events everywhere (the default)
  kHybrid,  ///< analytic macro-stepping for quiescent flows
};

inline const char* to_string(Fidelity f) {
  return f == Fidelity::kHybrid ? "hybrid" : "packet";
}

inline std::optional<Fidelity> fidelity_from_string(std::string_view s) {
  if (s == "packet") return Fidelity::kPacket;
  if (s == "hybrid") return Fidelity::kHybrid;
  return std::nullopt;
}

/// EMPTCP_FIDELITY environment override, used as the campaign-spec default
/// so a whole grid can be flipped without editing the spec. Unset or
/// unrecognized values mean packet.
inline Fidelity fidelity_from_env() {
  const char* v = std::getenv("EMPTCP_FIDELITY");
  if (v == nullptr) return Fidelity::kPacket;
  return fidelity_from_string(v).value_or(Fidelity::kPacket);
}

}  // namespace emptcp::sim
