#include "sim/simulation.hpp"

#include <cstdio>

namespace emptcp::sim {

void Simulation::dump_flight_recorder(const char* why) const {
  const trace::FlightRecorder& fr = trace_.flight();
  if (fr.total() == 0) return;
  std::fprintf(stderr, "emptcp: %s at t=%s; %s", why,
               format_time(now()).c_str(), fr.dump().c_str());
  // Optional file copy (EMPTCP_FLIGHT_DIR): parallel campaigns interleave
  // stderr, so forensics also land in a per-(process, thread, sequence)
  // file that nothing else can clobber.
  const std::string path = trace::dump_flight_to_file(
      fr, "sim", std::string("emptcp: ") + why + " at t=" +
                     format_time(now()));
  if (!path.empty()) {
    std::fprintf(stderr, "emptcp: flight recorder written to %s\n",
                 path.c_str());
  }
  std::fflush(stderr);
}

}  // namespace emptcp::sim
