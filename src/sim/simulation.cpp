#include "sim/simulation.hpp"

#include <cstdio>

namespace emptcp::sim {

void Simulation::dump_flight_recorder(const char* why) const {
  const trace::FlightRecorder& fr = trace_.flight();
  if (fr.total() == 0) return;
  std::fprintf(stderr, "emptcp: %s at t=%s; %s", why,
               format_time(now()).c_str(), fr.dump().c_str());
  std::fflush(stderr);
}

}  // namespace emptcp::sim
