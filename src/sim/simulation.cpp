#include "sim/simulation.hpp"

// Simulation is header-only; see simulation.hpp.
