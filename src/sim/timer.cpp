#include "sim/timer.hpp"

// Timer is header-only; this translation unit exists so the build sees one
// object file per module and to anchor the vtable-free class in the library.
