// Restartable one-shot timer built on the Scheduler.
//
// TCP retransmission timers, eMPTCP's delayed-subflow timer τ, and the
// bandwidth-predictor sampling loop all need the same pattern: arm a
// callback at a deadline, possibly re-arm it to a different deadline before
// it fires, and cancel it when the owner goes away. Timer encapsulates that
// pattern; destroying a Timer cancels any pending callback, so a Timer member
// can never outlive its owner.
#pragma once

#include <functional>
#include <utility>

#include "sim/event.hpp"

namespace emptcp::sim {

class Timer {
 public:
  Timer(Scheduler& sched, std::function<void()> on_fire)
      : sched_(&sched), on_fire_(std::move(on_fire)) {}

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  ~Timer() { cancel(); }

  /// (Re)arms the timer to fire `dt` from now. Replaces any pending deadline.
  void arm_in(Duration dt) { arm_at(sched_->now() + dt); }

  /// (Re)arms the timer to fire at absolute time `t`.
  void arm_at(Time t) {
    cancel();
    deadline_ = t;
    id_ = sched_->schedule_at(t, [this] {
      deadline_ = kTimeNever;
      on_fire_();
    });
  }

  /// Cancels the pending deadline, if any.
  void cancel() {
    Scheduler::cancel(id_);
    deadline_ = kTimeNever;
  }

  [[nodiscard]] bool armed() const { return id_.pending(); }
  [[nodiscard]] Time deadline() const { return deadline_; }

 private:
  Scheduler* sched_;
  std::function<void()> on_fire_;
  EventId id_;
  Time deadline_ = kTimeNever;
};

}  // namespace emptcp::sim
