#include "sim/event.hpp"

#include <sstream>
#include <stdexcept>

namespace emptcp::sim {

std::string format_time(Time t) {
  std::ostringstream os;
  os << to_seconds(t) << "s";
  return os.str();
}

bool EventId::pending() const {
  return state_ && !state_->cancelled && !state_->fired;
}

EventId Scheduler::schedule_at(Time t, Action action) {
  if (t < now_) {
    throw std::logic_error("Scheduler::schedule_at: time " + format_time(t) +
                           " is in the past (now=" + format_time(now_) + ")");
  }
  auto state = std::make_shared<EventId::State>();
  queue_.push(Entry{t, next_seq_++, std::move(action), state});
  ++live_count_;
  return EventId{std::move(state)};
}

void Scheduler::cancel(EventId& id) {
  if (id.state_ && !id.state_->fired) id.state_->cancelled = true;
  id.state_.reset();
}

std::size_t Scheduler::run_until(Time stop_at) {
  std::size_t executed = 0;
  while (!queue_.empty()) {
    const Entry& top = queue_.top();
    if (top.t > stop_at) break;
    Entry entry{top.t, top.seq, std::move(const_cast<Entry&>(top).action),
                std::move(const_cast<Entry&>(top).state)};
    queue_.pop();
    --live_count_;
    if (entry.state->cancelled) continue;
    entry.state->fired = true;
    now_ = entry.t;
    entry.action();
    if (++executed >= event_limit_) {
      throw std::runtime_error("Scheduler: event limit exceeded at t=" +
                               format_time(now_));
    }
  }
  if (stop_at != kTimeNever && stop_at > now_) now_ = stop_at;
  return executed;
}

}  // namespace emptcp::sim
