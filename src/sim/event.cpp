#include "sim/event.hpp"

#include <sstream>
#include <stdexcept>

namespace emptcp::sim {

std::string format_time(Time t) {
  std::ostringstream os;
  os << to_seconds(t) << "s";
  return os.str();
}

bool EventId::pending() const {
  return sched_ != nullptr && sched_->is_pending(slot_, gen_);
}

std::uint32_t Scheduler::acquire_slot() {
  if (free_head_ != kNoFreeSlot) {
    const std::uint32_t idx = free_head_;
    Slot& s = slot(idx);
    free_head_ = s.next_free;
    s.next_free = kNoFreeSlot;
    return idx;
  }
  if (slab_size_ == chunks_.size() * kChunkSize) {
    chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
  }
  return static_cast<std::uint32_t>(slab_size_++);
}

void Scheduler::release_slot(std::uint32_t idx) {
  Slot& s = slot(idx);
  s.action = nullptr;
  s.next_free = free_head_;
  free_head_ = idx;
}

EventId Scheduler::schedule_at(Time t, Action action) {
  if (t < now_) {
    throw std::logic_error("Scheduler::schedule_at: time " + format_time(t) +
                           " is in the past (now=" + format_time(now_) + ")");
  }
  const std::uint32_t idx = acquire_slot();
  Slot& s = slot(idx);
  s.action = std::move(action);
  queue_.push(Entry{t, next_seq_++, idx, s.gen});
  ++live_count_;
  return EventId{this, idx, s.gen};
}

void Scheduler::cancel(EventId& id) {
  if (id.sched_ != nullptr && id.sched_->is_pending(id.slot_, id.gen_)) {
    // Invalidate the slot but leave it allocated: the queue entry still
    // references it and frees it when popped.
    Slot& s = id.sched_->slot(id.slot_);
    ++s.gen;
    s.action = nullptr;
  }
  id.sched_ = nullptr;
}

std::size_t Scheduler::run_until(Time stop_at) {
  std::size_t executed = 0;
  while (!queue_.empty()) {
    const Entry top = queue_.top();
    if (top.t > stop_at) break;
    queue_.pop();
    --live_count_;
    Slot& s = slot(top.slot);
    if (s.gen != top.gen) {  // cancelled while queued
      release_slot(top.slot);
      continue;
    }
    ++s.gen;  // marks the event fired; outstanding handles go stale
    now_ = top.t;
    // Invoke in place: chunked slots never move, and the slot is not
    // released until after the call, so the action cannot be overwritten
    // even if it schedules (and a new event acquires) other slots.
    s.action();
    release_slot(top.slot);
    ++executed_total_;
    if (++executed >= event_limit_) {
      throw std::runtime_error("Scheduler: event limit exceeded at t=" +
                               format_time(now_));
    }
  }
  if (stop_at != kTimeNever && stop_at > now_) now_ = stop_at;
  return executed;
}

}  // namespace emptcp::sim
