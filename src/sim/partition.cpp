#include "sim/partition.hpp"

#include <stdexcept>

namespace emptcp::sim {

std::size_t Partition::add_place(std::string name) {
  names_.push_back(std::move(name));
  matrix_.assign(names_.size() * names_.size(), kTimeNever);
  recompute();
  return names_.size() - 1;
}

std::size_t Partition::add_edge(std::size_t src, std::size_t dst,
                                Duration lookahead) {
  if (src >= names_.size() || dst >= names_.size()) {
    throw std::out_of_range("Partition::add_edge: unknown place id");
  }
  if (lookahead <= 0) {
    throw std::invalid_argument(
        "Partition::add_edge: edge " + names_[src] + " -> " + names_[dst] +
        " has zero/negative lookahead (" + std::to_string(lookahead) +
        " ns); a conservative engine cannot make progress across a "
        "zero-delay boundary — give the link a positive propagation delay "
        "or co-locate the endpoints in one place");
  }
  edges_.push_back(Edge{src, dst, lookahead});
  if (lookahead < cell(src, dst)) cell(src, dst) = lookahead;
  if (lookahead < min_) min_ = lookahead;
  return edges_.size() - 1;
}

void Partition::update_edge_lookahead(std::size_t edge_id,
                                      Duration lookahead) {
  Edge& e = edges_.at(edge_id);
  if (lookahead <= 0) {
    throw std::invalid_argument(
        "Partition::update_edge_lookahead: edge " + names_[e.src] + " -> " +
        names_[e.dst] + " updated to zero/negative lookahead (" +
        std::to_string(lookahead) + " ns)");
  }
  e.lookahead = lookahead;
  recompute();
}

Duration Partition::lookahead(std::size_t src, std::size_t dst) const {
  if (src >= names_.size() || dst >= names_.size()) {
    throw std::out_of_range("Partition::lookahead: unknown place id");
  }
  return matrix_[src * names_.size() + dst];
}

void Partition::recompute() {
  for (Duration& d : matrix_) d = kTimeNever;
  min_ = kTimeNever;
  for (const Edge& e : edges_) {
    if (e.lookahead < cell(e.src, e.dst)) cell(e.src, e.dst) = e.lookahead;
    if (e.lookahead < min_) min_ = e.lookahead;
  }
}

}  // namespace emptcp::sim
