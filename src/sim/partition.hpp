// Partition: the static map from simulation places to shards, plus the
// lookahead matrix a conservative parallel engine synchronises on.
//
// A "place" is one sequential event region — a Simulation that owns some
// subset of the modeled nodes (in the fleet engine: one cell of clients
// with its AP, links and server). Places are coupled only by directed
// edges, each declaring the minimum virtual latency any cross-place
// message sent over it experiences (for a link, its propagation delay —
// transmission and queueing only add to it, so rate changes can never
// shrink the bound). That minimum is the classic PDES lookahead: while a
// place executes the window [T, T + min-lookahead), no message from any
// peer can arrive inside the window, so all places can run the window
// concurrently without violating timestamp order.
//
// Zero (or negative) lookahead would collapse the window to nothing and
// deadlock a conservative engine, so add_edge/update_edge_lookahead reject
// it loudly instead of limping into a livelock.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace emptcp::sim {

class Partition {
 public:
  struct Edge {
    std::size_t src = 0;
    std::size_t dst = 0;
    Duration lookahead = 0;  ///< minimum latency of messages on this edge
  };

  /// Registers a place; returns its dense id (0, 1, 2, ...).
  std::size_t add_place(std::string name);

  /// Registers a directed edge with its minimum message latency. Throws
  /// std::invalid_argument on lookahead <= 0 and std::out_of_range on
  /// unknown place ids.
  std::size_t add_edge(std::size_t src, std::size_t dst, Duration lookahead);

  /// Tightens or relaxes an edge's bound (a topology change altered the
  /// link's propagation delay). Throws like add_edge. The matrix and the
  /// global minimum are recomputed immediately.
  void update_edge_lookahead(std::size_t edge_id, Duration lookahead);

  [[nodiscard]] std::size_t place_count() const { return names_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edges_.size(); }
  [[nodiscard]] const std::string& place_name(std::size_t place) const {
    return names_.at(place);
  }
  [[nodiscard]] const Edge& edge(std::size_t edge_id) const {
    return edges_.at(edge_id);
  }

  /// Minimum lookahead over all src->dst edges; kTimeNever when the pair
  /// is not directly coupled.
  [[nodiscard]] Duration lookahead(std::size_t src, std::size_t dst) const;

  /// The global synchronisation window: minimum lookahead over every edge,
  /// kTimeNever when the partition has no edges (fully independent places).
  [[nodiscard]] Duration min_lookahead() const { return min_; }

  /// Static place -> shard assignment (round robin). Any mapping is
  /// correct — it only balances load — but it must not influence results,
  /// so it is a pure function of (place, shard_count).
  [[nodiscard]] static std::size_t owner(std::size_t place,
                                         std::size_t shard_count) {
    return shard_count == 0 ? 0 : place % shard_count;
  }

 private:
  void recompute();
  [[nodiscard]] Duration& cell(std::size_t src, std::size_t dst) {
    return matrix_[src * names_.size() + dst];
  }

  std::vector<std::string> names_;
  std::vector<Edge> edges_;
  std::vector<Duration> matrix_;  ///< place_count^2 pairwise minima
  Duration min_ = kTimeNever;
};

}  // namespace emptcp::sim
