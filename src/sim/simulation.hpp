// Simulation context: one object owning the clock, RNG and logger.
//
// Every protocol / channel / application object receives a Simulation& at
// construction and keeps a reference. This replaces global state: two
// simulations can run back-to-back (or interleaved in tests) without
// touching each other, and a run is reproducible from (scenario, seed).
#pragma once

#include <cstdint>
#include <memory>
#include <typeindex>
#include <unordered_map>

#include "sim/event.hpp"
#include "sim/logging.hpp"
#include "sim/random.hpp"
#include "trace/sink.hpp"

namespace emptcp::sim {

class Simulation {
 public:
  explicit Simulation(std::uint64_t seed = 1) : rng_(seed) {
    // Register as this thread's current sink so out-of-band observers
    // (test-failure listeners, panic paths) can reach the flight recorder.
    prev_sink_ = trace::detail::set_current_sink(&trace_);
  }
  ~Simulation() {
    // Best-effort LIFO restore (simulations are stack objects in practice;
    // out-of-order destruction just loses the current-sink shortcut).
    if (trace::current_sink() == &trace_) {
      trace::detail::set_current_sink(prev_sink_);
    }
  }

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  [[nodiscard]] Time now() const { return sched_.now(); }

  Scheduler& scheduler() { return sched_; }
  Rng& rng() { return rng_; }
  Logger& logger() { return logger_; }

  /// Structured tracing / metrics for this run. A direct member (not a
  /// context<>() entry) because instrumentation sites query its enabled
  /// flag on hot paths — the map lookup would dominate the gate.
  trace::TraceSink& trace() { return trace_; }
  [[nodiscard]] const trace::TraceSink& trace() const { return trace_; }

  EventId at(Time t, Scheduler::Action a) {
    return sched_.schedule_at(t, std::move(a));
  }
  EventId in(Duration dt, Scheduler::Action a) {
    return sched_.schedule_in(dt, std::move(a));
  }

  /// Runs until `t`; see Scheduler::run_until. On a simulation invariant
  /// violation (scheduler exceptions: event-limit runaway, scheduling in
  /// the past, anything thrown out of an event action) the flight-recorder
  /// tail is dumped to stderr before the exception propagates.
  std::size_t run_until(Time t) {
    try {
      return sched_.run_until(t);
    } catch (...) {
      dump_flight_recorder("exception out of the event loop");
      throw;
    }
  }
  std::size_t run() { return run_until(kTimeNever); }

  /// Dumps the flight-recorder tail to stderr (no-op when empty) — the
  /// post-mortem view of what the simulation did last.
  void dump_flight_recorder(const char* why) const;

  /// Per-simulation singleton of an arbitrary default-constructible type,
  /// created on first use. Lets higher layers (e.g. the net packet pool)
  /// share run-scoped resources without the sim layer depending on them,
  /// and keeps those resources isolated between concurrently-running
  /// simulations.
  template <typename T>
  T& context() {
    auto it = contexts_.find(std::type_index(typeid(T)));
    if (it == contexts_.end()) {
      it = contexts_
               .emplace(std::type_index(typeid(T)),
                        ContextPtr(new T(), [](void* p) {
                          delete static_cast<T*>(p);
                        }))
               .first;
    }
    return *static_cast<T*>(it->second.get());
  }

 private:
  using ContextPtr = std::unique_ptr<void, void (*)(void*)>;

  // Declared first so contexts (e.g. the packet pool) are destroyed *after*
  // the scheduler: pending events may hold pooled resources whose
  // destructors return them to their pool.
  std::unordered_map<std::type_index, ContextPtr> contexts_;
  Scheduler sched_;
  Rng rng_;
  Logger logger_;
  trace::TraceSink trace_;
  trace::TraceSink* prev_sink_ = nullptr;
};

}  // namespace emptcp::sim
