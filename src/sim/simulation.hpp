// Simulation context: one object owning the clock, RNG and logger.
//
// Every protocol / channel / application object receives a Simulation& at
// construction and keeps a reference. This replaces global state: two
// simulations can run back-to-back (or interleaved in tests) without
// touching each other, and a run is reproducible from (scenario, seed).
#pragma once

#include <cstdint>

#include "sim/event.hpp"
#include "sim/logging.hpp"
#include "sim/random.hpp"

namespace emptcp::sim {

class Simulation {
 public:
  explicit Simulation(std::uint64_t seed = 1) : rng_(seed) {}

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  [[nodiscard]] Time now() const { return sched_.now(); }

  Scheduler& scheduler() { return sched_; }
  Rng& rng() { return rng_; }
  Logger& logger() { return logger_; }

  EventId at(Time t, Scheduler::Action a) {
    return sched_.schedule_at(t, std::move(a));
  }
  EventId in(Duration dt, Scheduler::Action a) {
    return sched_.schedule_in(dt, std::move(a));
  }

  /// Runs until `t`; see Scheduler::run_until.
  std::size_t run_until(Time t) { return sched_.run_until(t); }
  std::size_t run() { return sched_.run(); }

 private:
  Scheduler sched_;
  Rng rng_;
  Logger logger_;
};

}  // namespace emptcp::sim
