#include "sim/random.hpp"

// Rng is header-only; see random.hpp.
