#include "sim/logging.hpp"

#include <cstdio>

namespace emptcp::sim {

namespace {
const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void Logger::set_sink(Sink sink) { sink_ = std::move(sink); }

void Logger::log(LogLevel level, Time t, const std::string& msg) {
  if (!enabled(level)) return;
  if (sink_) {
    sink_(level, t, msg);
    return;
  }
  std::fprintf(stderr, "[%10.4fs] %-5s %s\n", to_seconds(t), level_name(level),
               msg.c_str());
}

}  // namespace emptcp::sim
