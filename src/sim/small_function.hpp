// Small-buffer-optimised move-only callable for the event hot path.
//
// Every scheduled event stores one of these. std::function heap-allocates
// for captures beyond two pointers on most ABIs; almost all simulator
// actions capture at most `this` plus a pooled handle or a couple of
// scalars, so a 48-byte inline buffer makes the common case allocation-
// free. Larger captures transparently fall back to the heap, preserving
// std::function's generality.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace emptcp::sim {

class SmallFunction {
 public:
  static constexpr std::size_t kInlineBytes = 48;

  SmallFunction() = default;
  SmallFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFunction> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  SmallFunction(SmallFunction&& other) noexcept { move_from(other); }

  SmallFunction& operator=(SmallFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  SmallFunction& operator=(std::nullptr_t) {
    reset();
    return *this;
  }

  SmallFunction(const SmallFunction&) = delete;
  SmallFunction& operator=(const SmallFunction&) = delete;

  ~SmallFunction() { reset(); }

  void operator()() { ops_->invoke(obj_); }

  explicit operator bool() const { return ops_ != nullptr; }

 private:
  // One static table per callable type; `relocate` move-constructs into a
  // new inline buffer (null for heap-stored callables, which just move the
  // pointer).
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename F>
  void emplace(F&& f) {
    using D = std::decay_t<F>;
    if constexpr (sizeof(D) <= kInlineBytes &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      static constexpr Ops ops = {
          [](void* o) { (*static_cast<D*>(o))(); },
          [](void* dst, void* src) noexcept {
            ::new (dst) D(std::move(*static_cast<D*>(src)));
            static_cast<D*>(src)->~D();
          },
          [](void* o) noexcept { static_cast<D*>(o)->~D(); }};
      obj_ = ::new (buf_) D(std::forward<F>(f));
      ops_ = &ops;
    } else {
      static constexpr Ops ops = {
          [](void* o) { (*static_cast<D*>(o))(); },
          nullptr,
          [](void* o) noexcept { delete static_cast<D*>(o); }};
      obj_ = new D(std::forward<F>(f));
      ops_ = &ops;
    }
  }

  void move_from(SmallFunction& other) noexcept {
    ops_ = other.ops_;
    if (ops_ == nullptr) return;
    if (ops_->relocate != nullptr) {
      ops_->relocate(buf_, other.obj_);
      obj_ = buf_;
    } else {
      obj_ = other.obj_;
    }
    other.ops_ = nullptr;
    other.obj_ = nullptr;
  }

  void reset() noexcept {
    if (ops_ != nullptr) ops_->destroy(obj_);
    ops_ = nullptr;
    obj_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  void* obj_ = nullptr;
  const Ops* ops_ = nullptr;
};

}  // namespace emptcp::sim
