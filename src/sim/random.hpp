// Seeded random-number utilities.
//
// All stochastic elements of a run (on-off channel processes, background
// traffic, loss, wild-scenario sampling) draw from one Rng owned by the
// Simulation, so a (seed, scenario) pair fully determines a run. Experiments
// vary the seed per iteration exactly the way the paper repeats runs.
#pragma once

#include <cstdint>
#include <random>

namespace emptcp::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 1) : engine_(seed) {}

  void seed(std::uint64_t s) { engine_.seed(s); }

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Exponential with the given mean (not rate). mean must be > 0.
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Log-normal parameterised by the underlying normal's mu/sigma.
  double lognormal(double mu, double sigma) {
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace emptcp::sim
