#include "sim/shard_engine.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <new>
#include <stdexcept>
#include <string>

namespace emptcp::sim {

namespace detail {

void InboxSlab::require_payload(std::size_t bytes) {
  if (!chunks_.empty()) {
    if (bytes > payload_bytes_) {
      throw std::logic_error(
          "InboxSlab::require_payload: cannot widen slots after first use");
    }
    return;
  }
  payload_bytes_ = std::max(payload_bytes_, bytes);
}

InboxSlab::Header* InboxSlab::header(std::uint32_t slot) {
  unsigned char* chunk = chunks_[slot / kSlotsPerChunk].get();
  return reinterpret_cast<Header*>(chunk + (slot % kSlotsPerChunk) * stride_);
}

void InboxSlab::grow() {
  if (stride_ == 0) {
    constexpr std::size_t kAlign = alignof(Header);
    stride_ = sizeof(Header) +
              (payload_bytes_ + kAlign - 1) / kAlign * kAlign;
  }
  const auto base =
      static_cast<std::uint32_t>(chunks_.size() * kSlotsPerChunk);
  chunks_.push_back(
      std::make_unique<unsigned char[]>(stride_ * kSlotsPerChunk));
  unsigned char* chunk = chunks_.back().get();
  for (std::size_t i = kSlotsPerChunk; i-- > 0;) {
    auto* h = new (chunk + i * stride_) Header();
    h->next_free = free_head_;
    free_head_ = base + static_cast<std::uint32_t>(i);
  }
}

std::uint32_t InboxSlab::acquire(CrossSink* sink, Time t, const void* data,
                                 std::size_t size) {
  if (size > payload_bytes_) {
    throw std::length_error("InboxSlab::acquire: message of " +
                            std::to_string(size) +
                            " bytes exceeds the declared maximum of " +
                            std::to_string(payload_bytes_));
  }
  if (free_head_ == kNone) grow();
  const std::uint32_t slot = free_head_;
  Header* h = header(slot);
  free_head_ = h->next_free;
  h->sink = sink;
  h->t = t;
  h->size = static_cast<std::uint32_t>(size);
  if (size != 0) {
    std::memcpy(reinterpret_cast<unsigned char*>(h) + sizeof(Header), data,
                size);
  }
  ++allocated_;
  return slot;
}

void InboxSlab::fire(std::uint32_t slot) {
  Header* h = header(slot);
  h->sink->on_cross_message(
      h->t, reinterpret_cast<unsigned char*>(h) + sizeof(Header), h->size);
  h->next_free = free_head_;
  free_head_ = slot;
  --allocated_;
}

}  // namespace detail

namespace {

/// a + b clamped to kTimeNever (b may itself be kTimeNever); a >= 0.
Time sat_add(Time a, Duration b) {
  return b >= kTimeNever - a ? kTimeNever : a + b;
}

}  // namespace

ShardEngine::ShardEngine(std::size_t shards)
    : shards_(shards == 0 ? runtime::default_worker_count() : shards) {}

ShardEngine::~ShardEngine() = default;  // group_ joins before pool_ stops

std::size_t ShardEngine::add_place(Simulation& sim, std::string name) {
  if (started_) {
    throw std::logic_error(
        "ShardEngine::add_place: topology is frozen once run_until has run");
  }
  const std::size_t id = partition_.add_place(std::move(name));
  PlaceState place;
  place.sim = &sim;
  places_.push_back(std::move(place));
  scratch_.emplace_back();
  return id;
}

std::size_t ShardEngine::add_edge(std::size_t src, std::size_t dst,
                                  Duration lookahead, CrossSink& sink,
                                  std::size_t max_message_bytes) {
  if (started_) {
    throw std::logic_error(
        "ShardEngine::add_edge: topology is frozen once run_until has run");
  }
  const std::size_t id = partition_.add_edge(src, dst, lookahead);
  EdgeState edge;
  edge.sink = &sink;
  edges_.push_back(std::move(edge));
  places_[dst].in_edges.push_back(id);
  places_[dst].inbox.require_payload(max_message_bytes);
  return id;
}

void ShardEngine::post(std::size_t edge, Time t, const void* data,
                       std::size_t size) {
  EdgeState& e = edges_.at(edge);
  if (!started_) {
    throw std::logic_error(
        "ShardEngine::post: messages originate from executing events; there "
        "are none before the first run_until");
  }
  if (t < bound_) {
    const Partition::Edge& pe = partition_.edge(edge);
    throw std::logic_error(
        "ShardEngine::post: lookahead contract violated on edge " +
        partition_.place_name(pe.src) + " -> " + partition_.place_name(pe.dst) +
        ": message timestamp " + std::to_string(t) +
        " ns lands inside the executing window (bound " +
        std::to_string(bound_) + " ns, declared lookahead " +
        std::to_string(pe.lookahead) +
        " ns) — the edge's real minimum latency is smaller than declared");
  }
  if (e.blob.size() + size > 0xFFFFFFFFull) {
    throw std::overflow_error(
        "ShardEngine::post: per-epoch edge buffer exceeds 4 GiB");
  }
  Message m;
  m.t = t;
  m.seq = e.next_seq++;
  m.offset = static_cast<std::uint32_t>(e.blob.size());
  m.size = static_cast<std::uint32_t>(size);
  e.msgs.push_back(m);
  const auto* bytes = static_cast<const unsigned char*>(data);
  e.blob.insert(e.blob.end(), bytes, bytes + size);
}

void ShardEngine::request_lookahead_update(std::size_t edge,
                                           Duration lookahead) {
  EdgeState& e = edges_.at(edge);
  if (lookahead <= 0) {
    const Partition::Edge& pe = partition_.edge(edge);
    throw std::invalid_argument(
        "ShardEngine::request_lookahead_update: edge " +
        partition_.place_name(pe.src) + " -> " + partition_.place_name(pe.dst) +
        " updated to zero/negative lookahead (" + std::to_string(lookahead) +
        " ns); a conservative engine cannot synchronise across a zero-delay "
        "boundary");
  }
  if (!started_) {
    // No epoch is in flight: take effect immediately so the first window is
    // planned under the tightened bound.
    partition_.update_edge_lookahead(edge, lookahead);
    return;
  }
  e.pending_lookahead = lookahead;
}

void ShardEngine::ensure_started() {
  if (started_) return;
  if (places_.empty()) {
    throw std::logic_error("ShardEngine::run_until: no places registered");
  }
  started_ = true;
  std::size_t parties = std::min(shards_, places_.size());
  if (parties == 0) parties = 1;
  pool_ = std::make_unique<runtime::ThreadPool>(parties);
  group_ = std::make_unique<runtime::EpochGroup>(
      *pool_, parties, [this](std::size_t party) { run_phase(party); });
}

std::size_t ShardEngine::run_until(Time stop,
                                   const std::function<bool()>& done_at_barrier) {
  ensure_started();
  const std::uint64_t before = events_executed();
  for (;;) {
    if (done_at_barrier && done_at_barrier()) break;
    Time earliest = kTimeNever;
    for (const PlaceState& p : places_) {
      earliest = std::min(earliest, p.sim->scheduler().next_event_time());
    }
    if (earliest == kTimeNever || earliest > stop) {
      // Nothing left at or before `stop` anywhere: land every clock exactly
      // on `stop` (executes no events — the scan just proved there are
      // none) so a later run_until resumes from a well-defined time.
      if (stop != kTimeNever) {
        for (const PlaceState& p : places_) {
          if (p.sim->now() < stop) p.sim->run_until(stop);
        }
        if (now_ < stop) now_ = stop;
      }
      break;
    }
    const Duration window = partition_.min_lookahead();
    bound_ = std::min(sat_add(earliest, window), sat_add(stop, 1));
    const Time prev_now = now_;
    phase_ = Phase::kExec;
    group_->run();
    if (!edges_.empty()) {
      phase_ = Phase::kDrain;
      group_->run();
    }
    apply_pending_lookaheads();
    now_ = bound_ - 1;
    ++epochs_;
    account_epoch(prev_now);
  }
  return static_cast<std::size_t>(events_executed() - before);
}

void ShardEngine::account_epoch(Time prev_now) {
  // Deterministic aggregates first: integer arithmetic over virtual
  // state, always on (one pass over places alongside the earliest-scan).
  std::uint64_t total = 0;
  std::uint64_t busiest = 0;
  for (PlaceState& p : places_) {
    const std::uint64_t ev = p.sim->scheduler().events_executed();
    const std::uint64_t d = ev - p.last_events;
    p.last_events = ev;
    if (d != 0) {
      p.events_total += d;
      ++p.busy_epochs;
      total += d;
      if (d > busiest) busiest = d;
    }
  }
  ev_per_epoch_.add(total);
  adv_ns_per_epoch_.add(
      now_ > prev_now ? static_cast<std::uint64_t>(now_ - prev_now) : 0);
  const std::uint64_t cross = cross_messages();
  const std::uint64_t cross_delta = cross - prev_cross_;
  cross_per_epoch_.add(cross_delta);
  prev_cross_ = cross;
  std::uint64_t imbalance = 0;
  if (total != 0) {
    ++busy_epochs_;
    imbalance = busiest * places_.size() * 100 / total;
    imbalance_pct_.add(imbalance);
  }
  // Wall-clock counter tracks (Chrome "C" events), driver thread only.
  if (runtime::Telemetry::enabled()) {
    runtime::Telemetry& t = runtime::Telemetry::instance();
    t.counter("epoch.events", static_cast<double>(total));
    t.counter("epoch.cross_messages", static_cast<double>(cross_delta));
    t.counter("epoch.imbalance_pct", static_cast<double>(imbalance));
  }
}

void ShardEngine::run_phase(std::size_t party) {
  const std::size_t parties = group_->parties();
  const bool wall = runtime::Telemetry::enabled();
  for (std::size_t i = party; i < places_.size(); i += parties) {
    if (phase_ == Phase::kExec) {
      PlaceState& place = places_[i];
      if (!wall) {
        exec_place(place);
        continue;
      }
      // Per-place span + work accounting. The span name is interned once
      // (cold path) because exports may outlive the engine.
      if (place.span_name == nullptr) {
        place.span_name = runtime::Telemetry::instance().intern(
            "exec " + partition_.place_name(i));
      }
      runtime::ScopedSpan span(place.span_name);
      const auto t0 = std::chrono::steady_clock::now();
      exec_place(place);
      place.work_s +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
    } else {
      EMPTCP_SPAN("epoch.drain");
      drain_place(i);
    }
  }
}

void ShardEngine::exec_place(PlaceState& place) {
  // The worker thread executes this place's events, so the thread-local
  // current-sink shortcut (flight-recorder dumps, panic paths) must point at
  // this place's sink for the duration.
  trace::TraceSink* prev =
      trace::detail::set_current_sink(&place.sim->trace());
  try {
    place.sim->run_until(bound_ - 1);
  } catch (...) {
    trace::detail::set_current_sink(prev);
    throw;
  }
  trace::detail::set_current_sink(prev);
}

void ShardEngine::drain_place(std::size_t place_index) {
  PlaceState& place = places_[place_index];
  std::vector<DrainItem>& items = scratch_[place_index];
  items.clear();
  for (const std::size_t edge_id : place.in_edges) {
    for (const Message& m : edges_[edge_id].msgs) {
      items.push_back(DrainItem{m, edge_id});
    }
  }
  // Deterministic insertion order regardless of shard count: by timestamp,
  // then edge id (parallel edges between the same pair exist), then the
  // per-edge posting sequence.
  std::sort(items.begin(), items.end(),
            [](const DrainItem& a, const DrainItem& b) {
              if (a.msg.t != b.msg.t) return a.msg.t < b.msg.t;
              if (a.edge != b.edge) return a.edge < b.edge;
              return a.msg.seq < b.msg.seq;
            });
  detail::InboxSlab* slab = &place.inbox;
  for (const DrainItem& item : items) {
    EdgeState& e = edges_[item.edge];
    const std::uint32_t slot = slab->acquire(
        e.sink, item.msg.t, e.blob.data() + item.msg.offset, item.msg.size);
    place.sim->at(item.msg.t, [slab, slot] { slab->fire(slot); });
  }
  for (const std::size_t edge_id : place.in_edges) {
    edges_[edge_id].msgs.clear();
    edges_[edge_id].blob.clear();
  }
}

void ShardEngine::apply_pending_lookaheads() {
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    if (edges_[i].pending_lookahead > 0) {
      partition_.update_edge_lookahead(i, edges_[i].pending_lookahead);
      edges_[i].pending_lookahead = 0;
    }
  }
}

std::uint64_t ShardEngine::cross_messages() const {
  std::uint64_t total = 0;
  for (const EdgeState& e : edges_) total += e.next_seq;
  return total;
}

std::uint64_t ShardEngine::events_executed() const {
  std::uint64_t total = 0;
  for (const PlaceState& p : places_) {
    total += p.sim->scheduler().events_executed();
  }
  return total;
}

ShardEnginePerf ShardEngine::perf() const {
  ShardEnginePerf perf;
  perf.epochs = epochs_;
  perf.busy_epochs = busy_epochs_;
  perf.min_lookahead = partition_.edge_count() > 0 ? partition_.min_lookahead() : 0;
  perf.cross_messages = cross_messages();
  perf.events_per_epoch = ev_per_epoch_;
  perf.advance_ns_per_epoch = adv_ns_per_epoch_;
  perf.cross_per_epoch = cross_per_epoch_;
  perf.imbalance_pct = imbalance_pct_;
  perf.places.reserve(places_.size());
  for (std::size_t i = 0; i < places_.size(); ++i) {
    const PlaceState& p = places_[i];
    ShardEnginePerf::Place out;
    out.name = partition_.place_name(i);
    out.events = p.events_total;
    out.busy_epochs = p.busy_epochs;
    out.work_s = p.work_s;
    perf.places.push_back(std::move(out));
  }
  if (group_) {
    for (const runtime::EpochGroup::PartyStats& s : group_->party_stats()) {
      perf.parties.push_back(ShardEnginePerf::Party{s.busy_s, s.wait_s});
    }
  }
  return perf;
}

}  // namespace emptcp::sim
