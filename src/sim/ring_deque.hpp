// Allocation-stable FIFO ring.
//
// Drop-in replacement for the FIFO subset of std::deque (push_back /
// pop_front / front / back / iteration). A std::deque that cycles at
// steady state allocates and frees a fixed-size block every few elements,
// which puts the allocator on the per-packet path of every link queue and
// retransmission buffer. RingDeque grows to its high-water capacity once
// and then never touches the allocator again.
//
// T must be default-constructible and move-assignable. pop_front()
// assigns a default-constructed T into the vacated slot so RAII handles
// (e.g. PooledPacket) release their resources immediately, not when the
// slot is eventually overwritten.
#pragma once

#include <cstddef>
#include <iterator>
#include <memory>
#include <utility>

namespace emptcp::sim {

template <typename T>
class RingDeque {
 public:
  RingDeque() = default;

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

  T& operator[](std::size_t i) { return slots_[wrap(head_ + i)]; }
  const T& operator[](std::size_t i) const { return slots_[wrap(head_ + i)]; }

  T& front() { return slots_[head_]; }
  const T& front() const { return slots_[head_]; }
  T& back() { return (*this)[size_ - 1]; }
  const T& back() const { return (*this)[size_ - 1]; }

  void push_back(const T& value) { emplace_back(value); }
  void push_back(T&& value) { emplace_back(std::move(value)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) grow();
    T& slot = slots_[wrap(head_ + size_)];
    slot = T(std::forward<Args>(args)...);
    ++size_;
    return slot;
  }

  void pop_front() {
    slots_[head_] = T();
    head_ = wrap(head_ + 1);
    --size_;
  }

  void clear() {
    while (size_ > 0) pop_front();
    head_ = 0;
  }

  template <bool Const>
  class Iter {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = T;
    using difference_type = std::ptrdiff_t;
    using pointer = std::conditional_t<Const, const T*, T*>;
    using reference = std::conditional_t<Const, const T&, T&>;
    using Ring = std::conditional_t<Const, const RingDeque, RingDeque>;

    Iter(Ring* ring, std::size_t i) : ring_(ring), i_(i) {}
    reference operator*() const { return (*ring_)[i_]; }
    pointer operator->() const { return &(*ring_)[i_]; }
    Iter& operator++() {
      ++i_;
      return *this;
    }
    Iter operator++(int) {
      Iter t = *this;
      ++i_;
      return t;
    }
    bool operator==(const Iter& other) const = default;

   private:
    Ring* ring_;
    std::size_t i_;
  };

  using iterator = Iter<false>;
  using const_iterator = Iter<true>;

  iterator begin() { return {this, 0}; }
  iterator end() { return {this, size_}; }
  const_iterator begin() const { return {this, 0}; }
  const_iterator end() const { return {this, size_}; }

 private:
  // Capacity is a power of two so indices wrap with a mask.
  [[nodiscard]] std::size_t wrap(std::size_t i) const {
    return i & (capacity_ - 1);
  }

  void grow() {
    const std::size_t cap = capacity_ == 0 ? 16 : capacity_ * 2;
    auto next = std::make_unique<T[]>(cap);
    for (std::size_t i = 0; i < size_; ++i) next[i] = std::move((*this)[i]);
    slots_ = std::move(next);
    capacity_ = cap;
    head_ = 0;
  }

  std::unique_ptr<T[]> slots_;
  std::size_t capacity_ = 0;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace emptcp::sim
