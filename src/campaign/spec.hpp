// Declarative campaign specifications.
//
// A campaign is a scenario grid — protocol × fleet size × seed — over one
// workload description, written either as JSON or as key=value lines:
//
//   # §4.6-style baseline sweep
//   name          = sec46-fleet
//   protocols     = emptcp, mptcp
//   fleet_sizes   = 4, 16
//   seeds         = 1, 2, 3
//   mode          = closed
//   flows_per_client = 2
//   size.kind     = lognormal
//   size.log_mu   = 13.2
//   scenario.wifi.down_mbps = 12
//
// Both syntaxes flatten to the same dotted-path document (the JSON path
// reuses analysis::parse_json_flat), so one applier populates the spec and
// unknown keys fail loudly — a typo'd knob aborts instead of silently
// running the default. The parsed spec holds a complete FleetConfig
// template; the runner stamps protocol and fleet size per cell.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "workload/fleet.hpp"

namespace emptcp::campaign {

inline constexpr std::string_view kCampaignSchema = "emptcp-campaign-v1";

struct CampaignSpec {
  std::string name = "campaign";
  std::vector<app::Protocol> protocols;
  std::vector<std::size_t> fleet_sizes;
  std::vector<std::uint64_t> seeds;
  /// Workload template: scenario + mode + distributions + sharding
  /// (`sharding.clients_per_cell` > 0 runs each cell's fleet on the
  /// conservative shard engine; `sharding.shards` picks the worker count
  /// without changing a single output byte). The runner overrides
  /// `protocol` and `clients` per cell and forces trace on.
  workload::FleetConfig workload;

  [[nodiscard]] std::size_t cell_count() const {
    return protocols.size() * fleet_sizes.size() * seeds.size();
  }
};

/// Filename-safe lowercase protocol tag ("tcp-wifi", "emptcp", ...), also
/// accepted back by app::protocol_from_string.
const char* protocol_slug(app::Protocol p);

/// Parses a spec from text (JSON object or key=value lines, auto-detected
/// by a leading '{'). False with a diagnostic in `err` on malformed input,
/// unknown keys, or an incomplete grid (empty protocols/fleet_sizes/seeds).
bool parse_campaign_spec(std::string_view text, CampaignSpec& out,
                         std::string& err);

/// parse_campaign_spec over a file's contents.
bool load_campaign_spec(const std::string& path, CampaignSpec& out,
                        std::string& err);

}  // namespace emptcp::campaign
