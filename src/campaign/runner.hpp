// Campaign execution: the grid, the artifacts, and the resume ledger.
//
// Each cell (protocol, fleet size, seed) runs one fleet simulation —
// single-World ClientFleet, or the sharded multi-cell engine when the
// spec sets `sharding.clients_per_cell` — and writes the standard
// artifact pair — `<label>.jsonl` trace plus
// `<label>.manifest.json` — into the output directory, exactly the format
// the benches emit under EMPTCP_TRACE_DIR and `emptcp-report` consumes.
//
// Determinism & decorrelation: every cell seeds its simulation with
// fnv1a64("name|protocol|f<fleet>|s<seed>"), a pure function of the cell's
// identity. Cells are therefore independent of grid order and worker
// count: running sequentially, on 4 workers, or resuming half-way produces
// byte-identical artifacts.
//
// Resume: a `campaign.ledger` file in the output directory records
// "<label> <digest>" per completed cell, appended (flushed) as cells
// finish and rewritten sorted at the end. On start the runner skips any
// cell whose ledger entry, manifest and trace digest all agree — an
// interrupted campaign re-runs only what is missing or corrupt.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "campaign/spec.hpp"

namespace emptcp::campaign {

struct CampaignCell {
  app::Protocol protocol = app::Protocol::kEmptcp;
  std::size_t fleet_size = 0;
  std::uint64_t seed = 0;          ///< spec-level replication seed
  std::uint64_t derived_seed = 0;  ///< what actually seeds the simulation
  std::string label;               ///< artifact basename
};

/// fnv1a64 over "name|protocol-slug|f<fleet>|s<seed>".
std::uint64_t derive_cell_seed(const std::string& campaign_name,
                               app::Protocol p, std::size_t fleet_size,
                               std::uint64_t seed);

struct CellOutcome {
  CampaignCell cell;
  enum class Kind : std::uint8_t {
    kRan,      ///< simulated this invocation
    kResumed,  ///< verified complete from a previous invocation; skipped
  };
  Kind kind = Kind::kRan;
};

struct CampaignResult {
  std::vector<CellOutcome> cells;  ///< grid order
  std::size_t ran = 0;
  std::size_t resumed = 0;
};

class CampaignRunner {
 public:
  CampaignRunner(CampaignSpec spec, std::string out_dir);

  /// The grid in spec order: protocols × fleet_sizes × seeds.
  [[nodiscard]] std::vector<CampaignCell> cells() const;

  /// Runs (or resumes) the whole campaign on `workers` pool threads
  /// (0 = all cores, respecting EMPTCP_JOBS). Throws on IO failure.
  CampaignResult run(std::size_t workers = 0);

  /// Live progress: while run() executes, append one status line to
  /// `<out_dir>/heartbeat.jsonl` every `seconds` (wall clock), plus one
  /// final line after the grid completes. 0 disables (the default — the
  /// heartbeat file is wall-clock data, so it is opt-in and lives outside
  /// the deterministic artifact set the ledger covers).
  void set_heartbeat(double seconds) { heartbeat_s_ = seconds; }
  [[nodiscard]] std::string heartbeat_path() const;

  [[nodiscard]] const CampaignSpec& spec() const { return spec_; }
  [[nodiscard]] const std::string& out_dir() const { return out_dir_; }
  [[nodiscard]] std::string ledger_path() const;

 private:
  std::string run_cell(const CampaignCell& cell);  ///< returns trace digest
  void append_heartbeat(double wall_s);
  void export_campaign_telemetry() const;

  CampaignSpec spec_;
  std::string out_dir_;
  std::mutex ledger_mu_;

  double heartbeat_s_ = 0.0;
  /// Shared between pool workers (run_cell) and the heartbeat thread.
  struct Progress {
    std::size_t total = 0;
    std::size_t done = 0;  ///< completed this run + resumed
    std::vector<std::string> running;
    std::size_t ran = 0;            ///< completed this invocation only
    std::uint64_t events_done = 0;  ///< simulator events, completed cells
    double cell_wall_s = 0.0;       ///< summed per-cell wall time
    std::size_t workers = 1;
  };
  std::mutex progress_mu_;
  Progress progress_;
};

}  // namespace emptcp::campaign
