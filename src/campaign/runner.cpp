#include "campaign/runner.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "analysis/manifest.hpp"
#include "analysis/perf_report.hpp"
#include "runtime/replication.hpp"
#include "runtime/telemetry.hpp"
#include "stats/csv.hpp"
#include "stats/trace_export.hpp"
#include "workload/sharded_fleet.hpp"

namespace emptcp::campaign {
namespace {

namespace fs = std::filesystem;

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

/// Ledger lines -> (label, digest) pairs; malformed lines are dropped (a
/// torn final line from a killed run must not poison the resume).
std::vector<std::pair<std::string, std::string>> read_ledger(
    const std::string& path) {
  std::vector<std::pair<std::string, std::string>> entries;
  std::string text;
  if (!read_file(path, text)) return entries;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) break;  // no newline: torn write, drop
    const std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    const std::size_t sp = line.find(' ');
    if (sp == std::string::npos || sp == 0 || sp + 1 >= line.size()) continue;
    entries.emplace_back(line.substr(0, sp), line.substr(sp + 1));
  }
  return entries;
}

const std::string* ledger_digest(
    const std::vector<std::pair<std::string, std::string>>& ledger,
    const std::string& label) {
  for (const auto& [l, d] : ledger) {
    if (l == label) return &d;
  }
  return nullptr;
}

std::string quoted(const std::string& s) { return "\"" + s + "\""; }

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// EMPTCP_PERF_DIR, or nullptr when unset/empty.
const char* perf_dir() {
  const char* dir = std::getenv("EMPTCP_PERF_DIR");
  return dir != nullptr && *dir != '\0' ? dir : nullptr;
}

}  // namespace

std::uint64_t derive_cell_seed(const std::string& campaign_name,
                               app::Protocol p, std::size_t fleet_size,
                               std::uint64_t seed) {
  const std::string key = campaign_name + "|" + protocol_slug(p) + "|f" +
                          std::to_string(fleet_size) + "|s" +
                          std::to_string(seed);
  std::uint64_t h = analysis::fnv1a64(key);
  // An all-zero seed would collapse mt19937_64 initialisation quality;
  // vanishingly unlikely, but free to rule out.
  return h == 0 ? 1 : h;
}

CampaignRunner::CampaignRunner(CampaignSpec spec, std::string out_dir)
    : spec_(std::move(spec)), out_dir_(std::move(out_dir)) {}

std::string CampaignRunner::ledger_path() const {
  return out_dir_ + "/campaign.ledger";
}

std::string CampaignRunner::heartbeat_path() const {
  return out_dir_ + "/heartbeat.jsonl";
}

void CampaignRunner::append_heartbeat(double wall_s) {
  Progress p;
  {
    const std::lock_guard<std::mutex> lock(progress_mu_);
    p = progress_;
  }
  const std::size_t remaining = p.total - std::min(p.done, p.total);
  // ETA from completed-cell wall time: remaining cells at the mean cell
  // cost, divided across the pool. 0 until the first cell lands.
  const double mean_cell =
      p.ran > 0 ? p.cell_wall_s / static_cast<double>(p.ran) : 0.0;
  const double eta_s =
      p.workers > 0
          ? static_cast<double>(remaining) * mean_cell /
                static_cast<double>(p.workers)
          : 0.0;
  // Per-worker simulator throughput over completed cells.
  const double events_per_sec =
      p.cell_wall_s > 0.0
          ? static_cast<double>(p.events_done) / p.cell_wall_s
          : 0.0;

  std::string line = "{\"schema\": \"emptcp-heartbeat-v1\"";
  line += ", \"wall_s\": " + stats::fmt_double(wall_s);
  line += ", \"cells_total\": " + std::to_string(p.total);
  line += ", \"cells_done\": " + std::to_string(p.done);
  line += ", \"cells_running\": [";
  for (std::size_t i = 0; i < p.running.size(); ++i) {
    if (i != 0) line += ", ";
    line += "\"" + p.running[i] + "\"";
  }
  line += "]";
  line += ", \"events_per_sec\": " + stats::fmt_double(events_per_sec);
  line += ", \"eta_s\": " + stats::fmt_double(eta_s);
  line += "}\n";

  std::ofstream out(heartbeat_path(), std::ios::binary | std::ios::app);
  if (!out) {
    std::fprintf(stderr, "campaign: warning: cannot append %s\n",
                 heartbeat_path().c_str());
    return;
  }
  out << line;
  out.flush();
}

void CampaignRunner::export_campaign_telemetry() const {
  // Campaign-level telemetry artifacts (quiescent: the pool is gone, so
  // every per-thread span buffer is stable): the full Chrome trace for
  // Perfetto plus the aggregated span table as a PerfDoc.
  if (!runtime::Telemetry::enabled()) return;
  const char* dir = perf_dir();
  if (dir == nullptr) return;
  std::error_code ec;
  fs::create_directories(dir, ec);
  const std::string base = std::string(dir) + "/campaign-" + spec_.name;
  runtime::Telemetry& t = runtime::Telemetry::instance();
  if (!stats::write_file(base + ".trace.json", t.to_chrome_json())) {
    std::fprintf(stderr, "campaign: warning: cannot write %s.trace.json\n",
                 base.c_str());
  }
  analysis::PerfDoc doc;
  doc.label = "campaign " + spec_.name;
  analysis::fill_spans(doc);
  if (!stats::write_file(base + ".perf.json",
                         analysis::perf_doc_to_json(doc))) {
    std::fprintf(stderr, "campaign: warning: cannot write %s.perf.json\n",
                 base.c_str());
  }
}

std::vector<CampaignCell> CampaignRunner::cells() const {
  std::vector<CampaignCell> grid;
  grid.reserve(spec_.cell_count());
  for (const app::Protocol p : spec_.protocols) {
    for (const std::size_t fleet : spec_.fleet_sizes) {
      for (const std::uint64_t seed : spec_.seeds) {
        CampaignCell cell;
        cell.protocol = p;
        cell.fleet_size = fleet;
        cell.seed = seed;
        cell.derived_seed = derive_cell_seed(spec_.name, p, fleet, seed);
        cell.label = spec_.name + "-" + protocol_slug(p) + "-f" +
                     std::to_string(fleet) + "-s" + std::to_string(seed);
        grid.push_back(std::move(cell));
      }
    }
  }
  return grid;
}

std::string CampaignRunner::run_cell(const CampaignCell& cell) {
  const auto t0 = std::chrono::steady_clock::now();
  {
    const std::lock_guard<std::mutex> lock(progress_mu_);
    progress_.running.push_back(cell.label);
  }

  workload::FleetConfig cfg = spec_.workload;
  cfg.protocol = cell.protocol;
  cfg.clients = cell.fleet_size;
  cfg.scenario.trace = true;

  // Dispatches on cell structure: clients_per_cell == 0 runs the classic
  // single-World ClientFleet, anything else the sharded engine. Either
  // way the artifacts are a pure function of (cfg, seed) — the shard
  // count never leaks into them.
  workload::FleetMetrics m;
  {
    // One span per cell (interned: the label must outlive this frame —
    // the campaign trace is exported after all cells finish).
    std::optional<runtime::ScopedSpan> span;
    if (runtime::Telemetry::enabled()) {
      span.emplace(
          runtime::Telemetry::instance().intern("cell " + cell.label));
    }
    m = workload::run_fleet(cfg, cell.derived_seed);
  }

  const std::string jsonl =
      stats::trace_to_jsonl(m.run.trace_events, m.run.trace_metrics);
  const std::string trace_file = cell.label + ".jsonl";
  const std::string trace_path = out_dir_ + "/" + trace_file;
  if (!stats::write_file(trace_path, jsonl)) {
    throw std::runtime_error("campaign: cannot write " + trace_path);
  }

  analysis::RunManifest manifest;
  manifest.group = spec_.name;
  manifest.protocol = app::to_string(cell.protocol);
  manifest.seed = cell.seed;
  manifest.workload =
      std::string("fleet/") +
      (cfg.mode == workload::FleetConfig::Mode::kClosed ? "closed" : "open") +
      "/c" + std::to_string(cell.fleet_size);
  const bool sharded = cfg.sharding.clients_per_cell != 0;
  if (sharded) {
    manifest.workload += "/cells" + std::to_string(cfg.cell_count());
  }
  manifest.trace_file = trace_file;
  manifest.trace_events = m.run.trace_events.size();
  manifest.trace_digest = analysis::fnv1a64_hex(jsonl);
  manifest.params = analysis::describe_scenario(cfg.scenario);
  manifest.params.emplace_back("fleet.clients",
                               std::to_string(cell.fleet_size));
  manifest.params.emplace_back("fleet.flows_per_client",
                               std::to_string(cfg.flows_per_client));
  manifest.params.emplace_back(
      "fleet.mode",
      quoted(cfg.mode == workload::FleetConfig::Mode::kClosed ? "closed"
                                                              : "open"));
  if (sharded) {
    // The topology (cells, cross-traffic pattern) is part of the cell's
    // identity; the worker-shard count deliberately is NOT — artifacts
    // must be byte-identical for any shards value, so recording it would
    // break ledger verification across machines.
    manifest.params.emplace_back("fleet.cells",
                                 std::to_string(cfg.cell_count()));
    manifest.params.emplace_back(
        "fleet.clients_per_cell",
        std::to_string(cfg.sharding.clients_per_cell));
    manifest.params.emplace_back("fleet.cross_every",
                                 std::to_string(cfg.sharding.cross_every));
  }
  // Rendered as a string: a 64-bit hash is not exactly representable as a
  // JSON double.
  manifest.params.emplace_back("fleet.derived_seed",
                               quoted(std::to_string(cell.derived_seed)));
  for (auto& kv : analysis::describe_build()) {
    manifest.params.push_back(std::move(kv));
  }
  const std::string manifest_path =
      out_dir_ + "/" + cell.label + ".manifest.json";
  if (!stats::write_file(manifest_path,
                         analysis::manifest_to_json(manifest))) {
    throw std::runtime_error("campaign: cannot write " + manifest_path);
  }

  // Perf sidecar: engine telemetry goes to EMPTCP_PERF_DIR, never into
  // out_dir_ — resume verification and the determinism gates byte-compare
  // the campaign directory, and perf data is wall-clock noise.
  if (m.perf) {
    if (const char* dir = perf_dir()) {
      analysis::PerfDoc doc = *m.perf;
      doc.label = cell.label;
      const std::string path =
          std::string(dir) + "/" + cell.label + ".perf.json";
      if (!stats::write_file(path, analysis::perf_doc_to_json(doc))) {
        std::fprintf(stderr, "campaign: warning: cannot write %s\n",
                     path.c_str());
      }
    }
  }

  {
    const std::lock_guard<std::mutex> lock(progress_mu_);
    ++progress_.done;
    ++progress_.ran;
    progress_.events_done += m.run.profile.events_executed;
    progress_.cell_wall_s += seconds_since(t0);
    auto it = std::find(progress_.running.begin(), progress_.running.end(),
                        cell.label);
    if (it != progress_.running.end()) progress_.running.erase(it);
  }
  return manifest.trace_digest;
}

CampaignResult CampaignRunner::run(std::size_t workers) {
  // Programmatic specs bypass load_campaign_spec's validation, and an
  // empty grid would "succeed" having run nothing — fail loudly instead.
  if (spec_.cell_count() == 0) {
    throw std::invalid_argument(
        "campaign: spec \"" + spec_.name +
        "\" produces an empty cell grid (protocols x fleet_sizes x seeds "
        "must all be non-empty)");
  }

  std::error_code ec;
  fs::create_directories(out_dir_, ec);
  if (ec) {
    throw std::runtime_error("campaign: cannot create " + out_dir_ + ": " +
                             ec.message());
  }

  const std::vector<CampaignCell> grid = cells();
  const auto ledger = read_ledger(ledger_path());

  // Classify every cell up front: complete (ledger + manifest + trace all
  // agree) cells resume, everything else runs.
  std::vector<bool> complete(grid.size(), false);
  std::vector<std::string> digests(grid.size());
  std::vector<CampaignCell> pending;
  std::vector<std::size_t> pending_index;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const CampaignCell& cell = grid[i];
    const std::string* led = ledger_digest(ledger, cell.label);
    if (led != nullptr) {
      std::string manifest_text;
      std::string trace_text;
      if (read_file(out_dir_ + "/" + cell.label + ".manifest.json",
                    manifest_text) &&
          read_file(out_dir_ + "/" + cell.label + ".jsonl", trace_text)) {
        std::string err;
        analysis::RunManifest manifest;
        const auto doc = analysis::parse_json_flat(manifest_text, &err);
        if (doc && analysis::manifest_from_json(*doc, manifest) &&
            manifest.trace_digest == *led &&
            analysis::fnv1a64_hex(trace_text) == *led) {
          complete[i] = true;
          digests[i] = *led;
        }
      }
    }
    if (!complete[i]) {
      pending.push_back(cell);
      pending_index.push_back(i);
    }
  }

  {
    const std::lock_guard<std::mutex> lock(progress_mu_);
    progress_ = Progress();
    progress_.total = grid.size();
    progress_.done = grid.size() - pending.size();  // resumed cells
    progress_.workers =
        workers == 0 ? runtime::default_worker_count() : workers;
  }

  // Heartbeat thread: wakes every heartbeat_s_ and appends a status line.
  // The cv (not sleep) makes shutdown immediate, and the guard makes it
  // exception-safe around the pool run below.
  std::mutex hb_mu;
  std::condition_variable hb_cv;
  bool hb_stop = false;
  std::thread hb_thread;
  const auto hb_t0 = std::chrono::steady_clock::now();
  const auto stop_heartbeat = [&]() noexcept {
    if (!hb_thread.joinable()) return;
    {
      const std::lock_guard<std::mutex> lock(hb_mu);
      hb_stop = true;
    }
    hb_cv.notify_all();
    hb_thread.join();
  };
  if (heartbeat_s_ > 0.0) {
    hb_thread = std::thread([&] {
      std::unique_lock<std::mutex> lock(hb_mu);
      while (!hb_cv.wait_for(lock,
                             std::chrono::duration<double>(heartbeat_s_),
                             [&] { return hb_stop; })) {
        lock.unlock();
        append_heartbeat(seconds_since(hb_t0));
        lock.lock();
      }
    });
  }

  // Run what's left on the pool. Each finished cell appends to the ledger
  // immediately (flushed), so a kill mid-campaign loses at most the cells
  // in flight.
  try {
    if (!pending.empty()) {
      const std::vector<std::uint64_t> one{0};
      auto ran = runtime::run_replications(
          pending, one,
          [this](const CampaignCell& cell, std::uint64_t) {
            std::string digest = run_cell(cell);
            {
              const std::lock_guard<std::mutex> lock(ledger_mu_);
              std::ofstream out(ledger_path(),
                                std::ios::binary | std::ios::app);
              out << cell.label << ' ' << digest << '\n';
              out.flush();
            }
            return digest;
          },
          workers);
      for (std::size_t k = 0; k < pending.size(); ++k) {
        digests[pending_index[k]] = std::move(ran[k][0]);
      }
    }
  } catch (...) {
    stop_heartbeat();
    throw;
  }
  stop_heartbeat();
  // One final line regardless of timing, so an enabled heartbeat always
  // ends with a done == total record (what the gate asserts on).
  if (heartbeat_s_ > 0.0) append_heartbeat(seconds_since(hb_t0));

  // Rewrite the ledger sorted: the final file is a pure function of the
  // grid, independent of completion order and worker count.
  std::vector<std::string> lines;
  lines.reserve(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    lines.push_back(grid[i].label + " " + digests[i] + "\n");
  }
  std::sort(lines.begin(), lines.end());
  std::string ledger_text;
  for (const std::string& line : lines) ledger_text += line;
  if (!stats::write_file(ledger_path(), ledger_text)) {
    throw std::runtime_error("campaign: cannot write " + ledger_path());
  }

  export_campaign_telemetry();

  CampaignResult result;
  result.cells.reserve(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    CellOutcome outcome;
    outcome.cell = grid[i];
    outcome.kind = complete[i] ? CellOutcome::Kind::kResumed
                               : CellOutcome::Kind::kRan;
    (complete[i] ? result.resumed : result.ran) += 1;
    result.cells.push_back(std::move(outcome));
  }
  return result;
}

}  // namespace emptcp::campaign
