#include "campaign/runner.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "analysis/manifest.hpp"
#include "runtime/replication.hpp"
#include "stats/csv.hpp"
#include "stats/trace_export.hpp"
#include "workload/sharded_fleet.hpp"

namespace emptcp::campaign {
namespace {

namespace fs = std::filesystem;

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

/// Ledger lines -> (label, digest) pairs; malformed lines are dropped (a
/// torn final line from a killed run must not poison the resume).
std::vector<std::pair<std::string, std::string>> read_ledger(
    const std::string& path) {
  std::vector<std::pair<std::string, std::string>> entries;
  std::string text;
  if (!read_file(path, text)) return entries;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) break;  // no newline: torn write, drop
    const std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    const std::size_t sp = line.find(' ');
    if (sp == std::string::npos || sp == 0 || sp + 1 >= line.size()) continue;
    entries.emplace_back(line.substr(0, sp), line.substr(sp + 1));
  }
  return entries;
}

const std::string* ledger_digest(
    const std::vector<std::pair<std::string, std::string>>& ledger,
    const std::string& label) {
  for (const auto& [l, d] : ledger) {
    if (l == label) return &d;
  }
  return nullptr;
}

std::string quoted(const std::string& s) { return "\"" + s + "\""; }

}  // namespace

std::uint64_t derive_cell_seed(const std::string& campaign_name,
                               app::Protocol p, std::size_t fleet_size,
                               std::uint64_t seed) {
  const std::string key = campaign_name + "|" + protocol_slug(p) + "|f" +
                          std::to_string(fleet_size) + "|s" +
                          std::to_string(seed);
  std::uint64_t h = analysis::fnv1a64(key);
  // An all-zero seed would collapse mt19937_64 initialisation quality;
  // vanishingly unlikely, but free to rule out.
  return h == 0 ? 1 : h;
}

CampaignRunner::CampaignRunner(CampaignSpec spec, std::string out_dir)
    : spec_(std::move(spec)), out_dir_(std::move(out_dir)) {}

std::string CampaignRunner::ledger_path() const {
  return out_dir_ + "/campaign.ledger";
}

std::vector<CampaignCell> CampaignRunner::cells() const {
  std::vector<CampaignCell> grid;
  grid.reserve(spec_.cell_count());
  for (const app::Protocol p : spec_.protocols) {
    for (const std::size_t fleet : spec_.fleet_sizes) {
      for (const std::uint64_t seed : spec_.seeds) {
        CampaignCell cell;
        cell.protocol = p;
        cell.fleet_size = fleet;
        cell.seed = seed;
        cell.derived_seed = derive_cell_seed(spec_.name, p, fleet, seed);
        cell.label = spec_.name + "-" + protocol_slug(p) + "-f" +
                     std::to_string(fleet) + "-s" + std::to_string(seed);
        grid.push_back(std::move(cell));
      }
    }
  }
  return grid;
}

std::string CampaignRunner::run_cell(const CampaignCell& cell) {
  workload::FleetConfig cfg = spec_.workload;
  cfg.protocol = cell.protocol;
  cfg.clients = cell.fleet_size;
  cfg.scenario.trace = true;

  // Dispatches on cell structure: clients_per_cell == 0 runs the classic
  // single-World ClientFleet, anything else the sharded engine. Either
  // way the artifacts are a pure function of (cfg, seed) — the shard
  // count never leaks into them.
  const workload::FleetMetrics m = workload::run_fleet(cfg, cell.derived_seed);

  const std::string jsonl =
      stats::trace_to_jsonl(m.run.trace_events, m.run.trace_metrics);
  const std::string trace_file = cell.label + ".jsonl";
  const std::string trace_path = out_dir_ + "/" + trace_file;
  if (!stats::write_file(trace_path, jsonl)) {
    throw std::runtime_error("campaign: cannot write " + trace_path);
  }

  analysis::RunManifest manifest;
  manifest.group = spec_.name;
  manifest.protocol = app::to_string(cell.protocol);
  manifest.seed = cell.seed;
  manifest.workload =
      std::string("fleet/") +
      (cfg.mode == workload::FleetConfig::Mode::kClosed ? "closed" : "open") +
      "/c" + std::to_string(cell.fleet_size);
  const bool sharded = cfg.sharding.clients_per_cell != 0;
  if (sharded) {
    manifest.workload += "/cells" + std::to_string(cfg.cell_count());
  }
  manifest.trace_file = trace_file;
  manifest.trace_events = m.run.trace_events.size();
  manifest.trace_digest = analysis::fnv1a64_hex(jsonl);
  manifest.params = analysis::describe_scenario(cfg.scenario);
  manifest.params.emplace_back("fleet.clients",
                               std::to_string(cell.fleet_size));
  manifest.params.emplace_back("fleet.flows_per_client",
                               std::to_string(cfg.flows_per_client));
  manifest.params.emplace_back(
      "fleet.mode",
      quoted(cfg.mode == workload::FleetConfig::Mode::kClosed ? "closed"
                                                              : "open"));
  if (sharded) {
    // The topology (cells, cross-traffic pattern) is part of the cell's
    // identity; the worker-shard count deliberately is NOT — artifacts
    // must be byte-identical for any shards value, so recording it would
    // break ledger verification across machines.
    manifest.params.emplace_back("fleet.cells",
                                 std::to_string(cfg.cell_count()));
    manifest.params.emplace_back(
        "fleet.clients_per_cell",
        std::to_string(cfg.sharding.clients_per_cell));
    manifest.params.emplace_back("fleet.cross_every",
                                 std::to_string(cfg.sharding.cross_every));
  }
  // Rendered as a string: a 64-bit hash is not exactly representable as a
  // JSON double.
  manifest.params.emplace_back("fleet.derived_seed",
                               quoted(std::to_string(cell.derived_seed)));
  for (auto& kv : analysis::describe_build()) {
    manifest.params.push_back(std::move(kv));
  }
  const std::string manifest_path =
      out_dir_ + "/" + cell.label + ".manifest.json";
  if (!stats::write_file(manifest_path,
                         analysis::manifest_to_json(manifest))) {
    throw std::runtime_error("campaign: cannot write " + manifest_path);
  }
  return manifest.trace_digest;
}

CampaignResult CampaignRunner::run(std::size_t workers) {
  // Programmatic specs bypass load_campaign_spec's validation, and an
  // empty grid would "succeed" having run nothing — fail loudly instead.
  if (spec_.cell_count() == 0) {
    throw std::invalid_argument(
        "campaign: spec \"" + spec_.name +
        "\" produces an empty cell grid (protocols x fleet_sizes x seeds "
        "must all be non-empty)");
  }

  std::error_code ec;
  fs::create_directories(out_dir_, ec);
  if (ec) {
    throw std::runtime_error("campaign: cannot create " + out_dir_ + ": " +
                             ec.message());
  }

  const std::vector<CampaignCell> grid = cells();
  const auto ledger = read_ledger(ledger_path());

  // Classify every cell up front: complete (ledger + manifest + trace all
  // agree) cells resume, everything else runs.
  std::vector<bool> complete(grid.size(), false);
  std::vector<std::string> digests(grid.size());
  std::vector<CampaignCell> pending;
  std::vector<std::size_t> pending_index;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const CampaignCell& cell = grid[i];
    const std::string* led = ledger_digest(ledger, cell.label);
    if (led != nullptr) {
      std::string manifest_text;
      std::string trace_text;
      if (read_file(out_dir_ + "/" + cell.label + ".manifest.json",
                    manifest_text) &&
          read_file(out_dir_ + "/" + cell.label + ".jsonl", trace_text)) {
        std::string err;
        analysis::RunManifest manifest;
        const auto doc = analysis::parse_json_flat(manifest_text, &err);
        if (doc && analysis::manifest_from_json(*doc, manifest) &&
            manifest.trace_digest == *led &&
            analysis::fnv1a64_hex(trace_text) == *led) {
          complete[i] = true;
          digests[i] = *led;
        }
      }
    }
    if (!complete[i]) {
      pending.push_back(cell);
      pending_index.push_back(i);
    }
  }

  // Run what's left on the pool. Each finished cell appends to the ledger
  // immediately (flushed), so a kill mid-campaign loses at most the cells
  // in flight.
  if (!pending.empty()) {
    const std::vector<std::uint64_t> one{0};
    auto ran = runtime::run_replications(
        pending, one,
        [this](const CampaignCell& cell, std::uint64_t) {
          std::string digest = run_cell(cell);
          {
            const std::lock_guard<std::mutex> lock(ledger_mu_);
            std::ofstream out(ledger_path(),
                              std::ios::binary | std::ios::app);
            out << cell.label << ' ' << digest << '\n';
            out.flush();
          }
          return digest;
        },
        workers);
    for (std::size_t k = 0; k < pending.size(); ++k) {
      digests[pending_index[k]] = std::move(ran[k][0]);
    }
  }

  // Rewrite the ledger sorted: the final file is a pure function of the
  // grid, independent of completion order and worker count.
  std::vector<std::string> lines;
  lines.reserve(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    lines.push_back(grid[i].label + " " + digests[i] + "\n");
  }
  std::sort(lines.begin(), lines.end());
  std::string ledger_text;
  for (const std::string& line : lines) ledger_text += line;
  if (!stats::write_file(ledger_path(), ledger_text)) {
    throw std::runtime_error("campaign: cannot write " + ledger_path());
  }

  CampaignResult result;
  result.cells.reserve(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    CellOutcome outcome;
    outcome.cell = grid[i];
    outcome.kind = complete[i] ? CellOutcome::Kind::kResumed
                               : CellOutcome::Kind::kRan;
    (complete[i] ? result.resumed : result.ran) += 1;
    result.cells.push_back(std::move(outcome));
  }
  return result;
}

}  // namespace emptcp::campaign
