#include "campaign/spec.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "analysis/json.hpp"
#include "sim/fidelity.hpp"

namespace emptcp::campaign {
namespace {

using analysis::FlatJson;
using analysis::JsonScalar;

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

JsonScalar scalar_from_text(std::string_view text) {
  JsonScalar v;
  if (text == "true" || text == "false") {
    v.type = JsonScalar::Type::kBool;
    v.boolean = text == "true";
    return v;
  }
  const std::string buf(text);
  char* end = nullptr;
  const double num = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() && *end == '\0' && !buf.empty()) {
    v.type = JsonScalar::Type::kNumber;
    v.num = num;
    return v;
  }
  v.type = JsonScalar::Type::kString;
  v.str = buf;
  return v;
}

/// key=value lines -> the same flattened document JSON parses to.
/// Comma-separated values become list entries (key.0, key.1, ...).
bool keyvalue_to_flat(std::string_view text, FlatJson& out, std::string& err) {
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string_view::npos) nl = text.size();
    std::string_view line = trim(text.substr(pos, nl - pos));
    pos = nl + 1;
    ++line_no;
    if (line.empty() || line.front() == '#') continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      err = "line " + std::to_string(line_no) + ": expected key = value";
      return false;
    }
    const std::string key(trim(line.substr(0, eq)));
    const std::string_view value = trim(line.substr(eq + 1));
    if (key.empty()) {
      err = "line " + std::to_string(line_no) + ": empty key";
      return false;
    }
    if (value.find(',') == std::string_view::npos) {
      out.emplace_back(key, scalar_from_text(value));
      continue;
    }
    std::size_t index = 0;
    std::size_t vpos = 0;
    while (vpos <= value.size()) {
      std::size_t comma = value.find(',', vpos);
      if (comma == std::string_view::npos) comma = value.size();
      const std::string_view item = trim(value.substr(vpos, comma - vpos));
      vpos = comma + 1;
      if (item.empty()) continue;
      out.emplace_back(key + "." + std::to_string(index++),
                       scalar_from_text(item));
    }
  }
  return true;
}

double as_num(const JsonScalar& v) {
  switch (v.type) {
    case JsonScalar::Type::kNumber: return v.num;
    case JsonScalar::Type::kBool: return v.boolean ? 1.0 : 0.0;
    default: return 0.0;
  }
}

bool as_bool(const JsonScalar& v) { return as_num(v) != 0.0; }

std::string as_str(const JsonScalar& v) {
  if (v.type == JsonScalar::Type::kString) return v.str;
  return {};
}

bool apply_scenario_key(app::ScenarioConfig& cfg, std::string_view key,
                        const JsonScalar& v) {
  auto path_key = [&](app::PathParams& pp, std::string_view sub) {
    if (sub == "down_mbps") { pp.down_mbps = as_num(v); return true; }
    if (sub == "up_mbps") { pp.up_mbps = as_num(v); return true; }
    if (sub == "rtt_ms") {
      pp.rtt = sim::from_seconds(as_num(v) * 1e-3);
      return true;
    }
    if (sub == "loss") { pp.loss = as_num(v); return true; }
    if (sub == "queue_bytes") {
      pp.queue_bytes = static_cast<std::size_t>(as_num(v));
      return true;
    }
    return false;
  };
  if (starts_with(key, "wifi.")) return path_key(cfg.wifi, key.substr(5));
  if (starts_with(key, "cell.")) return path_key(cfg.cell, key.substr(5));
  if (key == "wifi_onoff") { cfg.wifi_onoff = as_bool(v); return true; }
  if (key == "onoff.high_mbps") { cfg.onoff.high_mbps = as_num(v); return true; }
  if (key == "onoff.low_mbps") { cfg.onoff.low_mbps = as_num(v); return true; }
  if (key == "onoff.mean_high_s") {
    cfg.onoff.mean_high_s = as_num(v);
    return true;
  }
  if (key == "onoff.mean_low_s") {
    cfg.onoff.mean_low_s = as_num(v);
    return true;
  }
  if (key == "interferers") {
    cfg.interferers = static_cast<int>(as_num(v));
    return true;
  }
  if (key == "lambda_on") { cfg.lambda_on = as_num(v); return true; }
  if (key == "lambda_off") { cfg.lambda_off = as_num(v); return true; }
  if (key == "mobility") { cfg.mobility = as_bool(v); return true; }
  if (key == "request_bytes") {
    cfg.request_bytes = static_cast<std::uint64_t>(as_num(v));
    return true;
  }
  if (key == "max_sim_time_s") {
    cfg.max_sim_time = sim::from_seconds(as_num(v));
    return true;
  }
  if (key == "max_drain_s") {
    cfg.max_drain = sim::from_seconds(as_num(v));
    return true;
  }
  if (key == "record_series") { cfg.record_series = as_bool(v); return true; }
  if (key == "fidelity") {
    const auto f = sim::fidelity_from_string(as_str(v));
    if (!f) return false;
    cfg.fidelity = *f;
    return true;
  }
  return false;
}

bool apply_key(CampaignSpec& spec, const std::string& key,
               const JsonScalar& v, std::string& err) {
  using workload::ArrivalProcess;
  using workload::FleetConfig;
  using workload::SizeDist;
  using workload::ThinkTime;

  auto bad_value = [&](const std::string& what) {
    err = key + ": unknown " + what + " \"" + as_str(v) + "\"";
    return false;
  };

  if (key == "schema") {
    if (as_str(v) != kCampaignSchema) {
      err = "schema: expected \"" + std::string(kCampaignSchema) + "\"";
      return false;
    }
    return true;
  }
  if (key == "name") {
    spec.name = as_str(v);
    return !spec.name.empty() || (err = "name: must be non-empty", false);
  }
  // List keys accept both the indexed form ("seeds.0", from JSON arrays
  // and comma lists) and the bare form (a single-element key=value line).
  auto list_key = [&key](std::string_view base) {
    return key == base ||
           (starts_with(key, base) && key.size() > base.size() &&
            key[base.size()] == '.');
  };
  if (list_key("protocols")) {
    const auto p = app::protocol_from_string(as_str(v));
    if (!p) return bad_value("protocol");
    spec.protocols.push_back(*p);
    return true;
  }
  if (list_key("fleet_sizes")) {
    const auto n = static_cast<std::size_t>(as_num(v));
    if (n == 0) { err = key + ": fleet size must be >= 1"; return false; }
    spec.fleet_sizes.push_back(n);
    return true;
  }
  if (list_key("seeds")) {
    spec.seeds.push_back(static_cast<std::uint64_t>(as_num(v)));
    return true;
  }
  if (key == "mode") {
    const std::string m = as_str(v);
    if (m == "closed") spec.workload.mode = FleetConfig::Mode::kClosed;
    else if (m == "open") spec.workload.mode = FleetConfig::Mode::kOpen;
    else return bad_value("mode");
    return true;
  }
  if (key == "flows_per_client") {
    spec.workload.flows_per_client = static_cast<std::size_t>(as_num(v));
    return true;
  }
  if (key == "size.kind") {
    const std::string k = as_str(v);
    if (k == "fixed") spec.workload.flow_size.kind = SizeDist::Kind::kFixed;
    else if (k == "lognormal") {
      spec.workload.flow_size.kind = SizeDist::Kind::kLognormal;
    } else if (k == "pareto") {
      spec.workload.flow_size.kind = SizeDist::Kind::kPareto;
    } else if (k == "empirical") {
      spec.workload.flow_size.kind = SizeDist::Kind::kEmpirical;
    } else if (k == "scheduled") {
      spec.workload.flow_size.kind = SizeDist::Kind::kScheduled;
    } else {
      return bad_value("size distribution");
    }
    return true;
  }
  if (key == "size.mean_bytes") {
    spec.workload.flow_size.mean_bytes =
        static_cast<std::uint64_t>(as_num(v));
    return true;
  }
  if (key == "size.log_mu") {
    spec.workload.flow_size.log_mu = as_num(v);
    return true;
  }
  if (key == "size.log_sigma") {
    spec.workload.flow_size.log_sigma = as_num(v);
    return true;
  }
  if (key == "size.alpha") {
    spec.workload.flow_size.alpha = as_num(v);
    return true;
  }
  if (key == "size.min_bytes") {
    spec.workload.flow_size.min_bytes = static_cast<std::uint64_t>(as_num(v));
    return true;
  }
  if (key == "size.max_bytes") {
    spec.workload.flow_size.max_bytes = static_cast<std::uint64_t>(as_num(v));
    return true;
  }
  if (list_key("size.values")) {
    spec.workload.flow_size.values.push_back(
        static_cast<std::uint64_t>(as_num(v)));
    return true;
  }
  if (key == "think.kind") {
    const std::string k = as_str(v);
    if (k == "none") spec.workload.think.kind = ThinkTime::Kind::kNone;
    else if (k == "fixed") spec.workload.think.kind = ThinkTime::Kind::kFixed;
    else if (k == "exponential") {
      spec.workload.think.kind = ThinkTime::Kind::kExponential;
    } else {
      return bad_value("think-time model");
    }
    return true;
  }
  if (key == "think.mean_s") {
    spec.workload.think.mean_s = as_num(v);
    return true;
  }
  if (key == "arrival.kind") {
    const std::string k = as_str(v);
    if (k == "poisson") {
      spec.workload.arrival.kind = ArrivalProcess::Kind::kPoisson;
    } else if (k == "deterministic") {
      spec.workload.arrival.kind = ArrivalProcess::Kind::kDeterministic;
    } else if (k == "trace") {
      spec.workload.arrival.kind = ArrivalProcess::Kind::kTrace;
    } else {
      return bad_value("arrival process");
    }
    return true;
  }
  if (key == "arrival.rate_per_s") {
    spec.workload.arrival.rate_per_s = as_num(v);
    return true;
  }
  if (list_key("arrival.times_s")) {
    spec.workload.arrival.times_s.push_back(as_num(v));
    return true;
  }
  if (key == "sharding.clients_per_cell") {
    spec.workload.sharding.clients_per_cell =
        static_cast<std::size_t>(as_num(v));
    return true;
  }
  if (key == "sharding.shards") {
    spec.workload.sharding.shards = static_cast<std::size_t>(as_num(v));
    return true;
  }
  if (key == "sharding.cross_every") {
    spec.workload.sharding.cross_every = static_cast<std::size_t>(as_num(v));
    return true;
  }
  if (key == "sharding.backbone_mbps") {
    if (as_num(v) <= 0.0) {
      err = key + ": backbone rate must be > 0";
      return false;
    }
    spec.workload.sharding.backbone_mbps = as_num(v);
    return true;
  }
  if (key == "sharding.backbone_delay_ms") {
    if (as_num(v) <= 0.0) {
      err = key +
            ": backbone delay must be > 0 (zero propagation collapses the "
            "conservative lookahead window)";
      return false;
    }
    spec.workload.sharding.backbone_delay = sim::from_seconds(as_num(v) * 1e-3);
    return true;
  }
  if (starts_with(key, "scenario.")) {
    if (!apply_scenario_key(spec.workload.scenario, key.substr(9), v)) {
      err = "unknown scenario key: " + key;
      return false;
    }
    return true;
  }
  err = "unknown key: " + key;
  return false;
}

}  // namespace

const char* protocol_slug(app::Protocol p) {
  switch (p) {
    case app::Protocol::kTcpWifi: return "tcp-wifi";
    case app::Protocol::kTcpLte: return "tcp-lte";
    case app::Protocol::kMptcp: return "mptcp";
    case app::Protocol::kEmptcp: return "emptcp";
    case app::Protocol::kWifiFirst: return "wifi-first";
    case app::Protocol::kMdp: return "mdp";
  }
  return "unknown";
}

bool parse_campaign_spec(std::string_view text, CampaignSpec& out,
                         std::string& err) {
  FlatJson doc;
  const std::string_view body = trim(text);
  if (!body.empty() && body.front() == '{') {
    std::string perr;
    auto parsed = analysis::parse_json_flat(body, &perr);
    if (!parsed) {
      err = perr;
      return false;
    }
    doc = std::move(*parsed);
  } else if (!keyvalue_to_flat(text, doc, err)) {
    return false;
  }

  CampaignSpec spec;
  // Campaign runs always trace (the artifacts are the output) and default
  // to lean runs: no in-memory series.
  spec.workload.scenario.trace = true;
  spec.workload.scenario.record_series = false;
  // EMPTCP_FIDELITY selects the default fidelity so one committed spec can
  // be driven at both fidelities (the hybrid differential gate does this);
  // an explicit scenario.fidelity key in the spec still wins.
  spec.workload.scenario.fidelity = sim::fidelity_from_env();
  for (const auto& [key, v] : doc) {
    if (!apply_key(spec, key, v, err)) return false;
  }
  if (spec.protocols.empty()) { err = "spec has no protocols"; return false; }
  if (spec.fleet_sizes.empty()) {
    err = "spec has no fleet_sizes";
    return false;
  }
  if (spec.seeds.empty()) { err = "spec has no seeds"; return false; }
  // Stamped per cell by the runner; re-force in case a scenario key
  // toggled it.
  spec.workload.scenario.trace = true;
  out = std::move(spec);
  return true;
}

bool load_campaign_spec(const std::string& path, CampaignSpec& out,
                        std::string& err) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    err = "cannot read " + path;
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  if (!parse_campaign_spec(ss.str(), out, err)) {
    err = path + ": " + err;
    return false;
  }
  return true;
}

}  // namespace emptcp::campaign
