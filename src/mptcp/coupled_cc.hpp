// Coupled congestion control: the LIA algorithm of RFC 6356, used by the
// Linux MPTCP implementation the paper runs ("How hard can it be?", Raiciu
// et al., NSDI'12 [29]).
//
// Per ACK in congestion avoidance, subflow i increases its window by
//     min( alpha * bytes_acked * MSS / cwnd_total ,
//          bytes_acked * MSS / cwnd_i )
// where
//     alpha = cwnd_total * max_i(cwnd_i / rtt_i^2) / ( sum_i cwnd_i/rtt_i )^2.
// Slow start, loss and timeout reactions stay per-subflow Reno, also per the
// RFC. The shared state (alpha, total cwnd) lives in LiaState, owned by the
// MPTCP meta-socket of the sending side; each subflow's controller holds a
// reference.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/time.hpp"
#include "tcp/cc.hpp"

namespace emptcp::check {
struct Hub;
}

namespace emptcp::mptcp {

class LiaCoupledCc;

/// Shared LIA state across the subflows of one connection.
class LiaState {
 public:
  struct Member {
    LiaCoupledCc* cc = nullptr;
    std::function<sim::Duration()> srtt;  ///< subflow's smoothed RTT
  };

  void add_member(Member m) { members_.push_back(std::move(m)); }
  void remove_member(const LiaCoupledCc* cc);

  /// Total congestion window across member subflows (bytes).
  [[nodiscard]] std::uint64_t total_cwnd() const;

  /// Recomputes and returns alpha per RFC 6356 §4.
  [[nodiscard]] double alpha() const;

 private:
  std::vector<Member> members_;
};

class LiaCoupledCc final : public tcp::CongestionControl {
 public:
  LiaCoupledCc(Config cfg, LiaState& state)
      : tcp::CongestionControl(cfg), state_(state) {}

  /// Lets the invariant oracle observe every coupled increase. The
  /// meta-socket wires its simulation's hub in at creation.
  void set_check_hub(check::Hub* hub) { chk_ = hub; }

 protected:
  std::uint64_t ca_increase(std::uint64_t acked_bytes) override;

 private:
  LiaState& state_;
  check::Hub* chk_ = nullptr;
};

}  // namespace emptcp::mptcp
