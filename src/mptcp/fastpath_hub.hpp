// Attachment point between the MPTCP stack and the hybrid-fidelity fast
// path (app::FastPath).
//
// Mirrors check/hub.hpp: protocol objects cache a pointer to their
// simulation's FastPathHub at construction; every notification site is one
// pointer load plus a branch when no listener is attached (the packet-only
// default), so the hooks stay compiled into the hot paths permanently.
// `mptcp` must not depend on `app`, hence the abstract listener.
#pragma once

#include "sim/simulation.hpp"

namespace emptcp::mptcp {

class MptcpConnection;

/// Implemented by the fast-path coordinator. All calls are synchronous and
/// must not destroy the connection they are called about.
class FastPathListener {
 public:
  virtual ~FastPathListener() = default;
  /// First subflow of `conn` completed its handshake.
  virtual void on_conn_established(MptcpConnection& conn) = 0;
  /// `conn` is being destroyed; drop every reference to it.
  virtual void on_conn_destroyed(MptcpConnection& conn) = 0;
  /// A transient happened on `conn` (app write/close, subflow set change,
  /// MP_PRIO, failure): any analytic advancement must stop until the flow
  /// proves quiescent again.
  virtual void on_conn_transient(MptcpConnection& conn) = 0;
};

struct FastPathHub {
  FastPathListener* listener = nullptr;
};

inline FastPathHub& fastpath_hub(sim::Simulation& sim) {
  return sim.context<FastPathHub>();
}

}  // namespace emptcp::mptcp
