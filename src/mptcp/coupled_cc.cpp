#include "mptcp/coupled_cc.hpp"

#include <algorithm>
#include <cmath>

#include "check/hub.hpp"
#include "check/oracle.hpp"

namespace emptcp::mptcp {

namespace {
/// RTT used in alpha when a subflow has no sample yet (or eMPTCP zeroed it
/// for probing): a small positive value keeps the formula finite.
constexpr double kMinRttSeconds = 1e-3;

double rtt_seconds(const LiaState::Member& m) {
  return std::max(sim::to_seconds(m.srtt()), kMinRttSeconds);
}
}  // namespace

void LiaState::remove_member(const LiaCoupledCc* cc) {
  std::erase_if(members_, [cc](const Member& m) { return m.cc == cc; });
}

std::uint64_t LiaState::total_cwnd() const {
  std::uint64_t total = 0;
  for (const Member& m : members_) total += m.cc->cwnd();
  return total;
}

double LiaState::alpha() const {
  if (members_.empty()) return 1.0;
  double best = 0.0;
  double denom = 0.0;
  for (const Member& m : members_) {
    const double cwnd = static_cast<double>(m.cc->cwnd());
    const double rtt = rtt_seconds(m);
    best = std::max(best, cwnd / (rtt * rtt));
    denom += cwnd / rtt;
  }
  if (denom <= 0.0) return 1.0;
  const double total = static_cast<double>(total_cwnd());
  return total * best / (denom * denom);
}

std::uint64_t LiaCoupledCc::ca_increase(std::uint64_t acked_bytes) {
  const double total = static_cast<double>(state_.total_cwnd());
  const double own = static_cast<double>(cwnd());
  if (total <= 0.0 || own <= 0.0) return 1;
  const double mss = static_cast<double>(cfg_.mss);
  const double acked = static_cast<double>(acked_bytes);
  const double alpha = state_.alpha();
  const double coupled = alpha * acked * mss / total;
  const double reno = acked * mss / own;
  const auto inc = static_cast<std::uint64_t>(std::min(coupled, reno));
  const std::uint64_t result = std::max<std::uint64_t>(inc, 1);
  if (chk_ != nullptr) {
    if (check::Oracle* oracle = chk_->oracle) {
      oracle->on_lia_increase({acked_bytes, cfg_.mss, cwnd(),
                               state_.total_cwnd(), alpha, result});
    }
  }
  return result;
}

}  // namespace emptcp::mptcp
