#include "mptcp/subflow.hpp"

// Subflow is header-only; see subflow.hpp.
