// Subflow: one TCP flow belonging to an MPTCP connection.
//
// A subflow couples a TcpSocket with the MPTCP-level state the schedulers
// and eMPTCP's controller care about: which interface it runs over, its
// priority (MP_PRIO backup flag, both the locally-requested and the
// remotely-announced view), and the set of connection-level data chunks
// currently entrusted to it (for reinjection if the subflow dies).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "net/interface.hpp"
#include "sim/ring_deque.hpp"
#include "tcp/tcp_socket.hpp"

namespace emptcp::mptcp {

/// A contiguous range of connection-level data assigned to a subflow and
/// not yet acknowledged at the data level.
struct DataChunk {
  std::uint64_t data_seq = 0;
  std::uint32_t len = 0;
};

class Subflow {
 public:
  Subflow(std::size_t id, net::InterfaceType iface,
          std::unique_ptr<tcp::TcpSocket> socket)
      : id_(id), iface_(iface), socket_(std::move(socket)) {}

  [[nodiscard]] std::size_t id() const { return id_; }
  [[nodiscard]] net::InterfaceType iface() const { return iface_; }
  [[nodiscard]] tcp::TcpSocket& socket() { return *socket_; }
  [[nodiscard]] const tcp::TcpSocket& socket() const { return *socket_; }

  /// Backup priority as seen by the local scheduler: set either by the
  /// local host (it asked for the change) or learned from a received
  /// MP_PRIO. A backup subflow receives no fresh data while any regular
  /// subflow is usable.
  void set_backup(bool b) { backup_ = b; }
  [[nodiscard]] bool backup() const { return backup_; }

  [[nodiscard]] bool established() const {
    const auto s = socket_->state();
    return s == tcp::TcpState::kEstablished ||
           s == tcp::TcpState::kCloseWait;
  }
  [[nodiscard]] bool usable() const {
    return established() && !failed_;
  }
  void mark_failed() { failed_ = true; }
  [[nodiscard]] bool failed() const { return failed_; }

  // Outstanding connection-level chunks for reinjection on failure.
  sim::RingDeque<DataChunk>& outstanding() { return outstanding_; }

  /// Prunes chunks fully covered by the connection-level cumulative ACK.
  void prune_outstanding(std::uint64_t data_una) {
    while (!outstanding_.empty() &&
           outstanding_.front().data_seq + outstanding_.front().len <=
               data_una) {
      outstanding_.pop_front();
    }
  }

  [[nodiscard]] std::string describe() const {
    return std::string(net::to_string(iface_)) + "#" + std::to_string(id_);
  }

 private:
  std::size_t id_;
  net::InterfaceType iface_;
  std::unique_ptr<tcp::TcpSocket> socket_;
  bool backup_ = false;
  bool failed_ = false;
  sim::RingDeque<DataChunk> outstanding_;
};

}  // namespace emptcp::mptcp
