// MPTCP packet schedulers.
//
// The scheduler answers two questions for the sending side:
//   * is a subflow eligible to carry fresh data right now?  (backup
//     subflows are not, unless every regular subflow is unusable —
//     RFC 6824 MP_PRIO semantics, which eMPTCP leans on to suspend the
//     LTE subflow), and
//   * in what order should eligible subflows be offered data?  The default
//     Linux MPTCP scheduler — the one the paper's §3.6 and §4.4 describe —
//     prefers the subflow with the lowest RTT; eMPTCP additionally resets a
//     resumed subflow's RTT to zero so it is probed first.
#pragma once

#include <vector>

#include "mptcp/subflow.hpp"

namespace emptcp::mptcp {

class SubflowScheduler {
 public:
  virtual ~SubflowScheduler() = default;

  /// True if `sf` may carry fresh data given the whole subflow set.
  [[nodiscard]] virtual bool eligible(
      const Subflow& sf, const std::vector<Subflow*>& all) const;

  /// Fills `out` with the eligible subflows, most preferred first. This is
  /// the hot-path primitive: the caller recycles `out` across calls so the
  /// per-poke scheduling decision is allocation-free at steady state.
  virtual void preference_order_into(const std::vector<Subflow*>& all,
                                     std::vector<Subflow*>& out) const = 0;

  /// Convenience wrapper returning a fresh vector.
  [[nodiscard]] std::vector<Subflow*> preference_order(
      const std::vector<Subflow*>& all) const {
    std::vector<Subflow*> out;
    preference_order_into(all, out);
    return out;
  }
};

/// Default MPTCP scheduler: lowest-SRTT first.
class MinRttScheduler final : public SubflowScheduler {
 public:
  void preference_order_into(const std::vector<Subflow*>& all,
                             std::vector<Subflow*>& out) const override;
};

/// Round-robin over eligible subflows; kept as a comparison point and for
/// tests that need deterministic striping.
///
/// Fairness is anchored to subflow *identity*, not a call counter: the
/// scheduler remembers the id it last put first and starts the next round
/// after it. A counter modulo the current eligible-set size drifts when
/// subflows churn (the set size changes between calls), starving or
/// double-serving subflows.
class RoundRobinScheduler final : public SubflowScheduler {
 public:
  void preference_order_into(const std::vector<Subflow*>& all,
                             std::vector<Subflow*>& out) const override;

 private:
  mutable std::size_t last_served_ = 0;  ///< id most recently put first
  mutable bool has_last_ = false;
};

}  // namespace emptcp::mptcp
