#include "mptcp/scheduler.hpp"

#include <algorithm>

namespace emptcp::mptcp {

bool SubflowScheduler::eligible(const Subflow& sf,
                                const std::vector<Subflow*>& all) const {
  if (!sf.usable()) return false;
  if (!sf.backup()) return true;
  // Backup subflows carry data only when no regular subflow is usable.
  return std::none_of(all.begin(), all.end(), [](const Subflow* other) {
    return other->usable() && !other->backup();
  });
}

std::vector<Subflow*> MinRttScheduler::preference_order(
    const std::vector<Subflow*>& all) const {
  std::vector<Subflow*> out;
  for (Subflow* sf : all) {
    if (eligible(*sf, all)) out.push_back(sf);
  }
  std::stable_sort(out.begin(), out.end(), [](Subflow* a, Subflow* b) {
    return a->socket().srtt() < b->socket().srtt();
  });
  return out;
}

std::vector<Subflow*> RoundRobinScheduler::preference_order(
    const std::vector<Subflow*>& all) const {
  std::vector<Subflow*> out;
  for (Subflow* sf : all) {
    if (eligible(*sf, all)) out.push_back(sf);
  }
  if (!out.empty()) {
    // Resume after the subflow served last round. If it left the eligible
    // set, the successor is the next-higher id (wrapping), so its
    // departure costs nobody a turn.
    std::size_t shift = 0;
    if (has_last_) {
      const auto by_id = [](const Subflow* a, const Subflow* b) {
        return a->id() < b->id();
      };
      std::sort(out.begin(), out.end(), by_id);
      const auto next = std::upper_bound(
          out.begin(), out.end(), last_served_,
          [](std::size_t id, const Subflow* sf) { return id < sf->id(); });
      shift = next == out.end()
                  ? 0
                  : static_cast<std::size_t>(next - out.begin());
    }
    std::rotate(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(shift),
                out.end());
    last_served_ = out.front()->id();
    has_last_ = true;
  }
  return out;
}

}  // namespace emptcp::mptcp
