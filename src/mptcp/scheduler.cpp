#include "mptcp/scheduler.hpp"

#include <algorithm>

#include "check/mutation.hpp"

namespace emptcp::mptcp {

bool SubflowScheduler::eligible(const Subflow& sf,
                                const std::vector<Subflow*>& all) const {
  if (!sf.usable()) return false;
  if (!sf.backup()) return true;
  if (check::active_mutation() == check::Mutation::kSchedulerIgnoreBackup) {
    return true;  // injected fault: backup suppression disabled
  }
  // Backup subflows carry data only when no regular subflow is usable.
  return std::none_of(all.begin(), all.end(), [](const Subflow* other) {
    return other->usable() && !other->backup();
  });
}

void MinRttScheduler::preference_order_into(
    const std::vector<Subflow*>& all, std::vector<Subflow*>& out) const {
  out.clear();
  for (Subflow* sf : all) {
    if (eligible(*sf, all)) out.push_back(sf);
  }
  // Stable insertion sort by SRTT: subflow sets are tiny (2-3 entries)
  // and std::stable_sort heap-allocates a temporary buffer, which would
  // put an allocation on every scheduling poke.
  for (std::size_t i = 1; i < out.size(); ++i) {
    Subflow* key = out[i];
    std::size_t j = i;
    while (j > 0 && key->socket().srtt() < out[j - 1]->socket().srtt()) {
      out[j] = out[j - 1];
      --j;
    }
    out[j] = key;
  }
}

void RoundRobinScheduler::preference_order_into(
    const std::vector<Subflow*>& all, std::vector<Subflow*>& out) const {
  out.clear();
  for (Subflow* sf : all) {
    if (eligible(*sf, all)) out.push_back(sf);
  }
  if (!out.empty()) {
    // Resume after the subflow served last round. If it left the eligible
    // set, the successor is the next-higher id (wrapping), so its
    // departure costs nobody a turn.
    std::size_t shift = 0;
    if (has_last_) {
      const auto by_id = [](const Subflow* a, const Subflow* b) {
        return a->id() < b->id();
      };
      std::sort(out.begin(), out.end(), by_id);
      const auto next = std::upper_bound(
          out.begin(), out.end(), last_served_,
          [](std::size_t id, const Subflow* sf) { return id < sf->id(); });
      shift = next == out.end()
                  ? 0
                  : static_cast<std::size_t>(next - out.begin());
    }
    std::rotate(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(shift),
                out.end());
    last_served_ = out.front()->id();
    has_last_ = true;
  }
}

}  // namespace emptcp::mptcp
