#include "mptcp/scheduler.hpp"

#include <algorithm>

namespace emptcp::mptcp {

bool SubflowScheduler::eligible(const Subflow& sf,
                                const std::vector<Subflow*>& all) const {
  if (!sf.usable()) return false;
  if (!sf.backup()) return true;
  // Backup subflows carry data only when no regular subflow is usable.
  return std::none_of(all.begin(), all.end(), [](const Subflow* other) {
    return other->usable() && !other->backup();
  });
}

std::vector<Subflow*> MinRttScheduler::preference_order(
    const std::vector<Subflow*>& all) const {
  std::vector<Subflow*> out;
  for (Subflow* sf : all) {
    if (eligible(*sf, all)) out.push_back(sf);
  }
  std::stable_sort(out.begin(), out.end(), [](Subflow* a, Subflow* b) {
    return a->socket().srtt() < b->socket().srtt();
  });
  return out;
}

std::vector<Subflow*> RoundRobinScheduler::preference_order(
    const std::vector<Subflow*>& all) const {
  std::vector<Subflow*> out;
  for (Subflow* sf : all) {
    if (eligible(*sf, all)) out.push_back(sf);
  }
  if (!out.empty()) {
    const std::size_t shift = next_++ % out.size();
    std::rotate(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(shift),
                out.end());
  }
  return out;
}

}  // namespace emptcp::mptcp
