// MptcpConnection: the meta-socket tying subflows into one data stream.
//
// This is the standard-MPTCP layer the paper's Figure 2 shows below the
// eMPTCP components. It implements:
//   * connection setup (MP_CAPABLE on the initial subflow, MP_JOIN with a
//     token for additional subflows),
//   * the data-level: a single data-sequence space striped over subflows by
//     the scheduler at transmission time (DSS mappings on segments,
//     DATA_ACKs on the reverse path), with reinjection of chunks stranded
//     on a failed subflow,
//   * RFC 6356 LIA coupled congestion control across subflows,
//   * MP_PRIO priority signalling — the mechanism eMPTCP actuates to
//     suspend and resume the cellular subflow (paper §3.6) — including the
//     sender-side resumed-subflow treatment: RFC 2861 cwnd-reset disabled
//     and SRTT zeroed so the min-RTT scheduler probes the subflow quickly,
//   * the three operating modes of §2.1 (Full-MPTCP / Single-Path / Backup).
//
// Data is counted bytes; applications exchange fixed-size requests and
// counted responses (see app/).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "mptcp/coupled_cc.hpp"
#include "mptcp/scheduler.hpp"
#include "mptcp/subflow.hpp"
#include "net/node.hpp"
#include "sim/ring_deque.hpp"
#include "tcp/buffers.hpp"
#include "tcp/tcp_socket.hpp"

namespace emptcp::check {
struct Hub;
}

namespace emptcp::mptcp {

struct FastPathHub;

/// Operating modes (paper §2.1).
enum class Mode {
  kFullMptcp,   ///< use all interfaces
  kSinglePath,  ///< one subflow at a time; new one only if the active dies
  kBackup,      ///< subflows on all interfaces, some flagged backup
};

const char* to_string(Mode m);

class MptcpConnection {
 public:
  struct Config {
    tcp::TcpSocket::Config subflow;
    bool coupled_cc = true;
    Mode mode = Mode::kFullMptcp;
    /// Classifies a peer address into the interface type of the path it
    /// belongs to (lets the server name subflows "wifi"/"lte" for logging
    /// and lets tests assert per-path behaviour). Optional.
    std::function<net::InterfaceType(net::Addr)> classify_peer;
    /// Disable the §3.6 sender-side resumed-subflow treatment (ablation).
    bool resume_tweaks = true;
  };

  struct Callbacks {
    std::function<void()> on_established;  ///< first subflow completed
    /// Fresh in-order connection-level bytes available to the application.
    std::function<void(std::uint64_t newly)> on_data;
    /// Connection-level send progress: `newly` more bytes DATA_ACKed.
    std::function<void(std::uint64_t newly)> on_data_acked;
    std::function<void()> on_eof;     ///< peer closed its write side
    std::function<void()> on_closed;  ///< all subflows fully closed
    std::function<void(Subflow&)> on_subflow_established;
    /// Remote MP_PRIO processed for `sf` (new backup state given).
    std::function<void(Subflow&, bool backup)> on_subflow_priority;
  };

  MptcpConnection(sim::Simulation& sim, net::Node& node, Config cfg);
  ~MptcpConnection();

  MptcpConnection(const MptcpConnection&) = delete;
  MptcpConnection& operator=(const MptcpConnection&) = delete;

  void set_callbacks(Callbacks cb) { cb_ = std::move(cb); }
  void set_scheduler(std::unique_ptr<SubflowScheduler> s) {
    scheduler_ = std::move(s);
  }

  /// Application tag announced on the initial SYN (see Packet::app_tag).
  /// Set before connect(); the passive side reads it via app_tag().
  void set_app_tag(std::uint32_t tag) { app_tag_ = tag; }
  [[nodiscard]] std::uint32_t app_tag() const { return app_tag_; }

  /// Client: opens the initial subflow from `local` (the default primary
  /// interface — WiFi in all paper scenarios, §3.6).
  void connect(net::Addr local, net::Addr remote, net::Port remote_port);

  /// Client: establishes an additional subflow from another local address
  /// (MP_JOIN). `backup` sets the MP_JOIN B-bit so the peer never assigns
  /// the subflow fresh data (Backup mode / WiFi-First start this way; in
  /// Mode::kBackup non-WiFi subflows are forced to backup). Returns the
  /// new subflow, or nullptr if refused (e.g. a subflow on that address
  /// already exists, or Single-Path mode).
  Subflow* add_subflow(net::Addr local, bool backup = false);

  /// Server: builds a connection from a received MP_CAPABLE SYN.
  static std::unique_ptr<MptcpConnection> accept(sim::Simulation& sim,
                                                 net::Node& node, Config cfg,
                                                 const net::Packet& syn);

  /// Server: attaches an MP_JOIN SYN to this connection.
  void accept_join(const net::Packet& syn);

  /// Queues `bytes` of application data onto the connection.
  void send(std::uint64_t bytes);

  /// Half-closes the write side once all queued data is delivered and
  /// acknowledged at the data level.
  void shutdown_write();

  /// Requests an MP_PRIO change on `sf`: the option is sent to the peer and
  /// the local scheduler honours it immediately.
  void request_priority(Subflow& sf, bool backup);

  /// Interface-down notification (the kernel's NETDEV_DOWN handling):
  /// every subflow on the interface is reset and its outstanding data
  /// reinjected onto the survivors. This is what lets Single-Path mode
  /// replace its subflow and WiFi-First fail over on association loss.
  void handle_interface_down(net::InterfaceType type);

  // --- Introspection ----------------------------------------------------
  [[nodiscard]] const std::vector<Subflow*>& subflows() const {
    return subflow_view_;
  }
  [[nodiscard]] Subflow* subflow_on(net::InterfaceType t);
  [[nodiscard]] bool established() const { return established_reported_; }
  [[nodiscard]] bool eof() const { return eof_reported_; }
  [[nodiscard]] bool closed() const { return closed_reported_; }
  [[nodiscard]] std::uint64_t token() const { return token_; }
  [[nodiscard]] std::uint64_t data_bytes_received() const {
    return data_rcv_.cumulative() - 1;
  }
  [[nodiscard]] std::uint64_t data_bytes_acked() const {
    return data_snd_una_ - 1;
  }
  [[nodiscard]] std::uint64_t bytes_queued() const { return app_queued_; }
  [[nodiscard]] net::Node& node() { return node_; }
  [[nodiscard]] const Config& config() const { return cfg_; }
  [[nodiscard]] sim::Simulation& simulation() { return sim_; }
  [[nodiscard]] bool is_server() const { return is_server_; }

  // --- Macro-step interface (hybrid fidelity; see DESIGN.md §13) --------
  /// Connection-level bytes queued but not yet assigned to any subflow —
  /// what the fast path may advance analytically.
  [[nodiscard]] std::uint64_t macro_pending_bytes() const {
    return data_end_ - data_next_seq_;
  }
  [[nodiscard]] bool tx_paused() const { return tx_paused_; }
  /// Freezes packet-level assignment of fresh data (pull_chunk returns
  /// nothing) so in-flight data drains before analytic advancement begins.
  /// Unpausing pokes the subflows so transmission resumes immediately.
  void set_tx_paused(bool paused);
  /// Sender-side quiescence: established, nothing reinjecting, everything
  /// assigned is DATA_ACKed, and every live subflow socket individually
  /// quiescent with no outstanding chunks. fin_pending_ is tolerated — a
  /// server queues its FIN at response time, but it cannot be sent while
  /// unassigned data remains, and the fast path always leaves a
  /// packet-level tail so the close handshake runs at full fidelity.
  [[nodiscard]] bool can_macro_step_send() const;
  /// Receiver-side mirror: no reassembly gap at the data level, no
  /// DATA_FIN seen, every live subflow socket quiescent.
  [[nodiscard]] bool can_macro_step_recv() const;
  /// Analytically assigns-and-acknowledges `bytes` of fresh data on the
  /// subflow riding `iface`: advances the data-level sequence space and the
  /// subflow socket together, leaving nothing in flight. Caller must hold
  /// can_macro_step_send() and advance the peer's receive side by the same
  /// bytes on the same interface type.
  void macro_advance_send(net::InterfaceType iface, std::uint64_t bytes,
                          std::uint64_t cwnd_cap);
  void macro_advance_recv(net::InterfaceType iface, std::uint64_t bytes);

 private:
  Subflow& create_subflow(std::unique_ptr<tcp::TcpSocket> socket,
                          net::InterfaceType iface);
  std::optional<tcp::TcpSocket::Chunk> pull_chunk(Subflow& sf,
                                                  std::uint32_t max_len);
  void on_subflow_packet(Subflow& sf, const net::Packet& pkt);
  void on_subflow_established_cb(Subflow& sf);
  void on_subflow_eof(Subflow& sf);
  void on_subflow_closed(Subflow& sf);
  void poke_subflows();
  void maybe_send_fins();
  void check_eof();
  void check_closed();
  /// Tells the fast path (when attached) that this connection saw a
  /// transient and must drop out of any analytic advancement.
  void notify_transient();
  static std::uint64_t next_token();

  sim::Simulation& sim_;
  net::Node& node_;
  Config cfg_;
  Callbacks cb_;
  std::unique_ptr<SubflowScheduler> scheduler_;
  LiaState lia_;
  trace::Counter* ctr_reinjected_ = nullptr;  ///< reinjected data chunks
  /// Invariant-oracle attachment point (see check/hub.hpp).
  check::Hub* chk_ = nullptr;
  /// Hybrid-fidelity fast-path attachment point (see fastpath_hub.hpp).
  FastPathHub* fp_ = nullptr;
  std::vector<std::unique_ptr<Subflow>> subflows_;
  /// Raw-pointer view of `subflows_`, maintained alongside it so the hot
  /// scheduling paths never materialise a fresh vector.
  std::vector<Subflow*> subflow_view_;
  /// Recycled buffer for scheduler preference orders (see poke_subflows).
  std::vector<Subflow*> prefs_scratch_;
  std::vector<tcp::CongestionControl*> subflow_cc_;  ///< parallel to subflows_
  std::uint64_t token_ = 0;
  std::uint32_t app_tag_ = 0;
  net::Addr remote_addr_ = net::kAddrInvalid;
  net::Port remote_port_ = 0;
  bool is_server_ = false;

  // Send side (connection-level data sequence space; byte 0 unused so that
  // "cumulative == 1" means nothing received, mirroring subflow numbering).
  std::uint64_t data_next_seq_ = 1;
  std::uint64_t data_end_ = 1;
  std::uint64_t app_queued_ = 0;
  std::uint64_t data_snd_una_ = 1;
  sim::RingDeque<DataChunk> reinject_;
  bool fin_pending_ = false;
  bool subflow_fins_sent_ = false;
  bool tx_paused_ = false;  ///< fast path froze fresh assignment

  // Receive side.
  tcp::IntervalReassembly data_rcv_{1};
  std::optional<std::uint64_t> data_fin_rcv_;

  bool established_reported_ = false;
  bool eof_reported_ = false;
  bool closed_reported_ = false;
};

/// Server-side acceptor: listens on a port, builds an MptcpConnection per
/// MP_CAPABLE SYN, and routes MP_JOINs to the right connection by token.
/// Plain (non-MPTCP) client SYNs become single-subflow connections, which
/// is also how the TCP-over-WiFi baseline server works.
class MptcpListener {
 public:
  using OnAccept = std::function<void(MptcpConnection&)>;

  MptcpListener(sim::Simulation& sim, net::Node& node, net::Port port,
                MptcpConnection::Config cfg, OnAccept on_accept);

  [[nodiscard]] std::size_t connection_count() const {
    return connections_.size();
  }

 private:
  void on_syn(const net::Packet& syn);

  sim::Simulation& sim_;
  net::Node& node_;
  MptcpConnection::Config cfg_;
  OnAccept on_accept_;
  std::vector<std::unique_ptr<MptcpConnection>> connections_;
  std::unordered_map<std::uint64_t, MptcpConnection*> by_token_;
};

}  // namespace emptcp::mptcp
