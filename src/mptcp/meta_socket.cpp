#include "mptcp/meta_socket.hpp"

#include <algorithm>
#include <atomic>

#include "check/hub.hpp"
#include "check/oracle.hpp"
#include "mptcp/fastpath_hub.hpp"
#include "sim/logging.hpp"
#include "trace/trace.hpp"

namespace emptcp::mptcp {

const char* to_string(Mode m) {
  switch (m) {
    case Mode::kFullMptcp: return "full-mptcp";
    case Mode::kSinglePath: return "single-path";
    case Mode::kBackup: return "backup";
  }
  return "?";
}

std::uint64_t MptcpConnection::next_token() {
  // Atomic so concurrent replications (runtime::run_replications) mint
  // distinct tokens; behaviour depends only on uniqueness, not the value.
  static std::atomic<std::uint64_t> counter{0};
  return ++counter;
}

MptcpConnection::MptcpConnection(sim::Simulation& sim, net::Node& node,
                                 Config cfg)
    : sim_(sim),
      node_(node),
      cfg_(std::move(cfg)),
      scheduler_(std::make_unique<MinRttScheduler>()),
      ctr_reinjected_(
          &sim.trace().metrics().counter("mptcp.reinjected_chunks")),
      chk_(&check::hub(sim)),
      fp_(&fastpath_hub(sim)) {}

MptcpConnection::~MptcpConnection() {
  if (fp_->listener != nullptr) fp_->listener->on_conn_destroyed(*this);
}

void MptcpConnection::notify_transient() {
  if (fp_->listener != nullptr) fp_->listener->on_conn_transient(*this);
}

void MptcpConnection::connect(net::Addr local, net::Addr remote,
                              net::Port remote_port) {
  token_ = next_token();
  remote_addr_ = remote;
  remote_port_ = remote_port;

  auto socket = std::make_unique<tcp::TcpSocket>(sim_, node_, cfg_.subflow);
  socket->set_mp_token(token_);
  socket->set_app_tag(app_tag_);
  const net::Port local_port = node_.allocate_port();
  const net::InterfaceType iface = node_.interface_for(local).type();
  tcp::TcpSocket* raw = socket.get();
  create_subflow(std::move(socket), iface);
  raw->connect(local, local_port, remote, remote_port,
               /*mp_capable=*/true, /*mp_join=*/false);
}

Subflow* MptcpConnection::add_subflow(net::Addr local, bool backup) {
  if (is_server_) return nullptr;
  notify_transient();  // the subflow set is changing
  const net::InterfaceType iface = node_.interface_for(local).type();
  if (subflow_on(iface) != nullptr && subflow_on(iface)->usable()) {
    return nullptr;  // already have a live subflow on this interface
  }
  if (cfg_.mode == Mode::kSinglePath) {
    const bool any_usable =
        std::any_of(subflows_.begin(), subflows_.end(),
                    [](const auto& sf) { return sf->usable(); });
    if (any_usable) return nullptr;
  }
  if (cfg_.mode == Mode::kBackup && iface != net::InterfaceType::kWifi) {
    backup = true;  // paper §2.1: non-primary interfaces stay in backup
  }

  auto socket = std::make_unique<tcp::TcpSocket>(sim_, node_, cfg_.subflow);
  socket->set_mp_token(token_);
  socket->set_mp_backup_flag(backup);
  const net::Port local_port = node_.allocate_port();
  tcp::TcpSocket* raw = socket.get();
  Subflow& sf = create_subflow(std::move(socket), iface);
  sf.set_backup(backup);
  raw->connect(local, local_port, remote_addr_, remote_port_,
               /*mp_capable=*/false, /*mp_join=*/true);
  EMPTCP_LOG(sim_, sim::LogLevel::kInfo,
             node_.name() << " MP_JOIN via " << sf.describe());
  return &sf;
}

std::unique_ptr<MptcpConnection> MptcpConnection::accept(
    sim::Simulation& sim, net::Node& node, Config cfg,
    const net::Packet& syn) {
  auto conn = std::make_unique<MptcpConnection>(sim, node, std::move(cfg));
  conn->is_server_ = true;
  conn->token_ = syn.mp_token;
  conn->app_tag_ = syn.app_tag;
  conn->remote_addr_ = syn.src;
  conn->remote_port_ = syn.sport;
  auto socket =
      tcp::TcpSocket::accept(sim, node, conn->cfg_.subflow, syn);
  const net::InterfaceType iface = conn->cfg_.classify_peer
                                       ? conn->cfg_.classify_peer(syn.src)
                                       : net::InterfaceType::kEthernet;
  // The socket is already live (SYN-ACK sent); wire it into the subflow
  // before any further packet can arrive.
  conn->create_subflow(std::move(socket), iface);
  return conn;
}

void MptcpConnection::accept_join(const net::Packet& syn) {
  auto socket = tcp::TcpSocket::accept(sim_, node_, cfg_.subflow, syn);
  const net::InterfaceType iface = cfg_.classify_peer
                                       ? cfg_.classify_peer(syn.src)
                                       : net::InterfaceType::kEthernet;
  Subflow& sf = create_subflow(std::move(socket), iface);
  if (syn.mp_backup) sf.set_backup(true);
  EMPTCP_LOG(sim_, sim::LogLevel::kInfo,
             node_.name() << " accepted MP_JOIN " << sf.describe());
}

Subflow& MptcpConnection::create_subflow(
    std::unique_ptr<tcp::TcpSocket> socket, net::InterfaceType iface) {
  tcp::TcpSocket* sock = socket.get();

  tcp::CongestionControl* coupled = nullptr;
  if (cfg_.coupled_cc) {
    auto cc = std::make_unique<LiaCoupledCc>(cfg_.subflow.cc, lia_);
    cc->set_check_hub(chk_);
    coupled = cc.get();
    sock->set_congestion_control(std::move(cc));
    lia_.add_member({static_cast<LiaCoupledCc*>(coupled),
                     [sock] { return sock->srtt(); }});
  }
  subflow_cc_.push_back(coupled);

  auto sf = std::make_unique<Subflow>(subflows_.size(), iface,
                                      std::move(socket));
  Subflow* raw = sf.get();
  subflows_.push_back(std::move(sf));
  subflow_view_.push_back(raw);

  sock->set_data_ack(data_rcv_.cumulative());
  sock->set_segment_source(
      [this, raw](std::uint32_t max_len) { return pull_chunk(*raw, max_len); });

  tcp::TcpSocket::Callbacks cb;
  cb.on_connected = [this, raw] { on_subflow_established_cb(*raw); };
  cb.on_packet = [this, raw](const net::Packet& p) {
    on_subflow_packet(*raw, p);
  };
  cb.on_eof = [this, raw] { on_subflow_eof(*raw); };
  cb.on_closed = [this, raw] { on_subflow_closed(*raw); };
  sock->set_callbacks(std::move(cb));
  return *raw;
}

Subflow* MptcpConnection::subflow_on(net::InterfaceType t) {
  // Latest subflow on the interface wins (an earlier one may have failed).
  Subflow* found = nullptr;
  for (auto& sf : subflows_) {
    if (sf->iface() == t) found = sf.get();
  }
  return found;
}

void MptcpConnection::send(std::uint64_t bytes) {
  app_queued_ += bytes;
  data_end_ += bytes;
  notify_transient();  // app write: re-measure before advancing again
  poke_subflows();
}

void MptcpConnection::shutdown_write() {
  fin_pending_ = true;
  notify_transient();  // app close: the stream end is now known
  maybe_send_fins();
}

void MptcpConnection::request_priority(Subflow& sf, bool backup) {
  if (sf.backup() == backup) return;
  notify_transient();  // MP_PRIO changes which paths carry data
  sf.set_backup(backup);
  sf.socket().send_mp_prio(backup);
  EMPTCP_TRACE(sim_, mp_prio(sim_.now(), static_cast<std::uint32_t>(sf.id()),
                             net::to_string(sf.iface()), backup, "local"));
  EMPTCP_LOG(sim_, sim::LogLevel::kInfo,
             node_.name() << " MP_PRIO " << sf.describe() << " -> "
                          << (backup ? "backup" : "normal"));
  if (!backup) poke_subflows();
}

void MptcpConnection::handle_interface_down(net::InterfaceType type) {
  for (auto& sf : subflows_) {
    if (sf->iface() == type && sf->usable()) {
      EMPTCP_LOG(sim_, sim::LogLevel::kInfo,
                 node_.name() << " interface down: resetting "
                              << sf->describe());
      sf->socket().abort();  // on_closed marks it failed and reinjects
    }
  }
}

std::optional<tcp::TcpSocket::Chunk> MptcpConnection::pull_chunk(
    Subflow& sf, std::uint32_t max_len) {
  if (tx_paused_) return std::nullopt;
  if (max_len == 0) return std::nullopt;
  if (!scheduler_->eligible(sf, subflows())) return std::nullopt;

  const bool fresh = reinject_.empty();
  DataChunk chunk;
  if (!reinject_.empty()) {
    DataChunk& front = reinject_.front();
    chunk.data_seq = front.data_seq;
    chunk.len = std::min(front.len, max_len);
    if (chunk.len == front.len) {
      reinject_.pop_front();
    } else {
      front.data_seq += chunk.len;
      front.len -= chunk.len;
    }
  } else {
    const std::uint64_t remaining = data_end_ - data_next_seq_;
    if (remaining == 0) return std::nullopt;
    chunk.data_seq = data_next_seq_;
    chunk.len = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(remaining, max_len));
    data_next_seq_ += chunk.len;
  }

  sf.outstanding().push_back(chunk);
  if (check::Oracle* oracle = chk_->oracle) {
    bool other_regular = false;
    for (const Subflow* other : subflow_view_) {
      if (other != &sf && other->usable() && !other->backup()) {
        other_regular = true;
        break;
      }
    }
    oracle->on_dss_assign({this, chunk.data_seq, chunk.len, fresh,
                           sf.usable(), sf.backup(), other_regular,
                           sf.id()});
  }
  EMPTCP_TRACE(sim_, sched_pick(sim_.now(),
                                static_cast<std::uint32_t>(sf.id()),
                                net::to_string(sf.iface()), chunk.data_seq,
                                chunk.len));
  tcp::TcpSocket::Chunk out;
  out.len = chunk.len;
  out.dss = net::DssMapping{chunk.data_seq, 0, chunk.len};
  return out;
}

void MptcpConnection::on_subflow_packet(Subflow& sf, const net::Packet& pkt) {
  // Receive side: map arriving payload into the data sequence space.
  if (pkt.dss && pkt.payload > 0) {
    const std::uint64_t newly = data_rcv_.insert(pkt.dss->data_seq,
                                                 pkt.dss->length);
    const std::uint64_t cum = data_rcv_.cumulative();
    for (auto& each : subflows_) each->socket().set_data_ack(cum);
    if (newly > 0 && cb_.on_data) cb_.on_data(newly);
  }

  // Send side: connection-level acknowledgement progress.
  if (pkt.data_ack && *pkt.data_ack > data_snd_una_) {
    const std::uint64_t newly = *pkt.data_ack - data_snd_una_;
    data_snd_una_ = *pkt.data_ack;
    for (auto& each : subflows_) each->prune_outstanding(data_snd_una_);
    if (cb_.on_data_acked) cb_.on_data_acked(newly);
    maybe_send_fins();
  }

  // Connection-level close: DATA_FIN tells us where the stream ends.
  if (pkt.data_fin && !data_fin_rcv_) {
    data_fin_rcv_ = *pkt.data_fin;
  }
  if (data_fin_rcv_) check_eof();

  // Priority signalling: the peer (de)prioritised this subflow. The
  // option repeats on every packet (loss robustness); act on changes only.
  if (pkt.mp_prio && pkt.mp_prio->backup != sf.backup()) {
    const bool backup = pkt.mp_prio->backup;
    const bool was_backup = sf.backup();
    notify_transient();  // which paths carry data is changing
    sf.set_backup(backup);
    EMPTCP_TRACE(sim_,
                 mp_prio(sim_.now(), static_cast<std::uint32_t>(sf.id()),
                         net::to_string(sf.iface()), backup, "peer"));
    if (was_backup && !backup && cfg_.resume_tweaks) {
      // Paper §3.6: a resumed subflow must ramp up quickly — disable the
      // RFC 2861 cwnd reset and zero the measured RTT so the scheduler
      // probes it first.
      sf.socket().set_cwnd_validation(false);
      sf.socket().reset_srtt_for_probe();
    }
    EMPTCP_LOG(sim_, sim::LogLevel::kInfo,
               node_.name() << " peer set " << sf.describe() << " -> "
                            << (backup ? "backup" : "normal"));
    if (cb_.on_subflow_priority) cb_.on_subflow_priority(sf, backup);
    if (!backup) poke_subflows();
  }
}

void MptcpConnection::on_subflow_established_cb(Subflow& sf) {
  if (!established_reported_) {
    established_reported_ = true;
    if (fp_->listener != nullptr) fp_->listener->on_conn_established(*this);
    if (cb_.on_established) cb_.on_established();
  } else {
    notify_transient();  // an additional subflow joined the set
  }
  if (cb_.on_subflow_established) cb_.on_subflow_established(sf);
  if (subflow_fins_sent_) {
    // The connection is already closing; close late-arriving joins too.
    sf.socket().shutdown_write();
  }
  poke_subflows();
}

void MptcpConnection::on_subflow_eof(Subflow&) { check_eof(); }

void MptcpConnection::on_subflow_closed(Subflow& sf) {
  notify_transient();  // subflow set shrank (failure or orderly close)
  if (subflow_cc_[sf.id()] != nullptr) {
    lia_.remove_member(
        static_cast<LiaCoupledCc*>(subflow_cc_[sf.id()]));
    subflow_cc_[sf.id()] = nullptr;
  }
  if (sf.socket().failed()) {
    sf.mark_failed();
    // Reinject connection-level data stranded on the dead subflow.
    for (const DataChunk& c : sf.outstanding()) {
      if (c.data_seq + c.len > data_snd_una_) {
        reinject_.push_back(c);
        ctr_reinjected_->add();
      }
    }
    sf.outstanding().clear();
    EMPTCP_LOG(sim_, sim::LogLevel::kInfo,
               node_.name() << " subflow " << sf.describe()
                            << " failed; reinjecting "
                            << reinject_.size() << " chunks");
    poke_subflows();
  }
  check_eof();
  check_closed();
}

void MptcpConnection::poke_subflows() {
  // Borrow the recycled buffer for the duration of the poke: if a callback
  // re-enters poke_subflows, the inner call simply starts from an empty
  // (moved-from) scratch instead of clobbering this iteration.
  std::vector<Subflow*> order = std::move(prefs_scratch_);
  scheduler_->preference_order_into(subflows(), order);
  for (Subflow* sf : order) sf->socket().notify_data_available();
  prefs_scratch_ = std::move(order);
}

void MptcpConnection::maybe_send_fins() {
  if (!fin_pending_ || subflow_fins_sent_) return;
  const bool all_assigned = data_next_seq_ == data_end_ && reinject_.empty();
  const bool all_acked = data_snd_una_ >= data_end_;
  if (!all_assigned || !all_acked) return;
  subflow_fins_sent_ = true;
  for (auto& sf : subflows_) {
    if (!sf->failed()) {
      // The DATA_FIN rides on the subflow FINs (and any retransmissions),
      // so the peer learns where the data stream ends even if some other
      // subflow died without delivering its FIN.
      sf->socket().set_data_fin(data_end_);
      sf->socket().shutdown_write();
    }
  }
}

void MptcpConnection::check_eof() {
  if (eof_reported_ || subflows_.empty()) return;
  // Primary signal: DATA_FIN received and the data stream is complete.
  if (data_fin_rcv_ && data_rcv_.cumulative() >= *data_fin_rcv_) {
    eof_reported_ = true;
    if (cb_.on_eof) cb_.on_eof();
    return;
  }
  // Fallback: every subflow's read side finished (covers peers that close
  // a data-less connection).
  bool any_eof = false;
  for (auto& sf : subflows_) {
    if (sf->socket().eof_received()) {
      any_eof = true;
    } else if (!sf->failed()) {
      return;  // still an open read side
    }
  }
  if (!any_eof) return;
  eof_reported_ = true;
  if (cb_.on_eof) cb_.on_eof();
}

void MptcpConnection::set_tx_paused(bool paused) {
  if (tx_paused_ == paused) return;
  tx_paused_ = paused;
  if (!paused) poke_subflows();
}

bool MptcpConnection::can_macro_step_send() const {
  if (!established_reported_ || closed_reported_) return false;
  if (subflow_fins_sent_) return false;
  if (!reinject_.empty()) return false;
  if (data_snd_una_ != data_next_seq_) return false;
  for (const auto& sf : subflows_) {
    if (sf->failed()) continue;
    if (!sf->outstanding().empty()) return false;
    if (!sf->socket().can_macro_step()) return false;
  }
  return true;
}

bool MptcpConnection::can_macro_step_recv() const {
  if (!established_reported_ || closed_reported_) return false;
  if (data_rcv_.has_gaps()) return false;
  if (data_fin_rcv_.has_value() || eof_reported_) return false;
  for (const auto& sf : subflows_) {
    if (sf->failed()) continue;
    if (!sf->socket().can_macro_step()) return false;
  }
  return true;
}

void MptcpConnection::macro_advance_send(net::InterfaceType iface,
                                         std::uint64_t bytes,
                                         std::uint64_t cwnd_cap) {
  if (bytes == 0) return;
  Subflow* sf = subflow_on(iface);
  if (sf == nullptr) return;
  if (check::Oracle* oracle = chk_->oracle) {
    oracle->on_macro_advance(this, data_next_seq_, bytes);
  }
  sf->socket().macro_advance_sender(bytes, cwnd_cap);
  data_next_seq_ += bytes;
  data_snd_una_ += bytes;
  if (cb_.on_data_acked) cb_.on_data_acked(bytes);
}

void MptcpConnection::macro_advance_recv(net::InterfaceType iface,
                                         std::uint64_t bytes) {
  if (bytes == 0) return;
  Subflow* sf = subflow_on(iface);
  if (sf == nullptr) return;
  sf->socket().macro_advance_receiver(bytes);
  const std::uint64_t newly = data_rcv_.insert(data_rcv_.cumulative(), bytes);
  const std::uint64_t cum = data_rcv_.cumulative();
  for (auto& each : subflows_) each->socket().set_data_ack(cum);
  if (newly > 0 && cb_.on_data) cb_.on_data(newly);
}

void MptcpConnection::check_closed() {
  if (closed_reported_ || subflows_.empty()) return;
  for (auto& sf : subflows_) {
    if (sf->socket().state() != tcp::TcpState::kDone) return;
  }
  closed_reported_ = true;
  if (cb_.on_closed) cb_.on_closed();
}

MptcpListener::MptcpListener(sim::Simulation& sim, net::Node& node,
                             net::Port port, MptcpConnection::Config cfg,
                             OnAccept on_accept)
    : sim_(sim),
      node_(node),
      cfg_(std::move(cfg)),
      on_accept_(std::move(on_accept)) {
  node_.listen(port, [this](const net::Packet& syn) { on_syn(syn); });
}

void MptcpListener::on_syn(const net::Packet& syn) {
  if (syn.mp_join) {
    if (auto it = by_token_.find(syn.mp_token); it != by_token_.end()) {
      it->second->accept_join(syn);
    }
    return;
  }
  auto conn = MptcpConnection::accept(sim_, node_, cfg_, syn);
  MptcpConnection* raw = conn.get();
  connections_.push_back(std::move(conn));
  if (syn.mp_capable && syn.mp_token != 0) by_token_[syn.mp_token] = raw;
  if (on_accept_) on_accept_(*raw);
}

}  // namespace emptcp::mptcp
