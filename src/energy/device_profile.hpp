// Device profiles for the paper's two handsets (Table 1):
//   * Samsung Galaxy S3  (May 2012, Android 4.1.2, BCM4334 WiFi)
//   * LG Nexus 5         (Nov 2013, Android 4.4.4, BCM4339 WiFi)
//
// Cellular constants derive from the published LTE/3G measurements of
// Huang et al., MobiSys'12 [14]; WiFi constants from the same study; the
// fixed overheads are scaled so that Fig. 1's bars are matched (Galaxy S3:
// WiFi 0.15 J, 3G ≈ 7 J, LTE ≈ 12.5 J; Nexus 5: WiFi 0.06 J with its newer
// 28nm-HPM silicon drawing ~15 % less cellular power). The multi-interface
// overlap term is calibrated so the generated Energy Information Base
// reproduces the paper's Table 2 thresholds (see tests/energy and
// bench_tab02_eib).
#pragma once

#include "energy/power_model.hpp"

namespace emptcp::energy {

enum class CellTech { kThreeG, kLte };

struct DeviceProfile {
  std::string name;
  InterfacePowerParams wifi;
  InterfacePowerParams threeg;
  InterfacePowerParams lte;
  double platform_mw = 0.0;

  /// The two-radio model used by the EIB and the energy tracker.
  [[nodiscard]] EnergyModel model(CellTech tech = CellTech::kLte) const {
    return EnergyModel{name, wifi,
                       tech == CellTech::kLte ? lte : threeg,
                       platform_mw};
  }

  static DeviceProfile galaxy_s3();
  static DeviceProfile nexus5();
};

}  // namespace emptcp::energy
