// Radio state machines (paper §2.3).
//
// The 3GPP state machine: an idle cellular radio must be *promoted* to a
// high-power state before the first packet moves (the promotion delays that
// packet and burns promo power); after the last packet it lingers in the
// high-power *tail* before dropping back to idle. WiFi has the same shape
// with near-negligible constants (Fig. 1).
//
// The model plugs into a NetworkInterface as a RadioHook: every tx/rx
// refreshes the activity clock, and a transmission that finds the radio
// idle pays the promotion latency. The EnergyTracker queries state_at() and
// the params to integrate power.
#pragma once

#include "energy/power_model.hpp"
#include "net/interface.hpp"
#include "sim/time.hpp"

namespace emptcp::energy {

enum class RadioState { kIdle, kPromo, kActive, kTail };

const char* to_string(RadioState s);

class RadioModel : public net::RadioHook {
 public:
  explicit RadioModel(InterfacePowerParams params)
      : params_(std::move(params)),
        promo_(sim::from_seconds(params_.promo_s)),
        tail_(sim::from_seconds(params_.tail_s)),
        active_hold_(sim::milliseconds(100)) {}

  /// RadioHook: refreshes the activity clock; returns the promotion delay
  /// to impose on this packet if the radio was idle (tx only — a first
  /// incoming packet implies the network already paged the radio, and by
  /// then the promotion was paid on the request's way out).
  sim::Duration on_activity(sim::Time now, std::uint32_t wire_bytes,
                            bool is_tx) override;

  [[nodiscard]] RadioState state_at(sim::Time t) const;

  [[nodiscard]] const InterfacePowerParams& params() const { return params_; }

  /// Power draw at time t assuming `mbps` of throughput during the current
  /// sampling window ("active" iff any bytes moved in the window).
  [[nodiscard]] double power_mw_at(sim::Time t, double mbps,
                                   bool bytes_in_window) const;

  /// Number of idle->promo activations so far (each implies one promotion
  /// and, eventually, one tail: the paper's fixed overhead per activation).
  [[nodiscard]] int activations() const { return activations_; }

  [[nodiscard]] sim::Time last_activity() const { return last_activity_; }

 private:
  InterfacePowerParams params_;
  sim::Duration promo_;
  sim::Duration tail_;
  sim::Duration active_hold_;
  sim::Time last_activity_ = -1;  ///< -1: never active
  sim::Time promo_until_ = -1;
  int activations_ = 0;
};

}  // namespace emptcp::energy
