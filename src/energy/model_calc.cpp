#include "energy/model_calc.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace emptcp::energy {

const char* to_string(PathChoice c) {
  switch (c) {
    case PathChoice::kWifiOnly: return "wifi-only";
    case PathChoice::kCellOnly: return "cell-only";
    case PathChoice::kBoth: return "both";
  }
  return "?";
}

PathChoice best_choice_steady(const EnergyModel& m, double x_w, double x_l) {
  if (x_w <= 0.0 && x_l <= 0.0) {
    throw std::invalid_argument("best_choice_steady: no usable path");
  }
  if (x_w <= 0.0) return PathChoice::kCellOnly;
  if (x_l <= 0.0) return PathChoice::kWifiOnly;
  const double w = m.per_mbit_wifi(x_w);
  const double c = m.per_mbit_cell(x_l);
  const double b = m.per_mbit_both(x_w, x_l);
  if (b <= w && b <= c) return PathChoice::kBoth;
  return w <= c ? PathChoice::kWifiOnly : PathChoice::kCellOnly;
}

double finite_transfer_j(const EnergyModel& m, PathChoice choice,
                         double bytes, double x_w, double x_l) {
  const double mbits = bytes * 8.0 / 1e6;
  double thpt = 0.0;
  double power_mw = m.platform_mw;
  double fixed_j = 0.0;
  switch (choice) {
    case PathChoice::kWifiOnly:
      thpt = x_w;
      power_mw += m.wifi.active_power_mw(x_w);
      fixed_j += m.wifi.fixed_overhead_j();
      break;
    case PathChoice::kCellOnly:
      thpt = x_l;
      power_mw += m.cell.active_power_mw(x_l);
      fixed_j += m.cell.fixed_overhead_j();
      break;
    case PathChoice::kBoth:
      thpt = x_w + x_l;
      power_mw += m.wifi.active_power_mw(x_w) + m.cell.active_power_mw(x_l);
      fixed_j += m.wifi.fixed_overhead_j() + m.cell.fixed_overhead_j();
      break;
  }
  if (thpt <= 0.0) return std::numeric_limits<double>::infinity();
  const double seconds = mbits / thpt;
  return power_mw * seconds / 1000.0 + fixed_j;
}

PathChoice best_choice_finite(const EnergyModel& m, double bytes, double x_w,
                              double x_l) {
  const double w = x_w > 0.0
                       ? finite_transfer_j(m, PathChoice::kWifiOnly, bytes,
                                           x_w, x_l)
                       : std::numeric_limits<double>::infinity();
  const double c = x_l > 0.0
                       ? finite_transfer_j(m, PathChoice::kCellOnly, bytes,
                                           x_w, x_l)
                       : std::numeric_limits<double>::infinity();
  const double b = (x_w > 0.0 && x_l > 0.0)
                       ? finite_transfer_j(m, PathChoice::kBoth, bytes, x_w,
                                           x_l)
                       : std::numeric_limits<double>::infinity();
  if (b <= w && b <= c) return PathChoice::kBoth;
  return w <= c ? PathChoice::kWifiOnly : PathChoice::kCellOnly;
}

WifiThresholds steady_thresholds(const EnergyModel& m, double x_l) {
  if (x_l <= 0.0) {
    throw std::invalid_argument("steady_thresholds: x_l must be positive");
  }
  // With P(x) = beta + alpha x and platform power p counted once:
  //   both beats cell-only  <=>  x_l * P_w(x_w) < x_w * (p + P_l(x_l))
  //     <=> x_w > x_l * beta_w / (p + P_l(x_l) - x_l * alpha_w)
  //   both beats wifi-only  <=>  x_w * P_l(x_l) < x_l * (p + P_w(x_w))
  //     <=> x_w < x_l * (p + beta_w) / (P_l(x_l) - x_l * alpha_w)
  const double p = m.platform_mw;
  const double pl = m.cell.active_power_mw(x_l);
  const double beta_w = m.wifi.beta_mw;
  const double alpha_w = m.wifi.alpha_mw_per_mbps;

  WifiThresholds t;
  const double denom_lo = p + pl - x_l * alpha_w;
  t.cell_only_below =
      denom_lo > 0.0 ? x_l * beta_w / denom_lo
                     : std::numeric_limits<double>::infinity();
  const double denom_hi = pl - x_l * alpha_w;
  t.wifi_only_at_least =
      denom_hi > 0.0 ? x_l * (p + beta_w) / denom_hi
                     : std::numeric_limits<double>::infinity();
  return t;
}

double normalized_both_efficiency(const EnergyModel& m, double x_w,
                                  double x_l) {
  if (x_w <= 0.0 || x_l <= 0.0) {
    throw std::invalid_argument("normalized_both_efficiency: throughputs > 0");
  }
  const double best_single = std::min(m.per_mbit_wifi(x_w),
                                      m.per_mbit_cell(x_l));
  return m.per_mbit_both(x_w, x_l) / best_single;
}

std::optional<WifiInterval> finite_both_region(const EnergyModel& m,
                                               double bytes, double x_l,
                                               double x_w_max, double step) {
  std::optional<WifiInterval> region;
  for (double x_w = step; x_w <= x_w_max; x_w += step) {
    if (best_choice_finite(m, bytes, x_w, x_l) == PathChoice::kBoth) {
      if (!region) {
        region = WifiInterval{x_w, x_w};
      } else {
        region->hi = x_w;
      }
    }
  }
  return region;
}

}  // namespace emptcp::energy
