// Closed-form energy calculators built on EnergyModel.
//
// These are the "offline" computations of the paper:
//   * Fig. 1 — fixed activation overhead per interface,
//   * Fig. 3 — per-byte energy of using both interfaces, normalised by the
//     best single interface, over a (WiFi, LTE) throughput grid,
//   * Table 2 / the EIB — per-LTE-rate WiFi thresholds where the optimal
//     choice flips between LTE-only, both, and WiFi-only,
//   * Fig. 4 — the finite-transfer operating region (promotion and tail
//     included) where MPTCP completes a whole download of a given size
//     with the least energy.
#pragma once

#include <optional>
#include <vector>

#include "energy/power_model.hpp"

namespace emptcp::energy {

enum class PathChoice { kWifiOnly, kCellOnly, kBoth };

const char* to_string(PathChoice c);

/// Steady-state (large transfer) optimal choice at the given throughputs.
PathChoice best_choice_steady(const EnergyModel& m, double x_w, double x_l);

/// Energy in joules to download `bytes` at the given throughputs with the
/// given path choice, including the cellular promotion + tail when the
/// cellular interface participates and the WiFi wake cost when WiFi does.
double finite_transfer_j(const EnergyModel& m, PathChoice choice,
                         double bytes, double x_w, double x_l);

/// Optimal choice for a finite transfer (fixed overheads included).
PathChoice best_choice_finite(const EnergyModel& m, double bytes, double x_w,
                              double x_l);

/// WiFi-throughput thresholds for a given LTE throughput (one EIB row):
/// below `cell_only_below` use LTE only; at or above `wifi_only_at_least`
/// use WiFi only; in between use both. Closed-form from the linear model.
struct WifiThresholds {
  double cell_only_below = 0.0;
  double wifi_only_at_least = 0.0;
};
WifiThresholds steady_thresholds(const EnergyModel& m, double x_l);

/// Fig. 3 heat-map cell: per-byte energy of both interfaces normalised by
/// the best single interface (< 1 means MPTCP wins).
double normalized_both_efficiency(const EnergyModel& m, double x_w,
                                  double x_l);

/// Fig. 4: for a transfer of `bytes` and LTE throughput `x_l`, the WiFi
/// throughput interval in which using both interfaces is the most
/// energy-efficient way to complete the whole transfer. nullopt when no
/// such interval exists (e.g. small transfers where the cellular fixed
/// overhead can never pay off).
struct WifiInterval {
  double lo = 0.0;
  double hi = 0.0;
};
std::optional<WifiInterval> finite_both_region(const EnergyModel& m,
                                               double bytes, double x_l,
                                               double x_w_max = 20.0,
                                               double step = 0.01);

}  // namespace emptcp::energy
