// EnergyTracker: the simulator's power monitor.
//
// Plays the role of the paper's external energy-measurement rig: it samples
// each tracked interface every 100 ms, computes the window throughput from
// the interface byte counters, asks the radio model for the power draw, and
// integrates. The shared platform-activity power (see power_model.hpp) is
// added once per window in which any radio moved bytes, consistent with
// the closed-form model that generates the EIB.
//
// It also records the time series the paper's trace figures need: cumulative
// energy (Figs. 7, 12) and per-interface throughput (Figs. 7, 9, 12).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "energy/radio.hpp"
#include "net/interface.hpp"
#include "sim/simulation.hpp"

namespace emptcp::energy {

class EnergyTracker {
 public:
  struct Config {
    sim::Duration sample = sim::milliseconds(100);
    double platform_mw = 0.0;  ///< EnergyModel::platform_mw
    bool record_series = true;
    /// Keep at most this many series points (downsampled on overflow is
    /// not implemented; long runs should widen `series_stride`).
    std::size_t series_stride = 1;  ///< record every Nth sample
  };

  struct SeriesPoint {
    double t_s = 0.0;
    double cumulative_j = 0.0;
  };
  struct RatePoint {
    double t_s = 0.0;
    double mbps = 0.0;
  };

  EnergyTracker(sim::Simulation& sim, Config cfg);

  EnergyTracker(const EnergyTracker&) = delete;
  EnergyTracker& operator=(const EnergyTracker&) = delete;

  /// Tracks `iface`, attaching `radio` as its RadioHook. The tracker keeps
  /// a reference; the radio must outlive it.
  void track(net::NetworkInterface& iface, RadioModel& radio);

  /// Starts periodic sampling. Restarting after stop() begins a fresh
  /// sampling chain; the epoch guard below retires the old one.
  void start();
  /// Stops sampling (totals remain queryable). Bumping the epoch turns the
  /// already-scheduled next tick into a no-op — otherwise a stop()/start()
  /// cycle leaves two live tick chains, double-integrating energy and
  /// emitting duplicate sample timestamps.
  void stop() {
    running_ = false;
    ++epoch_;
  }

  [[nodiscard]] double total_j() const;
  [[nodiscard]] double iface_j(net::InterfaceType t) const;
  /// Platform-activity energy (already included in total_j()).
  [[nodiscard]] double platform_j() const { return platform_mj_ / 1000.0; }

  /// True once every tracked radio is back to idle (tail drained) — the
  /// point at which the paper's per-download energy measurement ends.
  [[nodiscard]] bool all_idle() const;

  [[nodiscard]] const std::vector<SeriesPoint>& energy_series() const {
    return energy_series_;
  }
  [[nodiscard]] const std::vector<RatePoint>& rate_series(
      net::InterfaceType t) const;

  /// Average download (rx) throughput of an interface over the tracked
  /// lifetime so far, in Mbps.
  [[nodiscard]] double mean_rx_mbps(net::InterfaceType t) const;

  /// Hybrid fidelity: declares that `iface`'s counters are being advanced
  /// analytically at `bytes_per_s` (wire bytes, tx+rx combined). While a
  /// fluid rate is set, each sampling window draws at most rate x window
  /// bytes from the accumulated counter backlog, so a macro-step that lands
  /// several windows' worth of bytes in one instant is metered back out at
  /// the declared rate — per-window power samples match packet mode, and
  /// the backlog conserves the byte total exactly (the remainder is
  /// released when the rate is cleared). This is the window-boundary seam
  /// the macro-step refactor exposed: without the backlog, a lumped
  /// counter jump would put the whole quantum's bytes into whichever
  /// window happened to observe it, distorting the nonlinear power model.
  void set_fluid_rate(const net::NetworkInterface& iface, double bytes_per_s);
  void clear_fluid_rate(const net::NetworkInterface& iface);

 private:
  struct Entry {
    net::NetworkInterface* iface = nullptr;
    RadioModel* radio = nullptr;
    std::uint64_t last_bytes = 0;     ///< tx+rx at the previous sample
    std::uint64_t start_rx_bytes = 0; ///< rx at start(); mean_rx baseline
    RadioState last_state = RadioState::kIdle;  ///< for transition traces
    double energy_mj = 0.0;
    bool fluid_active = false;      ///< counters advance analytically
    double fluid_bps = 0.0;         ///< declared wire bytes/second
    std::uint64_t fluid_backlog = 0;///< observed but not yet metered bytes
    std::vector<RatePoint> rates;
  };

  void tick(std::uint64_t epoch);
  [[nodiscard]] const Entry* find(net::InterfaceType t) const;

  sim::Simulation& sim_;
  Config cfg_;
  trace::Counter* ctr_clamped_ = nullptr;  ///< backwards byte-counter windows
  std::vector<Entry> entries_;
  bool running_ = false;
  std::uint64_t epoch_ = 0;  ///< invalidates stale scheduled ticks
  double platform_mj_ = 0.0;
  std::vector<SeriesPoint> energy_series_;
  std::size_t sample_index_ = 0;
  sim::Time started_at_ = 0;
};

}  // namespace emptcp::energy
