#include "energy/power_model.hpp"

// InterfacePowerParams / EnergyModel are header-only; see power_model.hpp.
