#include "energy/device_profile.hpp"

namespace emptcp::energy {

DeviceProfile DeviceProfile::galaxy_s3() {
  DeviceProfile p;
  p.name = "Samsung Galaxy S3";

  // WiFi: beta = 132.86 mW per Huang et al. [14]. Their alpha_dl
  // (137 mW/Mbps) was measured on 2011 hotspot-class hardware; the S3's
  // BCM4334 is an 802.11n design whose receive power is dominated by the
  // base term rather than the data rate (Halperin et al., HotPower'10 —
  // the paper's ref [11]), so we use a modern 50 mW/Mbps slope. The EIB
  // thresholds are insensitive to this choice (alpha_w only enters them
  // scaled by the small cellular rate), while the high-rate efficiency gap
  // between WiFi and LTE — which drives the paper's Figs. 8/13 savings —
  // depends on it directly. Wake overheads sized to Fig. 1's 0.15 J.
  p.wifi.name = "wifi";
  p.wifi.idle_mw = 12.0;
  p.wifi.beta_mw = 132.86;
  p.wifi.alpha_mw_per_mbps = 50.0;
  p.wifi.promo_mw = 124.4;
  p.wifi.promo_s = 0.08;
  p.wifi.tail_mw = 235.0;
  p.wifi.tail_s = 0.60;  // PSM exit hold; 0.01 + 0.14 ≈ 0.15 J total

  // 3G (UMTS): promotion ~0.6 s, DCH tail ~8 s [14].
  p.threeg.name = "3g";
  p.threeg.idle_mw = 10.0;
  p.threeg.beta_mw = 817.88;
  p.threeg.alpha_mw_per_mbps = 122.12;
  p.threeg.promo_mw = 668.0;
  p.threeg.promo_s = 0.611;
  p.threeg.tail_mw = 803.9;
  p.threeg.tail_s = 8.088;  // fixed overhead ≈ 6.9 J

  // LTE: promotion 260 ms @ 1210.7 mW, tail 11.576 s @ 1060 mW,
  // alpha_dl = 51.97 mW/Mbps, beta = 1288.04 mW [14].
  p.lte.name = "lte";
  p.lte.idle_mw = 11.4;
  p.lte.beta_mw = 1288.04;
  p.lte.alpha_mw_per_mbps = 51.97;
  p.lte.promo_mw = 1210.7;
  p.lte.promo_s = 0.2601;
  p.lte.tail_mw = 1060.0;
  p.lte.tail_s = 11.576;  // fixed overhead ≈ 12.6 J

  // Shared platform power while any transfer is in progress. 400 mW puts
  // the generated EIB thresholds on the paper's Table 2: e.g. LTE
  // 0.5 Mbps -> (0.040, 0.211) vs the paper's (0.043, 0.234); LTE
  // 1.0 Mbps -> (0.079, 0.413) vs (0.134, 0.502).
  p.platform_mw = 400.0;
  return p;
}

DeviceProfile DeviceProfile::nexus5() {
  DeviceProfile p = galaxy_s3();
  p.name = "LG Nexus 5";

  // Newer 28nm-HPM SoC and BCM4339: ~15 % lower cellular power, and a much
  // smaller WiFi wake cost (Fig. 1: 0.06 J vs 0.15 J).
  const double scale = 0.85;
  for (InterfacePowerParams* radio : {&p.threeg, &p.lte}) {
    radio->beta_mw *= scale;
    radio->alpha_mw_per_mbps *= scale;
    radio->promo_mw *= scale;
    radio->tail_mw *= scale;
  }
  p.wifi.beta_mw = 124.0;
  p.wifi.alpha_mw_per_mbps = 45.0;
  p.wifi.promo_mw = 100.0;
  p.wifi.promo_s = 0.05;
  p.wifi.tail_mw = 110.0;
  p.wifi.tail_s = 0.50;  // ≈ 0.06 J
  p.platform_mw = 400.0 * scale;
  return p;
}

}  // namespace emptcp::energy
