// Parameterised interface power model (paper §3.1/§3.3, building on the
// measurement models of Huang et al. [14] and Balasubramanian et al. [1],
// extended to multiple interfaces as in Lim et al. [17]).
//
// Each interface is described by:
//   * a linear active-transfer power  P(x) = beta + alpha * x  (x in Mbps),
//   * an idle power,
//   * cellular fixed overheads: the promotion (ramp from idle to the high-
//     power state before the first byte moves) and the tail (the radio
//     lingers in the high-power state after the last byte).
//
// The multi-interface extension (Lim et al. [17]): network activity also
// costs *platform* power — CPU, bus and memory work that is paid once while
// any radio is transferring, no matter how many radios share it:
//   P(wifi-only) = P_plat + P_wifi(x_w)
//   P(cell-only) = P_plat + P_cell(x_l)
//   P(both)      = P_plat + P_wifi(x_w) + P_cell(x_l)
// Because P_plat amortises over the *combined* throughput when both radios
// run, combined use is sub-additive per byte. This single term creates the
// paper's Fig. 3 "V" region where MPTCP is the most energy-efficient
// choice; with the Galaxy S3 constants and P_plat = 400 mW the generated
// EIB reproduces the paper's Table 2 thresholds closely, e.g. LTE 0.5 Mbps
// -> (0.040, 0.214) vs the paper's (0.043, 0.234) (see bench_tab02_eib).
#pragma once

#include <string>

namespace emptcp::energy {

struct InterfacePowerParams {
  std::string name;        ///< "wifi", "3g", "lte"
  double idle_mw = 10.0;   ///< radio idle
  double beta_mw = 0.0;    ///< active-transfer base power
  double alpha_mw_per_mbps = 0.0;  ///< throughput-proportional term
  double promo_mw = 0.0;   ///< power during promotion
  double promo_s = 0.0;    ///< promotion duration
  double tail_mw = 0.0;    ///< power during the tail
  double tail_s = 0.0;     ///< tail duration

  /// Power while transferring at `mbps`.
  [[nodiscard]] double active_power_mw(double mbps) const {
    return beta_mw + alpha_mw_per_mbps * mbps;
  }

  /// Fixed energy overhead of one activation: promotion + one full tail
  /// (the quantity plotted in the paper's Fig. 1).
  [[nodiscard]] double fixed_overhead_j() const {
    return (promo_mw * promo_s + tail_mw * tail_s) / 1000.0;
  }
};

/// Full device model: both radios plus the shared platform-activity term.
struct EnergyModel {
  std::string device;
  InterfacePowerParams wifi;
  InterfacePowerParams cell;  ///< the cellular interface in use (3G or LTE)
  /// Platform (CPU/bus) power while any network transfer is in progress,
  /// counted once regardless of how many radios are active.
  double platform_mw = 0.0;

  /// Steady-state energy per megabit over WiFi only, in mJ/Mb.
  [[nodiscard]] double per_mbit_wifi(double x_w) const {
    return (platform_mw + wifi.active_power_mw(x_w)) / x_w;
  }
  /// Steady-state energy per megabit over cellular only, in mJ/Mb.
  [[nodiscard]] double per_mbit_cell(double x_l) const {
    return (platform_mw + cell.active_power_mw(x_l)) / x_l;
  }
  /// Steady-state energy per megabit using both interfaces, in mJ/Mb.
  [[nodiscard]] double per_mbit_both(double x_w, double x_l) const {
    const double p = platform_mw + wifi.active_power_mw(x_w) +
                     cell.active_power_mw(x_l);
    return p / (x_w + x_l);
  }
};

}  // namespace emptcp::energy
