#include "energy/radio.hpp"

namespace emptcp::energy {

const char* to_string(RadioState s) {
  switch (s) {
    case RadioState::kIdle: return "idle";
    case RadioState::kPromo: return "promo";
    case RadioState::kActive: return "active";
    case RadioState::kTail: return "tail";
  }
  return "?";
}

sim::Duration RadioModel::on_activity(sim::Time now, std::uint32_t,
                                      bool is_tx) {
  sim::Duration extra = 0;
  const RadioState st = state_at(now);
  if (st == RadioState::kIdle && is_tx) {
    ++activations_;
    promo_until_ = now + promo_;
    extra = promo_;
  } else if (st == RadioState::kPromo && is_tx) {
    extra = promo_until_ - now;  // still ramping: remainder of the promotion
  }
  last_activity_ = now;
  return extra;
}

RadioState RadioModel::state_at(sim::Time t) const {
  if (promo_until_ >= 0 && t < promo_until_) return RadioState::kPromo;
  if (last_activity_ < 0) return RadioState::kIdle;
  const sim::Duration since = t - last_activity_;
  if (since <= active_hold_) return RadioState::kActive;
  if (since <= active_hold_ + tail_) return RadioState::kTail;
  return RadioState::kIdle;
}

double RadioModel::power_mw_at(sim::Time t, double mbps,
                               bool bytes_in_window) const {
  switch (state_at(t)) {
    case RadioState::kPromo:
      return params_.promo_mw;
    case RadioState::kActive:
      return params_.active_power_mw(mbps);
    case RadioState::kTail:
      return bytes_in_window ? params_.active_power_mw(mbps)
                             : params_.tail_mw;
    case RadioState::kIdle:
      return bytes_in_window ? params_.active_power_mw(mbps)
                             : params_.idle_mw;
  }
  return params_.idle_mw;
}

}  // namespace emptcp::energy
