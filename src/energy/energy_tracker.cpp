#include "energy/energy_tracker.hpp"

#include <algorithm>
#include <stdexcept>

#include "trace/trace.hpp"

namespace emptcp::energy {

/// Trace id for the synthetic "platform" energy stream — out of the range
/// net::InterfaceType codes occupy.
constexpr std::uint32_t kPlatformTraceCode = 0xFFFF;

EnergyTracker::EnergyTracker(sim::Simulation& sim, Config cfg)
    : sim_(sim),
      cfg_(cfg),
      ctr_clamped_(
          &sim.trace().metrics().counter("energy.clamped_byte_windows")) {}

void EnergyTracker::track(net::NetworkInterface& iface, RadioModel& radio) {
  iface.set_radio_hook(&radio);
  Entry e;
  e.iface = &iface;
  e.radio = &radio;
  entries_.push_back(std::move(e));
}

void EnergyTracker::start() {
  running_ = true;
  ++epoch_;  // retire any tick chain a previous start() left scheduled
  started_at_ = sim_.now();
  for (Entry& e : entries_) {
    e.last_bytes = e.iface->tx_bytes() + e.iface->rx_bytes();
    // mean_rx_mbps must average over the *tracked* window, so remember the
    // rx count already on the interface when tracking began.
    e.start_rx_bytes = e.iface->rx_bytes();
    e.last_state = e.radio->state_at(sim_.now());
  }
  sim_.in(cfg_.sample, [this, epoch = epoch_] { tick(epoch); });
}

void EnergyTracker::tick(std::uint64_t epoch) {
  if (!running_ || epoch != epoch_) return;
  const sim::Time now = sim_.now();
  const double window_s = sim::to_seconds(cfg_.sample);

  int transferring = 0;
  for (Entry& e : entries_) {
    const std::uint64_t bytes = e.iface->tx_bytes() + e.iface->rx_bytes();
    // A reset/reattached interface can report fewer bytes than last window;
    // the unsigned difference would wrap to ~2^64 and integrate an absurd
    // power sample. Treat a backwards counter as an idle window.
    std::uint64_t delta = 0;
    if (bytes >= e.last_bytes) {
      delta = bytes - e.last_bytes;
    } else {
      ctr_clamped_->add();
      EMPTCP_TRACE(sim_, warning(now, "energy.byte_counter_backwards",
                                 static_cast<std::int64_t>(e.last_bytes),
                                 static_cast<std::int64_t>(bytes)));
    }
    e.last_bytes = bytes;
    // Fluid smoothing: while a macro-stepped flow advances this interface's
    // counters in multi-window lumps, meter the observed bytes back out at
    // the declared fluid rate so each window's power sample sees the rate
    // packet mode would have shown it. The backlog conserves the totals:
    // whatever a window doesn't draw, a later one (or the clear) releases.
    if (e.fluid_active) {
      e.fluid_backlog += delta;
      const auto budget =
          static_cast<std::uint64_t>(e.fluid_bps * window_s + 0.5);
      delta = std::min(e.fluid_backlog, budget);
      e.fluid_backlog -= delta;
    } else if (e.fluid_backlog > 0) {
      delta += e.fluid_backlog;
      e.fluid_backlog = 0;
    }
    const double mbps = static_cast<double>(delta) * 8.0 / 1e6 / window_s;
    const bool moved = delta > 0;
    if (moved) ++transferring;
    const double power_mw = e.radio->power_mw_at(now, mbps, moved);
    e.energy_mj += power_mw * window_s;
    const auto iface_code = static_cast<std::uint32_t>(e.iface->type());
    EMPTCP_TRACE(sim_, energy_sample(now, iface_code,
                                     net::to_string(e.iface->type()), mbps,
                                     power_mw));
    const RadioState rstate = e.radio->state_at(now);
    if (rstate != e.last_state) {
      EMPTCP_TRACE(sim_, radio_state(now, iface_code,
                                     net::to_string(e.iface->type()),
                                     to_string(rstate)));
      e.last_state = rstate;
    }
    if (cfg_.record_series && sample_index_ % cfg_.series_stride == 0) {
      e.rates.push_back(RatePoint{sim::to_seconds(now), mbps});
    }
  }
  if (transferring >= 1) {
    platform_mj_ += cfg_.platform_mw * window_s;
  }
  if (cfg_.platform_mw > 0.0) {
    // The shared platform-activity draw must appear in the trace too, or
    // integrating the energy_sample stream can never reproduce total_j().
    // Sampled every window (zero when no radio moved bytes) so offline
    // integration needs no knowledge of the transfer windows.
    const double plat_mw = transferring >= 1 ? cfg_.platform_mw : 0.0;
    EMPTCP_TRACE(sim_, energy_sample(now, kPlatformTraceCode, "platform",
                                     0.0, plat_mw));
  }
  if (cfg_.record_series && sample_index_ % cfg_.series_stride == 0) {
    energy_series_.push_back(SeriesPoint{sim::to_seconds(now), total_j()});
  }
  ++sample_index_;
  sim_.in(cfg_.sample, [this, epoch] { tick(epoch); });
}

void EnergyTracker::set_fluid_rate(const net::NetworkInterface& iface,
                                   double bytes_per_s) {
  for (Entry& e : entries_) {
    if (e.iface == &iface) {
      e.fluid_active = true;
      e.fluid_bps = bytes_per_s;
      return;
    }
  }
}

void EnergyTracker::clear_fluid_rate(const net::NetworkInterface& iface) {
  for (Entry& e : entries_) {
    if (e.iface == &iface) {
      e.fluid_active = false;
      e.fluid_bps = 0.0;
      // The backlog (if any) is released into the next tick's delta.
      return;
    }
  }
}

double EnergyTracker::total_j() const {
  double mj = platform_mj_;
  for (const Entry& e : entries_) mj += e.energy_mj;
  return mj / 1000.0;
}

const EnergyTracker::Entry* EnergyTracker::find(net::InterfaceType t) const {
  for (const Entry& e : entries_) {
    if (e.iface->type() == t) return &e;
  }
  return nullptr;
}

double EnergyTracker::iface_j(net::InterfaceType t) const {
  const Entry* e = find(t);
  return e != nullptr ? e->energy_mj / 1000.0 : 0.0;
}

bool EnergyTracker::all_idle() const {
  for (const Entry& e : entries_) {
    if (e.radio->state_at(sim_.now()) != RadioState::kIdle) return false;
  }
  return true;
}

const std::vector<EnergyTracker::RatePoint>& EnergyTracker::rate_series(
    net::InterfaceType t) const {
  const Entry* e = find(t);
  if (e == nullptr) {
    throw std::invalid_argument("EnergyTracker: interface type not tracked");
  }
  return e->rates;
}

double EnergyTracker::mean_rx_mbps(net::InterfaceType t) const {
  const Entry* e = find(t);
  if (e == nullptr) return 0.0;
  const double elapsed = sim::to_seconds(sim_.now() - started_at_);
  if (elapsed <= 0.0) return 0.0;
  // Only bytes received since start() count: the interface's lifetime
  // counter may include traffic from before tracking began.
  const std::uint64_t rx = e->iface->rx_bytes() - e->start_rx_bytes;
  return static_cast<double>(rx) * 8.0 / 1e6 / elapsed;
}

}  // namespace emptcp::energy
