#include "tcp/rtt.hpp"

#include <algorithm>
#include <cstdlib>

namespace emptcp::tcp {

void RttEstimator::add_sample(sim::Duration rtt) {
  if (rtt < 0) return;
  if (!has_sample_) {
    srtt_ = rtt;
    rttvar_ = rtt / 2;
    has_sample_ = true;
  } else {
    // RFC 6298: alpha = 1/8, beta = 1/4.
    const sim::Duration err = std::abs(srtt_ - rtt);
    rttvar_ = (3 * rttvar_ + err) / 4;
    srtt_ = (7 * srtt_ + rtt) / 8;
  }
  rto_ = srtt_ + std::max<sim::Duration>(4 * rttvar_, sim::milliseconds(1));
  clamp_rto();
}

void RttEstimator::backoff() {
  rto_ *= 2;
  clamp_rto();
}

void RttEstimator::clamp_rto() {
  rto_ = std::clamp(rto_, cfg_.min_rto, cfg_.max_rto);
}

}  // namespace emptcp::tcp
