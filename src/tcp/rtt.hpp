// RTT estimation and retransmission timeout per RFC 6298, with two hooks the
// paper's §3.6 needs:
//   * handshake RTT — the three-way-handshake time, which eMPTCP's bandwidth
//     predictor uses to choose its per-subflow sampling interval δ;
//   * force_srtt — eMPTCP "sets the measured round trip time (RTT) of the
//     [resumed] subflow to zero" so the min-RTT scheduler probes it first.
#pragma once

#include "sim/time.hpp"

namespace emptcp::tcp {

class RttEstimator {
 public:
  struct Config {
    sim::Duration initial_rto = sim::seconds(1);
    sim::Duration min_rto = sim::milliseconds(200);
    sim::Duration max_rto = sim::seconds(60);
  };

  RttEstimator() : RttEstimator(Config{}) {}
  explicit RttEstimator(Config cfg) : cfg_(cfg), rto_(cfg.initial_rto) {}

  /// Feeds one RTT sample (from a segment that was not retransmitted —
  /// Karn's rule is enforced by the caller).
  void add_sample(sim::Duration rtt);

  /// Exponential RTO backoff after a retransmission timeout.
  void backoff();

  /// Overrides the smoothed RTT (eMPTCP resumed-subflow trick). The RTO is
  /// left untouched so retransmission behaviour stays sane.
  void force_srtt(sim::Duration srtt) { srtt_ = srtt; }

  [[nodiscard]] sim::Duration srtt() const { return srtt_; }
  [[nodiscard]] sim::Duration rttvar() const { return rttvar_; }
  [[nodiscard]] sim::Duration rto() const { return rto_; }
  [[nodiscard]] bool has_sample() const { return has_sample_; }

 private:
  void clamp_rto();

  Config cfg_;
  sim::Duration srtt_ = 0;
  sim::Duration rttvar_ = 0;
  sim::Duration rto_;
  bool has_sample_ = false;
};

}  // namespace emptcp::tcp
