// Congestion control.
//
// RenoCongestionControl implements NewReno-style behaviour: slow start,
// congestion avoidance, halving on a fast-retransmit loss event, collapse to
// one segment on RTO. The congestion-avoidance increase is virtual so the
// MPTCP coupled controller (RFC 6356 LIA) can override just that step while
// sharing everything else — that is precisely where LIA differs from Reno.
//
// RFC 2861 congestion-window validation (reset cwnd after an idle period
// longer than the RTO) is modelled as a flag: standard subflows have it on;
// eMPTCP disables it on subflows it resumes, per §3.6 of the paper.
#pragma once

#include <algorithm>
#include <cstdint>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace emptcp::tcp {

class CongestionControl {
 public:
  struct Config {
    std::uint32_t mss = net::kMss;
    std::uint32_t initial_window_segments = 10;  ///< IW10, RFC 6928
    std::uint64_t max_cwnd_bytes = 16ull * 1024 * 1024;
  };

  explicit CongestionControl(Config cfg)
      : cfg_(cfg),
        cwnd_(static_cast<std::uint64_t>(cfg.mss) *
              cfg.initial_window_segments),
        ssthresh_(cfg.max_cwnd_bytes) {}

  virtual ~CongestionControl() = default;

  /// New cumulative ACK for `acked_bytes` fresh bytes.
  void on_ack(std::uint64_t acked_bytes);

  /// Fast-retransmit loss event (third duplicate ACK).
  virtual void on_loss_event();

  /// Retransmission timeout.
  virtual void on_timeout();

  /// Called when the sender transmits after an idle period of `idle`.
  /// Applies RFC 2861 cwnd validation when enabled.
  void on_idle_restart(sim::Duration idle, sim::Duration rto);

  /// Analytic macro-step: the fast path acknowledged `acked_bytes` across a
  /// whole quantum without individual ACK events. Grows the window exactly
  /// as the per-ACK path would (same ca_increase virtual, so LIA coupling
  /// is preserved), then models the congestion-avoidance sawtooth: when the
  /// window exceeds `cwnd_cap` (the path's bandwidth-delay product plus
  /// queue headroom as measured by the fast path), reacts as a loss event
  /// would. The cap also bounds the burst released when the flow drops back
  /// to packet level.
  void macro_advance(std::uint64_t acked_bytes, std::uint64_t cwnd_cap) {
    on_ack(acked_bytes);
    if (cwnd_cap >= 2ull * cfg_.mss && cwnd_ > cwnd_cap) on_loss_event();
  }

  void set_cwnd_validation(bool enabled) { cwnd_validation_ = enabled; }
  [[nodiscard]] bool cwnd_validation() const { return cwnd_validation_; }

  [[nodiscard]] std::uint64_t cwnd() const { return cwnd_; }
  [[nodiscard]] std::uint64_t ssthresh() const { return ssthresh_; }
  [[nodiscard]] bool in_slow_start() const { return cwnd_ < ssthresh_; }
  [[nodiscard]] std::uint32_t mss() const { return cfg_.mss; }
  [[nodiscard]] std::uint64_t initial_cwnd() const {
    return static_cast<std::uint64_t>(cfg_.mss) *
           cfg_.initial_window_segments;
  }

 protected:
  /// Congestion-avoidance increase for `acked_bytes`; Reno adds
  /// mss*acked/cwnd, LIA overrides with the coupled formula.
  virtual std::uint64_t ca_increase(std::uint64_t acked_bytes);

  void set_cwnd(std::uint64_t c) {
    cwnd_ = std::clamp<std::uint64_t>(c, cfg_.mss, cfg_.max_cwnd_bytes);
  }

  Config cfg_;
  std::uint64_t cwnd_;
  std::uint64_t ssthresh_;
  bool cwnd_validation_ = true;
};

/// Plain NewReno, used by single-path TCP.
class RenoCongestionControl final : public CongestionControl {
 public:
  using CongestionControl::CongestionControl;
};

}  // namespace emptcp::tcp
