// A complete simulated TCP endpoint.
//
// One engine serves three roles in this system:
//   * plain single-path TCP (the paper's "TCP over WiFi" baseline),
//   * each MPTCP subflow (the meta-socket plugs in a SegmentSource that
//     hands out connection-level data with DSS mappings, and an observer
//     that sees every arriving packet's MPTCP options),
//   * both client and server ends (connect/accept).
//
// Implemented behaviour: three-way handshake (with SYN retransmission),
// cumulative ACKs, out-of-order reassembly, RFC 6298 RTO with Karn's rule
// and exponential backoff, NewReno fast retransmit/recovery with partial
// ACKs, RFC 2861 cwnd validation after idle (the switchable behaviour from
// paper §3.6), FIN-based teardown, and MPTCP option carriage (MP_CAPABLE /
// MP_JOIN / DSS / DATA_ACK / MP_PRIO).
//
// Transfers are counted bytes — no payload content is stored — which keeps
// the 256 MB download experiments fast while preserving every protocol
// dynamic the paper's results depend on.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "net/node.hpp"
#include "net/packet.hpp"
#include "sim/ring_deque.hpp"
#include "sim/simulation.hpp"
#include "sim/timer.hpp"
#include "tcp/buffers.hpp"
#include "tcp/cc.hpp"
#include "tcp/rtt.hpp"

namespace emptcp::check {
struct Hub;
}

namespace emptcp::tcp {

enum class TcpState {
  kClosed,
  kSynSent,
  kSynReceived,
  kEstablished,
  kFinWait,    ///< our FIN sent, not yet acknowledged
  kCloseWait,  ///< peer's FIN consumed, ours not yet sent
  kLastAck,    ///< peer's FIN consumed and our FIN in flight
  kDone,       ///< both directions closed
};

const char* to_string(TcpState s);

class TcpSocket {
 public:
  struct Config {
    CongestionControl::Config cc;
    RttEstimator::Config rtt;
    int max_syn_retries = 6;
    /// Consecutive data RTOs before the connection is declared dead (the
    /// kernel's tcp_retries2 analogue); lets a subflow on a broken path
    /// fail so MPTCP can reinject its data elsewhere.
    int max_data_rtos = 10;
  };

  /// One transmission opportunity handed out by a SegmentSource.
  struct Chunk {
    std::uint32_t len = 0;
    std::optional<net::DssMapping> dss;
  };

  /// Supplies payload when the congestion window opens. `max_len` is the
  /// most the socket can take (<= MSS). Returning nullopt means "no data
  /// available right now"; the socket will ask again after
  /// notify_data_available().
  using SegmentSource =
      std::function<std::optional<Chunk>(std::uint32_t max_len)>;

  struct Callbacks {
    std::function<void()> on_connected;
    /// In-order payload progress: `newly` bytes advanced past the
    /// cumulative point (plain-TCP applications count these).
    std::function<void(std::uint64_t newly)> on_data;
    /// Every packet that reaches this socket, before processing. The MPTCP
    /// meta-socket reads DSS / DATA_ACK / MP_PRIO options here.
    std::function<void(const net::Packet&)> on_packet;
    /// Cumulative application bytes newly acknowledged by the peer.
    std::function<void(std::uint64_t newly_acked)> on_bytes_acked;
    /// Peer's FIN consumed in order: the read side is finished.
    std::function<void()> on_eof;
    /// Both directions closed (or the connection failed).
    std::function<void()> on_closed;
  };

  TcpSocket(sim::Simulation& sim, net::Node& node, Config cfg);
  ~TcpSocket();

  TcpSocket(const TcpSocket&) = delete;
  TcpSocket& operator=(const TcpSocket&) = delete;

  void set_callbacks(Callbacks cb) { cb_ = std::move(cb); }

  /// Replaces the congestion controller (the meta-socket installs LIA).
  void set_congestion_control(std::unique_ptr<CongestionControl> cc);

  /// Installs an external payload source (MPTCP mode). Without one, the
  /// socket serves its internal counted-byte queue (`send_app_data`).
  void set_segment_source(SegmentSource src) { source_ = std::move(src); }

  /// Active open. `mp_capable` / `mp_join` tag the SYN's MPTCP option.
  void connect(net::Addr local, net::Port local_port, net::Addr remote,
               net::Port remote_port, bool mp_capable = false,
               bool mp_join = false);

  /// Token carried on this socket's SYN (MP_CAPABLE announces it, MP_JOIN
  /// uses it to find the connection). Set before connect().
  void set_mp_token(std::uint64_t token) { mp_token_ = token; }

  /// Sets the MP_JOIN backup ("B") bit on this socket's SYN.
  void set_mp_backup_flag(bool backup) { mp_backup_ = backup; }

  /// Application tag carried on this socket's SYN.
  void set_app_tag(std::uint32_t tag) { app_tag_ = tag; }

  /// Passive open from a received SYN: registers the flow and answers
  /// SYN-ACK. The caller owns the returned socket.
  static std::unique_ptr<TcpSocket> accept(sim::Simulation& sim,
                                           net::Node& node, Config cfg,
                                           const net::Packet& syn);

  /// Plain-TCP mode: enqueues `bytes` of application data to transmit.
  void send_app_data(std::uint64_t bytes);

  /// MPTCP mode: tells the socket its SegmentSource may have data again.
  void notify_data_available() { try_send(); }

  /// Half-closes the write side: a FIN follows the last queued byte.
  void shutdown_write();

  /// Immediately tears the socket down (no RST modelling needed here).
  void abort();

  // --- MPTCP option plumbing -------------------------------------------
  /// Announces an MP_PRIO priority for this subflow: a pure ACK carries it
  /// immediately (paper §3.6: the change is "added to the next packet to
  /// be transmitted"), and the option stays attached to every subsequent
  /// packet so a lost ACK cannot strand the peer on a stale priority (the
  /// receiver treats repeats as idempotent).
  void send_mp_prio(bool backup);
  /// Sets the connection-level DATA_ACK attached to outgoing ACKs.
  void set_data_ack(std::uint64_t data_ack) { data_ack_ = data_ack; }
  /// Sets the DATA_FIN attached to outgoing packets (meta-socket closing).
  void set_data_fin(std::uint64_t data_fin) { data_fin_ = data_fin; }

  // --- eMPTCP resumed-subflow tweaks (paper §3.6) -----------------------
  void set_cwnd_validation(bool enabled) { cc_->set_cwnd_validation(enabled); }
  void reset_srtt_for_probe() { rtt_.force_srtt(0); }

  // --- Introspection ----------------------------------------------------
  [[nodiscard]] TcpState state() const { return state_; }
  [[nodiscard]] const net::FlowKey& flow() const { return key_; }
  [[nodiscard]] sim::Duration srtt() const { return rtt_.srtt(); }
  [[nodiscard]] sim::Duration rto() const { return rtt_.rto(); }
  /// Three-way-handshake RTT (eMPTCP's predictor sampling interval δ).
  [[nodiscard]] sim::Duration handshake_rtt() const { return handshake_rtt_; }
  [[nodiscard]] std::uint64_t cwnd() const { return cc_->cwnd(); }
  [[nodiscard]] std::uint64_t bytes_in_flight() const {
    return snd_nxt_ - snd_una_;
  }
  /// Bytes believed to be in the network: outstanding minus SACKed minus
  /// marked-lost-and-not-yet-retransmitted (RFC 6675's pipe).
  [[nodiscard]] std::uint64_t pipe() const {
    return bytes_in_flight() - sacked_bytes_ - lost_bytes_;
  }
  [[nodiscard]] std::uint64_t app_bytes_acked() const {
    return app_bytes_acked_;
  }
  [[nodiscard]] std::uint64_t app_bytes_received() const {
    return app_bytes_received_;
  }
  [[nodiscard]] std::uint64_t retransmitted_segments() const {
    return retransmit_count_;
  }
  /// Peer's FIN consumed: no more data will arrive.
  [[nodiscard]] bool eof_received() const { return eof_delivered_; }
  /// The socket ended abnormally (handshake failure, RST, abort()).
  [[nodiscard]] bool failed() const { return failed_; }
  [[nodiscard]] const CongestionControl& congestion_control() const {
    return *cc_;
  }
  [[nodiscard]] bool write_open() const {
    return (state_ == TcpState::kEstablished ||
            state_ == TcpState::kCloseWait) &&
           !fin_queued_;
  }
  /// True when the congestion window has room for more payload.
  [[nodiscard]] bool can_send_now() const {
    return state_ == TcpState::kEstablished ||
           state_ == TcpState::kCloseWait
               ? pipe() < cc_->cwnd()
               : false;
  }

  // --- Macro-step interface (hybrid fidelity; see DESIGN.md §13) --------
  /// Quiescence predicate: true only when this endpoint is in established
  /// steady state with no transient pending — nothing in flight, no SACK
  /// holes or marked losses, not in recovery, no RTO armed, no FIN in
  /// either direction, no reassembly gap. The fast path may only advance a
  /// flow analytically while this holds on every subflow socket; every
  /// per-packet transition out of the quiescent set happens exclusively
  /// through packet-level code, so a false predicate is sufficient to drop
  /// back to full fidelity. Deliberately redundant terms (retx_ empty AND
  /// zero in flight AND no timer) keep the predicate safe even if one
  /// bookkeeping path drifts; Mutation::kMacroQuiescenceBlind blinds the
  /// loss/in-flight terms so tests can prove they have teeth.
  [[nodiscard]] bool can_macro_step() const;
  /// Analytically sends-and-acknowledges `bytes` in one step, as if the
  /// peer had cumulatively ACKed a whole quantum of MSS segments: advances
  /// snd_nxt/snd_una together (nothing is left in flight), credits the
  /// application counters, and grows cwnd through the congestion
  /// controller's normal virtual increase capped at `cwnd_cap` (see
  /// CongestionControl::macro_advance). Caller must hold can_macro_step().
  void macro_advance_sender(std::uint64_t bytes, std::uint64_t cwnd_cap);
  /// Receiver-side mirror: appends `bytes` contiguously at the cumulative
  /// point as if delivered in order. Does not fire the on_data callback —
  /// the MPTCP meta-socket accounts for delivery at the data level.
  /// Caller must hold can_macro_step().
  void macro_advance_receiver(std::uint64_t bytes);

 private:
  struct TxSegment {
    std::uint64_t seq = 0;
    std::uint32_t len = 0;
    bool fin = false;
    bool retransmitted = false;
    bool sacked = false;
    bool lost = false;  ///< deemed lost, retransmission not yet sent
    std::uint64_t rtx_epoch = 0;  ///< recovery round of the last retransmit
    sim::Time sent_at = 0;
    std::optional<net::DssMapping> dss;

    /// Sequence space consumed (payload plus the FIN's virtual byte).
    [[nodiscard]] std::uint64_t size() const {
      return static_cast<std::uint64_t>(len) + (fin ? 1 : 0);
    }
  };

  /// State-machine transitions funnel through here so every one is traced.
  void transition(TcpState next);
  /// Trace helpers for the two high-churn observables.
  void trace_cwnd();
  void trace_srtt();

  void on_receive(const net::Packet& pkt);
  void handle_syn(const net::Packet& pkt);
  void handle_synack(const net::Packet& pkt);
  void process_ack(const net::Packet& pkt);
  void process_payload(const net::Packet& pkt);
  void enter_established();
  void try_send();
  void maybe_send_fin();
  void send_segment(TxSegment& seg, bool retransmission);
  void send_pure_ack();
  void fill_sack(net::Packet& pkt) const;
  void retransmit_front();
  /// Applies the SACK blocks of an incoming ACK; returns true if any
  /// segment was newly marked.
  bool apply_sack(const net::Packet& pkt);
  /// RFC 6675 IsLost: marks unsacked segments more than 3 MSS below the
  /// highest SACK as lost (removing them from the pipe).
  void mark_losses();
  void enter_recovery();
  /// Retransmits marked-lost segments while the pipe allows.
  void retransmit_holes();
  void on_rto();
  void arm_rto();
  void attach_options(net::Packet& pkt);
  void register_flow();
  void finish(bool failed, bool send_rst = true);
  [[nodiscard]] std::uint64_t rcv_ack_point() const;
  std::optional<Chunk> next_chunk(std::uint32_t max_len);

  sim::Simulation& sim_;
  net::Node& node_;
  Config cfg_;
  Callbacks cb_;
  net::FlowKey key_;
  TcpState state_ = TcpState::kClosed;
  bool flow_registered_ = false;

  std::unique_ptr<CongestionControl> cc_;
  RttEstimator rtt_;
  sim::Timer rto_timer_;

  // Cached metric handles (registered once in the constructor; increments
  // are a pointer-chase + add, cheap enough for the loss paths they sit on).
  trace::Counter* ctr_retransmits_ = nullptr;
  trace::Counter* ctr_rtos_ = nullptr;
  trace::Counter* ctr_fast_recoveries_ = nullptr;
  /// Invariant-oracle attachment point (see check/hub.hpp); cached so each
  /// hook site is one load + branch when no oracle is attached.
  check::Hub* chk_ = nullptr;

  // Send side. Sequence 0 is the SYN; application data starts at 1.
  std::uint64_t snd_una_ = 0;
  std::uint64_t snd_nxt_ = 0;
  sim::RingDeque<TxSegment> retx_;
  std::uint64_t app_bytes_queued_ = 0;  ///< plain-TCP mode backlog
  std::uint64_t app_bytes_sent_ = 0;
  std::uint64_t app_bytes_acked_ = 0;
  bool fin_queued_ = false;
  bool fin_sent_ = false;
  bool fin_acked_ = false;
  std::uint64_t fin_seq_ = 0;
  int dupacks_ = 0;
  bool in_recovery_ = false;
  std::uint64_t recover_point_ = 0;
  std::uint64_t sacked_bytes_ = 0;
  std::uint64_t lost_bytes_ = 0;    ///< lost and not yet retransmitted
  std::uint64_t high_sacked_ = 0;   ///< highest SACKed sequence end
  std::uint64_t recovery_epoch_ = 0;
  sim::Time last_send_ = 0;
  std::uint64_t retransmit_count_ = 0;
  int syn_retries_ = 0;
  int consecutive_rtos_ = 0;

  // Receive side.
  IntervalReassembly rcv_{1};
  std::uint64_t app_bytes_received_ = 0;
  std::optional<std::uint64_t> fin_rcv_seq_;
  bool fin_consumed_ = false;
  bool eof_delivered_ = false;
  bool failed_ = false;

  // MPTCP flags for the SYN we send.
  bool mp_capable_ = false;
  bool mp_join_ = false;
  std::uint64_t mp_token_ = 0;
  bool mp_backup_ = false;
  std::uint32_t app_tag_ = 0;

  // Option plumbing.
  std::optional<bool> announced_prio_;
  std::optional<std::uint64_t> data_ack_;
  std::optional<std::uint64_t> data_fin_;

  // Handshake measurement.
  sim::Time syn_sent_at_ = 0;
  sim::Duration handshake_rtt_ = 0;

  SegmentSource source_;
};

/// Passive-open helper: owns nothing but the node's listener registration;
/// hands every new SYN to the acceptor, which decides what socket to build
/// (plain TCP server app, MPTCP meta-socket, ...).
class TcpListener {
 public:
  using Acceptor = std::function<void(const net::Packet& syn)>;

  TcpListener(net::Node& node, net::Port port, Acceptor acceptor);

 private:
  net::Node& node_;
};

}  // namespace emptcp::tcp
