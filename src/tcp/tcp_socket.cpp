#include "tcp/tcp_socket.hpp"

#include <algorithm>

#include "check/hub.hpp"
#include "check/mutation.hpp"
#include "check/oracle.hpp"
#include "sim/logging.hpp"
#include "trace/trace.hpp"

namespace emptcp::tcp {

const char* to_string(TcpState s) {
  switch (s) {
    case TcpState::kClosed: return "CLOSED";
    case TcpState::kSynSent: return "SYN_SENT";
    case TcpState::kSynReceived: return "SYN_RCVD";
    case TcpState::kEstablished: return "ESTABLISHED";
    case TcpState::kFinWait: return "FIN_WAIT";
    case TcpState::kCloseWait: return "CLOSE_WAIT";
    case TcpState::kLastAck: return "LAST_ACK";
    case TcpState::kDone: return "DONE";
  }
  return "?";
}

TcpSocket::TcpSocket(sim::Simulation& sim, net::Node& node, Config cfg)
    : sim_(sim),
      node_(node),
      cfg_(cfg),
      cc_(std::make_unique<RenoCongestionControl>(cfg.cc)),
      rtt_(cfg.rtt),
      rto_timer_(sim.scheduler(), [this] { on_rto(); }),
      ctr_retransmits_(&sim.trace().metrics().counter("tcp.retransmits")),
      ctr_rtos_(&sim.trace().metrics().counter("tcp.rtos")),
      ctr_fast_recoveries_(
          &sim.trace().metrics().counter("tcp.fast_recoveries")),
      chk_(&check::hub(sim)) {}

void TcpSocket::transition(TcpState next) {
  EMPTCP_TRACE(sim_, tcp_state(sim_.now(), key_.local_port,
                               to_string(state_), to_string(next)));
  state_ = next;
}

void TcpSocket::trace_cwnd() {
  EMPTCP_TRACE(sim_, cwnd(sim_.now(), key_.local_port, cc_->cwnd(),
                          cc_->ssthresh()));
}

void TcpSocket::trace_srtt() {
  EMPTCP_TRACE(sim_,
               srtt(sim_.now(), key_.local_port, rtt_.srtt(), rtt_.rto()));
}

TcpSocket::~TcpSocket() {
  if (flow_registered_) node_.unregister_flow(key_);
}

void TcpSocket::set_congestion_control(
    std::unique_ptr<CongestionControl> cc) {
  const bool validation = cc_->cwnd_validation();
  cc_ = std::move(cc);
  cc_->set_cwnd_validation(validation);
}

void TcpSocket::register_flow() {
  node_.register_flow(key_, [this](const net::Packet& p) { on_receive(p); });
  flow_registered_ = true;
}

void TcpSocket::connect(net::Addr local, net::Port local_port,
                        net::Addr remote, net::Port remote_port,
                        bool mp_capable, bool mp_join) {
  key_ = net::FlowKey{local, local_port, remote, remote_port};
  mp_capable_ = mp_capable;
  mp_join_ = mp_join;
  register_flow();
  transition(TcpState::kSynSent);
  syn_sent_at_ = sim_.now();

  net::Packet syn;
  syn.src = key_.local_addr;
  syn.dst = key_.remote_addr;
  syn.sport = key_.local_port;
  syn.dport = key_.remote_port;
  syn.seq = 0;
  syn.syn = true;
  syn.mp_capable = mp_capable_;
  syn.mp_join = mp_join_;
  syn.mp_token = mp_token_;
  syn.mp_backup = mp_backup_;
  syn.app_tag = app_tag_;
  node_.send(syn);
  rto_timer_.arm_in(rtt_.rto());
}

std::unique_ptr<TcpSocket> TcpSocket::accept(sim::Simulation& sim,
                                             net::Node& node, Config cfg,
                                             const net::Packet& syn) {
  auto sock = std::make_unique<TcpSocket>(sim, node, cfg);
  sock->key_ = syn.flow_at_receiver();
  sock->register_flow();
  sock->transition(TcpState::kSynReceived);
  sock->syn_sent_at_ = sim.now();

  net::Packet synack;
  synack.src = sock->key_.local_addr;
  synack.dst = sock->key_.remote_addr;
  synack.sport = sock->key_.local_port;
  synack.dport = sock->key_.remote_port;
  synack.seq = 0;
  synack.syn = true;
  synack.is_ack = true;
  synack.ack = 1;
  node.send(synack);
  sock->rto_timer_.arm_in(sock->rtt_.rto());
  return sock;
}

void TcpSocket::send_app_data(std::uint64_t bytes) {
  app_bytes_queued_ += bytes;
  if (state_ == TcpState::kEstablished || state_ == TcpState::kCloseWait) {
    try_send();
  }
}

void TcpSocket::shutdown_write() {
  if (fin_queued_) return;
  fin_queued_ = true;
  if (state_ == TcpState::kEstablished || state_ == TcpState::kCloseWait) {
    try_send();
  }
}

void TcpSocket::abort() {
  if (state_ == TcpState::kDone) return;
  finish(/*failed=*/true);
}

void TcpSocket::send_mp_prio(bool backup) {
  announced_prio_ = backup;
  if (state_ == TcpState::kEstablished || state_ == TcpState::kCloseWait ||
      state_ == TcpState::kFinWait) {
    send_pure_ack();  // flushes the option immediately
  }
}

bool TcpSocket::can_macro_step() const {
  if (state_ != TcpState::kEstablished) return false;
  if (failed_) return false;
  if (fin_queued_ || fin_sent_ || fin_rcv_seq_.has_value()) return false;
  if (rcv_.has_gaps()) return false;
  if (check::active_mutation() == check::Mutation::kMacroQuiescenceBlind) {
    // Injected fault: skip every in-flight/loss term below. The property
    // tests must catch this (a flow with outstanding or marked-lost data
    // would be declared quiescent).
    return true;
  }
  if (!retx_.empty() || bytes_in_flight() != 0) return false;
  if (in_recovery_ || dupacks_ != 0) return false;
  if (sacked_bytes_ != 0 || lost_bytes_ != 0) return false;
  if (rto_timer_.armed()) return false;
  return true;
}

void TcpSocket::macro_advance_sender(std::uint64_t bytes,
                                     std::uint64_t cwnd_cap) {
  snd_nxt_ += bytes;
  snd_una_ = snd_nxt_;
  app_bytes_sent_ += bytes;
  app_bytes_acked_ += bytes;
  // Keeps RFC 2861 idle detection from collapsing cwnd on packet-level
  // resume: the flow was never idle, its events were just aggregated.
  last_send_ = sim_.now();
  cc_->macro_advance(bytes, cwnd_cap);
  trace_cwnd();
  if (check::Oracle* oracle = chk_->oracle) {
    oracle->on_tcp_ack({snd_una_, snd_nxt_, bytes_in_flight(), sacked_bytes_,
                        lost_bytes_, cc_->cwnd(), key_.local_port});
  }
}

void TcpSocket::macro_advance_receiver(std::uint64_t bytes) {
  const std::uint64_t newly = rcv_.insert(rcv_.cumulative(), bytes);
  app_bytes_received_ += newly;
  if (check::Oracle* oracle = chk_->oracle) {
    oracle->on_tcp_rx(app_bytes_received_, rcv_.cumulative(),
                      key_.local_port);
  }
}

std::uint64_t TcpSocket::rcv_ack_point() const {
  return rcv_.cumulative() + (fin_consumed_ ? 1 : 0);
}

void TcpSocket::on_receive(const net::Packet& pkt) {
  if (state_ == TcpState::kDone || state_ == TcpState::kClosed) return;
  if (cb_.on_packet) cb_.on_packet(pkt);
  if (pkt.rst) {
    finish(/*failed=*/true, /*send_rst=*/false);
    return;
  }

  switch (state_) {
    case TcpState::kSynSent:
      if (pkt.syn && pkt.is_ack && pkt.ack >= 1) handle_synack(pkt);
      return;
    case TcpState::kSynReceived:
      if (pkt.syn && !pkt.is_ack) {
        // Duplicate SYN: our SYN-ACK was lost; resend it.
        handle_syn(pkt);
        return;
      }
      if (pkt.is_ack && pkt.ack >= 1) {
        handshake_rtt_ = sim_.now() - syn_sent_at_;
        rtt_.add_sample(handshake_rtt_);
        trace_srtt();
        enter_established();
        // Fall through to normal processing of any piggybacked content.
        break;
      }
      return;
    default:
      break;
  }

  if (pkt.syn) {
    // A retransmitted SYN-ACK means our handshake ACK was lost and the
    // peer is stuck in SYN-RECEIVED: acknowledge again.
    if (pkt.is_ack) send_pure_ack();
    return;
  }

  if (pkt.is_ack) process_ack(pkt);
  if (pkt.payload > 0 || pkt.fin) process_payload(pkt);
}

void TcpSocket::handle_syn(const net::Packet&) {
  net::Packet synack;
  synack.src = key_.local_addr;
  synack.dst = key_.remote_addr;
  synack.sport = key_.local_port;
  synack.dport = key_.remote_port;
  synack.seq = 0;
  synack.syn = true;
  synack.is_ack = true;
  synack.ack = 1;
  node_.send(synack);
}

void TcpSocket::handle_synack(const net::Packet&) {
  handshake_rtt_ = sim_.now() - syn_sent_at_;
  rtt_.add_sample(handshake_rtt_);
  trace_srtt();
  send_pure_ack();
  enter_established();
}

void TcpSocket::enter_established() {
  snd_una_ = 1;
  snd_nxt_ = 1;
  transition(TcpState::kEstablished);
  rto_timer_.cancel();
  last_send_ = sim_.now();
  EMPTCP_LOG(sim_, sim::LogLevel::kDebug,
             node_.name() << " established " << key_.local_addr << ":"
                          << key_.local_port << "<->" << key_.remote_addr
                          << ":" << key_.remote_port
                          << " hs_rtt=" << sim::to_milliseconds(handshake_rtt_)
                          << "ms");
  if (cb_.on_connected) cb_.on_connected();
  try_send();
}

bool TcpSocket::apply_sack(const net::Packet& pkt) {
  if (pkt.sack.empty()) return false;
  bool changed = false;
  for (TxSegment& seg : retx_) {
    if (seg.sacked) continue;
    const std::uint64_t end = seg.seq + seg.size();
    for (const auto& [s, e] : pkt.sack) {
      if (seg.seq >= s && end <= e) {
        seg.sacked = true;
        sacked_bytes_ += seg.size();
        if (seg.lost) {
          // A retransmission (or late original) arrived after all.
          seg.lost = false;
          lost_bytes_ -= seg.size();
        }
        high_sacked_ = std::max(high_sacked_, end);
        changed = true;
        break;
      }
    }
  }
  if (changed) mark_losses();
  return changed;
}

void TcpSocket::mark_losses() {
  const std::uint64_t threshold = 3ull * cc_->mss();
  // RACK-style guard: a segment (re)transmitted less than one smoothed RTT
  // ago may simply not have been acknowledged yet; don't re-mark it.
  const sim::Time fresh_after = sim_.now() - std::max<sim::Duration>(
                                                 rtt_.srtt(),
                                                 sim::milliseconds(10));
  for (TxSegment& seg : retx_) {
    const std::uint64_t end = seg.seq + seg.size();
    if (end + threshold > high_sacked_) break;  // no loss evidence beyond
    if (seg.sacked || seg.lost) continue;
    if (seg.sent_at > fresh_after) continue;  // still plausibly in flight
    seg.lost = true;
    lost_bytes_ += seg.size();
  }
}

void TcpSocket::enter_recovery() {
  in_recovery_ = true;
  ++recovery_epoch_;
  recover_point_ = snd_nxt_;
  cc_->on_loss_event();
  ctr_fast_recoveries_->add();
  trace_cwnd();
  EMPTCP_LOG(sim_, sim::LogLevel::kTrace,
             node_.name() << " fast retransmit at una=" << snd_una_
                          << " cwnd=" << cc_->cwnd());
  // With few dupacks and nothing marked yet, the front segment is the
  // presumed hole (classic fast retransmit) — unless its last transmission
  // is fresher than an RTT.
  if (lost_bytes_ == 0 && !retx_.empty() && !retx_.front().sacked &&
      sim_.now() - retx_.front().sent_at >= rtt_.srtt()) {
    retx_.front().lost = true;
    lost_bytes_ += retx_.front().size();
  }
  retransmit_holes();
  try_send();
}

void TcpSocket::retransmit_holes() {
  if (lost_bytes_ == 0) return;  // common case: nothing marked
  for (TxSegment& seg : retx_) {
    if (lost_bytes_ == 0) break;
    if (pipe() >= cc_->cwnd()) break;
    if (!seg.lost || seg.sacked) continue;
    seg.lost = false;
    lost_bytes_ -= seg.size();
    seg.rtx_epoch = recovery_epoch_;
    send_segment(seg, /*retransmission=*/true);
  }
}

void TcpSocket::process_ack(const net::Packet& pkt) {
  const std::uint64_t ack = pkt.ack;
  if (ack > snd_nxt_) return;  // acks data we never sent; ignore

  const bool sack_advanced = apply_sack(pkt);

  if (ack > snd_una_) {
    const std::uint64_t acked = ack - snd_una_;
    snd_una_ = ack;
    dupacks_ = 0;
    consecutive_rtos_ = 0;

    // Retire covered segments; take an RTT sample per Karn's rule.
    std::uint64_t app_acked = 0;
    std::optional<sim::Time> sample_from;
    while (!retx_.empty()) {
      const TxSegment& seg = retx_.front();
      const std::uint64_t seg_end = seg.seq + seg.len + (seg.fin ? 1 : 0);
      if (seg_end > ack) break;
      app_acked += seg.len;
      if (seg.sacked) sacked_bytes_ -= seg.size();
      if (seg.lost) lost_bytes_ -= seg.size();
      if (!seg.retransmitted) sample_from = seg.sent_at;
      if (seg.fin) fin_acked_ = true;
      retx_.pop_front();
    }
    if (sample_from) {
      rtt_.add_sample(sim_.now() - *sample_from);
      trace_srtt();
    }

    if (in_recovery_ && ack >= recover_point_) in_recovery_ = false;
    if (!in_recovery_) {
      cc_->on_ack(acked);
      trace_cwnd();
    }
    retransmit_holes();  // fill any remaining marked holes first

    if (check::Oracle* oracle = chk_->oracle) {
      oracle->on_tcp_ack({snd_una_, snd_nxt_, bytes_in_flight(),
                          sacked_bytes_, lost_bytes_, cc_->cwnd(),
                          key_.local_port});
    }

    if (app_acked > 0) {
      app_bytes_acked_ += app_acked;
      if (cb_.on_bytes_acked) cb_.on_bytes_acked(app_acked);
    }

    if (retx_.empty()) {
      rto_timer_.cancel();
    } else {
      arm_rto();
    }

    if (fin_acked_) {
      if (state_ == TcpState::kFinWait && fin_consumed_) {
        finish(false);
        return;
      }
      if (state_ == TcpState::kLastAck) {
        finish(false);
        return;
      }
    }
    try_send();
    return;
  }

  // Duplicate ACK: same cumulative point with data outstanding, carried by
  // a pure ACK or anything that conveyed new SACK information.
  if (ack == snd_una_ && bytes_in_flight() > 0 &&
      ((pkt.payload == 0 && !pkt.fin) || sack_advanced)) {
    ++dupacks_;
    if (!in_recovery_ &&
        (dupacks_ >= 3 ||
         sacked_bytes_ > 3ull * cc_->mss())) {
      enter_recovery();
    } else if (in_recovery_ && sack_advanced) {
      retransmit_holes();
      try_send();
    }
  }
}

void TcpSocket::process_payload(const net::Packet& pkt) {
  if (pkt.fin) fin_rcv_seq_ = pkt.seq + pkt.payload;

  if (pkt.payload > 0) {
    const std::uint64_t newly = rcv_.insert(pkt.seq, pkt.payload);
    if (newly > 0) {
      app_bytes_received_ += newly;
      if (cb_.on_data) cb_.on_data(newly);
    }
    if (check::Oracle* oracle = chk_->oracle) {
      oracle->on_tcp_rx(app_bytes_received_, rcv_.cumulative(),
                        key_.local_port);
    }
  }

  if (fin_rcv_seq_ && !fin_consumed_ && rcv_.cumulative() == *fin_rcv_seq_) {
    fin_consumed_ = true;
    if (state_ == TcpState::kEstablished) transition(TcpState::kCloseWait);
    if (!eof_delivered_) {
      eof_delivered_ = true;
      if (cb_.on_eof) cb_.on_eof();
    }
  }

  // Acknowledge everything that carried sequence space.
  send_pure_ack();

  if (fin_consumed_ && fin_sent_ && fin_acked_) finish(false);
}

std::optional<TcpSocket::Chunk> TcpSocket::next_chunk(std::uint32_t max_len) {
  if (source_) return source_(max_len);
  const std::uint64_t remaining = app_bytes_queued_ - app_bytes_sent_;
  if (remaining == 0) return std::nullopt;
  Chunk c;
  c.len = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(remaining, max_len));
  return c;
}

void TcpSocket::try_send() {
  if (state_ != TcpState::kEstablished && state_ != TcpState::kCloseWait) {
    return;
  }

  // RFC 2861: restarting after an idle period — unless eMPTCP disabled
  // validation on this (resumed) subflow.
  if (retx_.empty() && last_send_ > 0) {
    cc_->on_idle_restart(sim_.now() - last_send_, rtt_.rto());
  }

  while (pipe() < cc_->cwnd()) {
    const std::uint64_t space = cc_->cwnd() - pipe();
    const auto max_len = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(space, cc_->mss()));
    auto chunk = next_chunk(max_len);
    if (!chunk || chunk->len == 0) break;

    TxSegment seg;
    seg.seq = snd_nxt_;
    seg.len = chunk->len;
    seg.dss = chunk->dss;
    snd_nxt_ += seg.len;
    app_bytes_sent_ += seg.len;
    retx_.push_back(seg);
    send_segment(retx_.back(), /*retransmission=*/false);
  }

  maybe_send_fin();
}

void TcpSocket::maybe_send_fin() {
  if (!fin_queued_ || fin_sent_) return;
  // All internally queued data must be out; an external source signals
  // completion simply by the owner calling shutdown_write() after the last
  // byte was handed out.
  if (!source_ && app_bytes_sent_ < app_bytes_queued_) return;

  TxSegment seg;
  seg.seq = snd_nxt_;
  seg.fin = true;
  fin_seq_ = seg.seq;
  snd_nxt_ += 1;
  fin_sent_ = true;
  retx_.push_back(seg);
  send_segment(retx_.back(), /*retransmission=*/false);

  transition(state_ == TcpState::kCloseWait ? TcpState::kLastAck
                                            : TcpState::kFinWait);
}

void TcpSocket::send_segment(TxSegment& seg, bool retransmission) {
  net::Packet pkt;
  pkt.src = key_.local_addr;
  pkt.dst = key_.remote_addr;
  pkt.sport = key_.local_port;
  pkt.dport = key_.remote_port;
  pkt.seq = seg.seq;
  pkt.payload = seg.len;
  pkt.fin = seg.fin;
  pkt.is_ack = true;
  pkt.ack = rcv_ack_point();
  pkt.dss = seg.dss;
  fill_sack(pkt);
  attach_options(pkt);

  seg.sent_at = sim_.now();
  if (retransmission) {
    seg.retransmitted = true;
    ++retransmit_count_;
    ctr_retransmits_->add();
  }
  last_send_ = sim_.now();
  node_.send(pkt);
  if (!rto_timer_.armed()) arm_rto();
}

void TcpSocket::send_pure_ack() {
  net::Packet pkt;
  pkt.src = key_.local_addr;
  pkt.dst = key_.remote_addr;
  pkt.sport = key_.local_port;
  pkt.dport = key_.remote_port;
  pkt.seq = snd_nxt_;
  pkt.is_ack = true;
  pkt.ack = rcv_ack_point();
  fill_sack(pkt);
  attach_options(pkt);
  node_.send(pkt);
}

void TcpSocket::fill_sack(net::Packet& pkt) const {
  // SackList's fixed capacity *is* the kMaxSackBlocks bound; stop as soon
  // as it is reached rather than silently dropping later blocks.
  for (const auto& [start, end] : rcv_.intervals()) {
    if (pkt.sack.full()) break;
    pkt.sack.emplace_back(start, end);
  }
}

void TcpSocket::attach_options(net::Packet& pkt) {
  if (data_ack_) pkt.data_ack = data_ack_;
  if (data_fin_) pkt.data_fin = data_fin_;
  if (announced_prio_) pkt.mp_prio = net::MpPrio{*announced_prio_};
}

void TcpSocket::retransmit_front() {
  if (retx_.empty()) return;
  send_segment(retx_.front(), /*retransmission=*/true);
}

void TcpSocket::on_rto() {
  switch (state_) {
    case TcpState::kSynSent: {
      if (++syn_retries_ > cfg_.max_syn_retries) {
        finish(/*failed=*/true);
        return;
      }
      net::Packet syn;
      syn.src = key_.local_addr;
      syn.dst = key_.remote_addr;
      syn.sport = key_.local_port;
      syn.dport = key_.remote_port;
      syn.seq = 0;
      syn.syn = true;
      syn.mp_capable = mp_capable_;
      syn.mp_join = mp_join_;
      syn.mp_token = mp_token_;
  syn.mp_backup = mp_backup_;
  syn.app_tag = app_tag_;
      node_.send(syn);
      rtt_.backoff();
      rto_timer_.arm_in(rtt_.rto());
      return;
    }
    case TcpState::kSynReceived: {
      if (++syn_retries_ > cfg_.max_syn_retries) {
        finish(/*failed=*/true);
        return;
      }
      handle_syn(net::Packet{});
      rtt_.backoff();
      rto_timer_.arm_in(rtt_.rto());
      return;
    }
    default:
      break;
  }

  if (retx_.empty()) return;
  if (++consecutive_rtos_ > cfg_.max_data_rtos) {
    finish(/*failed=*/true);
    return;
  }
  EMPTCP_LOG(sim_, sim::LogLevel::kTrace,
             node_.name() << " RTO at una=" << snd_una_
                          << " rto=" << sim::to_milliseconds(rtt_.rto())
                          << "ms");
  cc_->on_timeout();
  ctr_rtos_->add();
  trace_cwnd();
  rtt_.backoff();
  in_recovery_ = false;
  dupacks_ = 0;
  // RFC 6675 after RTO: every outstanding unsacked segment is presumed
  // lost; retransmission restarts from the front under slow start.
  ++recovery_epoch_;
  for (TxSegment& seg : retx_) {
    if (!seg.sacked && !seg.lost) {
      seg.lost = true;
      lost_bytes_ += seg.size();
    }
  }
  retransmit_holes();
  rto_timer_.arm_in(rtt_.rto());
}

void TcpSocket::arm_rto() { rto_timer_.arm_in(rtt_.rto()); }

void TcpSocket::finish(bool failed, bool send_rst) {
  if (state_ == TcpState::kDone) return;
  const bool was_synced = state_ != TcpState::kClosed;
  transition(TcpState::kDone);
  failed_ = failed;
  if (failed && send_rst && was_synced) {
    // Tear the peer down too (the kernel resets a connection it gives up
    // on); this lets MPTCP reinject the dead subflow's data promptly.
    net::Packet rst;
    rst.src = key_.local_addr;
    rst.dst = key_.remote_addr;
    rst.sport = key_.local_port;
    rst.dport = key_.remote_port;
    rst.rst = true;
    node_.send(rst);
  }
  rto_timer_.cancel();
  if (flow_registered_) {
    node_.unregister_flow(key_);
    flow_registered_ = false;
  }
  EMPTCP_LOG(sim_, sim::LogLevel::kDebug,
             node_.name() << " closed " << key_.local_port
                          << (failed ? " (failed)" : ""));
  if (cb_.on_closed) cb_.on_closed();
}

TcpListener::TcpListener(net::Node& node, net::Port port, Acceptor acceptor)
    : node_(node) {
  node_.listen(port, [acceptor = std::move(acceptor)](const net::Packet& syn) {
    acceptor(syn);
  });
}

}  // namespace emptcp::tcp
