#include "tcp/cc.hpp"

namespace emptcp::tcp {

void CongestionControl::on_ack(std::uint64_t acked_bytes) {
  if (acked_bytes == 0) return;
  if (in_slow_start()) {
    // Slow start: one MSS per MSS acked (byte counting).
    set_cwnd(cwnd_ + std::min<std::uint64_t>(acked_bytes, cfg_.mss * 2));
  } else {
    set_cwnd(cwnd_ + ca_increase(acked_bytes));
  }
}

std::uint64_t CongestionControl::ca_increase(std::uint64_t acked_bytes) {
  // Reno: cwnd += mss * (acked / cwnd), i.e. ~one MSS per RTT.
  const auto inc = static_cast<std::uint64_t>(
      static_cast<double>(cfg_.mss) * static_cast<double>(acked_bytes) /
      static_cast<double>(cwnd_));
  return std::max<std::uint64_t>(inc, 1);
}

void CongestionControl::on_loss_event() {
  ssthresh_ = std::max<std::uint64_t>(cwnd_ / 2, 2ull * cfg_.mss);
  set_cwnd(ssthresh_);
}

void CongestionControl::on_timeout() {
  ssthresh_ = std::max<std::uint64_t>(cwnd_ / 2, 2ull * cfg_.mss);
  set_cwnd(cfg_.mss);
}

void CongestionControl::on_idle_restart(sim::Duration idle,
                                        sim::Duration rto) {
  if (!cwnd_validation_) return;
  if (idle <= rto) return;
  // RFC 2861 (simplified as in practice): restart from the initial window
  // after an idle period longer than one RTO.
  set_cwnd(std::min(cwnd_, initial_cwnd()));
  ssthresh_ = std::max(ssthresh_, cwnd_);
}

}  // namespace emptcp::tcp
