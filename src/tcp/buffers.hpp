// Reassembly machinery shared by the TCP receiver (subflow sequence space)
// and the MPTCP meta-receiver (data sequence space).
//
// IntervalReassembly tracks a cumulative in-order point plus a set of
// disjoint out-of-order intervals. Data content is not stored — this
// simulator models transfers as counted bytes — so reassembly is purely
// interval arithmetic, which keeps 256 MB downloads cheap.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

namespace emptcp::tcp {

class IntervalReassembly {
 public:
  explicit IntervalReassembly(std::uint64_t initial_point = 0)
      : cum_(initial_point) {}

  /// Inserts [seq, seq+len); returns the number of bytes by which the
  /// cumulative point advanced (0 if the segment was out of order or
  /// entirely duplicate).
  std::uint64_t insert(std::uint64_t seq, std::uint64_t len);

  /// Next expected byte (everything below is contiguous).
  [[nodiscard]] std::uint64_t cumulative() const { return cum_; }

  /// Bytes buffered above the cumulative point.
  [[nodiscard]] std::uint64_t buffered_bytes() const;

  [[nodiscard]] bool has_gaps() const { return !segments_.empty(); }
  [[nodiscard]] std::size_t gap_segments() const { return segments_.size(); }

  /// The buffered out-of-order intervals (for SACK generation).
  [[nodiscard]] const std::map<std::uint64_t, std::uint64_t>& intervals()
      const {
    return segments_;
  }

 private:
  using Map = std::map<std::uint64_t, std::uint64_t>;

  /// Removes `it`, stashing its node on the spare list for reuse; returns
  /// the successor iterator.
  Map::iterator discard(Map::iterator it);

  /// Inserts [seq, end) as a fresh interval, reusing a spare node if any.
  void emplace_interval(std::uint64_t seq, std::uint64_t end);

  std::uint64_t cum_;
  /// Out-of-order intervals: start -> end (exclusive), disjoint, all > cum_.
  Map segments_;
  /// Recycled map nodes (bounded): the steady-state reorder pattern — gaps
  /// open, fill and reopen continuously — then never touches the allocator.
  std::vector<Map::node_type> spares_;
};

}  // namespace emptcp::tcp
