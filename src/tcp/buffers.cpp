#include "tcp/buffers.hpp"

#include <algorithm>

namespace emptcp::tcp {

std::uint64_t IntervalReassembly::insert(std::uint64_t seq,
                                         std::uint64_t len) {
  if (len == 0) return 0;
  std::uint64_t end = seq + len;
  if (end <= cum_) return 0;  // stale duplicate
  seq = std::max(seq, cum_);

  // Merge [seq, end) into the out-of-order set.
  auto it = segments_.lower_bound(seq);
  if (it != segments_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= seq) {
      seq = prev->first;
      end = std::max(end, prev->second);
      it = segments_.erase(prev);
    }
  }
  while (it != segments_.end() && it->first <= end) {
    end = std::max(end, it->second);
    it = segments_.erase(it);
  }
  segments_.emplace(seq, end);

  // Advance the cumulative point through any now-contiguous intervals.
  const std::uint64_t before = cum_;
  auto head = segments_.begin();
  while (head != segments_.end() && head->first <= cum_) {
    cum_ = std::max(cum_, head->second);
    head = segments_.erase(head);
  }
  return cum_ - before;
}

std::uint64_t IntervalReassembly::buffered_bytes() const {
  std::uint64_t total = 0;
  for (const auto& [start, end] : segments_) total += end - start;
  return total;
}

}  // namespace emptcp::tcp
