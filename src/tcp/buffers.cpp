#include "tcp/buffers.hpp"

#include <algorithm>

#include "check/mutation.hpp"

namespace emptcp::tcp {

namespace {
// Bound on hoarded spare nodes; more simultaneous gaps than this (deep
// loss episodes) falls back to the allocator.
constexpr std::size_t kMaxSpareNodes = 16;
}  // namespace

IntervalReassembly::Map::iterator IntervalReassembly::discard(
    Map::iterator it) {
  auto next = std::next(it);
  if (spares_.size() < kMaxSpareNodes) {
    if (spares_.capacity() == 0) spares_.reserve(kMaxSpareNodes);
    spares_.push_back(segments_.extract(it));
  } else {
    segments_.erase(it);
  }
  return next;
}

void IntervalReassembly::emplace_interval(std::uint64_t seq,
                                          std::uint64_t end) {
  if (!spares_.empty()) {
    auto node = std::move(spares_.back());
    spares_.pop_back();
    node.key() = seq;
    node.mapped() = end;
    segments_.insert(std::move(node));
  } else {
    segments_.emplace(seq, end);
  }
}

std::uint64_t IntervalReassembly::insert(std::uint64_t seq,
                                         std::uint64_t len) {
  if (len == 0) return 0;
  std::uint64_t end = seq + len;
  if (end <= cum_) {
    if (check::active_mutation() == check::Mutation::kReassemblyDupDeliver) {
      return len;  // injected fault: stale duplicates "deliver" again
    }
    return 0;  // stale duplicate
  }
  seq = std::max(seq, cum_);

  if (seq <= cum_) {
    // In-order data: advance the cumulative point directly, consuming any
    // buffered intervals it bridges. No map node is touched unless a gap
    // actually closes, so the common case is allocation-free.
    const std::uint64_t before = cum_;
    cum_ = end;
    auto head = segments_.begin();
    while (head != segments_.end() && head->first <= cum_) {
      cum_ = std::max(cum_, head->second);
      head = discard(head);
    }
    return cum_ - before;
  }

  // Out of order. Grow an existing interval in place when possible —
  // within one subflow data arrives in sequence, so an open gap's interval
  // is extended on the right far more often than a new one is created.
  auto it = segments_.lower_bound(seq);
  if (it != segments_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= seq) {
      if (end <= prev->second) return 0;  // fully contained duplicate
      prev->second = end;
      while (it != segments_.end() && it->first <= prev->second) {
        prev->second = std::max(prev->second, it->second);
        it = discard(it);
      }
      return 0;
    }
  }
  if (it != segments_.end() && it->first <= end) {
    // The new data extends `it` on the left (possibly swallowing later
    // intervals). Keys are immutable, so rewrite the extracted node and
    // reinsert it — same node, no allocation.
    end = std::max(end, it->second);
    auto next = std::next(it);
    while (next != segments_.end() && next->first <= end) {
      end = std::max(end, next->second);
      next = discard(next);
    }
    auto node = segments_.extract(it);
    node.key() = seq;
    node.mapped() = end;
    segments_.insert(std::move(node));
    return 0;
  }

  // Genuinely new disjoint interval; reuse a recycled node if present.
  emplace_interval(seq, end);
  return 0;
}

std::uint64_t IntervalReassembly::buffered_bytes() const {
  std::uint64_t total = 0;
  for (const auto& [start, end] : segments_) total += end - start;
  return total;
}

}  // namespace emptcp::tcp
