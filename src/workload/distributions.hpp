// Workload randomness: flow sizes, arrival processes and think times.
//
// Each model is a small POD config sampled through sim::Rng, so every draw
// is a pure function of the owning simulation's seed and the draw order —
// the determinism contract (bit-identical sequential vs parallel) extends
// unchanged to fleet runs. Size distributions follow the traffic-modeling
// literature: lognormal bodies and Pareto tails for web/file transfers,
// plus empirical sets for replaying measured size mixes (the paper's "in
// the wild" categories).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/random.hpp"
#include "sim/time.hpp"

namespace emptcp::workload {

/// Flow-size model. All draws are clamped to [min_bytes, max_bytes].
struct SizeDist {
  enum class Kind : std::uint8_t {
    kFixed,      ///< every flow is mean_bytes
    kLognormal,  ///< lognormal(log_mu, log_sigma) in bytes
    kPareto,     ///< Pareto(scale=min_bytes, shape=alpha); heavy tail
    kEmpirical,  ///< uniform pick from `values`
    kScheduled,  ///< values[index % size], no rng draw — flow sizes become
                 ///< a pure function of the flow index, which is what lets
                 ///< the fuzzer's differential mode compare protocols on
                 ///< identical workloads
  };

  Kind kind = Kind::kFixed;
  std::uint64_t mean_bytes = 1 << 20;  ///< kFixed value
  double log_mu = 11.0;                ///< kLognormal: mean of ln(bytes)
  double log_sigma = 1.5;              ///< kLognormal: sigma of ln(bytes)
  double alpha = 1.2;                  ///< kPareto shape (tail heaviness)
  std::uint64_t min_bytes = 1024;
  std::uint64_t max_bytes = std::uint64_t{1} << 32;
  std::vector<std::uint64_t> values;   ///< kEmpirical/kScheduled support

  /// `index` is the flow index; only kScheduled consults it (and draws
  /// nothing from `rng`, like kFixed).
  [[nodiscard]] std::uint64_t sample(sim::Rng& rng,
                                     std::size_t index = 0) const;
};

/// Flow inter-arrival model (open-loop fleets).
struct ArrivalProcess {
  enum class Kind : std::uint8_t {
    kPoisson,        ///< exponential gaps at rate_per_s
    kDeterministic,  ///< fixed gaps of 1/rate_per_s
    kTrace,          ///< explicit start times (seconds, ascending)
  };

  Kind kind = Kind::kPoisson;
  double rate_per_s = 1.0;
  std::vector<double> times_s;  ///< kTrace schedule

  /// Seconds from `prev_s` (or the trace start time for draw `index`);
  /// negative when a kTrace schedule is exhausted.
  [[nodiscard]] double next_start_s(sim::Rng& rng, double prev_s,
                                    std::size_t index) const;
};

/// Client think time between a completion and the next request
/// (closed-loop fleets).
struct ThinkTime {
  enum class Kind : std::uint8_t {
    kNone,         ///< immediately request the next flow
    kFixed,        ///< constant mean_s
    kExponential,  ///< exponential with mean mean_s
  };

  Kind kind = Kind::kNone;
  double mean_s = 0.0;

  [[nodiscard]] double sample_s(sim::Rng& rng) const;
};

}  // namespace emptcp::workload
