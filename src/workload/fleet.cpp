#include "workload/fleet.hpp"

#include "app/bulk_download.hpp"
#include "app/client_handle.hpp"
#include "app/world.hpp"
#include "trace/trace.hpp"

namespace emptcp::workload {

struct ClientFleet::Session {
  std::size_t flows_done = 0;
};

ClientFleet::ClientFleet(FleetConfig cfg) : cfg_(std::move(cfg)) {}

ClientFleet::~ClientFleet() = default;

app::World& ClientFleet::world() { return *world_; }

bool ClientFleet::budget_left() const {
  const std::size_t budget = cfg_.total_flows();
  return budget == 0 || started_ < budget;
}

void ClientFleet::start(std::uint64_t seed) {
  world_ = std::make_unique<app::World>(cfg_.scenario, seed);
  app::World& w = *world_;

  app::FileServer::Config scfg;
  scfg.port = app::kPort;
  scfg.request_bytes = cfg_.scenario.request_bytes;
  scfg.close_after_response = true;
  // Flows identify themselves via the app tag (flow id + 1): accept order
  // only matches connect order on loss-free paths — a dropped SYN makes a
  // later flow's connection arrive first and would permute the served
  // sizes. Guard the range so a stray connection gets an empty response
  // instead of UB.
  scfg.resolver = [this](std::size_t conn, std::size_t req) -> std::uint64_t {
    if (req != 0 || conn >= records_.size()) return 0;
    return records_[conn].bytes;
  };
  scfg.mptcp = app::make_mptcp_cfg(cfg_.scenario, true);
  server_ = std::make_unique<app::FileServer>(w.sim, w.server,
                                              std::move(scfg));

  w.tracker.start();
  w.start_dynamics();

  if (cfg_.mode == FleetConfig::Mode::kClosed) {
    sessions_.assign(cfg_.clients, Session{});
    for (std::size_t c = 0; c < cfg_.clients && budget_left(); ++c) {
      launch_flow(static_cast<std::uint32_t>(c));
    }
  } else {
    last_arrival_s_ = 0.0;
    schedule_next_arrival();
  }
}

void ClientFleet::schedule_next_arrival() {
  if (!budget_left()) {
    arrivals_done_ = true;
    return;
  }
  app::World& w = *world_;
  const double next = cfg_.arrival.next_start_s(w.sim.rng(), last_arrival_s_,
                                                arrivals_issued_);
  if (next < 0.0) {  // trace schedule exhausted
    arrivals_done_ = true;
    return;
  }
  last_arrival_s_ = next;
  const std::size_t index = arrivals_issued_++;
  const auto client =
      static_cast<std::uint32_t>(cfg_.clients > 0 ? index % cfg_.clients : 0);
  sim::Time at = sim::from_seconds(next);
  if (at < w.sim.now()) at = w.sim.now();
  w.sim.at(at, [this, client] {
    launch_flow(client);
    schedule_next_arrival();
  });
}

void ClientFleet::launch_flow(std::uint32_t client_index) {
  app::World& w = *world_;
  const auto flow_id = static_cast<std::uint32_t>(records_.size());

  FlowRecord rec;
  rec.id = flow_id;
  rec.client = client_index;
  rec.bytes = cfg_.flow_size.sample(w.sim.rng(), flow_id);
  rec.start_s = sim::to_seconds(w.sim.now());
  records_.push_back(rec);
  energy_at_start_.push_back(w.tracker.total_j());
  rx_at_start_.push_back(w.wifi_if->rx_bytes() + w.cell_if->rx_bytes());
  ++started_;
  EMPTCP_TRACE(w.sim, flow_start(w.sim.now(), flow_id, rec.bytes));

  auto handle = app::make_client(w, cfg_.protocol);
  handle->set_app_tag(flow_id + 1);
  app::ClientConnHandle* h = handle.get();
  app::ClientConnHandle::Callbacks cb;
  cb.on_established = [this, h] { h->send(cfg_.scenario.request_bytes); };
  cb.on_eof = [this, h, flow_id] {
    h->shutdown_write();
    on_flow_done(flow_id);
  };
  h->set_callbacks(std::move(cb));
  handles_.push_back(std::move(handle));
  h->connect();
}

void ClientFleet::on_flow_done(std::uint32_t flow_id) {
  app::World& w = *world_;
  FlowRecord& rec = records_[flow_id];
  rec.completed = true;
  rec.end_s = sim::to_seconds(w.sim.now());
  rec.delivered = handles_[flow_id]->bytes_received();
  // Energy attribution under overlap: the device energy spent over the
  // flow's lifetime, weighted by this flow's share of the bytes the device
  // received in that span. Exact for non-overlapping flows; a fair split
  // for concurrent ones.
  const double de = w.tracker.total_j() - energy_at_start_[flow_id];
  const std::uint64_t rx = w.wifi_if->rx_bytes() + w.cell_if->rx_bytes();
  const std::uint64_t db = rx - rx_at_start_[flow_id];
  rec.energy_j_est =
      db > 0 ? de * (static_cast<double>(rec.bytes) /
                     static_cast<double>(db))
             : 0.0;
  ++completed_;
  EMPTCP_TRACE(w.sim, flow_complete(w.sim.now(), flow_id, rec.bytes,
                                    rec.fct_s(), rec.energy_j_est));

  if (cfg_.mode != FleetConfig::Mode::kClosed) return;
  Session& s = sessions_[rec.client];
  ++s.flows_done;
  if (cfg_.flows_per_client != 0 && s.flows_done >= cfg_.flows_per_client) {
    return;
  }
  const std::uint32_t client = rec.client;
  const double think = cfg_.think.sample_s(w.sim.rng());
  if (think <= 0.0) {
    launch_flow(client);
  } else {
    w.sim.in(sim::from_seconds(think), [this, client] {
      launch_flow(client);
    });
  }
}

void ClientFleet::run_until(double t_s) {
  world_->sim.run_until(sim::from_seconds(t_s));
}

FleetMetrics ClientFleet::run(std::uint64_t seed) {
  start(seed);
  app::World& w = *world_;
  const std::size_t budget = cfg_.total_flows();
  app::advance_until(
      w,
      [&] {
        if (cfg_.mode == FleetConfig::Mode::kOpen) {
          return arrivals_done_ && completed_ >= started_;
        }
        return budget != 0 && completed_ >= budget;
      },
      cfg_.scenario.max_sim_time);
  return finish();
}

FleetMetrics ClientFleet::finish() {
  app::World& w = *world_;
  const std::size_t budget = cfg_.total_flows();
  const bool all_done =
      cfg_.mode == FleetConfig::Mode::kOpen
          ? (arrivals_done_ && completed_ >= started_ && started_ > 0)
          : (budget != 0 && completed_ >= budget);
  if (all_done) app::drain_tails(w, cfg_.scenario.max_drain);
  w.tracker.stop();

  // Flows still in progress keep whatever arrived so far, so the records
  // always satisfy delivered <= bytes with equality exactly on completion.
  for (FlowRecord& r : records_) {
    if (!r.completed) r.delivered = handles_[r.id]->bytes_received();
  }

  FleetMetrics m;
  m.flows_started = started_;
  m.flows_completed = completed_;
  std::uint64_t bytes = 0;
  for (const FlowRecord& r : records_) {
    if (!r.completed) continue;
    bytes += r.bytes;
    m.fct_hist.add(r.fct_s());
    if (r.bytes > 0) m.epb_hist.add(r.energy_per_bit_uj());
  }
  if (cfg_.scenario.trace) {
    // Fleet summary gauges, recorded before collect_core snapshots the
    // registry so serialized traces carry the per-flow headline numbers.
    trace::Metrics& reg = w.sim.trace().metrics();
    reg.gauge("fleet.clients").set(static_cast<double>(cfg_.clients));
    reg.gauge("fleet.flows_started").set(static_cast<double>(started_));
    reg.gauge("fleet.flows_completed").set(static_cast<double>(completed_));
  }
  m.run = app::collect_core(w, all_done, sim::to_seconds(w.sim.now()), bytes,
                            0);
  m.flows = records_;
  return m;
}

}  // namespace emptcp::workload
