// ShardedFleet: one fleet simulation partitioned into cells and executed
// concurrently on a conservative ShardEngine.
//
// The fleet's client population is split into C cells of up to
// clients_per_cell clients. Each cell is a full World (its own Simulation,
// WiFi channel, radios, tracker and FileServer) registered as one engine
// place; adjacent cells are coupled by a backbone ring of CrossShardLinks
// (cell i -> i+1 carries requests, cell i -> i-1 carries responses), and
// every cross_every-th flow of cell i fetches from cell (i+1)%C's server
// over it, so the partition is genuinely load-bearing, not embarrassingly
// parallel.
//
// Determinism contract: every output — flow records, merged trace stream,
// metric snapshot, per-cell oracle verdicts — is a pure function of
// (config, seed). The number of cells is a function of fleet size only;
// `shards` (worker threads) never changes a byte:
//   * per-cell randomness comes from per-cell seeded Rngs in cell event
//     order (unchanged by which thread runs the cell);
//   * flow sizes are a pure function of the global flow id g = cell + k*C,
//     so a remote FileServer resolves a cross flow's size with no shared
//     state;
//   * cross-place delivery order is fixed by the engine's (time, edge,
//     seq) drain order;
//   * the merged trace is cell-order-stable-sorted by virtual time, and
//     merged metrics sum counters in first-seen cell order.
// The artifacts deliberately never record the shard count.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/shard_engine.hpp"
#include "workload/fleet.hpp"

namespace emptcp::net {
class CrossShardLink;
}  // namespace emptcp::net

namespace emptcp::core {
class EnergyInfoBase;
}  // namespace emptcp::core

namespace emptcp::workload {

class ShardedFleet {
 public:
  explicit ShardedFleet(FleetConfig cfg);
  ~ShardedFleet();

  ShardedFleet(const ShardedFleet&) = delete;
  ShardedFleet& operator=(const ShardedFleet&) = delete;

  /// Runs the whole fleet to completion (flow budgets exhausted or
  /// scenario.max_sim_time reached) and collects merged metrics.
  FleetMetrics run(std::uint64_t seed);

  // Incremental driving (bench_fleet_scale measures steady-state windows):
  // start() builds cells + backbone and launches the workload, run_until()
  // advances all cells to t_s, finish() merges and collects.
  void start(std::uint64_t seed);
  void run_until(double t_s);
  FleetMetrics finish();

  [[nodiscard]] std::size_t cell_count() const { return cells_.size(); }
  [[nodiscard]] sim::ShardEngine& engine() { return *engine_; }
  [[nodiscard]] const sim::ShardEngine& engine() const { return *engine_; }
  [[nodiscard]] app::World& cell_world(std::size_t cell);
  [[nodiscard]] std::uint64_t flows_started() const;
  [[nodiscard]] std::uint64_t flows_completed() const;

  /// The response size of global flow `g` — a pure function of (seed, g),
  /// which is what lets a remote cell's server resolve sizes locally.
  [[nodiscard]] std::uint64_t flow_bytes(std::uint64_t g) const;

 private:
  struct Cell;

  void build_cell(std::size_t index, std::size_t clients,
                  std::uint32_t client_base);
  void wire_backbone();
  void launch_flow(Cell& c, std::uint32_t local_client);
  void on_flow_done(Cell& c, std::size_t local_index);
  void schedule_next_arrival(Cell& c);
  [[nodiscard]] bool all_flows_done() const;
  FleetMetrics merge(bool all_done);

  FleetConfig cfg_;
  std::uint64_t seed_ = 0;
  std::unique_ptr<sim::ShardEngine> engine_;
  std::vector<std::unique_ptr<Cell>> cells_;
  std::unique_ptr<core::EnergyInfoBase> eib_;  ///< shared across cells
};

/// Dispatch: ShardedFleet when cfg.sharding.clients_per_cell != 0, plain
/// single-World ClientFleet otherwise.
FleetMetrics run_fleet(const FleetConfig& cfg, std::uint64_t seed);

}  // namespace emptcp::workload
