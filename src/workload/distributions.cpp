#include "workload/distributions.hpp"

#include <algorithm>
#include <cmath>

namespace emptcp::workload {

std::uint64_t SizeDist::sample(sim::Rng& rng, std::size_t index) const {
  double bytes;
  switch (kind) {
    case Kind::kFixed:
      return std::clamp(mean_bytes, min_bytes, max_bytes);
    case Kind::kScheduled:
      if (values.empty()) return std::clamp(mean_bytes, min_bytes, max_bytes);
      return std::clamp(values[index % values.size()], min_bytes, max_bytes);
    case Kind::kLognormal:
      bytes = rng.lognormal(log_mu, log_sigma);
      break;
    case Kind::kPareto: {
      // Inverse-CDF: x = x_m * (1 - u)^(-1/alpha), x_m = min_bytes.
      const double u = rng.uniform(0.0, 1.0);
      bytes = static_cast<double>(min_bytes) *
              std::pow(1.0 - u, -1.0 / alpha);
      break;
    }
    case Kind::kEmpirical: {
      if (values.empty()) return std::clamp(mean_bytes, min_bytes, max_bytes);
      const auto i = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(values.size()) - 1));
      return std::clamp(values[i], min_bytes, max_bytes);
    }
    default:
      return std::clamp(mean_bytes, min_bytes, max_bytes);
  }
  bytes = std::min(bytes, static_cast<double>(max_bytes));
  const auto rounded = static_cast<std::uint64_t>(bytes);
  return std::clamp(rounded, min_bytes, max_bytes);
}

double ArrivalProcess::next_start_s(sim::Rng& rng, double prev_s,
                                    std::size_t index) const {
  switch (kind) {
    case Kind::kPoisson:
      return prev_s + rng.exponential(1.0 / rate_per_s);
    case Kind::kDeterministic:
      return prev_s + 1.0 / rate_per_s;
    case Kind::kTrace:
      if (index >= times_s.size()) return -1.0;
      return times_s[index];
  }
  return -1.0;
}

double ThinkTime::sample_s(sim::Rng& rng) const {
  switch (kind) {
    case Kind::kNone: return 0.0;
    case Kind::kFixed: return mean_s;
    case Kind::kExponential:
      return mean_s > 0.0 ? rng.exponential(mean_s) : 0.0;
  }
  return 0.0;
}

}  // namespace emptcp::workload
