// ClientFleet: a population of concurrent connections in one simulation.
//
// Scales the paper's single-connection testbed to N independent clients
// (each its own eMPTCP / baseline-TCP connection) contending on the shared
// WiFi/LTE bottlenecks of one World. Two driving disciplines:
//   * closed loop — each client cycles request -> download -> think ->
//     next request, the classic closed queueing model for user sessions;
//   * open loop — an arrival process (Poisson / deterministic / trace)
//     injects flows regardless of completions, the load model for
//     aggregate-traffic experiments.
//
// Every flow issues a fresh connection against the shared FileServer with
// a sampled size, and its completion yields a FlowRecord (FCT + estimated
// energy share). Records feed the trace sink as flow_start/flow_complete
// events, so campaign rollups rebuild per-flow FCT and energy-per-bit
// distributions (analysis::LogHistogram) from the serialized trace alone.
//
// Determinism: all draws come from the World's seeded Rng in simulation
// order, so fleet output is a pure function of (config, seed) — the same
// guarantee single runs have, preserved under parallel replication.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "analysis/histogram.hpp"
#include "analysis/perf_report.hpp"
#include "app/scenario.hpp"
#include "workload/distributions.hpp"

namespace emptcp::app {
struct World;
class FileServer;
class ClientConnHandle;
}  // namespace emptcp::app

namespace emptcp::workload {

/// How a fleet is partitioned across ShardEngine places (workload::
/// ShardedFleet). Results are a pure function of the *cell* structure
/// (clients_per_cell, cross_every, backbone parameters); `shards` only
/// maps cells onto worker threads and never changes any output byte.
struct ShardingConfig {
  /// Clients hosted per cell; 0 = unsharded (single-World ClientFleet).
  std::size_t clients_per_cell = 0;
  /// Worker threads executing the cells (0 = EMPTCP_JOBS-derived default).
  std::size_t shards = 1;
  /// Every cross_every-th flow of cell i fetches from cell (i+1)%C's
  /// server over the backbone; 0 = all traffic stays cell-local.
  std::size_t cross_every = 0;
  /// Backbone ring links coupling adjacent cells.
  double backbone_mbps = 1000.0;
  sim::Duration backbone_delay = sim::milliseconds(10);
};

struct FleetConfig {
  app::ScenarioConfig scenario;
  app::Protocol protocol = app::Protocol::kEmptcp;

  enum class Mode : std::uint8_t { kClosed, kOpen };
  Mode mode = Mode::kClosed;

  std::size_t clients = 8;          ///< concurrent sessions (closed loop)
  std::size_t flows_per_client = 4; ///< flow budget per client; 0 = endless
  SizeDist flow_size;
  ThinkTime think;                  ///< closed loop only
  ArrivalProcess arrival;           ///< open loop only
  ShardingConfig sharding;          ///< cell partitioning (ShardedFleet)

  [[nodiscard]] std::size_t total_flows() const {
    return flows_per_client == 0 ? 0 : clients * flows_per_client;
  }
  /// Number of cells the sharded engine would partition this fleet into.
  [[nodiscard]] std::size_t cell_count() const {
    if (sharding.clients_per_cell == 0) return 1;
    const std::size_t c =
        (clients + sharding.clients_per_cell - 1) / sharding.clients_per_cell;
    return c == 0 ? 1 : c;
  }
};

struct FlowRecord {
  std::uint32_t id = 0;       ///< flow index == server connection index
  std::uint32_t client = 0;
  std::uint64_t bytes = 0;    ///< sampled (and served) response size
  std::uint64_t delivered = 0;  ///< in-order bytes the client received
  double start_s = 0.0;
  double end_s = 0.0;
  bool completed = false;
  double energy_j_est = 0.0;  ///< device energy share (overlap-weighted)

  [[nodiscard]] double fct_s() const { return end_s - start_s; }
  [[nodiscard]] double energy_per_bit_uj() const {
    return bytes > 0 ? energy_j_est * 1e6 / (static_cast<double>(bytes) * 8.0)
                     : 0.0;
  }
};

struct FleetMetrics {
  app::RunMetrics run;           ///< world-level totals (shared semantics)
  std::vector<FlowRecord> flows;
  std::uint64_t flows_started = 0;
  std::uint64_t flows_completed = 0;
  analysis::LogHistogram fct_hist;      ///< completed-flow FCT (seconds)
  analysis::LogHistogram epb_hist;      ///< completed-flow energy (µJ/bit)
  /// Engine telemetry sidecar (sharded runs with runtime::Telemetry
  /// enabled only). Wall-clock data: never serialized into deterministic
  /// artifacts — campaign/bench writers route it to EMPTCP_PERF_DIR.
  std::optional<analysis::PerfDoc> perf;
};

class ClientFleet {
 public:
  explicit ClientFleet(FleetConfig cfg);
  ~ClientFleet();

  ClientFleet(const ClientFleet&) = delete;
  ClientFleet& operator=(const ClientFleet&) = delete;

  /// Runs the whole fleet to completion (flow budgets exhausted or
  /// scenario.max_sim_time reached) and collects.
  FleetMetrics run(std::uint64_t seed);

  // Incremental driving, for harnesses that measure steady state
  // (bench_micro): start() builds the world and launches the workload,
  // run_until() advances, finish() collects. run() is the composition.
  void start(std::uint64_t seed);
  void run_until(double t_s);
  FleetMetrics finish();

  [[nodiscard]] app::World& world();
  [[nodiscard]] std::uint64_t flows_started() const { return started_; }
  [[nodiscard]] std::uint64_t flows_completed() const { return completed_; }
  /// Open loop: no further arrivals are coming (closed loop: always false;
  /// its done-condition is the flow budget). Exposed for external drivers
  /// that replicate run()'s termination predicate, e.g. the fuzzer.
  [[nodiscard]] bool arrivals_done() const { return arrivals_done_; }

 private:
  struct Session;  ///< one closed-loop client's cycle state

  void launch_flow(std::uint32_t client_index);
  void on_flow_done(std::uint32_t flow_id);
  void schedule_next_arrival();
  [[nodiscard]] bool budget_left() const;

  FleetConfig cfg_;
  std::unique_ptr<app::World> world_;
  std::unique_ptr<app::FileServer> server_;
  std::vector<Session> sessions_;
  std::vector<FlowRecord> records_;
  // Flow handles stay alive until finish(): completion callbacks run on
  // the connection's own stack, so destroying there would be use-after-free.
  std::vector<std::unique_ptr<app::ClientConnHandle>> handles_;
  // Energy/byte baselines captured at each flow's start, indexed by flow id
  // (parallel to records_), for the overlap-weighted attribution.
  std::vector<double> energy_at_start_;
  std::vector<std::uint64_t> rx_at_start_;
  std::uint64_t started_ = 0;
  std::uint64_t completed_ = 0;
  std::size_t arrivals_issued_ = 0;
  double last_arrival_s_ = 0.0;
  bool arrivals_done_ = false;  ///< open loop: no further arrivals coming
};

}  // namespace emptcp::workload
