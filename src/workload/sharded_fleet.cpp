#include "workload/sharded_fleet.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "analysis/manifest.hpp"
#include "analysis/perf_report.hpp"
#include "app/bulk_download.hpp"
#include "app/client_handle.hpp"
#include "app/world.hpp"
#include "core/energy_info_base.hpp"
#include "net/packet_pool.hpp"
#include "net/shard_link.hpp"
#include "trace/trace.hpp"

namespace emptcp::workload {

namespace {

std::uint64_t nonzero(std::uint64_t h) { return h == 0 ? 1 : h; }

/// Per-cell simulation seed: a pure function of (fleet seed, cell index).
std::uint64_t cell_seed(std::uint64_t seed, std::size_t cell) {
  return nonzero(analysis::fnv1a64("cell|" + std::to_string(seed) + "|" +
                                   std::to_string(cell)));
}

}  // namespace

struct ShardedFleet::Cell {
  std::size_t index = 0;
  std::size_t clients = 0;
  std::uint32_t client_base = 0;
  std::size_t place = 0;

  std::unique_ptr<app::World> world;
  std::unique_ptr<app::FileServer> server;
  // Backbone endpoints: `in_up` receives the previous cell's requests,
  // `in_down` the next cell's responses; `up`/`down` are this cell's
  // outbound halves (created in wire_backbone, absent when C == 1).
  std::unique_ptr<net::CrossShardLink::Port> in_up, in_down;
  std::unique_ptr<net::CrossShardLink> up, down;

  std::vector<std::size_t> flows_done_per_client;
  std::vector<FlowRecord> records;  ///< local flows; id is the global g
  std::vector<std::unique_ptr<app::ClientConnHandle>> handles;
  std::vector<double> energy_at_start;
  std::vector<std::uint64_t> rx_at_start;
  std::uint64_t launched = 0;  ///< per-cell launch counter k (g = i + k*C)
  std::uint64_t completed = 0;
  ArrivalProcess arrival;  ///< cell-share-scaled copy of cfg.arrival
  std::size_t arrivals_issued = 0;
  double last_arrival_s = 0.0;
  bool arrivals_done = false;
};

ShardedFleet::ShardedFleet(FleetConfig cfg) : cfg_(std::move(cfg)) {}

ShardedFleet::~ShardedFleet() = default;

app::World& ShardedFleet::cell_world(std::size_t cell) {
  return *cells_.at(cell)->world;
}

std::uint64_t ShardedFleet::flows_started() const {
  std::uint64_t n = 0;
  for (const auto& c : cells_) n += c->launched;
  return n;
}

std::uint64_t ShardedFleet::flows_completed() const {
  std::uint64_t n = 0;
  for (const auto& c : cells_) n += c->completed;
  return n;
}

std::uint64_t ShardedFleet::flow_bytes(std::uint64_t g) const {
  // Fresh Rng per flow: any cell can evaluate any flow's size without
  // consuming another cell's random stream.
  sim::Rng rng(nonzero(analysis::fnv1a64(
      "flow|" + std::to_string(seed_) + "|" + std::to_string(g))));
  return cfg_.flow_size.sample(rng, static_cast<std::size_t>(g));
}

void ShardedFleet::build_cell(std::size_t index, std::size_t clients,
                              std::uint32_t client_base) {
  auto cell = std::make_unique<Cell>();
  Cell& c = *cell;
  c.index = index;
  c.clients = clients;
  c.client_base = client_base;
  c.world = std::make_unique<app::World>(cfg_.scenario, cell_seed(seed_, index),
                                         app::cell_addressing(index));
  app::World& w = *c.world;
  if (eib_) w.share_eib(*eib_);
  c.place = engine_->add_place(w.sim, "cell" + std::to_string(index));

  app::FileServer::Config scfg;
  scfg.port = app::kPort;
  scfg.request_bytes = cfg_.scenario.request_bytes;
  scfg.close_after_response = true;
  // Connections carry app_tag = g + 1 and sizes are a pure function of g,
  // so this server answers local and cross-cell requests identically.
  scfg.resolver = [this](std::size_t conn, std::size_t req) -> std::uint64_t {
    if (req != 0) return 0;
    return flow_bytes(conn);
  };
  scfg.mptcp = app::make_mptcp_cfg(cfg_.scenario, true);
  c.server = std::make_unique<app::FileServer>(w.sim, w.server,
                                               std::move(scfg));
  cells_.push_back(std::move(cell));
}

void ShardedFleet::wire_backbone() {
  const std::size_t C = cells_.size();
  if (C < 2) return;

  // Ports first (a CrossShardLink needs its destination port at
  // construction), then the links in fixed cell order so engine edge ids —
  // part of the deterministic drain order — are a pure function of C.
  for (auto& cp : cells_) {
    cp->in_up = std::make_unique<net::CrossShardLink::Port>();
    cp->in_down = std::make_unique<net::CrossShardLink::Port>();
  }
  for (std::size_t i = 0; i < C; ++i) {
    Cell& c = *cells_[i];
    const std::size_t next = (i + 1) % C;
    const std::size_t prev = (i + C - 1) % C;

    net::Link::Config up_cfg;
    up_cfg.rate_mbps = cfg_.sharding.backbone_mbps;
    up_cfg.prop_delay = cfg_.sharding.backbone_delay;
    up_cfg.queue_limit_bytes = 1 << 20;
    up_cfg.name = "backbone-up-" + std::to_string(i);
    c.up = std::make_unique<net::CrossShardLink>(
        c.world->sim, *engine_, c.place, cells_[next]->place,
        *cells_[next]->in_up, up_cfg);

    net::Link::Config down_cfg = up_cfg;
    down_cfg.name = "backbone-down-" + std::to_string(i);
    c.down = std::make_unique<net::CrossShardLink>(
        c.world->sim, *engine_, c.place, cells_[prev]->place,
        *cells_[prev]->in_down, down_cfg);
  }

  for (std::size_t i = 0; i < C; ++i) {
    Cell& c = *cells_[i];
    app::World& w = *c.world;
    const std::size_t prev = (i + C - 1) % C;

    // Client-side egress: WAN-up arrivals addressed to a remote server go
    // on the backbone instead of the local server interface.
    auto upstream = [this, &c, &w](const net::Packet& p) {
      if (p.dst == w.addrs.server) {
        w.srv_if->deliver(p);
      } else {
        c.up->link().send(p);
      }
    };
    w.wifi_wan_up->set_receiver(upstream);
    w.cell_wan_up->set_receiver(upstream);

    // Server-side egress: responses to the previous cell's clients ride
    // the down backbone (the route table keys on the destination address).
    const app::Addressing prev_addrs = app::cell_addressing(prev);
    w.srv_if->add_route(prev_addrs.wifi, c.down->link());
    w.srv_if->add_route(prev_addrs.cell, c.down->link());

    // Backbone ingress. Requests target this cell's server; responses
    // re-enter through the governed access links, so remote traffic
    // contends for the same WiFi/LTE bottlenecks local traffic does.
    c.in_up->set_receiver(
        [&w](const net::Packet& p) { w.srv_if->deliver(p); });
    c.in_down->set_receiver([&w](const net::Packet& p) {
      if (p.dst == w.addrs.wifi) {
        w.wifi_acc_down->send(p);
      } else if (p.dst == w.addrs.cell) {
        w.cell_acc_down->send(p);
      }
    });
  }
}

void ShardedFleet::start(std::uint64_t seed) {
  seed_ = seed;
  engine_ = std::make_unique<sim::ShardEngine>(cfg_.sharding.shards);

  // One EIB for every cell: generation is the expensive part, lookups are
  // const, and sharing keeps 100k-client memory bounded.
  if (cfg_.protocol == app::Protocol::kEmptcp) {
    eib_ = std::make_unique<core::EnergyInfoBase>(
        core::EnergyInfoBase::generate(
            cfg_.scenario.device.model(cfg_.scenario.cell_tech)));
  }

  const std::size_t C = cfg_.cell_count();
  const std::size_t per = cfg_.sharding.clients_per_cell == 0
                              ? cfg_.clients
                              : cfg_.sharding.clients_per_cell;
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < C; ++i) {
    const std::size_t n = std::min(per, cfg_.clients - assigned);
    build_cell(i, n, static_cast<std::uint32_t>(assigned));
    assigned += n;
  }
  wire_backbone();

  for (auto& cp : cells_) {
    Cell& c = *cp;
    c.world->tracker.start();
    c.world->start_dynamics();
    if (cfg_.mode == FleetConfig::Mode::kClosed) {
      c.flows_done_per_client.assign(c.clients, 0);
      for (std::size_t k = 0; k < c.clients; ++k) {
        launch_flow(c, static_cast<std::uint32_t>(k));
      }
    } else {
      // Per-cell arrival process at the cell's population share of the
      // global rate: for Poisson, superposition of the cell streams
      // reproduces the full-rate process in distribution, and any fixed
      // decomposition is shard-count invariant (cells are a function of
      // fleet size only). kTrace schedules are instead consumed round-robin
      // by global arrival index cell + n*C (see schedule_next_arrival).
      c.arrival = cfg_.arrival;
      if (cfg_.clients > 0) {
        c.arrival.rate_per_s = cfg_.arrival.rate_per_s *
                               static_cast<double>(c.clients) /
                               static_cast<double>(cfg_.clients);
      }
      c.last_arrival_s = 0.0;
      schedule_next_arrival(c);
    }
  }
}

void ShardedFleet::schedule_next_arrival(Cell& c) {
  const std::size_t budget =
      cfg_.flows_per_client == 0 ? 0 : c.clients * cfg_.flows_per_client;
  if (budget != 0 && c.launched >= budget) {
    c.arrivals_done = true;
    return;
  }
  app::World& w = *c.world;
  const std::size_t global_index =
      c.index + c.arrivals_issued * cells_.size();
  const double next =
      c.arrival.next_start_s(w.sim.rng(), c.last_arrival_s, global_index);
  if (next < 0.0) {  // trace schedule exhausted
    c.arrivals_done = true;
    return;
  }
  c.last_arrival_s = next;
  const std::size_t index = c.arrivals_issued++;
  const auto client =
      static_cast<std::uint32_t>(c.clients > 0 ? index % c.clients : 0);
  sim::Time at = sim::from_seconds(next);
  if (at < w.sim.now()) at = w.sim.now();
  w.sim.at(at, [this, &c, client] {
    launch_flow(c, client);
    schedule_next_arrival(c);
  });
}

void ShardedFleet::launch_flow(Cell& c, std::uint32_t local_client) {
  app::World& w = *c.world;
  const std::size_t C = cells_.size();
  const std::uint64_t k = c.launched++;
  const std::uint64_t g = c.index + k * C;
  const std::size_t local_index = c.records.size();

  FlowRecord rec;
  rec.id = static_cast<std::uint32_t>(g);
  rec.client = c.client_base + local_client;
  rec.bytes = flow_bytes(g);
  rec.start_s = sim::to_seconds(w.sim.now());
  c.records.push_back(rec);
  c.energy_at_start.push_back(w.tracker.total_j());
  c.rx_at_start.push_back(w.wifi_if->rx_bytes() + w.cell_if->rx_bytes());
  EMPTCP_TRACE(w.sim, flow_start(w.sim.now(), rec.id, rec.bytes));

  const bool cross = cfg_.sharding.cross_every != 0 && C > 1 &&
                     (k + 1) % cfg_.sharding.cross_every == 0;
  const net::Addr target =
      cross ? app::cell_addressing((c.index + 1) % C).server : w.addrs.server;

  auto handle = app::make_client(w, cfg_.protocol, target);
  handle->set_app_tag(rec.id + 1);
  app::ClientConnHandle* h = handle.get();
  app::ClientConnHandle::Callbacks cb;
  cb.on_established = [this, h] { h->send(cfg_.scenario.request_bytes); };
  cb.on_eof = [this, h, &c, local_index] {
    h->shutdown_write();
    on_flow_done(c, local_index);
  };
  h->set_callbacks(std::move(cb));
  c.handles.push_back(std::move(handle));
  h->connect();
}

void ShardedFleet::on_flow_done(Cell& c, std::size_t local_index) {
  app::World& w = *c.world;
  FlowRecord& rec = c.records[local_index];
  rec.completed = true;
  rec.end_s = sim::to_seconds(w.sim.now());
  rec.delivered = c.handles[local_index]->bytes_received();
  // Same overlap-weighted attribution as ClientFleet, per cell: the cell's
  // device energy over the flow's lifetime, weighted by the flow's share
  // of the bytes the cell received in that span.
  const double de = w.tracker.total_j() - c.energy_at_start[local_index];
  const std::uint64_t rx = w.wifi_if->rx_bytes() + w.cell_if->rx_bytes();
  const std::uint64_t db = rx - c.rx_at_start[local_index];
  rec.energy_j_est =
      db > 0
          ? de * (static_cast<double>(rec.bytes) / static_cast<double>(db))
          : 0.0;
  ++c.completed;
  EMPTCP_TRACE(w.sim, flow_complete(w.sim.now(), rec.id, rec.bytes,
                                    rec.fct_s(), rec.energy_j_est));

  if (cfg_.mode != FleetConfig::Mode::kClosed) return;
  std::size_t& done = c.flows_done_per_client[rec.client - c.client_base];
  ++done;
  if (cfg_.flows_per_client != 0 && done >= cfg_.flows_per_client) return;
  const std::uint32_t client = rec.client - c.client_base;
  const double think = cfg_.think.sample_s(w.sim.rng());
  if (think <= 0.0) {
    launch_flow(c, client);
  } else {
    w.sim.in(sim::from_seconds(think),
             [this, &c, client] { launch_flow(c, client); });
  }
}

bool ShardedFleet::all_flows_done() const {
  if (cfg_.mode == FleetConfig::Mode::kOpen) {
    std::uint64_t started = 0;
    std::uint64_t completed = 0;
    bool arrivals_done = true;
    for (const auto& c : cells_) {
      started += c->launched;
      completed += c->completed;
      arrivals_done = arrivals_done && c->arrivals_done;
    }
    return arrivals_done && completed >= started && started > 0;
  }
  const std::size_t budget = cfg_.total_flows();
  return budget != 0 && flows_completed() >= budget;
}

void ShardedFleet::run_until(double t_s) {
  engine_->run_until(sim::from_seconds(t_s));
}

FleetMetrics ShardedFleet::run(std::uint64_t seed) {
  start(seed);
  engine_->run_until(cfg_.scenario.max_sim_time,
                     [this] { return all_flows_done(); });
  return finish();
}

FleetMetrics ShardedFleet::finish() {
  const bool all_done = all_flows_done();
  if (all_done) {
    // Post-download tail energy, fleet-wide: advance until every cell's
    // radios fell back to idle, bounded like drain_tails.
    const sim::Time end = engine_->now() + cfg_.scenario.max_drain;
    engine_->run_until(end, [this] {
      for (const auto& c : cells_) {
        if (!c->world->tracker.all_idle()) return false;
      }
      return true;
    });
  }
  for (auto& c : cells_) c->world->tracker.stop();
  return merge(all_done);
}

FleetMetrics ShardedFleet::merge(bool all_done) {
  FleetMetrics m;
  m.flows_started = flows_started();
  m.flows_completed = flows_completed();

  // Flow records, globally ordered by flow id (deterministic: ids are a
  // pure function of (cell, launch index)).
  for (auto& c : cells_) {
    for (std::size_t li = 0; li < c->records.size(); ++li) {
      FlowRecord& r = c->records[li];
      if (!r.completed) r.delivered = c->handles[li]->bytes_received();
      m.flows.push_back(r);
    }
  }
  std::sort(m.flows.begin(), m.flows.end(),
            [](const FlowRecord& a, const FlowRecord& b) {
              return a.id < b.id;
            });

  std::uint64_t bytes = 0;
  for (const FlowRecord& r : m.flows) {
    if (!r.completed) continue;
    bytes += r.bytes;
    m.fct_hist.add(r.fct_s());
    if (r.bytes > 0) m.epb_hist.add(r.energy_per_bit_uj());
  }

  // World-level totals, summed across cells (collect_core semantics).
  app::RunMetrics& run = m.run;
  run.completed = all_done;
  run.download_time_s = sim::to_seconds(engine_->now());
  run.bytes_received = bytes;
  run.wifi_capacity_mbps = cfg_.scenario.wifi.down_mbps;
  run.cell_capacity_mbps = cfg_.scenario.cell.down_mbps;
  std::uint64_t wifi_rx = 0;
  std::uint64_t cell_rx = 0;
  for (const auto& cp : cells_) {
    app::World& w = *cp->world;
    run.energy_j += w.tracker.total_j();
    run.wifi_j += w.tracker.iface_j(w.wifi_if->type());
    run.cell_j += w.tracker.iface_j(w.cell_if->type());
    wifi_rx += w.wifi_if->rx_bytes();
    cell_rx += w.cell_if->rx_bytes();
    run.cellular_used = run.cellular_used || w.cell_if->rx_bytes() > 5000;
    run.cellular_activations +=
        static_cast<int>(w.cell_radio.activations());
    run.profile.sched_slab_slots += w.sim.scheduler().slab_size();
    run.profile.packet_pool_slots +=
        w.sim.context<net::PacketPool>().allocated();
  }
  if (run.download_time_s > 0.0) {
    run.mean_wifi_mbps =
        static_cast<double>(wifi_rx) * 8.0 / 1e6 / run.download_time_s;
    run.mean_cell_mbps =
        static_cast<double>(cell_rx) * 8.0 / 1e6 / run.download_time_s;
  }
  run.profile.events_executed = engine_->events_executed();

  // Telemetry sidecar (wall-clock; never merged into trace artifacts).
  // Per-place cross_tx comes from the cell's outbound backbone halves —
  // a plain accessor, deliberately not a trace metric (per-link counts
  // depend on the partition and would leak topology into artifacts).
  if (runtime::Telemetry::enabled()) {
    m.perf = analysis::make_perf_doc(engine_->perf());
    for (std::size_t i = 0;
         i < cells_.size() && i < m.perf->places.size(); ++i) {
      const Cell& c = *cells_[i];
      std::uint64_t tx = 0;
      if (c.up) tx += c.up->packets_posted();
      if (c.down) tx += c.down->packets_posted();
      m.perf->places[c.place].cross_tx = tx;
    }
  }

  if (cfg_.scenario.trace) {
    // Merged trace: concatenate in cell order, then stable-sort by virtual
    // time — equal-time records keep cell order, so the stream is
    // byte-identical for any shard count.
    for (const auto& cp : cells_) {
      const auto& ev = cp->world->sim.trace().events();
      run.trace_events.insert(run.trace_events.end(), ev.begin(), ev.end());
    }
    std::stable_sort(run.trace_events.begin(), run.trace_events.end(),
                     [](const trace::Event& a, const trace::Event& b) {
                       return a.t < b.t;
                     });

    // Merged metrics: counters summed by name in first-seen (cell) order;
    // the fleet-level gauges are computed globally — per-cell gauges would
    // leak the partition into the artifact.
    std::vector<trace::MetricSnapshot> counters;
    for (const auto& cp : cells_) {
      for (const trace::Counter& ctr :
           cp->world->sim.trace().metrics().counters()) {
        auto it = std::find_if(counters.begin(), counters.end(),
                               [&](const trace::MetricSnapshot& s) {
                                 return s.name == ctr.name();
                               });
        if (it == counters.end()) {
          counters.push_back(
              {ctr.name(), static_cast<double>(ctr.value())});
        } else {
          it->value += static_cast<double>(ctr.value());
        }
      }
    }
    run.trace_metrics = std::move(counters);
    auto gauge = [&](const char* name, double v) {
      run.trace_metrics.push_back({name, v});
    };
    gauge("run.completed", all_done ? 1.0 : 0.0);
    gauge("run.download_time_s", run.download_time_s);
    gauge("run.energy_j", run.energy_j);
    gauge("run.wifi_j", run.wifi_j);
    gauge("run.cell_j", run.cell_j);
    gauge("run.bytes_received", static_cast<double>(bytes));
    gauge("sim.events_executed",
          static_cast<double>(run.profile.events_executed));
    gauge("fleet.clients", static_cast<double>(cfg_.clients));
    gauge("fleet.cells", static_cast<double>(cells_.size()));
    gauge("fleet.clients_per_cell",
          static_cast<double>(cfg_.sharding.clients_per_cell));
    gauge("fleet.cross_every",
          static_cast<double>(cfg_.sharding.cross_every));
    gauge("fleet.cross_messages",
          static_cast<double>(engine_->cross_messages()));
    gauge("fleet.flows_started", static_cast<double>(m.flows_started));
    gauge("fleet.flows_completed", static_cast<double>(m.flows_completed));
    run.profile.trace_events = run.trace_events.size();
  }
  return m;
}

FleetMetrics run_fleet(const FleetConfig& cfg, std::uint64_t seed) {
  if (cfg.sharding.clients_per_cell == 0) {
    ClientFleet fleet(cfg);
    return fleet.run(seed);
  }
  ShardedFleet fleet(cfg);
  return fleet.run(seed);
}

}  // namespace emptcp::workload
