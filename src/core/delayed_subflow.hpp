// Delayed subflow establishment (paper §3.5).
//
// A cellular subflow costs a promotion and a tail whether or not it ends up
// useful, so eMPTCP postpones establishing it:
//   * until κ bytes have arrived over WiFi (small transfers never pay the
//     cellular fixed cost; κ = 1 MB in the paper), OR
//   * until a timer τ expires (κ may never arrive on a slow WiFi path;
//     τ = 3 s in the paper, bounded below by Eq. 1 so that enough
//     throughput samples exist), EXCEPT
//   * not while the connection is idle (HTTP keep-alive connections must
//     not wake the cellular radio), and
//   * not while measured WiFi throughput is high enough that WiFi-only is
//     more energy-efficient than both, per the EIB.
//
// After a postponement the manager re-checks every `recheck_interval`.
#pragma once

#include <cstdint>
#include <functional>

#include "core/bandwidth_predictor.hpp"
#include "core/energy_info_base.hpp"
#include "sim/simulation.hpp"
#include "sim/timer.hpp"

namespace emptcp::core {

class DelayedSubflowManager {
 public:
  struct Config {
    std::uint64_t kappa_bytes = 1024 * 1024;  ///< κ (paper: 1 MB)
    double tau_s = 3.0;                       ///< τ (paper: 3 s)
    sim::Duration recheck_interval = sim::milliseconds(500);
  };

  struct Hooks {
    /// Establish the cellular subflow now.
    std::function<void()> establish;
    /// Total connection-level bytes received so far.
    std::function<std::uint64_t()> bytes_received;
    /// True when no packet moved within the last estimated RTT (§3.5:
    /// "eMPTCP regards a connection as idle if it does not send or receive
    /// any packets during an estimated RTT").
    std::function<bool()> is_idle;
  };

  DelayedSubflowManager(sim::Simulation& sim, const EnergyInfoBase& eib,
                        const BandwidthPredictor& predictor, Config cfg,
                        Hooks hooks);

  /// Arms τ; call when the initial (WiFi) subflow is established.
  void start();

  /// Feed data progress; triggers establishment once κ is crossed (unless
  /// the WiFi-good postponement applies).
  void on_progress();

  /// Cancels all pending timers (connection is closing).
  void stop();

  [[nodiscard]] bool established() const { return established_; }
  [[nodiscard]] bool timer_expired() const { return timer_expired_; }

  /// Eq. 1: the smallest τ that guarantees `phi` throughput samples after
  /// the WiFi subflow stabilises, given available WiFi bandwidth `bw_mbps`,
  /// RTT `rtt_s` and initial window `winit_bytes`.
  static double minimum_tau_s(double bw_mbps, double rtt_s,
                              double winit_bytes, int phi);

 private:
  void on_tau();
  void recheck();
  /// True once the WiFi estimate rests on enough samples (φ, Eq. 1).
  [[nodiscard]] bool wifi_measured() const;
  /// The §3.5 postponement test: WiFi fast enough that WiFi-only beats
  /// both, per the EIB (with the cellular side at its predicted rate).
  [[nodiscard]] bool wifi_good_enough() const;
  void establish_now();

  sim::Simulation& sim_;
  const EnergyInfoBase& eib_;
  const BandwidthPredictor& predictor_;
  Config cfg_;
  Hooks hooks_;
  sim::Timer tau_timer_;
  sim::Timer recheck_timer_;
  bool established_ = false;
  bool timer_expired_ = false;
};

}  // namespace emptcp::core
