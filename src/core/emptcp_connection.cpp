#include "core/emptcp_connection.hpp"

#include <algorithm>

#include "sim/logging.hpp"

namespace emptcp::core {

EmptcpConnection::EmptcpConnection(sim::Simulation& sim, net::Node& node,
                                   EmptcpConfig cfg, const EnergyInfoBase& eib,
                                   BandwidthPredictor* shared_predictor)
    : sim_(sim), node_(node), cfg_(std::move(cfg)), eib_(eib) {
  if (shared_predictor != nullptr) {
    predictor_ = shared_predictor;
  } else {
    owned_predictor_ =
        std::make_unique<BandwidthPredictor>(sim_, cfg_.predictor);
    predictor_ = owned_predictor_.get();
  }

  meta_ = std::make_unique<mptcp::MptcpConnection>(sim_, node_, cfg_.mptcp);
  predictor_->add_demand_probe([this] { return !is_idle(); });

  controller_ = std::make_unique<PathUsageController>(
      sim_, eib_, *predictor_, cfg_.controller,
      [this](PathUsage prev, PathUsage next) { actuate(prev, next); });

  DelayedSubflowManager::Hooks hooks;
  hooks.establish = [this] { establish_cellular(); };
  // Transfer progress in either direction: downloads advance
  // data_bytes_received, uploads advance data_bytes_acked.
  hooks.bytes_received = [this] {
    return std::max(meta_->data_bytes_received(), meta_->data_bytes_acked());
  };
  hooks.is_idle = [this] { return is_idle(); };
  delayed_ = std::make_unique<DelayedSubflowManager>(
      sim_, eib_, *predictor_, cfg_.delayed, std::move(hooks));

  mptcp::MptcpConnection::Callbacks mcb;
  mcb.on_established = [this] {
    last_activity_ = sim_.now();
    if (cb_.on_established) cb_.on_established();
  };
  mcb.on_data = [this](std::uint64_t newly) {
    last_activity_ = sim_.now();
    if (cb_.on_data) cb_.on_data(newly);
    delayed_->on_progress();
  };
  mcb.on_data_acked = [this](std::uint64_t) {
    // Upload progress counts toward kappa and keeps the connection
    // non-idle, mirroring the receive path.
    last_activity_ = sim_.now();
    delayed_->on_progress();
  };
  mcb.on_eof = [this] {
    if (cb_.on_eof) cb_.on_eof();
  };
  mcb.on_closed = [this] {
    controller_->stop();
    delayed_->stop();
    if (cb_.on_closed) cb_.on_closed();
  };
  mcb.on_subflow_established = [this](mptcp::Subflow& sf) {
    on_subflow_established(sf);
  };
  meta_->set_callbacks(std::move(mcb));
}

void EmptcpConnection::connect(net::Addr wifi_local, net::Addr cell_local,
                               net::Addr remote, net::Port remote_port) {
  wifi_local_ = wifi_local;
  cell_local_ = cell_local;
  meta_->connect(wifi_local, remote, remote_port);
}

void EmptcpConnection::send(std::uint64_t bytes) {
  last_activity_ = sim_.now();
  meta_->send(bytes);
}

void EmptcpConnection::shutdown_write() { meta_->shutdown_write(); }

void EmptcpConnection::on_subflow_established(mptcp::Subflow& sf) {
  predictor_->attach_subflow(
      sf, node_.interface_for(sf.socket().flow().local_addr));

  if (sf.iface() == net::InterfaceType::kWifi) {
    if (cfg_.enable_delayed_establishment) {
      delayed_->start();
    } else if (!cellular_established_) {
      establish_cellular();  // ablation: behave like standard MPTCP setup
    }
  } else {
    // The cellular subflow is up: start steering path usage.
    cellular_established_ = true;
    if (cfg_.enable_path_control) controller_->start(PathUsage::kBoth);
  }
}

void EmptcpConnection::establish_cellular() {
  if (cellular_established_) return;
  if (meta_->add_subflow(cell_local_) == nullptr) {
    EMPTCP_LOG(sim_, sim::LogLevel::kWarn,
               "eMPTCP: cellular MP_JOIN refused");
  }
}

bool EmptcpConnection::is_idle() const {
  mptcp::MptcpConnection* meta = meta_.get();
  sim::Duration rtt = sim::milliseconds(100);
  for (mptcp::Subflow* sf : meta->subflows()) {
    if (sf->iface() == net::InterfaceType::kWifi && sf->usable()) {
      if (sf->socket().srtt() > 0) rtt = sf->socket().srtt();
      break;
    }
  }
  return sim_.now() - last_activity_ > rtt;
}

void EmptcpConnection::actuate(PathUsage, PathUsage next) {
  mptcp::Subflow* wifi = meta_->subflow_on(net::InterfaceType::kWifi);
  mptcp::Subflow* cell = meta_->subflow_on(net::InterfaceType::kLte);
  if (cell == nullptr) return;

  switch (next) {
    case PathUsage::kWifiOnly:
      meta_->request_priority(*cell, /*backup=*/true);
      if (wifi != nullptr) meta_->request_priority(*wifi, false);
      break;
    case PathUsage::kBoth:
      meta_->request_priority(*cell, false);
      if (wifi != nullptr) meta_->request_priority(*wifi, false);
      break;
    case PathUsage::kCellOnly:
      meta_->request_priority(*cell, false);
      if (wifi != nullptr) meta_->request_priority(*wifi, /*backup=*/true);
      break;
  }
}

}  // namespace emptcp::core
