#include "core/bandwidth_predictor.hpp"

#include <algorithm>

namespace emptcp::core {

BandwidthPredictor::BandwidthPredictor(sim::Simulation& sim, Config cfg)
    : sim_(sim), cfg_(cfg) {}

namespace {
/// Bytes a subflow has moved in either direction, measured where TCP
/// confirms them (receive: in-order delivery; send: acknowledgement), so
/// samples are ack-clocked path throughput rather than queue-burst rates.
std::uint64_t subflow_progress(const mptcp::Subflow& sf) {
  return sf.socket().app_bytes_acked() + sf.socket().app_bytes_received();
}
}  // namespace

void BandwidthPredictor::attach_subflow(mptcp::Subflow& sf,
                                        net::NetworkInterface& iface) {
  IfaceEntry& e = entries_[iface.type()];
  if (e.iface == nullptr) {
    e.iface = &iface;
    e.forecaster = HoltWinters{cfg_.smoothing};
    e.last_rx = 0;
  }
  e.subflows.push_back(&sf);

  const sim::Duration rtt = std::clamp(sf.socket().handshake_rtt(),
                                       cfg_.min_interval, cfg_.max_interval);
  if (e.interval == 0 || rtt < e.interval) e.interval = rtt;
  if (!e.timer) {
    const net::InterfaceType t = iface.type();
    e.timer = std::make_unique<sim::Timer>(sim_.scheduler(),
                                           [this, t] { sample(t); });
  }
  if (!e.timer->armed()) e.timer->arm_in(e.interval);
}

void BandwidthPredictor::sample(net::InterfaceType t) {
  IfaceEntry& e = entries_.at(t);

  // Drop subflows whose sockets have finished, folding their totals into
  // the retired base so the running sum never goes backwards.
  std::erase_if(e.subflows, [&e](const mptcp::Subflow* sf) {
    if (sf->socket().state() != tcp::TcpState::kDone) return false;
    e.retired += subflow_progress(*sf);
    return true;
  });

  std::uint64_t bytes = e.retired;
  for (const mptcp::Subflow* sf : e.subflows) bytes += subflow_progress(*sf);
  const std::uint64_t delta = bytes - e.last_rx;
  e.last_rx = bytes;

  // Record only while the interface is actively carrying a non-suspended
  // subflow; a suspended interface tells us nothing about availability.
  // A zero-throughput interval is a real observation only if something
  // wanted to transfer (demand probes); otherwise the connection was
  // simply idle and the old estimate stands.
  const bool active = std::any_of(
      e.subflows.begin(), e.subflows.end(),
      [](const mptcp::Subflow* sf) { return sf->usable() && !sf->backup(); });
  const sim::Time now = sim_.now();
  if (delta > 0) e.last_nonzero = now;
  const bool starving =
      delta == 0 && demand_now() &&
      now - e.last_nonzero > std::max<sim::Duration>(2 * e.interval,
                                                     cfg_.starvation_grace);
  if (active && (delta > 0 || starving)) {
    const double mbps = static_cast<double>(delta) * 8.0 / 1e6 /
                        sim::to_seconds(e.interval);
    e.last_sample = mbps;
    ++e.recorded;
    e.window_peak = std::max(e.window_peak, mbps);
    if (++e.window_count >= std::max(cfg_.peak_hold_windows, 1)) {
      e.forecaster.add(e.window_peak);
      e.window_peak = 0.0;
      e.window_count = 0;
    }
  }

  if (!e.subflows.empty()) e.timer->arm_in(e.interval);
}

bool BandwidthPredictor::demand_now() const {
  if (demand_probes_.empty()) return true;
  for (const auto& probe : demand_probes_) {
    if (probe()) return true;
  }
  return false;
}

const BandwidthPredictor::IfaceEntry* BandwidthPredictor::find(
    net::InterfaceType t) const {
  auto it = entries_.find(t);
  return it == entries_.end() ? nullptr : &it->second;
}

double BandwidthPredictor::predicted_mbps(net::InterfaceType t) const {
  const IfaceEntry* e = find(t);
  if (e == nullptr || e->forecaster.count() < cfg_.min_forecast_points) {
    return cfg_.initial_assumption_mbps;
  }
  return e->forecaster.forecast(1);
}

bool BandwidthPredictor::has_measurement(net::InterfaceType t) const {
  const IfaceEntry* e = find(t);
  return e != nullptr &&
         e->forecaster.count() >= cfg_.min_forecast_points;
}

std::size_t BandwidthPredictor::sample_count(net::InterfaceType t) const {
  const IfaceEntry* e = find(t);
  return e != nullptr ? e->recorded : 0;
}

void BandwidthPredictor::record_sample(net::InterfaceType t, double mbps) {
  IfaceEntry& e = entries_[t];
  e.last_sample = mbps;
  ++e.recorded;
  e.forecaster.add(mbps);
}

double BandwidthPredictor::last_sample_mbps(net::InterfaceType t) const {
  const IfaceEntry* e = find(t);
  return e != nullptr ? e->last_sample : 0.0;
}

}  // namespace emptcp::core
