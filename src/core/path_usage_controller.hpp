// Path usage controller (paper §3.4).
//
// Periodically reads the per-interface throughput predictions, queries the
// Energy Information Base, and decides which interfaces should carry data:
// WiFi-only, both, or (optionally) cellular-only. A 10 % safety factor adds
// hysteresis: from `both`, switching to WiFi-only requires the predicted
// WiFi throughput to exceed the WiFi-only threshold by 10 %; from
// WiFi-only, switching back to `both` requires it to fall 10 % below.
//
// By default cellular-only is folded into `both`, matching §3.4: "eMPTCP
// does not typically switch to using a cellular interface only, since the
// expected gain is not much more than using both."
//
// The controller only computes; actuation (MP_PRIO suspend/resume) is done
// by its owner through the on_decision callback.
#pragma once

#include <cstdint>
#include <functional>

#include "core/bandwidth_predictor.hpp"
#include "core/energy_info_base.hpp"
#include "sim/simulation.hpp"
#include "sim/timer.hpp"

namespace emptcp::core {

/// Interface-usage states the controller can request.
enum class PathUsage { kWifiOnly, kBoth, kCellOnly };

const char* to_string(PathUsage u);

class PathUsageController {
 public:
  struct Config {
    double safety_factor = 0.10;  ///< hysteresis margin (paper: 10 %)
    bool allow_cell_only = false; ///< fold cell-only into both by default
    sim::Duration decision_interval = sim::milliseconds(500);
  };

  using OnDecision = std::function<void(PathUsage previous, PathUsage next)>;

  PathUsageController(sim::Simulation& sim, const EnergyInfoBase& eib,
                      const BandwidthPredictor& predictor, Config cfg,
                      OnDecision on_decision);

  /// Starts periodic decisions from `initial` (normally kBoth, right after
  /// the cellular subflow was established).
  void start(PathUsage initial);
  void stop();

  /// One decision step (also called by the periodic timer). Exposed so
  /// tests and the delayed-subflow manager can force an evaluation.
  void evaluate();

  [[nodiscard]] PathUsage current() const { return current_; }
  /// Number of state switches so far (ablation metric).
  [[nodiscard]] std::uint64_t switch_count() const { return switches_; }

 private:
  [[nodiscard]] PathUsage decide(double wifi_mbps, double cell_mbps) const;

  sim::Simulation& sim_;
  const EnergyInfoBase& eib_;
  const BandwidthPredictor& predictor_;
  Config cfg_;
  OnDecision on_decision_;
  sim::Timer timer_;
  PathUsage current_ = PathUsage::kBoth;
  bool running_ = false;
  std::uint64_t switches_ = 0;
};

}  // namespace emptcp::core
