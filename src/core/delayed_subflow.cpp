#include "core/delayed_subflow.hpp"

#include <cmath>
#include <cstdio>

#include "net/interface.hpp"
#include "sim/logging.hpp"

namespace emptcp::core {

DelayedSubflowManager::DelayedSubflowManager(sim::Simulation& sim,
                                             const EnergyInfoBase& eib,
                                             const BandwidthPredictor& predictor,
                                             Config cfg, Hooks hooks)
    : sim_(sim),
      eib_(eib),
      predictor_(predictor),
      cfg_(cfg),
      hooks_(std::move(hooks)),
      tau_timer_(sim.scheduler(), [this] { on_tau(); }),
      recheck_timer_(sim.scheduler(), [this] { recheck(); }) {}

void DelayedSubflowManager::start() {
  tau_timer_.arm_in(sim::from_seconds(cfg_.tau_s));
}

void DelayedSubflowManager::on_progress() {
  if (established_) return;
  if (hooks_.bytes_received() < cfg_.kappa_bytes) return;
  // κ crossed: establish unless WiFi alone is the efficient choice — or
  // WiFi hasn't produced the φ samples Eq. 1 budgets for yet (a decision
  // on an unmeasured path would be guesswork; keep rechecking).
  if (!wifi_measured() || wifi_good_enough()) {
    if (!recheck_timer_.armed()) recheck_timer_.arm_in(cfg_.recheck_interval);
    return;
  }
  establish_now();
}

void DelayedSubflowManager::stop() {
  tau_timer_.cancel();
  recheck_timer_.cancel();
}

void DelayedSubflowManager::on_tau() {
  if (established_) return;
  timer_expired_ = true;
  recheck();
}

void DelayedSubflowManager::recheck() {
  if (established_) return;
  // §3.5: postpone while the connection is idle, even after τ.
  if (hooks_.is_idle()) {
    recheck_timer_.arm_in(cfg_.recheck_interval);
    return;
  }
  if (!wifi_measured() || wifi_good_enough()) {
    recheck_timer_.arm_in(cfg_.recheck_interval);
    return;
  }
  if (timer_expired_ || hooks_.bytes_received() >= cfg_.kappa_bytes) {
    establish_now();
    return;
  }
  recheck_timer_.arm_in(cfg_.recheck_interval);
}

bool DelayedSubflowManager::wifi_measured() const {
  return predictor_.has_measurement(net::InterfaceType::kWifi);
}

bool DelayedSubflowManager::wifi_good_enough() const {
  const double wifi = predictor_.predicted_mbps(net::InterfaceType::kWifi);
  const double cell = predictor_.predicted_mbps(net::InterfaceType::kLte);
  return eib_.lookup(wifi, cell) == energy::PathChoice::kWifiOnly;
}

void DelayedSubflowManager::establish_now() {
#ifdef EMPTCP_DELAYED_DEBUG
  std::printf("[delayed] establish t=%.3f predW=%.2f predL=%.2f rx=%llu timer=%d wsamples=%zu\n",
              sim::to_seconds(sim_.now()),
              predictor_.predicted_mbps(net::InterfaceType::kWifi),
              predictor_.predicted_mbps(net::InterfaceType::kLte),
              (unsigned long long)hooks_.bytes_received(), (int)timer_expired_,
              predictor_.sample_count(net::InterfaceType::kWifi));
#endif
  established_ = true;
  tau_timer_.cancel();
  recheck_timer_.cancel();
  EMPTCP_LOG(sim_, sim::LogLevel::kInfo,
             "delayed subflow: establishing cellular subflow (rx="
                 << hooks_.bytes_received() << "B, timer_expired="
                 << timer_expired_ << ")");
  hooks_.establish();
}

double DelayedSubflowManager::minimum_tau_s(double bw_mbps, double rtt_s,
                                            double winit_bytes, int phi) {
  // Eq. 1: tau >= R_W * ( log2( (B_W * R_W + W_init) / W_init ) + phi ).
  const double bw_bytes_per_s = bw_mbps * 1e6 / 8.0;
  const double ratio = (bw_bytes_per_s * rtt_s + winit_bytes) / winit_bytes;
  return rtt_s * (std::log2(ratio) + static_cast<double>(phi));
}

}  // namespace emptcp::core
