// Bandwidth predictor (paper §3.2, the left-hand component of Fig. 2).
//
// Samples the throughput of each interface that carries active subflows and
// feeds a per-interface Holt-Winters forecaster:
//   * the sampling interval δ for an interface is taken from the subflow's
//     three-way-handshake RTT measured at establishment,
//   * samples are recorded only while the interface has a usable,
//     non-suspended subflow — a suspended (backup) interface produces no
//     traffic, so its forecaster keeps its old state ("the bandwidth
//     predictor uses old observed samples together with new sampled
//     throughputs" on reactivation),
//   * an interface that has never been activated is predicted at an
//     optimistic prior (5 Mbps) so eMPTCP is willing to probe it.
//
// One predictor serves a device: multiple connections (e.g. the six
// parallel web-browsing connections) attach their subflows to the same
// instance, and per-interface throughput is read from the interface byte
// counters, which aggregate across subflows exactly like the kernel's
// per-device accounting.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "core/holt_winters.hpp"
#include "mptcp/subflow.hpp"
#include "net/interface.hpp"
#include "sim/simulation.hpp"
#include "sim/timer.hpp"

namespace emptcp::core {

class BandwidthPredictor {
 public:
  struct Config {
    double initial_assumption_mbps = 5.0;  ///< never-activated prior
    HoltWinters::Config smoothing;
    sim::Duration min_interval = sim::milliseconds(50);
    sim::Duration max_interval = sim::seconds(1);
    /// A zero-throughput interval only counts as an observation after this
    /// much continuous silence (filters the idle edges of bursty traffic;
    /// real stalls last far longer).
    sim::Duration starvation_grace = sim::milliseconds(200);
    /// Minimum aggregated observations before the forecast replaces the
    /// optimistic prior — the φ-samples idea of §3.5/Eq. 1: decisions must
    /// not act on a slow-start ramp still in progress.
    std::size_t min_forecast_points = 3;
    /// Peak-hold aggregation: the forecaster is fed the maximum of this
    /// many consecutive δ windows. Burst edges produce partial windows
    /// that would otherwise read as throughput drops; the peak over a
    /// short group measures what the path actually sustained (the same
    /// idea as packet-train available-bandwidth probing). 1 disables.
    int peak_hold_windows = 4;
  };

  BandwidthPredictor(sim::Simulation& sim, Config cfg);

  BandwidthPredictor(const BandwidthPredictor&) = delete;
  BandwidthPredictor& operator=(const BandwidthPredictor&) = delete;

  /// Registers a subflow running over `iface`. Starts (or keeps) the
  /// interface's sampling loop; δ is the smallest handshake RTT seen on
  /// the interface, clamped to [min_interval, max_interval].
  void attach_subflow(mptcp::Subflow& sf, net::NetworkInterface& iface);

  /// Registers a demand probe: a zero-throughput interval is recorded as a
  /// sample only when some probe reports active demand (paper §3.5's idle
  /// notion). Without any probe, zero intervals are always recorded (the
  /// paper's continuous-download setting). Bursty workloads (streaming,
  /// web) would otherwise poison the forecast with idle-gap zeros.
  void add_demand_probe(std::function<bool()> probe) {
    demand_probes_.push_back(std::move(probe));
  }

  /// Predicted throughput for the interface type, in Mbps (rx+tx; the
  /// transfer direction dominates).
  [[nodiscard]] double predicted_mbps(net::InterfaceType t) const;

  /// True once the interface has at least one recorded sample.
  [[nodiscard]] bool has_measurement(net::InterfaceType t) const;

  [[nodiscard]] std::size_t sample_count(net::InterfaceType t) const;

  /// Most recent raw (unsmoothed) sample, for diagnostics/tests.
  [[nodiscard]] double last_sample_mbps(net::InterfaceType t) const;

  /// Feeds one aggregated observation directly (trace replay and tests;
  /// live sampling goes through the subflow loop).
  void record_sample(net::InterfaceType t, double mbps);

 private:
  struct IfaceEntry {
    net::NetworkInterface* iface = nullptr;
    std::vector<mptcp::Subflow*> subflows;
    HoltWinters forecaster;
    std::unique_ptr<sim::Timer> timer;
    sim::Duration interval = 0;
    std::uint64_t last_rx = 0;   ///< progress sum at the previous sample
    std::uint64_t retired = 0;   ///< progress of subflows already closed
    sim::Time last_nonzero = 0;  ///< last sample instant with bytes moving
    double last_sample = 0.0;
    double window_peak = 0.0;
    int window_count = 0;
    std::size_t recorded = 0;  ///< eligible δ windows observed
  };

  void sample(net::InterfaceType t);
  [[nodiscard]] const IfaceEntry* find(net::InterfaceType t) const;

  [[nodiscard]] bool demand_now() const;

  sim::Simulation& sim_;
  Config cfg_;
  std::map<net::InterfaceType, IfaceEntry> entries_;
  std::vector<std::function<bool()>> demand_probes_;
};

}  // namespace emptcp::core
