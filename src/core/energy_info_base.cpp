#include "core/energy_info_base.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace emptcp::core {

EnergyInfoBase EnergyInfoBase::generate(const energy::EnergyModel& model,
                                        double max_cell_mbps,
                                        double step_mbps) {
  if (step_mbps <= 0.0 || max_cell_mbps <= 0.0) {
    throw std::invalid_argument("EnergyInfoBase::generate: bad grid");
  }
  EnergyInfoBase eib;
  for (double x = step_mbps; x <= max_cell_mbps + 1e-9; x += step_mbps) {
    const energy::WifiThresholds t = energy::steady_thresholds(model, x);
    eib.rows_.push_back(Row{x, t.cell_only_below, t.wifi_only_at_least});
  }
  return eib;
}

EnergyInfoBase EnergyInfoBase::from_rows(std::vector<Row> rows) {
  if (rows.empty()) {
    throw std::invalid_argument("EnergyInfoBase::from_rows: no rows");
  }
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].cell_mbps <= 0.0 ||
        rows[i].cell_only_below >= rows[i].wifi_only_at_least) {
      throw std::invalid_argument(
          "EnergyInfoBase::from_rows: row must have cell_mbps > 0 and "
          "cell_only_below < wifi_only_at_least");
    }
    if (i > 0 && rows[i].cell_mbps <= rows[i - 1].cell_mbps) {
      throw std::invalid_argument(
          "EnergyInfoBase::from_rows: rows must be sorted by cell_mbps");
    }
  }
  EnergyInfoBase eib;
  eib.rows_ = std::move(rows);
  return eib;
}

EnergyInfoBase EnergyInfoBase::from_csv(const std::string& csv_text) {
  std::istringstream in(csv_text);
  std::string line;
  std::vector<Row> rows;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (first) {
      first = false;
      if (line.find("cell_mbps") != std::string::npos) continue;  // header
    }
    Row row;
    char c1 = 0;
    char c2 = 0;
    std::istringstream fields(line);
    if (!(fields >> row.cell_mbps >> c1 >> row.cell_only_below >> c2 >>
          row.wifi_only_at_least) ||
        c1 != ',' || c2 != ',') {
      throw std::invalid_argument("EnergyInfoBase::from_csv: bad line: " +
                                  line);
    }
    rows.push_back(row);
  }
  return from_rows(std::move(rows));
}

energy::WifiThresholds EnergyInfoBase::thresholds_at(double cell_mbps) const {
  if (rows_.empty()) {
    throw std::logic_error("EnergyInfoBase: empty table");
  }
  if (cell_mbps <= rows_.front().cell_mbps) {
    return {rows_.front().cell_only_below, rows_.front().wifi_only_at_least};
  }
  if (cell_mbps >= rows_.back().cell_mbps) {
    return {rows_.back().cell_only_below, rows_.back().wifi_only_at_least};
  }
  const auto hi = std::lower_bound(
      rows_.begin(), rows_.end(), cell_mbps,
      [](const Row& r, double x) { return r.cell_mbps < x; });
  const auto lo = hi - 1;
  const double f = (cell_mbps - lo->cell_mbps) / (hi->cell_mbps - lo->cell_mbps);
  return {lo->cell_only_below + f * (hi->cell_only_below - lo->cell_only_below),
          lo->wifi_only_at_least +
              f * (hi->wifi_only_at_least - lo->wifi_only_at_least)};
}

energy::PathChoice EnergyInfoBase::lookup(double wifi_mbps,
                                          double cell_mbps) const {
  const energy::WifiThresholds t = thresholds_at(cell_mbps);
  if (wifi_mbps < t.cell_only_below) return energy::PathChoice::kCellOnly;
  if (wifi_mbps >= t.wifi_only_at_least) return energy::PathChoice::kWifiOnly;
  return energy::PathChoice::kBoth;
}

}  // namespace emptcp::core
