#include "core/holt_winters.hpp"

#include <algorithm>
#include <stdexcept>

namespace emptcp::core {

HoltWinters::HoltWinters(Config cfg) : cfg_(cfg) {
  if (cfg_.alpha <= 0.0 || cfg_.alpha > 1.0 || cfg_.beta < 0.0 ||
      cfg_.beta > 1.0) {
    throw std::invalid_argument("HoltWinters: smoothing factors out of range");
  }
}

void HoltWinters::add(double x) {
  if (count_ == 0) {
    level_ = x;
    trend_ = 0.0;
  } else if (count_ == 1) {
    trend_ = x - level_;
    level_ = cfg_.alpha * x + (1.0 - cfg_.alpha) * (level_ + trend_);
  } else {
    const double prev_level = level_;
    level_ = cfg_.alpha * x + (1.0 - cfg_.alpha) * (level_ + trend_);
    trend_ = cfg_.beta * (level_ - prev_level) + (1.0 - cfg_.beta) * trend_;
  }
  prev_ = x;
  ++count_;
}

double HoltWinters::forecast(int k) const {
  if (count_ == 0) {
    throw std::logic_error("HoltWinters::forecast before any observation");
  }
  return std::max(0.0, level_ + static_cast<double>(k) * trend_);
}

void HoltWinters::reset() {
  level_ = trend_ = prev_ = 0.0;
  count_ = 0;
}

}  // namespace emptcp::core
