// EmptcpConnection: the full eMPTCP endpoint (paper Fig. 2).
//
// Composes a standard MptcpConnection with the four eMPTCP components:
// the bandwidth predictor, the energy information base, the path usage
// controller and the delayed-subflow manager. The connection starts on the
// WiFi interface (the default primary interface, §3.6), postpones the
// cellular MP_JOIN per §3.5, and afterwards steers the cellular subflow
// with MP_PRIO per §3.4. It requires no application changes: the app-facing
// surface is the same as MptcpConnection's.
//
// The predictor may be shared across connections of one device (as the
// kernel shares its per-interface estimates); pass `shared_predictor`.
// Ablation switches allow disabling either mechanism independently.
#pragma once

#include <cstdint>
#include <memory>

#include "core/bandwidth_predictor.hpp"
#include "core/delayed_subflow.hpp"
#include "core/energy_info_base.hpp"
#include "core/path_usage_controller.hpp"
#include "mptcp/meta_socket.hpp"

namespace emptcp::core {

struct EmptcpConfig {
  mptcp::MptcpConnection::Config mptcp;
  BandwidthPredictor::Config predictor;
  PathUsageController::Config controller;
  DelayedSubflowManager::Config delayed;
  bool enable_delayed_establishment = true;  ///< ablation switch
  bool enable_path_control = true;           ///< ablation switch
};

class EmptcpConnection {
 public:
  struct Callbacks {
    std::function<void()> on_established;
    std::function<void(std::uint64_t newly)> on_data;
    std::function<void()> on_eof;
    std::function<void()> on_closed;
  };

  /// `eib` must outlive the connection. When `shared_predictor` is null
  /// the connection owns a private predictor.
  EmptcpConnection(sim::Simulation& sim, net::Node& node, EmptcpConfig cfg,
                   const EnergyInfoBase& eib,
                   BandwidthPredictor* shared_predictor = nullptr);

  EmptcpConnection(const EmptcpConnection&) = delete;
  EmptcpConnection& operator=(const EmptcpConnection&) = delete;

  void set_callbacks(Callbacks cb) { cb_ = std::move(cb); }

  /// Opens the connection: the initial subflow runs over the WiFi address;
  /// the cellular address is kept for the (possibly delayed) MP_JOIN.
  void connect(net::Addr wifi_local, net::Addr cell_local, net::Addr remote,
               net::Port remote_port);

  void send(std::uint64_t bytes);
  void shutdown_write();

  [[nodiscard]] mptcp::MptcpConnection& mptcp() { return *meta_; }
  [[nodiscard]] const PathUsageController& controller() const {
    return *controller_;
  }
  [[nodiscard]] const DelayedSubflowManager& delayed() const {
    return *delayed_;
  }
  [[nodiscard]] BandwidthPredictor& predictor() { return *predictor_; }
  [[nodiscard]] bool cellular_established() const {
    return cellular_established_;
  }
  [[nodiscard]] std::uint64_t data_bytes_received() const {
    return meta_->data_bytes_received();
  }

 private:
  void establish_cellular();
  void actuate(PathUsage prev, PathUsage next);
  [[nodiscard]] bool is_idle() const;
  void on_subflow_established(mptcp::Subflow& sf);

  sim::Simulation& sim_;
  net::Node& node_;
  EmptcpConfig cfg_;
  const EnergyInfoBase& eib_;
  Callbacks cb_;

  std::unique_ptr<BandwidthPredictor> owned_predictor_;
  BandwidthPredictor* predictor_ = nullptr;
  std::unique_ptr<mptcp::MptcpConnection> meta_;
  std::unique_ptr<PathUsageController> controller_;
  std::unique_ptr<DelayedSubflowManager> delayed_;

  net::Addr wifi_local_ = net::kAddrInvalid;
  net::Addr cell_local_ = net::kAddrInvalid;
  bool cellular_established_ = false;
  sim::Time last_activity_ = 0;
};

}  // namespace emptcp::core
