// Holt-Winters (double exponential smoothing) throughput forecaster.
//
// Paper §3.2: "Throughput predictions are made using a Holt-Winters
// time-series forecasting algorithm, which is known to be more accurate
// than formula-based predictors." Download throughput has level + trend but
// no seasonality at these time scales, so this is Holt's linear method:
//   level_t = a * x_t + (1-a) * (level_{t-1} + trend_{t-1})
//   trend_t = b * (level_t - level_{t-1}) + (1-b) * trend_{t-1}
//   forecast(k) = level_t + k * trend_t   (clamped at zero)
#pragma once

#include <cstddef>

namespace emptcp::core {

class HoltWinters {
 public:
  struct Config {
    double alpha = 0.5;  ///< level smoothing in (0,1]
    double beta = 0.3;   ///< trend smoothing in [0,1]
  };

  HoltWinters() : HoltWinters(Config{}) {}
  explicit HoltWinters(Config cfg);

  /// Feeds one observation.
  void add(double x);

  /// k-step-ahead forecast; requires at least one observation.
  [[nodiscard]] double forecast(int k = 1) const;

  [[nodiscard]] bool has_forecast() const { return count_ > 0; }
  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double level() const { return level_; }
  [[nodiscard]] double trend() const { return trend_; }

  void reset();

 private:
  Config cfg_;
  double level_ = 0.0;
  double trend_ = 0.0;
  double prev_ = 0.0;
  std::size_t count_ = 0;
};

}  // namespace emptcp::core
