#include "core/path_usage_controller.hpp"

#include <cstdio>

#include "net/interface.hpp"
#include "sim/logging.hpp"
#include "trace/trace.hpp"

namespace emptcp::core {

const char* to_string(PathUsage u) {
  switch (u) {
    case PathUsage::kWifiOnly: return "wifi-only";
    case PathUsage::kBoth: return "both";
    case PathUsage::kCellOnly: return "cell-only";
  }
  return "?";
}

PathUsageController::PathUsageController(sim::Simulation& sim,
                                         const EnergyInfoBase& eib,
                                         const BandwidthPredictor& predictor,
                                         Config cfg, OnDecision on_decision)
    : sim_(sim),
      eib_(eib),
      predictor_(predictor),
      cfg_(cfg),
      on_decision_(std::move(on_decision)),
      timer_(sim.scheduler(), [this] {
        evaluate();
        if (running_) timer_.arm_in(cfg_.decision_interval);
      }) {}

void PathUsageController::start(PathUsage initial) {
  current_ = initial;
  running_ = true;
  timer_.arm_in(cfg_.decision_interval);
}

void PathUsageController::stop() {
  running_ = false;
  timer_.cancel();
}

void PathUsageController::evaluate() {
  const double wifi = predictor_.predicted_mbps(net::InterfaceType::kWifi);
  const double cell = predictor_.predicted_mbps(net::InterfaceType::kLte);
  const PathUsage next = decide(wifi, cell);
#ifdef EMPTCP_DELAYED_DEBUG
  if (next != current_) {
    const energy::WifiThresholds th = eib_.thresholds_at(cell);
    std::printf("[ctrl t=%.2f] %s->%s wifi=%.2f cell=%.2f lo=%.3f hi=%.3f\n",
                sim::to_seconds(sim_.now()), to_string(current_),
                to_string(next), wifi, cell, th.cell_only_below,
                th.wifi_only_at_least);
  }
#endif
  if (next != current_) {
    const PathUsage prev = current_;
    current_ = next;
    ++switches_;
    EMPTCP_TRACE(sim_, mode_change(sim_.now(), to_string(prev),
                                   to_string(next), wifi, cell));
    EMPTCP_LOG(sim_, sim::LogLevel::kInfo,
               "path usage " << to_string(prev) << " -> " << to_string(next)
                             << " (wifi=" << wifi << " cell=" << cell
                             << " Mbps)");
    if (on_decision_) on_decision_(prev, next);
  }
}

PathUsage PathUsageController::decide(double wifi_mbps,
                                      double cell_mbps) const {
  const energy::WifiThresholds t = eib_.thresholds_at(cell_mbps);
  const double s = cfg_.safety_factor;

  switch (current_) {
    case PathUsage::kBoth:
      // Paper example: from `both`, WiFi-only needs x >= hi * 1.1.
      if (wifi_mbps >= t.wifi_only_at_least * (1.0 + s)) {
        return PathUsage::kWifiOnly;
      }
      if (cfg_.allow_cell_only &&
          wifi_mbps < t.cell_only_below * (1.0 - s)) {
        return PathUsage::kCellOnly;
      }
      return PathUsage::kBoth;

    case PathUsage::kWifiOnly:
      if (cfg_.allow_cell_only &&
          wifi_mbps < t.cell_only_below * (1.0 - s)) {
        return PathUsage::kCellOnly;
      }
      // Paper example: from WiFi-only, `both` needs x <= hi * 0.9.
      if (wifi_mbps <= t.wifi_only_at_least * (1.0 - s)) {
        return PathUsage::kBoth;
      }
      return PathUsage::kWifiOnly;

    case PathUsage::kCellOnly:
      if (wifi_mbps >= t.wifi_only_at_least * (1.0 + s)) {
        return PathUsage::kWifiOnly;
      }
      if (wifi_mbps >= t.cell_only_below * (1.0 + s)) {
        return PathUsage::kBoth;
      }
      return PathUsage::kCellOnly;
  }
  return current_;
}

}  // namespace emptcp::core
