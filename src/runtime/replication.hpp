// Parallel replication runner for figure/table reproductions.
//
// Every paper result is a mean ± SEM over independent (scenario, seed)
// replications. Those runs share nothing — each constructs its own
// Simulation, RNG and logger — so they fan out across cores freely. The
// runner preserves the sequential contract exactly: results come back in
// a [config][seed] matrix regardless of completion order, so any
// aggregation (mean, SEM, ratios) performed over that matrix is
// bit-identical to running the same loop sequentially.
//
// `fn(config, seed)` is invoked concurrently from pool workers and must
// be thread-safe: build all per-run state (Scenario, Simulation) inside
// the call; never write to shared captures.
#pragma once

#include <cstdint>
#include <exception>
#include <type_traits>
#include <utility>
#include <vector>

#include "runtime/thread_pool.hpp"

namespace emptcp::runtime {

/// Runs fn(configs[i], seeds[j]) for every pair, in parallel, and returns
/// the results as matrix[i][j]. Exceptions thrown by runs are captured and
/// rethrown here, lowest (i, j) first. `workers` = 0 uses all cores
/// (respecting EMPTCP_JOBS).
template <typename Config, typename Fn>
auto run_replications(const std::vector<Config>& configs,
                      const std::vector<std::uint64_t>& seeds, Fn&& fn,
                      std::size_t workers = 0)
    -> std::vector<std::vector<
        std::invoke_result_t<Fn&, const Config&, std::uint64_t>>> {
  using Result = std::invoke_result_t<Fn&, const Config&, std::uint64_t>;
  static_assert(!std::is_reference_v<Result>,
                "replication results must be values");

  std::vector<std::vector<Result>> results(configs.size());
  std::vector<std::vector<std::exception_ptr>> errors(configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    results[i].resize(seeds.size());
    errors[i].resize(seeds.size());
  }

  {
    ThreadPool pool(workers);
    for (std::size_t i = 0; i < configs.size(); ++i) {
      for (std::size_t j = 0; j < seeds.size(); ++j) {
        pool.submit([&, i, j] {
          try {
            results[i][j] = fn(configs[i], seeds[j]);
          } catch (...) {
            errors[i][j] = std::current_exception();
          }
        });
      }
    }
    pool.wait_idle();
  }

  for (const auto& row : errors) {
    for (const std::exception_ptr& e : row) {
      if (e) std::rethrow_exception(e);
    }
  }
  return results;
}

/// Single-config convenience: one result per seed, in seed order.
template <typename Config, typename Fn>
auto run_replications(const Config& config,
                      const std::vector<std::uint64_t>& seeds, Fn&& fn,
                      std::size_t workers = 0)
    -> std::vector<std::invoke_result_t<Fn&, const Config&, std::uint64_t>> {
  auto matrix = run_replications(std::vector<Config>{config}, seeds,
                                 std::forward<Fn>(fn), workers);
  return std::move(matrix.front());
}

/// Seed lists the way the benches build them: {base, base+1, ...}.
inline std::vector<std::uint64_t> seed_range(std::uint64_t base,
                                             std::size_t count) {
  std::vector<std::uint64_t> seeds;
  seeds.reserve(count);
  for (std::size_t i = 0; i < count; ++i) seeds.push_back(base + i);
  return seeds;
}

}  // namespace emptcp::runtime
