#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>

namespace emptcp::runtime {

std::size_t default_worker_count() {
  std::size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  if (const char* env = std::getenv("EMPTCP_JOBS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n > 0) return std::min<std::size_t>(static_cast<std::size_t>(n), hw);
  }
  return hw;
}

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) workers = default_worker_count();
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace emptcp::runtime
