#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <string>

#include "runtime/telemetry.hpp"

namespace emptcp::runtime {

namespace {

using WallClock = std::chrono::steady_clock;

double seconds_since(WallClock::time_point start) {
  return std::chrono::duration<double>(WallClock::now() - start).count();
}

}  // namespace

std::size_t default_worker_count() {
  std::size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  if (const char* env = std::getenv("EMPTCP_JOBS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n > 0) return std::min<std::size_t>(static_cast<std::size_t>(n), hw);
  }
  return hw;
}

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) workers = default_worker_count();
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

EpochGroup::EpochGroup(ThreadPool& pool, std::size_t parties,
                       std::function<void(std::size_t)> fn)
    : fn_(std::move(fn)),
      parties_(std::min(std::max<std::size_t>(parties, 1),
                        std::max<std::size_t>(pool.worker_count(), 1))) {
  stats_.resize(parties_);
  for (std::size_t p = 0; p < parties_; ++p) {
    pool.submit([this, p] { party_loop(p); });
  }
  // Wait for every party to park before returning: run() may be called
  // immediately, and a party still in the pool queue must not miss the
  // first generation bump.
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return parked_ == parties_; });
}

EpochGroup::~EpochGroup() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  epoch_cv_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return parked_ == 0; });
}

void EpochGroup::run() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    first_error_ = nullptr;
    remaining_ = parties_;
    ++generation_;
  }
  epoch_cv_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return remaining_ == 0; });
  if (first_error_) std::rethrow_exception(first_error_);
}

void EpochGroup::party_loop(std::size_t party) {
  std::uint64_t seen = 0;
  bool labeled = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    ++parked_;
  }
  done_cv_.notify_all();
  for (;;) {
    // Wall-clock accounting, gated exactly like every other telemetry
    // site: off, this loop does no clock reads and records nothing.
    // stats_[party] is written only by this party; the group mutex around
    // remaining_ gives readers-at-the-barrier the happens-before edge.
    const bool wall = Telemetry::enabled();
    WallClock::time_point wait_start{};
    if (wall) {
      if (!labeled) {
        Telemetry::instance().set_thread_label("party-" +
                                               std::to_string(party));
        labeled = true;
      }
      wait_start = WallClock::now();
    }
    {
      EMPTCP_SPAN("barrier.wait");
      std::unique_lock<std::mutex> lock(mu_);
      epoch_cv_.wait(
          lock, [this, seen] { return shutdown_ || generation_ != seen; });
      if (shutdown_) {
        --parked_;
        if (parked_ == 0) done_cv_.notify_all();
        return;
      }
      seen = generation_;
    }
    if (wall) stats_[party].wait_s += seconds_since(wait_start);
    std::exception_ptr err;
    const WallClock::time_point busy_start =
        wall ? WallClock::now() : WallClock::time_point{};
    try {
      fn_(party);
    } catch (...) {
      err = std::current_exception();
    }
    if (wall) {
      stats_[party].busy_s += seconds_since(busy_start);
      ++stats_[party].epochs;
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (err && !first_error_) first_error_ = err;
      --remaining_;
      if (remaining_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::worker_loop(std::size_t index) {
  bool labeled = false;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    if (!labeled && Telemetry::enabled()) {
      Telemetry::instance().set_thread_label("worker-" +
                                             std::to_string(index));
      labeled = true;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace emptcp::runtime
