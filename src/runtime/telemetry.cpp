#include "runtime/telemetry.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

namespace emptcp::runtime {

namespace detail {
std::atomic<bool> g_telemetry_on{false};
}  // namespace detail

namespace {

thread_local SpanBuffer* t_buffer = nullptr;

/// Microseconds with sub-µs precision, the unit Chrome trace "ts"/"dur"
/// fields use. Wall-clock output — locale-independent via snprintf.
void append_us(std::string& out, std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  out += buf;
}

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

std::vector<SpanRecord> SpanBuffer::spans() const {
  std::vector<SpanRecord> out;
  const std::size_t n = spans_.size();
  out.reserve(n);
  // When the ring wrapped, the oldest retained record sits at
  // span_total_ % capacity; otherwise the vector is already in order.
  const std::size_t first =
      span_total_ > n ? static_cast<std::size_t>(span_total_) % kSpanCapacity
                      : 0;
  for (std::size_t i = 0; i < n; ++i) out.push_back(spans_[(first + i) % n]);
  return out;
}

std::vector<CounterSample> SpanBuffer::counters() const {
  std::vector<CounterSample> out;
  const std::size_t n = counters_.size();
  out.reserve(n);
  const std::size_t first =
      counter_total_ > n
          ? static_cast<std::size_t>(counter_total_) % kCounterCapacity
          : 0;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(counters_[(first + i) % n]);
  }
  return out;
}

void SpanBuffer::clear() {
  spans_.clear();
  spans_.shrink_to_fit();
  counters_.clear();
  counters_.shrink_to_fit();
  span_total_ = 0;
  counter_total_ = 0;
  spans_dropped_ = 0;
  counters_dropped_ = 0;
}

Telemetry& Telemetry::instance() {
  static Telemetry* singleton = new Telemetry();  // never destroyed:
  // worker threads may record during static teardown of other objects.
  return *singleton;
}

void Telemetry::enable(bool on) {
  if (on && !enabled()) {
    const std::lock_guard<std::mutex> lock(mu_);
    anchor_ = std::chrono::steady_clock::now();
  }
  detail::g_telemetry_on.store(on, std::memory_order_relaxed);
}

std::uint64_t Telemetry::now_ns() const {
  const auto d = std::chrono::steady_clock::now() - anchor_;
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(d).count();
  return ns > 0 ? static_cast<std::uint64_t>(ns) : 0;
}

SpanBuffer& Telemetry::local_buffer() {
  if (t_buffer == nullptr) {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto tid = static_cast<std::uint32_t>(buffers_.size());
    buffers_.push_back(std::make_unique<SpanBuffer>(tid));
    buffers_.back()->set_label("thread-" + std::to_string(tid));
    t_buffer = buffers_.back().get();
  }
  return *t_buffer;
}

void Telemetry::set_thread_label(std::string label) {
  SpanBuffer& buf = local_buffer();
  const std::lock_guard<std::mutex> lock(mu_);
  buf.set_label(std::move(label));
}

void Telemetry::counter(const char* name, double value) {
  local_buffer().push_counter(CounterSample{name, now_ns(), value});
}

const char* Telemetry::intern(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& s : interned_) {
    if (*s == name) return s->c_str();
  }
  interned_.push_back(std::make_unique<std::string>(name));
  return interned_.back()->c_str();
}

std::vector<Telemetry::SpanTotal> Telemetry::aggregate() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, SpanTotal> by_name;  // by content, not pointer
  for (const auto& buf : buffers_) {
    for (const SpanRecord& r : buf->spans()) {
      SpanTotal& t = by_name[r.name];
      ++t.count;
      t.total_ns += r.dur_ns;
      if (r.dur_ns > t.max_ns) t.max_ns = r.dur_ns;
    }
  }
  std::vector<SpanTotal> out;
  out.reserve(by_name.size());
  for (auto& [name, total] : by_name) {
    total.name = name;
    out.push_back(std::move(total));
  }
  std::sort(out.begin(), out.end(), [](const SpanTotal& a, const SpanTotal& b) {
    if (a.total_ns != b.total_ns) return a.total_ns > b.total_ns;
    return a.name < b.name;
  });
  return out;
}

std::uint64_t Telemetry::spans_dropped() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& buf : buffers_) total += buf->spans_dropped();
  return total;
}

std::string Telemetry::to_chrome_json() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) out += ",\n";
    first = false;
  };
  for (const auto& buf : buffers_) {
    const std::string tid = std::to_string(buf->tid());
    sep();
    out += R"({"ph":"M","pid":0,"tid":)" + tid +
           R"(,"name":"thread_name","args":{"name":)";
    append_json_string(out, buf->label());
    out += "}}";
    for (const SpanRecord& r : buf->spans()) {
      sep();
      out += R"({"ph":"X","pid":0,"tid":)" + tid + R"(,"ts":)";
      append_us(out, r.start_ns);
      out += R"(,"dur":)";
      append_us(out, r.dur_ns);
      out += R"(,"name":)";
      append_json_string(out, r.name == nullptr ? "?" : r.name);
      out += R"(,"cat":"emptcp","args":{"depth":)" +
             std::to_string(r.depth) + "}}";
    }
    for (const CounterSample& c : buf->counters()) {
      sep();
      out += R"({"ph":"C","pid":0,"tid":)" + tid + R"(,"ts":)";
      append_us(out, c.t_ns);
      out += R"(,"name":)";
      append_json_string(out, c.name == nullptr ? "?" : c.name);
      out += R"(,"args":{"value":)";
      append_double(out, c.value);
      out += "}}";
    }
  }
  out += "],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

void Telemetry::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buf : buffers_) buf->clear();
  anchor_ = std::chrono::steady_clock::now();
}

std::size_t Telemetry::thread_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return buffers_.size();
}

void ScopedSpan::begin(const char* name) {
  Telemetry& t = Telemetry::instance();
  buf_ = &t.local_buffer();
  name_ = name;
  depth_ = buf_->enter();
  start_ns_ = t.now_ns();
}

void ScopedSpan::end() {
  const std::uint64_t end_ns = Telemetry::instance().now_ns();
  buf_->exit();
  buf_->push_span(SpanRecord{
      name_, start_ns_, end_ns > start_ns_ ? end_ns - start_ns_ : 0, depth_});
}

}  // namespace emptcp::runtime
