// Fixed-size worker pool for replication-level parallelism.
//
// The simulator itself is strictly single-threaded; what parallelises is
// the *experiment* layer: every paper figure aggregates 5-10 independent
// (scenario, seed) replications, and each replication owns its whole
// Simulation (clock, RNG, logger), so runs share no mutable state. The
// pool is deliberately minimal — a locked queue feeding N workers — since
// tasks are seconds-long simulations, not microsecond work items.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace emptcp::runtime {

/// Worker count used when none is requested: EMPTCP_JOBS if set (0 or
/// unset means "all cores"), capped to hardware_concurrency, at least 1.
std::size_t default_worker_count();

class ThreadPool {
 public:
  /// Starts `workers` threads (0 = default_worker_count()).
  explicit ThreadPool(std::size_t workers = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  /// Enqueues a task. Tasks may not submit further tasks during shutdown.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void wait_idle();

  [[nodiscard]] std::size_t worker_count() const { return threads_.size(); }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace emptcp::runtime
