// Fixed-size worker pool for replication-level parallelism.
//
// The simulator itself is strictly single-threaded; what parallelises is
// the *experiment* layer: every paper figure aggregates 5-10 independent
// (scenario, seed) replications, and each replication owns its whole
// Simulation (clock, RNG, logger), so runs share no mutable state. The
// pool is deliberately minimal — a locked queue feeding N workers — since
// tasks are seconds-long simulations, not microsecond work items.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace emptcp::runtime {

/// Worker count used when none is requested: EMPTCP_JOBS if set (0 or
/// unset means "all cores"), capped to hardware_concurrency, at least 1.
std::size_t default_worker_count();

class ThreadPool {
 public:
  /// Starts `workers` threads (0 = default_worker_count()).
  explicit ThreadPool(std::size_t workers = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  /// Enqueues a task. Tasks may not submit further tasks during shutdown.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void wait_idle();

  [[nodiscard]] std::size_t worker_count() const { return threads_.size(); }

 private:
  void worker_loop(std::size_t index);

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

/// Phase-synchronised work on a ThreadPool: N long-lived parties, each
/// re-running its callback once per epoch.
///
/// The shard engine's barrier loop runs thousands of short epochs; paying
/// submit()'s queue mutation and closure allocation N times per epoch would
/// dominate the fine-grained ones. An EpochGroup submits each party task to
/// the pool exactly once; the tasks then park on a generation counter and
/// every run() call is one notify + one wait on that counter — no
/// per-epoch enqueue at all.
///
/// run() blocks until every party has finished the epoch, which gives the
/// caller a full barrier: party writes in epoch k happen-before the
/// caller's reads after run() returns, and those happen-before party reads
/// in epoch k+1. Exceptions thrown by a party are captured and the first
/// one is rethrown from run() after the barrier completes.
class EpochGroup {
 public:
  /// Occupies `parties` workers of `pool` (clamped to its worker count;
  /// at least 1). `fn(party)` runs once per party per run() call.
  EpochGroup(ThreadPool& pool, std::size_t parties,
             std::function<void(std::size_t)> fn);

  EpochGroup(const EpochGroup&) = delete;
  EpochGroup& operator=(const EpochGroup&) = delete;

  /// Releases the parked party tasks back to the pool.
  ~EpochGroup();

  /// Runs one epoch: every party executes fn(party) concurrently; returns
  /// when all have finished. Rethrows the first party exception.
  void run();

  [[nodiscard]] std::size_t parties() const { return parties_; }

  /// Per-party wall-clock accounting, populated only while
  /// runtime::Telemetry is enabled (all-zero otherwise). busy_s is time
  /// inside fn(); wait_s is time parked between epochs — at a barrier or
  /// waiting for the driver to plan the next window. Read only between
  /// run() calls (the barrier provides the happens-before edge).
  struct PartyStats {
    double busy_s = 0.0;
    double wait_s = 0.0;
    std::uint64_t epochs = 0;
  };
  [[nodiscard]] const std::vector<PartyStats>& party_stats() const {
    return stats_;
  }

 private:
  void party_loop(std::size_t party);

  std::function<void(std::size_t)> fn_;
  std::size_t parties_;

  std::mutex mu_;
  std::condition_variable epoch_cv_;  ///< parties wait for a new generation
  std::condition_variable done_cv_;   ///< run() waits for all parties
  std::uint64_t generation_ = 0;      ///< bumped by run() to start an epoch
  std::size_t remaining_ = 0;         ///< parties still inside this epoch
  bool shutdown_ = false;
  std::size_t parked_ = 0;  ///< parties alive inside party_loop
  std::exception_ptr first_error_;
  std::vector<PartyStats> stats_;  ///< each entry written by its own party
};

}  // namespace emptcp::runtime
