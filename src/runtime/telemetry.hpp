// Runtime telemetry: a thread-safe hierarchical span profiler with
// Chrome-trace export, plus the log-bucketed histograms the shard engine's
// epoch metrics aggregate into.
//
// Design goals, mirroring trace/trace.hpp's instrumentation gate:
//   1. Near-zero cost when disabled. EMPTCP_SPAN compiles to a relaxed
//      load of one global atomic bool plus a branch; no clock read, no
//      allocation, no registration. bench_micro measures this path
//      (`span_disabled` in BENCH_core.json) and the CI diff gate holds it.
//   2. Wall-clock stays out of deterministic artifacts. Spans and counter
//      samples measure the *simulator*, not the simulation: they are
//      exported only to EMPTCP_PERF_DIR-style side files (perf.json,
//      *.trace.json) and never feed traces, manifests, reports, ledgers
//      or rollups. Tests enforce byte-identity of the deterministic
//      artifacts with telemetry on vs off at any shard count.
//   3. Thread safety without hot-path locks. Each OS thread owns a
//      fixed-capacity ring of span records (registered once, on first
//      use); overflow bumps a dropped-span counter — never silent.
//      Export/aggregate/clear take the registry lock and must run at
//      quiescent points (no epoch in flight), which every call site has
//      naturally: after EpochGroup barriers or between runs.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace emptcp::runtime {

/// Power-of-two log-bucketed histogram for nonnegative integer samples
/// (events per epoch, nanoseconds advanced, imbalance percentages).
/// Bucket 0 holds zeros; bucket i >= 1 holds values with bit_width i,
/// i.e. [2^(i-1), 2^i - 1]. Pure integer state — safe to keep in
/// deterministic code paths (the *samples* decide determinism, not the
/// container).
class LogBuckets {
 public:
  static constexpr std::size_t kBuckets = 65;

  void add(std::uint64_t v) {
    ++counts_[v == 0 ? 0 : static_cast<std::size_t>(std::bit_width(v))];
    ++count_;
    sum_ += v;
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }

  void merge(const LogBuckets& o) {
    for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += o.counts_[i];
    count_ += o.count_;
    sum_ += o.sum_;
    if (o.count_ != 0) {
      if (o.min_ < min_) min_ = o.min_;
      if (o.max_ > max_) max_ = o.max_;
    }
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t sum() const { return sum_; }
  [[nodiscard]] std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  [[nodiscard]] std::uint64_t max() const { return max_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  /// Inclusive upper bound of the bucket containing the q-th quantile
  /// sample (q in [0, 1]), clamped to the observed max. A log-bucket
  /// histogram answers "p99 is at most X" — exact enough to spot skew.
  [[nodiscard]] std::uint64_t quantile_upper(double q) const {
    if (count_ == 0) return 0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    auto rank = static_cast<std::uint64_t>(q * static_cast<double>(count_));
    if (rank == 0) rank = 1;
    if (rank > count_) rank = count_;
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      cum += counts_[i];
      if (cum >= rank) {
        if (i == 0) return 0;
        const std::uint64_t upper =
            i >= 64 ? ~0ull : (std::uint64_t{1} << i) - 1;
        return upper < max_ ? upper : max_;
      }
    }
    return max_;
  }

  [[nodiscard]] const std::array<std::uint64_t, kBuckets>& buckets() const {
    return counts_;
  }

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~0ull;
  std::uint64_t max_ = 0;
};

/// One completed span. `name` must outlive the telemetry session: pass a
/// string literal or a Telemetry::intern'd pointer.
struct SpanRecord {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;  ///< since Telemetry::enable()'s anchor
  std::uint64_t dur_ns = 0;
  std::uint32_t depth = 0;  ///< nesting depth on the recording thread
};

/// One counter sample, rendered as a Chrome "C" (counter-track) event.
struct CounterSample {
  const char* name = nullptr;
  std::uint64_t t_ns = 0;
  double value = 0.0;
};

/// Per-thread ring storage for spans and counter samples. Single-writer
/// (the owning thread); readers go through Telemetry at quiescent points.
/// Storage is allocated lazily on the first push, so threads that never
/// record (telemetry disabled) cost one pointer of thread-local state.
class SpanBuffer {
 public:
  static constexpr std::size_t kSpanCapacity = 1u << 16;
  static constexpr std::size_t kCounterCapacity = 1u << 14;

  explicit SpanBuffer(std::uint32_t tid) : tid_(tid) {}

  void push_span(const SpanRecord& r) {
    if (spans_.size() < kSpanCapacity) {
      spans_.push_back(r);
    } else {
      // True ring: overwrite the oldest, count the loss — never silent.
      spans_[static_cast<std::size_t>(span_total_) % kSpanCapacity] = r;
      ++spans_dropped_;
    }
    ++span_total_;
  }

  void push_counter(const CounterSample& s) {
    if (counters_.size() < kCounterCapacity) {
      counters_.push_back(s);
    } else {
      counters_[static_cast<std::size_t>(counter_total_) % kCounterCapacity] =
          s;
      ++counters_dropped_;
    }
    ++counter_total_;
  }

  /// Live nesting depth bookkeeping for ScopedSpan.
  std::uint32_t enter() { return depth_ < 0 ? 0u : static_cast<std::uint32_t>(depth_++); }
  void exit() {
    if (depth_ > 0) --depth_;
  }

  [[nodiscard]] std::uint32_t tid() const { return tid_; }
  [[nodiscard]] const std::string& label() const { return label_; }
  void set_label(std::string label) { label_ = std::move(label); }

  /// Retained spans, oldest first (undoes the ring rotation).
  [[nodiscard]] std::vector<SpanRecord> spans() const;
  [[nodiscard]] std::vector<CounterSample> counters() const;
  [[nodiscard]] std::uint64_t span_total() const { return span_total_; }
  [[nodiscard]] std::uint64_t spans_dropped() const { return spans_dropped_; }
  [[nodiscard]] std::uint64_t counters_dropped() const {
    return counters_dropped_;
  }

  void clear();

 private:
  std::uint32_t tid_ = 0;
  int depth_ = 0;
  std::string label_;
  std::vector<SpanRecord> spans_;
  std::vector<CounterSample> counters_;
  std::uint64_t span_total_ = 0;
  std::uint64_t counter_total_ = 0;
  std::uint64_t spans_dropped_ = 0;
  std::uint64_t counters_dropped_ = 0;
};

namespace detail {
/// The one hot-path gate. Relaxed is correct: a site that misses a recent
/// enable() records slightly late; it can never corrupt state.
extern std::atomic<bool> g_telemetry_on;
}  // namespace detail

class Telemetry {
 public:
  static Telemetry& instance();

  /// The hot-path query — EMPTCP_SPAN branches on it.
  [[nodiscard]] static bool enabled() {
    return detail::g_telemetry_on.load(std::memory_order_relaxed);
  }

  /// Turning on (re-)anchors the time base at "now", so exported
  /// timestamps start near zero for each session.
  void enable(bool on = true);

  /// Nanoseconds since the enable() anchor (steady clock).
  [[nodiscard]] std::uint64_t now_ns() const;

  /// The calling thread's buffer (registered on first use). The returned
  /// reference stays valid for the process lifetime.
  SpanBuffer& local_buffer();

  /// Names the calling thread in exports ("party-0", "worker-3", ...).
  void set_thread_label(std::string label);

  /// Records one counter sample on the calling thread (gated by the
  /// caller; cheap enough to call per epoch, not per event).
  void counter(const char* name, double value);

  /// Interns a dynamically-built span name; the returned pointer is
  /// stable for the process lifetime (spans may be exported long after
  /// the object that built the name died).
  const char* intern(std::string_view name);

  /// Per-name totals across all threads, sorted by total time descending
  /// (ties by name). Call at a quiescent point.
  struct SpanTotal {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t max_ns = 0;
  };
  [[nodiscard]] std::vector<SpanTotal> aggregate() const;

  /// Spans lost to ring overflow across all threads.
  [[nodiscard]] std::uint64_t spans_dropped() const;

  /// Chrome trace-event JSON ({"traceEvents": [...]}): one thread_name
  /// metadata record per registered thread, "X" complete events for
  /// spans, "C" counter events. Loadable in Perfetto / chrome://tracing.
  /// Call at a quiescent point.
  [[nodiscard]] std::string to_chrome_json() const;

  /// Drops all recorded spans/samples and dropped-counts; keeps thread
  /// registrations, labels and interned names. Call at a quiescent point
  /// (no span may be live across a clear).
  void clear();

  [[nodiscard]] std::size_t thread_count() const;

 private:
  Telemetry() = default;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<SpanBuffer>> buffers_;
  std::vector<std::unique_ptr<std::string>> interned_;
  std::chrono::steady_clock::time_point anchor_{};
};

/// RAII span. Disabled path: one relaxed atomic load and a branch; the
/// begin/end bookkeeping lives out of line in telemetry.cpp.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    if (Telemetry::enabled()) begin(name);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() {
    if (buf_ != nullptr) end();
  }

 private:
  void begin(const char* name);
  void end();

  SpanBuffer* buf_ = nullptr;
  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
  std::uint32_t depth_ = 0;
};

#define EMPTCP_SPAN_CAT2(a, b) a##b
#define EMPTCP_SPAN_CAT(a, b) EMPTCP_SPAN_CAT2(a, b)
/// Opens a span covering the rest of the enclosing scope. `name` must be
/// a string literal or an interned pointer.
#define EMPTCP_SPAN(name) \
  ::emptcp::runtime::ScopedSpan EMPTCP_SPAN_CAT(emptcp_span_, __LINE__)(name)

}  // namespace emptcp::runtime
