#include "net/packet.hpp"

#include <sstream>

namespace emptcp::net {

std::string Packet::describe() const {
  std::ostringstream os;
  os << src << ":" << sport << ">" << dst << ":" << dport;
  if (syn) os << " SYN";
  if (fin) os << " FIN";
  if (rst) os << " RST";
  if (is_ack) os << " ACK=" << ack;
  if (payload > 0) os << " seq=" << seq << " len=" << payload;
  if (mp_capable) os << " MP_CAPABLE";
  if (mp_join) os << " MP_JOIN";
  if (dss) os << " DSS[" << dss->data_seq << "+" << dss->length << "]";
  if (data_ack) os << " DACK=" << *data_ack;
  if (mp_prio) os << (mp_prio->backup ? " MP_PRIO(backup)" : " MP_PRIO(normal)");
  if (udp) os << " UDP len=" << payload;
  return os.str();
}

}  // namespace emptcp::net
