// Network interface: the attachment point between a node and its links.
//
// A mobile device in this system has a WiFi and an LTE (or 3G) interface;
// the server has an Ethernet interface. The interface is where two things
// the paper cares about are observed:
//   * byte counters, feeding throughput measurement, and
//   * radio activity, feeding the energy model (promotion / tail states).
// The energy subsystem attaches through the RadioHook so `net` does not
// depend on `energy`.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "net/link.hpp"
#include "net/packet.hpp"
#include "sim/simulation.hpp"

namespace emptcp::net {

enum class InterfaceType { kWifi, kLte, kThreeG, kEthernet };

const char* to_string(InterfaceType t);

/// Hook by which the energy model observes interface activity. Returns the
/// extra latency the radio imposes on this packet (promotion delay when a
/// cellular radio wakes from idle; zero otherwise).
class RadioHook {
 public:
  virtual ~RadioHook() = default;
  virtual sim::Duration on_activity(sim::Time now, std::uint32_t wire_bytes,
                                    bool is_tx) = 0;
};

class Node;  // forward

class NetworkInterface {
 public:
  struct Config {
    InterfaceType type = InterfaceType::kEthernet;
    Addr addr = kAddrInvalid;
    std::string name = "if";
  };

  NetworkInterface(sim::Simulation& sim, Node& node, Config cfg);

  NetworkInterface(const NetworkInterface&) = delete;
  NetworkInterface& operator=(const NetworkInterface&) = delete;

  [[nodiscard]] InterfaceType type() const { return cfg_.type; }
  [[nodiscard]] Addr addr() const { return cfg_.addr; }
  [[nodiscard]] const std::string& name() const { return cfg_.name; }

  /// Adds a route: packets to `dst` leave through `out`.
  void add_route(Addr dst, Link& out) { routes_[dst] = &out; }
  /// Fallback route used when no specific entry matches.
  void set_default_route(Link& out) { default_route_ = &out; }

  /// Sends a packet out of this interface. Silently drops when the
  /// interface is down or unrouteable (counted).
  void send(const Packet& pkt);

  /// Entry point bound to the far end of incoming links.
  void deliver(const Packet& pkt);

  /// Interface administrative state; models WiFi AP association loss.
  void set_up(bool up);
  [[nodiscard]] bool is_up() const { return up_; }

  void set_radio_hook(RadioHook* hook) { radio_ = hook; }
  [[nodiscard]] RadioHook* radio_hook() const { return radio_; }

  [[nodiscard]] std::uint64_t tx_bytes() const { return tx_bytes_; }
  [[nodiscard]] std::uint64_t rx_bytes() const { return rx_bytes_; }
  [[nodiscard]] std::uint64_t dropped_down() const { return dropped_down_; }

  /// Hybrid-fidelity accounting: credits a macro-step's aggregated wire
  /// bytes to the counters and lets the radio model observe the activity
  /// (keeping cellular radios in their active state through a fluid
  /// interval). Promotion delays are ignored — a flow only macro-steps
  /// while its radio is already busy. No packets traverse any link.
  void macro_account(std::uint64_t tx_wire_bytes, std::uint64_t rx_wire_bytes);

  /// Zeroes the byte counters, as a driver reset/reattach would. Consumers
  /// that difference the counters (EnergyTracker) must tolerate the
  /// resulting backwards step.
  void reset_counters() {
    tx_bytes_ = 0;
    rx_bytes_ = 0;
    dropped_down_ = 0;
  }

 private:
  sim::Simulation& sim_;
  Node& node_;
  Config cfg_;
  std::unordered_map<Addr, Link*> routes_;
  Link* default_route_ = nullptr;
  RadioHook* radio_ = nullptr;
  bool up_ = true;

  std::uint64_t tx_bytes_ = 0;
  std::uint64_t rx_bytes_ = 0;
  std::uint64_t dropped_down_ = 0;
};

}  // namespace emptcp::net
