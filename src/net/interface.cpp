#include "net/interface.hpp"

#include <algorithm>

#include "net/node.hpp"
#include "sim/logging.hpp"

namespace emptcp::net {

const char* to_string(InterfaceType t) {
  switch (t) {
    case InterfaceType::kWifi: return "wifi";
    case InterfaceType::kLte: return "lte";
    case InterfaceType::kThreeG: return "3g";
    case InterfaceType::kEthernet: return "eth";
  }
  return "?";
}

NetworkInterface::NetworkInterface(sim::Simulation& sim, Node& node,
                                   Config cfg)
    : sim_(sim), node_(node), cfg_(std::move(cfg)) {}

void NetworkInterface::send(const Packet& pkt) {
  if (!up_) {
    ++dropped_down_;
    return;
  }
  Link* out = default_route_;
  if (auto it = routes_.find(pkt.dst); it != routes_.end()) out = it->second;
  if (out == nullptr) {
    ++dropped_down_;
    EMPTCP_LOG(sim_, sim::LogLevel::kWarn,
               cfg_.name << ": no route for " << pkt.describe());
    return;
  }
  tx_bytes_ += pkt.wire_bytes();
  if (radio_ != nullptr) {
    const sim::Duration extra =
        radio_->on_activity(sim_.now(), pkt.wire_bytes(), /*is_tx=*/true);
    if (extra > 0) out->add_pending_delay(extra);
  }
  out->send(pkt);
}

void NetworkInterface::deliver(const Packet& pkt) {
  if (!up_) {
    ++dropped_down_;
    return;
  }
  rx_bytes_ += pkt.wire_bytes();
  if (radio_ != nullptr) {
    radio_->on_activity(sim_.now(), pkt.wire_bytes(), /*is_tx=*/false);
  }
  node_.receive(pkt, *this);
}

void NetworkInterface::macro_account(std::uint64_t tx_wire_bytes,
                                     std::uint64_t rx_wire_bytes) {
  tx_bytes_ += tx_wire_bytes;
  rx_bytes_ += rx_wire_bytes;
  if (radio_ == nullptr) return;
  // One aggregated activity sample per direction. wire_bytes is a u32 in
  // the per-packet hook; a 100 ms quantum at link rates stays far below
  // that, but clamp defensively.
  constexpr std::uint64_t kMax = 0xffffffffull;
  if (tx_wire_bytes > 0) {
    radio_->on_activity(sim_.now(),
                        static_cast<std::uint32_t>(
                            std::min<std::uint64_t>(tx_wire_bytes, kMax)),
                        /*is_tx=*/true);
  }
  if (rx_wire_bytes > 0) {
    radio_->on_activity(sim_.now(),
                        static_cast<std::uint32_t>(
                            std::min<std::uint64_t>(rx_wire_bytes, kMax)),
                        /*is_tx=*/false);
  }
}

void NetworkInterface::set_up(bool up) {
  if (up_ == up) return;
  up_ = up;
  EMPTCP_LOG(sim_, sim::LogLevel::kInfo,
             cfg_.name << (up ? " up" : " down"));
}

}  // namespace emptcp::net
