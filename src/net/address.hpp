// Addressing for the simulated network.
//
// An Addr plays the role of an IP address: it names one network interface.
// Flows are identified by the classic 4-tuple (src addr, src port, dst addr,
// dst port); MPTCP subflows of one connection differ in the address part of
// the tuple, exactly as on the wire.
#pragma once

#include <cstdint>
#include <functional>

namespace emptcp::net {

using Addr = std::uint32_t;
using Port = std::uint16_t;

inline constexpr Addr kAddrInvalid = 0;

/// Flow 4-tuple, always expressed from the owning endpoint's point of view.
struct FlowKey {
  Addr local_addr = kAddrInvalid;
  Port local_port = 0;
  Addr remote_addr = kAddrInvalid;
  Port remote_port = 0;

  friend bool operator==(const FlowKey&, const FlowKey&) = default;
};

struct FlowKeyHash {
  std::size_t operator()(const FlowKey& k) const {
    std::uint64_t a = (std::uint64_t{k.local_addr} << 32) | k.remote_addr;
    std::uint64_t b = (std::uint64_t{k.local_port} << 16) | k.remote_port;
    return std::hash<std::uint64_t>{}(a * 0x9E3779B97F4A7C15ULL ^ b);
  }
};

}  // namespace emptcp::net
