#include "net/shard_link.hpp"

#include <cstring>
#include <type_traits>

namespace emptcp::net {

// Packets cross the place boundary as raw bytes. Packet is not formally
// trivially copyable (SackList's copy ops only copy the live prefix, a
// deliberate optimisation), but it owns no heap memory and every member is
// trivially destructible, so a byte copy reproduces a valid object — the
// assert guards the property the byte copy actually relies on.
static_assert(std::is_trivially_destructible_v<Packet>,
              "Packet must stay heap-free to cross shard edges as bytes");

void CrossShardLink::Port::on_cross_message(sim::Time /*t*/, const void* data,
                                            std::size_t size) {
  Packet pkt;
  std::memcpy(static_cast<void*>(&pkt), data, std::min(size, sizeof(Packet)));
  if (receiver_) receiver_(pkt);
}

namespace {

Link::Config zero_prop(Link::Config cfg) {
  cfg.prop_delay = 0;
  return cfg;
}

}  // namespace

CrossShardLink::CrossShardLink(sim::Simulation& src_sim,
                               sim::ShardEngine& engine, std::size_t src_place,
                               std::size_t dst_place, Port& port,
                               Link::Config cfg)
    : src_sim_(src_sim),
      engine_(engine),
      edge_(engine.add_edge(src_place, dst_place, cfg.prop_delay, port,
                            sizeof(Packet))),
      link_(src_sim, zero_prop(std::move(cfg))) {
  link_.set_receiver([this](const Packet& pkt) {
    // Fires at transmission-finish time s; the boundary's propagation is
    // the edge's (currently effective) lookahead.
    const sim::Time t =
        src_sim_.now() + engine_.partition().edge(edge_).lookahead;
    ++posted_;
    engine_.post(edge_, t, &pkt, sizeof(Packet));
  });
}

}  // namespace emptcp::net
