// Node: an endpoint owning interfaces and demultiplexing packets to sockets.
//
// The client node owns the WiFi and LTE interfaces; the server node owns one
// Ethernet interface (the paper's servers have a single public address).
// Sockets register their 4-tuple here; SYNs that match no flow go to the
// listener on their destination port, which is how the server side accepts
// initial subflows and MP_JOINs.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/interface.hpp"
#include "net/packet.hpp"
#include "sim/simulation.hpp"

namespace emptcp::net {

class Node {
 public:
  using PacketHandler = std::function<void(const Packet&)>;

  Node(sim::Simulation& sim, std::string name)
      : sim_(sim), name_(std::move(name)) {}

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NetworkInterface& add_interface(NetworkInterface::Config cfg);

  /// Finds the interface owning `addr`; throws if none.
  NetworkInterface& interface_for(Addr addr);
  /// Finds an interface by type; returns nullptr if absent.
  NetworkInterface* interface_of_type(InterfaceType t);

  /// Sends via the interface whose address matches pkt.src.
  void send(const Packet& pkt);

  /// Binds a handler for an established flow.
  void register_flow(const FlowKey& key, PacketHandler handler);
  void unregister_flow(const FlowKey& key);

  /// Binds a listener invoked for SYNs on `port` that match no flow.
  void listen(Port port, PacketHandler handler);

  /// Allocates a locally-unique ephemeral port.
  Port allocate_port() { return next_port_++; }

  /// Called by interfaces on packet arrival.
  void receive(const Packet& pkt, NetworkInterface& in);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] sim::Simulation& simulation() { return sim_; }
  [[nodiscard]] std::uint64_t unmatched_packets() const { return unmatched_; }

 private:
  sim::Simulation& sim_;
  std::string name_;
  std::vector<std::unique_ptr<NetworkInterface>> interfaces_;
  std::unordered_map<FlowKey, PacketHandler, FlowKeyHash> flows_;
  std::unordered_map<Port, PacketHandler> listeners_;
  Port next_port_ = 40000;
  std::uint64_t unmatched_ = 0;
};

}  // namespace emptcp::net
