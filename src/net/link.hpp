// Unidirectional link with rate, propagation delay, loss and a drop-tail
// queue. This is the bottleneck model for every hop in the testbed: the WiFi
// access link, the LTE radio bearer, and the wired WAN segment.
//
// The rate can change at runtime (set_rate) — the on-off bandwidth modulator,
// the interference channel and the mobility model all drive a link this way,
// mirroring how the paper's lab shapes the WiFi AP's bandwidth.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "net/packet.hpp"
#include "net/packet_pool.hpp"
#include "sim/ring_deque.hpp"
#include "sim/simulation.hpp"

namespace emptcp::net {

class Link {
 public:
  using Receiver = std::function<void(const Packet&)>;

  struct Config {
    double rate_mbps = 10.0;            ///< transmission rate
    sim::Duration prop_delay = sim::milliseconds(10);
    double loss_prob = 0.0;             ///< i.i.d. random loss after transmission
    std::size_t queue_limit_bytes = 256 * 1024;  ///< drop-tail buffer
    std::string name = "link";
  };

  Link(sim::Simulation& sim, Config cfg);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Sets the function invoked when a packet arrives at the far end.
  void set_receiver(Receiver r) { receiver_ = std::move(r); }

  /// Forwards arrivals straight into `next`'s queue instead of a receiver,
  /// moving the pooled buffer (no copy). This is how multi-hop paths
  /// (access link -> WAN segment) are wired.
  void chain_to(Link& next) { next_ = &next; }

  /// Hands a packet to the link. Drops it if the queue is full. The packet
  /// is copied into a pool slot here — the only copy on its way down the
  /// chain.
  void send(const Packet& pkt);

  /// Moves an already-pooled packet into the queue (used by chained
  /// upstream links; applies the same drop-tail policy).
  void send(PooledPacket&& pkt);

  /// Changes the transmission rate. Takes effect from the next packet
  /// serviced; the packet currently in the transmitter finishes at its old
  /// rate, as a real shaper would.
  void set_rate(double mbps);
  [[nodiscard]] double rate_mbps() const { return cfg_.rate_mbps; }

  void set_loss_prob(double p) {
    const bool changed = p != cfg_.loss_prob;
    cfg_.loss_prob = p;
    if (changed && transient_cb_) transient_cb_();
  }
  [[nodiscard]] double loss_prob() const { return cfg_.loss_prob; }

  /// Observer for path-property transients (rate or loss changes). The
  /// hybrid-fidelity fast path hangs off this: any flow advancing
  /// analytically over this link must drop back to packet level and
  /// re-measure. At most one listener; unset by default.
  void set_transient_listener(std::function<void()> cb) {
    transient_cb_ = std::move(cb);
  }

  /// Declares analytic (fluid) traffic occupying this link outside the
  /// packet path: the serialization rate packet traffic sees shrinks by
  /// this many bits/s, floored at a small residual so packet tails always
  /// drain. Driven by the hybrid-fidelity coordinator every governor
  /// quantum; deliberately does NOT fire the transient listener — it is
  /// the fast path's own doing, not a path-property change.
  void set_background_bps(double bps);
  [[nodiscard]] double background_bps() const { return background_bps_; }

  void set_prop_delay(sim::Duration d) { cfg_.prop_delay = d; }
  [[nodiscard]] sim::Duration prop_delay() const { return cfg_.prop_delay; }

  /// Extra one-shot delay added to the next packet's delivery (used to model
  /// cellular promotion latency on a radio waking from idle).
  void add_pending_delay(sim::Duration d) { pending_delay_ += d; }

  [[nodiscard]] const std::string& name() const { return cfg_.name; }
  [[nodiscard]] std::size_t queued_bytes() const { return queued_bytes_; }

  // Counters for tests and diagnostics.
  [[nodiscard]] std::uint64_t delivered_packets() const { return delivered_; }
  [[nodiscard]] std::uint64_t dropped_queue() const { return dropped_queue_; }
  [[nodiscard]] std::uint64_t dropped_loss() const { return dropped_loss_; }
  [[nodiscard]] std::uint64_t delivered_bytes() const { return delivered_bytes_; }

 private:
  void start_transmission();
  void finish_transmission();
  void deliver(PooledPacket&& pkt);

  sim::Simulation& sim_;
  Config cfg_;
  PacketPool& pool_;
  Receiver receiver_;
  Link* next_ = nullptr;
  sim::RingDeque<PooledPacket> queue_;
  std::size_t queued_bytes_ = 0;
  bool transmitting_ = false;
  double background_bps_ = 0.0;
  sim::Duration pending_delay_ = 0;
  std::function<void()> transient_cb_;

  std::uint64_t delivered_ = 0;
  std::uint64_t delivered_bytes_ = 0;
  std::uint64_t dropped_queue_ = 0;
  std::uint64_t dropped_loss_ = 0;
};

}  // namespace emptcp::net
