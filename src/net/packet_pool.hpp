// Per-simulation packet buffer pool.
//
// Links move packets through the pipeline as pooled handles instead of
// by-value copies: a packet is copied into a pool slot once, at the hop
// where it enters a link chain, and from then on only the 16-byte handle
// moves — through the drop-tail queue, the propagation-delay event and any
// chained downstream links. Slots return to the freelist when the handle
// dies (delivery, loss, queue drop), so steady-state forwarding performs
// no heap allocation. The pool lives in the owning Simulation's context
// registry (sim.context<PacketPool>()), keeping concurrent simulations
// fully isolated.
#pragma once

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "net/packet.hpp"

namespace emptcp::net {

class PacketPool;

/// Move-only owning handle to a pooled Packet; releases the slot back to
/// the pool on destruction.
class PooledPacket {
 public:
  PooledPacket() = default;
  PooledPacket(PacketPool* pool, Packet* pkt) : pool_(pool), pkt_(pkt) {}

  PooledPacket(PooledPacket&& other) noexcept
      : pool_(std::exchange(other.pool_, nullptr)),
        pkt_(std::exchange(other.pkt_, nullptr)) {}
  PooledPacket& operator=(PooledPacket&& other) noexcept {
    if (this != &other) {
      reset();
      pool_ = std::exchange(other.pool_, nullptr);
      pkt_ = std::exchange(other.pkt_, nullptr);
    }
    return *this;
  }

  PooledPacket(const PooledPacket&) = delete;
  PooledPacket& operator=(const PooledPacket&) = delete;

  ~PooledPacket() { reset(); }

  [[nodiscard]] Packet& operator*() const { return *pkt_; }
  [[nodiscard]] Packet* operator->() const { return pkt_; }
  explicit operator bool() const { return pkt_ != nullptr; }

  inline void reset();

 private:
  PacketPool* pool_ = nullptr;
  Packet* pkt_ = nullptr;
};

class PacketPool {
 public:
  PacketPool() = default;
  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  /// Takes a slot (reusing a free one if possible) holding a copy of `src`.
  PooledPacket clone(const Packet& src) {
    Packet* p = take();
    *p = src;
    return PooledPacket{this, p};
  }

  void release(Packet* p) { free_.push_back(p); }

  /// Total slots ever allocated / currently idle, for tests & diagnostics.
  [[nodiscard]] std::size_t allocated() const { return storage_.size(); }
  [[nodiscard]] std::size_t idle() const { return free_.size(); }

 private:
  Packet* take() {
    if (!free_.empty()) {
      Packet* p = free_.back();
      free_.pop_back();
      return p;
    }
    storage_.push_back(std::make_unique<Packet>());
    return storage_.back().get();
  }

  std::vector<std::unique_ptr<Packet>> storage_;
  std::vector<Packet*> free_;
};

inline void PooledPacket::reset() {
  if (pkt_ != nullptr) pool_->release(pkt_);
  pool_ = nullptr;
  pkt_ = nullptr;
}

}  // namespace emptcp::net
