#include "net/channel/onoff_bandwidth.hpp"

#include "trace/trace.hpp"

namespace emptcp::net {

OnOffBandwidth::OnOffBandwidth(sim::Simulation& sim, Link& link, Config cfg)
    : sim_(sim), links_{&link}, cfg_(cfg), high_(cfg.start_high) {}

void OnOffBandwidth::start() {
  apply_state();
  schedule_flip();
}

void OnOffBandwidth::apply_state() {
  const double rate = high_ ? cfg_.high_mbps : cfg_.low_mbps;
  for (Link* l : links_) l->set_rate(rate);
  log_.push_back(Transition{sim_.now(), rate});
  EMPTCP_TRACE(sim_, channel_rate(sim_.now(), "onoff", rate,
                                  high_ ? 1.0 : 0.0));
}

void OnOffBandwidth::schedule_flip() {
  const double mean = high_ ? cfg_.mean_high_s : cfg_.mean_low_s;
  const sim::Duration hold = sim::from_seconds(sim_.rng().exponential(mean));
  sim_.in(hold, [this] {
    high_ = !high_;
    apply_state();
    schedule_flip();
  });
}

}  // namespace emptcp::net
