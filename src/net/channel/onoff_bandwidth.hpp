// Two-state on-off bandwidth modulator (paper §4.3).
//
// "WiFi link bandwidth is modulated by a two state on-off process with
//  exponentially distributed times spent in the on or off state with a mean
//  of 40 seconds. The bandwidth provided by the AP is ≤1 Mbps or ≥10 Mbps,
//  depending on its state."
//
// The modulator flips a Link between a high and a low rate with
// exponentially distributed holding times, and records the switch times so
// traces (Fig. 7) can plot bandwidth alongside energy.
#pragma once

#include <vector>

#include "net/link.hpp"
#include "sim/simulation.hpp"

namespace emptcp::net {

class OnOffBandwidth {
 public:
  struct Config {
    double high_mbps = 12.0;
    double low_mbps = 0.8;
    double mean_high_s = 40.0;  ///< mean sojourn in the high state
    double mean_low_s = 40.0;   ///< mean sojourn in the low state
    bool start_high = true;
  };

  struct Transition {
    sim::Time at = 0;
    double rate_mbps = 0.0;
  };

  OnOffBandwidth(sim::Simulation& sim, Link& link, Config cfg);

  /// Adds another link switched in lockstep with the primary (an AP's
  /// bandwidth change affects uplink and downlink together).
  void also_govern(Link& link) { links_.push_back(&link); }

  /// Starts modulating. The first holding time is drawn immediately.
  void start();

  [[nodiscard]] bool is_high() const { return high_; }
  [[nodiscard]] const std::vector<Transition>& transitions() const {
    return log_;
  }

 private:
  void apply_state();
  void schedule_flip();

  sim::Simulation& sim_;
  std::vector<Link*> links_;
  Config cfg_;
  bool high_;
  std::vector<Transition> log_;
};

}  // namespace emptcp::net
