#include "net/channel/mobility.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace emptcp::net {

MobilityModel::MobilityModel(sim::Simulation& sim, WifiChannel& channel,
                             Config cfg)
    : sim_(sim), channel_(channel), cfg_(std::move(cfg)) {
  if (cfg_.route.size() < 2) {
    throw std::invalid_argument("mobility route needs >= 2 waypoints");
  }
  for (std::size_t i = 1; i < cfg_.route.size(); ++i) {
    if (cfg_.route[i].t_s <= cfg_.route[i - 1].t_s) {
      throw std::invalid_argument("mobility waypoints must increase in time");
    }
  }
}

void MobilityModel::start() { tick(); }

std::pair<double, double> MobilityModel::position_at(double t_s) const {
  const auto& r = cfg_.route;
  if (t_s <= r.front().t_s) return {r.front().x, r.front().y};
  if (t_s >= r.back().t_s) return {r.back().x, r.back().y};
  for (std::size_t i = 1; i < r.size(); ++i) {
    if (t_s <= r[i].t_s) {
      const double f = (t_s - r[i - 1].t_s) / (r[i].t_s - r[i - 1].t_s);
      return {r[i - 1].x + f * (r[i].x - r[i - 1].x),
              r[i - 1].y + f * (r[i].y - r[i - 1].y)};
    }
  }
  return {r.back().x, r.back().y};
}

double MobilityModel::distance_at(double t_s) const {
  const auto [x, y] = position_at(t_s);
  return std::hypot(x - cfg_.ap_x, y - cfg_.ap_y);
}

double MobilityModel::rate_at(double t_s) const {
  const double d = distance_at(t_s);
  if (d >= cfg_.usable_range_m) return cfg_.floor_mbps;
  const double frac = d / cfg_.usable_range_m;
  const double rate = cfg_.max_rate_mbps * (1.0 - frac * frac);
  return std::max(rate, cfg_.floor_mbps);
}

void MobilityModel::tick() {
  channel_.set_capacity(rate_at(sim::to_seconds(sim_.now())));
  sim_.in(cfg_.tick, [this] { tick(); });
}

MobilityModel::Config MobilityModel::umass_corridor_route() {
  Config cfg;
  // Times and shape chosen so WiFi is good at the start, collapses around
  // 25–40 s (paper: "the duration around 25-40 seconds"), recovers as the
  // route passes the AP again, and degrades near the end.
  cfg.ap_x = 0.0;
  cfg.ap_y = 0.0;
  cfg.usable_range_m = 30.0;
  cfg.max_rate_mbps = 18.0;
  cfg.floor_mbps = 0.05;
  // The paper's walk keeps the device "inside WiFi communication range
  // most of the time", with a coverage dip around 25-40 s and another near
  // the end of the 250 s route.
  cfg.route = {
      {0.0, 5.0, 0.0},       // start next to the AP (blue point)
      {25.0, 33.0, 8.0},     // walk down the corridor, leaving usable range
      {45.0, 48.0, 20.0},    // far end: WiFi unusable (the 25-40 s dip)
      {60.0, 20.0, 6.0},     // turn back: signal recovering
      {70.0, 8.0, 2.0},      // pass right by the AP: WiFi excellent
      {150.0, 6.0, -3.0},    // linger in a nearby office: good WiFi
      {185.0, 14.0, -6.0},   // slow drift, still well covered
      {220.0, 42.0, -16.0},  // out toward the building edge: WiFi dies
      {250.0, 52.0, -22.0},  // route end
  };
  return cfg;
}

}  // namespace emptcp::net
