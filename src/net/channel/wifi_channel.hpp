// Shared-medium WiFi channel with contending background stations (§4.4).
//
// The paper places n = 2 or 3 interfering nodes on the device's WiFi channel,
// each turning UDP traffic on and off as a two-state Markov process with
// rates λon / λoff. Contention has two effects on the device:
//   1. airtime sharing — with k active stations the device's share of the
//      nominal capacity C shrinks to C / (k + 1);
//   2. collisions — loss probability grows with the number of contenders.
// Both are standard first-order DCF behaviour; the paper itself only cites
// contention and interference ("multiple WiFi nodes can contend for the air
// channel, causing interference and loss").
//
// WifiChannel applies both effects to the access links it governs whenever an
// interferer toggles. The toggling processes themselves live in
// app::OnOffUdpSource, which also injects real UDP datagrams so queues see
// cross traffic.
#pragma once

#include <cstddef>
#include <vector>

#include "net/link.hpp"
#include "sim/simulation.hpp"

namespace emptcp::net {

class WifiChannel {
 public:
  struct Config {
    double capacity_mbps = 15.0;     ///< nominal 802.11g-class capacity
    double collision_loss = 0.008;   ///< added loss per active contender
  };

  WifiChannel(sim::Simulation& sim, Config cfg) : sim_(sim), cfg_(cfg) {}

  /// Registers a link whose rate/loss this channel governs (typically the
  /// WiFi downlink and uplink).
  void govern(Link& link) {
    links_.push_back(&link);
    apply();
  }

  /// Registers a background station; returns its index.
  std::size_t register_interferer() {
    active_.push_back(false);
    return active_.size() - 1;
  }

  /// Flips a station's activity; recomputes the device's share and loss.
  void set_interferer_active(std::size_t idx, bool active);

  [[nodiscard]] std::size_t active_interferers() const;
  [[nodiscard]] double device_share_mbps() const;
  [[nodiscard]] double capacity_mbps() const { return cfg_.capacity_mbps; }

  /// Changes the nominal capacity (used by the mobility model where rate
  /// depends on distance to the AP) and reapplies contention on top.
  void set_capacity(double mbps) {
    cfg_.capacity_mbps = mbps;
    apply();
  }

 private:
  void apply();

  sim::Simulation& sim_;
  Config cfg_;
  std::vector<Link*> links_;
  std::vector<bool> active_;
  double last_traced_share_ = -1.0;
  double last_traced_loss_ = -1.0;
};

}  // namespace emptcp::net
