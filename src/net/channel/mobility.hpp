// Waypoint mobility model (paper §4.5, Figs. 11–13).
//
// The paper walks a 250-second route through a building: the device is
// sometimes within usable range of the AP and sometimes outside it, so WiFi
// throughput rises and falls with distance while the association is never
// lost. We reproduce that with a 2-D waypoint route walked at constant speed
// between timed waypoints; achievable WiFi rate falls off quadratically with
// distance inside the usable range and floors at a small positive rate
// outside it (still associated, nearly unusable — the paper's 25–40 s dip).
//
// The model drives a WifiChannel's nominal capacity on a fixed tick.
#pragma once

#include <vector>

#include "net/channel/wifi_channel.hpp"
#include "sim/simulation.hpp"

namespace emptcp::net {

struct Waypoint {
  double t_s = 0.0;  ///< arrival time at this waypoint, seconds
  double x = 0.0;    ///< metres
  double y = 0.0;
};

class MobilityModel {
 public:
  struct Config {
    std::vector<Waypoint> route;
    double ap_x = 0.0;
    double ap_y = 0.0;
    double usable_range_m = 30.0;  ///< Fig. 11's dashed circle
    double max_rate_mbps = 18.0;   ///< rate when next to the AP
    double floor_mbps = 0.05;      ///< associated but out of usable range
    sim::Duration tick = sim::milliseconds(500);
  };

  MobilityModel(sim::Simulation& sim, WifiChannel& channel, Config cfg);

  /// Begins walking the route and driving the channel capacity.
  void start();

  /// Device position at time t (clamps to route ends).
  [[nodiscard]] std::pair<double, double> position_at(double t_s) const;

  /// Distance to the AP at time t.
  [[nodiscard]] double distance_at(double t_s) const;

  /// Achievable WiFi rate at time t given the distance fall-off.
  [[nodiscard]] double rate_at(double t_s) const;

  /// The route used by the paper's Fig. 11 experiment: starts near the AP,
  /// walks out of usable range, loops back past the AP, and exits again.
  static Config umass_corridor_route();

 private:
  void tick();

  sim::Simulation& sim_;
  WifiChannel& channel_;
  Config cfg_;
};

}  // namespace emptcp::net
