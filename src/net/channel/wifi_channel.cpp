#include "net/channel/wifi_channel.hpp"

#include <algorithm>

#include "sim/logging.hpp"
#include "trace/trace.hpp"

namespace emptcp::net {

void WifiChannel::set_interferer_active(std::size_t idx, bool active) {
  if (idx >= active_.size()) return;
  if (active_[idx] == static_cast<bool>(active)) return;
  active_[idx] = active;
  apply();
  EMPTCP_LOG(sim_, sim::LogLevel::kDebug,
             "wifi channel: " << active_interferers()
                              << " active interferers, device share "
                              << device_share_mbps() << " Mbps");
}

std::size_t WifiChannel::active_interferers() const {
  return static_cast<std::size_t>(
      std::count(active_.begin(), active_.end(), true));
}

double WifiChannel::device_share_mbps() const {
  const auto k = static_cast<double>(active_interferers());
  return cfg_.capacity_mbps / (k + 1.0);
}

void WifiChannel::apply() {
  const double share = device_share_mbps();
  const double loss =
      cfg_.collision_loss * static_cast<double>(active_interferers());
  for (Link* l : links_) {
    l->set_rate(share);
    l->set_loss_prob(loss);
  }
  // Mobility re-applies the channel every tick; trace only real changes so
  // an enabled trace stays proportional to channel activity.
  if (share != last_traced_share_ || loss != last_traced_loss_) {
    last_traced_share_ = share;
    last_traced_loss_ = loss;
    EMPTCP_TRACE(sim_, channel_rate(sim_.now(), "wifi-share", share, loss));
  }
}

}  // namespace emptcp::net
