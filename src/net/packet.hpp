// Simulated packet: TCP segment plus the MPTCP options this system needs.
//
// The simulator is packet-level: every TCP segment, ACK, SYN and FIN is an
// individual Packet pushed through links with real transmission and
// propagation delay, drop-tail queueing and random loss. MPTCP signalling is
// carried the way the protocol carries it — as options on TCP segments
// (DSS mappings, data ACKs, MP_PRIO) — so the eMPTCP control decisions
// travel in-band exactly as in the kernel implementation.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>

#include "net/address.hpp"
#include "sim/time.hpp"

namespace emptcp::net {

/// DSS option: maps this segment's subflow payload into connection-level
/// data sequence space (RFC 6824 §3.3).
struct DssMapping {
  std::uint64_t data_seq = 0;
  std::uint64_t subflow_seq = 0;
  std::uint32_t length = 0;
};

/// MP_PRIO option: announces a priority change for the subflow it is sent
/// on (RFC 6824 §3.3.8). eMPTCP uses it to suspend/resume the LTE subflow.
struct MpPrio {
  bool backup = false;
};

/// Fixed-capacity list of SACK blocks carried inline in the packet, so a
/// Packet never owns heap memory and per-hop handling stays allocation-
/// free. The capacity *is* the protocol bound: pushes beyond capacity are
/// dropped, enforcing kMaxSackBlocks structurally at the generation point.
class SackList {
 public:
  using Block = std::pair<std::uint64_t, std::uint64_t>;
  static constexpr std::size_t kCapacity = 64;

  SackList() = default;
  SackList(const SackList& other) { assign(other); }
  SackList& operator=(const SackList& other) {
    if (this != &other) assign(other);
    return *this;
  }

  void emplace_back(std::uint64_t start, std::uint64_t end) {
    if (count_ < kCapacity) blocks_[count_++] = Block{start, end};
  }
  void push_back(const Block& b) { emplace_back(b.first, b.second); }
  void clear() { count_ = 0; }

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] bool full() const { return count_ == kCapacity; }
  [[nodiscard]] const Block& operator[](std::size_t i) const {
    return blocks_[i];
  }
  [[nodiscard]] const Block* begin() const { return blocks_.data(); }
  [[nodiscard]] const Block* end() const { return blocks_.data() + count_; }

 private:
  void assign(const SackList& other) {
    count_ = other.count_;
    // Only the live prefix is meaningful; don't copy the whole array.
    for (std::size_t i = 0; i < count_; ++i) blocks_[i] = other.blocks_[i];
  }

  std::size_t count_ = 0;
  std::array<Block, kCapacity> blocks_;  // tail intentionally uninitialised
};

struct Packet {
  // Network layer.
  Addr src = kAddrInvalid;
  Addr dst = kAddrInvalid;
  Port sport = 0;
  Port dport = 0;

  // TCP header. Sequence numbers are 64-bit in the simulator (a real header
  // carries 32 bits and wraps; nothing in this system depends on wrapping).
  std::uint64_t seq = 0;
  std::uint64_t ack = 0;
  bool syn = false;
  bool is_ack = false;
  bool fin = false;
  bool rst = false;

  /// SACK blocks: [start, end) ranges buffered above the cumulative ACK
  /// (RFC 2018). A real header carries 3-4 blocks but a receiver cycles
  /// through its whole scoreboard across successive ACKs; carrying the
  /// scoreboard directly models that steady state without the bookkeeping.
  SackList sack;
  static constexpr std::size_t kMaxSackBlocks = SackList::kCapacity;

  /// Application payload bytes carried by this segment.
  std::uint32_t payload = 0;

  // MPTCP options.
  bool mp_capable = false;  ///< on the initial subflow's SYN
  bool mp_join = false;     ///< on additional subflows' SYNs
  /// Connection token carried by MP_CAPABLE / MP_JOIN SYNs so the passive
  /// side can associate additional subflows with the right connection
  /// (RFC 6824 derives this from a key exchange; the simulator carries it
  /// directly).
  std::uint64_t mp_token = 0;
  /// RFC 6824 MP_JOIN "B" bit: this subflow starts as a backup path.
  bool mp_backup = false;
  /// Application tag carried on the MP_CAPABLE SYN; the evaluation's
  /// stand-in for request-level identification (e.g. the URL an HTTP
  /// request would carry), used by the web workload to pair each client
  /// connection with its object list independent of accept order.
  std::uint32_t app_tag = 0;
  std::optional<DssMapping> dss;
  std::optional<std::uint64_t> data_ack;
  /// DATA_FIN (RFC 6824 §3.3.3): the connection-level stream ends at this
  /// data sequence number (one past the last byte). Carried on any
  /// subflow, so the stream terminates even if other subflows died.
  std::optional<std::uint64_t> data_fin;
  std::optional<MpPrio> mp_prio;

  // Non-TCP datagram marker (background UDP traffic).
  bool udp = false;

  // Simulation metadata (not "on the wire").
  std::uint64_t id = 0;       ///< unique per simulation, for tracing
  sim::Time enqueued_at = 0;  ///< when the sender handed it to the link

  /// IP+TCP header overhead modelled on every packet.
  static constexpr std::uint32_t kHeaderBytes = 40;

  [[nodiscard]] std::uint32_t wire_bytes() const {
    return payload + kHeaderBytes;
  }

  /// Flow key from the *receiver's* point of view.
  [[nodiscard]] FlowKey flow_at_receiver() const {
    return FlowKey{dst, dport, src, sport};
  }

  [[nodiscard]] std::string describe() const;
};

/// Maximum segment size used by all TCP senders (typical Ethernet MSS).
inline constexpr std::uint32_t kMss = 1448;

}  // namespace emptcp::net
