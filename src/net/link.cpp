#include "net/link.hpp"

#include <algorithm>
#include <stdexcept>

namespace emptcp::net {

Link::Link(sim::Simulation& sim, Config cfg)
    : sim_(sim), cfg_(std::move(cfg)), pool_(sim.context<PacketPool>()) {
  if (cfg_.rate_mbps <= 0.0) {
    throw std::invalid_argument("Link rate must be positive: " + cfg_.name);
  }
}

void Link::send(const Packet& pkt) {
  if (queued_bytes_ + pkt.wire_bytes() > cfg_.queue_limit_bytes &&
      !queue_.empty()) {
    ++dropped_queue_;
    return;
  }
  PooledPacket slot = pool_.clone(pkt);
  slot->enqueued_at = sim_.now();
  queued_bytes_ += slot->wire_bytes();
  queue_.push_back(std::move(slot));
  if (!transmitting_) start_transmission();
}

void Link::send(PooledPacket&& pkt) {
  if (queued_bytes_ + pkt->wire_bytes() > cfg_.queue_limit_bytes &&
      !queue_.empty()) {
    ++dropped_queue_;
    return;  // pkt's slot returns to the pool
  }
  pkt->enqueued_at = sim_.now();
  queued_bytes_ += pkt->wire_bytes();
  queue_.push_back(std::move(pkt));
  if (!transmitting_) start_transmission();
}

void Link::set_rate(double mbps) {
  const double clamped = std::max(mbps, 1e-3);  // never fully stall the link
  const bool changed = clamped != cfg_.rate_mbps;
  cfg_.rate_mbps = clamped;
  if (changed && transient_cb_) transient_cb_();
}

void Link::set_background_bps(double bps) {
  background_bps_ = std::max(bps, 0.0);
}

void Link::start_transmission() {
  transmitting_ = true;
  const Packet& head = *queue_.front();
  const double bits = static_cast<double>(head.wire_bytes()) * 8.0;
  // Fluid background traffic occupies its declared share of the
  // transmitter; packet traffic serializes in what remains (at least 1%,
  // so a mis-declared overload degrades instead of deadlocking).
  const double line_bps = cfg_.rate_mbps * 1e6;
  const double avail_bps =
      std::max(line_bps - background_bps_, line_bps * 0.01);
  const sim::Duration tx_time = sim::from_seconds(bits / avail_bps);
  sim_.in(tx_time, [this] { finish_transmission(); });
}

void Link::finish_transmission() {
  PooledPacket pkt = std::move(queue_.front());
  queue_.pop_front();
  queued_bytes_ -= pkt->wire_bytes();
  transmitting_ = false;

  const sim::Duration extra = pending_delay_;
  pending_delay_ = 0;

  if (sim_.rng().chance(cfg_.loss_prob)) {
    ++dropped_loss_;
  } else {
    ++delivered_;
    delivered_bytes_ += pkt->wire_bytes();
    sim_.in(cfg_.prop_delay + extra, [this, p = std::move(pkt)]() mutable {
      deliver(std::move(p));
    });
  }

  if (!queue_.empty()) start_transmission();
}

void Link::deliver(PooledPacket&& pkt) {
  if (next_ != nullptr) {
    next_->send(std::move(pkt));
  } else if (receiver_) {
    receiver_(*pkt);
  }
}

}  // namespace emptcp::net
