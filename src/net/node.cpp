#include "net/node.hpp"

#include <stdexcept>

#include "sim/logging.hpp"

namespace emptcp::net {

NetworkInterface& Node::add_interface(NetworkInterface::Config cfg) {
  if (cfg.addr == kAddrInvalid) {
    throw std::invalid_argument("interface needs a valid address: " + cfg.name);
  }
  interfaces_.push_back(
      std::make_unique<NetworkInterface>(sim_, *this, std::move(cfg)));
  return *interfaces_.back();
}

NetworkInterface& Node::interface_for(Addr addr) {
  for (auto& ifc : interfaces_) {
    if (ifc->addr() == addr) return *ifc;
  }
  throw std::logic_error(name_ + ": no interface with requested address");
}

NetworkInterface* Node::interface_of_type(InterfaceType t) {
  for (auto& ifc : interfaces_) {
    if (ifc->type() == t) return ifc.get();
  }
  return nullptr;
}

void Node::send(const Packet& pkt) { interface_for(pkt.src).send(pkt); }

void Node::register_flow(const FlowKey& key, PacketHandler handler) {
  flows_[key] = std::move(handler);
}

void Node::unregister_flow(const FlowKey& key) { flows_.erase(key); }

void Node::listen(Port port, PacketHandler handler) {
  listeners_[port] = std::move(handler);
}

void Node::receive(const Packet& pkt, NetworkInterface& /*in*/) {
  const FlowKey key = pkt.flow_at_receiver();
  if (auto it = flows_.find(key); it != flows_.end()) {
    // Copy the handler: it may unregister the flow (and invalidate the
    // iterator) while running, e.g. on RST or final FIN-ACK.
    auto handler = it->second;
    handler(pkt);
    return;
  }
  if (pkt.syn && !pkt.is_ack) {
    if (auto it = listeners_.find(pkt.dport); it != listeners_.end()) {
      auto handler = it->second;
      handler(pkt);
      return;
    }
  }
  ++unmatched_;
  EMPTCP_LOG(sim_, sim::LogLevel::kTrace,
             name_ << ": unmatched packet " << pkt.describe());
}

}  // namespace emptcp::net
