// CrossShardLink: a net::Link whose far end lives in another ShardEngine
// place.
//
// The source place owns a full inner Link (drop-tail queue, rate,
// random loss, tracing — identical semantics to any other hop), but the
// propagation delay is *not* modelled inside the source place: the inner
// link runs with zero propagation, and its receiver — firing at
// transmission-finish time s — posts the packet on the engine edge with
// timestamp s + prop, where prop is the edge's declared lookahead. That is
// exactly the conservative contract: every event executed in an epoch has
// s >= E (the epoch's earliest pending time), so s + prop >= E + window =
// the epoch bound, and the message can never land inside an executing
// window.
//
// The propagation delay therefore lives in the Partition edge. Changing it
// (set_prop_delay) goes through ShardEngine::request_lookahead_update —
// validated immediately, applied at the next barrier — and posts always
// stamp with the *currently effective* partition value, so the delivery
// schedule stays a pure function of virtual state (byte-identical for any
// shard count). Rate and loss changes (what WifiChannel-style modulators
// drive) touch only the inner link and can never invalidate the bound.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "net/link.hpp"
#include "net/packet.hpp"
#include "sim/shard_engine.hpp"

namespace emptcp::net {

class CrossShardLink {
 public:
  /// Destination endpoint. Construct it in the *destination* place, pass it
  /// to the CrossShardLink constructor, then point it at the local receiver
  /// (typically an Interface's deliver). on_cross_message runs as an event
  /// inside the destination place at the packet's arrival time.
  class Port : public sim::CrossSink {
   public:
    using Receiver = std::function<void(const Packet&)>;
    void set_receiver(Receiver r) { receiver_ = std::move(r); }
    void on_cross_message(sim::Time t, const void* data,
                          std::size_t size) override;

   private:
    Receiver receiver_;
  };

  /// `cfg.prop_delay` becomes the engine edge's lookahead (must be > 0);
  /// the inner link itself runs with zero propagation. `src_sim` must be
  /// the Simulation registered as place `src_place`.
  CrossShardLink(sim::Simulation& src_sim, sim::ShardEngine& engine,
                 std::size_t src_place, std::size_t dst_place, Port& port,
                 Link::Config cfg);

  CrossShardLink(const CrossShardLink&) = delete;
  CrossShardLink& operator=(const CrossShardLink&) = delete;

  /// The source-side link: route/chain packets into it exactly like any
  /// local hop. Its rate/loss setters are safe to drive at runtime; do NOT
  /// call its set_prop_delay (the propagation lives on the engine edge) —
  /// use CrossShardLink::set_prop_delay instead.
  [[nodiscard]] Link& link() { return link_; }

  /// Re-declares the boundary's propagation delay. Throws on d <= 0;
  /// takes effect at the next engine barrier (deterministically).
  void set_prop_delay(sim::Duration d) {
    engine_.request_lookahead_update(edge_, d);
  }
  [[nodiscard]] sim::Duration prop_delay() const {
    return engine_.partition().edge(edge_).lookahead;
  }

  [[nodiscard]] std::size_t edge_id() const { return edge_; }

  /// Packets this link has posted across the place boundary. A plain
  /// accessor, deliberately NOT a trace metric: per-link counts depend on
  /// the partition, so recording them into the merged trace would leak
  /// the cell topology into deterministic artifacts. Telemetry-side
  /// consumers (perf.json) read it directly instead.
  [[nodiscard]] std::uint64_t packets_posted() const { return posted_; }

 private:
  sim::Simulation& src_sim_;
  sim::ShardEngine& engine_;
  std::size_t edge_;
  std::uint64_t posted_ = 0;
  Link link_;
};

}  // namespace emptcp::net
