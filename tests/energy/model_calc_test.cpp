#include "energy/model_calc.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "energy/device_profile.hpp"

namespace emptcp::energy {
namespace {

EnergyModel model() { return DeviceProfile::galaxy_s3().model(); }

TEST(ModelCalcTest, SteadyChoiceDegenerateCases) {
  const EnergyModel m = model();
  EXPECT_EQ(best_choice_steady(m, 5.0, 0.0), PathChoice::kWifiOnly);
  EXPECT_EQ(best_choice_steady(m, 0.0, 5.0), PathChoice::kCellOnly);
  EXPECT_THROW(best_choice_steady(m, 0.0, 0.0), std::invalid_argument);
}

TEST(ModelCalcTest, FastWifiWinsSlowWifiUsesBoth) {
  const EnergyModel m = model();
  EXPECT_EQ(best_choice_steady(m, 10.0, 5.0), PathChoice::kWifiOnly);
  EXPECT_EQ(best_choice_steady(m, 1.0, 5.0), PathChoice::kBoth);
  // Nearly-dead WiFi with decent LTE: cellular only.
  EXPECT_EQ(best_choice_steady(m, 0.02, 5.0), PathChoice::kCellOnly);
}

TEST(ModelCalcTest, SteadyThresholdsMatchPaperTable2Shape) {
  const EnergyModel m = model();
  // Paper Table 2 rows (LTE Mbps -> thresholds): our model was calibrated
  // to land near these; enforce 50 % tolerance so the *shape* is pinned
  // without over-fitting.
  struct Row {
    double lte, lo, hi;
  };
  const Row rows[] = {{0.5, 0.043, 0.234},
                      {1.0, 0.134, 0.502},
                      {1.5, 0.209, 0.803},
                      {2.0, 0.304, 1.070}};
  for (const Row& r : rows) {
    const WifiThresholds t = steady_thresholds(m, r.lte);
    EXPECT_NEAR(t.cell_only_below, r.lo, r.lo * 0.5) << "lte=" << r.lte;
    EXPECT_NEAR(t.wifi_only_at_least, r.hi, r.hi * 0.5) << "lte=" << r.lte;
    EXPECT_LT(t.cell_only_below, t.wifi_only_at_least);
  }
}

TEST(ModelCalcTest, ThresholdsIncreaseWithCellThroughput) {
  const EnergyModel m = model();
  double prev_lo = 0.0;
  double prev_hi = 0.0;
  for (double x = 0.5; x <= 8.0; x += 0.5) {
    const WifiThresholds t = steady_thresholds(m, x);
    EXPECT_GT(t.cell_only_below, prev_lo);
    EXPECT_GT(t.wifi_only_at_least, prev_hi);
    prev_lo = t.cell_only_below;
    prev_hi = t.wifi_only_at_least;
  }
}

TEST(ModelCalcTest, ThresholdsConsistentWithBestChoice) {
  // Property: for a grid of points, best_choice_steady agrees with the
  // region the thresholds define.
  const EnergyModel m = model();
  for (double x_l = 0.5; x_l <= 10.0; x_l += 0.7) {
    const WifiThresholds t = steady_thresholds(m, x_l);
    for (double x_w = 0.05; x_w <= 12.0; x_w *= 1.6) {
      const PathChoice c = best_choice_steady(m, x_w, x_l);
      if (x_w < t.cell_only_below * 0.98) {
        EXPECT_EQ(c, PathChoice::kCellOnly) << x_w << "," << x_l;
      } else if (x_w > t.cell_only_below * 1.02 &&
                 x_w < t.wifi_only_at_least * 0.98) {
        EXPECT_EQ(c, PathChoice::kBoth) << x_w << "," << x_l;
      } else if (x_w > t.wifi_only_at_least * 1.02) {
        EXPECT_EQ(c, PathChoice::kWifiOnly) << x_w << "," << x_l;
      }
    }
  }
}

TEST(ModelCalcTest, NormalizedEfficiencyBelowOneInsideV) {
  const EnergyModel m = model();
  EXPECT_LT(normalized_both_efficiency(m, 0.3, 1.0), 1.0);
  EXPECT_GT(normalized_both_efficiency(m, 8.0, 1.0), 1.0);
  EXPECT_THROW(normalized_both_efficiency(m, 0.0, 1.0),
               std::invalid_argument);
}

TEST(ModelCalcTest, FiniteTransferIncludesFixedOverheads) {
  const EnergyModel m = model();
  const double small = 256.0 * 1024;  // 256 KB
  const double wifi_j = finite_transfer_j(m, PathChoice::kWifiOnly, small,
                                          5.0, 5.0);
  const double cell_j = finite_transfer_j(m, PathChoice::kCellOnly, small,
                                          5.0, 5.0);
  // The LTE tail (≈12.6 J) dwarfs a 256 KB transfer's dynamic energy.
  EXPECT_GT(cell_j, 12.0);
  EXPECT_LT(wifi_j, 2.0);
}

TEST(ModelCalcTest, FiniteChoiceAvoidsCellularForSmallFiles) {
  // The κ = 1 MB design rationale (paper §4.1): below ~1 MB the cellular
  // fixed cost cannot pay off.
  const EnergyModel m = model();
  for (double x_w = 0.5; x_w <= 10.0; x_w += 0.5) {
    for (double x_l = 0.5; x_l <= 10.0; x_l += 0.5) {
      EXPECT_EQ(best_choice_finite(m, 256.0 * 1024, x_w, x_l),
                PathChoice::kWifiOnly);
    }
  }
}

TEST(ModelCalcTest, FiniteRegionGrowsWithTransferSize) {
  const EnergyModel m = model();
  const double x_l = 8.0;
  const auto r4 = finite_both_region(m, 4.0 * 1024 * 1024, x_l);
  const auto r16 = finite_both_region(m, 16.0 * 1024 * 1024, x_l);
  ASSERT_TRUE(r16.has_value());
  if (r4.has_value()) {
    EXPECT_GE(r16->hi - r16->lo, r4->hi - r4->lo);
  }
}

TEST(ModelCalcTest, ZeroThroughputFiniteTransferIsInfinite) {
  const EnergyModel m = model();
  EXPECT_TRUE(std::isinf(
      finite_transfer_j(m, PathChoice::kWifiOnly, 1e6, 0.0, 5.0)));
}

}  // namespace
}  // namespace emptcp::energy
