#include "energy/power_model.hpp"

#include <gtest/gtest.h>

#include "energy/device_profile.hpp"

namespace emptcp::energy {
namespace {

TEST(PowerModelTest, ActivePowerIsLinearInThroughput) {
  InterfacePowerParams p;
  p.beta_mw = 100.0;
  p.alpha_mw_per_mbps = 10.0;
  EXPECT_DOUBLE_EQ(p.active_power_mw(0.0), 100.0);
  EXPECT_DOUBLE_EQ(p.active_power_mw(5.0), 150.0);
}

TEST(PowerModelTest, FixedOverheadIsPromoPlusTail) {
  InterfacePowerParams p;
  p.promo_mw = 1000.0;
  p.promo_s = 0.5;
  p.tail_mw = 2000.0;
  p.tail_s = 2.0;
  EXPECT_DOUBLE_EQ(p.fixed_overhead_j(), 0.5 + 4.0);
}

TEST(DeviceProfileTest, GalaxyS3MatchesPaperFig1) {
  const DeviceProfile s3 = DeviceProfile::galaxy_s3();
  // Fig. 1: WiFi ~0.15 J, 3G ~7 J, LTE ~12.5 J.
  EXPECT_NEAR(s3.wifi.fixed_overhead_j(), 0.15, 0.03);
  EXPECT_NEAR(s3.threeg.fixed_overhead_j(), 6.9, 0.8);
  EXPECT_NEAR(s3.lte.fixed_overhead_j(), 12.6, 0.8);
}

TEST(DeviceProfileTest, Nexus5CheaperThanS3) {
  const DeviceProfile s3 = DeviceProfile::galaxy_s3();
  const DeviceProfile n5 = DeviceProfile::nexus5();
  EXPECT_LT(n5.wifi.fixed_overhead_j(), s3.wifi.fixed_overhead_j());
  EXPECT_LT(n5.lte.fixed_overhead_j(), s3.lte.fixed_overhead_j());
  EXPECT_LT(n5.threeg.fixed_overhead_j(), s3.threeg.fixed_overhead_j());
  EXPECT_NEAR(n5.wifi.fixed_overhead_j(), 0.06, 0.02);
}

TEST(DeviceProfileTest, CellTechSelectsRadioParams) {
  const DeviceProfile s3 = DeviceProfile::galaxy_s3();
  EXPECT_EQ(s3.model(CellTech::kLte).cell.name, "lte");
  EXPECT_EQ(s3.model(CellTech::kThreeG).cell.name, "3g");
}

TEST(EnergyModelTest, WifiCheaperPerBitThanLteAtEqualRate) {
  const EnergyModel m = DeviceProfile::galaxy_s3().model();
  for (double x : {1.0, 2.0, 5.0, 10.0}) {
    EXPECT_LT(m.per_mbit_wifi(x), m.per_mbit_cell(x));
  }
}

TEST(EnergyModelTest, PerMbitFallsWithThroughput) {
  const EnergyModel m = DeviceProfile::galaxy_s3().model();
  EXPECT_GT(m.per_mbit_wifi(0.5), m.per_mbit_wifi(5.0));
  EXPECT_GT(m.per_mbit_cell(0.5), m.per_mbit_cell(5.0));
}

TEST(EnergyModelTest, BothIsSubAdditiveThanksToPlatformSharing) {
  const EnergyModel m = DeviceProfile::galaxy_s3().model();
  // Energy rate of `both` is less than the sum of standalone rates because
  // the platform term is paid once.
  const double x_w = 2.0;
  const double x_l = 2.0;
  const double both_rate = m.per_mbit_both(x_w, x_l) * (x_w + x_l);
  const double sum_rate = m.per_mbit_wifi(x_w) * x_w +
                          m.per_mbit_cell(x_l) * x_l;
  EXPECT_LT(both_rate, sum_rate);
  EXPECT_NEAR(sum_rate - both_rate, m.platform_mw, 1e-6);
}

TEST(EnergyModelTest, VRegionExists) {
  // Paper Fig. 3: there are throughput pairs where both interfaces beat
  // either single one per byte.
  const EnergyModel m = DeviceProfile::galaxy_s3().model();
  const double x_w = 0.3;
  const double x_l = 1.0;  // inside the paper's Table 2 band for 1 Mbps LTE
  const double both = m.per_mbit_both(x_w, x_l);
  EXPECT_LT(both, m.per_mbit_wifi(x_w));
  EXPECT_LT(both, m.per_mbit_cell(x_l));
}

}  // namespace
}  // namespace emptcp::energy
