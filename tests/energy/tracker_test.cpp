#include "energy/energy_tracker.hpp"

#include <gtest/gtest.h>

#include "energy/device_profile.hpp"
#include "support/testnet.hpp"
#include "trace/trace.hpp"

namespace emptcp::energy {
namespace {

using test::TestNet;

struct TrackerWorld {
  explicit TrackerWorld(double platform_mw = 0.0)
      : net(),
        wifi_radio(DeviceProfile::galaxy_s3().wifi),
        cell_radio(DeviceProfile::galaxy_s3().lte),
        tracker(net.sim, {sim::milliseconds(100), platform_mw, true, 1}) {
    tracker.track(*net.wifi_if, wifi_radio);
    tracker.track(*net.cell_if, cell_radio);
  }

  /// Streams raw packets into the client WiFi interface at roughly
  /// `mbps` for `seconds` (background: not TCP, just byte movement).
  void blast_wifi(double mbps, double seconds) {
    const double bytes_per_100ms = mbps * 1e6 / 8.0 / 10.0;
    const int ticks = static_cast<int>(seconds * 10.0);
    for (int i = 0; i < ticks; ++i) {
      net.sim.at(net.sim.now() + sim::milliseconds(100) * i, [this,
                                                              bytes_per_100ms] {
        net::Packet p;
        p.src = test::kServerAddr;
        p.dst = test::kWifiAddr;
        p.payload = static_cast<std::uint32_t>(bytes_per_100ms) - 40;
        net.wifi_if->deliver(p);
      });
    }
  }

  TestNet net;
  RadioModel wifi_radio;
  RadioModel cell_radio;
  EnergyTracker tracker;
};

TEST(EnergyTrackerTest, IdleDeviceConsumesOnlyIdlePower) {
  TrackerWorld w;
  w.tracker.start();
  w.net.sim.run_until(sim::seconds(10));
  const DeviceProfile s3 = DeviceProfile::galaxy_s3();
  const double expected =
      (s3.wifi.idle_mw + s3.lte.idle_mw) * 10.0 / 1000.0;
  EXPECT_NEAR(w.tracker.total_j(), expected, expected * 0.05);
  EXPECT_TRUE(w.tracker.all_idle());
}

TEST(EnergyTrackerTest, ActiveWifiMatchesLinearModel) {
  TrackerWorld w;
  w.tracker.start();
  w.blast_wifi(8.0, 10.0);
  w.net.sim.run_until(sim::seconds(10));
  const DeviceProfile s3 = DeviceProfile::galaxy_s3();
  // Expected: ~10 s at beta + alpha*8 for WiFi.
  const double expected_wifi =
      s3.wifi.active_power_mw(8.0) * 10.0 / 1000.0;
  EXPECT_NEAR(w.tracker.iface_j(net::InterfaceType::kWifi), expected_wifi,
              expected_wifi * 0.15);
  // Cellular stayed idle.
  EXPECT_LT(w.tracker.iface_j(net::InterfaceType::kLte), 0.3);
}

TEST(EnergyTrackerTest, PlatformPowerChargedOncePerActiveWindow) {
  TrackerWorld w(/*platform_mw=*/400.0);
  w.tracker.start();
  w.blast_wifi(8.0, 5.0);
  w.net.sim.run_until(sim::seconds(5));
  EXPECT_NEAR(w.tracker.platform_j(), 0.4 * 5.0, 0.25);
}

TEST(EnergyTrackerTest, NoPlatformPowerWhenIdle) {
  TrackerWorld w(/*platform_mw=*/400.0);
  w.tracker.start();
  w.net.sim.run_until(sim::seconds(5));
  EXPECT_DOUBLE_EQ(w.tracker.platform_j(), 0.0);
}

TEST(EnergyTrackerTest, CellularTailChargedAfterTransfer) {
  TrackerWorld w;
  w.tracker.start();
  // One cellular packet, then silence: promo + tail should dominate.
  w.net.sim.at(sim::milliseconds(100), [&] {
    net::Packet p;
    p.src = test::kCellAddr;
    p.dst = test::kServerAddr;
    p.payload = 100;
    w.net.cell_if->send(p);
  });
  w.net.sim.run_until(sim::seconds(15));
  const DeviceProfile s3 = DeviceProfile::galaxy_s3();
  // Roughly the Fig. 1 fixed overhead (promo+tail), measured dynamically.
  EXPECT_NEAR(w.tracker.iface_j(net::InterfaceType::kLte),
              s3.lte.fixed_overhead_j(), 2.0);
  EXPECT_TRUE(w.tracker.all_idle());
}

TEST(EnergyTrackerTest, SeriesMonotonicallyIncreases) {
  TrackerWorld w;
  w.tracker.start();
  w.blast_wifi(5.0, 3.0);
  w.net.sim.run_until(sim::seconds(3));
  const auto& series = w.tracker.energy_series();
  ASSERT_GT(series.size(), 10u);
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_GE(series[i].cumulative_j, series[i - 1].cumulative_j);
    EXPECT_GT(series[i].t_s, series[i - 1].t_s);
  }
}

TEST(EnergyTrackerTest, RateSeriesReflectsThroughput) {
  TrackerWorld w;
  w.tracker.start();
  w.blast_wifi(8.0, 5.0);
  w.net.sim.run_until(sim::seconds(5));
  const auto& rates = w.tracker.rate_series(net::InterfaceType::kWifi);
  ASSERT_FALSE(rates.empty());
  // Delivery instants sit exactly on sampling boundaries, so individual
  // windows may see 0 or 2 packets; the mean over the active period is
  // the meaningful check.
  double sum = 0.0;
  for (const auto& r : rates) sum += r.mbps;
  EXPECT_NEAR(sum / static_cast<double>(rates.size()), 8.0, 1.5);
}

TEST(EnergyTrackerTest, UntrackedInterfaceQueriesAreSafe) {
  TrackerWorld w;
  EXPECT_DOUBLE_EQ(w.tracker.iface_j(net::InterfaceType::kThreeG), 0.0);
  EXPECT_THROW(w.tracker.rate_series(net::InterfaceType::kThreeG),
               std::invalid_argument);
}

// Regression: mean_rx_mbps used to divide the interface's *lifetime* rx
// counter by the time since start(), so traffic that predated tracking
// inflated the mean. Only bytes received inside the tracked window count.
TEST(EnergyTrackerTest, MeanRxMbpsCountsOnlyBytesSinceStart) {
  TrackerWorld w;
  // 1 MB lands on the interface before tracking begins.
  net::Packet pre;
  pre.src = test::kServerAddr;
  pre.dst = test::kWifiAddr;
  pre.payload = 1'000'000;
  w.net.wifi_if->deliver(pre);
  w.net.sim.run_until(sim::seconds(1));

  w.tracker.start();
  w.net.sim.run_until(sim::seconds(11));
  // Nothing arrived while tracked: the mean is exactly zero (the broken
  // version reported ~0.8 Mbps from the pre-start megabyte).
  EXPECT_DOUBLE_EQ(w.tracker.mean_rx_mbps(net::InterfaceType::kWifi), 0.0);

  // 8 Mbps for 5 s, then idle to t=16 s: 5e6 bytes over 15 tracked
  // seconds. The pre-start megabyte would add ~0.53 Mbps on top.
  w.blast_wifi(8.0, 5.0);
  w.net.sim.run_until(sim::seconds(16));
  EXPECT_NEAR(w.tracker.mean_rx_mbps(net::InterfaceType::kWifi),
              8.0 * 5.0 / 15.0, 0.2);
}

// Regression: a byte counter that moves backwards (interface reset or
// reattach) used to wrap the unsigned window delta to ~2^64 and integrate
// an absurd power sample. The window is clamped to idle and surfaced via
// the metrics registry / trace warning instead.
TEST(EnergyTrackerTest, BackwardsByteCounterClampedNotWrapped) {
  TrackerWorld w;
  w.net.sim.trace().enable();
  w.tracker.start();
  w.blast_wifi(8.0, 2.0);
  w.net.sim.run_until(sim::seconds(2));
  w.net.sim.at(sim::seconds(2) + sim::milliseconds(50),
               [&] { w.net.wifi_if->reset_counters(); });
  w.net.sim.run_until(sim::seconds(4));

  // ~2 s of active WiFi plus idle: single-digit joules. The wrapped delta
  // produced ~1e12 J.
  EXPECT_LT(w.tracker.iface_j(net::InterfaceType::kWifi), 20.0);
  EXPECT_GE(w.net.sim.trace()
                .metrics()
                .counter("energy.clamped_byte_windows")
                .value(),
            1u);
#if EMPTCP_TRACE_COMPILED
  bool warned = false;
  for (const trace::Event& e : w.net.sim.trace().events()) {
    if (e.kind == trace::Kind::kWarning) warned = true;
  }
  EXPECT_TRUE(warned);
#endif
}

// Window-boundary seam of the hybrid fast path (DESIGN.md §13): a
// macro-step lands several sampling windows' worth of bytes on the
// interface counter in one instant. With the fluid rate declared, the
// tracker must meter the lump back out at that rate so every window's
// power sample sees what packet mode would have shown it — not one
// absurd-rate window followed by idle ones.
TEST(EnergyTrackerTest, FluidLumpMeteredAtDeclaredRate) {
  TrackerWorld w;
  w.tracker.start();
  // Declare 8 Mbps fluid advancement, then deliver the whole 5 s worth
  // of bytes (5 MB) as a single instantaneous counter jump.
  w.tracker.set_fluid_rate(*w.net.wifi_if, 8.0e6 / 8.0);
  w.net.sim.at(sim::milliseconds(50), [&] {
    net::Packet p;
    p.src = test::kServerAddr;
    p.dst = test::kWifiAddr;
    p.payload = 5'000'000;
    w.net.wifi_if->deliver(p);
  });
  w.net.sim.run_until(sim::seconds(5));
  w.tracker.clear_fluid_rate(*w.net.wifi_if);

  // Same analytic expectation as the smooth-delivery test above: ~5 s at
  // the 8 Mbps operating point. The unsmoothed lump would charge the
  // active baseline for a single window and idle for the other 49.
  const DeviceProfile s3 = DeviceProfile::galaxy_s3();
  const double expected = s3.wifi.active_power_mw(8.0) * 5.0 / 1000.0;
  EXPECT_NEAR(w.tracker.iface_j(net::InterfaceType::kWifi), expected,
              expected * 0.12);

  // Every metered window sits at the declared rate, not 400 Mbps.
  const auto& rates = w.tracker.rate_series(net::InterfaceType::kWifi);
  ASSERT_FALSE(rates.empty());
  for (const auto& r : rates) EXPECT_LE(r.mbps, 8.5);
}

// The metering backlog conserves bytes exactly: whatever the declared
// rate holds back is released when the fluid rate is cleared (packet
// resume), so the rate series integrates to the true byte total.
TEST(EnergyTrackerTest, ClearFluidRateReleasesBacklog) {
  TrackerWorld w;
  w.tracker.start();
  w.tracker.set_fluid_rate(*w.net.wifi_if, 100'000.0);  // 0.8 Mbps
  w.net.sim.at(sim::milliseconds(50), [&] {
    net::Packet p;
    p.src = test::kServerAddr;
    p.dst = test::kWifiAddr;
    p.payload = 1'000'000;
    w.net.wifi_if->deliver(p);
  });
  // 1 s of metering drains only ~100 KB; clearing must release the rest
  // into the next window instead of losing it.
  w.net.sim.at(sim::seconds(1), [&] {
    w.tracker.clear_fluid_rate(*w.net.wifi_if);
  });
  w.net.sim.run_until(sim::seconds(2));

  const auto& rates = w.tracker.rate_series(net::InterfaceType::kWifi);
  double metered_bytes = 0.0;
  for (const auto& r : rates) metered_bytes += r.mbps * 1e6 / 8.0 * 0.1;
  EXPECT_NEAR(metered_bytes, 1'000'000.0, 5'000.0);
}

TEST(EnergyTrackerTest, StopFreezesTotals) {
  TrackerWorld w;
  w.tracker.start();
  w.net.sim.run_until(sim::seconds(2));
  w.tracker.stop();
  const double at_stop = w.tracker.total_j();
  w.net.sim.run_until(sim::seconds(10));
  EXPECT_DOUBLE_EQ(w.tracker.total_j(), at_stop);
}

// Regression: stop() used to leave its already-scheduled next tick alive.
// A stop()/start() cycle then ran two interleaved tick chains — energy
// integrated nearly twice over and the series carried duplicate
// timestamps. Stopping exactly on a window boundary makes the stale tick
// land at the same instant as the restarted chain's first tick, the worst
// case for the duplication.
TEST(EnergyTrackerTest, RestartAfterStopRunsSingleSamplingChain) {
  TrackerWorld w;
  w.tracker.start();
  w.net.sim.run_until(sim::seconds(1));  // tick lands on the boundary
  w.tracker.stop();
  w.tracker.start();
  w.net.sim.run_until(sim::seconds(10));

  const DeviceProfile s3 = DeviceProfile::galaxy_s3();
  // One live chain integrates idle power over the 10 tracked seconds; a
  // leaked second chain would nearly double this.
  const double expected = (s3.wifi.idle_mw + s3.lte.idle_mw) * 10.0 / 1000.0;
  EXPECT_NEAR(w.tracker.total_j(), expected, expected * 0.05);

  const auto& series = w.tracker.energy_series();
  ASSERT_GT(series.size(), 10u);
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_GT(series[i].t_s, series[i - 1].t_s)
        << "duplicate sample timestamp at index " << i;
  }
}

}  // namespace
}  // namespace emptcp::energy
