#include "energy/radio.hpp"

#include <gtest/gtest.h>

#include "energy/device_profile.hpp"

namespace emptcp::energy {
namespace {

InterfacePowerParams lte_params() { return DeviceProfile::galaxy_s3().lte; }

TEST(RadioTest, StartsIdle) {
  RadioModel radio(lte_params());
  EXPECT_EQ(radio.state_at(0), RadioState::kIdle);
  EXPECT_EQ(radio.activations(), 0);
}

TEST(RadioTest, FirstTxTriggersPromotionWithDelay) {
  RadioModel radio(lte_params());
  const sim::Duration delay = radio.on_activity(0, 100, /*is_tx=*/true);
  EXPECT_EQ(delay, sim::from_seconds(lte_params().promo_s));
  EXPECT_EQ(radio.activations(), 1);
  EXPECT_EQ(radio.state_at(sim::milliseconds(100)), RadioState::kPromo);
}

TEST(RadioTest, TxDuringPromotionPaysRemainingDelayOnly) {
  RadioModel radio(lte_params());
  radio.on_activity(0, 100, true);
  const sim::Duration d2 =
      radio.on_activity(sim::milliseconds(100), 100, true);
  EXPECT_EQ(d2, sim::from_seconds(lte_params().promo_s) -
                    sim::milliseconds(100));
  EXPECT_EQ(radio.activations(), 1);  // still the same activation
}

TEST(RadioTest, ActiveThenTailThenIdle) {
  RadioModel radio(lte_params());
  radio.on_activity(0, 100, true);
  const sim::Time after_promo = sim::milliseconds(400);
  radio.on_activity(after_promo, 1000, false);  // rx refreshes activity
  EXPECT_EQ(radio.state_at(after_promo + sim::milliseconds(50)),
            RadioState::kActive);
  // 1 s after last activity: inside the 11.576 s tail.
  EXPECT_EQ(radio.state_at(after_promo + sim::seconds(1)),
            RadioState::kTail);
  // Well past the tail: idle again.
  EXPECT_EQ(radio.state_at(after_promo + sim::seconds(13)),
            RadioState::kIdle);
}

TEST(RadioTest, RxDoesNotPayPromotionDelay) {
  RadioModel radio(lte_params());
  const sim::Duration d = radio.on_activity(0, 100, /*is_tx=*/false);
  EXPECT_EQ(d, 0);
}

TEST(RadioTest, SecondActivationAfterIdleCountsAgain) {
  RadioModel radio(lte_params());
  radio.on_activity(0, 100, true);
  const sim::Time much_later = sim::seconds(60);
  EXPECT_EQ(radio.state_at(much_later), RadioState::kIdle);
  radio.on_activity(much_later, 100, true);
  EXPECT_EQ(radio.activations(), 2);
}

TEST(RadioTest, PowerByState) {
  const InterfacePowerParams p = lte_params();
  RadioModel radio(p);
  // Idle.
  EXPECT_DOUBLE_EQ(radio.power_mw_at(0, 0.0, false), p.idle_mw);
  radio.on_activity(0, 100, true);
  // Promo (regardless of bytes).
  EXPECT_DOUBLE_EQ(
      radio.power_mw_at(sim::milliseconds(100), 5.0, true), p.promo_mw);
  // Active with throughput-dependent power.
  const sim::Time active_t = sim::milliseconds(300);
  radio.on_activity(active_t, 1000, false);
  EXPECT_DOUBLE_EQ(radio.power_mw_at(active_t, 5.0, true),
                   p.active_power_mw(5.0));
  // Tail.
  EXPECT_DOUBLE_EQ(
      radio.power_mw_at(active_t + sim::seconds(2), 0.0, false), p.tail_mw);
}

TEST(RadioTest, WifiTailIsShort) {
  RadioModel radio(DeviceProfile::galaxy_s3().wifi);
  radio.on_activity(0, 100, true);
  radio.on_activity(sim::milliseconds(200), 100, false);
  // WiFi's 0.6 s PSM-exit hold has drained after 1 s.
  EXPECT_EQ(radio.state_at(sim::milliseconds(200) + sim::seconds(1)),
            RadioState::kIdle);
}

}  // namespace
}  // namespace emptcp::energy
