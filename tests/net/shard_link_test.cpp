// CrossShardLink: a Link whose far end lives in another ShardEngine place.
// Contracts under test: packets cross with transmission + declared
// propagation delay and intact contents; zero propagation is rejected (it
// would collapse the conservative window); rate/loss modulation touches
// only the inner link and never the lookahead matrix; set_prop_delay goes
// through the engine's barrier-applied update path.
#include "net/shard_link.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/shard_engine.hpp"
#include "sim/simulation.hpp"

namespace emptcp::net {
namespace {

Packet make_packet(std::uint32_t payload) {
  Packet p;
  p.src = 1;
  p.dst = 2;
  p.payload = payload;
  return p;
}

struct Topology {
  sim::Simulation a{1};
  sim::Simulation b{2};
  sim::ShardEngine eng{2};
  std::size_t pa = 0;
  std::size_t pb = 0;
  CrossShardLink::Port port;

  Topology() {
    pa = eng.add_place(a, "a");
    pb = eng.add_place(b, "b");
  }

  CrossShardLink make(Link::Config cfg) {
    return CrossShardLink(a, eng, pa, pb, port, cfg);
  }
};

TEST(CrossShardLinkTest, DeliversAfterTransmissionPlusPropagation) {
  Topology t;
  Link::Config cfg;
  cfg.rate_mbps = 8.0;  // 1000 wire bytes -> 1 ms
  cfg.prop_delay = sim::milliseconds(10);
  CrossShardLink cross = t.make(cfg);

  sim::Time delivered_at = -1;
  Packet got;
  t.port.set_receiver([&](const Packet& p) {
    delivered_at = t.b.now();
    got = p;
  });
  cross.link().send(make_packet(960));
  t.eng.run_until(sim::seconds(1));

  // Same arrival time a local Link would produce: the propagation simply
  // moved from the link model to the engine edge.
  EXPECT_EQ(delivered_at, sim::milliseconds(11));
  EXPECT_EQ(got.src, 1u);
  EXPECT_EQ(got.dst, 2u);
  EXPECT_EQ(got.payload, 960u);
  EXPECT_EQ(t.eng.cross_messages(), 1u);
}

TEST(CrossShardLinkTest, BackToBackPacketsKeepSerialization) {
  Topology t;
  Link::Config cfg;
  cfg.rate_mbps = 8.0;
  cfg.prop_delay = sim::milliseconds(5);
  CrossShardLink cross = t.make(cfg);

  std::vector<sim::Time> arrivals;
  t.port.set_receiver([&](const Packet&) { arrivals.push_back(t.b.now()); });
  cross.link().send(make_packet(960));
  cross.link().send(make_packet(960));
  t.eng.run_until(sim::seconds(1));

  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], sim::milliseconds(6));  // 1 ms tx + 5 ms prop
  EXPECT_EQ(arrivals[1], sim::milliseconds(7));  // serialized behind it
}

TEST(CrossShardLinkTest, ZeroPropagationIsRejectedLoudly) {
  Topology t;
  Link::Config cfg;
  cfg.prop_delay = 0;
  EXPECT_THROW(t.make(cfg), std::invalid_argument);
  Link::Config negative;
  negative.prop_delay = -sim::milliseconds(1);
  EXPECT_THROW(t.make(negative), std::invalid_argument);
}

TEST(CrossShardLinkTest, RateAndLossChangesNeverTouchTheLookahead) {
  Topology t;
  Link::Config cfg;
  cfg.rate_mbps = 50.0;
  cfg.prop_delay = sim::milliseconds(10);
  CrossShardLink cross = t.make(cfg);

  // What a WifiChannel-style modulator does at runtime: rate and loss.
  cross.link().set_rate(1.0);
  cross.link().set_loss_prob(0.5);
  EXPECT_EQ(cross.prop_delay(), sim::milliseconds(10));
  EXPECT_EQ(t.eng.partition().min_lookahead(), sim::milliseconds(10));
  EXPECT_EQ(t.eng.partition().edge(cross.edge_id()).lookahead,
            sim::milliseconds(10));
}

TEST(CrossShardLinkTest, SetPropDelayRecomputesThroughTheBarrier) {
  Topology t;
  Link::Config cfg;
  cfg.rate_mbps = 8.0;
  cfg.prop_delay = sim::milliseconds(10);
  CrossShardLink cross = t.make(cfg);

  EXPECT_THROW(cross.set_prop_delay(0), std::invalid_argument);
  EXPECT_THROW(cross.set_prop_delay(-1), std::invalid_argument);

  // Before the first run the update applies immediately.
  cross.set_prop_delay(sim::milliseconds(4));
  EXPECT_EQ(cross.prop_delay(), sim::milliseconds(4));
  EXPECT_EQ(t.eng.partition().min_lookahead(), sim::milliseconds(4));

  // Mid-run the update lands at the next barrier, and packets sent after
  // it ship with the new propagation.
  std::vector<sim::Time> arrivals;
  t.port.set_receiver([&](const Packet&) { arrivals.push_back(t.b.now()); });
  t.a.at(sim::milliseconds(1), [&] {
    cross.set_prop_delay(sim::milliseconds(30));
  });
  t.a.at(sim::seconds(1), [&] { cross.link().send(make_packet(960)); });
  t.eng.run_until(sim::seconds(2));

  EXPECT_EQ(cross.prop_delay(), sim::milliseconds(30));
  ASSERT_EQ(arrivals.size(), 1u);
  // 1 s send + 1 ms transmission + 30 ms propagation.
  EXPECT_EQ(arrivals[0],
            sim::seconds(1) + sim::milliseconds(1) + sim::milliseconds(30));
}

}  // namespace
}  // namespace emptcp::net
