#include "net/link.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulation.hpp"

namespace emptcp::net {
namespace {

Packet make_packet(std::uint32_t payload) {
  Packet p;
  p.src = 1;
  p.dst = 2;
  p.payload = payload;
  return p;
}

class LinkTest : public ::testing::Test {
 protected:
  sim::Simulation sim{1};
};

TEST_F(LinkTest, DeliversAfterTransmissionPlusPropagation) {
  Link::Config cfg;
  cfg.rate_mbps = 8.0;  // 1 byte per microsecond
  cfg.prop_delay = sim::milliseconds(10);
  Link link(sim, cfg);

  sim::Time delivered_at = -1;
  link.set_receiver([&](const Packet&) { delivered_at = sim.now(); });
  link.send(make_packet(960));  // 1000 wire bytes -> 1 ms at 8 Mbps

  sim.run();
  EXPECT_EQ(delivered_at, sim::milliseconds(11));
  EXPECT_EQ(link.delivered_packets(), 1u);
}

TEST_F(LinkTest, SerializesBackToBackPackets) {
  Link::Config cfg;
  cfg.rate_mbps = 8.0;
  cfg.prop_delay = 0;
  Link link(sim, cfg);

  std::vector<sim::Time> arrivals;
  link.set_receiver([&](const Packet&) { arrivals.push_back(sim.now()); });
  link.send(make_packet(960));
  link.send(make_packet(960));
  link.send(make_packet(960));

  sim.run();
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_EQ(arrivals[0], sim::milliseconds(1));
  EXPECT_EQ(arrivals[1], sim::milliseconds(2));
  EXPECT_EQ(arrivals[2], sim::milliseconds(3));
}

TEST_F(LinkTest, DropTailWhenQueueFull) {
  Link::Config cfg;
  cfg.rate_mbps = 0.008;  // very slow so queue builds
  cfg.queue_limit_bytes = 2500;
  Link link(sim, cfg);
  int delivered = 0;
  link.set_receiver([&](const Packet&) { ++delivered; });

  for (int i = 0; i < 5; ++i) link.send(make_packet(960));  // 1000 B each

  EXPECT_GT(link.dropped_queue(), 0u);
  sim.run();
  EXPECT_EQ(delivered + static_cast<int>(link.dropped_queue()), 5);
}

TEST_F(LinkTest, OversizedPacketPassesOnEmptyQueue) {
  Link::Config cfg;
  cfg.queue_limit_bytes = 100;  // smaller than any packet
  Link link(sim, cfg);
  int delivered = 0;
  link.set_receiver([&](const Packet&) { ++delivered; });
  link.send(make_packet(960));
  sim.run();
  EXPECT_EQ(delivered, 1);  // no livelock on tiny queues
}

TEST_F(LinkTest, RandomLossDropsApproximatelyAtRate) {
  Link::Config cfg;
  cfg.rate_mbps = 1000.0;
  cfg.loss_prob = 0.2;
  cfg.queue_limit_bytes = 8 << 20;  // no queue drops in this test
  Link link(sim, cfg);
  int delivered = 0;
  link.set_receiver([&](const Packet&) { ++delivered; });

  const int n = 5000;
  for (int i = 0; i < n; ++i) link.send(make_packet(100));
  sim.run();
  const double loss_rate =
      static_cast<double>(link.dropped_loss()) / static_cast<double>(n);
  EXPECT_NEAR(loss_rate, 0.2, 0.03);
  EXPECT_EQ(delivered, n - static_cast<int>(link.dropped_loss()));
}

TEST_F(LinkTest, RateChangeAffectsSubsequentPackets) {
  Link::Config cfg;
  cfg.rate_mbps = 8.0;
  cfg.prop_delay = 0;
  Link link(sim, cfg);
  std::vector<sim::Time> arrivals;
  link.set_receiver([&](const Packet&) { arrivals.push_back(sim.now()); });

  link.send(make_packet(960));  // 1 ms at 8 Mbps
  sim.run();
  link.set_rate(4.0);
  link.send(make_packet(960));  // 2 ms at 4 Mbps
  sim.run();

  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], sim::milliseconds(1));
  EXPECT_EQ(arrivals[1] - arrivals[0], sim::milliseconds(2));
}

TEST_F(LinkTest, SetRateClampsToPositive) {
  Link::Config cfg;
  Link link(sim, cfg);
  link.set_rate(0.0);
  EXPECT_GT(link.rate_mbps(), 0.0);
  link.set_rate(-5.0);
  EXPECT_GT(link.rate_mbps(), 0.0);
}

TEST_F(LinkTest, ZeroInitialRateThrows) {
  Link::Config cfg;
  cfg.rate_mbps = 0.0;
  EXPECT_THROW(Link(sim, cfg), std::invalid_argument);
}

TEST_F(LinkTest, PendingDelayAppliesOnceToNextDelivery) {
  Link::Config cfg;
  cfg.rate_mbps = 8.0;
  cfg.prop_delay = sim::milliseconds(1);
  Link link(sim, cfg);
  std::vector<sim::Time> arrivals;
  link.set_receiver([&](const Packet&) { arrivals.push_back(sim.now()); });

  link.add_pending_delay(sim::milliseconds(200));  // cellular promotion
  link.send(make_packet(960));
  sim.run();
  link.send(make_packet(960));
  sim.run();

  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], sim::milliseconds(202));  // 1 tx + 1 prop + 200
  EXPECT_EQ(arrivals[1] - arrivals[0], sim::milliseconds(2));  // no extra
}

TEST_F(LinkTest, CountsDeliveredBytes) {
  Link::Config cfg;
  Link link(sim, cfg);
  link.set_receiver([](const Packet&) {});
  link.send(make_packet(960));
  link.send(make_packet(460));
  sim.run();
  EXPECT_EQ(link.delivered_bytes(), 1000u + 500u);
}

}  // namespace
}  // namespace emptcp::net
