#include "net/packet.hpp"

#include <gtest/gtest.h>

namespace emptcp::net {
namespace {

TEST(PacketTest, WireBytesIncludeHeader) {
  Packet p;
  p.payload = 1000;
  EXPECT_EQ(p.wire_bytes(), 1000u + Packet::kHeaderBytes);
  Packet ack;
  EXPECT_EQ(ack.wire_bytes(), Packet::kHeaderBytes);
}

TEST(PacketTest, FlowAtReceiverSwapsPerspective) {
  Packet p;
  p.src = 1;
  p.sport = 5000;
  p.dst = 10;
  p.dport = 80;
  const FlowKey k = p.flow_at_receiver();
  EXPECT_EQ(k.local_addr, 10u);
  EXPECT_EQ(k.local_port, 80);
  EXPECT_EQ(k.remote_addr, 1u);
  EXPECT_EQ(k.remote_port, 5000);
}

TEST(PacketTest, FlowKeyEqualityAndHash) {
  const FlowKey a{1, 2, 3, 4};
  const FlowKey b{1, 2, 3, 4};
  const FlowKey c{1, 2, 3, 5};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  FlowKeyHash h;
  EXPECT_EQ(h(a), h(b));
  EXPECT_NE(h(a), h(c));  // not guaranteed in general, but true here
}

TEST(PacketTest, DescribeMentionsFlagsAndOptions) {
  Packet p;
  p.src = 1;
  p.dst = 2;
  p.syn = true;
  p.mp_capable = true;
  EXPECT_NE(p.describe().find("SYN"), std::string::npos);
  EXPECT_NE(p.describe().find("MP_CAPABLE"), std::string::npos);

  Packet d;
  d.payload = 100;
  d.seq = 42;
  d.dss = DssMapping{7, 0, 100};
  d.data_ack = 55;
  const std::string s = d.describe();
  EXPECT_NE(s.find("seq=42"), std::string::npos);
  EXPECT_NE(s.find("DSS[7+100]"), std::string::npos);
  EXPECT_NE(s.find("DACK=55"), std::string::npos);

  Packet prio;
  prio.mp_prio = MpPrio{true};
  EXPECT_NE(prio.describe().find("backup"), std::string::npos);
}

TEST(PacketTest, DefaultsAreInert) {
  Packet p;
  EXPECT_FALSE(p.syn);
  EXPECT_FALSE(p.fin);
  EXPECT_FALSE(p.rst);
  EXPECT_FALSE(p.is_ack);
  EXPECT_FALSE(p.mp_capable);
  EXPECT_FALSE(p.mp_join);
  EXPECT_FALSE(p.mp_backup);
  EXPECT_FALSE(p.dss.has_value());
  EXPECT_FALSE(p.data_ack.has_value());
  EXPECT_FALSE(p.data_fin.has_value());
  EXPECT_FALSE(p.udp);
  EXPECT_TRUE(p.sack.empty());
  EXPECT_EQ(p.app_tag, 0u);
}

TEST(SackListTest, EnforcesMaxBlocksBound) {
  // The inline capacity *is* kMaxSackBlocks: generation can never exceed
  // the protocol bound because pushes beyond capacity are dropped.
  SackList s;
  for (std::uint64_t i = 0; i < Packet::kMaxSackBlocks + 10; ++i) {
    s.emplace_back(i * 100, i * 100 + 50);
  }
  EXPECT_EQ(s.size(), Packet::kMaxSackBlocks);
  EXPECT_TRUE(s.full());
  // The retained blocks are the first kMaxSackBlocks, in insertion order.
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(s[i].first, i * 100);
    EXPECT_EQ(s[i].second, i * 100 + 50);
  }
}

TEST(SackListTest, ClearAndRefill) {
  SackList s;
  s.emplace_back(1, 2);
  s.emplace_back(3, 4);
  EXPECT_EQ(s.size(), 2u);
  s.clear();
  EXPECT_TRUE(s.empty());
  s.emplace_back(5, 6);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0], (SackList::Block{5, 6}));
}

TEST(SackListTest, CopyPreservesLivePrefix) {
  Packet p;
  p.sack.emplace_back(10, 20);
  p.sack.emplace_back(30, 40);
  const Packet q = p;  // packet copy carries the SACK blocks
  ASSERT_EQ(q.sack.size(), 2u);
  EXPECT_EQ(q.sack[0], (SackList::Block{10, 20}));
  EXPECT_EQ(q.sack[1], (SackList::Block{30, 40}));
  // Iteration covers exactly the live blocks.
  std::size_t n = 0;
  for (const SackList::Block& b : q.sack) {
    (void)b;
    ++n;
  }
  EXPECT_EQ(n, 2u);
}

}  // namespace
}  // namespace emptcp::net
