#include <gtest/gtest.h>

#include "net/channel/mobility.hpp"
#include "net/channel/onoff_bandwidth.hpp"
#include "net/channel/wifi_channel.hpp"
#include "sim/simulation.hpp"

namespace emptcp::net {
namespace {

class ChannelTest : public ::testing::Test {
 protected:
  sim::Simulation sim{1};
};

TEST_F(ChannelTest, WifiChannelSharesCapacityAmongActiveStations) {
  WifiChannel ch(sim, {15.0, 0.01});
  Link link(sim, Link::Config{});
  ch.govern(link);
  EXPECT_DOUBLE_EQ(link.rate_mbps(), 15.0);

  const std::size_t s1 = ch.register_interferer();
  const std::size_t s2 = ch.register_interferer();
  ch.set_interferer_active(s1, true);
  EXPECT_DOUBLE_EQ(link.rate_mbps(), 7.5);
  EXPECT_DOUBLE_EQ(link.loss_prob(), 0.01);

  ch.set_interferer_active(s2, true);
  EXPECT_DOUBLE_EQ(link.rate_mbps(), 5.0);
  EXPECT_DOUBLE_EQ(link.loss_prob(), 0.02);

  ch.set_interferer_active(s1, false);
  ch.set_interferer_active(s2, false);
  EXPECT_DOUBLE_EQ(link.rate_mbps(), 15.0);
  EXPECT_DOUBLE_EQ(link.loss_prob(), 0.0);
}

TEST_F(ChannelTest, WifiChannelCapacityChangeReappliesContention) {
  WifiChannel ch(sim, {15.0, 0.01});
  Link link(sim, Link::Config{});
  ch.govern(link);
  const std::size_t s1 = ch.register_interferer();
  ch.set_interferer_active(s1, true);
  ch.set_capacity(10.0);  // mobility moved us
  EXPECT_DOUBLE_EQ(link.rate_mbps(), 5.0);
}

TEST_F(ChannelTest, WifiChannelIgnoresBogusIndexAndRedundantToggle) {
  WifiChannel ch(sim, {15.0, 0.01});
  Link link(sim, Link::Config{});
  ch.govern(link);
  ch.set_interferer_active(42, true);  // unknown slot: no-op
  EXPECT_DOUBLE_EQ(link.rate_mbps(), 15.0);
  const std::size_t s = ch.register_interferer();
  ch.set_interferer_active(s, false);  // already off: no-op
  EXPECT_EQ(ch.active_interferers(), 0u);
}

TEST_F(ChannelTest, OnOffBandwidthAlternatesBetweenRates) {
  Link link(sim, Link::Config{});
  Link link2(sim, Link::Config{});
  OnOffBandwidth::Config cfg;
  cfg.high_mbps = 12.0;
  cfg.low_mbps = 0.8;
  cfg.mean_high_s = 5.0;
  cfg.mean_low_s = 5.0;
  OnOffBandwidth onoff(sim, link, cfg);
  onoff.also_govern(link2);
  onoff.start();
  EXPECT_DOUBLE_EQ(link.rate_mbps(), 12.0);
  EXPECT_DOUBLE_EQ(link2.rate_mbps(), 12.0);

  sim.run_until(sim::seconds(200));
  // Over 200 s with 5 s mean holding times we expect many transitions.
  EXPECT_GT(onoff.transitions().size(), 10u);
  // Links stay in lockstep and only ever take the two configured rates.
  EXPECT_DOUBLE_EQ(link.rate_mbps(), link2.rate_mbps());
  for (const auto& tr : onoff.transitions()) {
    EXPECT_TRUE(tr.rate_mbps == 12.0 || tr.rate_mbps == 0.8);
  }
  // Adjacent transitions alternate rates.
  for (std::size_t i = 1; i < onoff.transitions().size(); ++i) {
    EXPECT_NE(onoff.transitions()[i - 1].rate_mbps,
              onoff.transitions()[i].rate_mbps);
  }
}

TEST_F(ChannelTest, OnOffHoldingTimesHaveConfiguredMean) {
  Link link(sim, Link::Config{});
  OnOffBandwidth::Config cfg;
  cfg.mean_high_s = 40.0;
  cfg.mean_low_s = 40.0;
  OnOffBandwidth onoff(sim, link, cfg);
  onoff.start();
  sim.run_until(sim::seconds(40.0 * 400));
  const auto& tr = onoff.transitions();
  ASSERT_GT(tr.size(), 50u);
  const double total = sim::to_seconds(tr.back().at - tr.front().at);
  const double mean_hold = total / static_cast<double>(tr.size() - 1);
  EXPECT_NEAR(mean_hold, 40.0, 6.0);
}

TEST_F(ChannelTest, MobilityRateFallsWithDistanceAndFloors) {
  WifiChannel ch(sim, {20.0, 0.0});
  auto cfg = MobilityModel::umass_corridor_route();
  MobilityModel mob(sim, ch, cfg);

  // Near the AP at t=0 (5 m of a 30 m range).
  EXPECT_GT(mob.rate_at(0.0), 15.0);
  // Far end of the corridor (~45 s) is outside usable range.
  EXPECT_DOUBLE_EQ(mob.rate_at(45.0), cfg.floor_mbps);
  // Paper: WiFi collapses in the 25-40 s window.
  EXPECT_LT(mob.rate_at(35.0), 2.0);
  // Passing the AP again around 110 s restores throughput.
  EXPECT_GT(mob.rate_at(110.0), 15.0);
}

TEST_F(ChannelTest, MobilityDrivesChannelCapacity) {
  WifiChannel ch(sim, {20.0, 0.0});
  Link link(sim, Link::Config{});
  ch.govern(link);
  MobilityModel mob(sim, ch, MobilityModel::umass_corridor_route());
  mob.start();
  sim.run_until(sim::seconds(45));
  EXPECT_LT(link.rate_mbps(), 1.0);  // out of usable range at 45 s
  sim.run_until(sim::seconds(110));
  EXPECT_GT(link.rate_mbps(), 15.0);  // right next to the AP
}

TEST_F(ChannelTest, MobilityPositionInterpolatesLinearly) {
  WifiChannel ch(sim, {20.0, 0.0});
  MobilityModel::Config cfg;
  cfg.route = {{0.0, 0.0, 0.0}, {10.0, 10.0, 0.0}};
  MobilityModel mob(sim, ch, cfg);
  const auto [x, y] = mob.position_at(5.0);
  EXPECT_DOUBLE_EQ(x, 5.0);
  EXPECT_DOUBLE_EQ(y, 0.0);
  // Clamps beyond the route.
  EXPECT_DOUBLE_EQ(mob.position_at(99.0).first, 10.0);
  EXPECT_DOUBLE_EQ(mob.position_at(-1.0).first, 0.0);
}

TEST_F(ChannelTest, MobilityRejectsBadRoutes) {
  WifiChannel ch(sim, {20.0, 0.0});
  MobilityModel::Config cfg;
  cfg.route = {{0.0, 0.0, 0.0}};
  EXPECT_THROW(MobilityModel(sim, ch, cfg), std::invalid_argument);
  cfg.route = {{0.0, 0.0, 0.0}, {0.0, 1.0, 1.0}};  // non-increasing time
  EXPECT_THROW(MobilityModel(sim, ch, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace emptcp::net
