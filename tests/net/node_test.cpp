#include "net/node.hpp"

#include <gtest/gtest.h>

#include "net/link.hpp"
#include "sim/simulation.hpp"

namespace emptcp::net {
namespace {

class NodeTest : public ::testing::Test {
 protected:
  NodeTest()
      : a(sim, "a"),
        b(sim, "b"),
        ab(sim, Link::Config{}),
        ba(sim, Link::Config{}) {
    ifa = &a.add_interface({InterfaceType::kWifi, 1, "a0"});
    ifb = &b.add_interface({InterfaceType::kEthernet, 2, "b0"});
    ifa->set_default_route(ab);
    ifb->set_default_route(ba);
    ab.set_receiver([this](const Packet& p) { ifb->deliver(p); });
    ba.set_receiver([this](const Packet& p) { ifa->deliver(p); });
  }

  Packet packet(Port sport, Port dport, bool syn = false) {
    Packet p;
    p.src = 1;
    p.dst = 2;
    p.sport = sport;
    p.dport = dport;
    p.syn = syn;
    p.payload = 100;
    return p;
  }

  sim::Simulation sim{1};
  net::Node a, b;
  Link ab, ba;
  NetworkInterface* ifa = nullptr;
  NetworkInterface* ifb = nullptr;
};

TEST_F(NodeTest, DeliversToRegisteredFlow) {
  int got = 0;
  b.register_flow(FlowKey{2, 80, 1, 5555}, [&](const Packet&) { ++got; });
  a.send(packet(5555, 80));
  sim.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(b.unmatched_packets(), 0u);
}

TEST_F(NodeTest, SynGoesToListenerWhenNoFlowMatches) {
  int accepted = 0;
  b.listen(80, [&](const Packet& p) {
    EXPECT_TRUE(p.syn);
    ++accepted;
  });
  a.send(packet(5555, 80, /*syn=*/true));
  sim.run();
  EXPECT_EQ(accepted, 1);
}

TEST_F(NodeTest, NonSynWithoutFlowIsUnmatched) {
  b.listen(80, [](const Packet&) { FAIL() << "listener got non-SYN"; });
  a.send(packet(5555, 80));
  sim.run();
  EXPECT_EQ(b.unmatched_packets(), 1u);
}

TEST_F(NodeTest, UnregisterStopsDelivery) {
  int got = 0;
  const FlowKey key{2, 80, 1, 5555};
  b.register_flow(key, [&](const Packet&) { ++got; });
  a.send(packet(5555, 80));
  sim.run();
  b.unregister_flow(key);
  a.send(packet(5555, 80));
  sim.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(b.unmatched_packets(), 1u);
}

TEST_F(NodeTest, HandlerMayUnregisterItselfWhileRunning) {
  const FlowKey key{2, 80, 1, 5555};
  int got = 0;
  b.register_flow(key, [&](const Packet&) {
    ++got;
    b.unregister_flow(key);  // must not invalidate the running handler
  });
  a.send(packet(5555, 80));
  sim.run();
  EXPECT_EQ(got, 1);
}

TEST_F(NodeTest, InterfaceLookupByAddressAndType) {
  EXPECT_EQ(&a.interface_for(1), ifa);
  EXPECT_THROW(a.interface_for(99), std::logic_error);
  EXPECT_EQ(a.interface_of_type(InterfaceType::kWifi), ifa);
  EXPECT_EQ(a.interface_of_type(InterfaceType::kLte), nullptr);
}

TEST_F(NodeTest, SendWithUnknownSourceThrows) {
  Packet p = packet(1, 2);
  p.src = 99;
  EXPECT_THROW(a.send(p), std::logic_error);
}

TEST_F(NodeTest, DownInterfaceDropsTraffic) {
  int got = 0;
  b.register_flow(FlowKey{2, 80, 1, 5555}, [&](const Packet&) { ++got; });
  ifa->set_up(false);
  a.send(packet(5555, 80));
  sim.run();
  EXPECT_EQ(got, 0);
  EXPECT_GT(ifa->dropped_down(), 0u);
  ifa->set_up(true);
  a.send(packet(5555, 80));
  sim.run();
  EXPECT_EQ(got, 1);
}

TEST_F(NodeTest, ByteCountersTrackWireBytes) {
  b.register_flow(FlowKey{2, 80, 1, 5555}, [](const Packet&) {});
  a.send(packet(5555, 80));  // 100 payload + 40 header
  sim.run();
  EXPECT_EQ(ifa->tx_bytes(), 140u);
  EXPECT_EQ(ifb->rx_bytes(), 140u);
}

TEST_F(NodeTest, RouteOverridesDefault) {
  // Packets to dst 3 go through a second link into the same node b.
  Link alt(sim, Link::Config{});
  auto& ifb2 = b.add_interface({InterfaceType::kEthernet, 3, "b1"});
  ifa->add_route(3, alt);
  alt.set_receiver([&](const Packet& p) { ifb2.deliver(p); });

  int via_alt = 0;
  b.register_flow(FlowKey{3, 80, 1, 5555}, [&](const Packet&) { ++via_alt; });
  Packet p = packet(5555, 80);
  p.dst = 3;
  a.send(p);
  sim.run();
  EXPECT_EQ(via_alt, 1);
}

TEST_F(NodeTest, AllocatePortReturnsDistinctPorts) {
  const Port p1 = a.allocate_port();
  const Port p2 = a.allocate_port();
  EXPECT_NE(p1, p2);
}

TEST_F(NodeTest, InvalidInterfaceAddressThrows) {
  EXPECT_THROW(a.add_interface({InterfaceType::kWifi, kAddrInvalid, "bad"}),
               std::invalid_argument);
}

}  // namespace
}  // namespace emptcp::net
