// Golden-trace determinism: a traced run is a pure function of
// (scenario, seed). The serialized JSONL must be byte-identical across
// repeated runs and across sequential vs parallel replication — the
// property that lets trace diffs double as a regression harness.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "app/scenario.hpp"
#include "runtime/replication.hpp"
#include "stats/trace_export.hpp"
#include "trace/trace.hpp"
#include "trace/trace_diff.hpp"

namespace emptcp {
namespace {

app::ScenarioConfig traced_config() {
  app::ScenarioConfig cfg;
  cfg.wifi.down_mbps = 12.0;
  cfg.cell.down_mbps = 9.0;
  // On-off WiFi so the net/channel layer emits rate-change events.
  cfg.wifi_onoff = true;
  cfg.onoff.high_mbps = 12.0;
  cfg.onoff.low_mbps = 0.8;
  cfg.onoff.mean_high_s = 5.0;
  cfg.onoff.mean_low_s = 5.0;
  cfg.trace = true;
  return cfg;
}

std::string traced_jsonl(const app::ScenarioConfig& cfg, app::Protocol p,
                         std::uint64_t seed) {
  app::Scenario s(cfg);
  const app::RunMetrics m = s.run_download(p, 256 * 1024, seed);
  return stats::trace_to_jsonl(m.trace_events, m.trace_metrics);
}

TEST(TraceDeterminismTest, SmallScenarioCoversEveryInstrumentedLayer) {
#if !EMPTCP_TRACE_COMPILED
  GTEST_SKIP() << "tracing compiled out (EMPTCP_TRACE=OFF)";
#endif
  app::Scenario s(traced_config());
  const app::RunMetrics m = s.run_download(app::Protocol::kMptcp,
                                           256 * 1024, 7);
  ASSERT_FALSE(m.trace_events.empty());

  std::set<trace::Kind> kinds;
  for (const trace::Event& e : m.trace_events) kinds.insert(e.kind);
  // One golden scenario, every instrumented layer present:
  EXPECT_TRUE(kinds.count(trace::Kind::kTcpState));     // tcp state machine
  EXPECT_TRUE(kinds.count(trace::Kind::kCwnd));         // tcp congestion
  EXPECT_TRUE(kinds.count(trace::Kind::kSrtt));         // tcp RTT estimator
  EXPECT_TRUE(kinds.count(trace::Kind::kSchedPick));    // mptcp scheduler
  EXPECT_TRUE(kinds.count(trace::Kind::kEnergySample)); // energy tracker
  EXPECT_TRUE(kinds.count(trace::Kind::kRadioState));   // radio model
  EXPECT_TRUE(kinds.count(trace::Kind::kChannelRate));  // net channel

  // The metrics registry rides along with non-trivial content.
  ASSERT_FALSE(m.trace_metrics.empty());
  bool saw_tcp_counter = false;
  for (const auto& ms : m.trace_metrics) {
    if (ms.name.rfind("tcp.", 0) == 0) saw_tcp_counter = true;
  }
  EXPECT_TRUE(saw_tcp_counter);

  // Timestamps never run backwards: the sink is filled from the
  // single-threaded event core in execution order.
  for (std::size_t i = 1; i < m.trace_events.size(); ++i) {
    EXPECT_GE(m.trace_events[i].t, m.trace_events[i - 1].t);
  }
}

TEST(TraceDeterminismTest, SameSeedSerializesByteIdentical) {
#if !EMPTCP_TRACE_COMPILED
  GTEST_SKIP() << "tracing compiled out (EMPTCP_TRACE=OFF)";
#endif
  const app::ScenarioConfig cfg = traced_config();
  const std::string a = traced_jsonl(cfg, app::Protocol::kEmptcp, 11);
  const std::string b = traced_jsonl(cfg, app::Protocol::kEmptcp, 11);
  const trace::TraceDiff d = trace::diff_trace_text(a, b);
  EXPECT_TRUE(d.identical) << d.describe();

  // Different seed drives a different on-off pattern: a genuinely
  // different trace (guards against the exporter flattening everything).
  const std::string c = traced_jsonl(cfg, app::Protocol::kEmptcp, 12);
  EXPECT_FALSE(trace::diff_trace_text(a, c).identical);
}

TEST(TraceDeterminismTest, SequentialAndParallelReplicationsByteIdentical) {
#if !EMPTCP_TRACE_COMPILED
  GTEST_SKIP() << "tracing compiled out (EMPTCP_TRACE=OFF)";
#endif
  const app::ScenarioConfig cfg = traced_config();
  const std::vector<app::Protocol> protocols = {app::Protocol::kMptcp,
                                                app::Protocol::kEmptcp};
  const std::vector<std::uint64_t> seeds = {7, 8};
  const auto run = [&cfg](const app::Protocol& p, std::uint64_t seed) {
    return traced_jsonl(cfg, p, seed);
  };
  // workers=1 forces the sequential order; workers=0 uses all cores
  // (respecting EMPTCP_JOBS — the ctest harness also runs this suite with
  // EMPTCP_JOBS=4 to pin the pool path).
  const auto sequential =
      runtime::run_replications(protocols, seeds, run, /*workers=*/1);
  const auto parallel =
      runtime::run_replications(protocols, seeds, run, /*workers=*/0);

  ASSERT_EQ(sequential.size(), parallel.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    ASSERT_EQ(sequential[i].size(), parallel[i].size());
    for (std::size_t j = 0; j < sequential[i].size(); ++j) {
      EXPECT_FALSE(sequential[i][j].empty());
      const trace::TraceDiff d =
          trace::diff_trace_text(sequential[i][j], parallel[i][j]);
      EXPECT_TRUE(d.identical)
          << "config " << i << " seed " << seeds[j] << ": " << d.describe();
    }
  }
}

}  // namespace
}  // namespace emptcp
