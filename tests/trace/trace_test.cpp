#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include <string>

#include "sim/simulation.hpp"
#include "stats/trace_export.hpp"
#include "trace/sink.hpp"
#include "trace/trace_diff.hpp"

namespace emptcp::trace {
namespace {

TEST(TraceSinkTest, DisabledByDefaultAndEmpty) {
  TraceSink sink;
  EXPECT_FALSE(sink.enabled());
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_TRUE(sink.events().empty());
}

TEST(TraceSinkTest, MacroGateSkipsArgumentEvaluationWhenFullyOff) {
  sim::Simulation sim(1);
  int evals = 0;
  auto stamp = [&] {
    ++evals;
    return sim::Time{0};
  };
  // Default state: retention off, flight recorder on — the macro must run
  // so the ring sees the event, but nothing lands in the trace stream.
  EMPTCP_TRACE(sim, cwnd(stamp(), 1, 2, 3));
#if EMPTCP_TRACE_COMPILED
  EXPECT_EQ(evals, 1);
  EXPECT_EQ(sim.trace().flight().total(), 1u);
#else
  EXPECT_EQ(evals, 0);
#endif
  EXPECT_EQ(sim.trace().size(), 0u);

  // Fully off (retention off + flight recorder off): neither the record
  // call nor its arguments run.
  sim.trace().flight_enable(false);
  EMPTCP_TRACE(sim, cwnd(stamp(), 1, 2, 3));
#if EMPTCP_TRACE_COMPILED
  EXPECT_EQ(evals, 1);
#else
  EXPECT_EQ(evals, 0);
#endif
  EXPECT_EQ(sim.trace().size(), 0u);

  sim.trace().enable();
  EMPTCP_TRACE(sim, cwnd(stamp(), 1, 2, 3));
#if EMPTCP_TRACE_COMPILED
  EXPECT_EQ(evals, 2);
  ASSERT_EQ(sim.trace().size(), 1u);
  EXPECT_EQ(sim.trace().events()[0].kind, Kind::kCwnd);
#else
  EXPECT_EQ(evals, 0);
  EXPECT_EQ(sim.trace().size(), 0u);
#endif
}

TEST(TraceSinkTest, TypedRecordsCarryTheirFields) {
  TraceSink sink;
  sink.enable();
  sink.tcp_state(sim::milliseconds(5), 42, "closed", "syn_sent");
  sink.sched_pick(sim::milliseconds(6), 1, "wifi", 4096, 1460);
  sink.mp_prio(sim::milliseconds(7), 1, "lte", true, "peer");
  sink.energy_sample(sim::milliseconds(8), 2, "lte", 7.5, 1210.0);
  sink.warning(sim::milliseconds(9), "energy.byte_counter_backwards", 100, 10);

  ASSERT_EQ(sink.size(), 5u);
  const auto& ev = sink.events();
  EXPECT_EQ(ev[0].kind, Kind::kTcpState);
  EXPECT_EQ(ev[0].t, sim::milliseconds(5));
  EXPECT_EQ(ev[0].id, 42u);
  EXPECT_STREQ(ev[0].label, "closed");
  EXPECT_STREQ(ev[0].label2, "syn_sent");

  EXPECT_EQ(ev[1].kind, Kind::kSchedPick);
  EXPECT_EQ(ev[1].i0, 4096);
  EXPECT_EQ(ev[1].i1, 1460);

  EXPECT_EQ(ev[2].kind, Kind::kMpPrio);
  EXPECT_EQ(ev[2].i0, 1);
  EXPECT_STREQ(ev[2].label2, "peer");

  EXPECT_EQ(ev[3].kind, Kind::kEnergySample);
  EXPECT_DOUBLE_EQ(ev[3].d0, 7.5);
  EXPECT_DOUBLE_EQ(ev[3].d1, 1210.0);

  EXPECT_EQ(ev[4].kind, Kind::kWarning);
  EXPECT_EQ(ev[4].i0, 100);
  EXPECT_EQ(ev[4].i1, 10);

  sink.clear();
  EXPECT_EQ(sink.size(), 0u);
}

TEST(TraceSinkTest, KindNamesAreStable) {
  EXPECT_STREQ(to_string(Kind::kTcpState), "tcp_state");
  EXPECT_STREQ(to_string(Kind::kCwnd), "cwnd");
  EXPECT_STREQ(to_string(Kind::kSrtt), "srtt");
  EXPECT_STREQ(to_string(Kind::kSchedPick), "sched_pick");
  EXPECT_STREQ(to_string(Kind::kMpPrio), "mp_prio");
  EXPECT_STREQ(to_string(Kind::kModeChange), "mode_change");
  EXPECT_STREQ(to_string(Kind::kRadioState), "radio_state");
  EXPECT_STREQ(to_string(Kind::kEnergySample), "energy_sample");
  EXPECT_STREQ(to_string(Kind::kChannelRate), "channel_rate");
  EXPECT_STREQ(to_string(Kind::kWarning), "warning");
}

TEST(MetricsTest, FindOrCreateReturnsStableHandles) {
  Metrics m;
  Counter& a = m.counter("tcp.retransmits");
  Counter& b = m.counter("tcp.retransmits");
  EXPECT_EQ(&a, &b);
  a.add();
  a.add(4);
  EXPECT_EQ(b.value(), 5u);

  Gauge& g = m.gauge("wifi.mbps");
  g.set(12.5);
  EXPECT_DOUBLE_EQ(m.gauge("wifi.mbps").value(), 12.5);

  // Growing the registry must not invalidate earlier handles.
  for (int i = 0; i < 64; ++i) {
    m.counter("c" + std::to_string(i));
  }
  a.add();
  EXPECT_EQ(m.counter("tcp.retransmits").value(), 6u);
}

TEST(MetricsTest, SnapshotIsRegistrationOrderCountersFirst) {
  Metrics m;
  m.gauge("g.one").set(1.5);
  m.counter("c.one").add(2);
  m.counter("c.two").add(3);
  m.gauge("g.two").set(-4.0);

  const auto snap = m.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap[0].name, "c.one");
  EXPECT_DOUBLE_EQ(snap[0].value, 2.0);
  EXPECT_EQ(snap[1].name, "c.two");
  EXPECT_DOUBLE_EQ(snap[1].value, 3.0);
  EXPECT_EQ(snap[2].name, "g.one");
  EXPECT_DOUBLE_EQ(snap[2].value, 1.5);
  EXPECT_EQ(snap[3].name, "g.two");
  EXPECT_DOUBLE_EQ(snap[3].value, -4.0);
}

TEST(TraceDiffTest, IdenticalTextDiffsClean) {
  const std::string text = "line one\nline two\n";
  const TraceDiff d = diff_trace_text(text, text);
  EXPECT_TRUE(d.identical);
  EXPECT_EQ(d.line, 0u);
}

TEST(TraceDiffTest, ReportsFirstDivergentLine) {
  const TraceDiff d = diff_trace_text("a\nb\nc\n", "a\nX\nc\n");
  EXPECT_FALSE(d.identical);
  EXPECT_EQ(d.line, 2u);
  EXPECT_EQ(d.a_line, "b");
  EXPECT_EQ(d.b_line, "X");
  EXPECT_FALSE(d.describe().empty());
}

TEST(TraceDiffTest, MissingTrailingLineReported) {
  const TraceDiff d = diff_trace_text("a\n", "a\nb\n");
  EXPECT_FALSE(d.identical);
  EXPECT_EQ(d.line, 2u);
  EXPECT_EQ(d.a_line, "<missing>");
  EXPECT_EQ(d.b_line, "b");
}

TEST(TraceExportTest, JsonlUsesPerKindSchemaNames) {
  TraceSink sink;
  sink.enable();
  sink.tcp_state(sim::milliseconds(1), 7, "syn_sent", "established");
  sink.cwnd(sim::milliseconds(2), 7, 14600, 65535);
  sink.mode_change(sim::milliseconds(3), "all_paths", "wifi_only", 12.5, 9.0);
  sink.metrics().counter("tcp.rtos").add(2);

  const std::string jsonl = stats::trace_to_jsonl(
      sink.events(), sink.metrics().snapshot());
  const std::string expected =
      "{\"t_ns\":1000000,\"kind\":\"tcp_state\",\"flow\":7,"
      "\"from\":\"syn_sent\",\"to\":\"established\"}\n"
      "{\"t_ns\":2000000,\"kind\":\"cwnd\",\"flow\":7,\"cwnd\":14600,"
      "\"ssthresh\":65535}\n"
      "{\"t_ns\":3000000,\"kind\":\"mode_change\",\"from\":\"all_paths\","
      "\"to\":\"wifi_only\",\"wifi_mbps\":12.5,\"cell_mbps\":9}\n"
      "{\"metric\":\"tcp.rtos\",\"value\":2}\n";
  EXPECT_EQ(jsonl, expected);
}

TEST(TraceExportTest, JsonlDoublesRoundTripShortest) {
  TraceSink sink;
  sink.enable();
  // 0.1 is not exactly representable; the formatter must still print the
  // shortest string that round-trips, not 17 digits of noise.
  sink.channel_rate(0, "onoff", 0.1, 1.0 / 3.0);
  const std::string jsonl = stats::trace_to_jsonl(sink.events());
  EXPECT_NE(jsonl.find("\"mbps\":0.1,"), std::string::npos) << jsonl;
  EXPECT_NE(jsonl.find("\"extra\":0.3333333333333333"), std::string::npos)
      << jsonl;
}

TEST(TraceExportTest, CsvHasFixedColumnsAndOneRowPerEvent) {
  TraceSink sink;
  sink.enable();
  sink.srtt(sim::milliseconds(4), 3, sim::milliseconds(50),
            sim::milliseconds(300));
  sink.warning(sim::milliseconds(5), "w", 1, 2);

  const std::string csv = stats::trace_to_csv(sink.events());
  EXPECT_EQ(csv.substr(0, csv.find('\n')),
            "t_ns,kind,id,label,label2,i0,i1,d0,d1");
  int lines = 0;
  for (char c : csv) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 3);  // header + 2 events
  EXPECT_NE(csv.find("srtt"), std::string::npos);
}

}  // namespace
}  // namespace emptcp::trace
