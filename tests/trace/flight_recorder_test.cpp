#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <set>
#include <stdexcept>
#include <string>

#include "sim/simulation.hpp"
#include "trace/sink.hpp"
#include "trace/trace.hpp"

namespace emptcp::trace {
namespace {

Event make_event(std::int64_t i) {
  Event e;
  e.t = i;
  e.kind = Kind::kCwnd;
  e.id = 1;
  e.i0 = i;
  return e;
}

TEST(FlightRecorderTest, RetainsOnlyTheLastCapacityEvents) {
  FlightRecorder fr;
  const std::int64_t n = static_cast<std::int64_t>(FlightRecorder::kCapacity) + 10;
  for (std::int64_t i = 0; i < n; ++i) fr.record(make_event(i));
  EXPECT_EQ(fr.total(), static_cast<std::uint64_t>(n));
  EXPECT_EQ(fr.size(), FlightRecorder::kCapacity);
  const std::vector<Event> tail = fr.tail();
  ASSERT_EQ(tail.size(), FlightRecorder::kCapacity);
  // Oldest retained is event 10, newest is n-1, in order.
  EXPECT_EQ(tail.front().i0, 10);
  EXPECT_EQ(tail.back().i0, n - 1);
  for (std::size_t i = 1; i < tail.size(); ++i) {
    EXPECT_EQ(tail[i].i0, tail[i - 1].i0 + 1);
  }
}

TEST(FlightRecorderTest, TailBeforeWraparoundIsOldestFirst) {
  FlightRecorder fr;
  for (std::int64_t i = 0; i < 5; ++i) fr.record(make_event(i));
  const std::vector<Event> tail = fr.tail();
  ASSERT_EQ(tail.size(), 5u);
  EXPECT_EQ(tail.front().i0, 0);
  EXPECT_EQ(tail.back().i0, 4);
  fr.clear();
  EXPECT_EQ(fr.size(), 0u);
  EXPECT_TRUE(fr.tail().empty());
}

TEST(FlightRecorderTest, DumpNamesKindsAndLabels) {
  FlightRecorder fr;
  Event e = make_event(7);
  e.kind = Kind::kMpPrio;
  e.label = "wifi";
  fr.record(e);
  const std::string text = fr.dump();
  EXPECT_NE(text.find("mp_prio"), std::string::npos);
  EXPECT_NE(text.find("wifi"), std::string::npos);
}

TEST(FlightRecorderTest, SinkFeedsRingWithoutRetention) {
  TraceSink sink;
  ASSERT_FALSE(sink.enabled());
  ASSERT_TRUE(sink.flight_enabled());
  sink.cwnd(sim::Time{1}, 1, 10, 5);
  EXPECT_EQ(sink.size(), 0u);        // nothing retained
  EXPECT_EQ(sink.flight().total(), 1u);  // but the ring saw it
  sink.flight_enable(false);
  EXPECT_FALSE(sink.recording());
  sink.enable();
  EXPECT_TRUE(sink.recording());
  sink.cwnd(sim::Time{2}, 1, 20, 10);
  EXPECT_EQ(sink.size(), 1u);
  EXPECT_EQ(sink.flight().total(), 1u);  // ring off: unchanged
}

TEST(FlightRecorderTest, DumpFilePathsNeverCollide) {
  namespace fs = std::filesystem;
  FlightRecorder fr;
  fr.record(make_event(1));

  // Unset: dumping is a no-op that reports "nothing written".
  ::unsetenv("EMPTCP_FLIGHT_DIR");
  EXPECT_EQ(dump_flight_to_file(fr, "ctx", "why"), "");

  const fs::path dir = fs::path(::testing::TempDir()) / "flight_dump_unique";
  fs::remove_all(dir);
  ::setenv("EMPTCP_FLIGHT_DIR", dir.string().c_str(), 1);
  // Same recorder, same context, repeated dumps — as happens when several
  // EMPTCP_JOBS workers hit failures in the same-named test or cell — must
  // land in distinct files, never overwrite each other.
  std::set<std::string> paths;
  for (int i = 0; i < 4; ++i) {
    const std::string p = dump_flight_to_file(fr, "same/context", "boom");
    ASSERT_FALSE(p.empty());
    EXPECT_TRUE(fs::exists(p)) << p;
    EXPECT_TRUE(paths.insert(p).second) << "collision: " << p;
    // The context is sanitized into the name (no path separators survive).
    EXPECT_NE(fs::path(p).filename().string().find("same-context"),
              std::string::npos);
  }
  ::unsetenv("EMPTCP_FLIGHT_DIR");
  fs::remove_all(dir);
}

TEST(FlightRecorderTest, CurrentSinkFollowsSimulationLifetime) {
  EXPECT_EQ(current_sink(), nullptr);
  {
    sim::Simulation outer(1);
    EXPECT_EQ(current_sink(), &outer.trace());
    {
      sim::Simulation inner(2);
      EXPECT_EQ(current_sink(), &inner.trace());
    }
    EXPECT_EQ(current_sink(), &outer.trace());
  }
  EXPECT_EQ(current_sink(), nullptr);
}

#if EMPTCP_TRACE_COMPILED
TEST(FlightRecorderTest, EventLoopExceptionDumpsTail) {
  sim::Simulation sim(1);
  EMPTCP_TRACE(sim, warning(sim.now(), "about-to-explode", 1, 2));
  sim.in(sim::Time{1}, [] { throw std::runtime_error("invariant violated"); });
  ::testing::internal::CaptureStderr();
  EXPECT_THROW(sim.run(), std::runtime_error);
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("flight recorder"), std::string::npos);
  EXPECT_NE(err.find("about-to-explode"), std::string::npos);
}
#endif

}  // namespace
}  // namespace emptcp::trace
