# CLI contract gate for emptcp-report: --help prints usage and exits 0;
# bad invocations print usage to stderr and exit 2 (never 0, never crash).
# Invoked by ctest with -DREPORT_TOOL=<path to emptcp-report>.
if(NOT DEFINED REPORT_TOOL)
  message(FATAL_ERROR "report_cli_gate: missing -DREPORT_TOOL")
endif()

function(expect_run rc_expected out_match err_match)
  execute_process(
    COMMAND ${REPORT_TOOL} ${ARGN}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL ${rc_expected})
    message(FATAL_ERROR
            "report_cli_gate: emptcp-report ${ARGN} exited ${rc}, "
            "expected ${rc_expected}\nstdout: ${out}\nstderr: ${err}")
  endif()
  if(NOT out_match STREQUAL "" AND NOT out MATCHES "${out_match}")
    message(FATAL_ERROR
            "report_cli_gate: emptcp-report ${ARGN}: stdout missing "
            "\"${out_match}\": ${out}")
  endif()
  if(NOT err_match STREQUAL "" AND NOT err MATCHES "${err_match}")
    message(FATAL_ERROR
            "report_cli_gate: emptcp-report ${ARGN}: stderr missing "
            "\"${err_match}\": ${err}")
  endif()
endfunction()

# --help (and -h, in any position) prints usage on stdout, exit 0.
expect_run(0 "usage: emptcp-report" "" --help)
expect_run(0 "usage: emptcp-report" "" --diff -h)

# No arguments: usage on stderr, exit 2.
expect_run(2 "" "usage: emptcp-report")

# Unknown option in report mode: complaint + usage on stderr, exit 2.
expect_run(2 "" "unknown option: --bogus" --bogus)

# Unknown option / missing operands in diff mode: exit 2 with usage.
expect_run(2 "" "unknown option: --frob" --diff --frob a.json b.json)
expect_run(2 "" "usage: emptcp-report" --diff only_one.json)
expect_run(2 "" "--tol needs" --diff a.json b.json --tol)

# Nonexistent report directory: diagnostic on stderr, exit 2.
expect_run(2 "" "" /nonexistent-dir-for-report-gate)

message(STATUS "report_cli_gate: all CLI contract checks passed")
