// Hybrid-fidelity fast path (app::FastPath, DESIGN.md §13), scenario
// level: packet mode must be untouched by the refactor, and hybrid mode
// must (a) actually engage on macro-step-sized flows and (b) agree with
// packet mode on the headline numbers within the §13 tolerance contract.
#include "app/fast_path.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "app/scenario.hpp"
#include "stats/trace_export.hpp"
#include "trace/trace_diff.hpp"

namespace emptcp::app {
namespace {

ScenarioConfig base_config(sim::Fidelity fidelity) {
  ScenarioConfig cfg;
  cfg.wifi.down_mbps = 10.0;
  cfg.cell.down_mbps = 6.0;
  cfg.fidelity = fidelity;
  cfg.trace = true;
  return cfg;
}

std::string event_jsonl(const RunMetrics& m) {
  return stats::trace_to_jsonl(m.trace_events, /*metrics=*/{});
}

double fluid_bytes(const RunMetrics& m) {
  for (const auto& ms : m.trace_metrics) {
    if (ms.name == "run.fluid_bytes") return ms.value;
  }
  return -1.0;  // metric absent (packet mode never registers it)
}

// Packet-mode byte identity: the governor's plumbing must be inert when
// fidelity is kPacket — the ScenarioConfig field exists, but no FastPath
// is constructed and the event stream is exactly the pre-refactor one
// (pinned transitively by the golden trace-determinism suite, which runs
// the same packet path).
TEST(FastPathScenarioTest, PacketModeMatchesDefaultByteIdentical) {
#if !EMPTCP_TRACE_COMPILED
  GTEST_SKIP() << "tracing compiled out (EMPTCP_TRACE=OFF)";
#endif
  ScenarioConfig plain = base_config(sim::Fidelity::kPacket);
  ScenarioConfig untouched = base_config(sim::Fidelity::kPacket);
  untouched.fidelity = {};  // value-initialized default must be kPacket
  ASSERT_EQ(untouched.fidelity, sim::Fidelity::kPacket);

  Scenario a(plain);
  Scenario b(untouched);
  const RunMetrics ma = a.run_download(Protocol::kEmptcp, 2'000'000, 5);
  const RunMetrics mb = b.run_download(Protocol::kEmptcp, 2'000'000, 5);
  const trace::TraceDiff d =
      trace::diff_trace_text(event_jsonl(ma), event_jsonl(mb));
  EXPECT_TRUE(d.identical) << d.describe();
  // Packet mode never constructs a FastPath, so the gauge is absent.
  EXPECT_EQ(fluid_bytes(ma), -1.0);
}

// A hybrid run whose flow never crosses the fluid-entry floor
// (min_fluid_bytes = 300 KB) has an armed but never-engaging governor:
// it may observe, but must not perturb a single packet event.
TEST(FastPathScenarioTest, HybridBelowEntryFloorIsObservationallyInert) {
#if !EMPTCP_TRACE_COMPILED
  GTEST_SKIP() << "tracing compiled out (EMPTCP_TRACE=OFF)";
#endif
  Scenario packet(base_config(sim::Fidelity::kPacket));
  Scenario hybrid(base_config(sim::Fidelity::kHybrid));
  const std::uint64_t small = 200'000;  // < min_fluid_bytes
  const RunMetrics mp = packet.run_download(Protocol::kEmptcp, small, 3);
  const RunMetrics mh = hybrid.run_download(Protocol::kEmptcp, small, 3);

  EXPECT_EQ(fluid_bytes(mh), 0.0);  // armed, measured, never entered
  const trace::TraceDiff d =
      trace::diff_trace_text(event_jsonl(mp), event_jsonl(mh));
  EXPECT_TRUE(d.identical) << d.describe();
  EXPECT_EQ(mp.bytes_received, mh.bytes_received);
  EXPECT_DOUBLE_EQ(mp.download_time_s, mh.download_time_s);
  EXPECT_DOUBLE_EQ(mp.energy_j, mh.energy_j);
}

// Macro-step-sized flow: hybrid must engage (nonzero fluid bytes — the
// equivalence below would otherwise hold vacuously), cut events
// materially, and land inside the §13 single-flow tolerance bands:
// bytes exact, FCT within 25% + 0.25 s, energy within 30% + 0.3 J.
TEST(FastPathScenarioTest, HybridEngagesAndMatchesPacketWithinTolerance) {
  Scenario packet(base_config(sim::Fidelity::kPacket));
  Scenario hybrid(base_config(sim::Fidelity::kHybrid));
  const std::uint64_t big = 8'000'000;
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const RunMetrics mp = packet.run_download(Protocol::kEmptcp, big, seed);
    const RunMetrics mh = hybrid.run_download(Protocol::kEmptcp, big, seed);

    EXPECT_GT(fluid_bytes(mh), 0.0) << "seed " << seed;
    EXPECT_LT(mh.profile.events_executed, mp.profile.events_executed / 2)
        << "seed " << seed;

    EXPECT_TRUE(mp.completed && mh.completed) << "seed " << seed;
    EXPECT_EQ(mp.bytes_received, mh.bytes_received) << "seed " << seed;
    EXPECT_LE(std::abs(mh.download_time_s - mp.download_time_s),
              0.25 * mp.download_time_s + 0.25)
        << "seed " << seed;
    EXPECT_LE(std::abs(mh.energy_j - mp.energy_j), 0.30 * mp.energy_j + 0.3)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace emptcp::app
