// Upload scenarios — the paper's §7 future work. The device is the data
// *sender*, so eMPTCP's machinery must work off transmit progress: kappa
// counts acknowledged upload bytes, the predictor measures tx throughput,
// and the path controller steers the device's own subflow usage directly.
#include <gtest/gtest.h>

#include "app/scenario.hpp"

namespace emptcp::app {
namespace {

constexpr std::uint64_t kMB = 1024 * 1024;

ScenarioConfig config(double wifi, double cell) {
  ScenarioConfig cfg;
  cfg.wifi.down_mbps = wifi;
  cfg.wifi.up_mbps = wifi;  // symmetric for upload tests
  cfg.cell.down_mbps = cell;
  cfg.cell.up_mbps = cell;
  cfg.record_series = false;
  return cfg;
}

TEST(UploadTest, AllProtocolsCompleteUploads) {
  Scenario s(config(8.0, 8.0));
  for (Protocol p : {Protocol::kTcpWifi, Protocol::kTcpLte, Protocol::kMptcp,
                     Protocol::kEmptcp}) {
    const RunMetrics m = s.run_upload(p, 4 * kMB, 3);
    EXPECT_TRUE(m.completed) << to_string(p);
    EXPECT_EQ(m.bytes_received, 4 * kMB) << to_string(p);
    EXPECT_GT(m.energy_j, 0.0) << to_string(p);
  }
}

TEST(UploadTest, MptcpAggregatesUplink) {
  Scenario s(config(5.0, 5.0));
  const RunMetrics tcp = s.run_upload(Protocol::kTcpWifi, 8 * kMB, 1);
  const RunMetrics mptcp = s.run_upload(Protocol::kMptcp, 8 * kMB, 1);
  EXPECT_LT(mptcp.download_time_s, tcp.download_time_s * 0.75);
  EXPECT_GT(mptcp.mean_cell_mbps, 1.0);
}

TEST(UploadTest, EmptcpGoodWifiUploadsOverWifiOnly) {
  Scenario s(config(15.0, 9.0));
  const RunMetrics m = s.run_upload(Protocol::kEmptcp, 16 * kMB, 1);
  EXPECT_TRUE(m.completed);
  EXPECT_FALSE(m.cellular_used);
  const RunMetrics mptcp = s.run_upload(Protocol::kMptcp, 16 * kMB, 1);
  EXPECT_LT(m.energy_j, mptcp.energy_j * 0.9);
}

TEST(UploadTest, EmptcpBadWifiJoinsLteForUpload) {
  Scenario s(config(0.8, 9.0));
  const RunMetrics m = s.run_upload(Protocol::kEmptcp, 16 * kMB, 1);
  EXPECT_TRUE(m.completed);
  EXPECT_TRUE(m.cellular_used);
  // The upload went mostly over LTE.
  EXPECT_GT(m.mean_cell_mbps, m.mean_wifi_mbps);
}

TEST(UploadTest, SmallUploadAvoidsCellular) {
  Scenario s(config(6.0, 9.0));
  const RunMetrics m = s.run_upload(Protocol::kEmptcp, 256 * 1024, 1);
  EXPECT_TRUE(m.completed);
  EXPECT_FALSE(m.cellular_used);
  EXPECT_LT(m.energy_j, 3.0);  // no LTE fixed cost
}

}  // namespace
}  // namespace emptcp::app
