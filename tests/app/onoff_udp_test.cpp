#include "app/onoff_udp.hpp"

#include <gtest/gtest.h>

#include "sim/simulation.hpp"

namespace emptcp::app {
namespace {

TEST(OnOffUdpTest, TogglesChannelContention) {
  sim::Simulation sim(3);
  net::WifiChannel ch(sim, {15.0, 0.01});
  net::Link link(sim, net::Link::Config{});
  ch.govern(link);

  OnOffUdpSource::Config cfg;
  cfg.lambda_on = 0.5;   // mean 2 s on
  cfg.lambda_off = 0.5;  // mean 2 s off
  OnOffUdpSource src(sim, ch, cfg);
  src.start();

  // Sample channel state over time: we must observe both shared and full
  // capacity phases.
  bool saw_contended = false;
  bool saw_free = false;
  for (int i = 0; i < 400; ++i) {
    sim.run_until(sim.now() + sim::milliseconds(100));
    if (ch.active_interferers() > 0) saw_contended = true;
    if (ch.active_interferers() == 0) saw_free = true;
  }
  EXPECT_TRUE(saw_contended);
  EXPECT_TRUE(saw_free);
}

TEST(OnOffUdpTest, MeanSojournTimesFollowLambdas) {
  sim::Simulation sim(9);
  net::WifiChannel ch(sim, {15.0, 0.0});
  OnOffUdpSource::Config cfg;
  cfg.lambda_on = 0.05;    // paper: mean 20 s on
  cfg.lambda_off = 0.025;  // paper: mean 40 s off
  OnOffUdpSource src(sim, ch, cfg);
  src.start();

  double on_time = 0.0;
  double off_time = 0.0;
  const double dt = 0.5;
  for (int i = 0; i < 40000; ++i) {
    sim.run_until(sim.now() + sim::from_seconds(dt));
    (src.on() ? on_time : off_time) += dt;
  }
  // Stationary fraction on = (1/λon) / (1/λon + 1/λoff) = 40/(40+20)...
  // careful: mean on = 1/0.05 = 20 s, mean off = 1/0.025 = 40 s -> 1/3 on.
  const double frac_on = on_time / (on_time + off_time);
  EXPECT_NEAR(frac_on, 20.0 / 60.0, 0.05);
}

TEST(OnOffUdpTest, InjectsDatagramsWhileOn) {
  sim::Simulation sim(5);
  net::WifiChannel ch(sim, {15.0, 0.0});
  net::Link sink(sim, net::Link::Config{});
  std::uint64_t delivered = 0;
  sink.set_receiver([&](const net::Packet& p) {
    EXPECT_TRUE(p.udp);
    ++delivered;
  });

  OnOffUdpSource::Config cfg;
  cfg.lambda_on = 0.001;  // effectively always on once started
  cfg.lambda_off = 1000.0;
  cfg.start_on = true;
  cfg.inject_into = &sink;
  cfg.inject_rate_mbps = 2.0;
  OnOffUdpSource src(sim, ch, cfg);
  src.start();
  sim.run_until(sim::seconds(5));

  // 2 Mbps of 1240-byte datagrams for 5 s ≈ 1000 packets.
  EXPECT_NEAR(static_cast<double>(src.datagrams_sent()), 1008.0, 100.0);
  EXPECT_GT(delivered, 0u);
}

TEST(OnOffUdpTest, NoInjectionWhileOff) {
  sim::Simulation sim(5);
  net::WifiChannel ch(sim, {15.0, 0.0});
  net::Link sink(sim, net::Link::Config{});
  OnOffUdpSource::Config cfg;
  cfg.lambda_on = 1000.0;
  cfg.lambda_off = 0.001;  // effectively always off
  cfg.start_on = false;
  cfg.inject_into = &sink;
  OnOffUdpSource src(sim, ch, cfg);
  src.start();
  sim.run_until(sim::seconds(5));
  EXPECT_EQ(src.datagrams_sent(), 0u);
}

}  // namespace
}  // namespace emptcp::app
