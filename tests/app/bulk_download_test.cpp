#include "app/bulk_download.hpp"

#include <gtest/gtest.h>

#include "support/testnet.hpp"

namespace emptcp::app {
namespace {

using test::TestNet;

mptcp::MptcpConnection::Config mcfg() {
  mptcp::MptcpConnection::Config cfg;
  cfg.classify_peer = [](net::Addr a) {
    return a == test::kWifiAddr ? net::InterfaceType::kWifi
                                : net::InterfaceType::kEthernet;
  };
  return cfg;
}

struct ServerWorld {
  explicit ServerWorld(FileServer::Config cfg)
      : server(net.sim, net.server, std::move(cfg)) {}

  mptcp::MptcpConnection& connect_client() {
    clients.push_back(std::make_unique<mptcp::MptcpConnection>(
        net.sim, net.client, mcfg()));
    clients.back()->connect(test::kWifiAddr, test::kServerAddr, test::kPort);
    return *clients.back();
  }

  TestNet net;
  FileServer server;
  std::vector<std::unique_ptr<mptcp::MptcpConnection>> clients;
};

FileServer::Config base_config() {
  FileServer::Config cfg;
  cfg.port = test::kPort;
  cfg.request_bytes = 200;
  cfg.mptcp = mcfg();
  return cfg;
}

TEST(FileServerTest, RespondsToCompleteRequest) {
  FileServer::Config cfg = base_config();
  cfg.resolver = [](std::size_t, std::size_t req) {
    return req == 0 ? std::uint64_t{50'000} : 0;
  };
  ServerWorld w(std::move(cfg));
  auto& client = w.connect_client();
  std::uint64_t got = 0;
  mptcp::MptcpConnection::Callbacks cb;
  cb.on_established = [&] { client.send(200); };
  cb.on_data = [&](std::uint64_t n) { got += n; };
  cb.on_eof = [&] { client.shutdown_write(); };
  client.set_callbacks(std::move(cb));
  w.net.sim.run_until(sim::seconds(10));
  EXPECT_EQ(got, 50'000u);
  EXPECT_EQ(w.server.responses_sent(), 1u);
}

TEST(FileServerTest, PartialRequestWaitsForAllBytes) {
  FileServer::Config cfg = base_config();
  cfg.resolver = [](std::size_t, std::size_t) {
    return std::uint64_t{1000};
  };
  cfg.close_after_response = false;
  ServerWorld w(std::move(cfg));
  auto& client = w.connect_client();
  mptcp::MptcpConnection::Callbacks cb;
  cb.on_established = [&] { client.send(150); };  // under the framing unit
  client.set_callbacks(std::move(cb));
  w.net.sim.run_until(sim::seconds(2));
  EXPECT_EQ(w.server.responses_sent(), 0u);
  client.send(50);  // completes the request
  w.net.sim.run_until(sim::seconds(4));
  EXPECT_EQ(w.server.responses_sent(), 1u);
}

TEST(FileServerTest, BatchedRequestsEachServed) {
  FileServer::Config cfg = base_config();
  cfg.resolver = [](std::size_t, std::size_t) { return std::uint64_t{500}; };
  cfg.close_after_response = false;
  ServerWorld w(std::move(cfg));
  auto& client = w.connect_client();
  std::uint64_t got = 0;
  mptcp::MptcpConnection::Callbacks cb;
  cb.on_established = [&] { client.send(3 * 200); };  // three at once
  cb.on_data = [&](std::uint64_t n) { got += n; };
  client.set_callbacks(std::move(cb));
  w.net.sim.run_until(sim::seconds(5));
  EXPECT_EQ(w.server.responses_sent(), 3u);
  EXPECT_EQ(got, 1500u);
}

TEST(FileServerTest, ZeroSizeResolverIgnoresRequest) {
  FileServer::Config cfg = base_config();
  cfg.resolver = [](std::size_t, std::size_t req) {
    return req == 1 ? std::uint64_t{700} : 0;  // ignore the first request
  };
  cfg.close_after_response = false;
  ServerWorld w(std::move(cfg));
  auto& client = w.connect_client();
  std::uint64_t got = 0;
  mptcp::MptcpConnection::Callbacks cb;
  cb.on_established = [&] { client.send(400); };  // two requests
  cb.on_data = [&](std::uint64_t n) { got += n; };
  client.set_callbacks(std::move(cb));
  w.net.sim.run_until(sim::seconds(5));
  EXPECT_EQ(w.server.responses_sent(), 1u);
  EXPECT_EQ(got, 700u);
}

TEST(FileServerTest, MultipleConnectionsIndexedByAcceptOrderWhenUntagged) {
  FileServer::Config cfg = base_config();
  std::vector<std::size_t> seen;
  cfg.resolver = [&seen](std::size_t conn, std::size_t) {
    seen.push_back(conn);
    return std::uint64_t{100};
  };
  cfg.close_after_response = false;
  ServerWorld w(std::move(cfg));
  auto& c1 = w.connect_client();
  auto& c2 = w.connect_client();
  for (auto* c : {&c1, &c2}) {
    mptcp::MptcpConnection::Callbacks cb;
    cb.on_established = [c] { c->send(200); };
    c->set_callbacks(std::move(cb));
  }
  w.net.sim.run_until(sim::seconds(5));
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_NE(seen[0], seen[1]);
  EXPECT_EQ(w.server.accepted_connections(), 2u);
}

TEST(FileServerTest, AppTagOverridesAcceptOrder) {
  FileServer::Config cfg = base_config();
  std::vector<std::size_t> seen;
  cfg.resolver = [&seen](std::size_t conn, std::size_t) {
    seen.push_back(conn);
    return std::uint64_t{100};
  };
  cfg.close_after_response = false;
  ServerWorld w(std::move(cfg));
  auto& client = w.connect_client();
  // Reconnect with a tag is not possible post-connect; instead use a new
  // connection with a tag and verify the server indexes it by tag.
  w.clients.push_back(std::make_unique<mptcp::MptcpConnection>(
      w.net.sim, w.net.client, mcfg()));
  auto& tagged = *w.clients.back();
  tagged.set_app_tag(7);  // 1-based: server index 6
  tagged.connect(test::kWifiAddr, test::kServerAddr, test::kPort);

  mptcp::MptcpConnection::Callbacks cb1;
  cb1.on_established = [&client] { client.send(200); };
  client.set_callbacks(std::move(cb1));
  mptcp::MptcpConnection::Callbacks cb2;
  cb2.on_established = [&tagged] { tagged.send(200); };
  tagged.set_callbacks(std::move(cb2));

  w.net.sim.run_until(sim::seconds(5));
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_TRUE((seen[0] == 6 || seen[1] == 6));
}

}  // namespace
}  // namespace emptcp::app
