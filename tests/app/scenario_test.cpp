#include "app/scenario.hpp"

#include <gtest/gtest.h>

namespace emptcp::app {
namespace {

constexpr std::uint64_t kMB = 1024 * 1024;

ScenarioConfig fast_config(double wifi = 10.0, double cell = 9.0) {
  ScenarioConfig cfg;
  cfg.wifi.down_mbps = wifi;
  cfg.cell.down_mbps = cell;
  cfg.record_series = true;
  return cfg;
}

TEST(ScenarioTest, DownloadCompletesAndReportsBasics) {
  Scenario s(fast_config());
  const RunMetrics m = s.run_download(Protocol::kTcpWifi, 2 * kMB, 1);
  EXPECT_TRUE(m.completed);
  EXPECT_EQ(m.bytes_received, 2 * kMB);
  EXPECT_GT(m.download_time_s, 1.0);
  EXPECT_GT(m.energy_j, 0.0);
  EXPECT_GT(m.wifi_j, 0.0);
  EXPECT_FALSE(m.cellular_used);
  EXPECT_EQ(m.cellular_activations, 0);
}

TEST(ScenarioTest, SameSeedSameResult) {
  Scenario s(fast_config());
  const RunMetrics a = s.run_download(Protocol::kMptcp, 2 * kMB, 42);
  const RunMetrics b = s.run_download(Protocol::kMptcp, 2 * kMB, 42);
  EXPECT_DOUBLE_EQ(a.download_time_s, b.download_time_s);
  EXPECT_DOUBLE_EQ(a.energy_j, b.energy_j);
}

TEST(ScenarioTest, MptcpUsesBothInterfaces) {
  Scenario s(fast_config());
  const RunMetrics m = s.run_download(Protocol::kMptcp, 8 * kMB, 1);
  EXPECT_TRUE(m.completed);
  EXPECT_TRUE(m.cellular_used);
  EXPECT_GT(m.mean_wifi_mbps, 1.0);
  EXPECT_GT(m.mean_cell_mbps, 1.0);
  EXPECT_EQ(m.cellular_activations, 1);
}

TEST(ScenarioTest, MptcpFasterThanSinglePath) {
  Scenario s(fast_config(6.0, 6.0));
  const RunMetrics tcp = s.run_download(Protocol::kTcpWifi, 8 * kMB, 1);
  const RunMetrics mptcp = s.run_download(Protocol::kMptcp, 8 * kMB, 1);
  EXPECT_LT(mptcp.download_time_s, tcp.download_time_s * 0.8);
}

TEST(ScenarioTest, TcpLteRunsOverCellularOnly) {
  Scenario s(fast_config());
  const RunMetrics m = s.run_download(Protocol::kTcpLte, 2 * kMB, 1);
  EXPECT_TRUE(m.completed);
  EXPECT_TRUE(m.cellular_used);
  EXPECT_LT(m.mean_wifi_mbps, 0.01);
  // Energy includes the LTE tail: must exceed the fixed overhead.
  EXPECT_GT(m.energy_j, 12.0);
}

TEST(ScenarioTest, EmptcpGoodWifiMatchesTcpWifi) {
  Scenario s(fast_config(15.0, 9.0));
  const RunMetrics tcp = s.run_download(Protocol::kTcpWifi, 8 * kMB, 1);
  const RunMetrics emptcp = s.run_download(Protocol::kEmptcp, 8 * kMB, 1);
  EXPECT_FALSE(emptcp.cellular_used);
  EXPECT_NEAR(emptcp.energy_j, tcp.energy_j, tcp.energy_j * 0.1);
  const RunMetrics mptcp = s.run_download(Protocol::kMptcp, 8 * kMB, 1);
  EXPECT_LT(emptcp.energy_j, mptcp.energy_j);
}

TEST(ScenarioTest, SeriesRecordedWhenRequested) {
  Scenario s(fast_config());
  const RunMetrics m = s.run_download(Protocol::kMptcp, 4 * kMB, 1);
  EXPECT_FALSE(m.energy_series.empty());
  EXPECT_FALSE(m.wifi_rate_series.empty());
  EXPECT_FALSE(m.cell_rate_series.empty());
  // Energy series is nondecreasing.
  for (std::size_t i = 1; i < m.energy_series.size(); ++i) {
    EXPECT_GE(m.energy_series[i].v, m.energy_series[i - 1].v);
  }
}

TEST(ScenarioTest, SeriesSkippedWhenDisabled) {
  ScenarioConfig cfg = fast_config();
  cfg.record_series = false;
  Scenario s(cfg);
  const RunMetrics m = s.run_download(Protocol::kTcpWifi, 1 * kMB, 1);
  EXPECT_TRUE(m.energy_series.empty());
}

TEST(ScenarioTest, TimedRunMeasuresFixedWindow) {
  Scenario s(fast_config());
  const RunMetrics m = s.run_timed(Protocol::kMptcp, sim::seconds(30), 1);
  EXPECT_TRUE(m.completed);
  EXPECT_DOUBLE_EQ(m.download_time_s, 30.0);
  EXPECT_GT(m.bytes_received, 10 * kMB);  // ~19 Mbps aggregate for 30 s
}

TEST(ScenarioTest, OnOffScenarioChangesWifiThroughput) {
  ScenarioConfig cfg = fast_config(12.0, 9.0);
  cfg.wifi_onoff = true;
  cfg.onoff.high_mbps = 12.0;
  cfg.onoff.low_mbps = 0.8;
  cfg.onoff.mean_high_s = 5.0;
  cfg.onoff.mean_low_s = 5.0;
  Scenario s(cfg);
  const RunMetrics m = s.run_timed(Protocol::kTcpWifi, sim::seconds(60), 3);
  // Effective average should sit strictly between the two rates.
  EXPECT_GT(m.mean_wifi_mbps, 1.0);
  EXPECT_LT(m.mean_wifi_mbps, 11.0);
}

TEST(ScenarioTest, InterferersReduceWifiThroughput) {
  ScenarioConfig base = fast_config(12.0, 9.0);
  Scenario clean(base);
  const RunMetrics free_run =
      clean.run_timed(Protocol::kTcpWifi, sim::seconds(40), 5);

  ScenarioConfig noisy = base;
  noisy.interferers = 3;
  noisy.lambda_on = 0.05;
  noisy.lambda_off = 0.5;  // mostly on
  Scenario crowded(noisy);
  const RunMetrics noisy_run =
      crowded.run_timed(Protocol::kTcpWifi, sim::seconds(40), 5);

  EXPECT_LT(noisy_run.bytes_received,
            static_cast<std::uint64_t>(
                static_cast<double>(free_run.bytes_received) * 0.8));
}

TEST(ScenarioTest, MobilityScenarioRuns) {
  ScenarioConfig cfg = fast_config(18.0, 9.0);
  cfg.mobility = true;
  Scenario s(cfg);
  const RunMetrics m = s.run_timed(Protocol::kEmptcp, sim::seconds(250), 7);
  EXPECT_TRUE(m.completed);
  EXPECT_GT(m.bytes_received, 10 * kMB);
  EXPECT_GT(m.energy_j, 0.0);
}

TEST(ScenarioTest, WebPageFetchAllProtocols) {
  const WebPage page = WebPage::cnn_like(11);
  Scenario s(fast_config());
  for (Protocol p : {Protocol::kTcpWifi, Protocol::kMptcp,
                     Protocol::kEmptcp}) {
    const RunMetrics m = s.run_web_page(p, page, 6, 1);
    EXPECT_TRUE(m.completed) << to_string(p);
    EXPECT_EQ(m.bytes_received, page.total_bytes()) << to_string(p);
    EXPECT_GT(m.download_time_s, 0.0);
  }
}

TEST(ScenarioTest, WebPageEmptcpAvoidsCellular) {
  // Paper §5.4: all objects are small, so eMPTCP never wakes LTE while
  // standard MPTCP joins it for every connection.
  const WebPage page = WebPage::cnn_like(11);
  Scenario s(fast_config());
  const RunMetrics emptcp = s.run_web_page(Protocol::kEmptcp, page, 6, 1);
  const RunMetrics mptcp = s.run_web_page(Protocol::kMptcp, page, 6, 1);
  EXPECT_FALSE(emptcp.cellular_used);
  EXPECT_TRUE(mptcp.cellular_used);
  EXPECT_LT(emptcp.energy_j, mptcp.energy_j);
}

TEST(ScenarioTest, ProtocolNames) {
  EXPECT_STREQ(to_string(Protocol::kTcpWifi), "TCP/WiFi");
  EXPECT_STREQ(to_string(Protocol::kEmptcp), "eMPTCP");
  EXPECT_STREQ(to_string(Protocol::kMdp), "MDP");
}

}  // namespace
}  // namespace emptcp::app
