#include "app/streaming.hpp"

#include <gtest/gtest.h>

#include "app/scenario.hpp"

namespace emptcp::app {
namespace {

VideoStreamClient::Config stream_config() {
  VideoStreamClient::Config cfg;
  cfg.bitrate_mbps = 2.0;
  cfg.chunk_bytes = 512 * 1024;  // ~2 s of media per chunk
  cfg.buffer_target_s = 10.0;
  cfg.startup_s = 4.0;
  cfg.media_duration_s = 60.0;
  return cfg;
}

ScenarioConfig net_config(double wifi, double cell) {
  ScenarioConfig cfg;
  cfg.wifi.down_mbps = wifi;
  cfg.cell.down_mbps = cell;
  cfg.record_series = false;
  return cfg;
}

class NullConn final : public ClientConnHandle {
 public:
  void set_callbacks(Callbacks) override {}
  void connect() override {}
  void send(std::uint64_t) override {}
  void shutdown_write() override {}
  [[nodiscard]] std::uint64_t bytes_received() const override { return 0; }
};

TEST(StreamingTest, TotalChunksCoversMedia) {
  sim::Simulation sim(1);
  // 60 s at 2 Mbps = 15 MB; 512 KB chunks (~2.1 s each) -> 29 chunks.
  VideoStreamClient player(sim, stream_config(),
                           std::make_unique<NullConn>(), nullptr);
  EXPECT_EQ(player.total_chunks(), 29u);
}

TEST(StreamingTest, SmoothPlaybackOnFastWifi) {
  Scenario s(net_config(10.0, 9.0));
  const RunMetrics m = s.run_stream(Protocol::kTcpWifi, stream_config(), 1);
  ASSERT_TRUE(m.completed);
  EXPECT_EQ(m.rebuffer_events, 0);
  EXPECT_LT(m.stall_time_s, 0.2);
  EXPECT_LT(m.startup_delay_s, 5.0);
  // Playback time ~ media duration + startup.
  EXPECT_NEAR(m.download_time_s, 60.0 + m.startup_delay_s, 3.0);
}

TEST(StreamingTest, UnderprovisionedLinkRebuffers) {
  // 1.2 Mbps WiFi cannot sustain a 2 Mbps stream.
  Scenario s(net_config(1.2, 1.0));
  const RunMetrics m = s.run_stream(Protocol::kTcpWifi, stream_config(), 2);
  ASSERT_TRUE(m.completed);
  EXPECT_GT(m.rebuffer_events, 0);
  EXPECT_GT(m.stall_time_s, 5.0);
}

TEST(StreamingTest, EmptcpKeepsLteAsleepWhenWifiSustainsBitrate) {
  // The §3.5 idle postponement at work: chunk gaps must not wake LTE.
  Scenario s(net_config(10.0, 9.0));
  const RunMetrics m = s.run_stream(Protocol::kEmptcp, stream_config(), 3);
  ASSERT_TRUE(m.completed);
  EXPECT_EQ(m.rebuffer_events, 0);
  EXPECT_FALSE(m.cellular_used);
  EXPECT_EQ(m.cellular_activations, 0);
}

TEST(StreamingTest, EmptcpRescuesStreamOnWeakWifi) {
  // WiFi below the bitrate: eMPTCP must bring in LTE and stream smoothly
  // where TCP/WiFi stalls throughout.
  Scenario s(net_config(1.2, 9.0));
  const RunMetrics tcp = s.run_stream(Protocol::kTcpWifi, stream_config(), 4);
  const RunMetrics emptcp =
      s.run_stream(Protocol::kEmptcp, stream_config(), 4);
  ASSERT_TRUE(tcp.completed);
  ASSERT_TRUE(emptcp.completed);
  EXPECT_TRUE(emptcp.cellular_used);
  EXPECT_LT(emptcp.stall_time_s, tcp.stall_time_s * 0.3);
}

TEST(StreamingTest, EmptcpCheaperThanMptcpOnGoodWifi) {
  Scenario s(net_config(10.0, 9.0));
  const RunMetrics mptcp = s.run_stream(Protocol::kMptcp, stream_config(), 5);
  const RunMetrics emptcp =
      s.run_stream(Protocol::kEmptcp, stream_config(), 5);
  ASSERT_TRUE(mptcp.completed);
  ASSERT_TRUE(emptcp.completed);
  EXPECT_LT(emptcp.energy_j, mptcp.energy_j);
  // Same user experience.
  EXPECT_EQ(emptcp.rebuffer_events, mptcp.rebuffer_events);
}

}  // namespace
}  // namespace emptcp::app
